// Model-evaluation throughput: how fast each bit-level adder model runs
// in simulation. This is a property of the C++ models, not of the
// hardware — it bounds how large the Monte-Carlo and kernel experiments
// can be.
//
// The binary has two parts:
//  1. A scalar-vs-bitsliced kernel sweep (runs first, always): for each
//     GeAr configuration it times the scalar one-trial-at-a-time kernels
//     against the 64-lane bitsliced kernels (core/bitsliced_adder.h,
//     netlist/bitsliced_sim.h) on identical pre-drawn operand sets, prints
//     the vectors/sec table and emits BENCH_bitsliced.json. The
//     "add+detect" row is the kernel-level acceptance metric (the
//     bitsliced path must clear 8x over the scalar GeArAdder::add);
//     "mc_error_probability" is the honest end-to-end number, which is
//     partly RNG-bound (two mt19937-64 draws per trial in both kernels).
//  2. The google-benchmark suite (BM_*): pass --benchmark_filter to
//     select; a filter matching nothing (e.g. --benchmark_filter=NONE)
//     runs only the sweep. The BM_Parallel* fixtures sweep the executor
//     over thread counts 1/2/4/8 (items/s == trials/s); results are
//     bit-identical across the sweep by the shard/merge determinism
//     contract.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "adders/registry.h"
#include "analysis/table.h"
#include "apps/stream_engine.h"
#include "bench_util.h"
#include "core/adder.h"
#include "core/bitsliced_adder.h"
#include "core/correction.h"
#include "core/error_model.h"
#include "netlist/bitsliced_sim.h"
#include "netlist/circuits.h"
#include "netlist/fault.h"
#include "stats/bitsliced.h"
#include "stats/parallel.h"
#include "stats/rng.h"

namespace {

// ---------------------------------------------------------------------------
// Scalar vs bitsliced sweep
// ---------------------------------------------------------------------------

/// Calibrated wall-clock timing: repeats `body` until >= 50 ms elapsed and
/// returns nanoseconds per unit, where one call to `body` covers
/// `units_per_call` vectors/trials.
template <typename F>
double ns_per_unit(F&& body, std::uint64_t units_per_call) {
  using clock = std::chrono::steady_clock;
  body();  // warm-up (page in buffers, size scratch vectors)
  std::uint64_t calls = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < calls; ++i) body();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count();
    if (ns >= 5e7) {
      return ns / (static_cast<double>(calls) *
                   static_cast<double>(units_per_call));
    }
    calls *= 4;
  }
}

struct SweepRow {
  std::string kernel;
  double scalar_ns = 0.0;
  double bitsliced_ns = 0.0;

  double speedup() const { return scalar_ns / bitsliced_ns; }
};

constexpr std::size_t kOps = 4096;  // pre-drawn operand pairs per config

std::vector<SweepRow> sweep_config(const gear::core::GeArConfig& cfg) {
  const int n = cfg.n();
  gear::stats::Rng rng(1234);
  std::vector<std::uint64_t> a(kOps), b(kOps);
  for (std::size_t i = 0; i < kOps; ++i) {
    a[i] = rng.bits(n);
    b[i] = rng.bits(n);
  }

  const gear::core::GeArAdder scalar(cfg);
  const gear::core::Corrector corrector(cfg,
                                        gear::core::Corrector::all_enabled());
  const gear::core::BitslicedGearAdder sliced(cfg);
  gear::core::BitslicedBatch batch;

  // with_exact = false on the kernel rows: the scalar baselines
  // (add_value/add/Corrector::add) never compute an exact reference sum, so
  // the matched-work comparison skips the bitsliced exact ripple too. The
  // mc_error_probability row below exercises the full-eval path (the error
  // model needs exact) end to end.
  const auto bitsliced_pass = [&](std::uint64_t correction_mask) {
    std::uint64_t acc = 0;
    for (std::size_t base = 0; base < kOps;
         base += gear::stats::kBitslicedLanes) {
      sliced.eval(a.data() + base, b.data() + base,
                  gear::stats::kBitslicedLanes, 0, correction_mask, batch,
                  /*with_exact=*/false);
      acc ^= batch.approx[0] ^ batch.any_detect;
    }
    benchmark::DoNotOptimize(acc);
  };

  std::vector<SweepRow> rows;

  // add_value: scalar sum-only fast path vs the bitsliced eval (which also
  // produces detect/correction planes — the bitsliced number is therefore
  // an *under*statement of its advantage on this row).
  rows.push_back(
      {"add_value",
       ns_per_unit(
           [&] {
             std::uint64_t acc = 0;
             for (std::size_t i = 0; i < kOps; ++i)
               acc ^= scalar.add_value(a[i], b[i]);
             benchmark::DoNotOptimize(acc);
           },
           kOps),
       ns_per_unit([&] { bitsliced_pass(0); }, kOps)});

  // add+detect: the acceptance row — scalar GeArAdder::add() with its
  // per-call SubAdderState vector vs the same bitsliced eval.
  rows.push_back(
      {"add+detect",
       ns_per_unit(
           [&] {
             int acc = 0;
             for (std::size_t i = 0; i < kOps; ++i)
               acc += scalar.add(a[i], b[i]).detect_count();
             benchmark::DoNotOptimize(acc);
           },
           kOps),
       ns_per_unit([&] { bitsliced_pass(0); }, kOps)});

  // correct: full detect/correct loop vs eval with every sub-adder enabled.
  rows.push_back(
      {"correct",
       ns_per_unit(
           [&] {
             std::uint64_t acc = 0;
             for (std::size_t i = 0; i < kOps; ++i)
               acc ^= corrector.add(a[i], b[i]).sum;
             benchmark::DoNotOptimize(acc);
           },
           kOps),
       ns_per_unit([&] { bitsliced_pass(~0ULL); }, kOps)});

  // netlist_sim: gate-level functional simulation of the generated GeAr
  // circuit, one vector per pass vs 64 lanes per pass (including per-lane
  // load cost).
  {
    const gear::netlist::Netlist nl = gear::netlist::build_gear(cfg);
    gear::stats::Rng vec_rng(99);
    const auto vectors =
        gear::netlist::random_port_vectors(nl, 256, vec_rng);
    gear::netlist::BitslicedNetSim sim(nl);
    rows.push_back(
        {"netlist_sim",
         ns_per_unit(
             [&] {
               for (const auto& v : vectors)
                 benchmark::DoNotOptimize(nl.simulate(v));
             },
             vectors.size()),
         ns_per_unit(
             [&] {
               for (std::size_t base = 0; base < vectors.size();
                    base += gear::netlist::BitslicedNetSim::kLanes) {
                 sim.clear();
                 for (int l = 0; l < gear::netlist::BitslicedNetSim::kLanes;
                      ++l) {
                   sim.load_lane(l, vectors[base + static_cast<std::size_t>(l)]);
                 }
                 sim.run(/*faulty=*/false);
                 benchmark::DoNotOptimize(sim.good_word(0));
               }
             },
             vectors.size())});
  }

  // mc_error_probability: end-to-end Monte Carlo including RNG draws (the
  // shared mt19937-64 cost bounds this speedup well below the kernel-only
  // rows; reported so nobody mistakes the kernel ratio for it).
  {
    constexpr std::uint64_t kTrials = 1 << 16;
    rows.push_back(
        {"mc_error_probability",
         ns_per_unit(
             [&] {
               gear::stats::Rng mc_rng(7);
               benchmark::DoNotOptimize(
                   gear::core::mc_error_probability(
                       cfg, kTrials, mc_rng, gear::core::McKernel::kScalar)
                       .errors);
             },
             kTrials),
         ns_per_unit(
             [&] {
               gear::stats::Rng mc_rng(7);
               benchmark::DoNotOptimize(
                   gear::core::mc_error_probability(
                       cfg, kTrials, mc_rng, gear::core::McKernel::kBitsliced)
                       .errors);
             },
             kTrials)});
  }

  return rows;
}

void run_bitsliced_sweep() {
  const std::vector<gear::core::GeArConfig> configs = {
      gear::benchutil::require_config(16, 4, 4),
      gear::benchutil::require_config(32, 8, 8),
      gear::benchutil::require_config(48, 8, 16),
  };

  std::printf("== Scalar vs bitsliced (64-lane) kernel throughput ==\n\n");
  gear::analysis::Table table({"config", "kernel", "scalar ns/vec",
                               "bitsliced ns/vec", "scalar Mvec/s",
                               "bitsliced Mvec/s", "speedup"});
  std::ostringstream json;
  json << "{\"bench\":\"bitsliced\",\"lanes\":" << gear::stats::kBitslicedLanes
       << ",\"configs\":[";

  double min_accept_speedup = 0.0;
  bool first_cfg = true;
  for (const auto& cfg : configs) {
    const auto rows = sweep_config(cfg);
    if (!first_cfg) json << ",";
    first_cfg = false;
    json << "{\"name\":\"" << gear::benchutil::json_escape(cfg.name())
         << "\",\"rows\":[";
    bool first_row = true;
    for (const SweepRow& row : rows) {
      table.add_row({cfg.name(), row.kernel,
                     gear::analysis::fmt_fixed(row.scalar_ns, 1),
                     gear::analysis::fmt_fixed(row.bitsliced_ns, 2),
                     gear::analysis::fmt_fixed(1e3 / row.scalar_ns, 1),
                     gear::analysis::fmt_fixed(1e3 / row.bitsliced_ns, 1),
                     gear::analysis::fmt_fixed(row.speedup(), 1) + "x"});
      if (!first_row) json << ",";
      first_row = false;
      json << "{\"kernel\":\"" << gear::benchutil::json_escape(row.kernel)
           << "\",\"scalar_ns_per_vec\":" << row.scalar_ns
           << ",\"bitsliced_ns_per_vec\":" << row.bitsliced_ns
           << ",\"speedup\":" << row.speedup() << "}";
      if (row.kernel == "add+detect") {
        min_accept_speedup = min_accept_speedup == 0.0
                                 ? row.speedup()
                                 : std::min(min_accept_speedup, row.speedup());
      }
    }
    json << "]}";
  }
  json << "],\"min_add_detect_speedup\":" << min_accept_speedup << "}";

  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nAcceptance: min add+detect speedup %.1fx (target >= 8x). The\n"
      "mc_error_probability rows are end-to-end (incl. mt19937-64 draws,\n"
      "identical in both kernels) and are expected to sit well below the\n"
      "kernel-only rows.\n\n",
      min_accept_speedup);

  gear::benchutil::maybe_write_csv("bitsliced", table);
  gear::benchutil::write_bench_json("bitsliced", json.str());
}

// ---------------------------------------------------------------------------
// google-benchmark suite
// ---------------------------------------------------------------------------

void BM_AdderModel(benchmark::State& state, const std::string& spec) {
  const gear::adders::AdderPtr adder = gear::adders::make_adder(spec);
  gear::stats::Rng rng(1234);
  const int n = adder->width();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops(4096);
  for (auto& [a, b] : ops) {
    a = rng.bits(n);
    b = rng.bits(n);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = ops[i];
    benchmark::DoNotOptimize(adder->add(a, b));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_GearCoreAddValue(benchmark::State& state) {
  const gear::core::GeArAdder adder(gear::benchutil::require_config(16, 4, 4));
  gear::stats::Rng rng(1234);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops(4096);
  for (auto& [a, b] : ops) {
    a = rng.bits(16);
    b = rng.bits(16);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = ops[i];
    benchmark::DoNotOptimize(adder.add_value(a, b));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_GearBitslicedEval(benchmark::State& state) {
  const auto cfg = gear::benchutil::require_config(16, 4, 4);
  const gear::core::BitslicedGearAdder adder(cfg);
  gear::stats::Rng rng(1234);
  std::vector<std::uint64_t> a(4096), b(4096);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.bits(16);
    b[i] = rng.bits(16);
  }
  gear::core::BitslicedBatch batch;
  std::size_t base = 0;
  for (auto _ : state) {
    adder.eval(a.data() + base, b.data() + base,
               gear::stats::kBitslicedLanes, 0, 0, batch);
    benchmark::DoNotOptimize(batch.error);
    base = (base + gear::stats::kBitslicedLanes) & 4095;
  }
  // One eval covers 64 vectors; report vectors/s for direct comparison
  // with BM_GearCoreAddValue.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          gear::stats::kBitslicedLanes);
}

void BM_GearCorrection(benchmark::State& state) {
  const gear::core::Corrector corr(gear::benchutil::require_config(16, 4, 4),
                                   gear::core::Corrector::all_enabled());
  gear::stats::Rng rng(1234);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops(4096);
  for (auto& [a, b] : ops) {
    a = rng.bits(16);
    b = rng.bits(16);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = ops[i];
    benchmark::DoNotOptimize(corr.add(a, b).sum);
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ParallelMcErrorProbability(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  gear::stats::ParallelExecutor exec(threads);
  const auto cfg = gear::benchutil::require_config(32, 4, 4);
  constexpr std::uint64_t kTrials = 1 << 21;
  for (auto _ : state) {
    const auto est = gear::core::mc_error_probability(cfg, kTrials, /*seed=*/99, exec);
    benchmark::DoNotOptimize(est.errors);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrials));
  state.counters["threads"] = threads;
}

void BM_ParallelStreamEngine(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  gear::stats::ParallelExecutor exec(threads);
  const gear::apps::StreamAdderEngine engine(gear::benchutil::require_config(16, 2, 2),
                                             gear::core::Corrector::all_enabled());
  const auto factory = [](gear::stats::Rng rng) {
    return std::make_unique<gear::stats::UniformSource>(16, rng);
  };
  constexpr std::uint64_t kStreamOps = 1 << 20;
  for (auto _ : state) {
    const auto stats = engine.run(factory, kStreamOps, /*seed=*/99, exec);
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kStreamOps));
  state.counters["threads"] = threads;
}

}  // namespace

BENCHMARK_CAPTURE(BM_AdderModel, rca16, std::string("rca:16"));
BENCHMARK_CAPTURE(BM_AdderModel, cla16, std::string("cla:16"));
BENCHMARK_CAPTURE(BM_AdderModel, aca1_16_4, std::string("aca1:16:4"));
BENCHMARK_CAPTURE(BM_AdderModel, aca2_16_8, std::string("aca2:16:8"));
BENCHMARK_CAPTURE(BM_AdderModel, etai_16_8, std::string("etai:16:8"));
BENCHMARK_CAPTURE(BM_AdderModel, etaii_16_4, std::string("etaii:16:4"));
BENCHMARK_CAPTURE(BM_AdderModel, gda_16_4_4, std::string("gda:16:4:4"));
BENCHMARK_CAPTURE(BM_AdderModel, gear_16_4_4, std::string("gear:16:4:4"));
BENCHMARK_CAPTURE(BM_AdderModel, gear_ecc_16_4_4, std::string("gear+ecc:16:4:4"));
BENCHMARK_CAPTURE(BM_AdderModel, loa_16_8, std::string("loa:16:8"));
BENCHMARK(BM_GearCoreAddValue);
BENCHMARK(BM_GearBitslicedEval);
BENCHMARK(BM_GearCorrection);
BENCHMARK(BM_ParallelMcErrorProbability)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelStreamEngine)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // Strips --metrics_out/--trace_out before google-benchmark sees them
  // (ReportUnrecognizedArguments would reject unknown flags).
  gear::benchutil::ObsExport obs_export(argc, argv);
  run_bitsliced_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
