// Model-evaluation throughput (google-benchmark): how fast each bit-level
// adder model runs in simulation. This is a property of the C++ models,
// not of the hardware — it bounds how large the Monte-Carlo and kernel
// experiments can be. The BM_Parallel* fixtures sweep the executor over
// thread counts 1/2/4/8 (items/s == trials/s, so the speedup over the
// Arg(1) row is read directly off the report); results are bit-identical
// across the sweep by the shard/merge determinism contract.
#include <benchmark/benchmark.h>

#include "adders/registry.h"
#include "apps/stream_engine.h"
#include "core/adder.h"
#include "core/correction.h"
#include "core/error_model.h"
#include "stats/parallel.h"
#include "stats/rng.h"

namespace {

void BM_AdderModel(benchmark::State& state, const std::string& spec) {
  const gear::adders::AdderPtr adder = gear::adders::make_adder(spec);
  gear::stats::Rng rng(1234);
  const int n = adder->width();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops(4096);
  for (auto& [a, b] : ops) {
    a = rng.bits(n);
    b = rng.bits(n);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = ops[i];
    benchmark::DoNotOptimize(adder->add(a, b));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_GearCoreAddValue(benchmark::State& state) {
  const gear::core::GeArAdder adder(gear::core::GeArConfig::must(16, 4, 4));
  gear::stats::Rng rng(1234);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops(4096);
  for (auto& [a, b] : ops) {
    a = rng.bits(16);
    b = rng.bits(16);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = ops[i];
    benchmark::DoNotOptimize(adder.add_value(a, b));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_GearCorrection(benchmark::State& state) {
  const gear::core::Corrector corr(gear::core::GeArConfig::must(16, 4, 4),
                                   gear::core::Corrector::all_enabled());
  gear::stats::Rng rng(1234);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops(4096);
  for (auto& [a, b] : ops) {
    a = rng.bits(16);
    b = rng.bits(16);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = ops[i];
    benchmark::DoNotOptimize(corr.add(a, b).sum);
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ParallelMcErrorProbability(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  gear::stats::ParallelExecutor exec(threads);
  const auto cfg = gear::core::GeArConfig::must(32, 4, 4);
  constexpr std::uint64_t kTrials = 1 << 21;
  for (auto _ : state) {
    const auto est = gear::core::mc_error_probability(cfg, kTrials, /*seed=*/99, exec);
    benchmark::DoNotOptimize(est.errors);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrials));
  state.counters["threads"] = threads;
}

void BM_ParallelStreamEngine(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  gear::stats::ParallelExecutor exec(threads);
  const gear::apps::StreamAdderEngine engine(gear::core::GeArConfig::must(16, 2, 2),
                                             gear::core::Corrector::all_enabled());
  const auto factory = [](gear::stats::Rng rng) {
    return std::make_unique<gear::stats::UniformSource>(16, rng);
  };
  constexpr std::uint64_t kOps = 1 << 20;
  for (auto _ : state) {
    const auto stats = engine.run(factory, kOps, /*seed=*/99, exec);
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kOps));
  state.counters["threads"] = threads;
}

}  // namespace

BENCHMARK_CAPTURE(BM_AdderModel, rca16, std::string("rca:16"));
BENCHMARK_CAPTURE(BM_AdderModel, cla16, std::string("cla:16"));
BENCHMARK_CAPTURE(BM_AdderModel, aca1_16_4, std::string("aca1:16:4"));
BENCHMARK_CAPTURE(BM_AdderModel, aca2_16_8, std::string("aca2:16:8"));
BENCHMARK_CAPTURE(BM_AdderModel, etai_16_8, std::string("etai:16:8"));
BENCHMARK_CAPTURE(BM_AdderModel, etaii_16_4, std::string("etaii:16:4"));
BENCHMARK_CAPTURE(BM_AdderModel, gda_16_4_4, std::string("gda:16:4:4"));
BENCHMARK_CAPTURE(BM_AdderModel, gear_16_4_4, std::string("gear:16:4:4"));
BENCHMARK_CAPTURE(BM_AdderModel, gear_ecc_16_4_4, std::string("gear+ecc:16:4:4"));
BENCHMARK_CAPTURE(BM_AdderModel, loa_16_8, std::string("loa:16:8"));
BENCHMARK(BM_GearCoreAddValue);
BENCHMARK(BM_GearCorrection);
BENCHMARK(BM_ParallelMcErrorProbability)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelStreamEngine)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);
