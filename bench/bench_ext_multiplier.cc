// Extension — approximate multiply-accumulate: an 8x8 shift-add
// multiplier whose partial-product accumulation runs through GeAr(16,4,P)
// for a P sweep. Shows how the adder's configurable accuracy propagates
// into a composed arithmetic unit (the MAC datapaths the paper's intro
// motivates).
#include <cstdio>

#include "bench_util.h"
#include "adders/multiplier.h"
#include "analysis/table.h"
#include "core/error_model.h"
#include "stats/rng.h"

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  std::printf("== Extension: 8x8 multiplier on GeAr(16,4,P) accumulation ==\n\n");
  gear::analysis::Table table({"P", "adder Perr", "product error rate",
                               "mean |rel err|", "max |rel err|"});

  for (int p : {2, 4, 6, 8, 12}) {
    const auto gm = gear::adders::make_gear_multiplier(8, 4, p);
    const auto cfg = *gear::core::GeArConfig::make_relaxed(16, 4, p);
    gear::stats::Rng rng = gear::stats::Rng::substream(
        gear::stats::Rng::kDefaultSeed, "ext-mult");
    std::uint64_t errors = 0;
    double rel_sum = 0.0, rel_max = 0.0;
    constexpr int kTrials = 100000;
    for (int i = 0; i < kTrials; ++i) {
      const std::uint64_t a = rng.bits(8);
      const std::uint64_t b = rng.bits(8);
      const std::uint64_t approx = gm.mult->multiply(a, b);
      const std::uint64_t exact = a * b;
      if (approx != exact) ++errors;
      if (exact != 0) {
        const double rel = static_cast<double>(exact - approx) /
                           static_cast<double>(exact);
        rel_sum += rel;
        rel_max = std::max(rel_max, rel);
      }
    }
    table.add_row({std::to_string(p),
                   gear::analysis::fmt_pct(gear::core::paper_error_probability(cfg), 3),
                   gear::analysis::fmt_pct(static_cast<double>(errors) / kTrials, 2),
                   gear::analysis::fmt_pct(rel_sum / kTrials, 3),
                   gear::analysis::fmt_pct(rel_max, 2)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nShape checks: the product error rate collapses as P grows — the\n"
      "adder knob is the multiplier knob. Note it falls *faster* than the\n"
      "i.i.d. operand model predicts: shift-add operands are correlated\n"
      "(the shifted partial product has zeros below bit i, starving the\n"
      "carry the error event needs), so uniform-operand Perr is a safe\n"
      "upper bound for MAC datapaths at larger P.\n");
  return 0;
}
