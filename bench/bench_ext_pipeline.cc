// Extension — measured execution time vs the paper's bracket model:
// the cycle-accurate stream engine runs the Table IV workload (N=20
// image-integral-style additions, full-HD op count scaled down 16x for
// bench runtime) and compares measured cycles/op against the paper's
// best / average / worst formulas.
#include <cstdio>

#include "bench_util.h"
#include "analysis/table.h"
#include "analysis/timing_model.h"
#include "apps/stream_engine.h"
#include "core/error_model.h"
#include "stats/distributions.h"

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  using gear::core::GeArConfig;
  constexpr std::uint64_t kOps = 1920ULL * 1080ULL / 16;

  std::printf(
      "== Extension: measured correction cycles vs Table IV brackets ==\n"
      "(uniform operands, %llu additions per configuration)\n\n",
      static_cast<unsigned long long>(kOps));

  gear::analysis::Table table({"config", "Perr", "measured cyc/op",
                               "best model", "average model", "worst model",
                               "inside bracket?"});
  for (auto [r, p] : {std::pair{1, 9}, {2, 8}, {5, 5}}) {
    const auto cfg = gear::benchutil::require_config(20, r, p);
    gear::apps::StreamAdderEngine engine(cfg,
                                         gear::core::Corrector::all_enabled());
    auto src = gear::stats::make_uniform(
        20, gear::stats::Rng::kDefaultSeed ^ 0x1234);
    const auto stats = engine.run(*src, kOps);

    const double perr = gear::core::paper_error_probability(cfg);
    // Bracket cycles/op: 1 + Perr * {1, k/2, k-1}.
    const double best = 1.0 + perr;
    const double avg = 1.0 + perr * cfg.k() / 2.0;
    const double worst = 1.0 + perr * (cfg.k() - 1);
    const double measured = stats.cycles_per_op();
    const bool inside = measured >= best - 1e-4 && measured <= worst + 1e-4;

    char label[32];
    std::snprintf(label, sizeof label, "GeAr(%d,%d) k=%d", r, p, cfg.k());
    table.add_row({label, gear::analysis::fmt_sci(perr, 3),
                   gear::analysis::fmt_fixed(measured, 6),
                   gear::analysis::fmt_fixed(best, 6),
                   gear::analysis::fmt_fixed(avg, 6),
                   gear::analysis::fmt_fixed(worst, 6),
                   inside ? "yes" : "NO"});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nShape checks: measured cycles/op sits just above the 'best'\n"
      "bracket — simultaneous multi-sub-adder errors are rare, so the\n"
      "paper's average/worst columns are conservative by construction.\n");
  return 0;
}
