// Fig. 1 — Design-space comparison of ETAII, ACA-II, GDA and GeAr for
// N=16 at (a) R=2 and (b) R=4, previous bits ranging 1..N-R.
//
// The paper's figure marks which P values each family can realise; this
// bench prints the same grid plus the per-family configuration counts.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "analysis/design_space.h"
#include "analysis/table.h"
#include "core/coverage.h"
#include "stats/parallel.h"

namespace {

void print_panel(gear::analysis::SweepContext ctx, int n, int r, char panel) {
  using gear::core::AdderFamily;
  std::printf("Fig.1(%c): design space for N=%d, R=%d (P = 1..%d)\n", panel, n,
              r, n - r);

  const auto comparison = gear::analysis::coverage_comparison(n, r, ctx);
  std::vector<std::string> headers{"family"};
  for (int p = 1; p <= n - r; ++p) headers.push_back(std::to_string(p));
  headers.push_back("#configs");
  gear::analysis::Table table(headers);

  for (const auto& fam : comparison) {
    std::vector<std::string> row{gear::core::family_name(fam.family)};
    for (int p = 1; p <= n - r; ++p) {
      const bool hit = std::find(fam.p_values.begin(), fam.p_values.end(), p) !=
                       fam.p_values.end();
      row.push_back(hit ? "x" : ".");
    }
    row.push_back(std::to_string(fam.p_values.size()));
    table.add_row(std::move(row));
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  std::printf("== Fig. 1: accuracy-configurability design space ==\n\n");
  gear::stats::ParallelExecutor exec(0);
  const gear::analysis::SweepContext ctx{&exec, nullptr};
  print_panel(ctx, 16, 2, 'a');
  print_panel(ctx, 16, 4, 'b');
  std::printf(
      "Paper shape check: ETAII/ACA-II reach exactly one P (P=R); GDA only\n"
      "multiples of R; ACA-I none at R>1; GeAr reaches every P.\n");
  return 0;
}
