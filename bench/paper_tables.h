// Deterministic paper-table generators shared by the bench binaries and
// the golden-snapshot tests (tests/test_golden_tables.cc).
//
// Every quantity in these tables is a pure function of the configuration
// set and fixed seeds — synthesis is analytic, the NED columns are
// exhaustive, and the Monte-Carlo referee runs on the sharded
// deterministic driver (§5a) — so the rendered text is byte-identical
// run-to-run and across thread counts, and can be pinned as a golden
// file.
#pragma once

#include <string>

#include "analysis/table.h"

namespace gear::stats {
class ParallelExecutor;
}

namespace gear::benchtables {

/// One rendered paper table: title banner, the rows, and the trailing
/// shape-check / notes paragraph (already fully formatted).
struct PaperTable {
  std::string title;      ///< e.g. "== Table II: ... =="
  analysis::Table table;
  std::string notes;      ///< trailing paragraph incl. final newline
  std::string csv_name;   ///< maybe_write_csv() basename
};

/// Table II — GDA vs GeAr for an 8-bit adder: path delay, area,
/// exhaustive NED and Delay x NED across the paper's (R, P) set.
PaperTable table2_gda_vs_gear();

/// Table III — probability of error: paper formula vs exact DP vs
/// simulation. The 1e6-trial referee runs on `exec`; the result is
/// bit-identical for any executor width.
PaperTable table3_error_probability(stats::ParallelExecutor& exec);

/// Zoo census — one row per adders::list_families() entry at its
/// canonical spec: structural metadata (error-free width, carry chain)
/// plus fixed-seed error statistics. Fully deterministic, so the render
/// is golden-pinned. With `legacy_only` the table holds only the twelve
/// pre-zoo families; its bytes are then invariant under family additions
/// (ASCII column padding never sees the new rows), which is what lets
/// tests/test_golden_tables.cc pin the old rows byte-for-byte while the
/// full table grows.
PaperTable zoo_family_table(bool legacy_only = false);

/// The exact stdout text of the corresponding bench binary.
std::string render(const PaperTable& t);

}  // namespace gear::benchtables
