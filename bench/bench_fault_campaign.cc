// Transient-fault (SEU) vulnerability study: GeAr vs. exact and
// approximate baselines under a deterministic sampled fault campaign.
//
// For each circuit, `samples` (fault, vector) pairs are drawn under the
// shard/merge determinism contract and classified masked / false-alarm /
// detected / SDC. The paper's resilience claim shows up as detection
// coverage: the fraction of value-corrupting strikes GeAr's flag network
// makes visible, where the flagless baselines corrupt silently by
// construction. A per-module breakdown locates the vulnerable logic
// (ripple core vs. prediction tree vs. detection network).
//
// Usage: bench_fault_campaign [samples] [N R P]
// The optional (N, R, P) triple selects the GeAr configuration; invalid
// parameters are reported with the violated constraint (GeArConfig::make,
// not must(), so a sweep script gets an error message instead of a core).
//
// Emits BENCH_fault_campaign.json (see bench_util.h) for trajectory
// tracking, plus the usual CSV table when GEAR_BENCH_CSV_DIR is set.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "analysis/vulnerability.h"
#include "bench_util.h"
#include "core/config.h"
#include "netlist/circuits.h"
#include "stats/parallel.h"

namespace {

using gear::analysis::FaultCampaignOptions;
using gear::analysis::FaultCampaignResult;
using gear::analysis::OutcomeCounts;

struct Candidate {
  std::string label;
  gear::netlist::Netlist nl;
};

void append_counts_json(std::ostringstream& os, const OutcomeCounts& c) {
  os << "{\"injections\":" << c.injections << ",\"masked\":" << c.masked
     << ",\"false_alarm\":" << c.false_alarm << ",\"detected\":" << c.detected
     << ",\"sdc\":" << c.sdc << ",\"avf\":" << c.avf()
     << ",\"sdc_rate\":" << c.sdc_rate()
     << ",\"detection_coverage\":" << c.detection_coverage() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  using gear::core::GeArConfig;

  FaultCampaignOptions opt;
  opt.samples = 1 << 14;
  if (argc > 1) opt.samples = std::strtoull(argv[1], nullptr, 10);

  int n = 16, r = 4, p = 4;
  if (argc > 4) {
    n = std::atoi(argv[2]);
    r = std::atoi(argv[3]);
    p = std::atoi(argv[4]);
  }
  const auto cfg = GeArConfig::make(n, r, p);
  if (!cfg) {
    std::fprintf(stderr, "bench_fault_campaign: GeAr(N=%d,R=%d,P=%d): %s\n", n,
                 r, p, GeArConfig::invalid_reason(n, r, p).c_str());
    return 1;
  }

  std::vector<Candidate> candidates;
  candidates.push_back({cfg->name(), gear::netlist::build_gear(*cfg)});
  candidates.push_back({"RCA", gear::netlist::build_rca(n)});
  if (n % (cfg->l() / 2 * 2) == 0 && cfg->l() % 2 == 0) {
    candidates.push_back({"ACA-II", gear::netlist::build_aca2(n, cfg->l())});
  }
  if (n % r == 0) {
    candidates.push_back({"ETAII", gear::netlist::build_etaii(n, r)});
  }

  std::printf("== Transient-fault vulnerability: %llu sampled strikes ==\n\n",
              static_cast<unsigned long long>(opt.samples));

  gear::stats::ParallelExecutor exec;
  gear::analysis::Table table({"circuit", "masked", "false alarm", "detected",
                               "SDC", "AVF", "det coverage", "mean |err|"});
  std::ostringstream json;
  json << "{\"bench\":\"fault_campaign\",\"samples\":" << opt.samples
       << ",\"seed\":" << opt.master_seed << ",\"gear\":\""
       << gear::benchutil::json_escape(cfg->name()) << "\",\"circuits\":{";

  bool first = true;
  FaultCampaignResult gear_result;
  for (const Candidate& cand : candidates) {
    const FaultCampaignResult res =
        gear::analysis::run_fault_campaign(cand.nl, opt, exec);
    if (first) gear_result = res;  // candidates[0] is the GeAr circuit
    const auto& t = res.totals;
    table.add_row({cand.label, gear::analysis::fmt_pct(
                                   static_cast<double>(t.masked) /
                                       static_cast<double>(t.injections),
                                   2),
                   gear::analysis::fmt_pct(
                       static_cast<double>(t.false_alarm) /
                           static_cast<double>(t.injections),
                       2),
                   gear::analysis::fmt_pct(
                       static_cast<double>(t.detected) /
                           static_cast<double>(t.injections),
                       2),
                   gear::analysis::fmt_pct(
                       static_cast<double>(t.sdc) /
                           static_cast<double>(t.injections),
                       2),
                   gear::analysis::fmt_fixed(t.avf(), 4),
                   gear::analysis::fmt_pct(t.detection_coverage(), 2),
                   gear::analysis::fmt_fixed(res.error_magnitude.mean_abs(), 1)});
    if (!first) json << ",";
    first = false;
    json << "\"" << gear::benchutil::json_escape(cand.label) << "\":";
    append_counts_json(json, t);
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  // Per-module breakdown for the GeAr circuit (first candidate).
  const auto modules = gear_result.by_module(candidates.front().nl);
  std::printf("\n-- %s per-module vulnerability --\n",
              candidates.front().label.c_str());
  gear::analysis::Table mod_table(
      {"module", "injections", "masked", "false alarm", "detected", "SDC"});
  json << "},\"gear_modules\":{";
  first = true;
  for (const auto& [region, counts] : modules) {
    const std::string label = region.empty() ? "other" : region;
    mod_table.add_row({label, std::to_string(counts.injections),
                       std::to_string(counts.masked),
                       std::to_string(counts.false_alarm),
                       std::to_string(counts.detected),
                       std::to_string(counts.sdc)});
    if (!first) json << ",";
    first = false;
    json << "\"" << gear::benchutil::json_escape(label) << "\":";
    append_counts_json(json, counts);
  }
  json << "}}";
  std::fputs(mod_table.to_ascii().c_str(), stdout);

  std::printf(
      "\nNotes: the flagless baselines can only mask or silently corrupt\n"
      "(detection coverage 0 by construction); GeAr converts part of its\n"
      "AVF into detected events its correction/degradation loop can act\n"
      "on. Campaign results are bit-identical for any thread count.\n");

  gear::benchutil::maybe_write_csv("fault_campaign", table);
  gear::benchutil::write_bench_json("fault_campaign", json.str());
  return 0;
}
