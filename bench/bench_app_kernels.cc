// End-to-end application-kernel benchmark and bit-identity referee for the
// 64-lane batch pipelines (apps/batch_kernel, ROADMAP item 4).
//
// Two duties, both enforced with a non-zero exit on violation:
//
//  1. Bit-identity: for every (adder, image size, thread count) cell the
//     batch kernels must reproduce the scalar kernels' outputs exactly —
//     per pixel for integral/LPF/Sobel, per tile (displacement and SAD
//     value) for the motion search. Thread counts {1, 2, 8} pin the
//     batch-parallel executor's determinism.
//  2. Throughput gate: at 256x256 the single-threaded batch path must be
//     >= 4x faster than the scalar path on at least two of {integral,
//     SAD, LPF, Sobel} (paper-level claim: application benefit, not
//     per-add ns).
//
// --smoke shrinks the identity matrix and repetition count for CI; the
// 256x256 speedup gate always runs. Emits BENCH_app_kernels.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adders/exact.h"
#include "adders/gear_adapter.h"
#include "apps/batch_kernel.h"
#include "apps/generate.h"
#include "apps/integral.h"
#include "apps/lpf.h"
#include "apps/sad.h"
#include "apps/sobel.h"
#include "bench_util.h"
#include "core/config.h"
#include "core/correction.h"
#include "stats/parallel.h"
#include "stats/rng.h"

namespace {

using gear::adders::ApproxAdder;
using gear::apps::Image;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct AdderCase {
  std::string name;
  std::unique_ptr<ApproxAdder> adder;
};

std::vector<AdderCase> make_adders(bool smoke) {
  using gear::adders::GearAdapter;
  using gear::adders::GearCorrectedAdapter;
  using gear::adders::RcaAdder;
  using gear::core::Corrector;
  using gear::core::GeArConfig;

  std::vector<AdderCase> out;
  out.push_back({"GeAr(16,4,4)", std::make_unique<GearAdapter>(
                                     gear::benchutil::require_config(16, 4, 4))});
  out.push_back(
      {"GeAr(16,4,4)+ecc",
       std::make_unique<GearCorrectedAdapter>(
           gear::benchutil::require_config(16, 4, 4), Corrector::all_enabled())});
  if (!smoke) {
    // Relaxed (non-divisible) geometry: clamped top sub-adder.
    if (auto relaxed = GeArConfig::make_relaxed(20, 6, 4)) {
      out.push_back({"GeAr-relaxed(20,6,4)",
                     std::make_unique<GearAdapter>(*relaxed)});
    }
    // Heterogeneous layout: ascending prediction depth.
    out.push_back(
        {"GeAr-custom(16)",
         std::make_unique<GearAdapter>(gear::benchutil::require_custom(
             16, 4, {{4, 2}, {4, 4}, {4, 6}}))});
    // Exact ripple-carry rides the scalar add_batch fallback: pins the
    // default-implementation path of the batch kernels.
    out.push_back({"RCA-16", std::make_unique<RcaAdder>(16)});
  }
  return out;
}

struct IdentityFailure {
  std::string cell;
  std::string detail;
};

/// Runs all four kernel identity checks for one (adder, size, pool) cell.
void check_identity(const AdderCase& ac, int w, int h,
                    gear::stats::ParallelExecutor* pool,
                    const std::string& cell,
                    std::vector<IdentityFailure>& failures) {
  namespace apps = gear::apps;
  gear::stats::Rng rng = gear::stats::Rng::substream(7001, "app-kernels-img");
  const Image img = apps::smoothed_noise_image(w, h, rng, 2);

  if (apps::row_integral(img, *ac.adder) !=
      apps::row_integral_batch(img, *ac.adder, pool)) {
    failures.push_back({cell, "row_integral mismatch"});
  }
  if (apps::lpf3x3(img, *ac.adder) != apps::lpf3x3_batch(img, *ac.adder, pool)) {
    failures.push_back({cell, "lpf3x3 mismatch"});
  }
  if (apps::lpf_binomial(img, *ac.adder) !=
      apps::lpf_binomial_batch(img, *ac.adder, pool)) {
    failures.push_back({cell, "lpf_binomial mismatch"});
  }
  if (apps::sobel(img, *ac.adder) != apps::sobel_batch(img, *ac.adder, pool)) {
    failures.push_back({cell, "sobel mismatch"});
  }

  // Motion search: every tile's winning displacement and SAD must match.
  gear::stats::Rng shift_rng = gear::stats::Rng::substream(7001, "app-kernels-shift");
  const Image cand = apps::shifted_image(img, 2, 1, 2, shift_rng);
  const int bw = 16, bh = 16, range = 3;
  for (int by = 0; by + bh <= h; by += bh) {
    for (int bx = 0; bx + bw <= w; bx += bw) {
      const apps::SadMatch s =
          apps::sad_search(img, cand, bx, by, bw, bh, range, *ac.adder);
      const apps::SadMatch b =
          apps::sad_search_batch(img, cand, bx, by, bw, bh, range, *ac.adder);
      if (s.dx != b.dx || s.dy != b.dy || s.sad != b.sad) {
        std::ostringstream os;
        os << "sad_search mismatch at tile (" << bx << "," << by
           << "): scalar (" << s.dx << "," << s.dy << "," << s.sad
           << ") batch (" << b.dx << "," << b.dy << "," << b.sad << ")";
        failures.push_back({cell, os.str()});
        return;  // one tile is enough to fail the cell
      }
    }
  }
}

struct KernelTiming {
  std::string kernel;
  double scalar_ns = 0.0;
  double batch_ns = 0.0;

  double speedup() const { return batch_ns > 0.0 ? scalar_ns / batch_ns : 0.0; }
};

/// Best-of-`reps` wall time of fn().
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ns();
    fn();
    const double t = now_ns() - t0;
    if (r == 0 || t < best) best = t;
  }
  return best;
}

std::vector<KernelTiming> run_timings(const ApproxAdder& adder, int reps) {
  namespace apps = gear::apps;
  const int w = 256, h = 256;
  gear::stats::Rng rng = gear::stats::Rng::substream(7001, "app-kernels-img");
  const Image img = apps::smoothed_noise_image(w, h, rng, 2);
  gear::stats::Rng shift_rng = gear::stats::Rng::substream(7001, "app-kernels-shift");
  const Image cand = apps::shifted_image(img, 2, 1, 2, shift_rng);
  const int bw = 16, bh = 16, range = 3;

  std::vector<KernelTiming> out;
  {
    KernelTiming t{"integral", 0, 0};
    t.scalar_ns = time_best(reps, [&] { (void)apps::row_integral(img, adder); });
    t.batch_ns =
        time_best(reps, [&] { (void)apps::row_integral_batch(img, adder); });
    out.push_back(t);
  }
  {
    // Full-frame tiled motion search (the Fig. 9b workload shape).
    auto sweep = [&](auto&& search) {
      std::uint64_t sink = 0;
      for (int by = 0; by + bh <= h; by += bh) {
        for (int bx = 0; bx + bw <= w; bx += bw) {
          sink += search(bx, by).sad;
        }
      }
      return sink;
    };
    KernelTiming t{"sad", 0, 0};
    t.scalar_ns = time_best(reps, [&] {
      (void)sweep([&](int bx, int by) {
        return apps::sad_search(img, cand, bx, by, bw, bh, range, adder);
      });
    });
    t.batch_ns = time_best(reps, [&] {
      (void)sweep([&](int bx, int by) {
        return apps::sad_search_batch(img, cand, bx, by, bw, bh, range, adder);
      });
    });
    out.push_back(t);
  }
  {
    KernelTiming t{"lpf", 0, 0};
    t.scalar_ns = time_best(reps, [&] { (void)apps::lpf3x3(img, adder); });
    t.batch_ns = time_best(reps, [&] { (void)apps::lpf3x3_batch(img, adder); });
    out.push_back(t);
  }
  {
    KernelTiming t{"sobel", 0, 0};
    t.scalar_ns = time_best(reps, [&] { (void)apps::sobel(img, adder); });
    t.batch_ns = time_best(reps, [&] { (void)apps::sobel_batch(img, adder); });
    out.push_back(t);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("# Batched application kernels: bit-identity + throughput gate\n");
  std::printf("# mode: %s\n\n", smoke ? "smoke" : "full");

  // ---- 1. Bit-identity matrix: adders x sizes x threads {1,2,8} ---------
  const std::vector<AdderCase> adders = make_adders(smoke);
  std::vector<std::pair<int, int>> sizes = {{63, 47}, {64, 64}};
  if (!smoke) {
    sizes.push_back({128, 96});
    sizes.push_back({256, 256});
  }
  const int thread_counts[] = {1, 2, 8};

  std::vector<IdentityFailure> failures;
  std::size_t cells = 0;
  for (const int threads : thread_counts) {
    gear::stats::ParallelExecutor pool(threads);
    for (const AdderCase& ac : adders) {
      for (const auto& [w, h] : sizes) {
        std::ostringstream cell;
        cell << ac.name << " " << w << "x" << h << " t" << threads;
        check_identity(ac, w, h, &pool, cell.str(), failures);
        ++cells;
      }
    }
  }
  std::printf("identity: %zu cells (adders x sizes x threads), %zu failures\n",
              cells, failures.size());
  for (const IdentityFailure& f : failures) {
    std::printf("  FAIL [%s] %s\n", f.cell.c_str(), f.detail.c_str());
  }

  // ---- 2. Throughput gate at 256x256, single thread ---------------------
  const gear::adders::GearAdapter gate_adder(
      gear::benchutil::require_config(16, 4, 4));
  const int reps = smoke ? 2 : 5;
  const std::vector<KernelTiming> timings = run_timings(gate_adder, reps);

  std::printf("\nthroughput (GeAr(16,4,4), 256x256, 1 thread, best of %d):\n",
              reps);
  std::printf("  %-10s %12s %12s %9s\n", "kernel", "scalar_ms", "batch_ms",
              "speedup");
  int fast_kernels = 0;
  for (const KernelTiming& t : timings) {
    std::printf("  %-10s %12.2f %12.2f %8.2fx\n", t.kernel.c_str(),
                t.scalar_ns / 1e6, t.batch_ns / 1e6, t.speedup());
    if (t.speedup() >= 4.0) ++fast_kernels;
  }
  const bool speedup_ok = fast_kernels >= 2;
  std::printf("  kernels >= 4x: %d/4 (gate: >= 2)\n", fast_kernels);

  // ---- JSON artifact ----------------------------------------------------
  std::ostringstream json;
  json << "{\n  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  json << "  \"identity_cells\": " << cells << ",\n";
  json << "  \"identity_failures\": " << failures.size() << ",\n";
  json << "  \"kernels\": {\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const KernelTiming& t = timings[i];
    json << "    \"" << gear::benchutil::json_escape(t.kernel)
         << "\": {\"scalar_ns\": " << t.scalar_ns
         << ", \"batch_ns\": " << t.batch_ns
         << ", \"speedup\": " << t.speedup() << "}";
    json << (i + 1 < timings.size() ? ",\n" : "\n");
  }
  json << "  },\n";
  json << "  \"kernels_at_4x\": " << fast_kernels << ",\n";
  json << "  \"speedup_gate_ok\": " << (speedup_ok ? "true" : "false") << ",\n";
  json << "  \"identity_ok\": " << (failures.empty() ? "true" : "false")
       << "\n}\n";
  gear::benchutil::write_bench_json("app_kernels", json.str());

  if (!failures.empty()) {
    std::fprintf(stderr,
                 "\nerror: batch kernels are NOT bit-identical to the scalar "
                 "kernels (%zu cell failures above).\n",
                 failures.size());
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "\nerror: end-to-end speedup gate failed: %d/4 kernels at "
                 ">= 4x (need >= 2).\n",
                 fast_kernels);
    return 1;
  }
  std::printf("\nOK: bit-identical across %zu cells, %d/4 kernels >= 4x.\n",
              cells, fast_kernels);
  return 0;
}
