// Service soak / replay benchmark: drives a multi-tenant ApproxService
// through five legs and emits BENCH_service.json.
//
//  1. determinism — one client per tenant replays the identical workload
//     against worker counts {1, 2, 8} and a serial (manual-pump) referee;
//     every admitted response must be bit-identical (§5h contract).
//  2. throughput  — sustained ops/s under healthy load.
//  3. overload    — offered load >= 2x capacity against small queue caps
//     plus tight deadlines: the service must shed (reject-with-reason) and
//     expire rather than queue without bound; admitted-request p99 stays
//     bounded and is reported per tenant.
//  4. chaos       — a stuck-at-1 detect fault is injected mid-run into a
//     watchdog-guarded tenant, then cleared and the watchdog re-armed;
//     fallback must be visible (fallback_events / safe_mode_ops) with
//     zero silent corruption.
//
// Exit status is non-zero on any silent corruption, determinism mismatch
// or accounting (conservation) violation — CI runs this directly as the
// service soak smoke.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/watchdog.h"
#include "obs/metrics.h"
#include "serve/replay.h"
#include "serve/service.h"

namespace {

using gear::serve::ApproxService;
using gear::serve::ReplayOptions;
using gear::serve::ReplayReport;
using gear::serve::Response;
using gear::serve::ServiceOptions;
using gear::serve::ServiceStats;
using gear::serve::TenantId;
using gear::serve::TenantSpec;

struct Cli {
  std::uint64_t requests = 96;  ///< per client, per leg
  std::uint64_t ops = 512;      ///< per request
  std::size_t overload_clients = 4;
  std::uint64_t seed = gear::stats::Rng::kDefaultSeed;
};

/// Registers the benchmark's three tenants on `service`:
/// 0 "imaging"  GeAr(16,4,4), full correction;
/// 1 "sad"      GeAr(16,2,4), full correction;
/// 2 "guarded"  GeAr(16,4,4) + watchdog (kExactAdd) + error budget.
std::vector<TenantId> add_tenants(ApproxService& service) {
  std::vector<TenantId> out;
  std::string error;
  auto imaging = service.add_tenant("imaging", 16, 4, 4, &error);
  auto sad = service.add_tenant("sad", 16, 2, 4, &error);
  if (!imaging || !sad) {
    std::fprintf(stderr, "tenant registration failed: %s\n", error.c_str());
    std::exit(1);
  }
  auto cfg = gear::core::GeArConfig::make(16, 4, 4);
  TenantSpec guarded(*cfg);
  gear::core::DegradationPolicy policy;
  policy.window = 256;
  policy.spike_factor = 4.0;
  policy.safe_mode = gear::core::SafeMode::kExactAdd;
  policy.cooldown_windows = 4;
  guarded.degradation = policy;
  guarded.error_budget_window = 4096;
  guarded.error_budget_wrong = 64;
  auto g = service.add_tenant("guarded", std::move(guarded), &error);
  if (!g) {
    std::fprintf(stderr, "tenant registration failed: %s\n", error.c_str());
    std::exit(1);
  }
  out = {*imaging, *sad, *g};
  return out;
}

bool check(bool ok, const char* what, int& failures) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--requests=", 11) == 0) {
      cli.requests = std::strtoull(a + 11, nullptr, 10);
    } else if (std::strncmp(a, "--ops=", 6) == 0) {
      cli.ops = std::strtoull(a + 6, nullptr, 10);
    } else if (std::strncmp(a, "--overload_clients=", 19) == 0) {
      cli.overload_clients = std::strtoull(a + 19, nullptr, 10);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      cli.seed = std::strtoull(a + 7, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--requests=N] [--ops=N] "
                   "[--overload_clients=N] [--seed=N]\n",
                   argv[0]);
      return 2;
    }
  }

  int failures = 0;
  std::string json = "{\n";

  // ---- leg 1: determinism across worker counts -------------------------
  {
    ReplayOptions opt;
    opt.requests_per_client = std::max<std::uint64_t>(8, cli.requests / 4);
    opt.ops_per_request = cli.ops;
    opt.clients_per_tenant = 1;  // submission order == admission order
    opt.window = 8;
    opt.seed = cli.seed;

    std::vector<std::vector<std::vector<Response>>> runs;
    const int worker_counts[] = {0, 1, 2, 8};  // 0 = serial referee
    for (const int workers : worker_counts) {
      ServiceOptions so;
      so.workers = workers;
      ApproxService service(so);
      const std::vector<TenantId> tenants = add_tenants(service);
      std::vector<std::vector<Response>> collected;
      if (workers == 0) {
        // Serial referee: a manual-pump service consumed by one dedicated
        // pumper thread — every request of every tenant executes on a
        // single thread, the strictest baseline for the §5h comparison.
        std::atomic<bool> done{false};
        std::thread pumper([&service, &done] {
          while (!done.load(std::memory_order_relaxed)) {
            if (service.pump_all() == 0) std::this_thread::yield();
          }
          service.pump_all();
        });
        ReplayReport report = replay(service, tenants, opt, &collected);
        done.store(true, std::memory_order_relaxed);
        pumper.join();
        check(report.silent_corruptions == 0, "referee silent corruption",
              failures);
      } else {
        ReplayReport report = replay(service, tenants, opt, &collected);
        check(report.silent_corruptions == 0, "determinism-leg corruption",
              failures);
      }
      check(service.stats().conservation_ok(), "determinism-leg conservation",
            failures);
      runs.push_back(std::move(collected));
    }
    bool identical = true;
    for (std::size_t r = 1; r < runs.size(); ++r) {
      if (runs[r].size() != runs[0].size()) identical = false;
      for (std::size_t t = 0; identical && t < runs[0].size(); ++t) {
        if (runs[r][t].size() != runs[0][t].size()) {
          identical = false;
          break;
        }
        for (std::size_t i = 0; i < runs[0][t].size(); ++i) {
          if (!deterministic_equal(runs[r][t][i], runs[0][t][i])) {
            identical = false;
            break;
          }
        }
      }
    }
    check(identical, "responses bit-identical across workers {1,2,8} vs serial",
          failures);
    json += "  \"determinism\": {\"worker_counts\": [0, 1, 2, 8], "
            "\"bit_identical\": " +
            std::string(identical ? "true" : "false") + "},\n";
  }

  // ---- leg 2: sustained throughput -------------------------------------
  {
    ServiceOptions so;
    so.workers = 2;
    ApproxService service(so);
    const std::vector<TenantId> tenants = add_tenants(service);
    ReplayOptions opt;
    opt.requests_per_client = cli.requests;
    opt.ops_per_request = cli.ops;
    opt.clients_per_tenant = 1;
    opt.window = 16;
    opt.seed = cli.seed;
    const std::uint64_t t0 = gear::obs::monotonic_now_ns();
    const ReplayReport report = replay(service, tenants, opt);
    const std::uint64_t elapsed = gear::obs::monotonic_now_ns() - t0;
    check(report.silent_corruptions == 0, "throughput-leg corruption",
          failures);
    check(service.stats().conservation_ok(), "throughput-leg conservation",
          failures);
    const double secs = static_cast<double>(elapsed) * 1e-9;
    const double ops_per_sec =
        secs > 0.0 ? static_cast<double>(report.operations) / secs : 0.0;
    std::printf("throughput: %.3g ops/s (%" PRIu64 " ops, %.3f s)\n",
                ops_per_sec, report.operations, secs);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"throughput\": {\"ops\": %" PRIu64
                  ", \"seconds\": %.6f, \"ops_per_sec\": %.1f},\n",
                  report.operations, secs, ops_per_sec);
    json += buf;
  }

  // ---- leg 3: overload (>= 2x saturation) ------------------------------
  {
    ServiceOptions so;
    so.workers = 2;
    so.queue_cap = 24;  // small on purpose: force load shedding
    ApproxService service(so);
    const std::vector<TenantId> tenants = add_tenants(service);
    ReplayOptions opt;
    opt.requests_per_client = cli.requests;
    opt.ops_per_request = cli.ops;
    opt.clients_per_tenant = cli.overload_clients;  // >= 2x the workers
    opt.window = 16;
    opt.max_retries = 2;
    opt.deadline_ns = 50'000'000;  // 50 ms: slow queues expire, not hang
    opt.seed = cli.seed + 1;
    const ReplayReport report = replay(service, tenants, opt);
    const ServiceStats stats = service.stats();
    check(report.silent_corruptions == 0, "overload-leg corruption", failures);
    check(stats.conservation_ok(), "overload-leg conservation", failures);
    check(stats.rejected > 0, "overload must shed (rejected == 0)", failures);
    const double attempts = static_cast<double>(report.attempts);
    const double shed_rate =
        attempts > 0.0 ? static_cast<double>(stats.rejected) / attempts : 0.0;
    const double expire_rate =
        attempts > 0.0 ? static_cast<double>(stats.expired) / attempts : 0.0;
    json += "  \"overload\": {\n";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    \"attempts\": %" PRIu64 ", \"admitted\": %" PRIu64
                  ", \"shed\": %" PRIu64 ", \"expired\": %" PRIu64
                  ", \"retried\": %" PRIu64
                  ", \"shed_rate\": %.4f, \"expire_rate\": %.4f,\n",
                  report.attempts, stats.admitted, stats.rejected,
                  stats.expired, report.retried, shed_rate, expire_rate);
    json += buf;
    json += "    \"tenants\": {";
    for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
      const auto& t = stats.tenants[i];
      std::snprintf(buf, sizeof(buf),
                    "%s\"%s\": {\"p50_ns\": %.0f, \"p99_ns\": %.0f, "
                    "\"completed\": %" PRIu64 "}",
                    i == 0 ? "" : ", ",
                    gear::benchutil::json_escape(t.name).c_str(),
                    t.latency_ns.quantile(0.5), t.latency_ns.quantile(0.99),
                    t.completed_ok + t.completed_degraded);
      json += buf;
    }
    json += "}\n  },\n";
    std::printf("overload: shed_rate=%.2f expire_rate=%.2f retried=%" PRIu64
                "\n",
                shed_rate, expire_rate, report.retried);
  }

  // ---- leg 4: chaos (mid-stream detect fault + recovery) ---------------
  {
    ServiceOptions so;
    so.workers = 2;
    ApproxService service(so);
    const std::vector<TenantId> tenants = add_tenants(service);
    const TenantId guarded = tenants[2];
    ReplayOptions opt;
    opt.requests_per_client = std::max<std::uint64_t>(8, cli.requests / 2);
    opt.ops_per_request = cli.ops;
    opt.clients_per_tenant = 1;
    opt.window = 8;
    opt.seed = cli.seed + 2;

    ReplayReport healthy = replay(service, tenants, opt);
    // Stuck-at-1 detect flag on sub-adder 1: the detect rate spikes far
    // over the analytic rate and the watchdog must trip to exact adds.
    service.inject_detect_fault(guarded, {1, true});
    opt.seed = cli.seed + 3;
    ReplayReport faulty = replay(service, tenants, opt);
    service.clear_detect_fault(guarded);
    service.reset_watchdog(guarded);
    opt.seed = cli.seed + 4;
    ReplayReport recovered = replay(service, tenants, opt);

    const ServiceStats stats = service.stats();
    check(healthy.silent_corruptions == 0, "chaos-leg corruption (healthy)",
          failures);
    check(faulty.silent_corruptions == 0, "chaos-leg corruption (faulty)",
          failures);
    check(recovered.silent_corruptions == 0,
          "chaos-leg corruption (recovered)", failures);
    check(stats.conservation_ok(), "chaos-leg conservation", failures);
    check(faulty.fallback_events > 0, "fault must trip the watchdog",
          failures);
    check(faulty.safe_mode_ops + faulty.budget_forced_exact_ops > 0,
          "fault must degrade service visibly", failures);
    check(recovered.fallback_events == 0,
          "no watchdog trips after fault cleared + reset", failures);
    // Under the fault, degradation shows up through two visible paths:
    // watchdog safe-mode ops and error-budget forced-exact ops (the
    // budget usually exhausts first — spurious corrections are wrong
    // results). Both count as non-silent fallback service.
    const double faulty_ops = static_cast<double>(faulty.operations);
    const std::uint64_t degraded_ops =
        faulty.safe_mode_ops + faulty.budget_forced_exact_ops;
    const double fallback_rate =
        faulty_ops > 0.0 ? static_cast<double>(degraded_ops) / faulty_ops
                         : 0.0;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"chaos\": {\"fallback_events\": %" PRIu64
                  ", \"safe_mode_ops\": %" PRIu64
                  ", \"budget_forced_exact_ops\": %" PRIu64
                  ", \"fallback_rate\": %.4f, \"recovered_degraded_ops\": "
                  "%" PRIu64 ", \"silent_corruptions\": %" PRIu64 "},\n",
                  faulty.fallback_events, faulty.safe_mode_ops,
                  faulty.budget_forced_exact_ops, fallback_rate,
                  recovered.safe_mode_ops + recovered.budget_forced_exact_ops,
                  healthy.silent_corruptions + faulty.silent_corruptions +
                      recovered.silent_corruptions);
    json += buf;
    std::printf("chaos: fallback_events=%" PRIu64 " fallback_rate=%.2f\n",
                faulty.fallback_events, fallback_rate);
  }

  // ---- leg 5: guarded tenants on the batched windowed path -------------
  // Two single-tenant services replay the identical workload, one with the
  // TenantSpec referee knob forcing the per-op scalar guarded path, one on
  // the default 64-lane batched windowed path. The batch path must be
  // bit-identical (same sums, same degradation accounting) and strictly
  // faster.
  {
    auto run_guarded = [&](bool force_scalar,
                           std::vector<std::vector<Response>>* collected,
                           double* secs) {
      ServiceOptions so;
      so.workers = 2;
      ApproxService service(so);
      std::string error;
      auto cfg = gear::core::GeArConfig::make(16, 4, 4);
      TenantSpec spec(*cfg);
      gear::core::DegradationPolicy policy;
      policy.window = 256;
      policy.spike_factor = 4.0;
      policy.safe_mode = gear::core::SafeMode::kExactAdd;
      policy.cooldown_windows = 4;
      spec.degradation = policy;
      spec.force_scalar_path = force_scalar;
      auto id = service.add_tenant(
          force_scalar ? "guarded-scalar" : "guarded-batch", std::move(spec),
          &error);
      if (!id) {
        std::fprintf(stderr, "tenant registration failed: %s\n", error.c_str());
        std::exit(1);
      }
      ReplayOptions opt;
      opt.requests_per_client = cli.requests;
      opt.ops_per_request = cli.ops;
      opt.clients_per_tenant = 1;
      opt.window = 16;
      opt.seed = cli.seed + 5;
      const std::uint64_t t0 = gear::obs::monotonic_now_ns();
      const ReplayReport report = replay(service, {*id}, opt, collected);
      *secs = static_cast<double>(gear::obs::monotonic_now_ns() - t0) * 1e-9;
      check(report.silent_corruptions == 0, "guarded-leg corruption", failures);
      check(service.stats().conservation_ok(), "guarded-leg conservation",
            failures);
      return report;
    };
    std::vector<std::vector<Response>> scalar_resp, batch_resp;
    double scalar_secs = 0.0, batch_secs = 0.0;
    const ReplayReport scalar_rep =
        run_guarded(/*force_scalar=*/true, &scalar_resp, &scalar_secs);
    const ReplayReport batch_rep =
        run_guarded(/*force_scalar=*/false, &batch_resp, &batch_secs);

    bool identical = scalar_resp.size() == batch_resp.size();
    for (std::size_t t = 0; identical && t < scalar_resp.size(); ++t) {
      if (scalar_resp[t].size() != batch_resp[t].size()) {
        identical = false;
        break;
      }
      for (std::size_t i = 0; i < scalar_resp[t].size(); ++i) {
        if (!deterministic_equal(scalar_resp[t][i], batch_resp[t][i])) {
          identical = false;
          break;
        }
      }
    }
    const double scalar_ops_s =
        scalar_secs > 0.0
            ? static_cast<double>(scalar_rep.operations) / scalar_secs
            : 0.0;
    const double batch_ops_s =
        batch_secs > 0.0
            ? static_cast<double>(batch_rep.operations) / batch_secs
            : 0.0;
    check(identical, "guarded batch path bit-identical to forced-scalar",
          failures);
    check(batch_ops_s > scalar_ops_s,
          "guarded batch path must out-throughput forced-scalar", failures);
    std::printf("guarded batch: %.3g ops/s vs scalar %.3g ops/s (%.2fx), %s\n",
                batch_ops_s, scalar_ops_s,
                scalar_ops_s > 0.0 ? batch_ops_s / scalar_ops_s : 0.0,
                identical ? "bit-identical" : "MISMATCH");
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"guarded_batch\": {\"scalar_ops_per_sec\": %.1f, "
                  "\"batch_ops_per_sec\": %.1f, \"speedup\": %.3f, "
                  "\"bit_identical\": %s},\n",
                  scalar_ops_s, batch_ops_s,
                  scalar_ops_s > 0.0 ? batch_ops_s / scalar_ops_s : 0.0,
                  identical ? "true" : "false");
    json += buf;
  }

  json += "  \"failures\": " + std::to_string(failures) + "\n}\n";
  gear::benchutil::write_bench_json("service", json);
  if (failures != 0) {
    std::fprintf(stderr, "bench_service: %d invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("bench_service: all invariants held\n");
  return 0;
}
