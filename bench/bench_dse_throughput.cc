// Design-space-exploration throughput: the cached parallel sweep vs the
// seed serial-uncached sweep, plus the exact error-PMF engine vs Monte
// Carlo on the paper's Table III configurations.
//
// The headline experiment is the full N=32 selection sweep (every strict
// and relaxed candidate, error bound 1.0 so nothing is filtered) followed
// by Pareto-frontier extraction:
//
//  * serial uncached — rank_configs with a default SweepContext, exactly
//    the seed code path: every candidate synthesized from scratch.
//  * parallel cached, cold — a fresh DseCache + ParallelExecutor: the
//    Tier-B fast path serves no-detection layouts analytically and the
//    Tier-A memo dedupes layout-identical candidates.
//  * parallel cached, warm — same context again: everything hits.
//  * warm from JSON — a new cache loaded from the cold run's save_json.
//
// All four variants must produce bit-identical ranked lists and Pareto
// fronts (verified here, not assumed); the acceptance criterion is
// cold speedup >= 10x. Emits BENCH_dse.json.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dse_cache.h"
#include "analysis/pareto.h"
#include "analysis/selector.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/config.h"
#include "core/error_model.h"
#include "stats/parallel.h"
#include "stats/pmf.h"
#include "stats/rng.h"

namespace {

using gear::analysis::DesignCandidate;
using gear::analysis::SelectedConfig;
using gear::core::GeArConfig;

struct SweepOutput {
  std::vector<SelectedConfig> ranked;
  std::vector<DesignCandidate> front;
};

SweepOutput run_sweep(const gear::analysis::SelectionRequest& req,
                      const gear::analysis::SweepContext& ctx) {
  SweepOutput out;
  out.ranked = gear::analysis::rank_configs(req, ctx);
  std::vector<DesignCandidate> candidates;
  candidates.reserve(out.ranked.size());
  for (const auto& sel : out.ranked) {
    candidates.push_back({sel.cfg.name(), sel.delay_ns,
                          static_cast<double>(sel.area_luts),
                          sel.error_probability});
  }
  out.front = gear::analysis::pareto_front(std::move(candidates));
  return out;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall-clock of one sweep.
template <typename Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_ms();
    fn();
    const double t1 = now_ms();
    if (i == 0 || t1 - t0 < best) best = t1 - t0;
  }
  return best;
}

bool same_selection(const SelectedConfig& a, const SelectedConfig& b) {
  return a.cfg.layout() == b.cfg.layout() &&
         a.error_probability == b.error_probability &&
         a.delay_ns == b.delay_ns && a.area_luts == b.area_luts &&
         a.score == b.score && a.exact_med == b.exact_med &&
         a.exact_ned == b.exact_ned && a.exact_ned_range == b.exact_ned_range;
}

bool same_output(const SweepOutput& a, const SweepOutput& b) {
  if (a.ranked.size() != b.ranked.size() || a.front.size() != b.front.size())
    return false;
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    if (!same_selection(a.ranked[i], b.ranked[i])) return false;
  }
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    if (a.front[i].label != b.front[i].label ||
        a.front[i].delay_ns != b.front[i].delay_ns ||
        a.front[i].area_luts != b.front[i].area_luts ||
        a.front[i].error != b.front[i].error)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  std::printf("== DSE throughput: cached parallel sweep vs serial uncached ==\n\n");

  gear::analysis::SelectionRequest req;
  req.n = 32;
  req.max_error_probability = 1.0;  // keep every candidate
  req.objective = gear::analysis::Objective::kDelay;

  // --- serial uncached (the seed code path) ---
  SweepOutput serial;
  const double serial_ms =
      best_of_ms(3, [&] { serial = run_sweep(req, {}); });

  // --- parallel cached, cold then warm ---
  gear::stats::ParallelExecutor exec(0);
  gear::analysis::DseCache cache;
  gear::analysis::SweepContext ctx{&exec, &cache};
  SweepOutput cold;
  const double cold_t0 = now_ms();
  cold = run_sweep(req, ctx);
  const double cold_ms = now_ms() - cold_t0;

  SweepOutput warm;
  const double warm_ms = best_of_ms(3, [&] { warm = run_sweep(req, ctx); });

  // --- warm from persisted JSON ---
  const char* tmp = std::getenv("TMPDIR");
  const std::string cache_path =
      (tmp ? std::string(tmp) : std::string("/tmp")) + "/gear_dse_cache.json";
  const bool saved = cache.save_json(cache_path);
  gear::analysis::DseCache disk_cache;
  const bool loaded = saved && disk_cache.load_json(cache_path);
  gear::analysis::SweepContext disk_ctx{&exec, &disk_cache};
  SweepOutput from_disk;
  const double disk_ms =
      best_of_ms(3, [&] { from_disk = run_sweep(req, disk_ctx); });
  std::remove(cache_path.c_str());

  const bool identical = same_output(serial, cold) &&
                         same_output(serial, warm) &&
                         same_output(serial, from_disk);
  const double speedup_cold = serial_ms / cold_ms;
  const double speedup_warm = serial_ms / warm_ms;

  gear::analysis::Table sweep_table(
      {"variant", "time (ms)", "speedup", "ranked", "front"});
  const auto add_variant = [&](const char* name, double ms,
                               const SweepOutput& out) {
    char ms_s[32], sp_s[32];
    std::snprintf(ms_s, sizeof ms_s, "%.3f", ms);
    std::snprintf(sp_s, sizeof sp_s, "%.1fx", serial_ms / ms);
    sweep_table.add_row({name, ms_s, sp_s, std::to_string(out.ranked.size()),
                         std::to_string(out.front.size())});
  };
  add_variant("serial uncached (seed)", serial_ms, serial);
  add_variant("parallel cached, cold", cold_ms, cold);
  add_variant("parallel cached, warm", warm_ms, warm);
  add_variant("warm from JSON", disk_ms, from_disk);
  std::fputs(sweep_table.to_ascii().c_str(), stdout);
  std::printf(
      "\nN=%d, bound=%.2f; threads=%d; cache: %zu entries, %llu hits, "
      "%llu misses, %llu fast-path\nbit-identical outputs: %s; JSON "
      "persistence: %s\n\n",
      req.n, req.max_error_probability, exec.threads(), cache.size(),
      static_cast<unsigned long long>(cache.hits()),
      static_cast<unsigned long long>(cache.misses()),
      static_cast<unsigned long long>(cache.fast_path_evals()),
      identical ? "yes" : "NO (BUG)", loaded ? "ok" : "FAILED");

  // --- exact PMF engine vs Monte Carlo on the Table III configs ---
  std::printf("== Exact error PMF vs Monte Carlo (Table III configs) ==\n\n");
  gear::analysis::Table pmf_table({"(N,R,P)", "ER exact", "ER MC 1e5",
                                   "MED exact", "MED MC", "support",
                                   "PMF time (us)"});
  std::ostringstream pmf_json;
  bool first_pmf = true;
  const int pmf_cfgs[][3] = {{12, 4, 4}, {16, 4, 8}, {32, 8, 8}, {48, 8, 16}};
  for (const auto& c : pmf_cfgs) {
    const GeArConfig cfg = gear::benchutil::require_config(c[0], c[1], c[2]);
    const double t0 = now_ms();
    const gear::stats::Pmf pmf = gear::core::exact_error_distribution(cfg);
    const double pmf_us = (now_ms() - t0) * 1000.0;
    const auto metrics = gear::core::exact_error_metrics(cfg);

    gear::stats::Rng rng =
        gear::stats::Rng::substream(gear::stats::Rng::kDefaultSeed, "dse-pmf-mc");
    const auto hist = gear::core::mc_error_distribution(cfg, 100000, rng);
    const gear::stats::Pmf mc = gear::stats::Pmf::from_histogram(hist);

    char id[32], er_e[24], er_m[24], med_e[24], med_m[24], us[24];
    std::snprintf(id, sizeof id, "(%d,%d,%d)", c[0], c[1], c[2]);
    std::snprintf(er_e, sizeof er_e, "%.6f", 1.0 - pmf.mass(0));
    std::snprintf(er_m, sizeof er_m, "%.6f", 1.0 - mc.mass(0));
    std::snprintf(med_e, sizeof med_e, "%.4g", metrics.med);
    std::snprintf(med_m, sizeof med_m, "%.4g", mc.mean_abs());
    std::snprintf(us, sizeof us, "%.1f", pmf_us);
    pmf_table.add_row({id, er_e, er_m, med_e, med_m,
                       std::to_string(pmf.distinct()), us});

    pmf_json << (first_pmf ? "" : ",") << "\n    {\"config\": \""
             << gear::benchutil::json_escape(cfg.name()) << "\", \"er_exact\": "
             << 1.0 - pmf.mass(0) << ", \"er_mc\": " << 1.0 - mc.mass(0)
             << ", \"med_exact\": " << metrics.med
             << ", \"med_mc\": " << mc.mean_abs()
             << ", \"ned_range\": " << metrics.ned_range
             << ", \"support\": " << pmf.distinct()
             << ", \"pmf_us\": " << pmf_us << "}";
    first_pmf = false;
  }
  std::fputs(pmf_table.to_ascii().c_str(), stdout);
  std::printf(
      "\nExact columns are closed-form/DP (no sampling); the MC columns are\n"
      "1e5-trial referees. PMF support stays tiny for the paper's uniform\n"
      "configs, so exact metrics cost microseconds.\n");

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"dse_throughput\",\n"
       << "  \"n\": " << req.n << ",\n"
       << "  \"candidates_ranked\": " << serial.ranked.size() << ",\n"
       << "  \"pareto_front\": " << serial.front.size() << ",\n"
       << "  \"threads\": " << exec.threads() << ",\n"
       << "  \"serial_uncached_ms\": " << serial_ms << ",\n"
       << "  \"parallel_cached_cold_ms\": " << cold_ms << ",\n"
       << "  \"parallel_cached_warm_ms\": " << warm_ms << ",\n"
       << "  \"warm_from_json_ms\": " << disk_ms << ",\n"
       << "  \"speedup_cold\": " << speedup_cold << ",\n"
       << "  \"speedup_warm\": " << speedup_warm << ",\n"
       << "  \"speedup\": " << speedup_warm << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"json_persistence_ok\": " << (loaded ? "true" : "false") << ",\n"
       << "  \"cache\": {\"entries\": " << cache.size()
       << ", \"hits\": " << cache.hits() << ", \"misses\": " << cache.misses()
       << ", \"fast_path\": " << cache.fast_path_evals() << "},\n"
       << "  \"pmf_vs_mc\": [" << pmf_json.str() << "\n  ]\n"
       << "}\n";
  gear::benchutil::write_bench_json("dse", json.str());

  return identical && loaded ? 0 : 1;
}
