// Analytic-vs-MC error divergence on real app kernel traces, before and
// after conditioning the analytic engine on the workload's operand
// distribution (DESIGN.md §5i).
//
// For each kernel (integral, SAD, LPF, Sobel) this bench captures the
// operand trace of one deterministic run, then evaluates each GeAr config
// four ways:
//
//  * MC referee — trace_error_distribution: the full trace replayed
//    through the adder, §5a-sharded (bit-identical at any thread count).
//  * uniform analytic — exact_error_metrics(cfg): the seed engine, which
//    assumes uniform i.i.d. operands and diverges on correlated traces.
//  * marginal analytic — per-bit-position marginals, independence
//    assumed: the generalized-DP ablation point.
//  * conditioned analytic — the empirical OperandModel: exact for the
//    trace distribution, so it must match the referee to within FP noise.
//
// Exits non-zero if the conditioned analytic figures diverge from the
// replay referee beyond the CI bound, if the uniform-model overloads are
// not bit-identical to the seed uniform engine, or if the sharded replay
// is not bit-identical across thread counts {1,2,8}. Emits
// BENCH_error_model_traces.json with the before/after divergence table.
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dse_cache.h"
#include "analysis/selector.h"
#include "analysis/table.h"
#include "apps/trace.h"
#include "bench_util.h"
#include "core/config.h"
#include "core/error_model.h"
#include "stats/operand_model.h"
#include "stats/parallel.h"
#include "stats/pmf.h"

namespace {

using gear::core::GeArConfig;
using gear::stats::OperandModel;
using gear::stats::Pmf;
using gear::stats::SparseHistogram;
using gear::stats::TraceSource;

/// CI bound on the conditioned-analytic vs replay-referee divergence.
/// The empirical engine reproduces the replay PMF arithmetic exactly, so
/// the observed divergence is zero; the bound only leaves room for a
/// platform reordering FP sums.
constexpr double kCiBound = 1e-12;

constexpr std::uint64_t kSeed = 20260809;

struct Row {
  std::string kernel;
  std::string config;
  std::uint64_t samples = 0;
  std::size_t classes = 0;
  double er_mc = 0.0, er_uniform = 0.0, er_marginal = 0.0, er_cond = 0.0;
  double med_mc = 0.0, med_uniform = 0.0, med_marginal = 0.0, med_cond = 0.0;
  double div_uniform = 0.0;  ///< |er_uniform - er_mc|
  double div_cond = 0.0;     ///< |er_cond - er_mc|
};

bool same_entries(const SparseHistogram& a, const SparseHistogram& b) {
  return a.entries() == b.entries() && a.total() == b.total();
}

bool same_pmf(const Pmf& a, const Pmf& b) {
  return a.entries() == b.entries();
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  std::printf(
      "== Analytic-vs-MC error divergence on app traces (before/after "
      "distribution conditioning) ==\n\n");

  const char* kernels[] = {"integral", "sad", "lpf", "sobel"};
  const int eval_cfgs[][3] = {{16, 4, 4}, {16, 2, 4}};
  const int width = 16;

  gear::stats::ParallelExecutor exec8(8);

  bool uniform_identical = true;
  bool threads_identical = true;
  bool conditioned_within_bound = true;
  std::vector<Row> rows;

  for (const char* kernel : kernels) {
    TraceSource trace =
        gear::apps::capture_kernel_trace(kernel, width, 96, 64, kSeed);
    const OperandModel empirical =
        OperandModel::from_trace(width, trace.pairs(), trace.name());
    const OperandModel marginal = empirical.marginal_model();
    const OperandModel uniform = OperandModel::uniform(width);

    for (const auto& c : eval_cfgs) {
      const GeArConfig cfg = gear::benchutil::require_config(c[0], c[1], c[2]);

      // §5a-sharded replay referee, pinned bit-identical at {1,2,8}
      // threads (and against the serial driver).
      const SparseHistogram replay =
          gear::core::trace_error_distribution(cfg, trace, exec8);
      {
        gear::stats::ParallelExecutor exec1(1), exec2(2);
        const auto h1 = gear::core::trace_error_distribution(cfg, trace, exec1);
        const auto h2 = gear::core::trace_error_distribution(cfg, trace, exec2);
        const auto hs = gear::core::trace_error_distribution(cfg, trace);
        if (!same_entries(replay, h1) || !same_entries(replay, h2) ||
            !same_entries(replay, hs)) {
          threads_identical = false;
        }
      }
      const Pmf mc = Pmf::from_histogram(replay);

      // Uniform-model delegation must be bit-identical to the seed
      // engine — this is also the tripwire for uniform results drifting
      // from the seed at all.
      if (!same_pmf(gear::core::exact_error_distribution(cfg, uniform),
                    gear::core::exact_error_distribution(cfg)) ||
          !(gear::core::exact_error_metrics(cfg, uniform) ==
            gear::core::exact_error_metrics(cfg))) {
        uniform_identical = false;
      }

      const auto m_uniform = gear::core::exact_error_metrics(cfg);
      const auto m_marginal = gear::core::exact_error_metrics(cfg, marginal);
      const auto m_cond = gear::core::exact_error_metrics(cfg, empirical);

      Row row;
      row.kernel = kernel;
      row.config = cfg.name();
      row.samples = empirical.samples();
      row.classes = empirical.classes().size();
      row.er_mc = 1.0 - mc.mass(0);
      row.er_uniform = m_uniform.error_probability;
      row.er_marginal = m_marginal.error_probability;
      row.er_cond = m_cond.error_probability;
      row.med_mc = mc.mean_abs();
      row.med_uniform = m_uniform.med;
      row.med_marginal = m_marginal.med;
      row.med_cond = m_cond.med;
      row.div_uniform = std::fabs(row.er_uniform - row.er_mc);
      row.div_cond = std::fabs(row.er_cond - row.er_mc);
      if (row.div_cond > kCiBound ||
          std::fabs(row.med_cond - row.med_mc) > kCiBound) {
        conditioned_within_bound = false;
      }
      rows.push_back(row);
    }
  }

  gear::analysis::Table table({"kernel", "config", "samples", "classes",
                               "ER replay", "ER uniform", "ER marginal",
                               "ER conditioned", "|div| uniform",
                               "|div| cond"});
  for (const Row& r : rows) {
    char eu[24], em[24], ec[24], er[24], du[24], dc[24];
    std::snprintf(er, sizeof er, "%.6f", r.er_mc);
    std::snprintf(eu, sizeof eu, "%.6f", r.er_uniform);
    std::snprintf(em, sizeof em, "%.6f", r.er_marginal);
    std::snprintf(ec, sizeof ec, "%.6f", r.er_cond);
    std::snprintf(du, sizeof du, "%.2e", r.div_uniform);
    std::snprintf(dc, sizeof dc, "%.2e", r.div_cond);
    table.add_row({r.kernel, r.config, std::to_string(r.samples),
                   std::to_string(r.classes), er, eu, em, ec, du, dc});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nER replay = full deterministic trace replay (sharded, §5a); the\n"
      "conditioned analytic column must match it within %.0e. The uniform\n"
      "column is the seed engine's figure — its divergence is the bug this\n"
      "model fixes; the marginal column shows how much of it per-bit\n"
      "marginals alone recover.\n\n",
      kCiBound);

  // Workload-aware selection: rerun the paper's designer workflow on the
  // Sobel trace and report whether the analytic choice moves once the
  // error figures are trace-conditioned. No Monte Carlo in the loop —
  // both sweeps are fully analytic.
  TraceSource sel_trace =
      gear::apps::capture_kernel_trace("sobel", width, 96, 64, kSeed);
  const OperandModel sel_model =
      OperandModel::from_trace(width, sel_trace.pairs(), sel_trace.name());
  gear::analysis::SelectionRequest req;
  req.n = width;
  req.max_error_probability = 0.005;
  req.objective = gear::analysis::Objective::kDelay;
  gear::analysis::DseCache cache;
  gear::analysis::SweepContext uni_ctx{&exec8, &cache};
  gear::analysis::SweepContext model_ctx{&exec8, &cache, &sel_model};
  const auto uni_sel = gear::analysis::select_config(req, uni_ctx);
  const auto cond_sel = gear::analysis::select_config(req, model_ctx);
  std::printf("Selector @ N=%d, bound %.3f, objective delay (sobel trace):\n",
              req.n, req.max_error_probability);
  if (uni_sel) {
    std::printf("  uniform:     %s (ER %.6f, MED %.4g)\n",
                uni_sel->cfg.name().c_str(), uni_sel->error_probability,
                uni_sel->exact_med);
  }
  if (cond_sel) {
    std::printf(
        "  conditioned: %s (workload ER %.6f, workload MED %.4g, uniform ER "
        "%.6f, decided by %s)\n",
        cond_sel->cfg.name().c_str(), cond_sel->error_probability,
        cond_sel->exact_med, cond_sel->uniform_error_probability,
        gear::analysis::tie_break_name(cond_sel->decided_by));
  }

  const bool ok =
      uniform_identical && threads_identical && conditioned_within_bound;
  std::printf(
      "\nuniform-model bit-identity: %s; replay thread-identity {1,2,8}: %s; "
      "conditioned within %.0e: %s\n",
      uniform_identical ? "yes" : "NO (BUG)",
      threads_identical ? "yes" : "NO (BUG)", kCiBound,
      conditioned_within_bound ? "yes" : "NO (BUG)");

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"error_model_traces\",\n"
       << "  \"width\": " << width << ",\n"
       << "  \"ci_bound\": " << kCiBound << ",\n"
       << "  \"uniform_model_bit_identical\": "
       << (uniform_identical ? "true" : "false") << ",\n"
       << "  \"replay_thread_identical\": "
       << (threads_identical ? "true" : "false") << ",\n"
       << "  \"conditioned_within_bound\": "
       << (conditioned_within_bound ? "true" : "false") << ",\n"
       << "  \"kernels\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << (i ? "," : "") << "\n    {\"kernel\": \"" << r.kernel
         << "\", \"config\": \"" << gear::benchutil::json_escape(r.config)
         << "\", \"samples\": " << r.samples
         << ", \"classes\": " << r.classes << ", \"er_replay\": " << r.er_mc
         << ", \"er_uniform\": " << r.er_uniform
         << ", \"er_marginal\": " << r.er_marginal
         << ", \"er_conditioned\": " << r.er_cond
         << ", \"med_replay\": " << r.med_mc
         << ", \"med_uniform\": " << r.med_uniform
         << ", \"med_marginal\": " << r.med_marginal
         << ", \"med_conditioned\": " << r.med_cond
         << ", \"divergence_uniform\": " << r.div_uniform
         << ", \"divergence_conditioned\": " << r.div_cond << "}";
  }
  json << "\n  ],\n"
       << "  \"selector\": {";
  if (uni_sel && cond_sel) {
    json << "\"uniform_choice\": \""
         << gear::benchutil::json_escape(uni_sel->cfg.name())
         << "\", \"conditioned_choice\": \""
         << gear::benchutil::json_escape(cond_sel->cfg.name())
         << "\", \"choice_moved\": "
         << (uni_sel->cfg.layout() == cond_sel->cfg.layout() ? "false"
                                                             : "true")
         << ", \"decided_by\": \""
         << gear::analysis::tie_break_name(cond_sel->decided_by) << "\"";
  }
  json << "}\n}\n";
  gear::benchutil::write_bench_json("error_model_traces", json.str());

  return ok ? 0 : 1;
}
