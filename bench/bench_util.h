// Shared benchmark utilities.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/table.h"
#include "core/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gear::benchutil {

/// Validates a benchmark's (N, R, P) literal through GeArConfig::make()
/// and exits naming the violated constraint on failure, so a typo'd sweep
/// entry or CLI override points at itself instead of abort()ing without
/// context mid-run.
inline core::GeArConfig require_config(int n, int r, int p) {
  auto cfg = core::GeArConfig::make(n, r, p);
  if (!cfg) {
    std::fprintf(stderr,
                 "error: invalid GeAr(N=%d, R=%d, P=%d): %s\n"
                 "       fix the config literal or sweep entry and rerun.\n",
                 n, r, p, core::GeArConfig::invalid_reason(n, r, p).c_str());
    std::exit(2);
  }
  return *cfg;
}

/// Heterogeneous-layout counterpart of require_config(): validates via
/// make_custom() and exits with custom_invalid_reason() on failure.
inline core::GeArConfig require_custom(
    int n, int l0, const std::vector<core::GeArConfig::Segment>& segments) {
  auto cfg = core::GeArConfig::make_custom(n, l0, segments);
  if (!cfg) {
    std::fprintf(
        stderr,
        "error: invalid custom GeAr layout (N=%d, L0=%d, %zu segments): %s\n"
        "       fix the segment list and rerun.\n",
        n, l0, segments.size(),
        core::GeArConfig::custom_invalid_reason(n, l0, segments).c_str());
    std::exit(2);
  }
  return *cfg;
}

/// Gives every bench binary the --metrics_out=<file>.json and
/// --trace_out=<file>.json flags: construct one first thing in main()
/// (it strips the flags from argc/argv so later consumers such as
/// google-benchmark never see them) and on destruction it snapshots
/// obs::global() / obs::TraceRecorder::global() to the requested paths.
class ObsExport {
 public:
  ObsExport(int& argc, char** argv) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      constexpr std::string_view kMetrics = "--metrics_out=";
      constexpr std::string_view kTrace = "--trace_out=";
      if (arg.rfind(kMetrics, 0) == 0) {
        metrics_path_ = std::string(arg.substr(kMetrics.size()));
      } else if (arg.rfind(kTrace, 0) == 0) {
        trace_path_ = std::string(arg.substr(kTrace.size()));
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    argv[argc] = nullptr;
  }

  ~ObsExport() {
    if (!metrics_path_.empty()) {
      if (obs::global().save_json(metrics_path_)) {
        std::printf("(metrics written to %s)\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     metrics_path_.c_str());
      }
    }
    if (!trace_path_.empty()) {
      if (obs::TraceRecorder::global().save(trace_path_)) {
        std::printf("(trace written to %s)\n", trace_path_.c_str());
      } else {
        std::fprintf(stderr, "warning: cannot write %s\n", trace_path_.c_str());
      }
    }
  }

  ObsExport(const ObsExport&) = delete;
  ObsExport& operator=(const ObsExport&) = delete;

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

/// Escapes `s` for embedding inside a JSON string literal: quote,
/// backslash and control characters (RFC 8259's mandatory set) are
/// escaped, everything else — including UTF-8 multibyte sequences — passes
/// through. Config names like `GeAr(16,4,4)` and free-form candidate
/// labels are emitted as JSON keys by several benchmarks; a stray quote or
/// backslash in a label must corrupt the label, not the document.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// When GEAR_BENCH_CSV_DIR is set, also writes the table as
/// $GEAR_BENCH_CSV_DIR/<stem>.csv so experiment results are
/// machine-diffable artifacts, not just console text.
inline void maybe_write_csv(const std::string& stem,
                            const analysis::Table& table) {
  const char* dir = std::getenv("GEAR_BENCH_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + stem + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << table.to_csv();
  std::printf("(csv written to %s)\n", path.c_str());
}

/// Writes `json` (an already-serialized document) as BENCH_<stem>.json so
/// benchmark results become trajectory-trackable artifacts, mirroring the
/// bench_adder_throughput JSON output. The file lands in
/// $GEAR_BENCH_JSON_DIR when set, else in the current directory.
inline void write_bench_json(const std::string& stem, const std::string& json) {
  const char* dir = std::getenv("GEAR_BENCH_JSON_DIR");
  const std::string path =
      (dir ? std::string(dir) + "/" : std::string()) + "BENCH_" + stem + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << json;
  std::printf("(json written to %s)\n", path.c_str());
}

}  // namespace gear::benchutil
