// Ablation — switching energy (extension): the paper motivates
// approximate adders with "orders of magnitude performance/power
// benefits"; this bench quantifies the power side on our substrate.
// Relative energy-per-addition (capacitance-weighted toggle counts over a
// uniform operand stream) for the Table I adder set, plus the
// energy-delay product and energy vs accuracy trade-off across the GeAr
// P-sweep.
#include <cstdio>

#include "bench_util.h"
#include "analysis/table.h"
#include "core/config.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "netlist/transform.h"
#include "stats/rng.h"
#include "synth/power.h"
#include "synth/report.h"

namespace {

constexpr std::uint64_t kVectors = 20000;

gear::synth::PowerReport power_of(const gear::netlist::Netlist& nl) {
  gear::stats::Rng rng = gear::stats::Rng::substream(
      gear::stats::Rng::kDefaultSeed, "ablation-energy");
  return gear::synth::estimate_power(nl, kVectors, rng);
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  using gear::core::GeArConfig;
  std::printf("== Ablation: switching energy per addition (N=16) ==\n\n");

  struct Entry {
    const char* label;
    gear::netlist::Netlist nl;
  };
  std::vector<Entry> entries;
  entries.push_back({"RCA", gear::netlist::build_rca(16)});
  entries.push_back({"ACA-I(L=4)", gear::netlist::build_aca1(16, 4)});
  entries.push_back({"ETAII(X=4)", gear::netlist::build_etaii(16, 4)});
  entries.push_back({"ACA-II(L=8)", gear::netlist::build_aca2(16, 8)});
  entries.push_back({"GDA(4,4)",
                     gear::netlist::specialize(gear::netlist::build_gda(16, 4, 4),
                                               {{"cfg", 0}})});
  entries.push_back(
      {"GeAr(4,4)",
       gear::netlist::build_gear(gear::benchutil::require_config(16, 4, 4),
                                 {.with_detection = false})});
  entries.push_back(
      {"GeAr(4,4)+det",
       gear::netlist::build_gear(gear::benchutil::require_config(16, 4, 4))});

  gear::analysis::Table table({"adder", "toggles/op", "energy/op",
                               "delay[ns]", "energy x delay"});
  for (const auto& e : entries) {
    const auto p = power_of(e.nl);
    const auto rep = gear::synth::synthesize(e.nl);
    const double delay = gear::synth::sum_path_delay(rep);
    table.add_row({e.label, gear::analysis::fmt_fixed(p.toggles_per_op, 2),
                   gear::analysis::fmt_fixed(p.energy_per_op, 2),
                   gear::analysis::fmt_fixed(delay, 3),
                   gear::analysis::fmt_fixed(p.energy_per_op * delay, 2)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  std::printf("\nEnergy vs accuracy across the GeAr R=4 P-sweep:\n");
  gear::analysis::Table sweep({"P", "Perr", "energy/op", "delay[ns]"});
  for (int p = 2; p <= 12; p += 2) {
    const auto cfg = *GeArConfig::make_relaxed(16, 4, p);
    const auto nl = gear::netlist::build_gear(cfg, {.with_detection = false});
    const auto pow = power_of(nl);
    const auto rep = gear::synth::synthesize(nl);
    sweep.add_row({std::to_string(p),
                   gear::analysis::fmt_pct(gear::core::paper_error_probability(cfg), 3),
                   gear::analysis::fmt_fixed(pow.energy_per_op, 2),
                   gear::analysis::fmt_fixed(gear::synth::sum_path_delay(rep), 3)});
  }
  std::fputs(sweep.to_ascii().c_str(), stdout);
  std::printf(
      "\nShape checks: overlapping-window adders pay energy for their\n"
      "redundant prediction bits (GeAr/ACA above RCA); accuracy (higher P)\n"
      "costs both energy and delay — the knob trades all three.\n");
  return 0;
}
