// Million-config heterogeneous DSE: budgeted exploration of the
// per-segment (R_j, P_j) layout space at N=32.
//
// The paper's enumerable uniform space at N=32 is a few hundred configs;
// heterogeneous per-block layouts (Farahmand et al.) blow it up to ~1e14.
// explore_hetero never materializes the space — a ranking DP decodes any
// index on demand — so this bench stride-samples a 2^20-layout budget
// (>= 1e6 configs ranked) and checks, not assumes, the §5a determinism
// contract:
//
//  * serial uncached — the referee: null executor, null cache.
//  * serial cached — same fold through a DseCache.
//  * parallel uncached, threads in {1, 2, 8}.
//  * parallel cached (8 threads), cold.
//  * warm from sharded disk — a fresh cache rebuilt via save_shards /
//    load_shards, then the same parallel run.
//
// Every variant must produce a bit-identical HeteroExploreResult
// (front, counters, everything). A second, exhaustively enumerable
// subspace (<= 1e4 configs) referees the branch-and-bound pruner: with
// pruning on, the kept frontier must equal the prune=false run's, with
// and without detection logic. Exit status is non-zero on any mismatch.
// Emits BENCH_dse_hetero.json. `--smoke` shrinks the budget to 2^14 for
// CI.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "analysis/design_space.h"
#include "analysis/dse_cache.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "stats/parallel.h"

namespace {

using gear::analysis::DseCache;
using gear::analysis::HeteroExploreOptions;
using gear::analysis::HeteroExploreResult;
using gear::analysis::HeteroSpace;
using gear::analysis::HeteroSpaceSpec;
using gear::analysis::SweepContext;
using gear::analysis::explore_hetero;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("== Heterogeneous DSE at scale: budgeted million-config sweep ==\n\n");

  // --- the big space: N=32, per-segment R,P in [1,8] ---
  HeteroSpaceSpec spec;
  spec.n = 32;
  spec.min_l0 = 1;
  spec.max_l0 = 31;
  spec.min_r = 1;
  spec.max_r = 8;
  spec.min_p = 1;
  spec.max_p = 8;
  spec.max_l = 12;
  spec.max_k = 8;
  const HeteroSpace space(spec);

  HeteroExploreOptions opts;
  opts.budget = smoke ? (1ULL << 14) : (1ULL << 20);
  opts.with_detection = false;
  opts.max_error_probability = 1.0;  // rank everything sampled
  opts.prune = true;
  const bool budget_ok = space.size() >= opts.budget;

  // --- serial uncached: the referee every variant must match ---
  HeteroExploreResult serial;
  double t0 = now_ms();
  serial = explore_hetero(space, opts);
  const double serial_ms = now_ms() - t0;

  // --- serial cached ---
  DseCache serial_cache;
  SweepContext serial_ctx{nullptr, &serial_cache};
  const HeteroExploreResult serial_cached = explore_hetero(space, opts, serial_ctx);

  // --- parallel uncached, threads in {1, 2, 8} ---
  bool identical = serial_cached == serial;
  double par8_uncached_ms = 0.0;
  for (const int threads : {1, 2, 8}) {
    gear::stats::ParallelExecutor exec(threads);
    SweepContext ctx{&exec, nullptr};
    t0 = now_ms();
    const HeteroExploreResult got = explore_hetero(space, opts, ctx);
    const double ms = now_ms() - t0;
    if (threads == 8) par8_uncached_ms = ms;
    identical = identical && got == serial;
  }

  // --- parallel cached (8 threads), cold ---
  gear::stats::ParallelExecutor exec8(8);
  DseCache cache;
  SweepContext cached_ctx{&exec8, &cache};
  t0 = now_ms();
  const HeteroExploreResult par_cached = explore_hetero(space, opts, cached_ctx);
  const double par_cached_ms = now_ms() - t0;
  identical = identical && par_cached == serial;

  // --- warm from sharded disk ---
  const char* tmp = std::getenv("TMPDIR");
  const std::string shard_dir =
      (tmp ? std::string(tmp) : std::string("/tmp")) + "/gear_hetero_shards";
  const bool saved = cache.save_shards(shard_dir, 8);
  DseCache disk_cache;
  const bool loaded = saved && disk_cache.load_shards(shard_dir);
  SweepContext disk_ctx{&exec8, &disk_cache};
  const HeteroExploreResult from_disk = explore_hetero(space, opts, disk_ctx);
  identical = identical && from_disk == serial;

  const double configs_per_sec =
      static_cast<double>(serial.evaluated) / (par_cached_ms / 1000.0);

  gear::analysis::Table table({"variant", "time (ms)", "front", "pruned",
                               "synthesized"});
  const auto add_row = [&](const char* name, double ms,
                           const HeteroExploreResult& r) {
    char ms_s[32];
    std::snprintf(ms_s, sizeof ms_s, "%.1f", ms);
    table.add_row({name, ms_s, std::to_string(r.front.size()),
                   std::to_string(r.pruned), std::to_string(r.synthesized)});
  };
  add_row("serial uncached (referee)", serial_ms, serial);
  add_row("parallel x8 uncached", par8_uncached_ms, serial);
  add_row("parallel x8 cached, cold", par_cached_ms, par_cached);
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nspace: %llu hetero layouts (N=%d, R,P<=%d, L<=%d, k<=%d); budget %llu"
      "%s\nevaluated %llu, filtered %llu, pruned %llu, synthesized %llu, "
      "front %zu\nthroughput %.0f configs/s (parallel cached); cache %zu "
      "entries\nbit-identical across serial/parallel x cached/uncached x "
      "threads {1,2,8}: %s\nsharded persistence (8 shards): %s\n\n",
      static_cast<unsigned long long>(space.size()), spec.n, spec.max_r,
      spec.max_l, spec.max_k, static_cast<unsigned long long>(opts.budget),
      smoke ? " (smoke)" : "",
      static_cast<unsigned long long>(serial.evaluated),
      static_cast<unsigned long long>(serial.filtered),
      static_cast<unsigned long long>(serial.pruned),
      static_cast<unsigned long long>(serial.synthesized), serial.front.size(),
      configs_per_sec, cache.size(), identical ? "yes" : "NO (BUG)",
      saved && loaded ? "ok" : "FAILED");

  // --- branch-and-bound referee: exhaustive <= 1e4-config subspace ---
  std::printf("== Branch-and-bound referee (exhaustive subspace) ==\n\n");
  HeteroSpaceSpec small;
  small.n = 16;
  small.min_l0 = 2;
  small.max_l0 = 10;
  small.min_r = 2;
  small.max_r = 6;
  small.min_p = 2;
  small.max_p = 6;
  small.max_l = 9;
  small.max_k = 4;
  const HeteroSpace small_space(small);
  const bool small_ok = small_space.size() <= 10000;

  bool referee_ok = small_ok;
  std::uint64_t referee_pruned = 0;
  for (const bool det : {false, true}) {
    HeteroExploreOptions pruned_opts;
    pruned_opts.budget = 0;  // exhaustive
    pruned_opts.with_detection = det;
    pruned_opts.max_error_probability = 0.5;
    pruned_opts.prune = true;
    HeteroExploreOptions ref_opts = pruned_opts;
    ref_opts.prune = false;

    gear::analysis::DseCache small_cache;
    SweepContext small_ctx{&exec8, &small_cache};
    const HeteroExploreResult with_bnb =
        explore_hetero(small_space, pruned_opts, small_ctx);
    const HeteroExploreResult referee =
        explore_hetero(small_space, ref_opts, small_ctx);
    const bool front_match = with_bnb.front == referee.front;
    referee_ok = referee_ok && front_match;
    if (!det) referee_pruned = with_bnb.pruned;
    std::printf(
        "det=%d: %llu configs, front %zu, pruned %llu (referee pruned 0, "
        "synthesized %llu vs %llu) -> fronts %s\n",
        det ? 1 : 0, static_cast<unsigned long long>(with_bnb.evaluated),
        with_bnb.front.size(),
        static_cast<unsigned long long>(with_bnb.pruned),
        static_cast<unsigned long long>(with_bnb.synthesized),
        static_cast<unsigned long long>(referee.synthesized),
        front_match ? "match" : "MISMATCH (BUG)");
  }
  std::printf("subspace size %llu (<= 10000: %s)\n\n",
              static_cast<unsigned long long>(small_space.size()),
              small_ok ? "yes" : "NO (BUG)");

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"dse_hetero\",\n"
       << "  \"n\": " << spec.n << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"space_size\": " << space.size() << ",\n"
       << "  \"budget\": " << opts.budget << ",\n"
       << "  \"evaluated\": " << serial.evaluated << ",\n"
       << "  \"filtered\": " << serial.filtered << ",\n"
       << "  \"pruned\": " << serial.pruned << ",\n"
       << "  \"synthesized\": " << serial.synthesized << ",\n"
       << "  \"front\": " << serial.front.size() << ",\n"
       << "  \"serial_uncached_ms\": " << serial_ms << ",\n"
       << "  \"parallel8_uncached_ms\": " << par8_uncached_ms << ",\n"
       << "  \"parallel8_cached_ms\": " << par_cached_ms << ",\n"
       << "  \"configs_per_sec\": " << configs_per_sec << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"shard_persistence_ok\": "
       << (saved && loaded ? "true" : "false") << ",\n"
       << "  \"referee\": {\"subspace_size\": " << small_space.size()
       << ", \"pruned\": " << referee_pruned
       << ", \"fronts_match\": " << (referee_ok ? "true" : "false") << "}\n"
       << "}\n";
  gear::benchutil::write_bench_json("dse_hetero", json.str());

  return identical && budget_ok && referee_ok && saved && loaded ? 0 : 1;
}
