// Extension — dynamic (event-driven) timing: measured settle times and
// glitch counts for the Table I adder set over random back-to-back
// operand transitions. Complements the static timing model: static delay
// is the structural worst case; mean settle shows the typical case that
// motivates speculative completion, and glitch counts show where the
// switching energy of deep carry logic goes.
#include <cstdio>

#include "bench_util.h"
#include "analysis/table.h"
#include "core/config.h"
#include "netlist/circuits.h"
#include "netlist/event_sim.h"
#include "netlist/transform.h"
#include "stats/rng.h"

namespace {

constexpr std::uint64_t kPairs = 5000;

void row(gear::analysis::Table& table, const char* label,
         gear::netlist::Netlist nl) {
  gear::netlist::EventSimulator sim(std::move(nl));
  gear::stats::Rng rng = gear::stats::Rng::substream(
      gear::stats::Rng::kDefaultSeed, "ext-dynamic");
  const auto p = sim.profile(kPairs, rng);
  table.add_row({label, gear::analysis::fmt_fixed(p.mean_settle, 3),
                 gear::analysis::fmt_fixed(p.max_settle, 3),
                 gear::analysis::fmt_fixed(p.mean_transitions, 2),
                 gear::analysis::fmt_fixed(p.mean_glitches, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  using gear::core::GeArConfig;
  std::printf(
      "== Extension: event-driven timing, N=16, %llu random transitions ==\n"
      "(time unit: 1.0 = one logic gate; carry hop = 0.2)\n\n",
      static_cast<unsigned long long>(kPairs));

  gear::analysis::Table table(
      {"adder", "mean settle", "max settle", "transitions/op", "glitches/op"});
  row(table, "RCA", gear::netlist::build_rca(16));
  row(table, "CLA (Kogge-Stone)", gear::netlist::build_cla(16));
  row(table, "ACA-I(L=4)", gear::netlist::build_aca1(16, 4));
  row(table, "ETAII(X=4)", gear::netlist::build_etaii(16, 4));
  row(table, "ACA-II(L=8)", gear::netlist::build_aca2(16, 8));
  row(table, "GDA(4,4)",
      gear::netlist::specialize(gear::netlist::build_gda(16, 4, 4), {{"cfg", 0}}));
  row(table, "GeAr(4,4)",
      gear::netlist::build_gear(gear::benchutil::require_config(16, 4, 4),
                                {.with_detection = false}));
  row(table, "GeAr(4,8)",
      gear::netlist::build_gear(gear::benchutil::require_config(16, 4, 8),
                                {.with_detection = false}));
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nShape checks: approximate adders cut worst-case settle (shorter\n"
      "chains); the prefix-tree CLA trades glitches for depth; GeAr's\n"
      "settle grows with P, tracking the static model.\n");
  return 0;
}
