// Ablation — error-model fidelity across the full N=16 strict design
// space: the paper's first-order sum, the full inclusion-exclusion
// (Eq. 7), and the exact carry-DP ground truth, cross-checked against
// Monte Carlo. Reports worst-case and average deviations, which quantify
// how safe it is to pick configurations by model alone (the paper's main
// usability claim for the error model).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "analysis/table.h"
#include "core/config.h"
#include "core/error_model.h"
#include "stats/rng.h"

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  using gear::core::GeArConfig;
  constexpr int kN = 16;

  struct Entry {
    GeArConfig cfg;
    double first_order, ie, exact;
  };
  std::vector<Entry> entries;
  for (const auto& cfg : GeArConfig::enumerate(kN)) {
    entries.push_back({cfg, gear::core::paper_error_probability_first_order(cfg),
                       gear::core::paper_error_probability(cfg),
                       gear::core::exact_error_probability(cfg)});
  }

  double worst_fo = 0.0, worst_ie = 0.0, sum_fo = 0.0, sum_ie = 0.0;
  const Entry* worst_entry = nullptr;
  int order_flips = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    const double dev_fo = std::abs(e.first_order - e.exact);
    const double dev_ie = std::abs(e.ie - e.exact);
    sum_fo += dev_fo;
    sum_ie += dev_ie;
    if (dev_ie > worst_ie) {
      worst_ie = dev_ie;
      worst_entry = &e;
    }
    worst_fo = std::max(worst_fo, dev_fo);
    // Does the model ever rank two configurations differently than the
    // ground truth? (That is what would mislead a designer.)
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const auto& f = entries[j];
      const bool model_less = e.ie < f.ie;
      const bool truth_less = e.exact < f.exact;
      if (std::abs(e.exact - f.exact) > 1e-6 && model_less != truth_less) {
        ++order_flips;
      }
    }
  }

  std::printf("== Ablation: error-model fidelity, all %zu strict N=%d configs ==\n\n",
              entries.size(), kN);
  gear::analysis::Table table({"estimator", "mean |dev| vs exact", "max |dev|"});
  table.add_row({"first-order sum (paper tables)",
                 gear::analysis::fmt_sci(sum_fo / static_cast<double>(entries.size()), 3),
                 gear::analysis::fmt_sci(worst_fo, 3)});
  table.add_row({"inclusion-exclusion (Eq. 7)",
                 gear::analysis::fmt_sci(sum_ie / static_cast<double>(entries.size()), 3),
                 gear::analysis::fmt_sci(worst_ie, 3)});
  std::fputs(table.to_ascii().c_str(), stdout);

  if (worst_entry) {
    std::printf("\nWorst IE deviation at %s: model %.5f vs exact %.5f.\n",
                worst_entry->cfg.name().c_str(), worst_entry->ie,
                worst_entry->exact);
  } else {
    std::printf(
        "\nThe inclusion-exclusion model is numerically identical to the\n"
        "exact DP on every configuration: a carry originating deeper than\n"
        "the R bits the model considers always implies an error event at a\n"
        "lower sub-adder, so the event-set *union* is unchanged by the\n"
        "truncation. The paper's model is exact, not approximate.\n");
    worst_entry = &entries.front();
  }
  std::printf(
      "Ranking fidelity: %d order inversions out of %zu config pairs.\n",
      order_flips, entries.size() * (entries.size() - 1) / 2);

  // Monte-Carlo spot check on the worst configuration.
  if (worst_entry) {
    gear::stats::Rng rng = gear::stats::Rng::substream(
        gear::stats::Rng::kDefaultSeed, "ablation-model-mc");
    const auto mc =
        gear::core::mc_error_probability(worst_entry->cfg, 500000, rng);
    std::printf(
        "MC referee on that config: %.5f [%.5f, %.5f] — exact DP %s the CI.\n",
        mc.p, mc.ci.lo, mc.ci.hi,
        mc.ci.contains(worst_entry->exact) ? "inside" : "OUTSIDE");
  }
  return 0;
}
