// Ablation — the configurable error-control select (paper Section 3.3)
// on GeAr(16,2,2) (k=7):
//
//  * LSB-first prefix masks: error *rate* falls monotonically, but MED
//    barely moves until the top sub-adder is enabled (the 2^14-weighted
//    region dominates the error distance).
//  * MSB-first suffix masks: MED collapses immediately — if an
//    application cares about error magnitude rather than exactness, the
//    error-control select should enable the most-significant sub-adders
//    first. (Detection via c_o(j-1) is only guaranteed for the lowest
//    erroneous sub-adder, so suffix masks still leave some misses; the
//    sweep quantifies them.)
//
// Also: the paper's best/average/worst bracket model vs the measured
// cycle distribution, and the LUT cost of the correction network.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "analysis/table.h"
#include "analysis/timing_model.h"
#include "core/correction.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "stats/rng.h"
#include "synth/report.h"

namespace {

constexpr std::uint64_t kTrials = 200000;
constexpr double kDelayNs = 1.2;  // representative sub-adder delay

struct SweepRow {
  std::string label;
  double error_rate = 0.0, med = 0.0, avg_cycles = 0.0, expected_s = 0.0;
  int max_cycles = 0;
};

SweepRow measure(const gear::core::GeArConfig& cfg, std::uint64_t mask,
                 std::string label) {
  const gear::core::Corrector corr(cfg, mask);
  gear::stats::Rng rng = gear::stats::Rng::substream(
      gear::stats::Rng::kDefaultSeed, "ablation-ecc");
  SweepRow row;
  row.label = std::move(label);
  std::vector<double> cycle_pmf(static_cast<std::size_t>(cfg.k()) + 1, 0.0);
  std::uint64_t errors = 0;
  double med = 0.0, cycles = 0.0;
  for (std::uint64_t t = 0; t < kTrials; ++t) {
    const std::uint64_t a = rng.bits(cfg.n());
    const std::uint64_t b = rng.bits(cfg.n());
    const auto res = corr.add(a, b);
    if (res.sum != a + b) ++errors;
    med += static_cast<double>((a + b) - res.sum);
    cycles += res.cycles;
    row.max_cycles = std::max(row.max_cycles, res.cycles);
    cycle_pmf[static_cast<std::size_t>(res.cycles - 1)] += 1.0;
  }
  for (double& p : cycle_pmf) p /= static_cast<double>(kTrials);
  row.error_rate = static_cast<double>(errors) / static_cast<double>(kTrials);
  row.med = med / static_cast<double>(kTrials);
  row.avg_cycles = cycles / static_cast<double>(kTrials);
  row.expected_s = gear::analysis::expected_time_s(kDelayNs, cycle_pmf);
  return row;
}

void add_row(gear::analysis::Table& table, const SweepRow& row) {
  table.add_row({row.label, gear::analysis::fmt_pct(row.error_rate, 3),
                 gear::analysis::fmt_fixed(row.med, 2),
                 gear::analysis::fmt_fixed(row.avg_cycles, 4),
                 std::to_string(row.max_cycles),
                 gear::analysis::fmt_sci(row.expected_s, 4)});
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  using gear::core::GeArConfig;
  const GeArConfig cfg = gear::benchutil::require_config(16, 2, 2);
  const int k = cfg.k();

  std::printf("== Ablation: configurable error correction, %s (k=%d) ==\n\n",
              cfg.name().c_str(), k);

  std::printf("LSB-first prefix masks (paper's lowest-first order):\n");
  gear::analysis::Table prefix({"enabled set", "error rate", "MED",
                                "avg cycles", "max cycles", "expected time[s]"});
  for (int m = 0; m <= k - 1; ++m) {
    std::uint64_t mask = 0;
    for (int j = 1; j <= m; ++j) mask |= 1ULL << j;
    add_row(prefix, measure(cfg, mask,
                            m == 0 ? "none" : "sub-adders 1.." + std::to_string(m)));
  }
  std::fputs(prefix.to_ascii().c_str(), stdout);

  std::printf("\nMSB-first suffix masks (magnitude-oriented selection):\n");
  gear::analysis::Table suffix({"enabled set", "error rate", "MED",
                                "avg cycles", "max cycles", "expected time[s]"});
  for (int m = 0; m <= k - 1; ++m) {
    std::uint64_t mask = 0;
    for (int j = k - m; j <= k - 1; ++j) mask |= 1ULL << j;
    add_row(suffix, measure(cfg, mask,
                            m == 0 ? "none"
                                   : "sub-adders " + std::to_string(k - m) +
                                         ".." + std::to_string(k - 1)));
  }
  std::fputs(suffix.to_ascii().c_str(), stdout);

  // Bracket model vs measured expectation, full correction.
  const double perr = gear::core::paper_error_probability(cfg);
  const auto bracket = gear::analysis::execution_timing(kDelayNs, perr, k);
  std::printf(
      "\nBracket model (full correction): best %.4e s, average %.4e s,\n"
      "worst %.4e s — the measured full-prefix expected time must fall\n"
      "inside [best, worst].\n",
      bracket.best_s, bracket.average_s, bracket.worst_s);

  // Area: detection only vs detection + correction path.
  const auto plain = gear::synth::synthesize(gear::netlist::build_gear(cfg));
  const auto ecc = gear::synth::synthesize(gear::netlist::build_gear(
      cfg, {.with_detection = true, .with_correction = true}));
  std::printf(
      "\nArea: detection only %d LUTs; with correction path %d LUTs\n"
      "(+%d LUTs for the OR/mux rewrite network).\n",
      plain.area_luts, ecc.area_luts, ecc.area_luts - plain.area_luts);
  return 0;
}
