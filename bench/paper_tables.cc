#include "paper_tables.h"

#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "adders/gda.h"
#include "adders/gear_adapter.h"
#include "adders/registry.h"
#include "analysis/dse_cache.h"
#include "core/config.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "netlist/transform.h"
#include "stats/parallel.h"
#include "stats/rng.h"
#include "synth/report.h"

namespace gear::benchtables {
namespace {

/// Exhaustive MED/NED over all 8-bit operand pairs.
double exhaustive_ned(const adders::ApproxAdder& adder) {
  double med = 0.0, max_ed = 0.0;
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const double ed = static_cast<double>((a + b) - adder.add(a, b));
      med += ed;
      if (ed > max_ed) max_ed = ed;
    }
  }
  med /= 65536.0;
  return max_ed > 0 ? med / max_ed : 0.0;
}

}  // namespace

PaperTable table2_gda_vs_gear() {
  const std::vector<std::pair<int, int>> configs = {
      {1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}, {2, 2}, {2, 4}};

  analysis::Table table({"config", "GDA delay[ns]", "GDA area", "GDA NED",
                         "GDA DxNED", "GeAr delay[ns]", "GeAr area",
                         "GeAr NED", "GeAr DxNED"});
  int gear_wins_dxned = 0;
  // Synthesis through the DSE cache: GDA via keyed_synth (full synthesis,
  // memoized per key), GeAr via the Tier-B fast path — both bit-identical
  // to the direct synthesize() calls they replace.
  analysis::DseCache cache;
  for (const auto& [r, p] : configs) {
    const adders::GdaAdder gda(8, r, p);
    // Area from the full configurable circuit; delay with case analysis
    // (config muxes steered, unused ripple path off the critical path).
    char key_full[48], key_cfg0[48];
    std::snprintf(key_full, sizeof key_full, "gda:8:%d:%d:full", r, p);
    std::snprintf(key_cfg0, sizeof key_cfg0, "gda:8:%d:%d:cfg0", r, p);
    const auto gda_rep =
        cache.keyed_synth(key_full, [&] { return netlist::build_gda(8, r, p); });
    const double gda_delay =
        cache
            .keyed_synth(key_cfg0,
                         [&] {
                           return netlist::specialize(
                               netlist::build_gda(8, r, p), {{"cfg", 0}});
                         })
            .delay_ns;
    const double gda_ned = exhaustive_ned(gda);

    const auto cfg = *core::GeArConfig::make_relaxed(8, r, p);
    const adders::GearAdapter gear_adder(cfg);
    const auto gear_rep = cache.gear_synth(cfg, false);
    const double gear_ned = exhaustive_ned(gear_adder);
    const double gear_delay = gear_rep.sum_delay_ns;

    if (gear_delay * gear_ned <= gda_delay * gda_ned) ++gear_wins_dxned;

    char label[32];
    std::snprintf(label, sizeof label, "(%d,%d)", r, p);
    table.add_row({label,
                   analysis::fmt_fixed(gda_delay, 3),
                   std::to_string(gda_rep.area_luts),
                   analysis::fmt_fixed(gda_ned, 4),
                   analysis::fmt_sci(gda_delay * 1e-9 * gda_ned, 4),
                   analysis::fmt_fixed(gear_delay, 3),
                   std::to_string(gear_rep.area_luts),
                   analysis::fmt_fixed(gear_ned, 4),
                   analysis::fmt_sci(gear_delay * 1e-9 * gear_ned, 4)});
  }

  char notes[256];
  std::snprintf(notes, sizeof notes,
                "Paper shape checks: NED columns identical (same arithmetic);\n"
                "GeAr never slower or bigger than GDA at equal (R,P); GeAr "
                "wins\nDelay x NED on %d/%zu configs (paper: all).\n",
                gear_wins_dxned, configs.size());
  return {"== Table II: GDA vs GeAr, 8-bit adder ==", std::move(table), notes,
          "table2_gda_vs_gear"};
}

PaperTable table3_error_probability(stats::ParallelExecutor& exec) {
  struct Row {
    int n, r, p;
    double paper_formula_pct;  // paper column 2
    double paper_sim_pct;      // paper column 3
  };
  const Row rows[] = {
      {12, 4, 4, 2.9297, 2.9480},
      {16, 4, 8, 0.1831, 0.1830},
      {32, 8, 8, 0.3891, 0.3830},
      {48, 8, 16, 0.0023, 0.003},
  };

  analysis::Table table({"(N,R,P,k)", "paper formula", "ours formula",
                         "exact DP", "exact MED", "sim 10000 (paper)",
                         "sim 10000 (ours)", "MC 1e6 [95% CI]"});
  // The 1e6 referee runs on the deterministic parallel driver (sharded
  // substreams merged in index order — bit-identical for any thread
  // count); the 10k run keeps the paper's single-stream protocol.
  for (const Row& row : rows) {
    // A bad row should name itself and be skipped, not abort() the whole
    // table — this also runs inside the golden tests.
    const auto made = core::GeArConfig::make(row.n, row.r, row.p);
    if (!made) {
      std::fprintf(
          stderr, "table3: skipping invalid GeAr(%d,%d,%d): %s\n", row.n,
          row.r, row.p,
          core::GeArConfig::invalid_reason(row.n, row.r, row.p).c_str());
      continue;
    }
    const core::GeArConfig cfg = *made;
    const double formula = core::paper_error_probability(cfg);
    const double exact = core::exact_error_probability(cfg);
    const auto metrics = core::exact_error_metrics(cfg);
    stats::Rng rng10k =
        stats::Rng::substream(stats::Rng::kDefaultSeed, "table3-sim10k");
    const auto sim10k = core::mc_error_probability(cfg, 10000, rng10k);
    const auto sim1m =
        core::mc_error_probability(cfg, 1000000, stats::Rng::kDefaultSeed, exec);

    char id[40], ci[64];
    std::snprintf(id, sizeof id, "(%d,%d,%d,%d)", row.n, row.r, row.p, cfg.k());
    std::snprintf(ci, sizeof ci, "%.4f%% [%.4f, %.4f]", sim1m.p * 100,
                  sim1m.ci.lo * 100, sim1m.ci.hi * 100);
    table.add_row({id,
                   analysis::fmt_pct(row.paper_formula_pct / 100, 4),
                   analysis::fmt_pct(formula, 4),
                   analysis::fmt_pct(exact, 4),
                   analysis::fmt_sci(metrics.med, 3),
                   analysis::fmt_pct(row.paper_sim_pct / 100, 4),
                   analysis::fmt_pct(sim10k.p, 4), ci});
  }

  return {"== Table III: probability of error, formula vs simulation ==",
          std::move(table),
          "Notes: the paper's (48,8,16) row prints k=5; Eq. 1 gives k=4 and\n"
          "reproduces the printed probability exactly (see DESIGN.md). The\n"
          "formula lands inside the Monte-Carlo CI on every row. \"exact "
          "MED\"\nis the closed-form mean error distance from the exact PMF "
          "engine\n(DESIGN.md section 5e) — no sampling.\n",
          "table3_error_probability"};
}

PaperTable zoo_family_table(bool legacy_only) {
  // The five zoo additions; everything else is a pre-zoo ("legacy")
  // family whose row bytes the golden suite pins across zoo growth.
  const auto is_zoo = [](const std::string& prefix) {
    return prefix == "ofloca" || prefix == "laxa" || prefix == "axppa" ||
           prefix == "cesa" || prefix == "cesa+r";
  };

  analysis::Table table({"family", "canonical spec", "name", "N", "efw",
                         "chain", "exact", "err rate", "mean rel ED"});
  int rows = 0;
  for (const auto& fam : adders::list_families()) {
    if (legacy_only && is_zoo(fam.prefix)) continue;
    const adders::AdderPtr adder = adders::make_adder(fam.canonical_spec);
    const int n = adder->width();
    // Fixed-seed operand stream keyed by the spec: deterministic and
    // independent of row order.
    stats::Rng rng =
        stats::Rng::substream(stats::Rng::kDefaultSeed, "zoo:" + fam.canonical_spec);
    constexpr int kPairs = 1 << 14;
    std::int64_t errors = 0;
    double sum_rel_ed = 0.0;
    const double scale = static_cast<double>(1ULL << n);
    for (int i = 0; i < kPairs; ++i) {
      const std::uint64_t a = rng.bits(n), b = rng.bits(n);
      const std::uint64_t got = adder->add(a, b);
      const std::uint64_t exact = adder->exact(a, b);
      if (got != exact) ++errors;
      const double ed = got >= exact ? static_cast<double>(got - exact)
                                     : -static_cast<double>(exact - got);
      sum_rel_ed += (ed < 0 ? -ed : ed) / scale;
    }
    table.add_row({fam.prefix, fam.canonical_spec, adder->name(),
                   std::to_string(n), std::to_string(adder->error_free_width()),
                   std::to_string(adder->max_carry_chain()),
                   adder->is_exact() ? "yes" : "no",
                   analysis::fmt_pct(static_cast<double>(errors) / kPairs, 2),
                   analysis::fmt_sci(sum_rel_ed / kPairs, 3)});
    ++rows;
  }

  char notes[256];
  std::snprintf(notes, sizeof notes,
                "%d famil%s at canonical width; err rate / mean relative ED "
                "over 2^14\nfixed-seed uniform pairs; efw = error-free width "
                "(N+1 = exact),\nchain = longest carry chain in bits.\n",
                rows, rows == 1 ? "y" : "ies");
  return {legacy_only
              ? std::string("== Adder zoo census (pre-zoo families) ==")
              : std::string("== Adder zoo census =="),
          std::move(table), notes,
          legacy_only ? "zoo_families_legacy" : "zoo_families"};
}

std::string render(const PaperTable& t) {
  return t.title + "\n\n" + t.table.to_ascii() + "\n" + t.notes;
}

}  // namespace gear::benchtables
