// Extension — carry-cutting vs cell-substitution approximation:
// GeAr configurations against Gupta-style cell-based adders (AMA/AXA/TGA
// low-part substitution) at N=16 under uniform operands. The two
// families buy their savings differently: GeAr errors are rare but large
// (missing boundary carries); cell-based errors are frequent but tiny
// (garbled low bits). MED/NED and the MAA acceptance ladder make the
// difference visible.
#include <cstdio>

#include "bench_util.h"
#include "adders/registry.h"
#include "analysis/metrics.h"
#include "analysis/table.h"
#include "stats/distributions.h"

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  std::printf("== Extension: GeAr (carry-cut) vs cell-based (low-part) ==\n\n");
  gear::analysis::Table table({"adder", "error rate", "MED", "max ED", "NED",
                               "ACCamp", "MAA95"});
  for (const char* spec :
       {"gear:16:4:4", "gear:16:4:8", "cell:16:4:ama1", "cell:16:8:ama1",
        "cell:16:8:ama2", "cell:16:8:axa2", "cell:16:8:ama3", "cell:16:8:tga1",
        "loa:16:8",
        // Zoo families: OFLOCA tightens LOA's low part, LAXA swaps in the
        // AXA3/TCAA/SESA1 cells, AxPPA truncates the prefix tree, CESA
        // cuts carries like GeAr but per aligned block.
        "ofloca:16:8:4", "laxa:16:8:1", "laxa:16:8:2", "laxa:16:8:3",
        "axppa:16:12:2", "cesa:16:4:4", "cesa+r:16:4:4"}) {
    const gear::adders::AdderPtr adder = gear::adders::make_adder(spec);
    auto src = gear::stats::make_uniform(16, gear::stats::Rng::kDefaultSeed ^ 0x9);
    const auto m = gear::analysis::evaluate(*adder, *src, 200000);
    table.add_row({adder->name(),
                   gear::analysis::fmt_pct(m.error_rate, 2),
                   gear::analysis::fmt_fixed(m.med, 2),
                   gear::analysis::fmt_fixed(m.max_ed, 0),
                   gear::analysis::fmt_fixed(m.ned, 4),
                   gear::analysis::fmt_fixed(m.acc_amp_avg, 4),
                   gear::analysis::fmt_pct(m.maa_acceptance[2], 2)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nShape checks: cell-based error rates are orders of magnitude\n"
      "higher but max ED stays below 2^(low+1); GeAr errors are rare with\n"
      "magnitude 2^res_lo. For mean-relative metrics (ACCamp) the families\n"
      "can tie, but acceptance-threshold metrics (MAA) separate them —\n"
      "which family wins depends on whether the application cares about\n"
      "worst-case or mean error.\n");
  return 0;
}
