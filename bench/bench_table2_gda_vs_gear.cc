// Table II — GDA vs GeAr for an 8-bit adder: path delay, area, NED and
// Delay x NED across (M_B, M_C) / (R, P) in
// {(1,1), (1,2), (1,3), (1,4), (1,5), (1,6), (2,2), (2,4)}.
//
// NED here follows the paper's uniform-operand evaluation; we compute it
// exhaustively over all 2^16 operand pairs (no sampling noise at 8 bits).
// The table itself comes from bench/paper_tables.cc, shared with the
// golden-snapshot test that pins this binary's output.
#include <cstdio>

#include "bench_util.h"
#include "paper_tables.h"

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  const gear::benchtables::PaperTable t = gear::benchtables::table2_gda_vs_gear();
  std::fputs(gear::benchtables::render(t).c_str(), stdout);
  gear::benchutil::maybe_write_csv(t.csv_name, t.table);
  return 0;
}
