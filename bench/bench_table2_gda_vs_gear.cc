// Table II — GDA vs GeAr for an 8-bit adder: path delay, area, NED and
// Delay x NED across (M_B, M_C) / (R, P) in
// {(1,1), (1,2), (1,3), (1,4), (1,5), (1,6), (2,2), (2,4)}.
//
// NED here follows the paper's uniform-operand evaluation; we compute it
// exhaustively over all 2^16 operand pairs (no sampling noise at 8 bits).
#include <cstdio>
#include <vector>

#include "adders/gda.h"
#include "bench_util.h"
#include "adders/gear_adapter.h"
#include "analysis/dse_cache.h"
#include "analysis/table.h"
#include "core/config.h"
#include "netlist/circuits.h"
#include "netlist/transform.h"
#include "synth/report.h"

namespace {

struct Row {
  std::string label;
  double delay_ns = 0.0;
  int area = 0;
  double ned = 0.0;
};

/// Exhaustive MED/NED over all 8-bit operand pairs.
double exhaustive_ned(const gear::adders::ApproxAdder& adder) {
  double med = 0.0, max_ed = 0.0;
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const double ed = static_cast<double>((a + b) - adder.add(a, b));
      med += ed;
      if (ed > max_ed) max_ed = ed;
    }
  }
  med /= 65536.0;
  return max_ed > 0 ? med / max_ed : 0.0;
}

}  // namespace

int main() {
  const std::vector<std::pair<int, int>> configs = {
      {1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}, {2, 2}, {2, 4}};

  std::printf("== Table II: GDA vs GeAr, 8-bit adder ==\n\n");

  gear::analysis::Table table({"config", "GDA delay[ns]", "GDA area", "GDA NED",
                               "GDA DxNED", "GeAr delay[ns]", "GeAr area",
                               "GeAr NED", "GeAr DxNED"});
  int gear_wins_dxned = 0;
  // Synthesis through the DSE cache: GDA via keyed_synth (full synthesis,
  // memoized per key), GeAr via the Tier-B fast path — both bit-identical
  // to the direct synthesize() calls they replace.
  gear::analysis::DseCache cache;
  for (const auto& [r, p] : configs) {
    const gear::adders::GdaAdder gda(8, r, p);
    // Area from the full configurable circuit; delay with case analysis
    // (config muxes steered, unused ripple path off the critical path).
    char key_full[48], key_cfg0[48];
    std::snprintf(key_full, sizeof key_full, "gda:8:%d:%d:full", r, p);
    std::snprintf(key_cfg0, sizeof key_cfg0, "gda:8:%d:%d:cfg0", r, p);
    const auto gda_rep = cache.keyed_synth(
        key_full, [&] { return gear::netlist::build_gda(8, r, p); });
    const double gda_delay =
        cache
            .keyed_synth(key_cfg0,
                         [&] {
                           return gear::netlist::specialize(
                               gear::netlist::build_gda(8, r, p), {{"cfg", 0}});
                         })
            .delay_ns;
    const double gda_ned = exhaustive_ned(gda);

    const auto cfg = *gear::core::GeArConfig::make_relaxed(8, r, p);
    const gear::adders::GearAdapter gear_adder(cfg);
    const auto gear_rep = cache.gear_synth(cfg, false);
    const double gear_ned = exhaustive_ned(gear_adder);
    const double gear_delay = gear_rep.sum_delay_ns;

    if (gear_delay * gear_ned <= gda_delay * gda_ned) ++gear_wins_dxned;

    char label[32];
    std::snprintf(label, sizeof label, "(%d,%d)", r, p);
    table.add_row({label,
                   gear::analysis::fmt_fixed(gda_delay, 3),
                   std::to_string(gda_rep.area_luts),
                   gear::analysis::fmt_fixed(gda_ned, 4),
                   gear::analysis::fmt_sci(gda_delay * 1e-9 * gda_ned, 4),
                   gear::analysis::fmt_fixed(gear_delay, 3),
                   std::to_string(gear_rep.area_luts),
                   gear::analysis::fmt_fixed(gear_ned, 4),
                   gear::analysis::fmt_sci(gear_delay * 1e-9 * gear_ned, 4)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  gear::benchutil::maybe_write_csv("table2_gda_vs_gear", table);
  std::printf(
      "\nPaper shape checks: NED columns identical (same arithmetic);\n"
      "GeAr never slower or bigger than GDA at equal (R,P); GeAr wins\n"
      "Delay x NED on %d/%zu configs (paper: all).\n",
      gear_wins_dxned, configs.size());
  return 0;
}
