// Fig. 9 — Execution-time comparison of ACA-I, ACA-II, ETAII, GDA, GeAr
// and RCA for (a) Image Integral (N=20, L=10), (b) SAD (N=16, L=8) and
// (c) LPF (N=12, L=8) on a full-HD frame.
//
// Per-pixel addition counts: Image Integral and SAD accumulate one
// addition per pixel; the 3x3 LPF performs 8 additions per pixel (which is
// why the paper's LPF panel sits an order of magnitude above the others).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "analysis/table.h"
#include "analysis/timing_model.h"
#include "core/config.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "netlist/transform.h"
#include "synth/report.h"

namespace {

struct Candidate {
  std::string label;
  gear::core::GeArConfig cfg;
  std::function<gear::netlist::Netlist()> circuit;
};

void run_app(const char* panel, const char* app, int n, int l,
             std::uint64_t adds_per_pixel) {
  using gear::core::GeArConfig;
  const int half = l / 2;
  const std::uint64_t ops = gear::analysis::kFullHdOps * adds_per_pixel;

  const std::vector<Candidate> candidates = {
      {"ACA-I", *GeArConfig::make_relaxed(n, 1, l - 1),
       [=] { return gear::netlist::build_aca1(n, l); }},
      {"ACA-II", *GeArConfig::make_relaxed(n, half, half),
       [=] { return gear::netlist::build_aca2(n, l); }},
      {"ETAII", *GeArConfig::make_relaxed(n, half, half),
       [=] { return gear::netlist::build_etaii(n, half); }},
      {"GDA", *GeArConfig::make_relaxed(n, half, half),
       [=] {
         return gear::netlist::specialize(
             gear::netlist::build_gda(n, half, half), {{"cfg", 0}});
       }},
      {"GeAr", *GeArConfig::make_relaxed(n, half, half),
       [=] {
         return gear::netlist::build_gear(*GeArConfig::make_relaxed(n, half, half));
       }},
  };

  std::printf("Fig.9(%s): %s — N=%d, sub-adder length L=%d, %llu adds\n", panel,
              app, n, l, static_cast<unsigned long long>(ops));
  gear::analysis::Table table(
      {"adder", "delay[ns]", "Perr", "approx[s]", "worst[s]", "average[s]",
       "best[s]"});
  for (const auto& cand : candidates) {
    const auto rep = gear::synth::synthesize(cand.circuit());
    const double delay = gear::synth::sum_path_delay(rep);
    const double perr =
        gear::core::paper_error_probability_first_order(cand.cfg);
    const auto t =
        gear::analysis::execution_timing(delay, perr, cand.cfg.k(), ops);
    table.add_row({cand.label, gear::analysis::fmt_fixed(delay, 3),
                   gear::analysis::fmt_sci(perr, 3),
                   gear::analysis::fmt_sci(t.approx_s, 4),
                   gear::analysis::fmt_sci(t.worst_s, 4),
                   gear::analysis::fmt_sci(t.average_s, 4),
                   gear::analysis::fmt_sci(t.best_s, 4)});
  }
  const double rca_delay =
      gear::synth::synthesize(gear::netlist::build_rca(n)).delay_ns;
  const auto rca = gear::analysis::execution_timing(rca_delay, 0.0, 1, ops);
  table.add_row({"RCA", gear::analysis::fmt_fixed(rca_delay, 3), "0",
                 gear::analysis::fmt_sci(rca.approx_s, 4),
                 gear::analysis::fmt_sci(rca.approx_s, 4),
                 gear::analysis::fmt_sci(rca.approx_s, 4),
                 gear::analysis::fmt_sci(rca.approx_s, 4)});
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  std::printf("== Fig. 9: application timing comparison (full-HD frame) ==\n\n");
  run_app("a", "Image Integral", 20, 10, 1);
  run_app("b", "Sum of Absolute Differences", 16, 8, 1);
  run_app("c", "Low Pass Filter", 12, 8, 8);
  std::printf(
      "Paper shape checks: GeAr at or below every other approximate adder\n"
      "per panel; GDA far above RCA; LPF panel ~8x the others (8 adds per\n"
      "pixel).\n");
  return 0;
}
