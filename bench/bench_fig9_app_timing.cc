// Fig. 9 — Execution-time comparison of ACA-I, ACA-II, ETAII, GDA, GeAr
// and RCA for (a) Image Integral (N=20, L=10), (b) SAD (N=16, L=8) and
// (c) LPF (N=12, L=8) on a full-HD frame.
//
// Per-pixel addition counts: Image Integral and SAD accumulate one
// addition per pixel; the 3x3 LPF performs 8 additions per pixel (which is
// why the paper's LPF panel sits an order of magnitude above the others).
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "adders/registry.h"
#include "analysis/table.h"
#include "analysis/timing_model.h"
#include "apps/batch_kernel.h"
#include "apps/generate.h"
#include "apps/integral.h"
#include "apps/lpf.h"
#include "apps/sad.h"
#include "core/config.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "netlist/transform.h"
#include "stats/rng.h"
#include "synth/report.h"

namespace {

struct Candidate {
  std::string label;
  gear::core::GeArConfig cfg;
  std::function<gear::netlist::Netlist()> circuit;
};

void run_app(const char* panel, const char* app, int n, int l,
             std::uint64_t adds_per_pixel) {
  using gear::core::GeArConfig;
  const int half = l / 2;
  const std::uint64_t ops = gear::analysis::kFullHdOps * adds_per_pixel;

  const std::vector<Candidate> candidates = {
      {"ACA-I", *GeArConfig::make_relaxed(n, 1, l - 1),
       [=] { return gear::netlist::build_aca1(n, l); }},
      {"ACA-II", *GeArConfig::make_relaxed(n, half, half),
       [=] { return gear::netlist::build_aca2(n, l); }},
      {"ETAII", *GeArConfig::make_relaxed(n, half, half),
       [=] { return gear::netlist::build_etaii(n, half); }},
      {"GDA", *GeArConfig::make_relaxed(n, half, half),
       [=] {
         return gear::netlist::specialize(
             gear::netlist::build_gda(n, half, half), {{"cfg", 0}});
       }},
      {"GeAr", *GeArConfig::make_relaxed(n, half, half),
       [=] {
         return gear::netlist::build_gear(*GeArConfig::make_relaxed(n, half, half));
       }},
  };

  std::printf("Fig.9(%s): %s — N=%d, sub-adder length L=%d, %llu adds\n", panel,
              app, n, l, static_cast<unsigned long long>(ops));
  gear::analysis::Table table(
      {"adder", "delay[ns]", "Perr", "approx[s]", "worst[s]", "average[s]",
       "best[s]"});
  for (const auto& cand : candidates) {
    const auto rep = gear::synth::synthesize(cand.circuit());
    const double delay = gear::synth::sum_path_delay(rep);
    const double perr =
        gear::core::paper_error_probability_first_order(cand.cfg);
    const auto t =
        gear::analysis::execution_timing(delay, perr, cand.cfg.k(), ops);
    table.add_row({cand.label, gear::analysis::fmt_fixed(delay, 3),
                   gear::analysis::fmt_sci(perr, 3),
                   gear::analysis::fmt_sci(t.approx_s, 4),
                   gear::analysis::fmt_sci(t.worst_s, 4),
                   gear::analysis::fmt_sci(t.average_s, 4),
                   gear::analysis::fmt_sci(t.best_s, 4)});
  }
  const double rca_delay =
      gear::synth::synthesize(gear::netlist::build_rca(n)).delay_ns;
  const auto rca = gear::analysis::execution_timing(rca_delay, 0.0, 1, ops);
  table.add_row({"RCA", gear::analysis::fmt_fixed(rca_delay, 3), "0",
                 gear::analysis::fmt_sci(rca.approx_s, 4),
                 gear::analysis::fmt_sci(rca.approx_s, 4),
                 gear::analysis::fmt_sci(rca.approx_s, 4),
                 gear::analysis::fmt_sci(rca.approx_s, 4)});
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\n");
}

/// Measured companion to the analytic panels above: wall-clock scalar vs
/// 64-lane batched kernels at each panel's bit width on a real (smaller)
/// frame. The analytic model speaks about hardware cycle counts; this
/// panel shows the same pipelines sped up in software by the bitsliced
/// evaluation path (identity is gated separately in bench_app_kernels).
void run_measured_panel() {
  using namespace gear;
  stats::Rng img_rng =
      stats::Rng::substream(stats::Rng::kDefaultSeed, "fig9-measured-img");
  const apps::Image img = apps::smoothed_noise_image(256, 144, img_rng, 2);
  stats::Rng shift_rng =
      stats::Rng::substream(stats::Rng::kDefaultSeed, "fig9-measured-shift");
  const apps::Image cand = apps::shifted_image(img, 2, 1, 2, shift_rng);

  const adders::AdderPtr integral_adder = adders::make_adder("gear:20:5:5");
  const adders::AdderPtr sad_adder = adders::make_adder("gear:16:4:4");
  const adders::AdderPtr lpf_adder = adders::make_adder("gear:12:4:4");

  auto ms = [](auto fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };
  auto sad_tiles = [&](auto&& search) {
    std::uint64_t sink = 0;
    for (int by = 0; by + 16 <= img.height(); by += 16) {
      for (int bx = 0; bx + 16 <= img.width(); bx += 16) {
        sink += search(bx, by).sad;
      }
    }
    return sink;
  };

  std::printf("Fig.9(d): measured scalar vs 64-lane batched kernels "
              "(%dx%d frame)\n", img.width(), img.height());
  analysis::Table table({"app", "scalar[ms]", "batch[ms]", "speedup"});
  std::vector<std::pair<std::string, std::pair<double, double>>> rows;
  rows.emplace_back(
      "Image Integral N=20",
      std::make_pair(
          ms([&] { (void)apps::row_integral(img, *integral_adder); }),
          ms([&] { (void)apps::row_integral_batch(img, *integral_adder); })));
  rows.emplace_back(
      "SAD 16x16/±3 N=16",
      std::make_pair(ms([&] {
                       (void)sad_tiles([&](int bx, int by) {
                         return apps::sad_search(img, cand, bx, by, 16, 16, 3,
                                                 *sad_adder);
                       });
                     }),
                     ms([&] {
                       (void)sad_tiles([&](int bx, int by) {
                         return apps::sad_search_batch(img, cand, bx, by, 16,
                                                       16, 3, *sad_adder);
                       });
                     })));
  rows.emplace_back(
      "LPF 3x3 N=12",
      std::make_pair(ms([&] { (void)apps::lpf3x3(img, *lpf_adder); }),
                     ms([&] { (void)apps::lpf3x3_batch(img, *lpf_adder); })));
  for (const auto& [app, t] : rows) {
    table.add_row({app, analysis::fmt_fixed(t.first, 2),
                   analysis::fmt_fixed(t.second, 2),
                   analysis::fmt_fixed(t.first / t.second, 2) + "x"});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  std::printf("== Fig. 9: application timing comparison (full-HD frame) ==\n\n");
  run_app("a", "Image Integral", 20, 10, 1);
  run_app("b", "Sum of Absolute Differences", 16, 8, 1);
  run_app("c", "Low Pass Filter", 12, 8, 8);
  run_measured_panel();
  std::printf(
      "Paper shape checks: GeAr at or below every other approximate adder\n"
      "per panel; GDA far above RCA; LPF panel ~8x the others (8 adds per\n"
      "pixel).\n");
  return 0;
}
