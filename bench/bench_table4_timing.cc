// Table IV — Path delay, error probability and full-HD Image Integral
// execution timings (approximate / worst / average / best) for GeAr
// (R=1..7, L=10), ACA-I, ACA-II, ETAII, GDA configurations and RCA at
// N=20.
//
// Timing model (verified against the paper's numbers in
// tests/test_analysis.cc): ops * delay * (1 + Perr * c), c in
// {k-1, k/2, 1}. Delay comes from our synthesis substrate; the paper's
// error-probability column is reproduced by the analytic model.
#include <cstdio>
#include <functional>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "analysis/timing_model.h"
#include "core/config.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "netlist/transform.h"
#include "synth/report.h"

namespace {

struct Candidate {
  std::string label;
  gear::core::GeArConfig cfg;  // functional configuration (for Perr, k)
  std::function<gear::netlist::Netlist()> circuit;
  bool case_analysis = false;
};

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  using gear::core::GeArConfig;
  constexpr int kN = 20;

  std::vector<Candidate> candidates;
  // GeAr rows: R = 1..7, P = 10-R (sub-adder length 10). R in {1,2,5}
  // give strict geometries; the others clamp the top sub-adder.
  for (int r = 1; r <= 7; ++r) {
    char label[32];
    std::snprintf(label, sizeof label, "GeAr(%d,%d)", r, 10 - r);
    const auto cfg = *GeArConfig::make_relaxed(kN, r, 10 - r);
    candidates.push_back(
        {label, cfg, [cfg] { return gear::netlist::build_gear(cfg); }});
  }
  // Baselines at the same sub-adder length.
  candidates.push_back({"ACA-I", *GeArConfig::make_relaxed(kN, 1, 9),
                        [] { return gear::netlist::build_aca1(kN, 10); }});
  candidates.push_back({"ACA-II", *GeArConfig::make_relaxed(kN, 5, 5),
                        [] { return gear::netlist::build_aca2(kN, 10); }});
  candidates.push_back({"ETAII", *GeArConfig::make_relaxed(kN, 5, 5),
                        [] { return gear::netlist::build_etaii(kN, 5); }});
  for (auto [mb, mc] : {std::pair{1, 9}, {2, 8}, {5, 5}}) {
    char label[32];
    std::snprintf(label, sizeof label, "GDA(%d,%d)", mb, mc);
    candidates.push_back({label, *GeArConfig::make_relaxed(kN, mb, mc),
                          [mb = mb, mc = mc] {
                            return gear::netlist::build_gda(kN, mb, mc);
                          },
                          true});
  }

  std::printf("== Table IV: N=%d Image Integral, full-HD (%llu ops) ==\n\n", kN,
              static_cast<unsigned long long>(gear::analysis::kFullHdOps));
  gear::analysis::Table table({"adder", "R", "P", "L", "delay[ns]", "Perr",
                               "Perr(IE)", "approx[s]", "worst[s]",
                               "average[s]", "best[s]", "beats RCA?"});

  const double rca_delay =
      gear::synth::synthesize(gear::netlist::build_rca(kN)).delay_ns;
  const double rca_time =
      gear::analysis::execution_timing(rca_delay, 0.0, 1).approx_s;

  for (const auto& cand : candidates) {
    auto nl = cand.circuit();
    if (cand.case_analysis) {
      nl = gear::netlist::specialize(nl, {{"cfg", 0}});
    }
    const auto rep = gear::synth::synthesize(nl);
    const double delay = gear::synth::sum_path_delay(rep);
    const double perr =
        gear::core::paper_error_probability_first_order(cand.cfg);
    const auto t =
        gear::analysis::execution_timing(delay, perr, cand.cfg.k());
    table.add_row({cand.label, std::to_string(cand.cfg.r()),
                   std::to_string(cand.cfg.p()), std::to_string(cand.cfg.l()),
                   gear::analysis::fmt_fixed(delay, 3),
                   gear::analysis::fmt_sci(perr, 4),
                   gear::analysis::fmt_sci(
                       gear::core::paper_error_probability(cand.cfg), 4),
                   gear::analysis::fmt_sci(t.approx_s, 6),
                   gear::analysis::fmt_sci(t.worst_s, 6),
                   gear::analysis::fmt_sci(t.average_s, 6),
                   gear::analysis::fmt_sci(t.best_s, 6),
                   t.worst_s < rca_time ? "yes (even worst)"
                   : t.average_s < rca_time ? "yes (average)"
                   : t.approx_s < rca_time ? "approx only"
                                           : "no"});
  }
  table.add_row({"RCA", "-", "-", std::to_string(kN),
                 gear::analysis::fmt_fixed(rca_delay, 3), "0", "0",
                 gear::analysis::fmt_sci(rca_time, 6),
                 gear::analysis::fmt_sci(rca_time, 6),
                 gear::analysis::fmt_sci(rca_time, 6),
                 gear::analysis::fmt_sci(rca_time, 6), "-"});
  std::fputs(table.to_ascii().c_str(), stdout);
  gear::benchutil::maybe_write_csv("table4_timing", table);
  std::printf(
      "\nPaper shape checks: GeAr/ACA-II rows beat the RCA even with\n"
      "worst-case correction for small Perr; GDA rows are ~2-3x slower\n"
      "than every other adder; Perr column matches the paper exactly\n"
      "(4.88e-3, 7.32e-3, ..., 120.4e-3 for R=1..7).\n");
  return 0;
}
