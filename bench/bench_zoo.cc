// Zoo gate: the five zoo adder families (OFLOCA, LAXA, SkAxPPA, CESA,
// CESA+R) must (1) keep their bitsliced add_batch bit-identical to the
// scalar add() on fixed-seed operand sets at widths 32 and 64, and
// (2) earn their batch kernels — at width 32 at least two zoo families
// must clear a 2x throughput speedup over the scalar loop. Violating
// either gate exits non-zero, so CI fails on a silent kernel regression.
//
// Also prints the deterministic zoo census table (the golden-pinned one)
// and emits BENCH_zoo.json for trajectory tracking.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "adders/registry.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "paper_tables.h"
#include "stats/rng.h"

namespace {

volatile std::uint64_t g_sink;  // defeats dead-code elimination

/// Calibrated wall-clock ns per element: repeats `body` (covering
/// `units_per_call` adds) until >= 50 ms elapsed.
template <typename F>
double ns_per_unit(F&& body, std::uint64_t units_per_call) {
  using clock = std::chrono::steady_clock;
  body();  // warm-up
  std::uint64_t calls = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < calls; ++i) body();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count();
    if (ns >= 5e7) {
      return ns / (static_cast<double>(calls) *
                   static_cast<double>(units_per_call));
    }
    calls *= 4;
  }
}

struct FamilyResult {
  std::string spec;
  bool identity_ok = true;
  double scalar_ns = 0.0;
  double batch_ns = 0.0;

  double speedup() const { return batch_ns > 0 ? scalar_ns / batch_ns : 0.0; }
};

constexpr std::size_t kOps = 1 << 12;

/// Identity (both widths) + width-32 timing for one zoo family.
FamilyResult run_family(const std::string& spec32,
                        const std::string& spec64) {
  FamilyResult res;
  res.spec = spec32;
  for (const std::string& spec : {spec32, spec64}) {
    const gear::adders::AdderPtr adder = gear::adders::make_adder(spec);
    const int n = adder->width();
    gear::stats::Rng rng =
        gear::stats::Rng::substream(1234, "bench-zoo:" + spec);
    std::vector<std::uint64_t> a(kOps), b(kOps), out(kOps);
    for (std::size_t i = 0; i < kOps; ++i) {
      a[i] = rng.bits(n);
      b[i] = rng.bits(n);
    }
    adder->add_batch(a.data(), b.data(), out.data(), kOps);
    for (std::size_t i = 0; i < kOps; ++i) {
      if (out[i] != adder->add(a[i], b[i])) {
        std::fprintf(stderr,
                     "IDENTITY VIOLATION: %s lane %zu: batch %llu != scalar "
                     "%llu (a=%llu b=%llu)\n",
                     spec.c_str(), i,
                     static_cast<unsigned long long>(out[i]),
                     static_cast<unsigned long long>(adder->add(a[i], b[i])),
                     static_cast<unsigned long long>(a[i]),
                     static_cast<unsigned long long>(b[i]));
        res.identity_ok = false;
      }
    }
    if (spec == spec32) {
      res.scalar_ns = ns_per_unit(
          [&] {
            std::uint64_t acc = 0;
            for (std::size_t i = 0; i < kOps; ++i) acc ^= adder->add(a[i], b[i]);
            g_sink = acc;
          },
          kOps);
      res.batch_ns = ns_per_unit(
          [&] {
            adder->add_batch(a.data(), b.data(), out.data(), kOps);
            g_sink = out[0];
          },
          kOps);
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);

  // The golden-pinned census first: same bytes as the gear_tests golden.
  const auto census = gear::benchtables::zoo_family_table();
  std::fputs(gear::benchtables::render(census).c_str(), stdout);
  std::printf("\n");
  gear::benchutil::maybe_write_csv(census.csv_name, census.table);

  // Width-32 gate geometry (width-64 rides along for identity only).
  const std::pair<std::string, std::string> specs[] = {
      {"ofloca:32:16:8", "ofloca:64:16:8"},
      {"laxa:32:16:1", "laxa:64:16:1"},
      {"axppa:32:24:2", "axppa:64:24:2"},
      {"cesa:32:8:8", "cesa:64:8:8"},
      {"cesa+r:32:8:8", "cesa+r:64:8:8"},
  };

  gear::analysis::Table table({"family", "spec", "identity", "scalar ns/add",
                               "batch ns/add", "speedup"});
  std::ostringstream json;
  json << "{\"bench\":\"zoo\",\"width\":32,\"families\":[";

  bool identity_ok = true;
  int at_2x = 0;
  bool first = true;
  for (const auto& [spec32, spec64] : specs) {
    const FamilyResult res = run_family(spec32, spec64);
    identity_ok = identity_ok && res.identity_ok;
    if (res.speedup() >= 2.0) ++at_2x;
    const std::string prefix = spec32.substr(0, spec32.find(':'));
    table.add_row({prefix, res.spec, res.identity_ok ? "ok" : "FAIL",
                   gear::analysis::fmt_fixed(res.scalar_ns, 1),
                   gear::analysis::fmt_fixed(res.batch_ns, 2),
                   gear::analysis::fmt_fixed(res.speedup(), 1) + "x"});
    if (!first) json << ",";
    first = false;
    json << "{\"spec\":\"" << gear::benchutil::json_escape(res.spec)
         << "\",\"identity_ok\":" << (res.identity_ok ? "true" : "false")
         << ",\"scalar_ns_per_add\":" << res.scalar_ns
         << ",\"batch_ns_per_add\":" << res.batch_ns
         << ",\"speedup\":" << res.speedup() << "}";
  }
  const bool gate_ok = identity_ok && at_2x >= 2;
  json << "],\"families_at_2x\":" << at_2x
       << ",\"identity_ok\":" << (identity_ok ? "true" : "false")
       << ",\"gate_ok\":" << (gate_ok ? "true" : "false") << "}";

  std::printf("== Zoo batch-kernel gate (width 32) ==\n\n");
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nGate: identity (scalar == batch at widths 32 and 64) AND >= 2 "
      "families\nat >= 2.0x batch speedup. identity=%s, families_at_2x=%d "
      "-> %s\n",
      identity_ok ? "ok" : "FAIL", at_2x, gate_ok ? "PASS" : "FAIL");

  gear::benchutil::maybe_write_csv("zoo_gate", table);
  gear::benchutil::write_bench_json("zoo", json.str());
  return gate_ok ? 0 : 1;
}
