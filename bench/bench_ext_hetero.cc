// Extension — heterogeneous GeAr layouts: per-segment prediction lengths
// (the natural generalisation of the paper's equal-length sub-adders,
// and of ETAIIM's chained-MSB idea). At a fixed carry-hardware budget
// (total window bits), shifting prediction toward the MSB cuts the mean
// error distance while error *rate* stays comparable — the right spend
// for magnitude-sensitive applications.
#include <cstdio>

#include "bench_util.h"
#include "analysis/table.h"
#include "core/config.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "stats/rng.h"
#include "synth/report.h"

namespace {

int window_bits(const gear::core::GeArConfig& cfg) {
  int bits = 0;
  for (const auto& s : cfg.layout()) bits += s.window_len();
  return bits;
}

void row(gear::analysis::Table& table, const char* label,
         const gear::core::GeArConfig& cfg) {
  const auto rep = gear::synth::synthesize(
      gear::netlist::build_gear(cfg, {.with_detection = false}));
  gear::stats::Rng rng = gear::stats::Rng::substream(
      gear::stats::Rng::kDefaultSeed, "ext-hetero");
  const auto dist = gear::core::mc_error_distribution(cfg, 200000, rng);
  table.add_row({label, std::to_string(window_bits(cfg)),
                 std::to_string(cfg.max_carry_chain()),
                 gear::analysis::fmt_fixed(gear::synth::sum_path_delay(rep), 3),
                 std::to_string(rep.area_luts),
                 gear::analysis::fmt_pct(gear::core::paper_error_probability(cfg), 3),
                 gear::analysis::fmt_fixed(gear::core::analytic_med(cfg), 3),
                 gear::analysis::fmt_fixed(-dist.mean(), 3)});
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  using gear::core::GeArConfig;
  std::printf(
      "== Extension: heterogeneous GeAr layouts, N=16, equal window-bit "
      "budget (24) ==\n\n");
  gear::analysis::Table table({"layout", "window bits", "max chain",
                               "delay[ns]", "area[LUT]", "Perr",
                               "MED (analytic)", "MED (MC)"});

  row(table, "uniform GeAr(4,4)", gear::benchutil::require_config(16, 4, 4));
  row(table, "MSB-shifted (p=1,2,5)",
      gear::benchutil::require_custom(16, 4, {{4, 1}, {4, 2}, {4, 5}}));
  row(table, "LSB-shifted (p=4,3,1)",
      gear::benchutil::require_custom(16, 4, {{4, 4}, {4, 3}, {4, 1}}));
  row(table, "top-heavy (p=2,1,5)",
      gear::benchutil::require_custom(16, 4, {{4, 2}, {4, 1}, {4, 5}}));

  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nShape checks: at equal window-bit budget, MED is set by the top\n"
      "window length alone (MSB/top-heavy layouts win MED by 2-4x while\n"
      "the LSB-shifted layout wastes its budget); error *rate* moves the\n"
      "other way — heterogeneity is a second knob the uniform model\n"
      "doesn't expose.\n");
  return 0;
}
