// Fig. 7(a-d) — Probabilistic accuracy percentage vs previous/prediction
// bits for N=16 at R in {2, 3, 4, 8}, with the GDA-reachable subset
// marked. Accuracy is (1 - Perr) * 100 with Perr from the paper's error
// model (Eqs. 5-7).
#include <cstdio>

#include "bench_util.h"
#include "analysis/design_space.h"
#include "analysis/table.h"
#include "stats/parallel.h"

namespace {

void print_panel(gear::analysis::SweepContext ctx, int n, int r, char panel) {
  std::printf("Fig.7(%c): N=%d, R=%d\n", panel, n, r);
  gear::analysis::Table table(
      {"P", "L", "k", "Perr", "accuracy%", "GDA?", "ETAII/ACA-II?"});
  for (const auto& pt : gear::analysis::accuracy_sweep(n, r, ctx)) {
    table.add_row({std::to_string(pt.cfg.p()), std::to_string(pt.cfg.l()),
                   std::to_string(pt.cfg.k()),
                   gear::analysis::fmt_pct(pt.error_probability, 4),
                   gear::analysis::fmt_fixed(pt.accuracy_percent, 3),
                   pt.gda_reachable ? "x" : ".",
                   pt.etaii_reachable ? "x" : "."});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  std::printf("== Fig. 7: accuracy vs prediction bits (GeAr vs GDA points) ==\n\n");
  gear::stats::ParallelExecutor exec(0);
  const gear::analysis::SweepContext ctx{&exec, nullptr};
  print_panel(ctx, 16, 2, 'a');
  print_panel(ctx, 16, 3, 'b');
  print_panel(ctx, 16, 4, 'c');
  print_panel(ctx, 16, 8, 'd');
  std::printf(
      "Paper shape checks: (R=2,P=2) ~51%% accuracy, (R=2,P=6) ~97%%,\n"
      "(R=4,P=4) ~94%% < (R=2,P=6) at equal sub-adder length L=8; GDA\n"
      "points are the P = multiple-of-R subset of GeAr's sweep.\n");
  return 0;
}
