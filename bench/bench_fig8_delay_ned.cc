// Fig. 8 — Delay x NED comparison of GeAr and GDA across the Table II
// sub-adder configurations [R,P], rendered as an ASCII bar chart.
//
// NED variant: the Delay x NED product uses the Liang-style NED — MED
// normalised by the worst *observed* error distance (analysis::
// ErrorMetrics::ned, here computed exhaustively so "observed" = true
// maximum) — NOT the range-normalised MED / (2^N - 1) variant
// (ErrorMetrics::ned_range). The two differ by the ratio max_ed / (2^N-1),
// which varies per configuration, so the variants are not interchangeable
// in cross-adder products like this chart.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "adders/gda.h"
#include "adders/gear_adapter.h"
#include "analysis/dse_cache.h"
#include "core/config.h"
#include "netlist/circuits.h"
#include "netlist/transform.h"
#include "synth/report.h"

namespace {

double exhaustive_ned(const gear::adders::ApproxAdder& adder) {
  double med = 0.0, max_ed = 0.0;
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const double ed = static_cast<double>((a + b) - adder.add(a, b));
      med += ed;
      max_ed = std::max(max_ed, ed);
    }
  }
  med /= 65536.0;
  return max_ed > 0 ? med / max_ed : 0.0;
}

void bar(const char* who, double value, double scale) {
  const int len = static_cast<int>(value / scale * 60.0 + 0.5);
  std::printf("  %-5s %8.3e |%s\n", who, value,
              std::string(static_cast<std::size_t>(std::max(0, len)), '#').c_str());
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  std::printf("== Fig. 8: Delay x NED, GeAr vs GDA, 8-bit [R,P] configs ==\n");
  std::printf(
      "   (NED = exhaustive MED / max observed ED, the Liang-style\n"
      "    max-ED-normalised variant — not MED / (2^N - 1))\n\n");
  const std::vector<std::pair<int, int>> configs = {
      {1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}, {2, 2}, {2, 4}};

  struct Entry {
    std::pair<int, int> cfg;
    double gda, gear;
  };
  std::vector<Entry> entries;
  double max_val = 0.0;
  // Both families synthesize through the DSE cache: GDA via keyed_synth
  // (full synthesis, memoized), GeAr via the Tier-B fast path — each
  // bit-identical to the direct synthesize() calls it replaces.
  gear::analysis::DseCache cache;
  for (const auto& cfg : configs) {
    const auto [r, p] = cfg;
    const gear::adders::GdaAdder gda(8, r, p);
    char gda_key[48];
    std::snprintf(gda_key, sizeof gda_key, "gda:8:%d:%d:cfg0", r, p);
    const double gda_dxn =
        cache
            .keyed_synth(gda_key,
                         [&] {
                           return gear::netlist::specialize(
                               gear::netlist::build_gda(8, r, p), {{"cfg", 0}});
                         })
            .delay_ns *
        1e-9 * exhaustive_ned(gda);
    const auto gcfg = *gear::core::GeArConfig::make_relaxed(8, r, p);
    const gear::adders::GearAdapter gear_adder(gcfg);
    const double gear_dxn =
        cache.gear_synth(gcfg, false).sum_delay_ns * 1e-9 *
        exhaustive_ned(gear_adder);
    entries.push_back({cfg, gda_dxn, gear_dxn});
    max_val = std::max({max_val, gda_dxn, gear_dxn});
  }

  int gear_wins = 0;
  for (const auto& e : entries) {
    std::printf("[%d,%d]\n", e.cfg.first, e.cfg.second);
    bar("GDA", e.gda, max_val);
    bar("GeAr", e.gear, max_val);
    if (e.gear <= e.gda) ++gear_wins;
  }
  std::printf(
      "\nPaper shape check: every GeAr bar at or below its GDA bar "
      "(%d/%zu here).\n",
      gear_wins, entries.size());
  return 0;
}
