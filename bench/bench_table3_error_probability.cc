// Table III — Probability of error: the paper's analytic model (Eqs. 5-7)
// vs simulation with 10000 uniform input patterns, for the four
// configurations (12,4,4), (16,4,8), (32,8,8), (48,8,16).
//
// Extended with this repo's additional referees: the exact DP probability
// and a 10^6-sample Monte-Carlo run with a 95% Wilson interval. The table
// itself comes from bench/paper_tables.cc, shared with the golden-snapshot
// test that pins this binary's output.
#include <cstdio>

#include "bench_util.h"
#include "paper_tables.h"
#include "stats/parallel.h"

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  gear::stats::ParallelExecutor exec(0);
  const gear::benchtables::PaperTable t =
      gear::benchtables::table3_error_probability(exec);
  std::fputs(gear::benchtables::render(t).c_str(), stdout);
  gear::benchutil::maybe_write_csv(t.csv_name, t.table);
  return 0;
}
