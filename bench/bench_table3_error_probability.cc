// Table III — Probability of error: the paper's analytic model (Eqs. 5-7)
// vs simulation with 10000 uniform input patterns, for the four
// configurations (12,4,4), (16,4,8), (32,8,8), (48,8,16).
//
// Extended with this repo's additional referees: the exact DP probability
// and a 10^6-sample Monte-Carlo run with a 95% Wilson interval.
#include <cstdio>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/config.h"
#include "core/error_model.h"
#include "stats/parallel.h"
#include "stats/pmf.h"
#include "stats/rng.h"

int main() {
  using gear::core::GeArConfig;
  struct Row {
    int n, r, p;
    double paper_formula_pct;  // paper column 2
    double paper_sim_pct;      // paper column 3
  };
  const Row rows[] = {
      {12, 4, 4, 2.9297, 2.9480},
      {16, 4, 8, 0.1831, 0.1830},
      {32, 8, 8, 0.3891, 0.3830},
      {48, 8, 16, 0.0023, 0.003},
  };

  std::printf("== Table III: probability of error, formula vs simulation ==\n\n");
  gear::analysis::Table table({"(N,R,P,k)", "paper formula", "ours formula",
                               "exact DP", "exact MED", "sim 10000 (paper)",
                               "sim 10000 (ours)", "MC 1e6 [95% CI]"});
  // The 1e6 referee runs on the deterministic parallel driver (sharded
  // substreams merged in index order — bit-identical for any thread
  // count); the 10k run keeps the paper's single-stream protocol.
  gear::stats::ParallelExecutor exec(0);
  for (const Row& row : rows) {
    const GeArConfig cfg = GeArConfig::must(row.n, row.r, row.p);
    const double formula = gear::core::paper_error_probability(cfg);
    const double exact = gear::core::exact_error_probability(cfg);
    const auto metrics = gear::core::exact_error_metrics(cfg);
    gear::stats::Rng rng10k = gear::stats::Rng::substream(
        gear::stats::Rng::kDefaultSeed, "table3-sim10k");
    const auto sim10k = gear::core::mc_error_probability(cfg, 10000, rng10k);
    const auto sim1m = gear::core::mc_error_probability(
        cfg, 1000000, gear::stats::Rng::kDefaultSeed, exec);

    char id[40], ci[64];
    std::snprintf(id, sizeof id, "(%d,%d,%d,%d)", row.n, row.r, row.p, cfg.k());
    std::snprintf(ci, sizeof ci, "%.4f%% [%.4f, %.4f]", sim1m.p * 100,
                  sim1m.ci.lo * 100, sim1m.ci.hi * 100);
    table.add_row({id,
                   gear::analysis::fmt_pct(row.paper_formula_pct / 100, 4),
                   gear::analysis::fmt_pct(formula, 4),
                   gear::analysis::fmt_pct(exact, 4),
                   gear::analysis::fmt_sci(metrics.med, 3),
                   gear::analysis::fmt_pct(row.paper_sim_pct / 100, 4),
                   gear::analysis::fmt_pct(sim10k.p, 4), ci});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  gear::benchutil::maybe_write_csv("table3_error_probability", table);
  std::printf(
      "\nNotes: the paper's (48,8,16) row prints k=5; Eq. 1 gives k=4 and\n"
      "reproduces the printed probability exactly (see DESIGN.md). The\n"
      "formula lands inside the Monte-Carlo CI on every row. \"exact MED\"\n"
      "is the closed-form mean error distance from the exact PMF engine\n"
      "(DESIGN.md section 5e) — no sampling.\n");
  return 0;
}
