// Table I — Accuracy comparison of approximate adders on a 16-bit 1D
// Image Integral kernel: path delay, area (LUTs), MAA acceptance at
// {100, 97.5, 95, 92.5, 90}%, ACC_amp, ACC_inf, MED, NED and Delay x NED
// for RCA, ACA-I, ETAII, ACA-II, GDA(4,4), GDA(4,8) and GeAr(4,P) for
// P in {2, 4, 6, 8}.
//
// Methodology mirrors the paper: the operand stream is the image-integral
// trace of a synthetic full-HD-like image (the paper's images are
// unpublished; see DESIGN.md section 2), delay/area come from LUT mapping
// + static timing of the real gate-level circuits.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "adders/registry.h"
#include "analysis/metrics.h"
#include "analysis/table.h"
#include "apps/batch_kernel.h"
#include "apps/generate.h"
#include "apps/integral.h"
#include "apps/trace.h"
#include "core/config.h"
#include "netlist/circuits.h"
#include "netlist/transform.h"
#include "bench_util.h"
#include "stats/rng.h"
#include "synth/report.h"

namespace {

struct Candidate {
  std::string label;
  std::string spec;                                // registry spec
  std::function<gear::netlist::Netlist()> circuit; // for delay/area
  bool case_analysis = false;  ///< tie "cfg"=0 for timing (GDA muxes)
};

/// Delay with STA case analysis on the configuration inputs; area from
/// the full configurable circuit (how the paper reports GDA).
std::pair<double, int> delay_area(const Candidate& cand) {
  const auto full = cand.circuit();
  const auto full_rep = gear::synth::synthesize(full);
  double delay = gear::synth::sum_path_delay(full_rep);
  if (cand.case_analysis) {
    const auto spec = gear::netlist::specialize(full, {{"cfg", 0}});
    delay = gear::synth::sum_path_delay(gear::synth::synthesize(spec));
  }
  return {delay, full_rep.area_luts};
}

}  // namespace

int main(int argc, char** argv) {
  gear::benchutil::ObsExport obs_export(argc, argv);
  using gear::core::GeArConfig;
  constexpr int kN = 16;

  const std::vector<Candidate> candidates = {
      {"RCA", "rca:16", [] { return gear::netlist::build_rca(kN); }},
      {"ACA-I", "aca1:16:4", [] { return gear::netlist::build_aca1(kN, 4); }},
      {"ETAII", "etaii:16:4", [] { return gear::netlist::build_etaii(kN, 4); }},
      {"ACA-II", "aca2:16:8", [] { return gear::netlist::build_aca2(kN, 8); }},
      {"GDA(4,4)", "gda:16:4:4",
       [] { return gear::netlist::build_gda(kN, 4, 4); }, true},
      {"GDA(4,8)", "gda:16:4:8",
       [] { return gear::netlist::build_gda(kN, 4, 8); }, true},
      // GeAr areas exclude detection, matching the paper's Table I (its
      // GeAr/ACA-II entries are bare sub-adder LUT counts).
      {"GeAr(4,2)", "gear:16:4:2",
       [] {
         return gear::netlist::build_gear(*GeArConfig::make_relaxed(kN, 4, 2),
                                          {.with_detection = false});
       }},
      {"GeAr(4,4)", "gear:16:4:4",
       [] {
         return gear::netlist::build_gear(gear::benchutil::require_config(kN, 4, 4),
                                          {.with_detection = false});
       }},
      {"GeAr(4,6)", "gear:16:4:6",
       [] {
         return gear::netlist::build_gear(*GeArConfig::make_relaxed(kN, 4, 6),
                                          {.with_detection = false});
       }},
      {"GeAr(4,8)", "gear:16:4:8",
       [] {
         return gear::netlist::build_gear(gear::benchutil::require_config(kN, 4, 8),
                                          {.with_detection = false});
       }},
  };

  // Image-integral operand trace from a synthetic image (full-HD scaled
  // down so the bench stays fast; the operand statistics are what matter).
  gear::stats::Rng img_rng = gear::stats::Rng::substream(
      gear::stats::Rng::kDefaultSeed, "table1-image");
  const gear::apps::Image img =
      gear::apps::smoothed_noise_image(640, 360, img_rng, 2);
  const gear::adders::AdderPtr exact = gear::adders::make_adder("rca:16");
  gear::apps::TracingAdder traced(*exact);
  (void)gear::apps::row_integral(img, traced);
  std::printf("== Table I: 16-bit 1D Image Integral, %zu traced additions ==\n\n",
              traced.trace().size());
  auto source = traced.take_source("image-integral-16");
  const std::uint64_t samples = source.size();

  gear::analysis::Table table({"adder", "delay[ns]", "area[LUT]", "MAA100",
                               "MAA97.5", "MAA95", "MAA92.5", "MAA90",
                               "ACCamp", "ACCinf", "MED", "NED", "DelayxNED"});

  for (const auto& cand : candidates) {
    const auto [delay, area] = delay_area(cand);
    const gear::adders::AdderPtr adder = gear::adders::make_adder(cand.spec);

    // Fresh copy of the trace for each adder.
    auto src = source;  // TraceSource is copyable; position resets per copy
    const gear::analysis::ErrorMetrics m =
        gear::analysis::evaluate(*adder, src, samples);

    table.add_row({cand.label,
                   gear::analysis::fmt_fixed(delay, 3),
                   std::to_string(area),
                   gear::analysis::fmt_fixed(m.maa_acceptance[0] * 100, 3),
                   gear::analysis::fmt_fixed(m.maa_acceptance[1] * 100, 3),
                   gear::analysis::fmt_fixed(m.maa_acceptance[2] * 100, 3),
                   gear::analysis::fmt_fixed(m.maa_acceptance[3] * 100, 3),
                   gear::analysis::fmt_fixed(m.maa_acceptance[4] * 100, 3),
                   gear::analysis::fmt_fixed(m.acc_amp_avg, 4),
                   gear::analysis::fmt_fixed(m.acc_inf_avg, 4),
                   gear::analysis::fmt_fixed(m.med, 2),
                   gear::analysis::fmt_fixed(m.ned, 4),
                   gear::analysis::fmt_sci(delay * 1e-9 * m.ned, 4)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  gear::benchutil::maybe_write_csv("table1_image_integral", table);

  // Batched row integral: the 64-row bitsliced kernel must reproduce the
  // scalar accumulator chain bit-for-bit on the same image — it is the
  // path the end-to-end pipelines actually run, so a divergence here
  // invalidates every accuracy number above.
  std::printf("\n== Batched row integral (64 rows/batch): identity + speedup ==\n");
  bool identical = true;
  for (const char* spec : {"rca:16", "gear:16:4:4", "gear+ecc:16:4:4"}) {
    const gear::adders::AdderPtr adder = gear::adders::make_adder(spec);
    const auto t0 = std::chrono::steady_clock::now();
    const auto scalar_out = gear::apps::row_integral(img, *adder);
    const auto t1 = std::chrono::steady_clock::now();
    const auto batch_out = gear::apps::row_integral_batch(img, *adder);
    const auto t2 = std::chrono::steady_clock::now();
    const double s_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double b_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    const bool ok = scalar_out == batch_out;
    identical = identical && ok;
    std::printf("  %-18s scalar %7.2f ms   batch %7.2f ms   %5.2fx   %s\n",
                adder->name().c_str(), s_ms, b_ms, s_ms / b_ms,
                ok ? "bit-identical" : "MISMATCH");
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: batched row integral diverged from the scalar kernel\n");
    return 1;
  }
  std::printf(
      "\nPaper shape checks: GeAr(4,2) fastest; GeAr/ACA-II share the\n"
      "minimum area after RCA; GDA(4,8) and GeAr(4,8) are accuracy-\n"
      "identical; GDA pays the largest delay; best Delay x NED is a GeAr\n"
      "configuration.\n");
  return 0;
}
