// Metric-engine tests: exactness on exact adders, known values on crafted
// streams, consistency with the analytic error model.
#include <gtest/gtest.h>

#include <cmath>

#include "adders/exact.h"
#include "adders/gear_adapter.h"
#include "adders/loa.h"
#include "analysis/metrics.h"
#include "core/error_model.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace gear::analysis {
namespace {

TEST(Metrics, ExactAdderIsPerfect) {
  const adders::RcaAdder rca(16);
  auto src = stats::make_uniform(16, 3);
  const ErrorMetrics m = evaluate(rca, *src, 20000);
  EXPECT_DOUBLE_EQ(m.error_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.med, 0.0);
  EXPECT_DOUBLE_EQ(m.ned, 0.0);
  EXPECT_DOUBLE_EQ(m.acc_amp_avg, 1.0);
  EXPECT_DOUBLE_EQ(m.acc_inf_avg, 1.0);
  for (double a : m.maa_acceptance) EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST(Metrics, ErrorRateMatchesAnalyticModel) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const adders::GearAdapter gear(cfg);
  auto src = stats::make_uniform(16, 4);
  const ErrorMetrics m = evaluate(gear, *src, 200000);
  const double truth = core::exact_error_probability(cfg);
  EXPECT_NEAR(m.error_rate, truth, 0.003);
}

TEST(Metrics, KnownCraftedStream) {
  // Single-error stream through GeAr(12,4,4): the error is exactly 2^8.
  const adders::GearAdapter gear(core::GeArConfig::must(12, 4, 4));
  const std::uint64_t a = (0b1010ULL << 4) | 0b1000ULL;
  const std::uint64_t b = (0b0101ULL << 4) | 0b1000ULL;
  stats::TraceSource src(12, {{a, b}, {1, 2}, {3, 4}, {5, 6}}, "crafted");
  const ErrorMetrics m = evaluate(gear, src, 4);
  EXPECT_DOUBLE_EQ(m.error_rate, 0.25);
  EXPECT_DOUBLE_EQ(m.med, 256.0 / 4.0);
  EXPECT_DOUBLE_EQ(m.max_ed, 256.0);
  EXPECT_DOUBLE_EQ(m.ned, 0.25);
  // MAA 100% acceptance is 3/4.
  EXPECT_DOUBLE_EQ(m.maa_acceptance[0], 0.75);
}

TEST(Metrics, AccAmpHandlesZeroExact) {
  const adders::RcaAdder rca(8);
  stats::TraceSource src(8, {{0, 0}}, "zeros");
  const ErrorMetrics m = evaluate(rca, src, 1);
  EXPECT_DOUBLE_EQ(m.acc_amp_avg, 1.0);
}

TEST(Metrics, MaaThresholdsAreMonotone) {
  const adders::GearAdapter gear(core::GeArConfig::must(16, 2, 2));
  auto src = stats::make_uniform(16, 5);
  const ErrorMetrics m = evaluate(gear, *src, 50000);
  for (std::size_t i = 1; i < m.maa_acceptance.size(); ++i) {
    EXPECT_LE(m.maa_acceptance[i - 1], m.maa_acceptance[i] + 1e-12)
        << "threshold index " << i;
  }
}

TEST(Metrics, MorePredictionBitsImproveEverything) {
  auto eval_cfg = [](int p) {
    const adders::GearAdapter gear(core::GeArConfig::must(16, 4, p));
    auto src = stats::make_uniform(16, 6);
    return evaluate(gear, *src, 100000);
  };
  const ErrorMetrics low = eval_cfg(4);
  const ErrorMetrics high = eval_cfg(8);
  EXPECT_LT(high.error_rate, low.error_rate);
  EXPECT_LT(high.med, low.med);
  EXPECT_GE(high.acc_inf_avg, low.acc_inf_avg);
  EXPECT_GE(high.maa_acceptance[0], low.maa_acceptance[0]);
}

TEST(Metrics, DistributionMattersForLoa) {
  // LOA garbles low bits always — its error rate is much higher under
  // uniform operands than GeAr's, though errors are small in magnitude.
  const adders::LoaAdder loa(16, 8);
  const adders::GearAdapter gear(core::GeArConfig::must(16, 4, 4));
  auto src1 = stats::make_uniform(16, 7);
  auto src2 = stats::make_uniform(16, 7);
  const ErrorMetrics ml = evaluate(loa, *src1, 50000);
  const ErrorMetrics mg = evaluate(gear, *src2, 50000);
  EXPECT_GT(ml.error_rate, mg.error_rate);
  EXPECT_LT(ml.max_ed, 512.0);  // bounded by the OR'd lower part
}

TEST(Metrics, SamplesRecorded) {
  const adders::RcaAdder rca(8);
  auto src = stats::make_uniform(8, 8);
  EXPECT_EQ(evaluate(rca, *src, 1234).samples, 1234u);
}

TEST(MetricsConventions, ZeroSamplesYieldAllZeroMetrics) {
  // Empty-stream convention (metrics.h): all-zero fields, maa_acceptance
  // sized to the thresholds, and no 0/0 NaN anywhere.
  const adders::GearAdapter gear(core::GeArConfig::must(16, 4, 4));
  auto src = stats::make_uniform(16, 9);
  const ErrorMetrics m = evaluate(gear, *src, 0, {90.0, 99.0});
  EXPECT_EQ(m.samples, 0u);
  EXPECT_DOUBLE_EQ(m.error_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.med, 0.0);
  EXPECT_DOUBLE_EQ(m.ned, 0.0);
  EXPECT_DOUBLE_EQ(m.ned_range, 0.0);
  EXPECT_DOUBLE_EQ(m.max_ed, 0.0);
  ASSERT_EQ(m.maa_acceptance.size(), 2u);
  for (const double a : m.maa_acceptance) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(MetricsConventions, ErrorFreeStreamHasZeroNedNotNan) {
  // max_ed == 0 makes NED's defining ratio 0/0; the convention is 0.
  const adders::RcaAdder rca(16);
  auto src = stats::make_uniform(16, 10);
  const ErrorMetrics m = evaluate(rca, *src, 5000);
  EXPECT_DOUBLE_EQ(m.max_ed, 0.0);
  EXPECT_DOUBLE_EQ(m.ned, 0.0);
  EXPECT_FALSE(std::isnan(m.ned));
  EXPECT_FALSE(std::isnan(m.ned_range));
}

TEST(MetricsConventions, AllRejectedMaaIsExactlyZero) {
  // A threshold no addition can meet (> 100% amplitude accuracy) tallies
  // exactly 0.0 acceptance, never NaN.
  const adders::GearAdapter gear(core::GeArConfig::must(16, 4, 4));
  auto src = stats::make_uniform(16, 11);
  const ErrorMetrics m = evaluate(gear, *src, 2000, {101.0});
  ASSERT_EQ(m.maa_acceptance.size(), 1u);
  EXPECT_DOUBLE_EQ(m.maa_acceptance[0], 0.0);
  EXPECT_FALSE(std::isnan(m.maa_acceptance[0]));
}

TEST(MetricsConventions, NedRangeUsesShiftSafeDenominator) {
  // ned_range = MED / (2^N - 1) computed via width_mask — identical to the
  // pow() form at every adder width.
  const adders::GearAdapter gear(core::GeArConfig::must(16, 4, 4));
  auto src = stats::make_uniform(16, 12);
  const ErrorMetrics m = evaluate(gear, *src, 20000);
  EXPECT_DOUBLE_EQ(m.ned_range, m.med / (std::pow(2.0, 16) - 1.0));
}

}  // namespace
}  // namespace gear::analysis
