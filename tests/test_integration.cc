// Cross-module integration tests: functional models vs gate-level
// circuits vs analytic error models vs synthesized reports, end to end.
#include <gtest/gtest.h>

#include "adders/registry.h"
#include "analysis/metrics.h"
#include "apps/generate.h"
#include "apps/integral.h"
#include "apps/trace.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "synth/report.h"
#include "stats/rng.h"

namespace gear {
namespace {

TEST(Integration, ThreeImplementationsAgree) {
  // Functional model, gate-level circuit, and behavioural slice formula
  // (via the registry adapter) all agree on GeAr(16,4,4).
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const core::GeArAdder model(cfg);
  const netlist::Netlist circuit = netlist::build_gear(cfg);
  const adders::AdderPtr adapter = adders::make_adder("gear:16:4:4");
  stats::Rng rng(90);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const std::uint64_t expect = model.add_value(a, b);
    ASSERT_EQ(circuit.simulate_add(a, b), expect);
    ASSERT_EQ(adapter->add(a, b), expect);
  }
}

TEST(Integration, TracedKernelMetricsMatchDirectKernelError) {
  // Capture the image-integral operand stream with a traced exact adder,
  // evaluate GeAr on the trace, and cross-check the error rate against
  // running the kernel directly with GeAr.
  stats::Rng rng(91);
  const apps::Image img = apps::smoothed_noise_image(96, 64, rng, 2);
  const adders::AdderPtr exact = adders::make_adder("rca:16");
  apps::TracingAdder traced(*exact);
  const auto ref_rows = apps::row_integral(img, traced);

  const adders::AdderPtr gear = adders::make_adder("gear:16:4:4");
  const auto approx_rows = apps::row_integral(img, *gear);

  // Count mismatching prefix-sum entries directly.
  std::size_t direct_mismatches = 0, total = 0;
  for (std::size_t y = 0; y < ref_rows.size(); ++y) {
    for (std::size_t x = 0; x < ref_rows[y].size(); ++x) {
      ++total;
      if (ref_rows[y][x] != approx_rows[y][x]) ++direct_mismatches;
    }
  }

  // Replaying the trace measures per-addition error; kernel-level error
  // is at least as common (errors also propagate into later prefixes) —
  // but each must be nonzero and of a sane magnitude for this workload.
  auto src = traced.take_source("integral16");
  const analysis::ErrorMetrics m =
      analysis::evaluate(*gear, src, static_cast<std::uint64_t>(total));
  EXPECT_GT(m.error_rate, 0.0);
  EXPECT_GT(direct_mismatches, 0u);
  EXPECT_GE(static_cast<double>(direct_mismatches) / static_cast<double>(total),
            m.error_rate * 0.5);
}

TEST(Integration, SynthesisRanksFamiliesLikeThePaper) {
  // Table I orderings at N=16: GeAr(4,2) and ACA-II are fastest;
  // GDA is slowest (CLA prediction) and biggest.
  const auto rca = synth::synthesize(netlist::build_rca(16));
  const auto aca2 = synth::synthesize(netlist::build_aca2(16, 8));
  const auto gear42 = synth::synthesize(
      netlist::build_gear(*core::GeArConfig::make_relaxed(16, 4, 2)));
  const auto gda = synth::synthesize(netlist::build_gda(16, 4, 4));

  EXPECT_LT(synth::sum_path_delay(gear42), rca.delay_ns);
  EXPECT_LT(synth::sum_path_delay(aca2), rca.delay_ns);
  EXPECT_GT(gda.delay_ns, rca.delay_ns);
  EXPECT_GT(gda.area_luts, rca.area_luts);
}

TEST(Integration, AnalyticModelPredictsMeasuredAccuracyOrdering) {
  // The paper's pitch: pick configurations by model, without simulating.
  // Verify the model ordering matches measured orderings for a ladder of
  // configurations.
  struct Entry {
    const char* spec;
    core::GeArConfig cfg;
  };
  const Entry ladder[] = {
      {"gear:16:4:2", *core::GeArConfig::make_relaxed(16, 4, 2)},
      {"gear:16:4:4", core::GeArConfig::must(16, 4, 4)},
      {"gear:16:4:8", core::GeArConfig::must(16, 4, 8)},
  };
  double prev_model = 1.0;
  double prev_measured = 1.0;
  for (const auto& e : ladder) {
    const double model = core::paper_error_probability(e.cfg);
    auto src = stats::make_uniform(16, 92);
    const adders::AdderPtr adder = adders::make_adder(e.spec);
    const double measured =
        analysis::evaluate(*adder, *src, 100000).error_rate;
    EXPECT_LT(model, prev_model);
    EXPECT_LT(measured, prev_measured + 1e-9);
    EXPECT_NEAR(model, measured, 0.01) << e.spec;
    prev_model = model;
    prev_measured = measured;
  }
}

TEST(Integration, EccAdapterNeverWorseEndToEnd) {
  stats::Rng rng(93);
  const apps::Image img = apps::smoothed_noise_image(48, 32, rng, 1);
  const adders::AdderPtr exact = adders::make_adder("rca:16");
  const adders::AdderPtr ecc = adders::make_adder("gear+ecc:16:4:4");
  const auto ref = apps::row_integral(img, *exact);
  const auto corrected = apps::row_integral(img, *ecc);
  EXPECT_EQ(ref, corrected);  // full correction => bit-exact kernel output
}

}  // namespace
}  // namespace gear
