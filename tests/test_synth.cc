// Synthesis substrate tests: LUT mapping invariants, calibrated timing.
#include <gtest/gtest.h>

#include "core/config.h"
#include "netlist/builder.h"
#include "netlist/circuits.h"
#include "synth/lut_map.h"
#include "synth/report.h"
#include "synth/timing.h"

namespace gear::synth {
namespace {

TEST(LutMap, RcaAreaIsOneLutPerBit) {
  // Matches the paper's Table I: 16-bit RCA = 16 LUTs.
  for (int n : {8, 16, 32}) {
    const auto nl = netlist::build_rca(n);
    const MappingResult m = map_to_luts(nl);
    EXPECT_EQ(m.carry_elements, n);
    EXPECT_EQ(static_cast<int>(m.luts.size()), 0);
    EXPECT_EQ(m.area_luts(), n);
  }
}

TEST(LutMap, EveryRootCovered) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const auto nl = netlist::build_gear(cfg);
  const MappingResult m = map_to_luts(nl);
  // All LUT leaves must be inputs, constants, macro outputs, or other
  // selected LUT outputs.
  std::set<netlist::NetId> lut_outs;
  for (const auto& lut : m.luts) lut_outs.insert(lut.out);
  std::set<netlist::NetId> macro_outs;
  std::set<netlist::NetId> logic;
  for (const auto& g : nl.gates()) {
    if (netlist::is_carry_macro(g.kind)) {
      macro_outs.insert(g.output);
    } else if (g.kind != netlist::GateKind::kConst0 &&
               g.kind != netlist::GateKind::kConst1) {
      logic.insert(g.output);
    }
  }
  for (const auto& lut : m.luts) {
    for (netlist::NetId leaf : lut.leaves) {
      if (logic.count(leaf)) {
        EXPECT_TRUE(lut_outs.count(leaf)) << "leaf " << leaf << " unrealized";
      }
    }
  }
}

TEST(LutMap, CutWidthRespected) {
  const auto nl = netlist::build_cla(16);
  for (int k : {3, 4, 6}) {
    const MappingResult m = map_to_luts(nl, k);
    for (const auto& lut : m.luts) {
      EXPECT_LE(static_cast<int>(lut.leaves.size()), k);
    }
  }
}

TEST(LutMap, SmallerKNeverFewerLuts) {
  const auto nl = netlist::build_cla(16);
  const int luts6 = static_cast<int>(map_to_luts(nl, 6).luts.size());
  const int luts3 = static_cast<int>(map_to_luts(nl, 3).luts.size());
  EXPECT_GE(luts3, luts6);
}

TEST(Timing, RcaCalibration) {
  // 16-bit RCA ~1.36 ns under the Virtex-6 model (paper: 1.365 ns).
  const auto report = synthesize(netlist::build_rca(16));
  EXPECT_NEAR(report.delay_ns, 1.365, 0.08);
  EXPECT_EQ(report.area_luts, 16);
}

TEST(Timing, RcaDelayGrowsLinearly) {
  const double d8 = synthesize(netlist::build_rca(8)).delay_ns;
  const double d16 = synthesize(netlist::build_rca(16)).delay_ns;
  const double d32 = synthesize(netlist::build_rca(32)).delay_ns;
  EXPECT_LT(d8, d16);
  EXPECT_LT(d16, d32);
  // Increment is per-bit carry delay: doubling the extra bits doubles it.
  EXPECT_NEAR(d32 - d16, 2.0 * (d16 - d8), 1e-9);
}

TEST(Timing, GearFasterThanRca) {
  // The headline claim: GeAr's sum path beats the same-width RCA.
  // (4,2) is one of the paper's Table I relaxed configurations.
  const double rca = synthesize(netlist::build_rca(16)).delay_ns;
  for (auto [r, p] : {std::pair{4, 2}, {4, 4}, {2, 2}}) {
    const auto cfg = *core::GeArConfig::make_relaxed(16, r, p);
    const auto rep = synthesize(netlist::build_gear(cfg));
    EXPECT_LT(sum_path_delay(rep), rca) << cfg.name();
  }
}

TEST(Timing, GearDelayGrowsWithL) {
  const auto d1 = sum_path_delay(synthesize(
      netlist::build_gear(core::GeArConfig::must(16, 4, 4))));  // L=8
  const auto d2 = sum_path_delay(synthesize(
      netlist::build_gear(core::GeArConfig::must(16, 4, 8))));  // L=12
  EXPECT_LT(d1, d2);
}

TEST(Timing, GdaSlowerThanGearAtSameConfig) {
  // Paper Table II: GDA pays for its CLA prediction tree and muxes.
  for (auto [r, p] : {std::pair{1, 2}, {1, 4}, {2, 4}}) {
    const auto gear = synthesize(
        netlist::build_gear(core::GeArConfig::must(8, r, p)));
    const auto gda = synthesize(netlist::build_gda(8, r, p));
    EXPECT_GE(gda.delay_ns, sum_path_delay(gear) - 1e-9)
        << "r=" << r << " p=" << p;
  }
}

TEST(Timing, GdaAreaAtLeastGear) {
  for (auto [r, p] : {std::pair{1, 3}, {2, 4}}) {
    const auto gear = synthesize(
        netlist::build_gear(core::GeArConfig::must(8, r, p),
                            {.with_detection = false}));
    const auto gda = synthesize(netlist::build_gda(8, r, p));
    EXPECT_GE(gda.area_luts, gear.area_luts) << "r=" << r << " p=" << p;
  }
}

TEST(Timing, PortArrivalsPresent) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const auto rep = synthesize(netlist::build_gear(cfg));
  EXPECT_TRUE(rep.timing.port_arrival.count("sum"));
  EXPECT_TRUE(rep.timing.port_arrival.count("err"));
  EXPECT_GT(rep.timing.port_arrival.at("sum"), 0.0);
}

TEST(Timing, CorrectionCostsAreaNotSumDelay) {
  const auto cfg = core::GeArConfig::must(12, 4, 4);
  const auto plain = synthesize(netlist::build_gear(cfg));
  const auto ecc = synthesize(
      netlist::build_gear(cfg, {.with_detection = true, .with_correction = true}));
  EXPECT_GT(ecc.area_luts, plain.area_luts);
}

TEST(Timing, FanoutPenaltyMonotone) {
  // A model property: raising the fan-out coefficient cannot reduce the
  // reported delay.
  const auto nl = netlist::build_aca1(16, 4);
  DelayModel slow = DelayModel::virtex6();
  slow.t_fanout *= 2.0;
  EXPECT_GE(synthesize(nl, slow).delay_ns, synthesize(nl).delay_ns - 1e-12);
}

}  // namespace
}  // namespace gear::synth
