// Unit tests for BitVec, including randomized cross-checks against native
// 64-bit arithmetic and wide (>64-bit) property tests.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/bitvec.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

TEST(BitVec, ConstructionAndBits) {
  BitVec v(8, 0b10110010);
  EXPECT_EQ(v.width(), 8);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_TRUE(v.bit(7));
  EXPECT_EQ(v.to_u64(), 0b10110010u);
}

TEST(BitVec, ValueTruncatedToWidth) {
  BitVec v(4, 0xFF);
  EXPECT_EQ(v.to_u64(), 0xFu);
}

TEST(BitVec, FromBinaryRoundTrip) {
  const std::string s = "1011001110001111";
  BitVec v = BitVec::from_binary(s);
  EXPECT_EQ(v.width(), 16);
  EXPECT_EQ(v.to_binary(), s);
}

TEST(BitVec, FromBinaryRejectsGarbage) {
  EXPECT_THROW(BitVec::from_binary("10x1"), std::invalid_argument);
}

TEST(BitVec, SetAndClearBits) {
  BitVec v(70);
  v.set_bit(69, true);
  EXPECT_TRUE(v.bit(69));
  EXPECT_EQ(v.popcount(), 1);
  v.set_bit(69, false);
  EXPECT_TRUE(v.is_zero());
}

TEST(BitVec, SliceAndSetSlice) {
  BitVec v(16, 0xABCD);
  BitVec nib = v.slice(4, 4);
  EXPECT_EQ(nib.to_u64(), 0xCu);
  v.set_slice(4, BitVec(4, 0x5));
  EXPECT_EQ(v.to_u64(), 0xAB5Du);
}

TEST(BitVec, AddMatchesNative) {
  stats::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.bits(32);
    const std::uint64_t b = rng.bits(32);
    bool cout = false;
    const BitVec s = BitVec(32, a).add(BitVec(32, b), false, &cout);
    const std::uint64_t want = a + b;
    EXPECT_EQ(s.to_u64(), want & 0xFFFFFFFFu);
    EXPECT_EQ(cout, (want >> 32) & 1);
  }
}

TEST(BitVec, AddCarryIn) {
  bool cout = false;
  const BitVec s = BitVec(4, 0xF).add(BitVec(4, 0x0), true, &cout);
  EXPECT_EQ(s.to_u64(), 0u);
  EXPECT_TRUE(cout);
}

TEST(BitVec, AddWideCarryPropagation) {
  // 2^100 - 1 plus 1 must carry across word boundaries.
  BitVec a(100);
  for (int i = 0; i < 100; ++i) a.set_bit(i, true);
  bool cout = false;
  const BitVec s = a.add(BitVec(100, 1), false, &cout);
  EXPECT_TRUE(s.is_zero());
  EXPECT_TRUE(cout);
}

TEST(BitVec, SubMatchesNative) {
  stats::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.bits(24);
    const std::uint64_t b = rng.bits(24);
    const BitVec d = BitVec(24, a).sub(BitVec(24, b));
    EXPECT_EQ(d.to_u64(), (a - b) & ((1ULL << 24) - 1));
  }
}

TEST(BitVec, LogicOpsMatchNative) {
  stats::Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.bits(48);
    const std::uint64_t b = rng.bits(48);
    const BitVec va(48, a), vb(48, b);
    EXPECT_EQ((va & vb).to_u64(), a & b);
    EXPECT_EQ((va | vb).to_u64(), a | b);
    EXPECT_EQ((va ^ vb).to_u64(), a ^ b);
    EXPECT_EQ((~va).to_u64(), ~a & ((1ULL << 48) - 1));
  }
}

TEST(BitVec, ShiftsMatchNative) {
  stats::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.bits(40);
    const int sh = static_cast<int>(rng.range(0, 39));
    const BitVec v(40, a);
    EXPECT_EQ((v << sh).to_u64(), (a << sh) & ((1ULL << 40) - 1));
    EXPECT_EQ((v >> sh).to_u64(), a >> sh);
  }
}

TEST(BitVec, ComparisonOperators) {
  EXPECT_TRUE(BitVec(8, 3) < BitVec(8, 5));
  EXPECT_FALSE(BitVec(8, 5) < BitVec(8, 3));
  EXPECT_FALSE(BitVec(8, 5) < BitVec(8, 5));
  EXPECT_EQ(BitVec(8, 5), BitVec(8, 5));
  EXPECT_NE(BitVec(8, 5), BitVec(8, 6));
}

TEST(BitVec, WideComparison) {
  BitVec hi(100);
  hi.set_bit(99, true);
  BitVec lo(100, ~0ULL);
  EXPECT_TRUE(lo < hi);
  EXPECT_FALSE(hi < lo);
}

TEST(BitVec, HexFormatting) {
  EXPECT_EQ(BitVec(16, 0xBEEF).to_hex(), "0xbeef");
  EXPECT_EQ(BitVec(12, 0xABC).to_hex(), "0xabc");
  EXPECT_EQ(BitVec(13, 0x1ABC).to_hex(), "0x1abc");
}

TEST(BitVec, Resized) {
  BitVec v(8, 0xFF);
  EXPECT_EQ(v.resized(4).to_u64(), 0xFu);
  EXPECT_EQ(v.resized(16).to_u64(), 0xFFu);
  EXPECT_EQ(v.resized(16).width(), 16);
}

TEST(BitVec, FitsU64) {
  BitVec small(128, 42);
  EXPECT_TRUE(small.fits_u64());
  small.set_bit(64, true);
  EXPECT_FALSE(small.fits_u64());
}

}  // namespace
}  // namespace gear::core
