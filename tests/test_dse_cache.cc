// DseCache tests: fast-path and cache-hit bit-identity against direct
// synthesis, JSON persistence round-trips, and determinism of the
// parallel cached sweep across thread counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/dse_cache.h"
#include "analysis/selector.h"
#include "core/config.h"
#include "netlist/circuits.h"
#include "stats/parallel.h"
#include "synth/report.h"
#include "test_util.h"

namespace gear::analysis {
namespace {

using testutil::for_each_thread_count;
using testutil::probe_configs;

CachedSynth direct_synth(const core::GeArConfig& cfg, bool with_detection) {
  const auto rep = synth::synthesize(
      netlist::build_gear(cfg, {.with_detection = with_detection}));
  CachedSynth out;
  out.area_luts = rep.area_luts;
  out.carry_elements = rep.carry_elements;
  out.lut_count = rep.lut_count;
  out.lut_levels = rep.lut_levels;
  out.delay_ns = rep.delay_ns;
  out.sum_delay_ns = synth::sum_path_delay(rep);
  return out;
}

TEST(DseCache, BitIdenticalToDirectSynthesis) {
  // Every CachedSynth field — including both STA doubles — must equal
  // direct synthesis exactly, whether served by the Tier-B fast path
  // (no detection) or by full synthesis (detection, overlap customs).
  DseCache cache;
  for (const auto& cfg : probe_configs()) {
    for (bool det : {false, true}) {
      const CachedSynth got = cache.gear_synth(cfg, det);
      const CachedSynth want = direct_synth(cfg, det);
      EXPECT_EQ(got, want) << cfg.name() << " det=" << det;
    }
  }
  EXPECT_GT(cache.fast_path_evals(), 0u);
}

TEST(DseCache, HitReturnsIdenticalBits) {
  DseCache cache;
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const auto miss = cache.gear_synth(cfg, false);
  EXPECT_EQ(cache.misses(), 1u);
  const auto hit = cache.gear_synth(cfg, false);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(miss, hit);

  // Detection variants key separately.
  const auto det = cache.gear_synth(cfg, true);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(det, miss);
}

TEST(DseCache, LayoutCanonicalKeySharesEntries) {
  // A strict (16,2,2) and the relaxed (16,2,2) have identical layouts;
  // the second lookup must hit.
  DseCache cache;
  const auto strict = core::GeArConfig::must(16, 2, 2);
  const auto relaxed = core::GeArConfig::make_relaxed(16, 2, 2);
  ASSERT_TRUE(relaxed);
  ASSERT_EQ(strict.layout(), relaxed->layout());
  const auto a = cache.gear_synth(strict, false);
  const auto b = cache.gear_synth(*relaxed, false);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a, b);
}

TEST(DseCache, JsonRoundTripIsBitExact) {
  DseCache cache;
  std::vector<CachedSynth> originals;
  const auto cfgs = probe_configs();
  for (const auto& cfg : cfgs) {
    originals.push_back(cache.gear_synth(cfg, false));
  }
  const std::string path = ::testing::TempDir() + "dse_cache_roundtrip.json";
  ASSERT_TRUE(cache.save_json(path));

  DseCache warm;
  ASSERT_TRUE(warm.load_json(path));
  EXPECT_EQ(warm.size(), cache.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const auto got = warm.gear_synth(cfgs[i], false);
    EXPECT_EQ(got, originals[i]) << cfgs[i].name();
  }
  // Every lookup above must have been served from the loaded map.
  EXPECT_EQ(warm.misses(), 0u);
  std::remove(path.c_str());
}

TEST(DseCache, LoadJsonFailsOnMissingFile) {
  DseCache cache;
  EXPECT_FALSE(cache.load_json(::testing::TempDir() + "does_not_exist.json"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DseCache, ShardedRoundTripBitExact) {
  // save_shards / load_shards must be as lossless as the single-file
  // JSON path: every synthesis and error entry comes back bit for bit,
  // and the rebuilt cache serves everything without a single miss.
  DseCache cache;
  std::vector<CachedSynth> synths;
  std::vector<CachedError> errors;
  const auto cfgs = probe_configs();
  for (const auto& cfg : cfgs) {
    synths.push_back(cache.gear_synth(cfg, false));
    errors.push_back(cache.gear_error(cfg));
  }
  const std::string dir = ::testing::TempDir() + "dse_shards_roundtrip";
  ASSERT_TRUE(cache.save_shards(dir, 8));

  DseCache warm;
  ASSERT_TRUE(warm.load_shards(dir));
  EXPECT_EQ(warm.size(), cache.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(warm.gear_synth(cfgs[i], false), synths[i]) << cfgs[i].name();
    EXPECT_EQ(warm.gear_error(cfgs[i]), errors[i]) << cfgs[i].name();
  }
  EXPECT_EQ(warm.misses(), 0u);
}

TEST(DseCache, ShardedLoadSurvivesCorruptShard) {
  DseCache cache;
  const auto cfgs = probe_configs();
  for (const auto& cfg : cfgs) {
    cache.gear_synth(cfg, false);
    cache.gear_error(cfg);
  }
  const std::string dir = ::testing::TempDir() + "dse_shards_corrupt";
  ASSERT_TRUE(cache.save_shards(dir, 8));
  // Clobber one shard with garbage; the rest must still load, and the
  // loader must report overall success (a partial warm set, not a
  // failure).
  {
    std::ofstream out(dir + "/shard-00003-of-00008.json");
    ASSERT_TRUE(out.is_open());
    out << "{\"v\": 1, garbage\nnot json at all\n";
  }
  DseCache warm;
  EXPECT_TRUE(warm.load_shards(dir));
  EXPECT_LT(warm.size(), cache.size());  // the corrupt shard's entries died
  EXPECT_GT(warm.size(), 0u);            // ... but only those
  // Every entry that did load is bit-identical: re-querying each config
  // either hits the warm map (same bits) or recomputes the same value.
  for (const auto& cfg : cfgs) {
    EXPECT_EQ(warm.gear_synth(cfg, false), cache.gear_synth(cfg, false))
        << cfg.name();
  }
  // An unreadable directory (or one with no shards) is a failure.
  DseCache empty;
  EXPECT_FALSE(empty.load_shards(dir + "_does_not_exist"));
}

TEST(DseCache, CustomUniformTwinSharesOneCacheEntry) {
  // A uniform-segment custom spelling canonicalizes onto its strict twin
  // (layout-level keying), so the two share a single Tier-A entry: same
  // config_key, and the second lookup is a pure hit.
  DseCache cache;
  const auto strict = core::GeArConfig::must(16, 4, 4);
  const auto twin = core::GeArConfig::make_custom(16, 8, {{4, 4}, {4, 4}});
  ASSERT_TRUE(twin);
  EXPECT_EQ(cache.config_key(strict, true), cache.config_key(*twin, true));
  EXPECT_EQ(layout_canonical_key(strict), layout_canonical_key(*twin));
  const auto a = cache.gear_synth(strict, true);
  const auto b = cache.gear_synth(*twin, true);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(a, b);
}

TEST(DseCache, KeyedSynthMemoizesBaselines) {
  DseCache cache;
  int builds = 0;
  auto build = [&] {
    ++builds;
    return netlist::build_gear(core::GeArConfig::must(16, 4, 4),
                               {.with_detection = true});
  };
  const auto a = cache.keyed_synth("gda:16:4:4", build);
  const auto b = cache.keyed_synth("gda:16:4:4", build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a, b);
}

TEST(DseCache, GearPowerIdenticalOnHitAndAcrossInstances) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  DseCache cache;
  const auto miss = cache.gear_power(cfg, false, 256, 42);
  const auto hit = cache.gear_power(cfg, false, 256, 42);
  EXPECT_EQ(miss.toggles_per_op, hit.toggles_per_op);
  EXPECT_EQ(miss.energy_per_op, hit.energy_per_op);
  EXPECT_EQ(miss.mean_activity, hit.mean_activity);

  // A fresh cache recomputes from the same substream: identical bits.
  DseCache other;
  const auto recomputed = other.gear_power(cfg, false, 256, 42);
  EXPECT_EQ(miss.toggles_per_op, recomputed.toggles_per_op);
  EXPECT_EQ(miss.energy_per_op, recomputed.energy_per_op);
}

void expect_same_ranking(const std::vector<SelectedConfig>& a,
                         const std::vector<SelectedConfig>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cfg.r(), b[i].cfg.r()) << "index " << i;
    EXPECT_EQ(a[i].cfg.p(), b[i].cfg.p()) << "index " << i;
    EXPECT_EQ(a[i].error_probability, b[i].error_probability);
    EXPECT_EQ(a[i].delay_ns, b[i].delay_ns);
    EXPECT_EQ(a[i].area_luts, b[i].area_luts);
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].exact_med, b[i].exact_med);
    EXPECT_EQ(a[i].exact_ned, b[i].exact_ned);
    EXPECT_EQ(a[i].exact_ned_range, b[i].exact_ned_range);
  }
}

TEST(DseCache, RankConfigsDeterministicAcrossThreadCountsAndCaching) {
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 0.2;
  const auto serial = rank_configs(req);
  ASSERT_FALSE(serial.empty());

  for_each_thread_count([&](stats::ParallelExecutor& exec, int) {
    DseCache cache;
    SweepContext ctx{&exec, &cache};
    const auto cold = rank_configs(req, ctx);
    expect_same_ranking(serial, cold);
    // Warm pass: everything hits, same bits.
    const auto warm = rank_configs(req, ctx);
    expect_same_ranking(serial, warm);

    // Executor without cache and cache without executor.
    const auto exec_only = rank_configs(req, SweepContext{&exec, nullptr});
    expect_same_ranking(serial, exec_only);
    const auto cache_only = rank_configs(req, SweepContext{nullptr, &cache});
    expect_same_ranking(serial, cache_only);
  });
}

TEST(DseCache, SelectConfigMatchesSerialUnderContext) {
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 0.05;
  req.objective = Objective::kDelayArea;
  const auto serial = select_config(req);
  ASSERT_TRUE(serial);
  stats::ParallelExecutor exec(4);
  DseCache cache;
  const auto ctx = select_config(req, SweepContext{&exec, &cache});
  ASSERT_TRUE(ctx);
  EXPECT_EQ(serial->cfg.r(), ctx->cfg.r());
  EXPECT_EQ(serial->cfg.p(), ctx->cfg.p());
  EXPECT_EQ(serial->delay_ns, ctx->delay_ns);
  EXPECT_EQ(serial->score, ctx->score);
}

}  // namespace
}  // namespace gear::analysis
