// Signed (two's complement) arithmetic helpers.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/signed_ops.h"
#include "core/width.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

TEST(SignedOps, ConversionRoundTrip) {
  for (int bits : {4, 8, 12, 16}) {
    const std::int64_t lo = -(1LL << (bits - 1));
    const std::int64_t hi = (1LL << (bits - 1)) - 1;
    for (std::int64_t v = lo; v <= hi; v += std::max<std::int64_t>(1, (hi - lo) / 500)) {
      EXPECT_EQ(to_signed(from_signed(v, bits), bits), v) << "bits=" << bits;
    }
    EXPECT_EQ(to_signed(from_signed(lo, bits), bits), lo);
    EXPECT_EQ(to_signed(from_signed(hi, bits), bits), hi);
  }
}

TEST(SignedOps, KnownEncodings) {
  EXPECT_EQ(from_signed(-1, 8), 0xFFu);
  EXPECT_EQ(from_signed(-128, 8), 0x80u);
  EXPECT_EQ(to_signed(0x80, 8), -128);
  EXPECT_EQ(to_signed(0x7F, 8), 127);
}

TEST(SignedOps, ExactConfigSignedAddCorrect) {
  const GeArAdder exact(GeArConfig::must(12, 11, 1));
  stats::Rng rng(41);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::int64_t>(rng.range(0, 2047)) - 1024;
    const auto b = static_cast<std::int64_t>(rng.range(0, 2047)) - 1024;
    const SignedAddResult r = signed_add(exact, a, b);
    if (!r.overflow) {
      EXPECT_EQ(r.value, a + b) << a << "+" << b;
    }
    EXPECT_EQ(signed_error(exact, a, b), 0);
  }
}

TEST(SignedOps, OverflowFlagMatchesRange) {
  const GeArAdder exact(GeArConfig::must(8, 7, 1));
  EXPECT_TRUE(signed_add(exact, 127, 1).overflow);
  EXPECT_TRUE(signed_add(exact, -128, -1).overflow);
  EXPECT_FALSE(signed_add(exact, 100, 27).overflow);
  EXPECT_FALSE(signed_add(exact, -100, -28).overflow);
}

TEST(SignedOps, ApproximateErrorsMatchUnsignedMagnitude) {
  // The hardware is sign-agnostic: the signed error equals the unsigned
  // deficit re-interpreted, so its magnitude is a sum of region weights.
  const GeArAdder adder(GeArConfig::must(12, 4, 4));
  stats::Rng rng(42);
  for (int i = 0; i < 50000; ++i) {
    const auto a = static_cast<std::int64_t>(rng.range(0, 4095)) - 2048;
    const auto b = static_cast<std::int64_t>(rng.range(0, 4095)) - 2048;
    const std::int64_t err = signed_error(adder, a, b);
    // (12,4,4) can only lose the 2^8 boundary carry; in signed view that
    // deficit may alias across the sign wheel to -256 or +3840... it must
    // be congruent to -256 or 0 modulo 2^12.
    const std::int64_t mod = ((err % 4096) + 4096) % 4096;
    EXPECT_TRUE(mod == 0 || mod == 4096 - 256) << err;
  }
}

TEST(SignedOps, DetectionFlagSurfacesInSignedView) {
  const GeArAdder adder(GeArConfig::must(12, 4, 4));
  // Construct the Fig. 3 error case with signed operands.
  const std::int64_t a = to_signed((0b1010ULL << 4) | 0b1000ULL, 12);
  const std::int64_t b = to_signed((0b0101ULL << 4) | 0b1000ULL, 12);
  const SignedAddResult r = signed_add(adder, a, b);
  EXPECT_TRUE(r.error_detected);
}

TEST(SignedOps, FullWidthRoundtrips) {
  // bits == 64: to_signed is the plain two's-complement bit cast, with no
  // 1 << 64 shift anywhere (PR-3 numeric-edge sweep).
  EXPECT_EQ(to_signed(~0ULL, 64), -1);
  EXPECT_EQ(to_signed(0x8000000000000000ULL, 64), INT64_MIN);
  EXPECT_EQ(to_signed(0x7FFFFFFFFFFFFFFFULL, 64), INT64_MAX);
  EXPECT_EQ(from_signed(-1, 64), ~0ULL);
  EXPECT_EQ(from_signed(INT64_MIN, 64), 0x8000000000000000ULL);
  for (const std::int64_t v : {std::int64_t{0}, std::int64_t{-1},
                               std::int64_t{42}, INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(to_signed(from_signed(v, 64), 64), v) << v;
  }
  // bits == 63: the widest width the adders themselves use.
  EXPECT_EQ(to_signed(width_mask(63), 63), -1);
  EXPECT_EQ(to_signed(1ULL << 62, 63), -(std::int64_t{1} << 62));
  for (const std::int64_t v :
       {std::int64_t{-5}, (std::int64_t{1} << 62) - 1,
        -(std::int64_t{1} << 62)}) {
    EXPECT_EQ(to_signed(from_signed(v, 63), 63), v) << v;
  }
  // Truncating encode ignores bits above the width.
  EXPECT_EQ(from_signed(-1, 63), width_mask(63));

}

}  // namespace
}  // namespace gear::core
