// Differential sweep: for every adder family and a grid of widths and
// parameters, the functional model, the gate-level circuit and the
// GeAr-equivalent configuration (when one exists) must agree input for
// input. This is the repository's broadest cross-implementation net.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "adders/registry.h"
#include "core/adder.h"
#include "netlist/circuits.h"
#include "stats/rng.h"

namespace gear {
namespace {

struct Case {
  std::string spec;
  std::function<netlist::Netlist()> circuit;  // null if no gate-level form
};

std::vector<Case> differential_cases() {
  std::vector<Case> cases;
  for (int n : {8, 12, 16}) {
    cases.push_back({"rca:" + std::to_string(n),
                     [n] { return netlist::build_rca(n); }});
    cases.push_back({"cla:" + std::to_string(n),
                     [n] { return netlist::build_cla(n); }});
    for (int l : {2, 4}) {
      cases.push_back({"aca1:" + std::to_string(n) + ":" + std::to_string(l),
                       [n, l] { return netlist::build_aca1(n, l); }});
    }
    for (int seg : {2, 4}) {
      if (n % seg != 0) continue;
      cases.push_back({"etaii:" + std::to_string(n) + ":" + std::to_string(seg),
                       [n, seg] { return netlist::build_etaii(n, seg); }});
    }
    for (int l : {4, 8}) {
      if (n % (l / 2) != 0) continue;
      cases.push_back({"aca2:" + std::to_string(n) + ":" + std::to_string(l),
                       [n, l] { return netlist::build_aca2(n, l); }});
    }
    for (auto [mb, mc] : {std::pair{2, 2}, {2, 4}, {4, 4}}) {
      if (n % mb != 0 || mc >= n) continue;
      cases.push_back(
          {"gda:" + std::to_string(n) + ":" + std::to_string(mb) + ":" +
               std::to_string(mc),
           [n, mb = mb, mc = mc] { return netlist::build_gda(n, mb, mc); }});
    }
    for (auto [r, p] : {std::pair{1, 3}, {2, 2}, {2, 4}, {4, 4}, {3, 5}}) {
      auto cfg = core::GeArConfig::make_relaxed(n, r, p);
      if (!cfg) continue;
      cases.push_back(
          {"gear:" + std::to_string(n) + ":" + std::to_string(r) + ":" +
               std::to_string(p),
           [cfg = *cfg] { return netlist::build_gear(cfg); }});
    }
  }
  return cases;
}

TEST(Differential, ModelVsCircuitSweep) {
  stats::Rng rng(111);
  for (const Case& c : differential_cases()) {
    const adders::AdderPtr model = adders::make_adder(c.spec);
    const netlist::Netlist circuit = c.circuit();
    ASSERT_TRUE(circuit.validate().empty()) << c.spec;
    const int n = model->width();
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t a = rng.bits(n);
      const std::uint64_t b = rng.bits(n);
      ASSERT_EQ(circuit.simulate_add(a, b), model->add(a, b))
          << c.spec << " a=" << a << " b=" << b;
    }
  }
}

TEST(Differential, ModelVsGearEquivalentSweep) {
  stats::Rng rng(112);
  for (const Case& c : differential_cases()) {
    const adders::AdderPtr model = adders::make_adder(c.spec);
    const auto equiv = model->gear_equivalent();
    if (!equiv) continue;
    const core::GeArAdder gear(*equiv);
    const int n = model->width();
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t a = rng.bits(n);
      const std::uint64_t b = rng.bits(n);
      ASSERT_EQ(model->add(a, b), gear.add_value(a, b))
          << c.spec << " vs " << equiv->name();
    }
  }
}

TEST(Differential, AddMatchesAddValueEveryLayout) {
  // add() and add_value() share the result-assembly helper, so their sums
  // must agree bit for bit on every constructible layout: strict, relaxed
  // (clamped top window), and randomized heterogeneous — with and without
  // carry-in. Historically add_value keyed its top-window widening on
  // res_hi == N-1 while add() placed the top carry-out unconditionally;
  // this pins the unified behaviour.
  stats::Rng rng(113);

  std::vector<core::GeArConfig> configs;
  for (int n : {8, 13, 16, 20}) {
    for (const auto& cfg : core::GeArConfig::enumerate(n, /*include_exact=*/true))
      configs.push_back(cfg);
    for (int r : {1, 2, 3, 5})
      for (const auto& cfg : core::GeArConfig::enumerate_relaxed_r(n, r))
        configs.push_back(cfg);
  }
  // Randomized heterogeneous layouts: random l0, then random (R_j, P_j)
  // segments until the operand width is tiled (retry on invalid draws).
  int customs = 0;
  while (customs < 60) {
    const int n = 8 + static_cast<int>(rng.range(0, 16));
    const int l0 = 2 + static_cast<int>(rng.range(0, static_cast<std::uint64_t>(n / 2)));
    std::vector<core::GeArConfig::Segment> segs;
    int covered = l0;
    while (covered < n) {
      const int res = 1 + static_cast<int>(rng.range(0, 3)) % (n - covered);
      const int pred = 1 + static_cast<int>(rng.range(0, static_cast<std::uint64_t>(covered - 1)));
      segs.push_back({res, pred});
      covered += res;
    }
    const auto cfg = core::GeArConfig::make_custom(n, l0, segs);
    if (cfg) {
      configs.push_back(*cfg);
      ++customs;
    }
  }

  for (const auto& cfg : configs) {
    const core::GeArAdder adder(cfg);
    const std::uint64_t mask = adder.operand_mask();
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t a = rng.bits(cfg.n());
      const std::uint64_t b = rng.bits(cfg.n());
      ASSERT_EQ(adder.add(a, b).sum, adder.add_value(a, b))
          << cfg.name() << " a=" << a << " b=" << b;
      ASSERT_EQ(adder.add(a, b, true).sum, adder.add_value(a, b, true))
          << cfg.name() << " cin a=" << a << " b=" << b;
    }
    for (std::uint64_t a : {std::uint64_t{0}, mask, mask >> 1, (mask >> 1) + 1}) {
      for (std::uint64_t b : {std::uint64_t{0}, mask, std::uint64_t{1}}) {
        ASSERT_EQ(adder.add(a, b).sum, adder.add_value(a, b)) << cfg.name();
      }
    }
  }
}

TEST(Differential, CornerOperandsEveryFamily) {
  // Corner patterns that historically break adders: all-ones, alternating
  // bits, single carries at each boundary.
  for (const Case& c : differential_cases()) {
    const adders::AdderPtr model = adders::make_adder(c.spec);
    const netlist::Netlist circuit = c.circuit();
    const int n = model->width();
    const std::uint64_t mask = (1ULL << n) - 1;
    std::vector<std::uint64_t> patterns{
        0,          mask,        0x5555555555555555ULL & mask,
        0xAAAAAAAAAAAAAAAAULL & mask, 1,      mask - 1,
        mask >> 1,  (mask >> 1) + 1};
    for (std::uint64_t a : patterns) {
      for (std::uint64_t b : patterns) {
        ASSERT_EQ(circuit.simulate_add(a, b), model->add(a, b))
            << c.spec << " a=" << a << " b=" << b;
      }
    }
  }
}

}  // namespace
}  // namespace gear
