// Adapter-parameterized adder properties: every way this repository
// evaluates a GeAr addition — the scalar model (strict, relaxed and
// custom layouts), the all-enabled Corrector, the bitsliced 64-lane
// kernel, the BitVec-backed wide adder and the signed two's-complement
// view — must satisfy the same algebra: commutativity, exact-mode
// identity with a + b, closure under the width mask, and
// detect => correction-restores-exactness.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adders/registry.h"
#include "core/adder.h"
#include "core/bitsliced_adder.h"
#include "core/bitvec.h"
#include "core/config.h"
#include "core/correction.h"
#include "core/signed_ops.h"
#include "core/wide_adder.h"
#include "stats/distributions.h"
#include "test_util.h"

namespace gear::core {
namespace {

/// One uniform view over an approximate-adder implementation. All
/// functions take raw N-bit patterns (high operand bits must be ignored
/// by every implementation) and return the adapter's result pattern.
struct Adapter {
  std::string name;
  int n = 0;
  std::uint64_t result_mask = 0;  ///< all bits the adapter may set
  bool exact_mode = false;        ///< guarantees approx == a + b
  std::function<std::uint64_t(std::uint64_t, std::uint64_t)> approx;
  std::function<std::uint64_t(std::uint64_t, std::uint64_t)> exact;
  /// First-pass detection; null when the adapter exposes none.
  std::function<bool(std::uint64_t, std::uint64_t)> detect;
  /// Fully-corrected result; null when no correction path exists (wide).
  std::function<std::uint64_t(std::uint64_t, std::uint64_t)> corrected;
};

std::uint64_t sum_mask(int n) { return (n + 1 < 64) ? (2ULL << n) - 1 : ~0ULL; }

Adapter make_scalar(const std::string& name, const GeArConfig& cfg) {
  auto adder = std::make_shared<GeArAdder>(cfg);
  auto corr = std::make_shared<Corrector>(cfg, Corrector::all_enabled());
  Adapter a;
  a.name = name;
  a.n = cfg.n();
  a.result_mask = sum_mask(cfg.n());
  a.exact_mode = cfg.is_exact();
  a.approx = [adder](std::uint64_t x, std::uint64_t y) {
    return adder->add_value(x, y);
  };
  a.exact = [adder](std::uint64_t x, std::uint64_t y) {
    return adder->exact(x, y);
  };
  a.detect = [adder](std::uint64_t x, std::uint64_t y) {
    return adder->add(x, y).error_detected();
  };
  a.corrected = [corr](std::uint64_t x, std::uint64_t y) {
    return corr->add(x, y).sum;
  };
  return a;
}

Adapter make_corrected(const std::string& name, const GeArConfig& cfg) {
  auto corr = std::make_shared<Corrector>(cfg, Corrector::all_enabled());
  auto adder = std::make_shared<GeArAdder>(cfg);
  Adapter a;
  a.name = name;
  a.n = cfg.n();
  a.result_mask = sum_mask(cfg.n());
  // All-enabled correction restores exactness for every operand pair
  // (pinned elsewhere); as an adapter it is an exact-mode adder.
  a.exact_mode = true;
  a.approx = [corr](std::uint64_t x, std::uint64_t y) {
    return corr->add(x, y).sum;
  };
  a.exact = [adder](std::uint64_t x, std::uint64_t y) {
    return adder->exact(x, y);
  };
  a.detect = [corr](std::uint64_t x, std::uint64_t y) {
    return corr->add(x, y).detect_mask != 0;
  };
  a.corrected = a.approx;
  return a;
}

Adapter make_bitsliced(const std::string& name, const GeArConfig& cfg) {
  auto adder = std::make_shared<BitslicedGearAdder>(cfg);
  auto eval_one = [adder](std::uint64_t x, std::uint64_t y,
                          std::uint64_t correction_mask) {
    BitslicedBatch batch;
    adder->eval(&x, &y, 1, 0, correction_mask, batch);
    return batch;
  };
  auto unpack = [adder](const std::vector<std::uint64_t>& planes) {
    std::uint64_t out = 0;
    adder->unpack_sums(planes, &out, 1);
    return out;
  };
  Adapter a;
  a.name = name;
  a.n = cfg.n();
  a.result_mask = sum_mask(cfg.n());
  a.exact_mode = cfg.is_exact();
  a.approx = [eval_one, unpack](std::uint64_t x, std::uint64_t y) {
    return unpack(eval_one(x, y, 0).approx);
  };
  a.exact = [eval_one, unpack](std::uint64_t x, std::uint64_t y) {
    return unpack(eval_one(x, y, 0).exact);
  };
  a.detect = [eval_one](std::uint64_t x, std::uint64_t y) {
    return (eval_one(x, y, 0).any_detect & 1) != 0;
  };
  a.corrected = [eval_one, unpack](std::uint64_t x, std::uint64_t y) {
    return unpack(eval_one(x, y, ~0ULL).approx);
  };
  return a;
}

Adapter make_wide(const std::string& name, int n, int r, int p) {
  auto layout = WideGeArLayout::make(n, r, p);
  auto adder = std::make_shared<WideGeArAdder>(*layout);
  Adapter a;
  a.name = name;
  a.n = n;
  a.result_mask = sum_mask(n);
  a.approx = [adder, n](std::uint64_t x, std::uint64_t y) {
    return adder->add(BitVec(n, x), BitVec(n, y)).sum.to_u64();
  };
  a.exact = [adder, n](std::uint64_t x, std::uint64_t y) {
    return adder->exact(BitVec(n, x), BitVec(n, y)).to_u64();
  };
  a.detect = [adder, n](std::uint64_t x, std::uint64_t y) {
    return adder->add(BitVec(n, x), BitVec(n, y)).error_detected();
  };
  // No BitVec correction path exists; the property test skips it.
  a.corrected = nullptr;
  return a;
}

Adapter make_signed(const std::string& name, const GeArConfig& cfg) {
  auto adder = std::make_shared<GeArAdder>(cfg);
  auto corr = std::make_shared<Corrector>(cfg, Corrector::all_enabled());
  const int n = cfg.n();
  const std::uint64_t mask = (n < 64) ? (1ULL << n) - 1 : ~0ULL;
  Adapter a;
  a.name = name;
  a.n = n;
  // The signed view decodes the N-bit result; no carry-out bit.
  a.result_mask = mask;
  a.exact_mode = cfg.is_exact();
  a.approx = [adder, n](std::uint64_t x, std::uint64_t y) {
    const SignedAddResult r =
        signed_add(*adder, to_signed(x, n), to_signed(y, n));
    return from_signed(r.value, n);
  };
  a.exact = [mask](std::uint64_t x, std::uint64_t y) {
    return ((x & mask) + (y & mask)) & mask;  // wrap-around semantics
  };
  a.detect = [adder, n](std::uint64_t x, std::uint64_t y) {
    return signed_add(*adder, to_signed(x, n), to_signed(y, n)).error_detected;
  };
  a.corrected = [corr, mask](std::uint64_t x, std::uint64_t y) {
    return corr->add(x & mask, y & mask).sum & mask;
  };
  return a;
}

GeArConfig exact_config(int n) {
  for (const auto& c : GeArConfig::enumerate(n, /*include_exact=*/true)) {
    if (c.is_exact()) return c;
  }
  return GeArConfig::must(n, n / 2, n / 2);  // unreachable
}

std::vector<Adapter> all_adapters() {
  const auto strict16 = GeArConfig::must(16, 4, 4);
  const auto strict32 = GeArConfig::must(32, 8, 8);
  const auto relaxed63 = *GeArConfig::make_relaxed(63, 8, 8);
  const auto custom16 =
      *GeArConfig::make_custom(16, 4, {{4, 2}, {4, 4}, {4, 6}});
  const auto overlap12 =
      *GeArConfig::make_custom(12, 2, {{1, 2}, {1, 3}, {2, 2}, {6, 3}});
  return {
      make_scalar("scalar_strict16", strict16),
      make_scalar("scalar_strict32", strict32),
      make_scalar("scalar_relaxed63", relaxed63),
      make_scalar("scalar_custom16", custom16),
      make_scalar("scalar_overlap12", overlap12),
      make_scalar("scalar_exact16", exact_config(16)),
      make_corrected("corrected_strict16", strict16),
      make_corrected("corrected_custom16", custom16),
      make_bitsliced("bitsliced_strict16", strict16),
      make_bitsliced("bitsliced_relaxed63", relaxed63),
      make_bitsliced("bitsliced_overlap12", overlap12),
      make_wide("wide48", 48, 8, 8),
      make_wide("wide63", 63, 4, 4),
      make_signed("signed16", strict16),
      make_signed("signed_custom16", custom16),
  };
}

/// Random pairs plus the corner patterns every width must survive.
std::vector<stats::OperandPair> operands_for(int n) {
  auto ops = testutil::draw_operands(n, 300, testutil::kSeed);
  const std::uint64_t mask = (n < 64) ? (1ULL << n) - 1 : ~0ULL;
  const std::uint64_t alt = 0x5555555555555555ULL & mask;
  ops.push_back({0, 0});
  ops.push_back({mask, mask});
  ops.push_back({mask, 1});
  ops.push_back({alt, ~alt & mask});
  ops.push_back({alt, alt});
  return ops;
}

class AdapterProperties : public ::testing::TestWithParam<Adapter> {};

TEST_P(AdapterProperties, Commutative) {
  const Adapter& a = GetParam();
  for (const auto& [x, y] : operands_for(a.n)) {
    ASSERT_EQ(a.approx(x, y), a.approx(y, x)) << a.name;
    if (a.detect) {
      ASSERT_EQ(a.detect(x, y), a.detect(y, x)) << a.name;
    }
  }
}

TEST_P(AdapterProperties, ExactModeIsIdentityWithPlus) {
  const Adapter& a = GetParam();
  bool approximated = false;
  for (const auto& [x, y] : operands_for(a.n)) {
    const std::uint64_t want = a.exact(x, y);
    const std::uint64_t got = a.approx(x, y);
    if (a.exact_mode) {
      ASSERT_EQ(got, want) << a.name;
    } else if (got != want) {
      approximated = true;
    }
  }
  // The non-exact adapters must actually approximate somewhere on this
  // operand set — otherwise the property above tests nothing.
  if (!a.exact_mode && a.n <= 16) {
    EXPECT_TRUE(approximated) << a.name;
  }
}

TEST_P(AdapterProperties, ClosedUnderWidthMask) {
  const Adapter& a = GetParam();
  const std::uint64_t op_mask = (a.n < 64) ? (1ULL << a.n) - 1 : ~0ULL;
  for (const auto& [x, y] : operands_for(a.n)) {
    const std::uint64_t sum = a.approx(x, y);
    ASSERT_EQ(sum & ~a.result_mask, 0u) << a.name;
    // High garbage bits of the operands never leak into the result.
    if (a.n < 64) {
      const std::uint64_t junk = ~op_mask;
      ASSERT_EQ(a.approx(x | junk, y), sum) << a.name;
      ASSERT_EQ(a.approx(x, y | junk), sum) << a.name;
    }
  }
}

TEST_P(AdapterProperties, DetectImpliesCorrectionRestoresExactness) {
  const Adapter& a = GetParam();
  if (!a.detect || !a.corrected) {
    GTEST_SKIP() << a.name << " has no detect+correction pair";
  }
  int detected = 0;
  for (const auto& [x, y] : operands_for(a.n)) {
    const std::uint64_t want = a.exact(x, y);
    if (a.detect(x, y)) {
      ++detected;
      ASSERT_EQ(a.corrected(x, y), want) << a.name;
    } else {
      // No detect fired: correction must leave the result untouched, and
      // by detection soundness the untouched result is already exact.
      ASSERT_EQ(a.corrected(x, y), a.approx(x, y)) << a.name;
      ASSERT_EQ(a.approx(x, y), want) << a.name;
    }
  }
  if (!a.exact_mode && a.n <= 16) {
    EXPECT_GT(detected, 0) << a.name << ": no detect ever fired";
  }
}

INSTANTIATE_TEST_SUITE_P(Adapters, AdapterProperties,
                         ::testing::ValuesIn(all_adapters()),
                         [](const ::testing::TestParamInfo<Adapter>& param) {
                           return param.param.name;
                         });

/// add_batch contract, over every registry adder family: element-wise
/// bit-identity with the scalar add() loop at lane-boundary counts, and
/// safety under the documented aliasing (out == a, out == b, and both —
/// the accumulator-chain pattern the batch kernels rely on). Covers both
/// the GeAr adapters' bitsliced override and the ApproxAdder default
/// scalar fallback everything else inherits.
class AddBatchProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(AddBatchProperties, MatchesScalarAddAndToleratesAliasing) {
  const adders::AdderPtr adder = adders::make_adder(GetParam());
  const int n = adder->width();
  stats::Rng rng(913);
  for (const std::size_t count : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65},
                                  std::size_t{300}}) {
    std::vector<std::uint64_t> a(count), b(count), want(count);
    for (std::size_t i = 0; i < count; ++i) {
      a[i] = rng.bits(n);
      b[i] = rng.bits(n);
      want[i] = adder->add(a[i], b[i]);
    }
    std::vector<std::uint64_t> out(count, 0);
    adder->add_batch(a.data(), b.data(), out.data(), count);
    ASSERT_EQ(out, want) << GetParam() << " count=" << count;

    std::vector<std::uint64_t> alias_a = a;
    adder->add_batch(alias_a.data(), b.data(), alias_a.data(), count);
    ASSERT_EQ(alias_a, want) << GetParam() << " out==a, count=" << count;

    std::vector<std::uint64_t> alias_b = b;
    adder->add_batch(a.data(), alias_b.data(), alias_b.data(), count);
    ASSERT_EQ(alias_b, want) << GetParam() << " out==b, count=" << count;

    std::vector<std::uint64_t> both = a;
    for (std::size_t i = 0; i < count; ++i) {
      want[i] = adder->add(both[i], both[i]);
    }
    adder->add_batch(both.data(), both.data(), both.data(), count);
    ASSERT_EQ(both, want) << GetParam() << " out==a==b, count=" << count;
  }
}

TEST_P(AddBatchProperties, BitIdenticalAcrossThreadCounts) {
  // §5a determinism: sharding one add_batch call across a pool of any
  // width must reproduce the single-threaded result bit for bit. Shards
  // are disjoint output ranges, so the kernel may run concurrently with
  // itself — this leg is what the TSan CI job exercises for the zoo
  // families' bitsliced overrides.
  const adders::AdderPtr adder = adders::make_adder(GetParam());
  const int n = adder->width();
  constexpr std::size_t kCount = 333;  // straddles lane blocks per shard
  stats::Rng rng(7321);
  std::vector<std::uint64_t> a(kCount), b(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    a[i] = rng.bits(n);
    b[i] = rng.bits(n);
  }
  std::vector<std::uint64_t> want(kCount, 0);
  adder->add_batch(a.data(), b.data(), want.data(), kCount);
  testutil::for_each_thread_count([&](stats::ParallelExecutor& exec,
                                      int threads) {
    const auto shards = stats::ParallelExecutor::make_shards(kCount, 64);
    std::vector<std::uint64_t> out(kCount, 0);
    exec.for_each(shards.size(), [&](std::size_t s) {
      const auto& shard = shards[s];
      adder->add_batch(a.data() + shard.begin, b.data() + shard.begin,
                       out.data() + shard.begin, shard.size());
    });
    ASSERT_EQ(out, want) << GetParam() << " threads=" << threads;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AddBatchProperties,
    ::testing::Values("rca:16", "gear:16:4:4", "gear:16:4:8",
                      "gear+ecc:16:4:4", "gear:20:5:5", "gear+ecc:12:4:4",
                      "aca1:16:4", "etaii:16:4", "aca2:16:8", "gda:16:4:4",
                      // Zoo families: every bitsliced override at a plain
                      // width, the 63/64 boundary, and a short top block.
                      "ofloca:16:8:4", "ofloca:64:8:3", "laxa:16:8:1",
                      "laxa:32:12:2", "laxa:64:16:3", "axppa:16:12:2",
                      "axppa:64:12:3", "cesa:16:4:4", "cesa:63:8:8",
                      "cesa:64:7:9", "cesa+r:16:4:4", "cesa+r:64:8:8"),
    [](const ::testing::TestParamInfo<std::string>& param) {
      std::string name = param.param;
      for (char& c : name) {
        if (c == ':' || c == '+') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gear::core
