// The approximate-adder zoo's cross-family differential battery.
//
// Every registry family is pinned against an *independently written*
// reference model: full 2^(2N) enumeration at N <= 8, randomized
// differential fuzz at N in {16, 32, 63} (plus 64 for the families that
// support it). The same sweep verifies the error_free_width() contract —
// soundness for every family (the claimed low bits never differ from the
// exact sum), tightness for the four zoo families (some operand pair
// breaks the very next bit) — and the registry metadata round-trip
// (family() / spec() / list_families()). cases_for_width() must name
// every known_families() prefix, so registering a family without a
// reference model here fails the build's test stage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "adders/cesa.h"
#include "adders/gear_adapter.h"
#include "adders/registry.h"
#include "core/config.h"
#include "core/coverage.h"
#include "core/width.h"
#include "stats/rng.h"
#include "test_util.h"

namespace gear::adders {
namespace {

using core::width_mask;

std::uint64_t ref_exact(int n, std::uint64_t a, std::uint64_t b) {
  return (a & width_mask(n)) + (b & width_mask(n));  // wraps at n == 64
}

/// Window sum of bits [lo, lo+len) of both operands, zero carry-in.
std::uint64_t wsum(std::uint64_t a, std::uint64_t b, int lo, int len) {
  return ((a >> lo) & width_mask(len)) + ((b >> lo) & width_mask(len));
}

using RefFn = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

// ---- independent reference models ----------------------------------------

RefFn ref_rca(int n) {
  return [n](std::uint64_t a, std::uint64_t b) { return ref_exact(n, a, b); };
}

RefFn ref_aca1(int n, int l) {
  return [=](std::uint64_t a, std::uint64_t b) {
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      const int lo = std::max(0, i - l + 1);
      sum |= ((wsum(a, b, lo, i - lo + 1) >> (i - lo)) & 1ULL) << i;
    }
    sum |= ((wsum(a, b, n - l, l) >> l) & 1ULL) << n;
    return sum;
  };
}

RefFn ref_aca2(int n, int l) {
  return [=](std::uint64_t a, std::uint64_t b) {
    const int r = l / 2;
    if (l >= n) return ref_exact(n, a, b);
    std::uint64_t sum = wsum(a, b, 0, l) & width_mask(l);
    std::uint64_t carry = wsum(a, b, 0, l) >> l;
    for (int res_lo = l; res_lo < n; res_lo += r) {
      const int lo = res_lo - r;
      const int wlen = std::min(l, n - lo);
      const std::uint64_t w = wsum(a, b, lo, wlen);
      sum |= ((w >> r) & width_mask(wlen - r)) << res_lo;
      carry = w >> wlen;
    }
    return sum | (carry << n);
  };
}

RefFn ref_etai(int n, int acc) {
  return [=](std::uint64_t a, std::uint64_t b) {
    const int inacc = n - acc;
    std::uint64_t sum = wsum(a, b, inacc, acc) << inacc;
    // Highest lower-part position where both bits are 1 saturates itself
    // and everything below; bits above it XOR.
    int sat = -1;
    for (int i = inacc - 1; i >= 0; --i) {
      if (((a >> i) & (b >> i)) & 1ULL) {
        sat = i;
        break;
      }
    }
    for (int i = 0; i < inacc; ++i) {
      sum |= (i <= sat ? 1ULL : ((a ^ b) >> i) & 1ULL) << i;
    }
    return sum;
  };
}

RefFn ref_etaii(int n, int seg) {
  return [=](std::uint64_t a, std::uint64_t b) {
    std::uint64_t sum = 0, carry = 0;
    for (int lo = 0; lo < n; lo += seg) {
      const std::uint64_t cin =
          lo == 0 ? 0 : wsum(a, b, lo - seg, seg) >> seg;
      const std::uint64_t s = wsum(a, b, lo, seg) + cin;
      sum |= (s & width_mask(seg)) << lo;
      carry = s >> seg;
    }
    return sum | (carry << n);
  };
}

RefFn ref_etaiim(int n, int seg, int chained) {
  return [=](std::uint64_t a, std::uint64_t b) {
    const int segments = n / seg;
    std::uint64_t sum = 0, carry = 0;
    for (int s = 0; s < segments; ++s) {
      const int lo = s * seg;
      std::uint64_t cin = 0;
      if (s >= segments - chained) {
        cin = wsum(a, b, 0, lo) >> lo;  // exact carry over all lower bits
      } else if (s > 0) {
        cin = wsum(a, b, lo - seg, seg) >> seg;
      }
      const std::uint64_t x = wsum(a, b, lo, seg) + cin;
      sum |= (x & width_mask(seg)) << lo;
      carry = x >> seg;
    }
    return sum | (carry << n);
  };
}

RefFn ref_gda(int n, int mb, int mc) {
  return [=](std::uint64_t a, std::uint64_t b) {
    std::uint64_t sum = 0, carry = 0;
    for (int lo = 0; lo < n; lo += mb) {
      const int pred = std::min(mc, lo);
      const std::uint64_t cin =
          lo == 0 ? 0 : wsum(a, b, lo - pred, pred) >> pred;
      const std::uint64_t s = wsum(a, b, lo, mb) + cin;
      sum |= (s & width_mask(mb)) << lo;
      carry = s >> mb;
    }
    return sum | (carry << n);
  };
}

RefFn ref_gear_uniform(int n, int r, int p) {
  return [=](std::uint64_t a, std::uint64_t b) {
    const int l0 = r + p;
    if (l0 >= n) return ref_exact(n, a, b);
    std::uint64_t sum = wsum(a, b, 0, l0) & width_mask(l0);
    for (int res_lo = l0; res_lo < n; res_lo += r) {
      const int win_lo = res_lo - p;
      const int hi = std::min(res_lo + r, n);  // exclusive result top
      const std::uint64_t w = wsum(a, b, win_lo, hi - win_lo);
      sum |= ((w >> (res_lo - win_lo)) & width_mask(hi - res_lo)) << res_lo;
      if (hi == n) sum |= ((w >> (n - win_lo)) & 1ULL) << n;
    }
    return sum;
  };
}

RefFn ref_loa(int n, int lower) {
  return [=](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t low = (a | b) & width_mask(lower);
    const std::uint64_t cin = (a >> (lower - 1)) & (b >> (lower - 1)) & 1ULL;
    return ((wsum(a, b, lower, n - lower) + cin) << lower) | low;
  };
}

/// Cell truth tables as 8-bit row masks, row index (cin<<2)|(b<<1)|a —
/// hand-derived here, independent of eval_cell()'s switch.
struct CellTT {
  std::uint8_t sum;
  std::uint8_t cout;
};
constexpr CellTT kExactTT{0x96, 0xE8};

CellTT cell_tt(const std::string& cell) {
  if (cell == "exact") return kExactTT;
  if (cell == "ama1") return {0x17, 0xE8};   // sum = ~cout
  if (cell == "ama2") return {0x66, 0xE8};   // sum = a^b
  if (cell == "ama3") return {0x55, 0xAA};   // sum = ~a, cout = a
  if (cell == "axa2") return {0x99, 0xE8};   // sum = ~(a^b)
  if (cell == "tga1") return {0x96, 0xAA};   // cout = a
  if (cell == "axa3") return {0x9F, 0xE8};   // sum = ~(cin & (a^b))
  if (cell == "tcaa") return {0xEE, 0x88};   // sum = a|b, cout = a&b
  if (cell == "sesa1") return {0x96, 0xF0};  // cout = cin
  ADD_FAILURE() << "unknown cell " << cell;
  return kExactTT;
}

RefFn ref_cells(int n, int low, CellTT lower_tt) {
  return [=](std::uint64_t a, std::uint64_t b) {
    std::uint64_t sum = 0, carry = 0;
    for (int i = 0; i < n; ++i) {
      const CellTT tt = i < low ? lower_tt : kExactTT;
      const int row = static_cast<int>(((carry << 2) | (((b >> i) & 1ULL) << 1) |
                                        ((a >> i) & 1ULL)));
      sum |= static_cast<std::uint64_t>((tt.sum >> row) & 1) << i;
      carry = (tt.cout >> row) & 1;
    }
    if (n < 64) sum |= carry << n;
    return sum;
  };
}

RefFn ref_ofloca(int n, int low, int cbits) {
  return [=](std::uint64_t a, std::uint64_t b) {
    std::uint64_t sum = width_mask(cbits);
    sum |= (a | b) & width_mask(low) & ~width_mask(cbits);
    sum |= wsum(a, b, low, n - low) << low;  // wraps the cout away at n=64
    return sum;
  };
}

RefFn ref_axppa(int n, int low, int levels) {
  return [=](std::uint64_t a, std::uint64_t b) {
    const int blk = 1 << levels;
    // Carry into bit i is the generate of the aligned truncated-prefix
    // window [floor((i-1)/blk)*blk, i) — computed directly from windows,
    // not via the implementation's running recurrence.
    std::uint64_t sum = ref_exact(n, a, b) & ~width_mask(low);
    for (int i = 0; i < low; ++i) {
      std::uint64_t c = 0;
      if (i > 0) {
        const int s = ((i - 1) / blk) * blk;
        c = (wsum(a, b, s, i - s) >> (i - s)) & 1ULL;
      }
      sum |= (((a >> i) ^ (b >> i) ^ c) & 1ULL) << i;
    }
    return sum;
  };
}

RefFn ref_cesa(int n, int blk, int est, bool rectify) {
  return [=](std::uint64_t a, std::uint64_t b) {
    std::uint64_t sum = 0;
    std::uint64_t prev_s1_cout = 0;
    for (int lo = 0; lo < n; lo += blk) {
      const int len = std::min(blk, n - lo);
      const int ws = std::max(0, lo - est);
      const std::uint64_t est_cin =
          lo == 0 ? 0 : wsum(a, b, ws, lo - ws) >> (lo - ws);
      const std::uint64_t s1 = wsum(a, b, lo, len) + est_cin;
      const std::uint64_t s =
          rectify ? wsum(a, b, lo, len) + prev_s1_cout : s1;
      prev_s1_cout = s1 >> len;
      sum |= (s & width_mask(len)) << lo;
      if (lo + len >= n && n < 64) sum |= (s >> len) << n;
    }
    return sum;
  };
}

// ---- case table -----------------------------------------------------------

struct ZooCase {
  std::string spec;
  RefFn ref;
};

std::string prefix_of(const std::string& spec) {
  return spec.substr(0, spec.find(':'));
}

/// Reference-backed specs at operand width n. Covers every registry
/// family for n <= 63 (modulo per-family divisibility, handled per
/// width); only the zoo families reach n == 64.
std::vector<ZooCase> cases_for_width(int n) {
  std::vector<ZooCase> out;
  const auto num = [](int v) { return std::to_string(v); };
  if (n <= 63) {
    // Smallest divisor >= 2 keeps every divisibility-constrained family
    // constructible at all the sweep widths (including 63 = 3^2 * 7).
    const int seg = n % 2 == 0 ? 2 : (n % 3 == 0 ? 3 : (n % 7 == 0 ? 7 : 1));
    out.push_back({"rca:" + num(n), ref_rca(n)});
    out.push_back({"cla:" + num(n) + ":4", ref_rca(n)});
    out.push_back({"aca1:" + num(n) + ":" + num(std::min(4, n)),
                   ref_aca1(n, std::min(4, n))});
    if (seg > 1 && 2 * seg < n) {
      // ACA-II: l even, n % (l/2) == 0, and 2r < n keeps it approximate.
      out.push_back({"aca2:" + num(n) + ":" + num(2 * seg), ref_aca2(n, 2 * seg)});
      out.push_back({"etaii:" + num(n) + ":" + num(seg), ref_etaii(n, seg)});
      if (n >= 4 * seg) {
        // A non-chained segment with an incomplete predictor window must
        // exist (segment 1's window reaches bit 0, so it never errs):
        // chained=1 leaves segments [2, n/seg - 1) genuinely speculative.
        out.push_back({"etaiim:" + num(n) + ":" + num(seg) + ":1",
                       ref_etaiim(n, seg, 1)});
      }
      // GDA: n % mb == 0, mc a multiple of mb, mc < n.
      out.push_back({"gda:" + num(n) + ":" + num(seg) + ":" + num(2 * seg),
                     ref_gda(n, seg, 2 * seg)});
    }
    out.push_back({"etai:" + num(n) + ":" + num(n / 2), ref_etai(n, n / 2)});
    const int r = std::max(2, n / 4), p = std::max(2, n / 4);
    if (r + p <= n) {
      out.push_back({"gear:" + num(n) + ":" + num(r) + ":" + num(p),
                     ref_gear_uniform(n, r, p)});
      out.push_back({"gear+ecc:" + num(n) + ":" + num(r) + ":" + num(p),
                     ref_rca(n)});  // all-enabled correction is exact
    }
    if (r + p + 1 <= n) {
      // A deliberately relaxed geometry (boundaries don't tile N).
      out.push_back({"gear:" + num(n) + ":" + num(r) + ":" + num(p + 1),
                     ref_gear_uniform(n, r, p + 1)});
    }
    out.push_back({"loa:" + num(n) + ":" + num(n / 2), ref_loa(n, n / 2)});
    for (const char* cell : {"ama1", "ama2", "ama3", "axa2", "tga1", "axa3",
                             "tcaa", "sesa1", "exact"}) {
      out.push_back({"cell:" + num(n) + ":" + num(n / 2) + ":" + cell,
                     ref_cells(n, n / 2, cell_tt(cell))});
    }
  }
  // Zoo families (n up to 64).
  const int low = n / 2;
  out.push_back({"ofloca:" + num(n) + ":" + num(low) + ":" + num(low / 2),
                 ref_ofloca(n, low, low / 2)});
  out.push_back({"ofloca:" + num(n) + ":" + num(low) + ":0",
                 ref_ofloca(n, low, 0)});
  out.push_back({"ofloca:" + num(n) + ":" + num(low) + ":" + num(low),
                 ref_ofloca(n, low, low)});
  for (int v : {1, 2, 3}) {
    out.push_back({"laxa:" + num(n) + ":" + num(low) + ":" + num(v),
                   ref_cells(n, low, cell_tt(v == 1   ? "axa3"
                                             : v == 2 ? "tcaa"
                                                      : "sesa1"))});
  }
  out.push_back({"laxa:" + num(n) + ":" + num(n) + ":1",
                 ref_cells(n, n, cell_tt("axa3"))});
  // AxPPA needs low >= 2^levels + 2 (a truncated carry below `low`).
  const int low1 = std::max(low, 4);
  out.push_back(
      {"axppa:" + num(n) + ":" + num(low1) + ":1", ref_axppa(n, low1, 1)});
  if (low >= 6) {
    out.push_back(
        {"axppa:" + num(n) + ":" + num(low) + ":2", ref_axppa(n, low, 2)});
  }
  for (int b : {2, 3}) {
    if (b >= n || 2 * b > n) continue;
    out.push_back({"cesa:" + num(n) + ":" + num(b) + ":" + num(2 * b),
                   ref_cesa(n, b, 2 * b, false)});
    out.push_back({"cesa+r:" + num(n) + ":" + num(b) + ":" + num(2 * b),
                   ref_cesa(n, b, 2 * b, true)});
  }
  // Lookback not a block multiple: the non-GeAr-equivalent regime.
  out.push_back({"cesa:" + num(n) + ":3:4", ref_cesa(n, 3, 4, false)});
  out.push_back({"cesa+r:" + num(n) + ":3:4", ref_cesa(n, 3, 4, true)});
  return out;
}

constexpr const char* kZooPrefixes[] = {"ofloca", "laxa", "axppa", "cesa",
                                        "cesa+r"};

bool is_zoo_family(const std::string& prefix) {
  return std::find(std::begin(kZooPrefixes), std::end(kZooPrefixes), prefix) !=
         std::end(kZooPrefixes);
}

/// Shared per-pair verdict: implementation vs reference, efw soundness,
/// and whether the bit just past the claimed error-free width broke.
struct SweepState {
  bool tight_bit_seen = false;
  bool approximated = false;
};

void check_pair(const ApproxAdder& adder, const RefFn& ref, std::uint64_t a,
                std::uint64_t b, SweepState& st) {
  const int n = adder.width();
  const std::uint64_t got = adder.add(a, b);
  const std::uint64_t want = ref(a, b);
  ASSERT_EQ(got, want) << adder.name() << " a=" << a << " b=" << b;
  const std::uint64_t exact = adder.exact(a, b);
  const int efw = adder.error_free_width();
  const std::uint64_t diff = got ^ exact;
  ASSERT_EQ(diff & width_mask(std::min(efw, 64)), 0u)
      << adder.name() << " claims error_free_width=" << efw << " but a=" << a
      << " b=" << b << " differs from exact in the claimed bits";
  if (adder.is_exact()) {
    ASSERT_EQ(diff, 0u) << adder.name() << " claims exactness";
  }
  if (diff != 0) st.approximated = true;
  if (efw <= n && ((diff >> efw) & 1ULL) != 0) st.tight_bit_seen = true;
}

class ZooOracle : public ::testing::TestWithParam<int> {};

TEST_P(ZooOracle, ExhaustiveAgainstReferenceModels) {
  const int n = GetParam();
  const std::uint64_t lim = 1ULL << n;
  for (const auto& zc : cases_for_width(n)) {
    SCOPED_TRACE(zc.spec);
    const AdderPtr adder = make_adder(zc.spec);
    ASSERT_EQ(adder->width(), n);
    EXPECT_EQ(adder->family(), prefix_of(zc.spec));
    SweepState st;
    for (std::uint64_t a = 0; a < lim; ++a) {
      for (std::uint64_t b = 0; b < lim; ++b) {
        check_pair(*adder, zc.ref, a, b, st);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    // A family claiming errors past bit efw <= n must actually produce
    // some (families that degenerate to exactness report efw == n+1).
    if (!adder->is_exact() && adder->error_free_width() <= adder->width()) {
      EXPECT_TRUE(st.approximated)
          << zc.spec << ": claims approximation but never erred";
    }
    // Tightness is part of the zoo families' contract: the bit just past
    // error_free_width() must actually break on some pair.
    if (is_zoo_family(prefix_of(zc.spec)) &&
        adder->error_free_width() <= adder->width()) {
      EXPECT_TRUE(st.tight_bit_seen)
          << zc.spec << ": error_free_width=" << adder->error_free_width()
          << " is not tight";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, ZooOracle, ::testing::Values(4, 6, 8),
                         ::testing::PrintToStringParamName());

class ZooFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ZooFuzz, DifferentialAgainstReferenceModels) {
  const int n = GetParam();
  stats::Rng rng(testutil::kSeed + static_cast<std::uint64_t>(n));
  for (const auto& zc : cases_for_width(n)) {
    SCOPED_TRACE(zc.spec);
    const AdderPtr adder = make_adder(zc.spec);
    SweepState st;
    for (int i = 0; i < 2000; ++i) {
      check_pair(*adder, zc.ref, rng.bits(n), rng.bits(n), st);
      if (::testing::Test::HasFatalFailure()) return;
    }
    // Corner patterns: all ones (maximum carry pressure), alternating.
    const std::uint64_t m = width_mask(n);
    const std::uint64_t alt = 0x5555555555555555ULL & m;
    const std::pair<std::uint64_t, std::uint64_t> corners[] = {
        {m, m}, {m, 1}, {alt, ~alt & m}, {alt, alt}, {0, 0}};
    for (const auto& [a, b] : corners) {
      check_pair(*adder, zc.ref, a, b, st);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LargeWidths, ZooFuzz, ::testing::Values(16, 32, 63, 64),
                         ::testing::PrintToStringParamName());

TEST(ZooFamilies, EveryKnownFamilyHasAReferenceModel) {
  // Drift guard: registering a family in list_families() without adding
  // a reference-backed case above fails here, not silently.
  std::set<std::string> covered;
  for (const auto& zc : cases_for_width(8)) covered.insert(prefix_of(zc.spec));
  std::set<std::string> known;
  for (const auto& fam : known_families()) known.insert(fam);
  EXPECT_EQ(covered, known);
}

TEST(ZooFamilies, ListAndKnownFamiliesAgree) {
  const auto list = list_families();
  const auto known = known_families();
  ASSERT_EQ(list.size(), known.size());
  std::set<std::string> unique;
  for (std::size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(list[i].prefix, known[i]);
    EXPECT_FALSE(list[i].description.empty()) << list[i].prefix;
    unique.insert(list[i].prefix);
  }
  EXPECT_EQ(unique.size(), list.size()) << "duplicate family prefix";
}

TEST(ZooRegistry, CanonicalSpecsRoundTrip) {
  for (const auto& fam : list_families()) {
    SCOPED_TRACE(fam.prefix);
    const AdderPtr adder = make_adder(fam.canonical_spec);
    EXPECT_EQ(adder->family(), fam.prefix);
    EXPECT_EQ(adder->spec(), fam.canonical_spec);
    // Parse -> print -> parse lands on a functionally identical adder.
    const AdderPtr again = make_adder(adder->spec());
    EXPECT_EQ(again->name(), adder->name());
    EXPECT_EQ(again->width(), adder->width());
    EXPECT_EQ(again->error_free_width(), adder->error_free_width());
    EXPECT_EQ(again->max_carry_chain(), adder->max_carry_chain());
    for (const auto& [a, b] :
         testutil::draw_operands(adder->width(), 64, testutil::kSeed)) {
      ASSERT_EQ(again->add(a, b), adder->add(a, b));
    }
  }
}

TEST(ZooRegistry, EveryCaseSpecRoundTrips) {
  for (const int n : {8, 16, 63, 64}) {
    for (const auto& zc : cases_for_width(n)) {
      const AdderPtr adder = make_adder(zc.spec);
      EXPECT_EQ(adder->spec(), zc.spec) << zc.spec;
    }
  }
}

void expect_spec_error(const std::string& spec, const std::string& needle) {
  try {
    make_adder(spec);
    ADD_FAILURE() << spec << ": expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << spec << ": message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(ZooRegistry, MalformedSpecsNameTheViolatedConstraint) {
  expect_spec_error("ofloca:65:8:4", "operand width");
  expect_spec_error("ofloca:8:9:2", "lower part");
  expect_spec_error("ofloca:8:4:5", "constant-one width");
  expect_spec_error("ofloca:8:4", "wrong number of arguments");
  expect_spec_error("laxa:8:0:1", "lower part");
  expect_spec_error("laxa:8:4:7", "cell variant");
  expect_spec_error("laxa:1:1:1", "operand width");
  expect_spec_error("axppa:8:6:7", "levels");
  expect_spec_error("axppa:8:3:2", "truncated carry exists below");
  expect_spec_error("axppa:8", "wrong number of arguments");
  expect_spec_error("cesa:8:8:2", "block width");
  expect_spec_error("cesa:8:2:0", "estimate lookback");
  expect_spec_error("cesa+r:8:0:2", "cesa+r: block width");
  expect_spec_error("cesa+r:8:2:9", "estimate lookback");
  expect_spec_error("cesa:8:2:2:9", "wrong number of arguments");
  expect_spec_error("ofloca:8:4x:2", "bad integer");
}

TEST(ZooEquivalence, PlainCesaMatchesRelaxedGearWhenAligned) {
  // CESA(n, b, e) with e % b == 0 is block-for-block a relaxed
  // GeAr(R=b, P=e); gear_equivalent() reports exactly that case and this
  // test holds it to it — exhaustively at n=8, by fuzz above.
  int verified = 0;
  const std::pair<int, int> geometries[] = {{2, 2}, {2, 4}, {3, 3}, {4, 4}};
  for (const auto& [b, e] : geometries) {
    const CesaAdder cesa(8, b, e, /*rectify=*/false);
    const auto cfg = cesa.gear_equivalent();
    ASSERT_TRUE(cfg.has_value()) << cesa.name();
    const GearAdapter gear(*cfg);
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t o = 0; o < 256; ++o) {
        ASSERT_EQ(cesa.add(a, o), gear.add(a, o))
            << cesa.name() << " vs " << gear.name() << " a=" << a << " b=" << o;
      }
    }
    ++verified;
  }
  EXPECT_EQ(verified, 4);
  // Fuzz the claim at larger widths too.
  stats::Rng rng(testutil::kSeed);
  for (const int n : {16, 32, 63}) {
    const CesaAdder cesa(n, 4, 8, /*rectify=*/false);
    const auto cfg = cesa.gear_equivalent();
    ASSERT_TRUE(cfg.has_value());
    const GearAdapter gear(*cfg);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t a = rng.bits(n), o = rng.bits(n);
      ASSERT_EQ(cesa.add(a, o), gear.add(a, o)) << n;
    }
  }
  // Out of the aligned regime no equivalence is claimed.
  EXPECT_FALSE(CesaAdder(8, 3, 4, false).gear_equivalent().has_value());
  EXPECT_FALSE(CesaAdder(8, 2, 2, true).gear_equivalent().has_value());
  EXPECT_FALSE(CesaAdder(64, 4, 8, false).gear_equivalent().has_value());
}

TEST(ZooEquivalence, CesaCoverageIsAStrictSupersetOfGda) {
  // as_cesa reaches every GDA point plus the relaxed ones GDA cannot.
  int extra = 0;
  for (int r = 1; r <= 8; ++r) {
    for (int p = 1; r + p <= 16; ++p) {
      const auto cfg = core::GeArConfig::make_relaxed(16, r, p);
      if (!cfg) continue;
      const bool gda = core::family_supports(core::AdderFamily::kGda, *cfg);
      const bool cesa = core::family_supports(core::AdderFamily::kCesa, *cfg);
      EXPECT_LE(gda, cesa) << cfg->name();
      if (cesa && !gda) ++extra;
      if (cesa) {
        const auto via = core::as_cesa(16, r, p);
        ASSERT_TRUE(via.has_value()) << cfg->name();
        EXPECT_EQ(*via, *cfg);
      }
    }
  }
  EXPECT_GT(extra, 0) << "CESA should reach relaxed points GDA cannot";
}

}  // namespace
}  // namespace gear::adders
