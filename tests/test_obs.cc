// Observability-layer tests: deterministic-channel bit-identity across
// thread counts (registry merge and the instrumented engines), JSON
// round-trips, wall-clock-channel exclusion from equality, and the
// GEAR_OBS off switches (compile-time and runtime).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/dse_cache.h"
#include "analysis/selector.h"
#include "analysis/vulnerability.h"
#include "apps/stream_engine.h"
#include "core/config.h"
#include "netlist/circuits.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/distributions.h"
#include "stats/parallel.h"
#include "test_util.h"

namespace gear {
namespace {

using testutil::for_each_thread_count;
using testutil::kSeed;
using testutil::kShard;

/// Forces recording on for the test body and restores the environment
/// default afterwards, so suites pass under GEAR_OBS=off too.
class ObsEnabledScope {
 public:
  ObsEnabledScope() { obs::set_runtime_enabled_for_testing(true); }
  ~ObsEnabledScope() { obs::set_runtime_enabled_for_testing(std::nullopt); }
};

/// A deterministic per-shard workload: every quantity recorded is a pure
/// function of the shard index.
void record_shard(obs::MetricsRegistry& reg, std::size_t shard) {
  reg.add("work/items", 10 + shard);
  reg.add("work/shards", 1);
  reg.set_gauge("work/last_ratio", 1.0 / static_cast<double>(shard + 1));
  reg.set_label("work/phase", shard % 2 ? "odd" : "even");
  const obs::HistogramSpec spec{0.0, 1.0, 8};
  for (std::size_t i = 0; i < 5; ++i) {
    reg.record("work/ratio", spec,
               static_cast<double>(shard * 5 + i) / 100.0);
  }
  // Wall-clock channel: deliberately shard-dependent noise.
  reg.add_runtime("work/steals", shard * 3 + 1);
  reg.record_timing_ns("work/span", static_cast<double>(shard) * 7.5);
}

TEST(Obs, ShardMergeBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kShards = 23;

  // Canonical reference: sequential shard loop, merge in index order.
  obs::MetricsRegistry ref;
  for (std::size_t s = 0; s < kShards; ++s) {
    obs::MetricsRegistry shard;
    record_shard(shard, s);
    ref.merge(shard);
  }

  for_each_thread_count([&](stats::ParallelExecutor& exec, int threads) {
    std::vector<obs::MetricsRegistry> shards(kShards);
    exec.for_each(kShards,
                  [&](std::size_t s) { record_shard(shards[s], s); });
    obs::MetricsRegistry total;
    for (const auto& shard : shards) total.merge(shard);

    EXPECT_TRUE(total.deterministic_equal(ref)) << "threads=" << threads;
    // Spot-check the pooled values themselves.
    EXPECT_EQ(total.counter("work/shards"), kShards);
    EXPECT_EQ(total.counter("work/items"),
              10 * kShards + kShards * (kShards - 1) / 2);
    EXPECT_EQ(total.label("work/phase"), "even");  // last shard is 22
    const auto hist = total.histogram("work/ratio");
    ASSERT_TRUE(hist);
    EXPECT_EQ(hist->samples(), 5 * kShards);
    // The wall-clock channel pooled too (it is just not part of equality).
    EXPECT_EQ(total.runtime("work/steals"),
              3 * kShards * (kShards - 1) / 2 + kShards);
    const auto timing = total.timing("work/span");
    ASSERT_TRUE(timing);
    EXPECT_EQ(timing->count, kShards);
  });
}

TEST(Obs, DeterministicEqualIgnoresWallClockChannel) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.add("ops", 7);
  b.add("ops", 7);
  a.set_gauge("ratio", 0.25);
  b.set_gauge("ratio", 0.25);

  // Divergent runtime counters and timings: still deterministically equal.
  a.add_runtime("cache/hits", 100);
  b.add_runtime("cache/hits", 3);
  b.add_runtime("cache/misses", 9);
  a.record_timing_ns("span", 123.0);
  EXPECT_TRUE(a.deterministic_equal(b));
  EXPECT_TRUE(b.deterministic_equal(a));

  // Any deterministic divergence breaks equality.
  b.add("ops", 1);
  EXPECT_FALSE(a.deterministic_equal(b));
  b.add("ops", 0);  // creating a key alone does not restore equality
  EXPECT_FALSE(a.deterministic_equal(b));

  obs::MetricsRegistry c = a;
  EXPECT_TRUE(c.deterministic_equal(a));
  c.set_label("mode", "fast");
  EXPECT_FALSE(c.deterministic_equal(a));
}

TEST(Obs, JsonRoundTripIsBitExact) {
  obs::MetricsRegistry reg;
  reg.add("ops", 41);
  reg.add("empty_after_clear", 0);
  reg.set_gauge("pi_ish", 3.141592653589793);
  reg.set_gauge("tiny", 4.9406564584124654e-324);  // denormal min
  reg.set_label("dispatch", "avx2");
  reg.set_label("needs \"escaping\"\n", "tab\there");
  const obs::HistogramSpec spec{-2.0, 2.0, 4};
  for (double v : {-3.0, -1.5, 0.0, 0.1, 1.99, 2.0, 7.0}) {
    reg.record("err", spec, v);
  }
  reg.add_runtime("hits", 12);
  reg.record_timing_ns("span", 1234.5);
  reg.record_timing_ns("span", 2.25);

  const std::string json = reg.to_json();
  const auto parsed = obs::MetricsRegistry::from_json(json);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->deterministic_equal(reg));
  // Bit-exact both channels: the re-serialization is byte-identical.
  EXPECT_EQ(parsed->to_json(), json);

  EXPECT_EQ(parsed->counter("ops"), 41u);
  EXPECT_EQ(parsed->gauge("tiny"), 4.9406564584124654e-324);
  EXPECT_EQ(parsed->label("needs \"escaping\"\n"), "tab\there");
  const auto hist = parsed->histogram("err");
  ASSERT_TRUE(hist);
  EXPECT_EQ(hist->underflow, 1u);
  EXPECT_EQ(hist->overflow, 2u);
  EXPECT_EQ(hist->samples(), 7u);
  EXPECT_EQ(parsed->runtime("hits"), 12u);
  const auto timing = parsed->timing("span");
  ASSERT_TRUE(timing);
  EXPECT_EQ(timing->count, 2u);
  EXPECT_EQ(timing->min_ns, 2.25);

  EXPECT_FALSE(obs::MetricsRegistry::from_json("not json"));
  EXPECT_FALSE(obs::MetricsRegistry::from_json(json + "trailing"));
}

TEST(Obs, HistogramSpecIsPartOfTheIdentity) {
  obs::MetricsRegistry reg;
  reg.record("h", {0.0, 1.0, 4}, 0.5);
  EXPECT_THROW(reg.record("h", {0.0, 2.0, 4}, 0.5), std::invalid_argument);
  EXPECT_THROW(reg.record("bad", {1.0, 0.0, 4}, 0.5), std::invalid_argument);
  EXPECT_THROW(reg.record("bad", {0.0, 1.0, 0}, 0.5), std::invalid_argument);

  obs::MetricsRegistry other;
  other.record("h", {0.0, 2.0, 4}, 0.5);
  EXPECT_THROW(reg.merge(other), std::invalid_argument);
}

TEST(Obs, CounterHandlesSurviveClear) {
  obs::MetricsRegistry reg;
  obs::Counter& cell = reg.counter_handle("persistent");
  cell.add(5);
  EXPECT_EQ(reg.counter("persistent"), 5u);
  reg.clear();
  EXPECT_TRUE(reg.empty());
  // The cell is still the live storage for the (zeroed) counter.
  cell.add(2);
  EXPECT_EQ(reg.counter("persistent"), 2u);
  EXPECT_EQ(&cell, &reg.counter_handle("persistent"));
}

TEST(Obs, RuntimeSwitchGatesTheMacros) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "instrumentation compiled out";
  }
  obs::MetricsRegistry& g = obs::global();
  g.clear();
  obs::set_runtime_enabled_for_testing(false);
  EXPECT_FALSE(obs::enabled());
  GEAR_OBS_COUNT("test_obs/gated", 3);
  GEAR_OBS_RUNTIME_COUNT("test_obs/gated_rt", 3);
  GEAR_OBS_LABEL("test_obs/gated_label", "x");
  EXPECT_EQ(g.counter("test_obs/gated"), 0u);
  EXPECT_EQ(g.runtime("test_obs/gated_rt"), 0u);
  EXPECT_FALSE(g.label("test_obs/gated_label"));

  obs::set_runtime_enabled_for_testing(true);
  EXPECT_TRUE(obs::enabled());
  GEAR_OBS_COUNT("test_obs/gated", 3);
  GEAR_OBS_RUNTIME_COUNT("test_obs/gated_rt", 3);
  GEAR_OBS_LABEL("test_obs/gated_label", "x");
  EXPECT_EQ(g.counter("test_obs/gated"), 3u);
  EXPECT_EQ(g.runtime("test_obs/gated_rt"), 3u);
  EXPECT_EQ(g.label("test_obs/gated_label"), "x");
  obs::set_runtime_enabled_for_testing(std::nullopt);
  g.clear();
}

TEST(Obs, CompiledOutMacrosRecordNothing) {
  if (obs::kCompiledIn) {
    GTEST_SKIP() << "only meaningful in a GEAR_OBS=OFF build";
  }
  // In the OFF build the macros expand to ((void)0): no registry symbols
  // are referenced from instrumented call sites at all, so the global
  // registry must stay empty no matter what runs.
  obs::MetricsRegistry& g = obs::global();
  g.clear();
  GEAR_OBS_COUNT("test_obs/off", 1);
  GEAR_OBS_RUNTIME_COUNT("test_obs/off_rt", 1);
  GEAR_OBS_LABEL("test_obs/off_label", "x");
  GEAR_OBS_SPAN("test_obs/off_span", "test");
  EXPECT_TRUE(g.empty());
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, ScopedTimerLandsInWallClockChannelOnly) {
  ObsEnabledScope on;
  obs::MetricsRegistry reg;
  {
    obs::ScopedTimer t(reg, "scoped");
    obs::ScopedTimer t2(reg, "scoped");
  }
  if (!obs::kCompiledIn) {
    // ScopedTimer honors the same master gate as the macros: in a
    // GEAR_OBS=OFF build it records nothing even with runtime forced on.
    EXPECT_TRUE(reg.empty());
    return;
  }
  const auto timing = reg.timing("scoped");
  ASSERT_TRUE(timing);
  EXPECT_EQ(timing->count, 2u);
  EXPECT_GE(timing->max_ns, timing->min_ns);
  EXPECT_TRUE(reg.deterministic_equal(obs::MetricsRegistry{}));
  EXPECT_FALSE(reg.empty());
}

TEST(Obs, TraceRecorderExportsChromeFormat) {
  ObsEnabledScope on;
  obs::TraceRecorder rec(4);
  rec.record({"alpha", "cat", 1000, 2500, 0});
  rec.record({"needs \"quote\"", "cat", 4000, 1, 1});
  const std::string json = rec.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // ns -> us with three decimals: 1000 ns = 1.000 us, dur 2.500 us.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos);

  // Capacity bound: drops are counted, never reallocated into the hot path.
  for (int i = 0; i < 10; ++i) rec.record({"spill", "cat", 0, 1, 0});
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped(), 8u);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

// --- acceptance pin: engine counters across thread counts -----------------
//
// The ISSUE.md criterion: metrics counters emitted by StreamAdderEngine,
// run_fault_campaign and rank_configs are bit-identical across executor
// thread counts {1, 2, 8}. Each workload runs once per thread count
// against a cleared global registry; the deterministic channels of the
// snapshots must match bit-for-bit (the wall-clock channel is free to
// differ and does).

obs::MetricsRegistry run_instrumented_workloads(stats::ParallelExecutor& exec) {
  obs::global().clear();

  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const apps::StreamAdderEngine engine(cfg, core::Corrector::all_enabled());
  engine.run(
      [](stats::Rng rng) {
        return std::make_unique<stats::UniformSource>(16, std::move(rng));
      },
      3 * kShard + 17, kSeed, exec, kShard);

  analysis::FaultCampaignOptions opt;
  opt.samples = 2048;
  opt.shard_size = 512;
  analysis::run_fault_campaign(
      netlist::build_gear(core::GeArConfig::must(12, 4, 4)), opt, exec);

  analysis::SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 0.2;
  analysis::DseCache cache;
  analysis::rank_configs(req, analysis::SweepContext{&exec, &cache});

  obs::MetricsRegistry snapshot = obs::global();
  obs::global().clear();
  return snapshot;
}

TEST(Obs, EngineCountersBitIdenticalAcrossThreadCounts) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "instrumentation compiled out";
  }
  ObsEnabledScope on;
  std::optional<obs::MetricsRegistry> ref;
  for_each_thread_count([&](stats::ParallelExecutor& exec, int threads) {
    const obs::MetricsRegistry snap = run_instrumented_workloads(exec);

    // The engines really did record into every instrumented subsystem.
    EXPECT_EQ(snap.counter("stream/runs"), 1u);
    EXPECT_EQ(snap.counter("stream/operations"), 3 * kShard + 17);
    EXPECT_EQ(snap.counter("campaign/injections"), 2048u);
    EXPECT_EQ(snap.counter("selector/rank_calls"), 1u);
    EXPECT_GT(snap.counter("parallel/for_each_calls"), 0u);
    EXPECT_GT(snap.counter("bitsliced/lanes_packed"), 0u);
    ASSERT_TRUE(snap.label("bitsliced/dispatch"));

    if (!ref) {
      ref = snap;
      return;
    }
    EXPECT_TRUE(snap.deterministic_equal(*ref)) << "threads=" << threads;
  });
}

TEST(Obs, RuntimeHistogramRecordsAndReads) {
  obs::MetricsRegistry reg;
  const obs::HistogramSpec spec{0.0, 100.0, 10};
  for (int i = 0; i < 100; ++i) {
    reg.record_runtime("serve/latency", spec, static_cast<double>(i));
  }
  reg.record_runtime("serve/latency", spec, -5.0);    // underflow
  reg.record_runtime("serve/latency", spec, 1000.0);  // overflow
  const auto hist = reg.runtime_histogram("serve/latency");
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->samples(), 102u);
  EXPECT_EQ(hist->underflow, 1u);
  EXPECT_EQ(hist->overflow, 1u);
  EXPECT_FALSE(reg.histogram("serve/latency").has_value());  // wrong channel
  // Same-name/different-spec is a caught misuse, as on the deterministic
  // channel.
  EXPECT_THROW(reg.record_runtime("serve/latency", {0.0, 1.0, 4}, 0.5),
               std::invalid_argument);
}

TEST(Obs, HistogramQuantilesInterpolate) {
  obs::FixedHistogram hist;
  hist.spec = {0.0, 100.0, 10};
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);  // empty => lo
  for (int i = 0; i < 100; ++i) hist.record(static_cast<double>(i));
  // Uniform mass: quantiles track the value axis within one bucket width.
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(hist.quantile(0.99), 99.0, 10.0);
  EXPECT_GE(hist.quantile(0.99), hist.quantile(0.5));
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.0);
  // Overflow mass reads as "at least hi".
  for (int i = 0; i < 1000; ++i) hist.record(500.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.99), 100.0);
}

TEST(Obs, RuntimeHistogramsRoundTripJsonAndMerge) {
  obs::MetricsRegistry a;
  const obs::HistogramSpec spec{0.0, 10.0, 5};
  a.record_runtime("lat/a", spec, 1.0);
  a.record_runtime("lat/a", spec, 9.0);
  a.record("det", spec, 2.0);  // deterministic channel alongside

  const auto parsed = obs::MetricsRegistry::from_json(a.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_json(), a.to_json());
  const auto round = parsed->runtime_histogram("lat/a");
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, *a.runtime_histogram("lat/a"));

  obs::MetricsRegistry b;
  b.record_runtime("lat/a", spec, 5.0);
  b.merge(a);
  EXPECT_EQ(b.runtime_histogram("lat/a")->samples(), 3u);
}

TEST(Obs, RuntimeHistogramsExcludedFromDeterministicEquality) {
  obs::MetricsRegistry a, b;
  a.add("ops", 3);
  b.add("ops", 3);
  a.record_runtime("lat", {0.0, 1.0, 4}, 0.25);  // only a has wall-clock data
  EXPECT_TRUE(a.deterministic_equal(b));
  b.record("h", {0.0, 1.0, 4}, 0.5);  // deterministic histogram does count
  EXPECT_FALSE(a.deterministic_equal(b));
}

}  // namespace
}  // namespace gear
