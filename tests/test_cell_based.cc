// Cell-level approximate adder tests (AMA/AXA/TGA families).
#include <gtest/gtest.h>

#include "adders/cell_based.h"
#include "adders/registry.h"
#include "stats/rng.h"

namespace gear::adders {
namespace {

TEST(Cells, ExactCellHasNoErrors) {
  EXPECT_EQ(cell_error_entries(FaCell::kExact), 0);
}

TEST(Cells, PublishedErrorCounts) {
  // AMA1: sum = ~cout is wrong on the two unanimous rows (000, 111).
  EXPECT_EQ(cell_error_entries(FaCell::kAma1), 2);
  // AMA2: sum drops cin, wrong whenever cin = 1 -> 4 sum errors.
  EXPECT_EQ(cell_error_entries(FaCell::kAma2), 4);
  // AXA2: XNOR sum is correct exactly when cin = 1 -> 4 sum errors.
  EXPECT_EQ(cell_error_entries(FaCell::kAxa2), 4);
  // TGA1: cout = a wrong on 2 rows.
  EXPECT_EQ(cell_error_entries(FaCell::kTga1), 2);
  // AMA3 is the most aggressive of the set.
  EXPECT_GE(cell_error_entries(FaCell::kAma3),
            cell_error_entries(FaCell::kAma1));
}

TEST(Cells, TruthTableSpotChecks) {
  // Exact FA rows.
  EXPECT_EQ(eval_cell(FaCell::kExact, 1, 1, 1).sum, true);
  EXPECT_EQ(eval_cell(FaCell::kExact, 1, 1, 1).cout, true);
  EXPECT_EQ(eval_cell(FaCell::kExact, 1, 0, 0).sum, true);
  // AMA1 on (0,0,0): cout 0, sum forced to ~cout = 1 (the known error).
  EXPECT_EQ(eval_cell(FaCell::kAma1, 0, 0, 0).sum, true);
  EXPECT_EQ(eval_cell(FaCell::kAma1, 0, 0, 0).cout, false);
  // TGA1 carries its 'a' input out.
  EXPECT_EQ(eval_cell(FaCell::kTga1, 1, 0, 0).cout, true);
  EXPECT_EQ(eval_cell(FaCell::kTga1, 0, 1, 1).cout, false);
}

TEST(CellBasedAdder, ZeroApproxBitsIsExact) {
  const CellBasedAdder adder(12, 0, FaCell::kAma3);
  stats::Rng rng(61);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    EXPECT_EQ(adder.add(a, b), a + b);
  }
}

TEST(CellBasedAdder, ExactCellEverywhereIsExact) {
  const CellBasedAdder adder(12, 12, FaCell::kExact);
  stats::Rng rng(62);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    EXPECT_EQ(adder.add(a, b), a + b);
  }
}

TEST(CellBasedAdder, ErrorsConfinedNearTheLowPart) {
  // Approximate cells corrupt the low bits and at most one carry into
  // the exact part; upper bits beyond the first exact position can only
  // differ through that single carry, bounding |error| < 2^(m+1).
  const int m = 6;
  for (FaCell cell : {FaCell::kAma1, FaCell::kAma2, FaCell::kAxa2, FaCell::kTga1}) {
    const CellBasedAdder adder(16, m, cell);
    stats::Rng rng(63);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t a = rng.bits(16);
      const std::uint64_t b = rng.bits(16);
      const auto approx = static_cast<std::int64_t>(adder.add(a, b));
      const auto exact = static_cast<std::int64_t>(a + b);
      EXPECT_LT(std::abs(approx - exact), 1LL << (m + 1))
          << cell_name(cell) << " a=" << a << " b=" << b;
    }
  }
}

TEST(CellBasedAdder, MoreApproxBitsMoreError) {
  auto error_rate = [](int m) {
    const CellBasedAdder adder(16, m, FaCell::kAma2);
    stats::Rng rng(64);
    int errors = 0;
    const int trials = 30000;
    for (int i = 0; i < trials; ++i) {
      const std::uint64_t a = rng.bits(16);
      const std::uint64_t b = rng.bits(16);
      if (adder.add(a, b) != a + b) ++errors;
    }
    return static_cast<double>(errors) / trials;
  };
  EXPECT_LT(error_rate(2), error_rate(6));
  EXPECT_LT(error_rate(6), error_rate(12));
}

TEST(CellBasedAdder, RegistrySpecs) {
  for (const char* spec : {"cell:16:8:ama1", "cell:16:8:ama2", "cell:16:8:ama3",
                           "cell:16:8:axa2", "cell:16:8:tga1", "cell:16:0:exact"}) {
    const AdderPtr adder = make_adder(spec);
    EXPECT_EQ(adder->width(), 16) << spec;
    EXPECT_EQ(adder->add(0, 0) & 0xFFFF0000u, 0u) << spec;
  }
  EXPECT_THROW(make_adder("cell:16:8:zzz"), std::invalid_argument);
  EXPECT_THROW(make_adder("cell:16:8"), std::invalid_argument);
}

TEST(CellBasedAdder, NameFormat) {
  EXPECT_EQ(CellBasedAdder(16, 8, FaCell::kAma1).name(), "AMA1(low=8)");
}

}  // namespace
}  // namespace gear::adders
