// Error-probability model tests: the paper's Table III values, agreement
// between all estimators (first-order, inclusion-exclusion DP, subset
// enumeration, exact DP), exhaustive and Monte-Carlo referees.
#include <gtest/gtest.h>

#include <cmath>

#include "core/config.h"
#include "core/error_model.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

TEST(ErrorModel, PaperTableIIIValues) {
  struct Row {
    int n, r, p;
    double percent;
  };
  // (N,R,P) -> paper's "Probability of Error" column.
  const Row rows[] = {
      {12, 4, 4, 2.9297},
      {16, 4, 8, 0.1831},
      {32, 8, 8, 0.3891},
      {48, 8, 16, 0.0023},
  };
  for (const Row& row : rows) {
    const GeArConfig cfg = GeArConfig::must(row.n, row.r, row.p);
    EXPECT_NEAR(paper_error_probability(cfg) * 100.0, row.percent, 5e-4)
        << cfg.name();
  }
}

TEST(ErrorModel, Fig3ConfigClosedForm) {
  // (12,4,4): hand-derived 15/512.
  const GeArConfig cfg = GeArConfig::must(12, 4, 4);
  EXPECT_DOUBLE_EQ(paper_error_probability(cfg), 15.0 / 512.0);
}

TEST(ErrorModel, DpMatchesSubsetEnumeration) {
  for (int n : {12, 16, 20}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      if (cfg.k() - 1 > 16) continue;
      const double dp = paper_error_probability(cfg);
      const double subsets = paper_error_probability_subsets(cfg);
      EXPECT_NEAR(dp, subsets, 1e-12) << cfg.name();
    }
  }
}

TEST(ErrorModel, ExactMatchesExhaustiveSmallN) {
  for (int n : {8, 10}) {
    for (const auto& cfg : GeArConfig::enumerate_r(n, 2)) {
      EXPECT_NEAR(exact_error_probability(cfg), exhaustive_error_probability(cfg),
                  1e-12)
          << cfg.name();
    }
    for (const auto& cfg : GeArConfig::enumerate_r(n, 1)) {
      EXPECT_NEAR(exact_error_probability(cfg), exhaustive_error_probability(cfg),
                  1e-12)
          << cfg.name();
    }
  }
}

TEST(ErrorModel, ExactMatchesExhaustiveRelaxed) {
  for (int r : {2, 3}) {
    for (const auto& cfg : GeArConfig::enumerate_relaxed_r(9, r)) {
      EXPECT_NEAR(exact_error_probability(cfg), exhaustive_error_probability(cfg),
                  1e-12)
          << cfg.name();
    }
  }
}

TEST(ErrorModel, PaperModelIsExactOnExhaustiveSmallN) {
  // The paper's event set truncates carry origination to the R bits below
  // each prediction window, but a deeper-originating carry always implies
  // an error event at a lower sub-adder (its prediction window lies
  // inside the propagate chain), so the union — and therefore the full
  // inclusion-exclusion probability — is exact, not approximate.
  for (const auto& cfg : GeArConfig::enumerate(10)) {
    const double model = paper_error_probability(cfg);
    const double truth = exhaustive_error_probability(cfg);
    EXPECT_NEAR(model, truth, 1e-12) << cfg.name();
  }
}

TEST(ErrorModel, PaperIeEqualsExactDpEverywhere) {
  for (int n : {12, 16, 20, 24}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      EXPECT_NEAR(paper_error_probability(cfg), exact_error_probability(cfg),
                  1e-12)
          << cfg.name();
    }
    for (int r : {1, 2, 3, 5}) {
      for (const auto& cfg : GeArConfig::enumerate_relaxed_r(n, r)) {
        EXPECT_NEAR(paper_error_probability(cfg), exact_error_probability(cfg),
                    1e-12)
            << cfg.name();
      }
    }
  }
}

TEST(ErrorModel, ThreeWayDifferentialRandomConfigs) {
  // Pins the constraint_span overlap condition (error_model.cc): the IE
  // DP caps each subset member's influence at `span` sub-adders, while the
  // subset enumeration applies the exact nearest-member frontier with no
  // cap, and the exact carry DP models the full uniform operand space. An
  // off-by-one in the span (or in the `>` of the overlap test) would split
  // this three-way agreement on some sampled geometry. Relaxed top
  // windows are sampled explicitly — that is where the clamped layout
  // makes the span computation nontrivial.
  stats::Rng rng(46);
  int checked = 0, relaxed_seen = 0;
  while (checked < 150) {
    const int n = 8 + static_cast<int>(rng.range(0, 24));
    const int r = 1 + static_cast<int>(rng.range(0, 7));
    if (r + 2 > n) continue;
    const int p = 1 + static_cast<int>(rng.range(0, static_cast<std::uint64_t>(n - r - 1)));
    const auto cfg = GeArConfig::make_relaxed(n, r, p);
    if (!cfg || cfg->is_exact()) continue;
    if (cfg->k() - 1 > 14) continue;         // subset enumeration is O(2^(k-1))
    if ((p + r - 1) / r > 14) continue;      // exact DP state-space bound
    const double ie = paper_error_probability(*cfg);
    const double subsets = paper_error_probability_subsets(*cfg);
    const double exact = exact_error_probability(*cfg);
    EXPECT_NEAR(ie, subsets, 1e-12) << cfg->name();
    EXPECT_NEAR(ie, exact, 1e-12) << cfg->name();
    if (!cfg->is_strict()) ++relaxed_seen;
    ++checked;
  }
  EXPECT_GT(relaxed_seen, 10);  // the sweep must actually hit relaxed tops
}

TEST(ErrorModel, FirstOrderIsUpperBoundOnIE) {
  for (const auto& cfg : GeArConfig::enumerate(18)) {
    EXPECT_GE(paper_error_probability_first_order(cfg) + 1e-15,
              paper_error_probability(cfg))
        << cfg.name();
  }
}

TEST(ErrorModel, ProbabilitiesAreProbabilities) {
  for (int n : {8, 16, 24, 32}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      const double p = paper_error_probability(cfg);
      EXPECT_GE(p, 0.0) << cfg.name();
      EXPECT_LE(p, 1.0) << cfg.name();
      const double e = exact_error_probability(cfg);
      EXPECT_GE(e, 0.0) << cfg.name();
      EXPECT_LE(e, 1.0) << cfg.name();
    }
  }
}

TEST(ErrorModel, ExactConfigHasZeroError) {
  const auto exact_cfg = GeArConfig::must(16, 15, 1);
  EXPECT_DOUBLE_EQ(paper_error_probability(exact_cfg), 0.0);
  EXPECT_DOUBLE_EQ(exact_error_probability(exact_cfg), 0.0);
}

TEST(ErrorModel, MoreRedundancyMeansLessError) {
  // At fixed N and R, increasing P must not increase error probability.
  for (int r : {1, 2, 4}) {
    double prev = 1.0;
    for (const auto& cfg : GeArConfig::enumerate_r(16, r, true)) {
      const double p = paper_error_probability(cfg);
      EXPECT_LE(p, prev + 1e-12) << cfg.name();
      prev = p;
    }
  }
}

TEST(ErrorModel, McWithinCiOfExact) {
  stats::Rng rng(41);
  for (auto [n, r, p] : {std::tuple{16, 4, 4}, {16, 2, 2}, {12, 4, 4}}) {
    const GeArConfig cfg = GeArConfig::must(n, r, p);
    const double truth = exact_error_probability(cfg);
    const auto mc = mc_error_probability(cfg, 150000, rng);
    EXPECT_TRUE(mc.ci.contains(truth))
        << cfg.name() << " truth=" << truth << " ci=[" << mc.ci.lo << ","
        << mc.ci.hi << "]";
  }
}

TEST(ErrorModel, McDeterministicGivenSeed) {
  const GeArConfig cfg = GeArConfig::must(16, 4, 4);
  stats::Rng a(7), b(7);
  EXPECT_EQ(mc_error_probability(cfg, 10000, a).errors,
            mc_error_probability(cfg, 10000, b).errors);
}

TEST(ErrorModel, DistributionKeysAreNonPositive) {
  // approx - exact <= 0 always (missing carries only).
  stats::Rng rng(42);
  const auto hist = mc_error_distribution(GeArConfig::must(16, 2, 2), 50000, rng);
  EXPECT_LE(hist.max_key(), 0);
  EXPECT_GT(hist.fraction_zero(), 0.5);
}

TEST(ErrorModel, DistributionMassesAtRegionBoundaries) {
  // For (12,4,4) the only possible error is a missing 2^8 carry.
  stats::Rng rng(43);
  const auto hist = mc_error_distribution(GeArConfig::must(12, 4, 4), 50000, rng);
  for (const auto& [key, count] : hist.entries()) {
    EXPECT_TRUE(key == 0 || key == -(1 << 8)) << key;
    (void)count;
  }
}

TEST(ErrorModel, DetectCountDistributionSums) {
  stats::Rng rng(44);
  const GeArConfig cfg = GeArConfig::must(16, 2, 2);
  const auto pmf = mc_detect_count_distribution(cfg, 20000, rng);
  ASSERT_EQ(pmf.size(), static_cast<std::size_t>(cfg.k()) + 1);
  double total = 0.0;
  for (double p : pmf) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(pmf[0], 0.5);
}

TEST(ErrorModel, TableIVGearErrorProbabilities) {
  // Paper Table IV (N=20, L=10): GeAr rows' probability-of-error column.
  struct Row {
    int r, p;
    double perr;
  };
  const Row rows[] = {
      {1, 9, 4.882813e-3}, {2, 8, 7.324219e-3},  {5, 5, 30.273438e-3},
  };
  for (const Row& row : rows) {
    const GeArConfig cfg = GeArConfig::must(20, row.r, row.p);
    EXPECT_NEAR(paper_error_probability_first_order(cfg), row.perr,
                row.perr * 5e-4)
        << cfg.name();
  }
}

TEST(ErrorModel, ExhaustiveRejectsLargeN) {
  EXPECT_THROW(exhaustive_error_probability(GeArConfig::must(16, 4, 4)),
               std::invalid_argument);
}

TEST(ErrorModel, SubsetsRejectsHugeK) {
  // N=63, R=1, P=1 -> k = 62.
  const auto cfg = GeArConfig::must(63, 1, 1);
  EXPECT_THROW(paper_error_probability_subsets(cfg), std::invalid_argument);
  // The DP handles it fine.
  const double p = paper_error_probability(cfg);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}


TEST(ErrorModel, AnalyticMedMatchesExhaustive) {
  // The closed-form MED (see error_model.h derivation) must equal the
  // exhaustive average over every operand pair, for every strict and
  // relaxed configuration we can enumerate at small N.
  for (int n : {8, 9, 10}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      EXPECT_NEAR(analytic_med(cfg), exhaustive_med(cfg), 1e-9) << cfg.name();
    }
  }
  for (int r : {1, 2, 3}) {
    for (const auto& cfg : GeArConfig::enumerate_relaxed_r(9, r)) {
      EXPECT_NEAR(analytic_med(cfg), exhaustive_med(cfg), 1e-9) << cfg.name();
    }
  }
}

TEST(ErrorModel, AnalyticMedKnownValues) {
  // (12,4,4): Perr = 15/512, single possible deficit 2^8 -> MED = 7.5.
  EXPECT_DOUBLE_EQ(analytic_med(GeArConfig::must(12, 4, 4)), 7.5);
  // Exact configuration: no error distance.
  EXPECT_DOUBLE_EQ(analytic_med(GeArConfig::must(16, 8, 8)), 0.0);
}

TEST(ErrorModel, AnalyticMedWithinMcCi) {
  stats::Rng rng(45);
  const GeArConfig cfg = GeArConfig::must(16, 2, 2);
  const auto hist = mc_error_distribution(cfg, 400000, rng);
  // hist keys are approx-exact (non-positive); MED = -mean.
  EXPECT_NEAR(-hist.mean(), analytic_med(cfg), analytic_med(cfg) * 0.05);
}

TEST(ErrorModel, AnalyticMedMonotoneInL) {
  // Longer sub-adders mean rarer, not larger, carry-out misses: MED is
  // non-increasing as P grows at fixed N (ties occur where the clamped
  // top window keeps the same length across adjacent relaxed P values).
  double prev = 1e18;
  for (int p = 1; p <= 12; ++p) {
    auto cfg = GeArConfig::make_relaxed(16, 4, p);
    ASSERT_TRUE(cfg);
    const double med = analytic_med(*cfg);
    EXPECT_LE(med, prev) << cfg->name();
    prev = med;
  }
  // Strictly smaller across strict configurations (full-length top).
  EXPECT_LT(analytic_med(GeArConfig::must(16, 4, 8)),
            analytic_med(GeArConfig::must(16, 4, 4)));
}

}  // namespace
}  // namespace gear::core
