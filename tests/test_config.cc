// GeArConfig geometry tests: validation, Eq. 1 sub-adder counts, window
// layouts from the paper's worked examples, enumeration, relaxed layouts.
#include <gtest/gtest.h>

#include "core/config.h"

namespace gear::core {
namespace {

TEST(GeArConfig, PaperFig3Layout) {
  // N=12, R=4, P=4 -> k=2, L=8 (paper Fig. 3).
  const GeArConfig cfg = GeArConfig::must(12, 4, 4);
  EXPECT_EQ(cfg.l(), 8);
  EXPECT_EQ(cfg.k(), 2);
  ASSERT_EQ(cfg.layout().size(), 2u);
  EXPECT_EQ(cfg.sub(0).win_lo, 0);
  EXPECT_EQ(cfg.sub(0).win_hi, 7);
  EXPECT_EQ(cfg.sub(0).res_lo, 0);
  EXPECT_EQ(cfg.sub(0).res_hi, 7);
  EXPECT_EQ(cfg.sub(1).win_lo, 4);
  EXPECT_EQ(cfg.sub(1).win_hi, 11);
  EXPECT_EQ(cfg.sub(1).res_lo, 8);
  EXPECT_EQ(cfg.sub(1).res_hi, 11);
  EXPECT_EQ(cfg.sub(1).prediction_len(), 4);
  EXPECT_EQ(cfg.max_carry_chain(), 8);
}

TEST(GeArConfig, PaperFig4Layout) {
  // N=12, R=2, P=6 -> k=3, L=8 (paper Fig. 4).
  const GeArConfig cfg = GeArConfig::must(12, 2, 6);
  EXPECT_EQ(cfg.k(), 3);
  EXPECT_EQ(cfg.sub(1).win_lo, 2);
  EXPECT_EQ(cfg.sub(1).win_hi, 9);
  EXPECT_EQ(cfg.sub(1).res_lo, 8);
  EXPECT_EQ(cfg.sub(1).res_hi, 9);
  EXPECT_EQ(cfg.sub(2).win_lo, 4);
  EXPECT_EQ(cfg.sub(2).win_hi, 11);
  EXPECT_EQ(cfg.sub(2).res_lo, 10);
  EXPECT_EQ(cfg.sub(2).res_hi, 11);
  EXPECT_EQ(cfg.max_carry_chain(), 8);
}

TEST(GeArConfig, Eq1SubAdderCount) {
  // k = (N-L)/R + 1 for a grid of strict configurations.
  for (int n : {8, 12, 16, 20, 32, 48}) {
    for (int r = 1; r < n; ++r) {
      for (int p = 1; r + p <= n; ++p) {
        auto cfg = GeArConfig::make(n, r, p);
        if (!cfg) continue;
        const int l = r + p;
        EXPECT_EQ(cfg->k(), (n - l) / r + 1) << n << "," << r << "," << p;
      }
    }
  }
}

TEST(GeArConfig, RejectsInvalid) {
  EXPECT_FALSE(GeArConfig::make(16, 0, 4));   // R < 1
  EXPECT_FALSE(GeArConfig::make(16, 4, 0));   // P < 1
  EXPECT_FALSE(GeArConfig::make(16, 4, 13));  // L > N
  EXPECT_FALSE(GeArConfig::make(16, 4, 3));   // (N-L) % R != 0
  EXPECT_FALSE(GeArConfig::make(1, 1, 1));    // N too small
  EXPECT_FALSE(GeArConfig::make(64, 8, 8));   // N > 63 (model limit)
}

TEST(GeArConfig, AcceptsExactDegenerate) {
  // L == N collapses to a single exact sub-adder for any (R, P) split.
  auto cfg = GeArConfig::make(16, 8, 8);
  ASSERT_TRUE(cfg);
  EXPECT_TRUE(cfg->is_exact());
  EXPECT_EQ(cfg->k(), 1);
  auto exact = GeArConfig::make(16, 15, 1);
  ASSERT_TRUE(exact);
  EXPECT_TRUE(exact->is_exact());
  EXPECT_EQ(exact->k(), 1);
}

TEST(GeArConfig, TableIIIConfigsHaveExpectedK) {
  EXPECT_EQ(GeArConfig::must(12, 4, 4).k(), 2);
  EXPECT_EQ(GeArConfig::must(16, 4, 8).k(), 2);
  EXPECT_EQ(GeArConfig::must(32, 8, 8).k(), 3);
  // Paper Table III prints k=5 here; Eq. 1 gives 4 (see DESIGN.md).
  EXPECT_EQ(GeArConfig::must(48, 8, 16).k(), 4);
}

TEST(GeArConfig, LayoutInvariants) {
  for (const auto& cfg : GeArConfig::enumerate(20)) {
    const auto& layout = cfg.layout();
    // Result regions tile [0, N-1] exactly.
    int next = 0;
    for (const auto& s : layout) {
      EXPECT_EQ(s.res_lo, next);
      EXPECT_LE(s.win_lo, s.res_lo);
      EXPECT_EQ(s.win_hi, s.res_hi);
      EXPECT_GE(s.win_lo, 0);
      next = s.res_hi + 1;
    }
    EXPECT_EQ(next, cfg.n());
    // Strict: every window has length L and every prediction P bits.
    for (std::size_t j = 1; j < layout.size(); ++j) {
      EXPECT_EQ(layout[j].window_len(), cfg.l());
      EXPECT_EQ(layout[j].prediction_len(), cfg.p());
      EXPECT_EQ(layout[j].result_len(), cfg.r());
    }
  }
}

TEST(GeArConfig, RelaxedClampsTopSubAdder) {
  // N=16, R=2, P=3: strict is impossible ((16-5) % 2 != 0).
  EXPECT_FALSE(GeArConfig::make(16, 2, 3));
  auto cfg = GeArConfig::make_relaxed(16, 2, 3);
  ASSERT_TRUE(cfg);
  EXPECT_FALSE(cfg->is_strict());
  EXPECT_EQ(cfg->sub(cfg->k() - 1).res_hi, 15);
  // Top result region is narrower than R.
  EXPECT_LE(cfg->sub(cfg->k() - 1).result_len(), 2);
  // Carry chains never exceed L.
  EXPECT_LE(cfg->max_carry_chain(), cfg->l());
}

TEST(GeArConfig, RelaxedMatchesStrictWhenEq1Holds) {
  auto strict = GeArConfig::make(16, 4, 4);
  auto relaxed = GeArConfig::make_relaxed(16, 4, 4);
  ASSERT_TRUE(strict && relaxed);
  EXPECT_TRUE(relaxed->is_strict());
  EXPECT_EQ(strict->layout().size(), relaxed->layout().size());
  for (int j = 0; j < strict->k(); ++j) {
    EXPECT_EQ(strict->sub(j).win_lo, relaxed->sub(j).win_lo);
    EXPECT_EQ(strict->sub(j).res_hi, relaxed->sub(j).res_hi);
  }
}

TEST(GeArConfig, EnumerateRelaxedCoversFullPSweep) {
  for (int r : {1, 2, 3, 4, 8}) {
    const auto sweep = GeArConfig::enumerate_relaxed_r(16, r);
    EXPECT_EQ(static_cast<int>(sweep.size()), 16 - r);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      EXPECT_EQ(sweep[i].p(), static_cast<int>(i) + 1);
    }
  }
}

TEST(GeArConfig, EnumerateStrictOnlyValid) {
  for (const auto& cfg : GeArConfig::enumerate(16)) {
    EXPECT_TRUE(cfg.is_strict());
    EXPECT_FALSE(cfg.is_exact());
    EXPECT_EQ((cfg.n() - cfg.l()) % cfg.r(), 0);
  }
}

TEST(GeArConfig, NameFormat) {
  EXPECT_EQ(GeArConfig::must(16, 4, 4).name(), "GeAr(N=16,R=4,P=4)");
}

TEST(GeArConfig, InvalidReasonNamesViolatedConstraint) {
  EXPECT_EQ(GeArConfig::invalid_reason(16, 4, 4), "");
  EXPECT_NE(GeArConfig::invalid_reason(1, 4, 4).find("N=1"), std::string::npos);
  EXPECT_NE(GeArConfig::invalid_reason(64, 4, 4).find("N=64"),
            std::string::npos);
  EXPECT_NE(GeArConfig::invalid_reason(16, 0, 4).find("R=0"),
            std::string::npos);
  EXPECT_NE(GeArConfig::invalid_reason(16, 4, 0).find("P=0"),
            std::string::npos);
  EXPECT_NE(GeArConfig::invalid_reason(8, 4, 8).find("exceeds"),
            std::string::npos);
  // The Eq. 1 failure explains itself and points at the relaxed escape
  // hatch.
  const std::string eq1 = GeArConfig::invalid_reason(16, 4, 5);
  EXPECT_NE(eq1.find("Eq. 1"), std::string::npos);
  EXPECT_NE(eq1.find("make_relaxed"), std::string::npos);
  // make() agrees with invalid_reason() on every verdict.
  for (int r = 0; r <= 8; ++r) {
    for (int p = 0; p <= 8; ++p) {
      EXPECT_EQ(GeArConfig::make(12, r, p).has_value(),
                GeArConfig::invalid_reason(12, r, p).empty())
          << r << "," << p;
    }
  }
}

TEST(GeArConfig, CustomInvalidReasonNamesViolatedConstraint) {
  using Segment = GeArConfig::Segment;
  // The valid case is the empty string.
  EXPECT_EQ(GeArConfig::custom_invalid_reason(16, 4, {{4, 2}, {4, 4}, {4, 6}}),
            "");
  // Each violated constraint is named, with the offending segment index.
  EXPECT_NE(GeArConfig::custom_invalid_reason(1, 1, {}).find("N=1"),
            std::string::npos);
  EXPECT_NE(GeArConfig::custom_invalid_reason(64, 4, {}).find("N=64"),
            std::string::npos);
  EXPECT_NE(GeArConfig::custom_invalid_reason(16, 0, {}).find("l0=0"),
            std::string::npos);
  EXPECT_NE(GeArConfig::custom_invalid_reason(16, 17, {}).find("exceeds"),
            std::string::npos);
  EXPECT_NE(GeArConfig::custom_invalid_reason(16, 4, {{0, 2}})
                .find("zero-length result"),
            std::string::npos);
  EXPECT_NE(GeArConfig::custom_invalid_reason(16, 4, {{4, 0}})
                .find("zero-length prediction"),
            std::string::npos);
  EXPECT_NE(GeArConfig::custom_invalid_reason(16, 4, {{4, 2}, {4, 4}, {8, 6}})
                .find("overrun the MSB"),
            std::string::npos);
  EXPECT_NE(GeArConfig::custom_invalid_reason(16, 4, {{4, 8}})
                .find("below bit 0"),
            std::string::npos);
  EXPECT_NE(GeArConfig::custom_invalid_reason(16, 4, {{4, 2}, {4, 7}, {4, 6}})
                .find("window-order"),
            std::string::npos);
  EXPECT_NE(GeArConfig::custom_invalid_reason(16, 4, {{4, 2}, {4, 4}})
                .find("tile"),
            std::string::npos);
  // make_custom() agrees with custom_invalid_reason() on every verdict of
  // a small grid (including the empty-segment exact degenerate).
  for (int l0 = 0; l0 <= 12; ++l0) {
    for (int r = 0; r <= 4; ++r) {
      for (int p = 0; p <= 6; ++p) {
        std::vector<Segment> segs;
        int res = l0;
        while (res < 12 && r >= 1) {
          segs.push_back({r, p});
          res += r;
        }
        EXPECT_EQ(GeArConfig::make_custom(12, l0, segs).has_value(),
                  GeArConfig::custom_invalid_reason(12, l0, segs).empty())
            << "l0=" << l0 << " r=" << r << " p=" << p;
      }
    }
  }
}

TEST(GeArConfig, UniformCustomCanonicalizesToUniformConfig) {
  // A custom spelling of a uniform geometry returns the uniform config
  // itself: equality is layout-based, and is_custom() reports the
  // canonical family, not the spelling.
  const auto strict_twin = GeArConfig::make_custom(16, 8, {{4, 4}, {4, 4}});
  ASSERT_TRUE(strict_twin);
  EXPECT_FALSE(strict_twin->is_custom());
  EXPECT_TRUE(strict_twin->is_strict());
  EXPECT_EQ(*strict_twin, GeArConfig::must(16, 4, 4));
  EXPECT_EQ(strict_twin->name(), "GeAr(N=16,R=4,P=4)");

  // Clamped-top uniform geometries canonicalize to the relaxed config.
  const auto relaxed_twin = GeArConfig::make_custom(16, 10, {{6, 2}});
  const auto relaxed = GeArConfig::make_relaxed(16, 8, 2);
  ASSERT_TRUE(relaxed_twin && relaxed);
  EXPECT_FALSE(relaxed_twin->is_custom());
  EXPECT_EQ(*relaxed_twin, *relaxed);

  // Genuinely heterogeneous layouts stay custom.
  const auto hetero = GeArConfig::make_custom(16, 4, {{4, 1}, {4, 2}, {4, 5}});
  ASSERT_TRUE(hetero);
  EXPECT_TRUE(hetero->is_custom());

  // The empty-segment spelling of the exact adder stays a k=1 custom
  // (no uniform (R, P) with R >= 1 spells it).
  const auto exact = GeArConfig::make_custom(12, 12, {});
  ASSERT_TRUE(exact);
  EXPECT_TRUE(exact->is_exact());
}

}  // namespace
}  // namespace gear::core
