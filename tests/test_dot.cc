// DOT export tests.
#include <gtest/gtest.h>

#include "netlist/circuits.h"
#include "netlist/dot.h"

namespace gear::netlist {
namespace {

TEST(Dot, StructureAndLabels) {
  const Netlist nl = build_rca(4);
  const std::string dot = to_dot(nl);
  EXPECT_NE(dot.find("digraph \"rca_n4\""), std::string::npos);
  EXPECT_NE(dot.find("a[0]"), std::string::npos);
  EXPECT_NE(dot.find("b[3]"), std::string::npos);
  EXPECT_NE(dot.find("sum[4]"), std::string::npos);
  EXPECT_NE(dot.find("fa_carry"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);  // macro highlight
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, EdgeCountMatchesFanin) {
  const Netlist nl = build_etaii(8, 2);
  const std::string dot = to_dot(nl);
  std::size_t edges = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 2)) {
    ++edges;
  }
  std::size_t fanins = 0;
  for (const auto& g : nl.gates()) fanins += g.inputs.size();
  std::size_t out_bits = 0;
  for (const auto& p : nl.outputs()) out_bits += p.nets.size();
  EXPECT_EQ(edges, fanins + out_bits);
}

}  // namespace
}  // namespace gear::netlist
