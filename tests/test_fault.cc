// Stuck-at and transient fault injection / fault simulation tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/bitvec.h"
#include "core/config.h"
#include "netlist/builder.h"
#include "netlist/circuits.h"
#include "netlist/fault.h"
#include "stats/rng.h"

namespace gear::netlist {
namespace {

using OperandVectors = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

TEST(Fault, EnumerationCoversGateOutputs) {
  const Netlist nl = build_rca(4);
  std::size_t non_const = 0;
  for (const auto& g : nl.gates()) {
    if (g.kind != GateKind::kConst0 && g.kind != GateKind::kConst1) ++non_const;
  }
  const auto faults = enumerate_faults(nl);
  EXPECT_EQ(faults.size(), 2 * non_const);
  EXPECT_LT(non_const, nl.gate_count());  // the cin constant is excluded

  // One transient site per stuck-at net pair.
  EXPECT_EQ(enumerate_transient_faults(nl).size(), non_const);
}

TEST(Fault, InjectedFaultChangesOutput) {
  // Stuck-at-1 on the LSB sum of an RCA flips 0+0.
  const Netlist nl = build_rca(4);
  // Find the FaSum gate driving sum[0].
  const NetId sum0 = nl.outputs().front().nets[0];
  const StuckFault f{sum0, true};
  const auto out = simulate_with_fault(
      nl, f, {{"a", core::BitVec(4, 0)}, {"b", core::BitVec(4, 0)}});
  EXPECT_EQ(out.at("sum").to_u64(), 1u);
}

TEST(Fault, TransientInvertsSettledValue) {
  // A transient on any net produces the same outputs as the stuck-at of
  // the opposite of the net's good value, vector by vector.
  const Netlist nl = build_rca(4);
  const NetId sum0 = nl.outputs().front().nets[0];
  for (const auto [a, b] : OperandVectors{{0, 0}, {3, 5}, {15, 1}, {9, 6}}) {
    const std::map<std::string, core::BitVec> in = {
        {"a", core::BitVec(4, a)}, {"b", core::BitVec(4, b)}};
    const bool good_bit = (a + b) & 1ULL;
    const auto flipped =
        simulate_with_fault(nl, FaultSpec::transient(sum0), in);
    const auto stuck =
        simulate_with_fault(nl, FaultSpec::stuck_at(sum0, !good_bit), in);
    EXPECT_EQ(flipped.at("sum").to_u64(), stuck.at("sum").to_u64())
        << "a=" << a << " b=" << b;
    EXPECT_NE(flipped.at("sum").to_u64(), (a + b) & 0x1FULL);
  }
}

TEST(Fault, TransientPropagatesThroughCone) {
  // Flipping an internal carry perturbs every downstream sum bit as if
  // the carry had really been wrong: 0b0111 + 0b0001 with the carry out
  // of bit 2 flipped loses the ripple into bit 3.
  const Netlist nl = build_rca(4);
  const auto in = std::map<std::string, core::BitVec>{
      {"a", core::BitVec(4, 7)}, {"b", core::BitVec(4, 1)}};
  // Locate the carry feeding the last full adder: the FaCarry gate whose
  // output feeds the MSB sum gate.
  const NetId sum3 = nl.outputs().front().nets[3];
  const auto& sum3_gate =
      nl.gates()[static_cast<std::size_t>(nl.driver(sum3))];
  const NetId carry_in3 = sum3_gate.inputs[2];
  const auto out =
      simulate_with_fault(nl, FaultSpec::transient(carry_in3), in);
  EXPECT_NE(out.at("sum").to_u64(), 8u);  // exact sum = 0b1000
}

TEST(Fault, GoodCircuitUnaffectedByUndetectingVectors) {
  const Netlist nl = build_rca(4);
  const NetId sum3 = nl.outputs().front().nets[3];
  // stuck-at-0 on sum[3] is undetectable by vectors whose bit 3 is 0.
  const StuckFault f{sum3, false};
  EXPECT_FALSE(fault_detected(nl, f, OperandVectors{{0, 0}, {1, 1}, {2, 1}}));
  // ...and caught by one that sets it.
  EXPECT_TRUE(fault_detected(nl, f, OperandVectors{{8, 0}}));
}

TEST(Fault, TransientAlwaysDetectableOnObservableNet) {
  // Unlike a stuck-at (silent when the net already carries the stuck
  // value), a transient *inverts*, so any vector that observes the net
  // detects it.
  const Netlist nl = build_rca(4);
  const NetId sum3 = nl.outputs().front().nets[3];
  EXPECT_TRUE(fault_detected(nl, FaultSpec::transient(sum3),
                             OperandVectors{{0, 0}}));
  EXPECT_TRUE(fault_detected(nl, FaultSpec::transient(sum3),
                             OperandVectors{{8, 0}}));
}

TEST(Fault, RandomVectorsCoverRcaWell) {
  const Netlist nl = build_rca(8);
  stats::Rng rng(21);
  const FaultCoverage cov = random_vector_coverage(nl, 64, rng);
  EXPECT_EQ(cov.total, enumerate_faults(nl).size());
  // Adders are highly testable: random vectors catch nearly everything.
  EXPECT_GT(cov.coverage(), 0.95) << cov.detected << "/" << cov.total;
  EXPECT_EQ(cov.detected + cov.undetected.size(), cov.total);
}

TEST(Fault, GearDetectionNetworkIsTestable) {
  // The err flags are observable outputs, so faults in the detection
  // network (xor/and tree) are detectable — the self-checking testbench
  // story holds for the whole circuit, not just the datapath.
  const Netlist nl = build_gear(core::GeArConfig::must(12, 4, 4));
  stats::Rng rng(22);
  const FaultCoverage cov = random_vector_coverage(nl, 256, rng);
  EXPECT_DOUBLE_EQ(cov.coverage(), 1.0) << cov.detected << "/" << cov.total;
}

TEST(Fault, NamedPortVectorsCoverControlInputs) {
  // GDA has a "cfg" control bus besides the operands. The port-map
  // vector API randomizes it too, so the speculation muxes get exercised
  // and the circuit reaches high coverage; pinning cfg at a constant (the
  // old a/b-only behaviour) leaves mux-select cones untested.
  const Netlist nl = build_gda(8, 2, 2);
  stats::Rng rng(23);
  const auto vecs = random_port_vectors(nl, 128, rng);
  ASSERT_FALSE(vecs.empty());
  for (const auto& port : nl.inputs()) {
    ASSERT_TRUE(vecs.front().count(port.name)) << port.name;
  }
  // "cfg" genuinely varies across draws.
  bool cfg_varies = false;
  for (const auto& v : vecs) {
    if (v.at("cfg").to_u64() != vecs.front().at("cfg").to_u64()) {
      cfg_varies = true;
      break;
    }
  }
  EXPECT_TRUE(cfg_varies);

  const FaultCoverage all_ports = vector_coverage(nl, vecs);
  // Same budget with cfg pinned to zero covers strictly less.
  auto pinned = vecs;
  for (auto& v : pinned) v["cfg"] = core::BitVec(v.at("cfg").width(), 0);
  const FaultCoverage cfg_zero = vector_coverage(nl, pinned);
  EXPECT_GT(all_ports.detected, cfg_zero.detected);
  EXPECT_GT(all_ports.coverage(), 0.8);
}

TEST(Fault, ConstantGateFaultMayBeUndetectable) {
  // A stuck-at matching a constant's value is by construction silent.
  Builder b("c");
  const Bus a = b.input("a", 1);
  b.output("o", b.and_(a[0], b.const1()));
  const Netlist nl = std::move(b).take();
  // Find the const1 net: the gate with kind kConst1.
  NetId const_net = kInvalidNet;
  for (const auto& g : nl.gates()) {
    if (g.kind == GateKind::kConst1) const_net = g.output;
  }
  ASSERT_NE(const_net, kInvalidNet);
  EXPECT_FALSE(fault_detected(nl, StuckFault{const_net, true},
                              OperandVectors{{0, 0}, {1, 0}}));
  EXPECT_TRUE(
      fault_detected(nl, StuckFault{const_net, false}, OperandVectors{{1, 0}}));
}

TEST(Fault, CoverageDeterministicGivenSeed) {
  const Netlist nl = build_etaii(8, 2);
  stats::Rng a(30), b(30);
  const auto ca = random_vector_coverage(nl, 32, a);
  const auto cb = random_vector_coverage(nl, 32, b);
  EXPECT_EQ(ca.detected, cb.detected);
}

TEST(Fault, RegionTagsPartitionGearGates) {
  // build_gear tags every gate with the module it belongs to; the
  // campaign's per-module rollup depends on the tags being present.
  const Netlist nl = build_gear(core::GeArConfig::must(12, 4, 4));
  std::size_t tagged = 0;
  bool saw_ripple = false, saw_predict = false, saw_detect = false;
  for (std::size_t gi = 0; gi < nl.gate_count(); ++gi) {
    const auto& region = nl.gate_region(gi);
    if (!region.empty()) ++tagged;
    saw_ripple |= region == "ripple";
    saw_predict |= region == "predict";
    saw_detect |= region == "detect";
  }
  EXPECT_TRUE(saw_ripple);
  EXPECT_TRUE(saw_predict);
  EXPECT_TRUE(saw_detect);
  EXPECT_GT(tagged, nl.gate_count() / 2);
}

}  // namespace
}  // namespace gear::netlist
