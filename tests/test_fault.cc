// Stuck-at fault injection / fault simulation tests.
#include <gtest/gtest.h>

#include "core/bitvec.h"
#include "core/config.h"
#include "netlist/builder.h"
#include "netlist/circuits.h"
#include "netlist/fault.h"
#include "stats/rng.h"

namespace gear::netlist {
namespace {

TEST(Fault, EnumerationCoversGateOutputs) {
  const Netlist nl = build_rca(4);
  std::size_t non_const = 0;
  for (const auto& g : nl.gates()) {
    if (g.kind != GateKind::kConst0 && g.kind != GateKind::kConst1) ++non_const;
  }
  const auto faults = enumerate_faults(nl);
  EXPECT_EQ(faults.size(), 2 * non_const);
  EXPECT_LT(non_const, nl.gate_count());  // the cin constant is excluded
}

TEST(Fault, InjectedFaultChangesOutput) {
  // Stuck-at-1 on the LSB sum of an RCA flips 0+0.
  const Netlist nl = build_rca(4);
  // Find the FaSum gate driving sum[0].
  const NetId sum0 = nl.outputs().front().nets[0];
  const StuckFault f{sum0, true};
  const auto out = simulate_with_fault(
      nl, f, {{"a", core::BitVec(4, 0)}, {"b", core::BitVec(4, 0)}});
  EXPECT_EQ(out.at("sum").to_u64(), 1u);
}

TEST(Fault, GoodCircuitUnaffectedByUndetectingVectors) {
  const Netlist nl = build_rca(4);
  const NetId sum3 = nl.outputs().front().nets[3];
  // stuck-at-0 on sum[3] is undetectable by vectors whose bit 3 is 0.
  const StuckFault f{sum3, false};
  EXPECT_FALSE(fault_detected(nl, f, {{0, 0}, {1, 1}, {2, 1}}));
  // ...and caught by one that sets it.
  EXPECT_TRUE(fault_detected(nl, f, {{8, 0}}));
}

TEST(Fault, RandomVectorsCoverRcaWell) {
  const Netlist nl = build_rca(8);
  stats::Rng rng(21);
  const FaultCoverage cov = random_vector_coverage(nl, 64, rng);
  EXPECT_EQ(cov.total, enumerate_faults(nl).size());
  // Adders are highly testable: random vectors catch nearly everything.
  EXPECT_GT(cov.coverage(), 0.95) << cov.detected << "/" << cov.total;
  EXPECT_EQ(cov.detected + cov.undetected.size(), cov.total);
}

TEST(Fault, GearDetectionNetworkIsTestable) {
  // The err flags are observable outputs, so faults in the detection
  // network (xor/and tree) are detectable — the self-checking testbench
  // story holds for the whole circuit, not just the datapath.
  const Netlist nl = build_gear(core::GeArConfig::must(12, 4, 4));
  stats::Rng rng(22);
  const FaultCoverage cov = random_vector_coverage(nl, 256, rng);
  EXPECT_DOUBLE_EQ(cov.coverage(), 1.0) << cov.detected << "/" << cov.total;
}

TEST(Fault, ConstantGateFaultMayBeUndetectable) {
  // A stuck-at matching a constant's value is by construction silent.
  Builder b("c");
  const Bus a = b.input("a", 1);
  b.output("o", b.and_(a[0], b.const1()));
  const Netlist nl = std::move(b).take();
  // Find the const1 net: the gate with kind kConst1.
  NetId const_net = kInvalidNet;
  for (const auto& g : nl.gates()) {
    if (g.kind == GateKind::kConst1) const_net = g.output;
  }
  ASSERT_NE(const_net, kInvalidNet);
  EXPECT_FALSE(fault_detected(nl, {const_net, true}, {{0, 0}, {1, 0}}));
  EXPECT_TRUE(fault_detected(nl, {const_net, false}, {{1, 0}}));
}

TEST(Fault, CoverageDeterministicGivenSeed) {
  const Netlist nl = build_etaii(8, 2);
  stats::Rng a(30), b(30);
  const auto ca = random_vector_coverage(nl, 32, a);
  const auto cb = random_vector_coverage(nl, 32, b);
  EXPECT_EQ(ca.detected, cb.detected);
}

}  // namespace
}  // namespace gear::netlist
