// Behavioural Verilog generator tests (string-level sanity; functional
// equivalence of the emitted RTL is covered by the gate-level circuits,
// which share the same geometry).
#include <gtest/gtest.h>

#include "core/config.h"
#include "core/verilog_gen.h"

namespace gear::core {
namespace {

TEST(VerilogGen, ModuleName) {
  EXPECT_EQ(verilog_module_name(GeArConfig::must(16, 4, 4)), "gear_n16_r4_p4");
}

TEST(VerilogGen, CombinationalStructure) {
  const GeArConfig cfg = GeArConfig::must(12, 4, 4);
  const std::string v = generate_verilog(cfg);
  EXPECT_NE(v.find("module gear_n12_r4_p4"), std::string::npos);
  EXPECT_NE(v.find("input  wire [11:0] a"), std::string::npos);
  EXPECT_NE(v.find("output wire [12:0] sum"), std::string::npos);
  EXPECT_NE(v.find("output wire [1:0] err"), std::string::npos);
  // Two sub-adder window sums.
  EXPECT_NE(v.find("wire [8:0] w0"), std::string::npos);
  EXPECT_NE(v.find("wire [8:0] w1"), std::string::npos);
  // Sub-adder 1 reads window [11:4].
  EXPECT_NE(v.find("a[11:4]"), std::string::npos);
  // Detection: reduction-AND of the prediction xor, gated by w0 carry.
  EXPECT_NE(v.find("err[1] = (&(a[7:4] ^ b[7:4])) & w0[8]"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogGen, PaperFig4Geometry) {
  const std::string v = generate_verilog(GeArConfig::must(12, 2, 6));
  // Three sub-adders: windows [7:0], [9:2], [11:4].
  EXPECT_NE(v.find("a[7:0]"), std::string::npos);
  EXPECT_NE(v.find("a[9:2]"), std::string::npos);
  EXPECT_NE(v.find("a[11:4]"), std::string::npos);
  EXPECT_NE(v.find("output wire [2:0] err"), std::string::npos);
}

TEST(VerilogGen, CorrectionWrapper) {
  const std::string v = generate_verilog_with_correction(GeArConfig::must(12, 4, 4));
  EXPECT_NE(v.find("module gear_n12_r4_p4_ecc"), std::string::npos);
  EXPECT_NE(v.find("input  wire clk"), std::string::npos);
  EXPECT_NE(v.find("correct_en"), std::string::npos);
  EXPECT_NE(v.find("pending"), std::string::npos);
  // Correction rewrites the prediction window [7:4] with OR + forced LSB.
  EXPECT_NE(v.find("ea[7:4]"), std::string::npos);
  EXPECT_NE(v.find("| 4'd1"), std::string::npos);
  EXPECT_NE(v.find("done"), std::string::npos);
}

TEST(VerilogGen, TestbenchSelfChecks) {
  const std::string v = generate_verilog_testbench(GeArConfig::must(16, 4, 4), 1000);
  EXPECT_NE(v.find("tb_gear_n16_r4_p4"), std::string::npos);
  EXPECT_NE(v.find("for (i = 0; i < 1000"), std::string::npos);
  EXPECT_NE(v.find("PASS"), std::string::npos);
  EXPECT_NE(v.find("$finish"), std::string::npos);
}

TEST(VerilogGen, EveryStrictConfigEmits) {
  for (const auto& cfg : GeArConfig::enumerate(16)) {
    const std::string v = generate_verilog(cfg);
    EXPECT_NE(v.find("endmodule"), std::string::npos) << cfg.name();
    const std::string ecc = generate_verilog_with_correction(cfg);
    EXPECT_NE(ecc.find("endmodule"), std::string::npos) << cfg.name();
  }
}

}  // namespace
}  // namespace gear::core
