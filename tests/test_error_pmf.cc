// Exact error-PMF engine tests: the Wu-style DP of
// exact_error_distribution against exhaustive enumeration (bit-exact),
// Monte Carlo (CI-bounded), and the closed-form metric family.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>

#include "core/adder.h"
#include "core/config.h"
#include "core/error_model.h"
#include "stats/parallel.h"
#include "stats/pmf.h"
#include "stats/rng.h"
#include "test_util.h"

namespace gear::core {
namespace {

/// The DP's masses are the same dyadic rationals the exhaustive
/// enumeration counts, so the comparison is ==, not NEAR.
void expect_pmf_matches_exhaustive(const GeArConfig& cfg) {
  const stats::Pmf pmf = exact_error_distribution(cfg);
  const auto truth = testutil::exhaustive_error_pmf(cfg);
  ASSERT_EQ(pmf.entries().size(), truth.size()) << cfg.name();
  for (const auto& [key, mass] : truth) {
    EXPECT_EQ(pmf.mass(key), mass) << cfg.name() << " key " << key;
  }
  EXPECT_EQ(pmf.total_mass(), 1.0) << cfg.name();
}

TEST(ErrorPmf, MatchesExhaustiveEnumerationStrict) {
  for (int n : {6, 8, 10}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      expect_pmf_matches_exhaustive(cfg);
    }
  }
}

TEST(ErrorPmf, MatchesExhaustiveEnumerationRelaxed) {
  for (int n : {6, 8}) {
    for (int r = 1; r < n; ++r) {
      for (const auto& cfg : GeArConfig::enumerate_relaxed_r(n, r)) {
        if (!cfg.is_exact()) expect_pmf_matches_exhaustive(cfg);
      }
    }
  }
}

TEST(ErrorPmf, MatchesExhaustiveEnumerationCustom) {
  const auto c1 = GeArConfig::make_custom(8, 2, {{2, 1}, {2, 2}, {2, 3}});
  const auto c2 = GeArConfig::make_custom(8, 3, {{2, 2}, {3, 1}});
  // Overlapping window starts (win_lo(1) == 0): G_1 is infeasible, and
  // the first windows overlap deeply.
  const auto c3 =
      GeArConfig::make_custom(8, 2, {{1, 2}, {1, 3}, {2, 2}, {2, 3}});
  ASSERT_TRUE(c1 && c2 && c3);
  expect_pmf_matches_exhaustive(*c1);
  expect_pmf_matches_exhaustive(*c2);
  expect_pmf_matches_exhaustive(*c3);
}

TEST(ErrorPmf, ExactDegenerateIsPointMassAtZero) {
  bool saw_exact = false;
  for (const auto& c : GeArConfig::enumerate(8, /*include_exact=*/true)) {
    if (!c.is_exact()) continue;
    saw_exact = true;
    const stats::Pmf p = exact_error_distribution(c);
    EXPECT_EQ(p.distinct(), 1u);
    EXPECT_EQ(p.mass(0), 1.0);
  }
  EXPECT_TRUE(saw_exact);
}

TEST(ErrorPmf, ErrorRateDerivesFromPmf) {
  // 1 - P(error = 0) must equal the collapsed-state DP exactly: both
  // accumulate the same dyadic products in the same per-bit order.
  for (int n : {8, 16, 32}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      const stats::Pmf pmf = exact_error_distribution(cfg);
      EXPECT_NEAR(1.0 - pmf.mass(0), exact_error_probability(cfg), 1e-15)
          << cfg.name();
    }
  }
}

TEST(ErrorPmf, ClosedFormMetricsMatchPmf) {
  for (int n : {8, 10, 16}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      const stats::Pmf pmf = exact_error_distribution(cfg);
      const ExactErrorMetrics m = exact_error_metrics(cfg);
      EXPECT_NEAR(m.med, pmf.mean_abs(), 1e-9 * (1.0 + m.med)) << cfg.name();
      EXPECT_NEAR(m.med, analytic_med(cfg), 1e-9 * (1.0 + m.med))
          << cfg.name();
      EXPECT_EQ(m.max_ed, static_cast<double>(-pmf.min_key())) << cfg.name();
      EXPECT_NEAR(m.error_probability, 1.0 - pmf.mass(0), 1e-15)
          << cfg.name();
      const double range = std::pow(2.0, n) - 1.0;
      EXPECT_NEAR(m.ned_range, m.med / range, 1e-15) << cfg.name();
      EXPECT_NEAR(m.acc_amp_mean, 1.0 - m.ned_range, 1e-15) << cfg.name();
      if (m.max_ed > 0.0) {
        EXPECT_NEAR(m.ned, m.med / m.max_ed, 1e-15) << cfg.name();
      }
    }
  }
}

TEST(ErrorPmf, MedMatchesExhaustive) {
  for (int n : {6, 8}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      const ExactErrorMetrics m = exact_error_metrics(cfg);
      EXPECT_NEAR(m.med, exhaustive_med(cfg), 1e-9) << cfg.name();
    }
  }
}

TEST(ErrorPmf, AgreesWithMonteCarloAtWideWidths) {
  // At N in {16, 32} exhaustive enumeration is unavailable; check the DP
  // against a shared-seed Monte-Carlo referee. With 1e5 trials the
  // 99.9% binomial CI half-width is < 0.006 for any p.
  stats::ParallelExecutor exec(1);
  constexpr std::uint64_t kTrials = 100000;
  for (int n : {16, 32}) {
    for (const auto& cfg :
         {GeArConfig::must(n, 4, 4), GeArConfig::must(n, 2, 2),
          *GeArConfig::make_relaxed(n, 4, 7)}) {
      const stats::Pmf pmf = exact_error_distribution(cfg);
      const auto mc = mc_error_probability(cfg, kTrials, 0xfeedbeef, exec);
      const double p_exact = 1.0 - pmf.mass(0);
      EXPECT_GE(p_exact, mc.ci.lo - 0.006) << cfg.name();
      EXPECT_LE(p_exact, mc.ci.hi + 0.006) << cfg.name();

      // Mean error distance against the MC error distribution. The |err|
      // distribution is heavy-tailed (rare events of magnitude ~2^res_lo
      // dominate the mean), so bound the deviation by the estimator's own
      // standard error: 6 sigma at 1e5 trials keeps the test sharp
      // without flaking.
      stats::Rng rng = stats::Rng::substream(0xfeedbeef, "pmf-med");
      const auto hist = mc_error_distribution(cfg, kTrials, rng);
      const stats::Pmf mc_pmf = stats::Pmf::from_histogram(hist);
      double sq = 0.0;
      for (const auto& [key, mass] : mc_pmf.entries()) {
        const double mag = std::abs(static_cast<double>(key));
        sq += mag * mag * mass;
      }
      const double mc_med = mc_pmf.mean_abs();
      const double stderr_med =
          std::sqrt(std::max(0.0, sq - mc_med * mc_med) /
                    static_cast<double>(kTrials));
      EXPECT_NEAR(pmf.mean_abs(), mc_med, 6.0 * stderr_med + 1e-9)
          << cfg.name();
    }
  }
}

TEST(ErrorPmf, DeepOverlapCustomConfigNoLongerThrows) {
  // Regression: 32 fully-overlapping one-bit windows (all win_lo == 1)
  // exceeded the old 24-window subset-enumeration limit and threw
  // "too many overlapping windows". The collapsed-state DP handles it;
  // the exact ER has a closed form here: all windows start at bit 1, so
  // only G_1 can fire (for j >= 2, F_{j-1} always accompanies E_j), and
  // G_1 needs a generate at bit 0 and a propagate at bit 1:
  // P = kGenProb * kPropProb = 1/8.
  std::vector<GeArConfig::Segment> segs;
  for (int j = 0; j < 32; ++j) segs.push_back({1, j + 1});
  const auto cfg = GeArConfig::make_custom(34, 2, segs);
  ASSERT_TRUE(cfg);
  EXPECT_EQ(cfg->k(), 33);
  const double p = exact_error_probability(*cfg);
  EXPECT_DOUBLE_EQ(p, 0.125);

  // The PMF engine agrees and is CI-consistent with Monte Carlo.
  const stats::Pmf pmf = exact_error_distribution(*cfg);
  EXPECT_NEAR(1.0 - pmf.mass(0), p, 1e-15);
  stats::ParallelExecutor exec(1);
  const auto mc = mc_error_probability(*cfg, 100000, 0x5eed, exec);
  EXPECT_GE(p, mc.ci.lo - 0.006);
  EXPECT_LE(p, mc.ci.hi + 0.006);
}

TEST(ErrorPmf, RejectsWidthsAbove62) {
  std::vector<GeArConfig::Segment> segs;
  for (int i = 0; i < 59; ++i) segs.push_back({1, 1});
  const auto cfg = GeArConfig::make_custom(63, 4, segs);
  ASSERT_TRUE(cfg);
  EXPECT_THROW(exact_error_distribution(*cfg), std::invalid_argument);
}

}  // namespace
}  // namespace gear::core
