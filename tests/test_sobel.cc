// Sobel edge-detection kernel tests (signed workload).
#include <gtest/gtest.h>

#include "adders/exact.h"
#include "adders/gear_adapter.h"
#include "apps/generate.h"
#include "apps/sobel.h"
#include "stats/rng.h"

namespace gear::apps {
namespace {

TEST(Sobel, FlatImageHasZeroGradient) {
  const Image img(16, 16, 100);
  const adders::RcaAdder exact(16);
  const Image out = sobel(img, exact);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) EXPECT_EQ(out.at(x, y), 0);
  }
}

TEST(Sobel, VerticalEdgeDetected) {
  // Left half 0, right half 200: strong response along the boundary.
  Image img(16, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 8; x < 16; ++x) img.set(x, y, 200);
  }
  const adders::RcaAdder exact(16);
  const Image out = sobel(img, exact);
  // On the edge columns, |Gx| = 4*200 = 800.
  EXPECT_EQ(out.at(7, 4), 800);
  EXPECT_EQ(out.at(8, 4), 800);
  // Far from the edge: silent.
  EXPECT_EQ(out.at(2, 4), 0);
  EXPECT_EQ(out.at(13, 4), 0);
}

TEST(Sobel, HorizontalEdgeDetected) {
  Image img(8, 16);
  for (int y = 8; y < 16; ++y) {
    for (int x = 0; x < 8; ++x) img.set(x, y, 200);
  }
  const adders::RcaAdder exact(16);
  const Image out = sobel(img, exact);
  EXPECT_EQ(out.at(4, 7), 800);
  EXPECT_EQ(out.at(4, 2), 0);
}

TEST(Sobel, GradientMagnitudeSymmetricUnderTranspose) {
  stats::Rng rng(91);
  const Image img = smoothed_noise_image(24, 24, rng, 1);
  Image transposed(24, 24);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 24; ++x) transposed.set(y, x, img.at(x, y));
  }
  const adders::RcaAdder exact(16);
  const Image a = sobel(img, exact);
  const Image b = sobel(transposed, exact);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 24; ++x) {
      ASSERT_EQ(a.at(x, y), b.at(y, x));
    }
  }
}

TEST(Sobel, ApproximateAgreementHighAndMonotone) {
  stats::Rng rng(92);
  const Image img = smoothed_noise_image(48, 48, rng, 1);
  const adders::GearAdapter loose(core::GeArConfig::must(16, 4, 4));
  const adders::GearAdapter tight(core::GeArConfig::must(16, 4, 8));
  const double a_loose = sobel_classification_agreement(img, loose, 100);
  const double a_tight = sobel_classification_agreement(img, tight, 100);
  EXPECT_GT(a_loose, 0.6);
  EXPECT_GE(a_tight, a_loose);
  EXPECT_GT(a_tight, 0.95);
}

TEST(Sobel, ExactAdderPerfectAgreement) {
  stats::Rng rng(93);
  const Image img = smoothed_noise_image(20, 20, rng, 1);
  const adders::RcaAdder exact(16);
  EXPECT_DOUBLE_EQ(sobel_classification_agreement(img, exact, 128), 1.0);
}

}  // namespace
}  // namespace gear::apps
