// Configuration-selector tests.
#include <gtest/gtest.h>

#include "analysis/selector.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "synth/report.h"

namespace gear::analysis {
namespace {

TEST(Selector, EverySelectionMeetsTheBound) {
  SelectionRequest req;
  req.n = 12;
  for (double bound : {0.5, 0.1, 0.01, 0.001}) {
    req.max_error_probability = bound;
    for (const auto& sel : rank_configs(req)) {
      EXPECT_LE(sel.error_probability, bound) << sel.cfg.name();
      EXPECT_NEAR(sel.error_probability,
                  core::paper_error_probability(sel.cfg), 1e-12);
    }
  }
}

TEST(Selector, BestIsFirstOfRanking) {
  SelectionRequest req;
  req.n = 12;
  req.max_error_probability = 0.05;
  const auto best = select_config(req);
  const auto all = rank_configs(req);
  ASSERT_TRUE(best);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(best->cfg.r(), all.front().cfg.r());
  EXPECT_EQ(best->cfg.p(), all.front().cfg.p());
  for (const auto& sel : all) {
    EXPECT_LE(best->score, sel.score + 1e-12);
  }
}

TEST(Selector, ObjectiveChangesWinner) {
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 0.05;
  req.objective = Objective::kDelay;
  const auto fastest = select_config(req);
  req.objective = Objective::kArea;
  const auto smallest = select_config(req);
  ASSERT_TRUE(fastest && smallest);
  // The area winner cannot be bigger than the delay winner, and vice
  // versa on delay.
  EXPECT_LE(smallest->area_luts, fastest->area_luts);
  EXPECT_LE(fastest->delay_ns, smallest->delay_ns + 1e-12);
}

TEST(Selector, TighterBoundCostsMore) {
  SelectionRequest req;
  req.n = 16;
  req.objective = Objective::kDelay;
  req.max_error_probability = 0.3;
  const auto loose = select_config(req);
  req.max_error_probability = 0.001;
  const auto tight = select_config(req);
  ASSERT_TRUE(loose && tight);
  EXPECT_GE(tight->delay_ns, loose->delay_ns - 1e-12);
  EXPECT_GE(tight->cfg.l(), loose->cfg.l());
}

TEST(Selector, RelaxedToggleShrinksSpace) {
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 1.0;
  const auto with = rank_configs(req);
  req.include_relaxed = false;
  const auto without = rank_configs(req);
  EXPECT_GT(with.size(), without.size());
  for (const auto& sel : without) {
    EXPECT_TRUE(sel.cfg.is_strict());
  }
}

TEST(Selector, ReportedNumbersMatchSynthesis) {
  SelectionRequest req;
  req.n = 12;
  req.max_error_probability = 0.05;
  const auto best = select_config(req);
  ASSERT_TRUE(best);
  const auto rep = synth::synthesize(
      netlist::build_gear(best->cfg, {.with_detection = false}));
  EXPECT_DOUBLE_EQ(best->delay_ns, synth::sum_path_delay(rep));
  EXPECT_EQ(best->area_luts, rep.area_luts);
}

TEST(Selector, ImpossibleBoundYieldsNothing) {
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = -1.0;  // nothing is below a negative bound
  EXPECT_FALSE(select_config(req));
  EXPECT_TRUE(rank_configs(req).empty());
}

}  // namespace
}  // namespace gear::analysis
