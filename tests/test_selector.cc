// Configuration-selector tests.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/selector.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "stats/distributions.h"
#include "stats/operand_model.h"
#include "synth/report.h"

namespace gear::analysis {
namespace {

TEST(Selector, EverySelectionMeetsTheBound) {
  SelectionRequest req;
  req.n = 12;
  for (double bound : {0.5, 0.1, 0.01, 0.001}) {
    req.max_error_probability = bound;
    for (const auto& sel : rank_configs(req)) {
      EXPECT_LE(sel.error_probability, bound) << sel.cfg.name();
      EXPECT_NEAR(sel.error_probability,
                  core::paper_error_probability(sel.cfg), 1e-12);
    }
  }
}

TEST(Selector, BestIsFirstOfRanking) {
  SelectionRequest req;
  req.n = 12;
  req.max_error_probability = 0.05;
  const auto best = select_config(req);
  const auto all = rank_configs(req);
  ASSERT_TRUE(best);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(best->cfg.r(), all.front().cfg.r());
  EXPECT_EQ(best->cfg.p(), all.front().cfg.p());
  for (const auto& sel : all) {
    EXPECT_LE(best->score, sel.score + 1e-12);
  }
}

TEST(Selector, ObjectiveChangesWinner) {
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 0.05;
  req.objective = Objective::kDelay;
  const auto fastest = select_config(req);
  req.objective = Objective::kArea;
  const auto smallest = select_config(req);
  ASSERT_TRUE(fastest && smallest);
  // The area winner cannot be bigger than the delay winner, and vice
  // versa on delay.
  EXPECT_LE(smallest->area_luts, fastest->area_luts);
  EXPECT_LE(fastest->delay_ns, smallest->delay_ns + 1e-12);
}

TEST(Selector, TighterBoundCostsMore) {
  SelectionRequest req;
  req.n = 16;
  req.objective = Objective::kDelay;
  req.max_error_probability = 0.3;
  const auto loose = select_config(req);
  req.max_error_probability = 0.001;
  const auto tight = select_config(req);
  ASSERT_TRUE(loose && tight);
  EXPECT_GE(tight->delay_ns, loose->delay_ns - 1e-12);
  EXPECT_GE(tight->cfg.l(), loose->cfg.l());
}

TEST(Selector, RelaxedToggleShrinksSpace) {
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 1.0;
  const auto with = rank_configs(req);
  req.include_relaxed = false;
  const auto without = rank_configs(req);
  EXPECT_GT(with.size(), without.size());
  for (const auto& sel : without) {
    EXPECT_TRUE(sel.cfg.is_strict());
  }
}

TEST(Selector, ReportedNumbersMatchSynthesis) {
  SelectionRequest req;
  req.n = 12;
  req.max_error_probability = 0.05;
  const auto best = select_config(req);
  ASSERT_TRUE(best);
  const auto rep = synth::synthesize(
      netlist::build_gear(best->cfg, {.with_detection = false}));
  EXPECT_DOUBLE_EQ(best->delay_ns, synth::sum_path_delay(rep));
  EXPECT_EQ(best->area_luts, rep.area_luts);
}

TEST(Selector, ImpossibleBoundYieldsNothing) {
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = -1.0;  // nothing is below a negative bound
  EXPECT_FALSE(select_config(req));
  EXPECT_TRUE(rank_configs(req).empty());
}

/// Recomputes the documented comparator tier separating `a` from `b` —
/// the oracle decided_by is checked against.
TieBreak expected_tier(const SelectedConfig& a, const SelectedConfig& b,
                       bool aware) {
  if (a.score != b.score) return TieBreak::kScore;
  if (a.area_luts != b.area_luts) return TieBreak::kArea;
  if (aware) {
    if (a.exact_med != b.exact_med) return TieBreak::kWorkloadMed;
    if (a.uniform_med != b.uniform_med) return TieBreak::kUniformMed;
  }
  if (a.cfg.r() != b.cfg.r()) return TieBreak::kWiderR;
  return TieBreak::kNarrowerP;
}

TEST(Selector, UniformModelReproducesPlainSweepBitForBit) {
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 0.05;
  const auto plain = rank_configs(req);
  const stats::OperandModel uniform = stats::OperandModel::uniform(16);
  SweepContext ctx;
  ctx.model = &uniform;
  const auto via_model = rank_configs(req, ctx);
  ASSERT_EQ(plain.size(), via_model.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].cfg.layout(), via_model[i].cfg.layout()) << i;
    EXPECT_EQ(plain[i].score, via_model[i].score) << i;
    EXPECT_EQ(plain[i].error_probability, via_model[i].error_probability) << i;
    EXPECT_EQ(plain[i].exact_med, via_model[i].exact_med) << i;
    EXPECT_EQ(plain[i].decided_by, via_model[i].decided_by) << i;
    EXPECT_FALSE(via_model[i].workload_aware) << i;
    // On uniform sweeps the reference figures mirror the main figures.
    EXPECT_EQ(plain[i].uniform_error_probability,
              plain[i].error_probability) << i;
    EXPECT_EQ(plain[i].uniform_med, plain[i].exact_med) << i;
  }
}

TEST(Selector, DecidedByNamesTheSeparatingTier) {
  const std::vector<stats::OperandPair> zeros(64, stats::OperandPair{0, 0});
  const stats::OperandModel zero_model =
      stats::OperandModel::from_trace(16, zeros, "zeros");
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 0.05;
  for (const bool aware : {false, true}) {
    SweepContext ctx;
    if (aware) ctx.model = &zero_model;
    const auto ranked = rank_configs(req, ctx);
    ASSERT_FALSE(ranked.empty());
    for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
      EXPECT_EQ(ranked[i].decided_by,
                expected_tier(ranked[i], ranked[i + 1], aware))
          << i << " aware=" << aware;
      EXPECT_NE(ranked[i].decided_by, TieBreak::kNone) << i;
      EXPECT_STRNE(tie_break_name(ranked[i].decided_by), "none");
    }
    EXPECT_EQ(ranked.back().decided_by, TieBreak::kNone);
  }
}

TEST(Selector, ZeroTraceTiesResolveOnUniformMed) {
  // An all-zeros trace never errs: every candidate's workload-aware
  // error probability and MED are exactly zero, so the sweep's MED tier
  // degenerates into a total tie. The order must stay total — equal
  // (score, area, workload MED) pairs rank on the *uniform* MED, and the
  // deciding figure is named on the entry.
  const std::vector<stats::OperandPair> zeros(64, stats::OperandPair{0, 0});
  const stats::OperandModel zero_model =
      stats::OperandModel::from_trace(16, zeros, "zeros");
  SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 0.05;
  req.objective = Objective::kArea;  // score == area maximises MED ties
  SweepContext ctx;
  ctx.model = &zero_model;
  const auto ranked = rank_configs(req, ctx);
  ASSERT_FALSE(ranked.empty());
  bool saw_uniform_med_tie = false;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_TRUE(ranked[i].workload_aware) << i;
    EXPECT_EQ(ranked[i].error_probability, 0.0) << i;
    EXPECT_EQ(ranked[i].exact_med, 0.0) << i;
    EXPECT_GT(ranked[i].uniform_med, 0.0) << i;
    if (i + 1 < ranked.size() && ranked[i].decided_by == TieBreak::kUniformMed) {
      saw_uniform_med_tie = true;
      // The tie really was total through the earlier tiers, and the
      // uniform figure really decided it.
      EXPECT_EQ(ranked[i].score, ranked[i + 1].score);
      EXPECT_EQ(ranked[i].area_luts, ranked[i + 1].area_luts);
      EXPECT_EQ(ranked[i].exact_med, ranked[i + 1].exact_med);
      EXPECT_LT(ranked[i].uniform_med, ranked[i + 1].uniform_med);
    }
  }
  EXPECT_TRUE(saw_uniform_med_tie)
      << "expected at least one adjacent pair separated only by uniform MED";
  // Determinism: a rerun produces the identical order.
  const auto again = rank_configs(req, ctx);
  ASSERT_EQ(again.size(), ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(again[i].cfg.layout(), ranked[i].cfg.layout()) << i;
    EXPECT_EQ(again[i].decided_by, ranked[i].decided_by) << i;
  }
}

}  // namespace
}  // namespace gear::analysis
