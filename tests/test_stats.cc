// Unit tests for the stats substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/bootstrap.h"
#include "stats/distributions.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "stats/running_stats.h"

namespace gear::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BitsRespectsWidth) {
  Rng rng(7);
  for (int w = 0; w <= 64; ++w) {
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t v = rng.bits(w);
      if (w < 64) {
        EXPECT_LT(v, 1ULL << w) << "width " << w;
      }
    }
  }
}

TEST(Rng, BitsZeroWidthIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.bits(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, SubstreamsAreDecorrelated) {
  Rng a = Rng::substream(1, "alpha");
  Rng b = Rng::substream(1, "beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SubstreamDeterministic) {
  Rng a = Rng::substream(99, "x");
  Rng b = Rng::substream(99, "x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Fnv1a, KnownValues) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole, a, b;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Histogram, BinningAndTotals) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.6);
  h.add(-1.0);
  h.add(11.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.5);
}

TEST(SparseHistogram, MeanAndMeanAbs) {
  SparseHistogram h;
  h.add(-4, 1);
  h.add(0, 2);
  h.add(4, 1);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean_abs(), 2.0);
  EXPECT_EQ(h.min_key(), -4);
  EXPECT_EQ(h.max_key(), 4);
  EXPECT_DOUBLE_EQ(h.fraction_zero(), 0.5);
}

TEST(SparseHistogram, EmptyDefaults) {
  SparseHistogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_zero(), 1.0);
  EXPECT_EQ(h.count(3), 0u);
}

TEST(Distributions, UniformWidthRespected) {
  auto src = make_uniform(12, 99);
  for (int i = 0; i < 500; ++i) {
    const auto [a, b] = src->next();
    EXPECT_LT(a, 1ULL << 12);
    EXPECT_LT(b, 1ULL << 12);
  }
}

TEST(Distributions, GaussianClampedInRange) {
  auto src = make_gaussian(10, 5);
  for (int i = 0; i < 500; ++i) {
    const auto [a, b] = src->next();
    EXPECT_LE(a, (1ULL << 10) - 1);
    EXPECT_LE(b, (1ULL << 10) - 1);
  }
}

TEST(Distributions, SmallValueSkewsLow) {
  auto uni = make_uniform(16, 4);
  auto small = make_small_value(16, 4);
  double mean_u = 0, mean_s = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    mean_u += static_cast<double>(uni->next().a);
    mean_s += static_cast<double>(small->next().a);
  }
  EXPECT_LT(mean_s / n, mean_u / n * 0.7);
}

TEST(Distributions, TraceSourceCycles) {
  TraceSource src(8, {{1, 2}, {3, 4}}, "t");
  EXPECT_EQ(src.next().a, 1u);
  EXPECT_EQ(src.next().a, 3u);
  EXPECT_EQ(src.next().a, 1u);  // wrapped
  EXPECT_EQ(src.name(), "t");
  EXPECT_EQ(src.size(), 2u);
}

TEST(Bootstrap, MeanCiCoversTruth) {
  Rng rng(21);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) samples.push_back(rng.normal(5.0, 1.0));
  Rng boot(22);
  const auto ci = bootstrap_mean_ci(samples, 500, 0.95, boot);
  EXPECT_TRUE(ci.contains(5.0)) << ci.lo << " .. " << ci.hi;
  EXPECT_LT(ci.hi - ci.lo, 0.5);
}

TEST(Bootstrap, WilsonBasics) {
  const auto ci = wilson_ci(50, 100);
  EXPECT_NEAR(ci.point, 0.5, 1e-12);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_GT(ci.lo, 0.35);
  EXPECT_LT(ci.hi, 0.65);
}

TEST(Bootstrap, WilsonEdgeCases) {
  const auto zero = wilson_ci(0, 1000);
  EXPECT_DOUBLE_EQ(zero.point, 0.0);
  EXPECT_GE(zero.lo, 0.0);
  EXPECT_LT(zero.hi, 0.01);
  const auto one = wilson_ci(1000, 1000);
  EXPECT_DOUBLE_EQ(one.point, 1.0);
  EXPECT_GT(one.lo, 0.99);
  EXPECT_LE(one.hi, 1.0);
}

TEST(Bootstrap, WilsonCoverageSweep) {
  // Empirical check: the 95% Wilson interval should cover the true p in
  // roughly 95% of repeated binomial experiments.
  Rng rng(31);
  const double p = 0.03;
  int covered = 0;
  const int reps = 300;
  for (int r = 0; r < reps; ++r) {
    std::uint64_t hits = 0;
    const std::uint64_t trials = 2000;
    for (std::uint64_t t = 0; t < trials; ++t) hits += rng.flip(p) ? 1u : 0u;
    if (wilson_ci(hits, trials).contains(p)) {
      ++covered;
    }
  }
  EXPECT_GT(covered, static_cast<int>(reps * 0.88));
}

}  // namespace
}  // namespace gear::stats
