// GeAr functional-model tests: paper worked examples, detection-signal
// soundness, exhaustive small-N properties, parameterized sweeps.
#include <gtest/gtest.h>

#include <tuple>

#include "core/adder.h"
#include "core/config.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

TEST(GeArAdder, ExactWhenNoCarryCrossesBoundary) {
  const GeArAdder adder(GeArConfig::must(12, 4, 4));
  // Operands with no carry chains at all.
  EXPECT_EQ(adder.add_value(0x0A5, 0x050), 0x0A5u + 0x050u);
  EXPECT_EQ(adder.add_value(0, 0), 0u);
  EXPECT_EQ(adder.add_value(0xFFF, 0), 0xFFFu);
}

TEST(GeArAdder, PaperFig3ErrorCase) {
  // N=12, R=4, P=4: error requires prediction window [7:4] all-propagate
  // and a real carry into bit 4. a = 0x0F0, b = 0x010: bits [7:4] are
  // 1111/0001 -> propagate fails at bits 5..7? (1111 ^ 0001 = 1110) not
  // all-propagate... construct a clean case instead:
  // a[3:0]=1000, b[3:0]=1000 -> generate at bit 3 (carry into 4).
  // a[7:4]=1010, b[7:4]=0101 -> all-propagate.
  const std::uint64_t a = (0b1010ULL << 4) | 0b1000ULL;
  const std::uint64_t b = (0b0101ULL << 4) | 0b1000ULL;
  const GeArAdder adder(GeArConfig::must(12, 4, 4));
  const AddResult r = adder.add(a, b);
  EXPECT_NE(r.sum, a + b);
  EXPECT_TRUE(r.error_detected());
  EXPECT_TRUE(r.subs[1].detect);
  EXPECT_TRUE(r.subs[1].all_propagate);
  EXPECT_TRUE(r.subs[0].carry_out);
  // The missing carry is worth 2^8 at the result (carry into res_lo=8).
  EXPECT_EQ((a + b) - r.sum, 1ULL << 8);
}

TEST(GeArAdder, FirstSubAdderAlwaysExactInLowBits) {
  const GeArAdder adder(GeArConfig::must(12, 4, 4));
  stats::Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    const std::uint64_t sum = adder.add_value(a, b);
    EXPECT_EQ(sum & 0xFF, (a + b) & 0xFF);
  }
}

TEST(GeArAdder, ExactConfigDegenerates) {
  // k=1 (L == N) degenerates to an exact adder for any (R, P) split.
  stats::Rng rng(18);
  for (int r : {1, 7, 15}) {
    const GeArAdder exact(GeArConfig::must(16, r, 16 - r));
    ASSERT_TRUE(exact.config().is_exact());
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t a = rng.bits(16);
      const std::uint64_t b = rng.bits(16);
      EXPECT_EQ(exact.add_value(a, b), a + b);
    }
  }
}

TEST(GeArAdder, ApproxNeverExceedsExact) {
  // GeAr errors are always missing carries: approx <= exact.
  stats::Rng rng(19);
  for (const auto& cfg : GeArConfig::enumerate(14)) {
    const GeArAdder adder(cfg);
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t a = rng.bits(14);
      const std::uint64_t b = rng.bits(14);
      EXPECT_LE(adder.add_value(a, b), a + b) << cfg.name();
    }
  }
}

TEST(GeArAdder, ErrorIsSumOfMissingRegionCarries) {
  // Every deviation decomposes into missing carry-ins at result-region
  // boundaries: exact - approx is a sum of distinct region offsets 2^res_lo
  // ... possibly reduced by a lost wrap; at minimum it is non-negative and
  // bounded by the sum of all boundary weights.
  const GeArConfig cfg = GeArConfig::must(12, 2, 2);
  const GeArAdder adder(cfg);
  std::uint64_t bound = 0;
  for (int j = 1; j < cfg.k(); ++j) bound += 1ULL << cfg.sub(j).res_lo;
  stats::Rng rng(20);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    const std::uint64_t diff = (a + b) - adder.add_value(a, b);
    EXPECT_LE(diff, bound);
  }
}

TEST(GeArAdder, DetectImpliesLowestErrorCaught) {
  // If the output is wrong, the detect flag of the lowest erroneous
  // sub-adder must fire (no silent errors).
  stats::Rng rng(21);
  for (const auto& cfg : GeArConfig::enumerate(12)) {
    const GeArAdder adder(cfg);
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t a = rng.bits(12);
      const std::uint64_t b = rng.bits(12);
      const AddResult r = adder.add(a, b);
      if (r.sum != a + b) {
        EXPECT_TRUE(r.error_detected())
            << cfg.name() << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(GeArAdder, NoFalseAlarmOnExhaustiveSmall) {
  // detect=0 for every sub-adder implies the result is exact (exhaustive
  // over an 8-bit config).
  const GeArAdder adder(GeArConfig::must(8, 2, 2));
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const AddResult r = adder.add(a, b);
      if (!r.error_detected()) {
        EXPECT_EQ(r.sum, a + b) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(GeArAdder, AddValueMatchesAddSum) {
  stats::Rng rng(22);
  for (const auto& cfg : GeArConfig::enumerate(16)) {
    const GeArAdder adder(cfg);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t a = rng.bits(16);
      const std::uint64_t b = rng.bits(16);
      EXPECT_EQ(adder.add_value(a, b), adder.add(a, b).sum) << cfg.name();
    }
  }
}

TEST(GeArAdder, OperandsMaskedToWidth) {
  const GeArAdder adder(GeArConfig::must(8, 2, 2));
  EXPECT_EQ(adder.add_value(0xFFFFFF00, 0xFFFFFF00), 0u);
  EXPECT_EQ(adder.exact(0xFFFFFF01, 2), 3u);
}

// ---- Parameterized sweep: relaxed configs behave like truncated strict.

class RelaxedSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RelaxedSweep, ErrorsOnlyFromBoundaryCarries) {
  const auto [n, r] = GetParam();
  stats::Rng rng(23);
  for (const auto& cfg : GeArConfig::enumerate_relaxed_r(n, r)) {
    const GeArAdder adder(cfg);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t a = rng.bits(n);
      const std::uint64_t b = rng.bits(n);
      EXPECT_LE(adder.add_value(a, b), a + b) << cfg.name();
      // Low L bits always exact.
      const std::uint64_t mask = (1ULL << cfg.l()) - 1;
      EXPECT_EQ(adder.add_value(a, b) & mask, (a + b) & mask) << cfg.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllR, RelaxedSweep,
                         ::testing::Combine(::testing::Values(12, 16),
                                            ::testing::Values(1, 2, 3, 4, 8)));

}  // namespace
}  // namespace gear::core
