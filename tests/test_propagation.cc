// Error-propagation bound tests: closed forms, and the bounds hold
// against simulated adder chains and trees.
#include <gtest/gtest.h>

#include "adders/gear_adapter.h"
#include "analysis/propagation.h"
#include "core/error_model.h"
#include "stats/rng.h"

namespace gear::analysis {
namespace {

TEST(Propagation, ClosedForms) {
  EXPECT_DOUBLE_EQ(composed_error_bound(0.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(composed_error_bound(1.0, 1), 1.0);
  EXPECT_NEAR(composed_error_bound(0.01, 1), 0.01, 1e-12);
  EXPECT_NEAR(composed_error_bound(0.01, 2), 1 - 0.99 * 0.99, 1e-12);
  EXPECT_EQ(chain_adds(10), 9u);
  EXPECT_EQ(tree_adds(16), 15u);
  EXPECT_EQ(chain_adds(0), 0u);
  EXPECT_DOUBLE_EQ(composed_med(7.5, 4), 30.0);
}

TEST(Propagation, BoundMonotoneInBoth) {
  EXPECT_LT(composed_error_bound(0.01, 5), composed_error_bound(0.01, 50));
  EXPECT_LT(composed_error_bound(0.001, 50), composed_error_bound(0.01, 50));
  EXPECT_LE(composed_error_bound(0.5, 1000), 1.0);
}

TEST(Propagation, ChainSimulationRespectsBound) {
  // Accumulate `terms` random 8-bit values in a 16-bit GeAr accumulator;
  // the final total being wrong is at most the composed bound.
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const adders::GearAdapter adder(cfg);
  const double p = core::exact_error_probability(cfg);
  stats::Rng rng(21);
  const int terms = 16;
  const int trials = 20000;
  int wrong = 0;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t acc = 0, exact = 0;
    for (int i = 0; i < terms; ++i) {
      const std::uint64_t v = rng.bits(8);
      acc = adder.add(acc, v) & 0xFFFF;
      exact = (exact + v) & 0xFFFF;
    }
    if (acc != exact) ++wrong;
  }
  const double rate = static_cast<double>(wrong) / trials;
  // Upper bound with slack for sampling noise; the i.i.d. model uses
  // uniform 16-bit operands, chains use small accumulators -> the bound
  // is conservative.
  EXPECT_LE(rate, composed_error_bound(p, chain_adds(terms + 1)) + 0.02);
}

TEST(Propagation, TreeSimulationRespectsBound) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const adders::GearAdapter adder(cfg);
  const double p = core::exact_error_probability(cfg);
  stats::Rng rng(22);
  const int leaves = 16;
  const int trials = 20000;
  int wrong = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint64_t> approx, exact;
    for (int i = 0; i < leaves; ++i) {
      const std::uint64_t v = rng.bits(10);
      approx.push_back(v);
      exact.push_back(v);
    }
    while (approx.size() > 1) {
      std::vector<std::uint64_t> na, ne;
      for (std::size_t i = 0; i + 1 < approx.size(); i += 2) {
        na.push_back(adder.add(approx[i], approx[i + 1]) & 0xFFFF);
        ne.push_back((exact[i] + exact[i + 1]) & 0xFFFF);
      }
      approx = std::move(na);
      exact = std::move(ne);
    }
    if (approx[0] != exact[0]) ++wrong;
  }
  const double rate = static_cast<double>(wrong) / trials;
  EXPECT_LE(rate, composed_error_bound(p, tree_adds(leaves)) + 0.02);
  EXPECT_GT(rate, 0.0);  // errors really do compose
}

}  // namespace
}  // namespace gear::analysis
