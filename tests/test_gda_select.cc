// GDA runtime carry-select tests: the functional mux state must match
// the gate-level circuit's "cfg" bus bit for bit.
#include <gtest/gtest.h>

#include "adders/gda.h"
#include "core/bitvec.h"
#include "netlist/circuits.h"
#include "stats/rng.h"

namespace gear::adders {
namespace {

TEST(GdaSelect, DefaultIsAllPrediction) {
  GdaAdder gda(16, 4, 4);
  ASSERT_EQ(gda.ripple_select().size(), 3u);
  for (bool r : gda.ripple_select()) EXPECT_FALSE(r);
  EXPECT_TRUE(gda.gear_equivalent().has_value());
}

TEST(GdaSelect, FullyExactMode) {
  GdaAdder gda(16, 4, 4);
  gda.set_fully_exact();
  EXPECT_FALSE(gda.gear_equivalent().has_value());
  EXPECT_EQ(gda.max_carry_chain(), 16);
  stats::Rng rng(131);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    EXPECT_EQ(gda.add(a, b), a + b);
  }
}

TEST(GdaSelect, EveryMuxPatternMatchesCircuitExhaustive) {
  const netlist::Netlist nl = netlist::build_gda(8, 2, 2);
  GdaAdder gda(8, 2, 2);
  for (std::uint64_t pattern = 0; pattern < 8; ++pattern) {
    std::vector<bool> sel(3);
    core::BitVec cfg(3);
    for (int i = 0; i < 3; ++i) {
      sel[static_cast<std::size_t>(i)] = (pattern >> i) & 1ULL;
      cfg.set_bit(i, (pattern >> i) & 1ULL);
    }
    gda.set_ripple_select(sel);
    for (std::uint64_t a = 0; a < 256; a += 3) {
      for (std::uint64_t b = 0; b < 256; b += 5) {
        const auto out = nl.simulate(
            {{"a", core::BitVec(8, a)}, {"b", core::BitVec(8, b)}, {"cfg", cfg}});
        ASSERT_EQ(out.at("sum").to_u64(), gda.add(a, b))
            << "pattern=" << pattern << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(GdaSelect, GracefulDegradationIsMonotone) {
  // Turning boundaries to ripple one by one (LSB first) can only reduce
  // the number of wrong results.
  stats::Rng rng(132);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (int i = 0; i < 20000; ++i) ops.emplace_back(rng.bits(16), rng.bits(16));
  GdaAdder gda(16, 2, 2);
  int prev_errors = 1 << 30;
  std::vector<bool> sel(gda.ripple_select().size(), false);
  for (std::size_t upto = 0; upto <= sel.size(); ++upto) {
    if (upto > 0) sel[upto - 1] = true;
    gda.set_ripple_select(sel);
    int errors = 0;
    for (const auto& [a, b] : ops) {
      if (gda.add(a, b) != a + b) ++errors;
    }
    EXPECT_LE(errors, prev_errors) << "boundaries rippled: " << upto;
    prev_errors = errors;
  }
  EXPECT_EQ(prev_errors, 0);
}

TEST(GdaSelect, MaxChainTracksRuns) {
  GdaAdder gda(16, 4, 4);
  EXPECT_EQ(gda.max_carry_chain(), 8);  // prediction mode: mb + mc
  // Rippling the middle boundary chains two blocks onto the prediction:
  // pred(4) + block + block = 12.
  gda.set_ripple_select({false, true, false});
  EXPECT_EQ(gda.max_carry_chain(), 12);
  gda.set_fully_exact();
  EXPECT_EQ(gda.max_carry_chain(), 16);
}

}  // namespace
}  // namespace gear::adders
