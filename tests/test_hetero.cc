// Heterogeneous (per-segment) GeAr configurations — extension tests.
#include <gtest/gtest.h>

#include "core/adder.h"
#include "core/config.h"
#include "core/correction.h"
#include "core/coverage.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "obs/metrics.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

using Segment = GeArConfig::Segment;

GeArConfig msb_protected_16() {
  // Low 4 bits exact window, then segments with prediction budget shifted
  // toward the MSB: (r=4,p=1), (r=4,p=2), (r=4,p=5). Total window bits =
  // 4+5+6+9 = 24, the same carry-hardware budget as uniform GeAr(4,4).
  auto cfg = GeArConfig::make_custom(16, 4, {{4, 1}, {4, 2}, {4, 5}});
  EXPECT_TRUE(cfg.has_value());
  return *cfg;
}

TEST(Hetero, ValidationRules) {
  EXPECT_TRUE(GeArConfig::make_custom(16, 4, {{4, 2}, {4, 4}, {4, 6}}));
  EXPECT_TRUE(GeArConfig::make_custom(12, 6, {{3, 3}, {3, 3}}));
  // Segments must tile [l0, N).
  EXPECT_FALSE(GeArConfig::make_custom(16, 4, {{4, 2}, {4, 4}}));
  EXPECT_FALSE(GeArConfig::make_custom(16, 4, {{4, 2}, {4, 4}, {8, 6}}));
  // pred must be >= 1 and window must not start below bit 0.
  EXPECT_FALSE(GeArConfig::make_custom(16, 4, {{4, 0}, {4, 4}, {4, 6}}));
  EXPECT_FALSE(GeArConfig::make_custom(16, 4, {{4, 8}, {4, 4}, {4, 6}}));
  // Window starts must be non-decreasing: p_{j+1} <= p_j + r_{j+1}.
  EXPECT_FALSE(GeArConfig::make_custom(16, 4, {{4, 2}, {4, 7}, {4, 6}}));
}

TEST(Hetero, GeometryAccessors) {
  const GeArConfig cfg = msb_protected_16();
  EXPECT_TRUE(cfg.is_custom());
  EXPECT_FALSE(cfg.is_strict());
  EXPECT_EQ(cfg.k(), 4);
  EXPECT_EQ(cfg.sub(1).prediction_len(), 1);
  EXPECT_EQ(cfg.sub(3).prediction_len(), 5);
  EXPECT_EQ(cfg.sub(3).win_lo, 7);
  EXPECT_EQ(cfg.sub(3).res_hi, 15);
  EXPECT_EQ(cfg.max_carry_chain(), 9);
  EXPECT_NE(cfg.name().find("GeAr-custom"), std::string::npos);
}

TEST(Hetero, AdderBasicProperties) {
  const GeArAdder adder(msb_protected_16());
  stats::Rng rng(121);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const AddResult r = adder.add(a, b);
    EXPECT_LE(r.sum, a + b);
    if (r.sum != a + b) {
      EXPECT_TRUE(r.error_detected());
    }
  }
}

TEST(Hetero, FullCorrectionExact) {
  const Corrector corr(msb_protected_16(), Corrector::all_enabled());
  stats::Rng rng(122);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    EXPECT_EQ(corr.add(a, b).sum, a + b);
  }
}

TEST(Hetero, ExactDpMatchesExhaustiveSmall) {
  for (auto cfg : {GeArConfig::make_custom(10, 4, {{3, 2}, {3, 4}}),
                   GeArConfig::make_custom(10, 2, {{2, 1}, {3, 2}, {3, 3}}),
                   GeArConfig::make_custom(9, 3, {{3, 2}, {3, 3}})}) {
    ASSERT_TRUE(cfg);
    EXPECT_NEAR(exact_error_probability(*cfg), exhaustive_error_probability(*cfg),
                1e-12)
        << cfg->name();
    // paper_error_probability routes custom configs to the exact DP.
    EXPECT_DOUBLE_EQ(paper_error_probability(*cfg),
                     exact_error_probability(*cfg));
  }
}

TEST(Hetero, AnalyticMedMatchesExhaustive) {
  auto cfg = GeArConfig::make_custom(10, 4, {{3, 2}, {3, 4}});
  ASSERT_TRUE(cfg);
  EXPECT_NEAR(analytic_med(*cfg), exhaustive_med(*cfg), 1e-9);
}

TEST(Hetero, CircuitMatchesModel) {
  const GeArConfig cfg = msb_protected_16();
  const netlist::Netlist nl = netlist::build_gear(cfg);
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
  const GeArAdder model(cfg);
  stats::Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    ASSERT_EQ(nl.simulate_add(a, b), model.add_value(a, b));
  }
}

TEST(Hetero, MsbProtectionBeatsUniformAtEqualArea) {
  // The MSB-protected layout spends its prediction bits where the error
  // weight is; compare MED against the uniform GeAr with the same total
  // window bits (area proxy).
  const GeArConfig hetero = msb_protected_16();
  int hetero_bits = 0;
  for (const auto& s : hetero.layout()) hetero_bits += s.window_len();
  const GeArConfig uniform = GeArConfig::must(16, 4, 4);  // 8+8+8 = 24 bits
  int uniform_bits = 0;
  for (const auto& s : uniform.layout()) uniform_bits += s.window_len();
  EXPECT_EQ(hetero_bits, uniform_bits);  // same carry hardware budget

  EXPECT_LT(analytic_med(hetero), analytic_med(uniform));
  // Monte-Carlo confirms the MED ordering end to end.
  stats::Rng r1(124), r2(124);
  const auto h = mc_error_distribution(hetero, 200000, r1);
  const auto u = mc_error_distribution(uniform, 200000, r2);
  EXPECT_LT(-h.mean(), -u.mean());
}

TEST(Hetero, NoFamilyClaimsCustomConfigs) {
  const GeArConfig cfg = msb_protected_16();
  for (auto family :
       {AdderFamily::kAcaI, AdderFamily::kEtaII, AdderFamily::kAcaII,
        AdderFamily::kGda, AdderFamily::kGearStrict, AdderFamily::kGearRelaxed}) {
    EXPECT_FALSE(family_supports(family, cfg));
  }
}

TEST(Hetero, EqualityDistinguishesLayouts) {
  auto a = GeArConfig::make_custom(16, 4, {{4, 2}, {4, 4}, {4, 6}});
  auto b = GeArConfig::make_custom(16, 4, {{4, 2}, {4, 6}, {4, 6}});
  auto c = GeArConfig::make_custom(16, 4, {{4, 2}, {4, 4}, {4, 6}});
  ASSERT_TRUE(a && b && c);
  EXPECT_TRUE(*a == *c);
  EXPECT_FALSE(*a == *b);
}

TEST(Hetero, UniformCustomBitIdenticalToStrictTwin) {
  // A uniform-segment custom spelling of GeAr(16,4,4) canonicalizes onto
  // the strict config itself, so every error figure — the paper
  // probability and the full exact PMF — is the same object's, bit for
  // bit, and the config compares equal to its twin.
  const auto twin = GeArConfig::make_custom(16, 8, {{4, 4}, {4, 4}});
  ASSERT_TRUE(twin);
  const GeArConfig strict = GeArConfig::must(16, 4, 4);
  EXPECT_FALSE(twin->is_custom());
  EXPECT_EQ(*twin, strict);
  EXPECT_EQ(paper_error_probability(*twin), paper_error_probability(strict));
  EXPECT_EQ(exact_error_distribution(*twin).entries(),
            exact_error_distribution(strict).entries());

  // Same for a clamped-top relaxed twin.
  const auto rel_twin = GeArConfig::make_custom(16, 10, {{6, 2}});
  const auto relaxed = GeArConfig::make_relaxed(16, 8, 2);
  ASSERT_TRUE(rel_twin && relaxed);
  EXPECT_FALSE(rel_twin->is_custom());
  EXPECT_EQ(*rel_twin, *relaxed);
  EXPECT_EQ(paper_error_probability(*rel_twin),
            paper_error_probability(*relaxed));
  EXPECT_EQ(exact_error_distribution(*rel_twin).entries(),
            exact_error_distribution(*relaxed).entries());
}

TEST(Hetero, ExactDpPathTakenForNonUniformOnly) {
  // paper_error_probability routes genuinely heterogeneous layouts to the
  // exact carry DP and everything uniform (including canonicalized custom
  // spellings) to the paper's inclusion-exclusion — audited through the
  // deterministic obs channel.
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs macros compiled out";
  obs::set_runtime_enabled_for_testing(true);
  const auto dp_before = obs::global().counter("error_model/paper_exact_dp");
  const auto ie_before = obs::global().counter("error_model/paper_ie");

  paper_error_probability(msb_protected_16());  // non-uniform: exact DP
  EXPECT_EQ(obs::global().counter("error_model/paper_exact_dp"),
            dp_before + 1);
  EXPECT_EQ(obs::global().counter("error_model/paper_ie"), ie_before);

  // Uniform spelling: canonicalized to strict, takes the IE path.
  paper_error_probability(*GeArConfig::make_custom(16, 8, {{4, 4}, {4, 4}}));
  EXPECT_EQ(obs::global().counter("error_model/paper_exact_dp"),
            dp_before + 1);
  EXPECT_EQ(obs::global().counter("error_model/paper_ie"), ie_before + 1);
  obs::set_runtime_enabled_for_testing(std::nullopt);
}

}  // namespace
}  // namespace gear::core
