// Event-driven timing simulator tests.
#include <gtest/gtest.h>

#include "core/config.h"
#include "netlist/circuits.h"
#include "netlist/event_sim.h"
#include "netlist/fault.h"
#include "stats/rng.h"

namespace gear::netlist {
namespace {

TEST(EventSim, FinalValuesMatchZeroDelaySim) {
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  stats::Rng rng(51);
  std::uint64_t a0 = 0, b0 = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a1 = rng.bits(8);
    const std::uint64_t b1 = rng.bits(8);
    const auto res = sim.step_add(a0, b0, a1, b1);
    ASSERT_EQ(res.outputs.at("sum").to_u64(), a1 + b1);
    a0 = a1;
    b0 = b1;
  }
}

TEST(EventSim, NoInputChangeNoActivity) {
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  const auto res = sim.step_add(42, 17, 42, 17);
  EXPECT_EQ(res.transitions, 0u);
  EXPECT_EQ(res.glitches, 0u);
  EXPECT_DOUBLE_EQ(res.settle_time, 0.0);
}

TEST(EventSim, WorstCaseCarryRippleSettleTime) {
  // 0xFF + 0x01 from (0,0): the carry ripples the full chain.
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  const auto res = sim.step_add(0, 0, 0xFF, 0x01);
  // At least one carry hop per bit beyond the first.
  GateDelays d;
  EXPECT_GE(res.settle_time, d.fa_carry * 7);
  EXPECT_EQ(res.outputs.at("sum").to_u64(), 0x100u);
}

TEST(EventSim, GearSettlesFasterThanRcaOnAverage) {
  const Netlist rca = build_rca(16);
  const Netlist gear =
      build_gear(core::GeArConfig::must(16, 4, 4), {.with_detection = false});
  EventSimulator sim_rca(rca);
  EventSimulator sim_gear(gear);
  stats::Rng r1(52), r2(52);
  const auto p_rca = sim_rca.profile(2000, r1);
  const auto p_gear = sim_gear.profile(2000, r2);
  // Dynamic worst case mirrors the static story: GeAr's chains are half
  // the RCA's.
  EXPECT_LT(p_gear.max_settle, p_rca.max_settle);
}

TEST(EventSim, GlitchesBoundedByTransitions) {
  const Netlist nl = build_cla(8);
  EventSimulator sim(nl);
  stats::Rng rng(53);
  std::uint64_t a0 = 0, b0 = 0;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t a1 = rng.bits(8);
    const std::uint64_t b1 = rng.bits(8);
    const auto res = sim.step_add(a0, b0, a1, b1);
    EXPECT_LE(res.glitches, res.transitions);
    a0 = a1;
    b0 = b1;
  }
}

TEST(EventSim, PrefixTreeGlitchesMoreThanChain) {
  // Kogge-Stone's reconvergent paths glitch; a ripple chain with uniform
  // per-stage delay is glitch-light.
  EventSimulator rca(build_rca(16));
  // Share construction across the test body to keep netlists alive.
  const Netlist cla_nl = build_cla(16);
  EventSimulator cla(cla_nl);
  stats::Rng r1(54), r2(54);
  const auto p_rca = rca.profile(1500, r1);
  const auto p_cla = cla.profile(1500, r2);
  EXPECT_GT(p_cla.mean_glitches, p_rca.mean_glitches);
}

TEST(EventSim, ProfileDeterministic) {
  const Netlist nl = build_etaii(8, 2);
  EventSimulator sim(nl);
  stats::Rng a(55), b(55);
  const auto pa = sim.profile(200, a);
  const auto pb = sim.profile(200, b);
  EXPECT_DOUBLE_EQ(pa.mean_settle, pb.mean_settle);
  EXPECT_DOUBLE_EQ(pa.mean_transitions, pb.mean_transitions);
}

namespace {
std::map<std::string, core::BitVec> operands(int n, std::uint64_t a,
                                             std::uint64_t b) {
  return {{"a", core::BitVec(n, a)}, {"b", core::BitVec(n, b)}};
}
}  // namespace

TEST(EventSim, TransientAfterQuiescenceMatchesFunctionalFlip) {
  // A strike far past settle is the post-quiescence SEU the functional
  // simulator models: both must agree net by net on the outputs.
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  const NetId sum0 = nl.outputs().front().nets[0];
  const auto fault = FaultSpec::transient(sum0, /*time=*/1000.0);
  const auto ev = sim.step_with_fault(operands(8, 0, 0), operands(8, 3, 5), fault);
  const auto fn = simulate_with_fault(nl, fault, operands(8, 3, 5));
  EXPECT_EQ(ev.outputs.at("sum").to_u64(), fn.at("sum").to_u64());
  EXPECT_TRUE(ev.corrupted);
  EXPECT_NE(ev.outputs.at("sum").to_u64(), 8u);  // exact sum masked out
}

TEST(EventSim, TransientDuringSettlingCanBeElectricallyMasked) {
  // Strike the MSB sum net at t=0 of 0x00+0x00 -> 0xFF+0x01: its driver
  // re-evaluates when the input edge (and later the rippling carry)
  // arrives, overwriting the flip — the upset never reaches quiescence.
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  const NetId sum7 = nl.outputs().front().nets[7];
  const auto res = sim.step_with_fault(operands(8, 0, 0), operands(8, 0xFF, 0x01),
                                       FaultSpec::transient(sum7, 0.0));
  EXPECT_FALSE(res.corrupted);
  EXPECT_EQ(res.outputs.at("sum").to_u64(), 0x100u);
}

TEST(EventSim, TransientAfterSettleOnSameNetAlwaysCorrupts) {
  // Same net as above, but struck after quiescence: no driver activity is
  // left to repair it, so the flip sticks.
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  const NetId sum7 = nl.outputs().front().nets[7];
  const auto res = sim.step_with_fault(operands(8, 0, 0), operands(8, 0xFF, 0x01),
                                       FaultSpec::transient(sum7, 500.0));
  EXPECT_TRUE(res.corrupted);
  EXPECT_NE(res.outputs.at("sum").to_u64(), 0x100u);
}

TEST(EventSim, StuckAtMatchesFunctionalSimulation) {
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  const NetId sum0 = nl.outputs().front().nets[0];
  for (const bool v : {false, true}) {
    const auto fault = FaultSpec::stuck_at(sum0, v);
    const auto ev =
        sim.step_with_fault(operands(8, 1, 2), operands(8, 42, 17), fault);
    const auto fn = simulate_with_fault(nl, fault, operands(8, 42, 17));
    EXPECT_EQ(ev.outputs.at("sum").to_u64(), fn.at("sum").to_u64()) << v;
  }
}

TEST(EventSim, FaultFreeStepWithFaultIsStep) {
  // An inactive sentinel is not expressible; instead check that a
  // transient on a net the vectors never observe leaves corrupted unset
  // and outputs exact. Flipping sum[7] when the true result has bit 7
  // clear corrupts; flipping after an identical-input step (no activity)
  // also corrupts — so use masking via reconvergence-free equality:
  // stuck-at the good value is a no-op.
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  const NetId sum0 = nl.outputs().front().nets[0];
  // 2 + 2 = 4: sum[0] good value is 0; stuck-at-0 changes nothing.
  const auto res = sim.step_with_fault(operands(8, 0, 0), operands(8, 2, 2),
                                       FaultSpec::stuck_at(sum0, false));
  EXPECT_FALSE(res.corrupted);
  EXPECT_EQ(res.outputs.at("sum").to_u64(), 4u);
}

}  // namespace
}  // namespace gear::netlist
