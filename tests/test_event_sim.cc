// Event-driven timing simulator tests.
#include <gtest/gtest.h>

#include "core/config.h"
#include "netlist/circuits.h"
#include "netlist/event_sim.h"
#include "stats/rng.h"

namespace gear::netlist {
namespace {

TEST(EventSim, FinalValuesMatchZeroDelaySim) {
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  stats::Rng rng(51);
  std::uint64_t a0 = 0, b0 = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a1 = rng.bits(8);
    const std::uint64_t b1 = rng.bits(8);
    const auto res = sim.step_add(a0, b0, a1, b1);
    ASSERT_EQ(res.outputs.at("sum").to_u64(), a1 + b1);
    a0 = a1;
    b0 = b1;
  }
}

TEST(EventSim, NoInputChangeNoActivity) {
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  const auto res = sim.step_add(42, 17, 42, 17);
  EXPECT_EQ(res.transitions, 0u);
  EXPECT_EQ(res.glitches, 0u);
  EXPECT_DOUBLE_EQ(res.settle_time, 0.0);
}

TEST(EventSim, WorstCaseCarryRippleSettleTime) {
  // 0xFF + 0x01 from (0,0): the carry ripples the full chain.
  const Netlist nl = build_rca(8);
  EventSimulator sim(nl);
  const auto res = sim.step_add(0, 0, 0xFF, 0x01);
  // At least one carry hop per bit beyond the first.
  GateDelays d;
  EXPECT_GE(res.settle_time, d.fa_carry * 7);
  EXPECT_EQ(res.outputs.at("sum").to_u64(), 0x100u);
}

TEST(EventSim, GearSettlesFasterThanRcaOnAverage) {
  const Netlist rca = build_rca(16);
  const Netlist gear =
      build_gear(core::GeArConfig::must(16, 4, 4), {.with_detection = false});
  EventSimulator sim_rca(rca);
  EventSimulator sim_gear(gear);
  stats::Rng r1(52), r2(52);
  const auto p_rca = sim_rca.profile(2000, r1);
  const auto p_gear = sim_gear.profile(2000, r2);
  // Dynamic worst case mirrors the static story: GeAr's chains are half
  // the RCA's.
  EXPECT_LT(p_gear.max_settle, p_rca.max_settle);
}

TEST(EventSim, GlitchesBoundedByTransitions) {
  const Netlist nl = build_cla(8);
  EventSimulator sim(nl);
  stats::Rng rng(53);
  std::uint64_t a0 = 0, b0 = 0;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t a1 = rng.bits(8);
    const std::uint64_t b1 = rng.bits(8);
    const auto res = sim.step_add(a0, b0, a1, b1);
    EXPECT_LE(res.glitches, res.transitions);
    a0 = a1;
    b0 = b1;
  }
}

TEST(EventSim, PrefixTreeGlitchesMoreThanChain) {
  // Kogge-Stone's reconvergent paths glitch; a ripple chain with uniform
  // per-stage delay is glitch-light.
  EventSimulator rca(build_rca(16));
  // Share construction across the test body to keep netlists alive.
  const Netlist cla_nl = build_cla(16);
  EventSimulator cla(cla_nl);
  stats::Rng r1(54), r2(54);
  const auto p_rca = rca.profile(1500, r1);
  const auto p_cla = cla.profile(1500, r2);
  EXPECT_GT(p_cla.mean_glitches, p_rca.mean_glitches);
}

TEST(EventSim, ProfileDeterministic) {
  const Netlist nl = build_etaii(8, 2);
  EventSimulator sim(nl);
  stats::Rng a(55), b(55);
  const auto pa = sim.profile(200, a);
  const auto pb = sim.profile(200, b);
  EXPECT_DOUBLE_EQ(pa.mean_settle, pb.mean_settle);
  EXPECT_DOUBLE_EQ(pa.mean_transitions, pb.mean_transitions);
}

}  // namespace
}  // namespace gear::netlist
