// ApproxService: admission control, tenant isolation, deadlines, error
// budgets, watchdog persistence, shutdown semantics, worker-count
// determinism, and the chaos soak (DESIGN.md §5h).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/watchdog.h"
#include "obs/metrics.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "stats/rng.h"

namespace gear::serve {
namespace {

ServiceOptions manual_options() {
  ServiceOptions options;
  options.workers = 0;  // tests pump explicitly — fully deterministic
  return options;
}

Request make_request(TenantId tenant, std::size_t ops, std::uint64_t seed,
                     int n_bits = 16) {
  Request request;
  request.tenant = tenant;
  stats::Rng rng(seed);
  request.operands.resize(ops);
  for (stats::OperandPair& p : request.operands) {
    p.a = rng.bits(n_bits);
    p.b = rng.bits(n_bits);
  }
  return request;
}

std::uint64_t exact_sum(const stats::OperandPair& p, int n_bits) {
  const std::uint64_t mask =
      n_bits >= 64 ? ~0ULL : ((1ULL << n_bits) - 1);
  return (p.a & mask) + (p.b & mask);
}

TEST(Serve, AddTenantValidatesConfig) {
  ApproxService service(manual_options());
  std::string error;
  // (16-5) % 3 != 0: not a strict GeAr geometry.
  EXPECT_FALSE(service.add_tenant("bad", 16, 3, 2, &error).has_value());
  EXPECT_NE(error.find("GeAr(N=16, R=3, P=2)"), std::string::npos) << error;
  EXPECT_NE(error.find(core::GeArConfig::invalid_reason(16, 3, 2)),
            std::string::npos)
      << error;

  ASSERT_TRUE(service.add_tenant("good", 16, 4, 4).has_value());
  error.clear();
  EXPECT_FALSE(service.add_tenant("good", 16, 4, 4, &error).has_value());
  EXPECT_NE(error.find("already registered"), std::string::npos) << error;
}

TEST(Serve, RejectsWithActionableReasons) {
  ServiceOptions options = manual_options();
  options.queue_cap = 2;
  options.max_request_ops = 64;
  ApproxService service(options);
  TenantSpec spec(*core::GeArConfig::make(16, 4, 4));
  spec.queue_cap = 1;
  const TenantId tenant = *service.add_tenant("t", std::move(spec));

  auto expect_reject = [&](Request request, RejectReason reason) {
    Response resp = service.submit(std::move(request)).get();
    EXPECT_EQ(resp.status, RequestStatus::kRejected);
    EXPECT_EQ(resp.reject_reason, reason)
        << "want " << reject_reason_name(reason) << " got "
        << reject_reason_name(resp.reject_reason);
  };

  expect_reject(make_request(42, 8, 1), RejectReason::kUnknownTenant);
  expect_reject(make_request(tenant, 0, 1), RejectReason::kEmptyRequest);
  expect_reject(make_request(tenant, 65, 1), RejectReason::kOversizedRequest);
  {
    Request request = make_request(tenant, 8, 1);
    request.deadline_ns = 1;  // long past: the process started ns ago
    expect_reject(std::move(request), RejectReason::kDeadlineUnmeetable);
  }
  // Tenant backlog bound (1) trips before the global bound (2).
  auto ok = service.submit(make_request(tenant, 8, 2));
  expect_reject(make_request(tenant, 8, 3), RejectReason::kTenantQueueFull);

  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_TRUE(stats.conservation_ok());
  EXPECT_EQ(stats.rejected_unknown_tenant, 1u);
  const TenantStats& t = stats.tenants[0];
  EXPECT_EQ(t.admitted, 1u);
  EXPECT_EQ(t.rejected, 4u);
  EXPECT_EQ(t.rejected_by_reason[static_cast<int>(RejectReason::kEmptyRequest)],
            1u);
  EXPECT_EQ(
      t.rejected_by_reason[static_cast<int>(RejectReason::kTenantQueueFull)],
      1u);

  service.pump_all();
  EXPECT_EQ(ok.get().status, RequestStatus::kOk);
}

TEST(Serve, GlobalQueueCapSheds) {
  ServiceOptions options = manual_options();
  options.queue_cap = 2;
  ApproxService service(options);
  const TenantId a = *service.add_tenant("a", 16, 4, 4);
  const TenantId b = *service.add_tenant("b", 16, 4, 4);
  auto f1 = service.submit(make_request(a, 8, 1));
  auto f2 = service.submit(make_request(b, 8, 2));
  Response shed = service.submit(make_request(a, 8, 3)).get();
  EXPECT_EQ(shed.reject_reason, RejectReason::kQueueFull);
  service.pump_all();
  EXPECT_EQ(f1.get().status, RequestStatus::kOk);
  EXPECT_EQ(f2.get().status, RequestStatus::kOk);
  EXPECT_TRUE(service.stats().conservation_ok());
}

TEST(Serve, ServesExactSumsWithFullCorrection) {
  ApproxService service(manual_options());
  const TenantId tenant = *service.add_tenant("t", 16, 4, 4);
  Request request = make_request(tenant, 200, 7);
  const std::vector<stats::OperandPair> operands = request.operands;
  auto fut = service.submit(std::move(request));
  EXPECT_EQ(service.pump_all(), 1u);
  const Response resp = fut.get();
  EXPECT_EQ(resp.status, RequestStatus::kOk);
  EXPECT_EQ(resp.operations, 200u);
  EXPECT_EQ(resp.wrong_results, 0u);  // full correction mask => exact
  ASSERT_EQ(resp.sums.size(), operands.size());
  for (std::size_t i = 0; i < operands.size(); ++i) {
    EXPECT_EQ(resp.sums[i], exact_sum(operands[i], 16)) << "op " << i;
  }
}

TEST(Serve, ReportedWrongResultsCoverActualMismatches) {
  // Correction disabled: approximate sums with honest wrong_results.
  ApproxService service(manual_options());
  TenantSpec spec(*core::GeArConfig::make(16, 4, 4));
  spec.correction_mask = 0;
  const TenantId tenant = *service.add_tenant("approx", std::move(spec));
  Request request = make_request(tenant, 512, 11);
  const std::vector<stats::OperandPair> operands = request.operands;
  auto fut = service.submit(std::move(request));
  service.pump_all();
  const Response resp = fut.get();
  EXPECT_EQ(resp.status, RequestStatus::kOk);
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    if (resp.sums[i] != exact_sum(operands[i], 16)) ++mismatches;
  }
  EXPECT_GT(mismatches, 0u);  // GeAr(16,4,4) uncorrected does err
  // The §5h no-silent-corruption invariant: everything wrong is reported.
  EXPECT_EQ(mismatches, resp.wrong_results);
}

TEST(Serve, DeadlineExpiresQueuedRequest) {
  ServiceOptions options = manual_options();
  ApproxService service(options);
  const TenantId tenant = *service.add_tenant("t", 16, 4, 4);
  Request request = make_request(tenant, 64, 3);
  request.deadline_ns = obs::monotonic_now_ns() + 2'000'000;  // 2 ms
  auto fut = service.submit(std::move(request));  // admitted: future deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.pump_all();  // deadline passed while queued
  const Response resp = fut.get();
  EXPECT_EQ(resp.status, RequestStatus::kExpired);
  EXPECT_TRUE(resp.sums.empty());  // cancelled work returns no partials
  EXPECT_EQ(resp.operations, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_TRUE(stats.conservation_ok());
}

TEST(Serve, ErrorBudgetForcesExactServing) {
  ServiceOptions options = manual_options();
  options.slice_ops = 64;
  ApproxService service(options);
  TenantSpec spec(*core::GeArConfig::make(16, 4, 4));
  spec.correction_mask = 0;        // approximate => wrong results accrue
  spec.error_budget_window = 1 << 20;  // never rolls within this test
  spec.error_budget_wrong = 0;     // any wrong result exhausts the budget
  const TenantId tenant = *service.add_tenant("budgeted", std::move(spec));

  Request first = make_request(tenant, 256, 21);
  const std::vector<stats::OperandPair> first_ops = first.operands;
  auto f1 = service.submit(std::move(first));
  service.pump_all();
  const Response r1 = f1.get();
  // The first slice that errs exhausts the budget; later slices of the
  // same request are already forced exact.
  EXPECT_GT(r1.wrong_results, 0u);
  EXPECT_GT(r1.budget_forced_exact_ops, 0u);
  EXPECT_EQ(r1.status, RequestStatus::kDegraded);

  Request second = make_request(tenant, 128, 22);
  const std::vector<stats::OperandPair> second_ops = second.operands;
  auto f2 = service.submit(std::move(second));
  service.pump_all();
  const Response r2 = f2.get();
  // Budget state persists across requests: fully exact now, and visibly so.
  EXPECT_EQ(r2.budget_forced_exact_ops, 128u);
  EXPECT_EQ(r2.wrong_results, 0u);
  EXPECT_EQ(r2.status, RequestStatus::kDegraded);
  for (std::size_t i = 0; i < second_ops.size(); ++i) {
    EXPECT_EQ(r2.sums[i], exact_sum(second_ops[i], 16)) << "op " << i;
  }
}

TEST(Serve, WatchdogPersistsAcrossRequestsAndRecovers) {
  ApproxService service(manual_options());
  TenantSpec spec(*core::GeArConfig::make(16, 4, 4));
  core::DegradationPolicy policy;
  policy.window = 64;
  policy.spike_factor = 4.0;
  policy.safe_mode = core::SafeMode::kExactAdd;
  policy.cooldown_windows = 0;  // latch until reset
  spec.degradation = policy;
  const TenantId tenant = *service.add_tenant("guarded", std::move(spec));

  // Stuck-at-1 detect flag: the detect rate pins at 1.0 >> 4x expected.
  ASSERT_TRUE(service.inject_detect_fault(tenant, {1, true}));
  auto f1 = service.submit(make_request(tenant, 64, 31));
  service.pump_all();
  const Response r1 = f1.get();
  EXPECT_EQ(r1.fallback_events, 1u);  // tripped at the window boundary

  // The watchdog is per-tenant state, not per-request: the next request
  // starts (and stays) in safe mode.
  auto f2 = service.submit(make_request(tenant, 64, 32));
  service.pump_all();
  const Response r2 = f2.get();
  EXPECT_EQ(r2.safe_mode_ops, 64u);
  EXPECT_EQ(r2.status, RequestStatus::kDegraded);
  EXPECT_EQ(r2.wrong_results, 0u);  // kExactAdd safe mode is exact
  EXPECT_TRUE(service.stats().tenants[0].in_safe_mode);

  // Operator recovery: clear the fault and re-arm.
  ASSERT_TRUE(service.clear_detect_fault(tenant));
  ASSERT_TRUE(service.reset_watchdog(tenant));
  auto f3 = service.submit(make_request(tenant, 64, 33));
  service.pump_all();
  const Response r3 = f3.get();
  EXPECT_EQ(r3.safe_mode_ops, 0u);
  EXPECT_EQ(r3.fallback_events, 0u);
  EXPECT_EQ(r3.status, RequestStatus::kOk);
  EXPECT_FALSE(service.stats().tenants[0].in_safe_mode);
}

TEST(Serve, NonDrainStopRejectsBacklogVisibly) {
  ApproxService service(manual_options());
  const TenantId tenant = *service.add_tenant("t", 16, 4, 4);
  auto f1 = service.submit(make_request(tenant, 8, 1));
  auto f2 = service.submit(make_request(tenant, 8, 2));
  service.stop(/*drain=*/false);
  for (auto* f : {&f1, &f2}) {
    const Response resp = f->get();
    EXPECT_EQ(resp.status, RequestStatus::kRejected);
    EXPECT_EQ(resp.reject_reason, RejectReason::kShutdown);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.aborted, 2u);
  EXPECT_TRUE(stats.conservation_ok());
  // Post-stop submissions are shed, not dropped.
  const Response late = service.submit(make_request(tenant, 8, 3)).get();
  EXPECT_EQ(late.reject_reason, RejectReason::kShutdown);
}

TEST(Serve, DrainStopServesManualBacklog) {
  ApproxService service(manual_options());
  const TenantId tenant = *service.add_tenant("t", 16, 4, 4);
  auto fut = service.submit(make_request(tenant, 16, 5));
  service.stop(/*drain=*/true);  // no workers: stop itself pumps
  EXPECT_EQ(fut.get().status, RequestStatus::kOk);
}

TEST(Serve, RecordsPerTenantLatencyHistograms) {
  ApproxService service(manual_options());
  TenantSpec spec(*core::GeArConfig::make(16, 4, 4));
  spec.latency_spec = obs::HistogramSpec{0.0, 1e9, 32};
  const TenantId tenant =
      *service.add_tenant("latency-tenant-serve-test", std::move(spec));
  auto fut = service.submit(make_request(tenant, 32, 9));
  service.pump_all();
  fut.get();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tenants[0].latency_ns.samples(), 1u);
  EXPECT_GE(stats.tenants[0].latency_ns.quantile(0.99),
            stats.tenants[0].latency_ns.quantile(0.5));
  if (obs::enabled()) {
    const auto hist = obs::global().runtime_histogram(
        "serve/latency_ns/latency-tenant-serve-test");
    ASSERT_TRUE(hist.has_value());
    EXPECT_EQ(hist->samples(), 1u);
  }
}

// §5h determinism: identical per-tenant workloads replayed against worker
// counts {1, 2, 8} produce bit-identical response sequences.
TEST(Serve, DeterministicAcrossWorkerCounts) {
  ReplayOptions opt;
  opt.requests_per_client = 12;
  opt.ops_per_request = 128;
  opt.clients_per_tenant = 1;
  opt.window = 6;
  opt.seed = 1234;

  std::vector<std::vector<std::vector<Response>>> runs;
  for (const int workers : {1, 2, 8}) {
    ServiceOptions options;
    options.workers = workers;
    options.slice_ops = 64;
    ApproxService service(options);
    std::vector<TenantId> tenants;
    tenants.push_back(*service.add_tenant("plain", 16, 4, 4));
    TenantSpec guarded(*core::GeArConfig::make(16, 2, 4));
    core::DegradationPolicy policy;
    policy.window = 128;
    policy.spike_factor = 6.0;
    guarded.degradation = policy;
    guarded.error_budget_window = 1024;
    guarded.error_budget_wrong = 8;
    tenants.push_back(*service.add_tenant("guarded", std::move(guarded)));

    std::vector<std::vector<Response>> collected;
    const ReplayReport report = replay(service, tenants, opt, &collected);
    EXPECT_EQ(report.silent_corruptions, 0u) << "workers=" << workers;
    EXPECT_EQ(report.ok + report.degraded,
              opt.requests_per_client * tenants.size());
    EXPECT_TRUE(service.stats().conservation_ok());
    runs.push_back(std::move(collected));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t t = 0; t < runs[0].size(); ++t) {
      ASSERT_EQ(runs[r][t].size(), runs[0][t].size()) << "tenant " << t;
      for (std::size_t i = 0; i < runs[0][t].size(); ++i) {
        EXPECT_TRUE(deterministic_equal(runs[r][t][i], runs[0][t][i]))
            << "run " << r << " tenant " << t << " request " << i;
      }
    }
  }
}

// Chaos soak: transient detect faults + watchdog-tripping spikes injected
// mid-stream into a *running* service. Invariants: zero silent
// corruption, every request resolves exactly once (conservation), visible
// bounded fallback while faulty, full recovery after the burst.
TEST(Serve, ChaosSoakSurvivesMidStreamFaultBursts) {
  ServiceOptions options;
  options.workers = 4;
  options.slice_ops = 128;
  ApproxService service(options);
  std::vector<TenantId> tenants;
  tenants.push_back(*service.add_tenant("steady", 16, 4, 4));
  TenantSpec guarded(*core::GeArConfig::make(16, 4, 4));
  core::DegradationPolicy policy;
  policy.window = 128;
  policy.spike_factor = 4.0;
  policy.safe_mode = core::SafeMode::kExactAdd;
  policy.cooldown_windows = 2;  // self re-arm: chaos keeps re-tripping it
  guarded.degradation = policy;
  guarded.error_budget_window = 2048;
  guarded.error_budget_wrong = 32;
  const TenantId guarded_id =
      *service.add_tenant("guarded", std::move(guarded));
  tenants.push_back(guarded_id);

  ReplayOptions opt;
  opt.requests_per_client = 60;
  opt.ops_per_request = 128;
  opt.clients_per_tenant = 2;
  opt.window = 8;
  opt.seed = 77;

  ReplayReport report;
  std::atomic<bool> done{false};
  std::thread clients([&service, &tenants, &opt, &report, &done] {
    report = replay(service, tenants, opt);
    done.store(true);
  });
  // Fault bursts against the live service: inject, hold, clear, re-arm.
  int bursts = 0;
  while (!done.load() && bursts < 8) {
    service.inject_detect_fault(guarded_id, {1, true});
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    service.clear_detect_fault(guarded_id);
    service.reset_watchdog(guarded_id);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++bursts;
  }
  clients.join();

  EXPECT_EQ(report.silent_corruptions, 0u);
  EXPECT_EQ(report.ok + report.degraded + report.expired +
                report.rejected_final,
            report.requests);
  const ServiceStats mid = service.stats();
  EXPECT_TRUE(mid.conservation_ok());
  // Fallback, if any, is bounded: never more trips than watchdog windows.
  const std::uint64_t guarded_ops = mid.tenants[1].operations;
  EXPECT_LE(mid.tenants[1].fallback_events, guarded_ops / policy.window + 1);

  // Recovery after the last burst: a clean replay sees a healthy service.
  service.clear_detect_fault(guarded_id);
  service.reset_watchdog(guarded_id);
  ReplayOptions after = opt;
  after.requests_per_client = 8;
  after.clients_per_tenant = 1;
  after.seed = 78;
  const ReplayReport recovered = replay(service, tenants, after);
  EXPECT_EQ(recovered.silent_corruptions, 0u);
  EXPECT_EQ(recovered.fallback_events, 0u);
  EXPECT_EQ(recovered.ok + recovered.degraded, after.requests_per_client * 2);
  EXPECT_TRUE(service.stats().conservation_ok());
}

}  // namespace
}  // namespace gear::serve
