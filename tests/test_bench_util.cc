// Benchmark utility helpers: JSON string escaping for the BENCH_*.json
// artifacts (satellite of the PR-3 numeric-edge sweep).
#include <gtest/gtest.h>

#include <string>

#include "bench/bench_util.h"

namespace gear::benchutil {
namespace {

TEST(JsonEscape, PassThroughPlainText) {
  EXPECT_EQ(json_escape("GeAr(16,4,4)"), "GeAr(16,4,4)");
  EXPECT_EQ(json_escape(""), "");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(json_escape("µ-arch"), "µ-arch");
}

TEST(JsonEscape, EscapesMandatoryCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("\r\t\b\f"), "\\r\\t\\b\\f");
}

TEST(JsonEscape, ControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(json_escape(std::string("a\x00z", 3)), "a\\u0000z");
}

TEST(JsonEscape, RoundTripsThroughNaiveParser) {
  // A quote-and-backslash-laden label embedded in a document must keep the
  // document well-formed: unescaped quotes would terminate the string.
  const std::string label = "cfg \"q\" \\ tail";
  const std::string doc = "{\"name\":\"" + json_escape(label) + "\"}";
  // The only unescaped quotes are the four structural ones.
  int structural = 0;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    if (doc[i] == '"' && (i == 0 || doc[i - 1] != '\\')) ++structural;
  }
  EXPECT_EQ(structural, 4);
}

}  // namespace
}  // namespace gear::benchutil
