// Gate-level circuits vs functional models: every generated adder circuit
// must agree bit-for-bit with its bit-level model (exhaustively for small
// widths, randomized at the paper's widths).
#include <gtest/gtest.h>

#include "adders/eta.h"
#include "adders/exact.h"
#include "adders/gda.h"
#include "adders/speculative.h"
#include "core/adder.h"
#include "core/correction.h"
#include "netlist/circuits.h"
#include "stats/rng.h"

namespace gear::netlist {
namespace {

TEST(Circuits, RcaMatchesExhaustive) {
  const Netlist nl = build_rca(6);
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      ASSERT_EQ(nl.simulate_add(a, b), a + b);
    }
  }
}

TEST(Circuits, ClaMatchesExhaustive) {
  const Netlist nl = build_cla(6);
  EXPECT_TRUE(nl.validate().empty());
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      ASSERT_EQ(nl.simulate_add(a, b), a + b);
    }
  }
}

TEST(Circuits, GearMatchesModelExhaustive) {
  for (auto [n, r, p] : {std::tuple{8, 2, 2}, {8, 1, 3}, {8, 2, 4}, {9, 3, 3}}) {
    const auto cfg = core::GeArConfig::must(n, r, p);
    const Netlist nl = build_gear(cfg);
    EXPECT_TRUE(nl.validate().empty());
    const core::GeArAdder model(cfg);
    const std::uint64_t limit = 1ULL << n;
    for (std::uint64_t a = 0; a < limit; ++a) {
      for (std::uint64_t b = 0; b < limit; ++b) {
        ASSERT_EQ(nl.simulate_add(a, b), model.add_value(a, b))
            << cfg.name() << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Circuits, GearErrorFlagsMatchModel) {
  const auto cfg = core::GeArConfig::must(8, 2, 2);
  const Netlist nl = build_gear(cfg);
  const core::GeArAdder model(cfg);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const auto out = nl.simulate(
          {{"a", core::BitVec(8, a)}, {"b", core::BitVec(8, b)}});
      const auto res = model.add(a, b);
      const std::uint64_t err_bits = out.at("err").to_u64();
      for (int j = 0; j < cfg.k(); ++j) {
        ASSERT_EQ((err_bits >> j) & 1, res.subs[static_cast<std::size_t>(j)].detect ? 1u : 0u)
            << "a=" << a << " b=" << b << " j=" << j;
      }
    }
  }
}

TEST(Circuits, GearRandomizedPaperConfigs) {
  stats::Rng rng(81);
  for (auto [n, r, p] :
       {std::tuple{12, 4, 4}, {12, 2, 6}, {16, 4, 8}, {20, 2, 8}, {32, 8, 8}}) {
    const auto cfg = core::GeArConfig::must(n, r, p);
    const Netlist nl = build_gear(cfg);
    const core::GeArAdder model(cfg);
    for (int i = 0; i < 3000; ++i) {
      const std::uint64_t a = rng.bits(n);
      const std::uint64_t b = rng.bits(n);
      ASSERT_EQ(nl.simulate_add(a, b), model.add_value(a, b)) << cfg.name();
    }
  }
}

TEST(Circuits, GearWithCorrectionSingleStage) {
  // The combinational correction stage fixes every single-sub-adder error;
  // for k=2 that is all errors.
  const auto cfg = core::GeArConfig::must(12, 4, 4);
  GearCircuitOptions opt;
  opt.with_correction = true;
  const Netlist nl = build_gear(cfg, opt);
  EXPECT_TRUE(nl.validate().empty());
  stats::Rng rng(82);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    ASSERT_EQ(nl.simulate_add(a, b), a + b) << "a=" << a << " b=" << b;
  }
}

TEST(Circuits, GearWithCorrectionChainedMatchesCorrector) {
  // For k>2 the combinational stage corrects iteratively bottom-up within
  // one pass (each mux sees the corrected carry of the window below), so
  // it matches the sequential Corrector with all sub-adders enabled.
  for (auto [n, r, p] : {std::tuple{12, 2, 6}, {16, 2, 2}, {20, 4, 4}}) {
    const auto cfg = core::GeArConfig::must(n, r, p);
    GearCircuitOptions opt;
    opt.with_correction = true;
    const Netlist nl = build_gear(cfg, opt);
    const core::Corrector corr(cfg, core::Corrector::all_enabled());
    stats::Rng rng(83);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t a = rng.bits(n);
      const std::uint64_t b = rng.bits(n);
      ASSERT_EQ(nl.simulate_add(a, b), corr.add(a, b).sum)
          << cfg.name() << " a=" << a << " b=" << b;
    }
  }
}

TEST(Circuits, Aca1MatchesModel) {
  for (int l : {2, 3, 4}) {
    const Netlist nl = build_aca1(8, l);
    EXPECT_TRUE(nl.validate().empty());
    const adders::Aca1Adder model(8, l);
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(nl.simulate_add(a, b), model.add(a, b)) << "l=" << l;
      }
    }
  }
}

TEST(Circuits, Aca2MatchesModel) {
  for (int l : {2, 4, 8}) {
    const Netlist nl = build_aca2(8, l);
    const adders::Aca2Adder model(8, l);
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(nl.simulate_add(a, b), model.add(a, b)) << "l=" << l;
      }
    }
  }
}

TEST(Circuits, EtaiiMatchesModel) {
  for (int seg : {1, 2, 4}) {
    const Netlist nl = build_etaii(8, seg);
    const adders::EtaiiAdder model(8, seg);
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(nl.simulate_add(a, b), model.add(a, b)) << "seg=" << seg;
      }
    }
  }
}

TEST(Circuits, GdaPredictionModeMatchesModel) {
  // cfg select defaults to 0 (prediction mode) in simulate_add.
  for (auto [mb, mc] : {std::pair{1, 1}, {1, 2}, {2, 2}, {2, 4}, {4, 4}}) {
    const Netlist nl = build_gda(8, mb, mc);
    const adders::GdaAdder model(8, mb, mc);
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(nl.simulate_add(a, b), model.add(a, b))
            << "mb=" << mb << " mc=" << mc;
      }
    }
  }
}

TEST(Circuits, GdaRippleModeIsExact) {
  // All select bits 1: every block takes the previous block's carry — the
  // graceful-degradation-to-exact mode.
  const Netlist nl = build_gda(8, 2, 2);
  core::BitVec sel(3);
  for (int i = 0; i < 3; ++i) sel.set_bit(i, true);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const auto out = nl.simulate({{"a", core::BitVec(8, a)},
                                    {"b", core::BitVec(8, b)},
                                    {"cfg", sel}});
      ASSERT_EQ(out.at("sum").to_u64(), a + b) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Circuits, RcaGateCountScalesLinearly) {
  const Netlist n8 = build_rca(8);
  const Netlist n16 = build_rca(16);
  // 2 macro gates per bit (sum+carry) + const.
  EXPECT_EQ(n8.kind_histogram().at(GateKind::kFaSum), 8u);
  EXPECT_EQ(n16.kind_histogram().at(GateKind::kFaCarry), 16u);
}

}  // namespace
}  // namespace gear::netlist
