// Golden-snapshot tests for the paper-table bench output. The tables are
// fully deterministic (exhaustive NED, analytic synthesis, fixed-seed MC
// on the §5a sharded driver), so the exact stdout text of
// bench_table2_gda_vs_gear and bench_table3_error_probability is pinned
// byte-for-byte against checked-in goldens.
//
// After an intentional change to the tables, refresh with:
//   ./gear_tests --gtest_filter='GoldenTables.*' --update_goldens
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bench/paper_tables.h"
#include "stats/parallel.h"
#include "test_util.h"

#ifndef GEAR_GOLDEN_DIR
#error "GEAR_GOLDEN_DIR must point at tests/goldens"
#endif

namespace gear {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(GEAR_GOLDEN_DIR) + "/" + name;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void expect_matches_golden(const std::string& name, const std::string& got) {
  const std::string path = golden_path(name);
  if (testutil::update_goldens_flag()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    ASSERT_TRUE(out.good()) << "short write to " << path;
    std::printf("[  UPDATED ] %s (%zu bytes)\n", path.c_str(), got.size());
    return;
  }
  const auto want = read_file(path);
  ASSERT_TRUE(want) << "missing golden " << path
                    << " — run with --update_goldens to create it";
  EXPECT_EQ(got, *want)
      << "output of " << name << " diverged from its golden snapshot; if "
      << "the change is intentional, rerun with --update_goldens";
}

TEST(GoldenTables, Table2GdaVsGear) {
  const auto t = benchtables::table2_gda_vs_gear();
  EXPECT_EQ(t.table.rows(), 8u);
  expect_matches_golden("table2_gda_vs_gear.txt", benchtables::render(t));
}

TEST(GoldenTables, ZooFamilyCensus) {
  const auto t = benchtables::zoo_family_table();
  EXPECT_EQ(t.table.rows(), 17u);
  expect_matches_golden("zoo_families.txt", benchtables::render(t));
}

TEST(GoldenTables, ZooCensusLegacyRowsPinned) {
  // The twelve pre-zoo families render from a legacy-only table whose
  // bytes cannot be perturbed by zoo additions (its column padding never
  // sees the new rows): this golden asserts the zoo growth changed
  // nothing about the established families' numbers.
  const auto t = benchtables::zoo_family_table(/*legacy_only=*/true);
  EXPECT_EQ(t.table.rows(), 12u);
  expect_matches_golden("zoo_families_legacy.txt", benchtables::render(t));
}

TEST(GoldenTables, Table3ErrorProbability) {
  // Any executor width renders the same bytes (§5a); CI's physical core
  // count keeps the 4x1e6-trial referee quick.
  stats::ParallelExecutor exec(2);
  const auto t = benchtables::table3_error_probability(exec);
  EXPECT_EQ(t.table.rows(), 4u);
  expect_matches_golden("table3_error_probability.txt", benchtables::render(t));
}

}  // namespace
}  // namespace gear
