// Parallel executor tests: the shard/merge determinism contract (results
// bit-identical for thread counts {1, 2, 8} and equal to the canonical
// sequential shard order), merge-correctness of every mergeable stat, and
// the pool mechanics themselves (full index coverage, exception
// propagation). These tests are the ones the TSan configuration
// (-DGEAR_SANITIZE=thread) exercises to prove the executor race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "apps/stream_engine.h"
#include "core/adder.h"
#include "core/config.h"
#include "core/error_model.h"
#include "stats/histogram.h"
#include "stats/parallel.h"
#include "stats/rng.h"
#include "test_util.h"

namespace gear {
namespace {

using testutil::for_each_thread_count;
using testutil::kSeed;
using testutil::kShard;

TEST(ParallelExecutor, ForEachCoversEachIndexExactlyOnce) {
  stats::ParallelExecutor exec(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  exec.for_each(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelExecutor, ReusableAcrossCalls) {
  stats::ParallelExecutor exec(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    exec.for_each(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ParallelExecutor, ExceptionPropagatesToCaller) {
  stats::ParallelExecutor exec(4);
  EXPECT_THROW(exec.for_each(64,
                             [&](std::size_t i) {
                               if (i == 17) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  // The pool must survive a throwing job.
  std::atomic<int> ran{0};
  exec.for_each(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelExecutor, ShardGeometryDependsOnlyOnTotals) {
  const auto shards = stats::ParallelExecutor::make_shards(100001, 4096);
  ASSERT_EQ(shards.size(), 25u);
  std::uint64_t expect_begin = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.begin, expect_begin);
    EXPECT_EQ(s.index, static_cast<std::size_t>(&s - shards.data()));
    expect_begin = s.end;
  }
  EXPECT_EQ(shards.back().end, 100001u);
  EXPECT_EQ(shards.back().size(), 100001u % 4096);
  // Geometry is a pure function — no executor involved at all.
  const auto again = stats::ParallelExecutor::make_shards(100001, 4096);
  ASSERT_EQ(again.size(), shards.size());
}

// --- Determinism: bit-identical across thread counts {1, 2, 8} ----------

TEST(ParallelExecutor, McErrorProbabilityBitIdenticalAcrossThreadCounts) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  constexpr std::uint64_t kTrials = 50000;

  std::optional<core::McErrorEstimate> ref;
  for_each_thread_count([&](stats::ParallelExecutor& exec, int threads) {
    const auto r = core::mc_error_probability(cfg, kTrials, kSeed, exec, kShard);
    if (!ref) {
      ref = r;
      return;
    }
    EXPECT_EQ(r.errors, ref->errors) << threads;
    EXPECT_EQ(r.trials, ref->trials) << threads;
    EXPECT_EQ(r.p, ref->p) << threads;  // exact fp equality: same counts
    EXPECT_EQ(r.ci.lo, ref->ci.lo) << threads;
    EXPECT_EQ(r.ci.hi, ref->ci.hi) << threads;
  });
}

TEST(ParallelExecutor, McErrorProbabilityMatchesCanonicalShardOrder) {
  // The documented canonical result: run the shards sequentially in index
  // order with Rng::substream(seed, "shard:<i>") and sum the counts.
  // Reimplemented here from the adder primitives, independent of the
  // driver under test.
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  constexpr std::uint64_t kTrials = 50000;
  const core::GeArAdder adder(cfg);

  std::uint64_t canonical_errors = 0;
  for (const auto& s : stats::ParallelExecutor::make_shards(kTrials, kShard)) {
    stats::Rng rng = stats::ParallelExecutor::shard_rng(kSeed, s.index);
    for (std::uint64_t t = 0; t < s.size(); ++t) {
      const std::uint64_t a = rng.bits(16);
      const std::uint64_t b = rng.bits(16);
      if (adder.add_value(a, b) != adder.exact(a, b)) ++canonical_errors;
    }
  }

  stats::ParallelExecutor exec(8);
  const auto est = core::mc_error_probability(cfg, kTrials, kSeed, exec, kShard);
  EXPECT_EQ(est.errors, canonical_errors);
  EXPECT_EQ(est.trials, kTrials);
}

TEST(ParallelExecutor, McErrorProbabilityParallelWithinCiOfExact) {
  // Substreams must still be statistically sound, not just reproducible.
  stats::ParallelExecutor exec(4);
  const auto cfg = core::GeArConfig::must(16, 2, 2);
  const double truth = core::exact_error_probability(cfg);
  const auto est = core::mc_error_probability(cfg, 150000, kSeed, exec);
  EXPECT_TRUE(est.ci.contains(truth))
      << "truth=" << truth << " ci=[" << est.ci.lo << "," << est.ci.hi << "]";
}

TEST(ParallelExecutor, McDistributionBitIdenticalAcrossThreadCounts) {
  const auto cfg = core::GeArConfig::must(16, 2, 2);
  std::optional<std::map<std::int64_t, std::uint64_t>> ref;
  for_each_thread_count([&](stats::ParallelExecutor& exec, int threads) {
    const auto h = core::mc_error_distribution(cfg, 40000, kSeed, exec, kShard);
    EXPECT_EQ(h.total(), 40000u) << threads;
    if (!ref) ref = h.entries();
    EXPECT_EQ(h.entries(), *ref) << threads;
  });
}

TEST(ParallelExecutor, McDetectCountsBitIdenticalAcrossThreadCounts) {
  const auto cfg = core::GeArConfig::must(16, 2, 2);
  std::optional<std::vector<double>> ref;
  for_each_thread_count([&](stats::ParallelExecutor& exec, int threads) {
    const auto p = core::mc_detect_count_distribution(cfg, 40000, kSeed, exec,
                                                      kShard);
    // Element-wise exact: same integer counts divided once.
    if (!ref) ref = p;
    EXPECT_EQ(p, *ref) << threads;
  });
  double total = 0.0;
  for (double p : *ref) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ParallelExecutor, StreamRunBitIdenticalAcrossThreadCounts) {
  const apps::StreamAdderEngine engine(core::GeArConfig::must(16, 2, 2),
                                       core::Corrector::all_enabled());
  const auto factory = [](stats::Rng rng) {
    return std::make_unique<stats::UniformSource>(16, rng);
  };
  constexpr std::uint64_t kOps = 60000;
  std::optional<apps::StreamStats> ref;
  for_each_thread_count([&](stats::ParallelExecutor& exec, int threads) {
    const auto s = engine.run(factory, kOps, kSeed, exec, kShard);
    EXPECT_EQ(s.operations, kOps) << threads;
    if (!ref) {
      ref = s;
      return;
    }
    EXPECT_EQ(s.cycles, ref->cycles) << threads;
    EXPECT_EQ(s.stall_cycles, ref->stall_cycles) << threads;
    EXPECT_EQ(s.corrected_ops, ref->corrected_ops) << threads;
    EXPECT_EQ(s.wrong_results, ref->wrong_results) << threads;
  });
  // Full correction: the parallel path must preserve exactness too.
  EXPECT_EQ(ref->wrong_results, 0u);
  EXPECT_EQ(ref->cycles, ref->operations + ref->stall_cycles);
}

TEST(ParallelExecutor, StreamRunMatchesCanonicalShardOrder) {
  const apps::StreamAdderEngine engine(core::GeArConfig::must(16, 4, 4),
                                       core::Corrector::all_enabled());
  constexpr std::uint64_t kOps = 30000;

  apps::StreamStats canonical;
  for (const auto& s : stats::ParallelExecutor::make_shards(kOps, kShard)) {
    stats::UniformSource src(16, stats::ParallelExecutor::shard_rng(kSeed, s.index));
    canonical.merge(engine.run(src, s.size()));
  }

  stats::ParallelExecutor exec(8);
  const auto parallel = engine.run(
      [](stats::Rng rng) { return std::make_unique<stats::UniformSource>(16, rng); },
      kOps, kSeed, exec, kShard);
  EXPECT_EQ(parallel.cycles, canonical.cycles);
  EXPECT_EQ(parallel.stall_cycles, canonical.stall_cycles);
  EXPECT_EQ(parallel.corrected_ops, canonical.corrected_ops);
  EXPECT_EQ(parallel.wrong_results, canonical.wrong_results);
}

// --- Merge correctness ---------------------------------------------------

TEST(ParallelMerge, McErrorEstimatePoolsCountsAndRebuildsCi) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  stats::Rng rng(7);
  auto whole_rng = rng;  // copy: same stream for the unsharded reference
  auto first = core::mc_error_probability(cfg, 30000, rng);
  const auto second = core::mc_error_probability(cfg, 20000, rng);
  first.merge(second);

  const auto whole = core::mc_error_probability(cfg, 50000, whole_rng);
  EXPECT_EQ(first.trials, whole.trials);
  EXPECT_EQ(first.errors, whole.errors);
  EXPECT_EQ(first.p, whole.p);
  EXPECT_EQ(first.ci.lo, whole.ci.lo);
  EXPECT_EQ(first.ci.hi, whole.ci.hi);
}

TEST(ParallelMerge, SparseHistogramMergeMatchesSequentialFill) {
  stats::Rng rng(8);
  stats::SparseHistogram merged_a, merged_b, whole;
  for (int i = 0; i < 5000; ++i) {
    const auto key = static_cast<std::int64_t>(rng.range(0, 40)) - 20;
    whole.add(key);
    (i % 2 ? merged_a : merged_b).add(key);
  }
  merged_a.merge(merged_b);
  EXPECT_EQ(merged_a.entries(), whole.entries());
  EXPECT_EQ(merged_a.total(), whole.total());
  EXPECT_DOUBLE_EQ(merged_a.mean(), whole.mean());
}

TEST(ParallelMerge, DenseHistogramMergeMatchesSequentialFill) {
  stats::Histogram a(0.0, 1.0, 16), b(0.0, 1.0, 16), whole(0.0, 1.0, 16);
  stats::Rng rng(9);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform01() * 1.2 - 0.1;  // exercises under/overflow
    whole.add(x);
    (i % 3 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), whole.total());
  EXPECT_EQ(a.underflow(), whole.underflow());
  EXPECT_EQ(a.overflow(), whole.overflow());
  for (std::size_t i = 0; i < whole.bin_count(); ++i)
    EXPECT_EQ(a.bin(i), whole.bin(i)) << i;
}

TEST(ParallelMerge, StreamStatsMergeIsFieldwiseAdditive) {
  apps::StreamStats a{10, 15, 5, 3, 1, 0, 0, 0, 0, {}};
  const apps::StreamStats b{20, 22, 2, 4, 0, 0, 0, 0, 0, {}};
  a.merge(b);
  EXPECT_EQ(a.operations, 30u);
  EXPECT_EQ(a.cycles, 37u);
  EXPECT_EQ(a.stall_cycles, 7u);
  EXPECT_EQ(a.corrected_ops, 7u);
  EXPECT_EQ(a.wrong_results, 1u);
}

TEST(ParallelMerge, DetectCountVectorPoolsElementwise) {
  std::vector<std::uint64_t> into;
  core::merge_detect_counts(into, {1, 2, 3});
  core::merge_detect_counts(into, {10, 20, 30});
  EXPECT_EQ(into, (std::vector<std::uint64_t>{11, 22, 33}));
}

}  // namespace
}  // namespace gear
