// Runtime-adaptive correction controller tests.
#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

AdaptivePolicy policy(double target, std::uint32_t window = 128) {
  AdaptivePolicy p;
  p.target_error_rate = target;
  p.window = window;
  return p;
}

TEST(Adaptive, StartsWithNoCorrection) {
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), policy(0.01));
  EXPECT_EQ(ac.enabled_level(), 0);
  EXPECT_EQ(ac.enabled_mask(), 0u);
}

TEST(Adaptive, WidensUnderHighErrorPressure) {
  // (16,2,2) has ~48% raw error rate; a 1% target forces the controller
  // to widen all the way up.
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), policy(0.01, 64));
  stats::Rng rng(71);
  for (int i = 0; i < 64 * 12; ++i) {
    ac.add(rng.bits(16), rng.bits(16));
  }
  EXPECT_EQ(ac.enabled_level(), ac.stats().widen_events - ac.stats().narrow_events);
  EXPECT_GT(ac.enabled_level(), 3);
  EXPECT_GT(ac.stats().widen_events, 0);
}

TEST(Adaptive, StaysNarrowWhenToleranceIsLoose) {
  // Target above the raw error rate: no widening should ever happen.
  AdaptiveCorrector ac(GeArConfig::must(16, 4, 8), policy(0.9, 64));
  stats::Rng rng(72);
  for (int i = 0; i < 64 * 10; ++i) {
    ac.add(rng.bits(16), rng.bits(16));
  }
  EXPECT_EQ(ac.enabled_level(), 0);
  EXPECT_EQ(ac.stats().widen_events, 0);
  EXPECT_DOUBLE_EQ(ac.stats().avg_cycles(), 1.0);
}

TEST(Adaptive, ConvergesToTargetBand) {
  // After warm-up the long-run residual rate should sit at or below a
  // small multiple of the target.
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), policy(0.05, 256));
  stats::Rng rng(73);
  // Warm-up.
  for (int i = 0; i < 256 * 8; ++i) ac.add(rng.bits(16), rng.bits(16));
  // Measure.
  std::uint64_t errors = 0;
  const int trials = 256 * 20;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    if (ac.add(a, b).sum != a + b) ++errors;
  }
  const double rate = static_cast<double>(errors) / trials;
  EXPECT_LT(rate, 0.15);  // raw rate is ~0.48; controller must be active
  EXPECT_GT(ac.enabled_level(), 0);
}

TEST(Adaptive, CyclesTrackEnabledLevel) {
  AdaptiveCorrector tight(GeArConfig::must(16, 2, 2), policy(0.001, 64));
  AdaptiveCorrector loose(GeArConfig::must(16, 2, 2), policy(0.5, 64));
  stats::Rng r1(74), r2(74);
  for (int i = 0; i < 64 * 10; ++i) {
    tight.add(r1.bits(16), r1.bits(16));
    loose.add(r2.bits(16), r2.bits(16));
  }
  EXPECT_GT(tight.stats().avg_cycles(), loose.stats().avg_cycles());
  EXPECT_LE(tight.stats().residual_rate(), loose.stats().residual_rate());
}

TEST(Adaptive, StatsAreConsistent) {
  AdaptiveCorrector ac(GeArConfig::must(12, 4, 4), policy(0.01, 32));
  stats::Rng rng(75);
  const int n = 500;
  for (int i = 0; i < n; ++i) ac.add(rng.bits(12), rng.bits(12));
  EXPECT_EQ(ac.stats().additions, static_cast<std::uint64_t>(n));
  EXPECT_GE(ac.stats().cycles, ac.stats().additions);
  EXPECT_LE(ac.stats().residual_rate(), 1.0);
}

}  // namespace
}  // namespace gear::core
