// Runtime-adaptive correction controller tests.
#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

AdaptivePolicy policy(double target, std::uint32_t window = 128) {
  AdaptivePolicy p;
  p.target_error_rate = target;
  p.window = window;
  return p;
}

TEST(Adaptive, StartsWithNoCorrection) {
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), policy(0.01));
  EXPECT_EQ(ac.enabled_level(), 0);
  EXPECT_EQ(ac.enabled_mask(), 0u);
}

TEST(Adaptive, WidensUnderHighErrorPressure) {
  // (16,2,2) has ~48% raw error rate; a 1% target forces the controller
  // to widen all the way up.
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), policy(0.01, 64));
  stats::Rng rng(71);
  for (int i = 0; i < 64 * 12; ++i) {
    ac.add(rng.bits(16), rng.bits(16));
  }
  EXPECT_EQ(ac.enabled_level(), ac.stats().widen_events - ac.stats().narrow_events);
  EXPECT_GT(ac.enabled_level(), 3);
  EXPECT_GT(ac.stats().widen_events, 0);
}

TEST(Adaptive, StaysNarrowWhenToleranceIsLoose) {
  // Target above the raw error rate: no widening should ever happen.
  AdaptiveCorrector ac(GeArConfig::must(16, 4, 8), policy(0.9, 64));
  stats::Rng rng(72);
  for (int i = 0; i < 64 * 10; ++i) {
    ac.add(rng.bits(16), rng.bits(16));
  }
  EXPECT_EQ(ac.enabled_level(), 0);
  EXPECT_EQ(ac.stats().widen_events, 0);
  EXPECT_DOUBLE_EQ(ac.stats().avg_cycles(), 1.0);
}

TEST(Adaptive, ConvergesToTargetBand) {
  // After warm-up the long-run residual rate should sit at or below a
  // small multiple of the target.
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), policy(0.05, 256));
  stats::Rng rng(73);
  // Warm-up.
  for (int i = 0; i < 256 * 8; ++i) ac.add(rng.bits(16), rng.bits(16));
  // Measure.
  std::uint64_t errors = 0;
  const int trials = 256 * 20;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    if (ac.add(a, b).sum != a + b) ++errors;
  }
  const double rate = static_cast<double>(errors) / trials;
  EXPECT_LT(rate, 0.15);  // raw rate is ~0.48; controller must be active
  EXPECT_GT(ac.enabled_level(), 0);
}

TEST(Adaptive, CyclesTrackEnabledLevel) {
  AdaptiveCorrector tight(GeArConfig::must(16, 2, 2), policy(0.001, 64));
  AdaptiveCorrector loose(GeArConfig::must(16, 2, 2), policy(0.5, 64));
  stats::Rng r1(74), r2(74);
  for (int i = 0; i < 64 * 10; ++i) {
    tight.add(r1.bits(16), r1.bits(16));
    loose.add(r2.bits(16), r2.bits(16));
  }
  EXPECT_GT(tight.stats().avg_cycles(), loose.stats().avg_cycles());
  EXPECT_LE(tight.stats().residual_rate(), loose.stats().residual_rate());
}

TEST(Adaptive, StatsAreConsistent) {
  AdaptiveCorrector ac(GeArConfig::must(12, 4, 4), policy(0.01, 32));
  stats::Rng rng(75);
  const int n = 500;
  for (int i = 0; i < n; ++i) ac.add(rng.bits(12), rng.bits(12));
  EXPECT_EQ(ac.stats().additions, static_cast<std::uint64_t>(n));
  EXPECT_GE(ac.stats().cycles, ac.stats().additions);
  EXPECT_LE(ac.stats().residual_rate(), 1.0);
}

// ---- Adversarial streams ----
//
// (a = all-ones, b = 1) makes the carry ripple from the LSB through every
// window, so every prediction window is all-propagate with a live
// carry-in: the worst case the paper's detect logic is built for, and the
// worst stream an adaptive controller can face.

TEST(Adaptive, AllPropagateBurstWidensWithinOneWindow) {
  const std::uint32_t kWindow = 64;
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), policy(0.01, kWindow));
  ASSERT_EQ(ac.enabled_level(), 0);
  for (std::uint32_t i = 0; i < kWindow; ++i) ac.add(0xFFFF, 0x0001);
  // Every burst op is wrong at level 0, so the very first adaptation
  // decision must widen.
  EXPECT_EQ(ac.enabled_level(), 1);
  EXPECT_EQ(ac.stats().widen_events, 1);
  EXPECT_EQ(ac.stats().residual_errors, kWindow);
}

TEST(Adaptive, ResidualReturnsToBandAfterBurst) {
  const std::uint32_t kWindow = 64;
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), policy(0.05, kWindow));
  // Sustained burst drives the mask all the way up...
  for (std::uint32_t i = 0; i < kWindow * 8; ++i) ac.add(0xFFFF, 0x0001);
  EXPECT_GT(ac.enabled_level(), 3);
  // ...then a carry-free stream (disjoint operand bits: exact at every
  // level) narrows it back down: the burst must not leave the controller
  // stuck paying correction cycles forever.
  stats::Rng rng(76);
  for (std::uint32_t i = 0; i < kWindow * 32; ++i) {
    // Disjoint operand bits: no carry is ever generated, so every level
    // computes the add exactly.
    ac.add(rng.bits(16) & 0x5555, rng.bits(16) & 0xAAAA);
  }
  EXPECT_EQ(ac.enabled_level(), 0);
  EXPECT_GT(ac.stats().narrow_events, 0);
}

TEST(Adaptive, HysteresisPinsControllerAgainstOscillation) {
  // Duty-cycled adversary: 3 worst-case ops in every 8 keeps the window
  // error rate at 0.375, inside the (target*hysteresis, target] =
  // (0.25, 0.5] dead band — the controller must not react at all. Without
  // hysteresis this rate would narrow (rate < target) and immediately
  // re-widen, oscillating every window.
  AdaptivePolicy p = policy(0.5, 64);
  p.hysteresis = 0.5;
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), p);
  for (int i = 0; i < 64 * 20; ++i) {
    if (i % 8 < 3) {
      ac.add(0xFFFF, 0x0001);  // always wrong at level 0
    } else {
      ac.add(0x0001, 0x0002);  // carry-free: always exact
    }
  }
  EXPECT_EQ(ac.stats().widen_events, 0);
  EXPECT_EQ(ac.stats().narrow_events, 0);
  EXPECT_EQ(ac.enabled_level(), 0);
  EXPECT_NEAR(ac.stats().residual_rate(), 0.375, 1e-9);
}

TEST(Adaptive, DegradationTripsOnAdversarialDetectStorm) {
  // With a degradation policy, the same all-propagate burst that the
  // adaptive loop would chase is recognized as a detect-rate spike and
  // the controller drops to exact adds instead of thrashing.
  DegradationPolicy degradation;
  degradation.window = 64;
  degradation.spike_factor = 2.0;  // adversarial rate 1.0 > 2 * ~0.48
  degradation.safe_mode = SafeMode::kExactAdd;
  AdaptiveCorrector ac(GeArConfig::must(16, 2, 2), policy(0.01, 64),
                       degradation);
  ASSERT_FALSE(ac.in_safe_mode());
  for (int i = 0; i < 64 * 4; ++i) {
    const auto res = ac.add(0xFFFF, 0x0001);
    if (ac.in_safe_mode()) EXPECT_TRUE(res.exact || i < 64);
  }
  EXPECT_TRUE(ac.in_safe_mode());
  EXPECT_EQ(ac.stats().fallback_events, 1u);
  EXPECT_GT(ac.stats().safe_mode_ops, 0u);
  // Post-trip ops are exact, so residuals froze at the trip point.
  EXPECT_LE(ac.stats().residual_errors,
            ac.stats().additions - ac.stats().safe_mode_ops);
}

}  // namespace
}  // namespace gear::core
