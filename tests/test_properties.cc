// Cross-cutting property sweeps over the full strict design space at
// several widths — the invariants every GeAr configuration must satisfy
// simultaneously across the model, the corrector, the circuit generator
// and the analytic models.
#include <gtest/gtest.h>

#include "core/adder.h"
#include "core/correction.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "stats/rng.h"
#include "synth/report.h"

namespace gear {
namespace {

class StrictSpace : public ::testing::TestWithParam<int> {};

TEST_P(StrictSpace, DetectionSoundEverywhere) {
  const int n = GetParam();
  stats::Rng rng = stats::Rng::substream(1, "prop-detect");
  for (const auto& cfg : core::GeArConfig::enumerate(n)) {
    const core::GeArAdder adder(cfg);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t a = rng.bits(n);
      const std::uint64_t b = rng.bits(n);
      const core::AddResult r = adder.add(a, b);
      if (r.sum != a + b) {
        ASSERT_TRUE(r.error_detected()) << cfg.name();
      }
    }
  }
}

TEST_P(StrictSpace, CorrectionExactEverywhere) {
  const int n = GetParam();
  stats::Rng rng = stats::Rng::substream(2, "prop-correct");
  for (const auto& cfg : core::GeArConfig::enumerate(n)) {
    const core::Corrector corr(cfg, core::Corrector::all_enabled());
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t a = rng.bits(n);
      const std::uint64_t b = rng.bits(n);
      const auto res = corr.add(a, b);
      ASSERT_EQ(res.sum, a + b) << cfg.name();
      ASSERT_LE(res.cycles, cfg.k()) << cfg.name();
    }
  }
}

TEST_P(StrictSpace, CircuitCarryElementsMatchGeometry) {
  // Every window bit occupies exactly one carry-chain element; windows
  // never share elements (their chains start at different carries), so
  // the mapped carry-element count equals the summed window lengths.
  const int n = GetParam();
  for (const auto& cfg : core::GeArConfig::enumerate(n)) {
    const auto nl = netlist::build_gear(cfg, {.with_detection = false});
    const auto mapping = synth::map_to_luts(nl);
    int window_bits = 0;
    for (const auto& s : cfg.layout()) window_bits += s.window_len();
    ASSERT_EQ(mapping.carry_elements, window_bits) << cfg.name();
    // Without detection the circuit is pure carry logic: no LUTs at all.
    ASSERT_EQ(static_cast<int>(mapping.luts.size()), 0) << cfg.name();
  }
}

TEST_P(StrictSpace, DelayTracksCarryChain) {
  // Among same-width configurations, a strictly longer worst carry chain
  // can never make the sum path *faster* — once fan-out loading is
  // removed from the model (with it, a many-window low-R config can pay
  // more for input fan-out than a slightly longer chain costs, which is
  // realistic but not monotone).
  const int n = GetParam();
  synth::DelayModel no_fanout = synth::DelayModel::virtex6();
  no_fanout.t_fanout = 0.0;
  double best_delay_per_chain[65] = {};
  for (const auto& cfg : core::GeArConfig::enumerate(n)) {
    const auto rep = synth::synthesize(
        netlist::build_gear(cfg, {.with_detection = false}), no_fanout);
    const int chain = cfg.max_carry_chain();
    auto& slot = best_delay_per_chain[chain];
    if (slot == 0.0 || rep.delay_ns < slot) slot = rep.delay_ns;
  }
  double prev = 0.0;
  for (int chain = 1; chain <= 64; ++chain) {
    if (best_delay_per_chain[chain] == 0.0) continue;
    ASSERT_GE(best_delay_per_chain[chain], prev - 1e-9) << "chain " << chain;
    prev = best_delay_per_chain[chain];
  }
}

TEST_P(StrictSpace, ModelTrioAgreesEverywhere) {
  // IE model == exact DP == (scaled) first-order within the union bound,
  // for every configuration of the width.
  const int n = GetParam();
  for (const auto& cfg : core::GeArConfig::enumerate(n)) {
    const double ie = core::paper_error_probability(cfg);
    const double exact = core::exact_error_probability(cfg);
    const double fo = core::paper_error_probability_first_order(cfg);
    ASSERT_NEAR(ie, exact, 1e-12) << cfg.name();
    ASSERT_GE(fo + 1e-15, ie) << cfg.name();
  }
}

TEST_P(StrictSpace, AnalyticMedConsistentWithErrorRate) {
  // MED <= Perr * max possible error (sum of boundary weights incl. the
  // carry-out) — a sanity tie between the two analytic models.
  const int n = GetParam();
  for (const auto& cfg : core::GeArConfig::enumerate(n)) {
    double max_err = 1ULL << n;  // carry-out miss
    for (int j = 1; j < cfg.k(); ++j) max_err += 1ULL << cfg.sub(j).res_lo;
    const double med = core::analytic_med(cfg);
    const double perr = core::exact_error_probability(cfg);
    ASSERT_LE(med, perr * max_err + 1e-9) << cfg.name();
    if (perr > 0) ASSERT_GT(med, 0.0) << cfg.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, StrictSpace,
                         ::testing::Values(8, 10, 12, 14, 16, 18, 20, 24));

}  // namespace
}  // namespace gear
