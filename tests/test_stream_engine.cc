// Cycle-accurate stream engine tests: empirical cycles-per-op must land
// inside the paper's Table IV best/worst bracket and near the expected
// value computed from the detect-count distribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/timing_model.h"
#include "apps/stream_engine.h"
#include "core/error_model.h"
#include "stats/rng.h"

namespace gear::apps {
namespace {

TEST(StreamEngine, NoCorrectionIsOneCyclePerOp) {
  StreamAdderEngine engine(core::GeArConfig::must(16, 4, 4), 0);
  auto src = stats::make_uniform(16, 7);
  const StreamStats s = engine.run(*src, 20000);
  EXPECT_EQ(s.operations, 20000u);
  EXPECT_EQ(s.cycles, 20000u);
  EXPECT_EQ(s.stall_cycles, 0u);
  EXPECT_GT(s.wrong_results, 0u);
}

TEST(StreamEngine, FullCorrectionIsAlwaysRight) {
  StreamAdderEngine engine(core::GeArConfig::must(16, 2, 2),
                           core::Corrector::all_enabled());
  auto src = stats::make_uniform(16, 8);
  const StreamStats s = engine.run(*src, 20000);
  EXPECT_EQ(s.wrong_results, 0u);
  EXPECT_GT(s.stall_cycles, 0u);
  EXPECT_EQ(s.cycles, s.operations + s.stall_cycles);
}

TEST(StreamEngine, MeasuredCyclesInsidePaperBracket) {
  // Table IV logic: cycles/op must lie in [1 + Perr*1, 1 + Perr*(k-1)].
  for (auto [n, r, p] : {std::tuple{20, 1, 9}, {20, 5, 5}, {16, 2, 2}}) {
    const auto cfg = core::GeArConfig::must(n, r, p);
    StreamAdderEngine engine(cfg, core::Corrector::all_enabled());
    auto src = stats::make_uniform(n, 9);
    const StreamStats s = engine.run(*src, 100000);
    const double perr = core::exact_error_probability(cfg);
    const double measured = s.cycles_per_op();
    EXPECT_GE(measured, 1.0 + perr * 0.8) << cfg.name();
    EXPECT_LE(measured, 1.0 + perr * (cfg.k() - 1) + 0.01) << cfg.name();
  }
}

TEST(StreamEngine, MeasuredMatchesDetectCountExpectation) {
  const auto cfg = core::GeArConfig::must(16, 2, 2);
  StreamAdderEngine engine(cfg, core::Corrector::all_enabled());
  auto src = stats::make_uniform(16, 10);
  const StreamStats s = engine.run(*src, 200000);

  stats::Rng rng(11);
  const auto pmf = core::mc_detect_count_distribution(cfg, 200000, rng);
  double expected = 0.0;
  for (std::size_t c = 0; c < pmf.size(); ++c) {
    expected += pmf[c] * (1.0 + static_cast<double>(c));
  }
  // Corrections cascade (correcting j raises c_o(j), which can fire
  // j+1), so the first-pass detect count under-counts total cycles; for
  // (16,2,2) the cascade adds ~0.15 cycles/op. The expectation is a firm
  // lower bound and a reasonable estimate.
  EXPECT_GE(s.cycles_per_op(), expected - 1e-3);
  EXPECT_LE(s.cycles_per_op(), expected + 0.25);
}

TEST(StreamEngine, ExplicitOperandListMatchesSource) {
  const auto cfg = core::GeArConfig::must(12, 4, 4);
  std::vector<stats::OperandPair> ops;
  stats::Rng rng(12);
  for (int i = 0; i < 5000; ++i) ops.push_back({rng.bits(12), rng.bits(12)});

  StreamAdderEngine e1(cfg, core::Corrector::all_enabled());
  StreamAdderEngine e2(cfg, core::Corrector::all_enabled());
  stats::TraceSource src(12, ops, "t");
  const StreamStats s1 = e1.run(src, ops.size());
  const StreamStats s2 = e2.run(ops);
  EXPECT_EQ(s1.cycles, s2.cycles);
  EXPECT_EQ(s1.corrected_ops, s2.corrected_ops);
}

TEST(StreamEngine, SecondsScaleWithPeriod) {
  StreamAdderEngine engine(core::GeArConfig::must(12, 4, 4), 0);
  auto src = stats::make_uniform(12, 13);
  const StreamStats s = engine.run(*src, 1000);
  EXPECT_DOUBLE_EQ(s.seconds(2.0), 2.0 * s.seconds(1.0));
  EXPECT_NEAR(s.seconds(1.0), 1000 * 1e-9, 1e-12);
}

TEST(StreamEngine, RunWithSumsMatchesRunAndExactReference) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  StreamAdderEngine engine(cfg, core::Corrector::all_enabled());
  std::vector<stats::OperandPair> ops;
  stats::Rng rng(41);
  for (int i = 0; i < 1000; ++i) ops.push_back({rng.bits(16), rng.bits(16)});

  std::vector<std::uint64_t> sums(ops.size());
  const StreamStats s1 = engine.run_with_sums(ops.data(), ops.size(), sums.data());
  const StreamStats s2 = engine.run(ops);
  EXPECT_EQ(s1.operations, s2.operations);
  EXPECT_EQ(s1.cycles, s2.cycles);
  EXPECT_EQ(s1.wrong_results, 0u);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(sums[i], (ops[i].a & 0xFFFFu) + (ops[i].b & 0xFFFFu))
        << "op " << i;
  }
}

TEST(StreamEngine, RunWithSumsBitslicedMatchesScalar) {
  // Same partial-correction stream through the bitsliced fast path and
  // through the scalar path (forced by a never-tripping watchdog): sums
  // and counters must be bit-identical.
  const auto cfg = core::GeArConfig::must(16, 2, 2);
  StreamAdderEngine batched(cfg, 0b10ULL);
  core::DegradationPolicy inert;  // spike/floor disabled, infinite budget
  inert.spike_factor = 0.0;
  StreamAdderEngine scalar(cfg, 0b10ULL, inert);
  std::vector<stats::OperandPair> ops;
  stats::Rng rng(43);
  for (int i = 0; i < 777; ++i) ops.push_back({rng.bits(16), rng.bits(16)});

  std::vector<std::uint64_t> fast(ops.size()), slow(ops.size());
  const StreamStats sf = batched.run_with_sums(ops.data(), ops.size(), fast.data());
  auto wd = scalar.make_watchdog();
  ASSERT_TRUE(wd.has_value());
  const StreamStats ss =
      scalar.run_with_sums(ops.data(), ops.size(), slow.data(), &*wd);
  EXPECT_EQ(fast, slow);
  EXPECT_EQ(sf.wrong_results, ss.wrong_results);
  EXPECT_EQ(sf.corrected_ops, ss.corrected_ops);
  EXPECT_EQ(sf.cycles, ss.cycles);
  EXPECT_GT(sf.wrong_results, 0u);  // partial mask: stream really errs
}

TEST(StreamEngine, GuardedBatchPathMatchesForcedScalarExactly) {
  // The watchdog-guarded 64-lane batch path (feed_guarded) against the
  // per-op scalar loop, selected by the force_scalar_path referee knob:
  // sums, every counter and the degraded-window ledger must be identical
  // on both a healthy stream and one whose injected fault trips the
  // watchdog mid-run.
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  core::DegradationPolicy policy;
  policy.window = 64;
  policy.spike_factor = 4.0;
  policy.safe_mode = core::SafeMode::kExactAdd;
  policy.cooldown_windows = 2;

  for (const bool faulty : {false, true}) {
    SCOPED_TRACE(faulty ? "faulty" : "healthy");
    // An injected detect fault would force the scalar plumbing on both
    // engines (can_batch_guarded excludes active faults), so the tripping
    // leg squeezes the stall budget instead: zero budget means the first
    // correction stalls past it and the watchdog trips mid-window.
    core::DegradationPolicy leg_policy = policy;
    if (faulty) leg_policy.stall_budget = 0;
    StreamAdderEngine batch(cfg, core::Corrector::all_enabled(), leg_policy);
    StreamAdderEngine scalar(cfg, core::Corrector::all_enabled(), leg_policy);
    scalar.force_scalar_path(true);
    ASSERT_TRUE(scalar.scalar_path_forced());

    std::vector<stats::OperandPair> ops;
    stats::Rng rng(faulty ? 61 : 60);
    for (int i = 0; i < 1000; ++i) ops.push_back({rng.bits(16), rng.bits(16)});

    std::vector<std::uint64_t> fast(ops.size()), slow(ops.size());
    auto wd_fast = batch.make_watchdog();
    auto wd_slow = scalar.make_watchdog();
    ASSERT_TRUE(wd_fast.has_value() && wd_slow.has_value());
    const StreamStats sf =
        batch.run_with_sums(ops.data(), ops.size(), fast.data(), &*wd_fast);
    const StreamStats ss =
        scalar.run_with_sums(ops.data(), ops.size(), slow.data(), &*wd_slow);
    EXPECT_EQ(fast, slow);
    EXPECT_EQ(sf, ss);
    EXPECT_EQ(wd_fast->in_safe_mode(), wd_slow->in_safe_mode());
    if (faulty) {
      EXPECT_GT(sf.fallback_events, 0u);  // the squeeze really tripped
    } else {
      EXPECT_EQ(sf.fallback_events, 0u);
    }
  }
}

TEST(StreamEngine, ExternalWatchdogPersistsAcrossCalls) {
  // Split serving: one watchdog threaded through consecutive calls must
  // behave exactly like a single continuous run.
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  core::DegradationPolicy policy;
  policy.window = 64;
  policy.spike_factor = 4.0;
  policy.safe_mode = core::SafeMode::kExactAdd;
  StreamAdderEngine engine(cfg, core::Corrector::all_enabled(), policy);
  engine.inject_detect_fault({1, true});  // trips at every window boundary
  std::vector<stats::OperandPair> ops;
  stats::Rng rng(47);
  for (int i = 0; i < 256; ++i) ops.push_back({rng.bits(16), rng.bits(16)});

  std::vector<std::uint64_t> whole(ops.size()), split(ops.size());
  auto wd1 = engine.make_watchdog();
  const StreamStats one =
      engine.run_with_sums(ops.data(), ops.size(), whole.data(), &*wd1);

  auto wd2 = engine.make_watchdog();
  StreamStats merged;
  for (std::size_t base = 0; base < ops.size(); base += 100) {
    const std::size_t count = std::min<std::size_t>(100, ops.size() - base);
    merged.merge(engine.run_with_sums(ops.data() + base, count,
                                      split.data() + base, &*wd2));
  }
  EXPECT_EQ(whole, split);
  EXPECT_GT(one.fallback_events, 0u);
  EXPECT_GT(one.safe_mode_ops, 0u);
  EXPECT_EQ(one.fallback_events, merged.fallback_events);
  EXPECT_EQ(one.safe_mode_ops, merged.safe_mode_ops);
}

TEST(StreamEngine, DegradedWindowsSayWhenDegradationHappened) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  core::DegradationPolicy policy;
  policy.window = 64;
  policy.spike_factor = 4.0;
  policy.safe_mode = core::SafeMode::kExactAdd;
  policy.cooldown_windows = 0;  // latch

  {
    // Healthy stream: totals clean, and no degraded windows recorded.
    StreamAdderEngine engine(cfg, core::Corrector::all_enabled(), policy);
    auto src = stats::make_uniform(16, 51);
    const StreamStats s = engine.run(*src, 4096);
    EXPECT_EQ(s.fallback_events, 0u);
    EXPECT_TRUE(s.degraded_windows.empty());
  }

  // Faulty stream: the fallback accounting gap this pins — the totals say
  // *how much* degradation, degraded_windows must say *when*.
  StreamAdderEngine engine(cfg, core::Corrector::all_enabled(), policy);
  engine.inject_detect_fault({1, true});
  auto src = stats::make_uniform(16, 52);
  const StreamStats s = engine.run(*src, 1024);
  ASSERT_FALSE(s.degraded_windows.empty());
  std::uint64_t fallbacks = 0, safe_ops = 0;
  std::uint64_t prev_start = 0;
  bool first = true;
  for (const auto& w : s.degraded_windows) {
    EXPECT_EQ(w.start_op % policy.window, 0u);  // aligned to window grid
    EXPECT_TRUE(first || w.start_op > prev_start);  // strictly monotone
    EXPECT_GT(w.fallback_events + w.safe_mode_ops, 0u);  // no empty entries
    first = false;
    prev_start = w.start_op;
    fallbacks += w.fallback_events;
    safe_ops += w.safe_mode_ops;
  }
  // Per-window entries tile the run totals exactly.
  EXPECT_EQ(fallbacks, s.fallback_events);
  EXPECT_EQ(safe_ops, s.safe_mode_ops);
  // Trip at the first window boundary, safe mode latched ever after.
  EXPECT_EQ(s.degraded_windows.front().start_op, 0u);
  EXPECT_EQ(s.fallback_events, 1u);
  EXPECT_EQ(s.safe_mode_ops, 1024u - policy.window);
}

TEST(StreamEngine, MergeOffsetsDegradedWindowsByBaseOps) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  core::DegradationPolicy policy;
  policy.window = 64;
  policy.spike_factor = 4.0;
  policy.safe_mode = core::SafeMode::kExactAdd;
  StreamAdderEngine engine(cfg, core::Corrector::all_enabled(), policy);
  engine.inject_detect_fault({1, true});
  auto src = stats::make_uniform(16, 53);
  StreamStats a = engine.run(*src, 256);
  const StreamStats b = engine.run(*src, 256);
  ASSERT_FALSE(a.degraded_windows.empty());
  ASSERT_FALSE(b.degraded_windows.empty());

  const std::uint64_t base = a.operations;
  const std::size_t a_entries = a.degraded_windows.size();
  a.merge(b);
  ASSERT_EQ(a.degraded_windows.size(), a_entries + b.degraded_windows.size());
  for (std::size_t i = 0; i < b.degraded_windows.size(); ++i) {
    const auto& merged = a.degraded_windows[a_entries + i];
    EXPECT_EQ(merged.start_op, b.degraded_windows[i].start_op + base);
    EXPECT_EQ(merged.fallback_events, b.degraded_windows[i].fallback_events);
    EXPECT_EQ(merged.safe_mode_ops, b.degraded_windows[i].safe_mode_ops);
  }
}

}  // namespace
}  // namespace gear::apps
