// Cycle-accurate stream engine tests: empirical cycles-per-op must land
// inside the paper's Table IV best/worst bracket and near the expected
// value computed from the detect-count distribution.
#include <gtest/gtest.h>

#include "analysis/timing_model.h"
#include "apps/stream_engine.h"
#include "core/error_model.h"
#include "stats/rng.h"

namespace gear::apps {
namespace {

TEST(StreamEngine, NoCorrectionIsOneCyclePerOp) {
  StreamAdderEngine engine(core::GeArConfig::must(16, 4, 4), 0);
  auto src = stats::make_uniform(16, 7);
  const StreamStats s = engine.run(*src, 20000);
  EXPECT_EQ(s.operations, 20000u);
  EXPECT_EQ(s.cycles, 20000u);
  EXPECT_EQ(s.stall_cycles, 0u);
  EXPECT_GT(s.wrong_results, 0u);
}

TEST(StreamEngine, FullCorrectionIsAlwaysRight) {
  StreamAdderEngine engine(core::GeArConfig::must(16, 2, 2),
                           core::Corrector::all_enabled());
  auto src = stats::make_uniform(16, 8);
  const StreamStats s = engine.run(*src, 20000);
  EXPECT_EQ(s.wrong_results, 0u);
  EXPECT_GT(s.stall_cycles, 0u);
  EXPECT_EQ(s.cycles, s.operations + s.stall_cycles);
}

TEST(StreamEngine, MeasuredCyclesInsidePaperBracket) {
  // Table IV logic: cycles/op must lie in [1 + Perr*1, 1 + Perr*(k-1)].
  for (auto [n, r, p] : {std::tuple{20, 1, 9}, {20, 5, 5}, {16, 2, 2}}) {
    const auto cfg = core::GeArConfig::must(n, r, p);
    StreamAdderEngine engine(cfg, core::Corrector::all_enabled());
    auto src = stats::make_uniform(n, 9);
    const StreamStats s = engine.run(*src, 100000);
    const double perr = core::exact_error_probability(cfg);
    const double measured = s.cycles_per_op();
    EXPECT_GE(measured, 1.0 + perr * 0.8) << cfg.name();
    EXPECT_LE(measured, 1.0 + perr * (cfg.k() - 1) + 0.01) << cfg.name();
  }
}

TEST(StreamEngine, MeasuredMatchesDetectCountExpectation) {
  const auto cfg = core::GeArConfig::must(16, 2, 2);
  StreamAdderEngine engine(cfg, core::Corrector::all_enabled());
  auto src = stats::make_uniform(16, 10);
  const StreamStats s = engine.run(*src, 200000);

  stats::Rng rng(11);
  const auto pmf = core::mc_detect_count_distribution(cfg, 200000, rng);
  double expected = 0.0;
  for (std::size_t c = 0; c < pmf.size(); ++c) {
    expected += pmf[c] * (1.0 + static_cast<double>(c));
  }
  // Corrections cascade (correcting j raises c_o(j), which can fire
  // j+1), so the first-pass detect count under-counts total cycles; for
  // (16,2,2) the cascade adds ~0.15 cycles/op. The expectation is a firm
  // lower bound and a reasonable estimate.
  EXPECT_GE(s.cycles_per_op(), expected - 1e-3);
  EXPECT_LE(s.cycles_per_op(), expected + 0.25);
}

TEST(StreamEngine, ExplicitOperandListMatchesSource) {
  const auto cfg = core::GeArConfig::must(12, 4, 4);
  std::vector<stats::OperandPair> ops;
  stats::Rng rng(12);
  for (int i = 0; i < 5000; ++i) ops.push_back({rng.bits(12), rng.bits(12)});

  StreamAdderEngine e1(cfg, core::Corrector::all_enabled());
  StreamAdderEngine e2(cfg, core::Corrector::all_enabled());
  stats::TraceSource src(12, ops, "t");
  const StreamStats s1 = e1.run(src, ops.size());
  const StreamStats s2 = e2.run(ops);
  EXPECT_EQ(s1.cycles, s2.cycles);
  EXPECT_EQ(s1.corrected_ops, s2.corrected_ops);
}

TEST(StreamEngine, SecondsScaleWithPeriod) {
  StreamAdderEngine engine(core::GeArConfig::must(12, 4, 4), 0);
  auto src = stats::make_uniform(12, 13);
  const StreamStats s = engine.run(*src, 1000);
  EXPECT_DOUBLE_EQ(s.seconds(2.0), 2.0 * s.seconds(1.0));
  EXPECT_NEAR(s.seconds(1.0), 1000 * 1e-9, 1e-12);
}

}  // namespace
}  // namespace gear::apps
