// Wide (BitVec) GeAr adder tests, incl. cross-check vs the u64 model.
#include <gtest/gtest.h>

#include "core/adder.h"
#include "core/wide_adder.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

BitVec random_vec(int width, stats::Rng& rng) {
  BitVec v(width);
  for (int i = 0; i < width; i += 64) {
    const int chunk = std::min(64, width - i);
    const std::uint64_t bits = rng.bits(chunk);
    for (int b = 0; b < chunk; ++b) v.set_bit(i + b, (bits >> b) & 1ULL);
  }
  return v;
}

TEST(WideAdder, MatchesU64ModelAtPaperWidths) {
  stats::Rng rng(81);
  for (auto [n, r, p] :
       {std::tuple{12, 4, 4}, {16, 2, 6}, {20, 5, 5}, {32, 8, 8}, {48, 8, 16}}) {
    const GeArAdder narrow(GeArConfig::must(n, r, p));
    const WideGeArAdder wide(*WideGeArLayout::make(n, r, p));
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t a = rng.bits(n);
      const std::uint64_t b = rng.bits(n);
      const WideAddResult res = wide.add(BitVec(n, a), BitVec(n, b));
      ASSERT_EQ(res.sum.to_u64(), narrow.add_value(a, b))
          << "n=" << n << " a=" << a << " b=" << b;
      const AddResult nres = narrow.add(a, b);
      ASSERT_EQ(res.error_detected(), nres.error_detected());
    }
  }
}

TEST(WideAdder, LayoutMatchesConfig) {
  const auto wide = WideGeArLayout::make(16, 4, 4);
  const auto cfg = GeArConfig::make(16, 4, 4);
  ASSERT_TRUE(wide && cfg);
  ASSERT_EQ(wide->k(), cfg->k());
  for (int j = 0; j < wide->k(); ++j) {
    EXPECT_EQ(wide->subs()[static_cast<std::size_t>(j)].win_lo, cfg->sub(j).win_lo);
    EXPECT_EQ(wide->subs()[static_cast<std::size_t>(j)].res_hi, cfg->sub(j).res_hi);
  }
}

TEST(WideAdder, Works128Bit) {
  const WideGeArAdder adder(*WideGeArLayout::make(128, 4, 4));
  stats::Rng rng(82);
  int errors = 0;
  for (int i = 0; i < 3000; ++i) {
    const BitVec a = random_vec(128, rng);
    const BitVec b = random_vec(128, rng);
    const WideAddResult res = adder.add(a, b);
    const BitVec exact = adder.exact(a, b);
    ASSERT_EQ(res.sum.width(), 129);
    if (res.sum != exact) {
      ++errors;
      EXPECT_TRUE(res.error_detected());  // lowest erroneous always flagged
      EXPECT_TRUE(res.sum < exact);       // missing carries only
    }
  }
  EXPECT_GT(errors, 0);  // with L=8 over 30 boundaries errors are common
}

TEST(WideAdder, ExactWhenNoDetect128) {
  const WideGeArAdder adder(*WideGeArLayout::make(96, 8, 8));
  stats::Rng rng(83);
  for (int i = 0; i < 2000; ++i) {
    const BitVec a = random_vec(96, rng);
    const BitVec b = random_vec(96, rng);
    const WideAddResult res = adder.add(a, b);
    if (!res.error_detected()) {
      ASSERT_EQ(res.sum, adder.exact(a, b));
    }
  }
}

TEST(WideAdder, RejectsBadGeometry) {
  EXPECT_FALSE(WideGeArLayout::make(16, 0, 4));
  EXPECT_FALSE(WideGeArLayout::make(16, 4, 0));
  EXPECT_FALSE(WideGeArLayout::make(8, 6, 6));
}

}  // namespace
}  // namespace gear::core
