// Shared test fixtures: the thread-count sweep of the §5a determinism
// contract, the canonical fuzz/probe configuration sets, operand
// generators and the exhaustive error-PMF referee. Every suite that
// sweeps thread counts or fuzzes configurations pulls these from here so
// "bit-identical across {1, 2, 8}" means the same thing everywhere.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/adder.h"
#include "core/config.h"
#include "stats/distributions.h"
#include "stats/parallel.h"
#include "stats/rng.h"

namespace gear::testutil {

/// Set by gear_test_main.cc when the binary runs with --update_goldens:
/// golden-snapshot tests rewrite tests/goldens/ instead of comparing.
inline bool& update_goldens_flag() {
  static bool flag = false;
  return flag;
}

/// Master seed / shard size used by the determinism sweeps. The shard is
/// deliberately small so even quick tests span many shards.
inline constexpr std::uint64_t kSeed = 2026;
inline constexpr std::uint64_t kShard = 4096;

/// The pinned thread counts of the §5a contract: inline (1), the
/// physical-core count of CI (2), and oversubscribed (8).
inline constexpr int kThreadCounts[] = {1, 2, 8};

/// Runs `fn(exec, threads)` once per pinned thread count with a fresh
/// executor each time.
template <typename Fn>
void for_each_thread_count(Fn&& fn) {
  for (const int threads : kThreadCounts) {
    stats::ParallelExecutor exec(threads);
    fn(exec, threads);
  }
}

/// Configuration set for differential fuzz: strict ladders at widths
/// 8..48, a 63-bit relaxed layout (numeric-edge widths) and an
/// overlapping custom.
inline std::vector<core::GeArConfig> fuzz_configs() {
  return {
      core::GeArConfig::must(8, 2, 2),
      core::GeArConfig::must(16, 4, 4),
      core::GeArConfig::must(32, 8, 8),
      core::GeArConfig::must(48, 8, 16),
      *core::GeArConfig::make_relaxed(63, 8, 8),
      *core::GeArConfig::make_custom(16, 4, {{4, 2}, {4, 4}, {4, 6}}),
  };
}

/// Probe set for cache/selector sweeps: the full strict enumeration at
/// width `n`, every non-exact relaxed layout, one fast-path-eligible
/// custom and one deep-overlap custom that forces full synthesis.
inline std::vector<core::GeArConfig> probe_configs(int n = 16) {
  std::vector<core::GeArConfig> cfgs = core::GeArConfig::enumerate(n);
  for (int r = 1; r < n; ++r) {
    for (const auto& cfg : core::GeArConfig::enumerate_relaxed_r(n, r)) {
      if (!cfg.is_exact()) cfgs.push_back(cfg);
    }
  }
  // Strictly increasing window starts: fast-path eligible.
  cfgs.push_back(*core::GeArConfig::make_custom(16, 4, {{4, 2}, {4, 3}, {4, 4}}));
  // Equal window starts: hash-consed chain prefixes, full synthesis.
  cfgs.push_back(
      *core::GeArConfig::make_custom(12, 2, {{1, 2}, {1, 3}, {2, 2}, {6, 3}}));
  return cfgs;
}

/// `count` uniform operand pairs of `width` bits from a fixed seed.
inline std::vector<stats::OperandPair> draw_operands(int width,
                                                     std::size_t count,
                                                     std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<stats::OperandPair> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({rng.bits(width), rng.bits(width)});
  }
  return out;
}

/// Exhaustive signed-error PMF over all 2^(2N) operand pairs (N <= 10 in
/// practice). Every mass is count / 4^N, an exact dyadic rational, so
/// comparisons against it can be ==, not NEAR.
inline std::map<std::int64_t, double> exhaustive_error_pmf(
    const core::GeArConfig& cfg) {
  const core::GeArAdder adder(cfg);
  const std::uint64_t lim = 1ULL << cfg.n();
  std::map<std::int64_t, std::uint64_t> counts;
  for (std::uint64_t a = 0; a < lim; ++a) {
    for (std::uint64_t b = 0; b < lim; ++b) {
      const std::int64_t err =
          static_cast<std::int64_t>(adder.add_value(a, b)) -
          static_cast<std::int64_t>(adder.exact(a, b));
      ++counts[err];
    }
  }
  const double total = static_cast<double>(lim) * static_cast<double>(lim);
  std::map<std::int64_t, double> pmf;
  for (const auto& [key, count] : counts) {
    pmf[key] = static_cast<double>(count) / total;
  }
  return pmf;
}

}  // namespace gear::testutil
