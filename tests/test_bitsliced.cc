// Bitsliced evaluation layer: lane-layout invariants, the 64x64 transpose,
// and — the load-bearing part — differential fuzz of every bitsliced
// kernel against its scalar reference: BitslicedGearAdder vs
// GeArAdder/Corrector (>= 1e5 vectors per configuration), BitslicedNetSim
// vs Netlist::simulate / simulate_with_fault, the MC drivers under
// McKernel::kScalar vs kBitsliced (sequential and parallel at 1/2/8
// threads), the stream engine's batch path, and the fault campaign's
// use_bitsliced toggle. Everything here pins the "bit-identical to the
// scalar path" contract of DESIGN.md's bitsliced-lane-layout section.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/vulnerability.h"
#include "apps/stream_engine.h"
#include "core/adder.h"
#include "core/bitsliced_adder.h"
#include "core/config.h"
#include "core/correction.h"
#include "core/error_model.h"
#include "core/width.h"
#include "netlist/bitsliced_sim.h"
#include "netlist/circuits.h"
#include "netlist/fault.h"
#include "stats/bitsliced.h"
#include "stats/distributions.h"
#include "stats/parallel.h"
#include "stats/rng.h"
#include "test_util.h"

namespace gear {
namespace {

using core::BitslicedBatch;
using core::BitslicedGearAdder;
using core::GeArConfig;
using core::width_mask;
using testutil::for_each_thread_count;
using testutil::fuzz_configs;

std::uint64_t bit(const std::vector<std::uint64_t>& planes, int p, int lane) {
  return (planes[static_cast<std::size_t>(p)] >> lane) & 1ULL;
}

// --------------------------------------------------------------------------
// width_mask (satellite: shift-safe numeric edges)
// --------------------------------------------------------------------------

TEST(WidthMask, NumericEdges) {
  EXPECT_EQ(width_mask(0), 0ULL);
  EXPECT_EQ(width_mask(-3), 0ULL);
  EXPECT_EQ(width_mask(1), 1ULL);
  EXPECT_EQ(width_mask(32), 0xFFFFFFFFULL);  // int-shift trap width
  EXPECT_EQ(width_mask(33), 0x1FFFFFFFFULL);
  EXPECT_EQ(width_mask(63), 0x7FFFFFFFFFFFFFFFULL);
  EXPECT_EQ(width_mask(64), ~0ULL);  // UB as (1ULL << 64) - 1
  EXPECT_EQ(width_mask(65), ~0ULL);
}

TEST(WidthMask, Pow2MatchesMask) {
  for (int n = 0; n <= 63; ++n) {
    EXPECT_DOUBLE_EQ(core::width_pow2(n),
                     static_cast<double>(width_mask(n)) + 1.0)
        << n;
  }
}

// --------------------------------------------------------------------------
// transpose64 / BitslicedLanes / pack_gp
// --------------------------------------------------------------------------

TEST(Transpose64, MatchesBitwiseReference) {
  stats::Rng rng(1);
  std::uint64_t m[64], ref[64];
  for (auto& r : m) r = rng.bits(64);
  for (int r = 0; r < 64; ++r) {
    ref[r] = 0;
    for (int c = 0; c < 64; ++c) {
      ref[r] |= ((m[c] >> r) & 1ULL) << c;  // (r,c) <- (c,r)
    }
  }
  std::uint64_t t[64];
  for (int i = 0; i < 64; ++i) t[i] = m[i];
  stats::transpose64(t);
  for (int r = 0; r < 64; ++r) EXPECT_EQ(t[r], ref[r]) << r;
  stats::transpose64(t);  // involution
  for (int r = 0; r < 64; ++r) EXPECT_EQ(t[r], m[r]) << r;
}

TEST(BitslicedLanes, PackUnpackRoundtrip) {
  stats::Rng rng(2);
  for (int count : {64, 63, 37, 1}) {
    for (int width : {64, 63, 48, 33, 32, 17, 1}) {
      std::vector<std::uint64_t> vals(static_cast<std::size_t>(count));
      for (auto& v : vals) v = rng.bits(width);
      const auto lanes = stats::BitslicedLanes::pack(vals.data(), count, width);
      // Per-lane gather agrees with the packed input.
      for (int l = 0; l < count; ++l) {
        EXPECT_EQ(lanes.lane(l), vals[static_cast<std::size_t>(l)]);
      }
      for (int l = count; l < 64; ++l) EXPECT_EQ(lanes.lane(l), 0ULL);
      std::vector<std::uint64_t> back(static_cast<std::size_t>(count));
      stats::BitslicedLanes::unpack(lanes.data(), width, back.data(), count);
      EXPECT_EQ(back, vals) << "count=" << count << " width=" << width;
    }
  }
}

TEST(PackGp, MatchesPackOfScalarGp) {
  stats::Rng rng(3);
  for (int count : {64, 61, 5}) {
    for (int width : {64, 63, 48, 33, 32, 16, 7, 1}) {
      std::vector<std::uint64_t> a(64), b(64), gs(64), ps(64);
      for (int l = 0; l < count; ++l) {
        a[static_cast<std::size_t>(l)] = rng.bits(64);  // high junk bits too
        b[static_cast<std::size_t>(l)] = rng.bits(64);
        const std::uint64_t av =
            a[static_cast<std::size_t>(l)] & width_mask(width);
        const std::uint64_t bv =
            b[static_cast<std::size_t>(l)] & width_mask(width);
        gs[static_cast<std::size_t>(l)] = av & bv;
        ps[static_cast<std::size_t>(l)] = av ^ bv;
      }
      const auto gref = stats::BitslicedLanes::pack(gs.data(), count, width);
      const auto pref = stats::BitslicedLanes::pack(ps.data(), count, width);
      std::uint64_t rows_g[64], rows_p[64];
      const std::uint64_t* p =
          stats::pack_gp(a.data(), b.data(), count, width, rows_g, rows_p);
      for (int q = 0; q < width; ++q) {
        EXPECT_EQ(rows_g[q], gref.plane(q))
            << "g plane " << q << " count=" << count << " width=" << width;
        EXPECT_EQ(p[q], pref.plane(q))
            << "p plane " << q << " count=" << count << " width=" << width;
      }
    }
  }
}

// --------------------------------------------------------------------------
// BitslicedGearAdder vs GeArAdder / Corrector (>= 1e5 vectors per config)
// --------------------------------------------------------------------------

TEST(BitslicedGearAdder, DifferentialFuzzVsScalar) {
  constexpr int kBlocks = 1565;  // 1565 * 64 = 100160 >= 1e5 vectors/config
  for (const auto& cfg : fuzz_configs()) {
    const core::GeArAdder scalar(cfg);
    const core::Corrector all(cfg, core::Corrector::all_enabled());
    const std::uint64_t partial_mask = 0xAAAAAAAAAAAAAAAAULL;
    const core::Corrector partial(cfg, partial_mask);
    const BitslicedGearAdder sliced(cfg);
    const int k = cfg.k();
    stats::Rng rng(17);
    BitslicedBatch raw, corr, part;
    std::uint64_t av[64], bv[64];
    for (int blk = 0; blk < kBlocks; ++blk) {
      for (int l = 0; l < 64; ++l) {
        av[l] = rng.bits(cfg.n());
        bv[l] = rng.bits(cfg.n());
      }
      sliced.eval(av, bv, 64, 0, 0, raw);
      sliced.eval(av, bv, 64, 0, core::Corrector::all_enabled(), corr);
      sliced.eval(av, bv, 64, 0, partial_mask, part);
      for (int l = 0; l < 64; ++l) {
        const auto sres = scalar.add(av[l], bv[l]);
        std::uint64_t sum = 0, exact = 0;
        for (int p = 0; p <= cfg.n(); ++p) {
          sum |= bit(raw.approx, p, l) << p;
          exact |= bit(raw.exact, p, l) << p;
        }
        ASSERT_EQ(sum, sres.sum) << cfg.name() << " lane " << l;
        ASSERT_EQ(exact, scalar.exact(av[l], bv[l]));
        ASSERT_EQ((raw.error >> l) & 1ULL, sum != exact ? 1ULL : 0ULL);
        ASSERT_EQ((raw.any_detect >> l) & 1ULL,
                  sres.error_detected() ? 1ULL : 0ULL);
        for (int j = 0; j < k; ++j) {
          ASSERT_EQ(bit(raw.detect, j, l),
                    sres.subs[static_cast<std::size_t>(j)].detect ? 1ULL : 0ULL)
              << cfg.name() << " lane " << l << " sub " << j;
        }
        // Uncorrected eval never marks lanes corrected.
        ASSERT_EQ((raw.any_corrected >> l) & 1ULL, 0ULL);

        const auto cres = all.add(av[l], bv[l]);
        std::uint64_t csum = 0;
        for (int p = 0; p <= cfg.n(); ++p) csum |= bit(corr.approx, p, l) << p;
        ASSERT_EQ(csum, cres.sum) << cfg.name() << " lane " << l;
        ASSERT_EQ((corr.any_corrected >> l) & 1ULL,
                  cres.corrected.empty() ? 0ULL : 1ULL);
        int corrected_count = 0;
        for (int j = 0; j < k; ++j) {
          const bool in_list =
              std::find(cres.corrected.begin(), cres.corrected.end(), j) !=
              cres.corrected.end();
          ASSERT_EQ(bit(corr.corrected, j, l), in_list ? 1ULL : 0ULL)
              << cfg.name() << " lane " << l << " sub " << j;
          corrected_count += in_list ? 1 : 0;
          ASSERT_EQ(bit(corr.detect, j, l),
                    (cres.detect_mask >> j) & 1U ? 1ULL : 0ULL);
        }
        ASSERT_EQ(corrected_count, cres.cycles - 1);

        const auto pres = partial.add(av[l], bv[l]);
        std::uint64_t psum = 0;
        for (int p = 0; p <= cfg.n(); ++p) psum |= bit(part.approx, p, l) << p;
        ASSERT_EQ(psum, pres.sum) << cfg.name() << " lane " << l;
      }
    }
  }
}

TEST(BitslicedGearAdder, CarryInLanesMatchScalar) {
  for (const auto& cfg : fuzz_configs()) {
    const core::GeArAdder scalar(cfg);
    const BitslicedGearAdder sliced(cfg);
    stats::Rng rng(23);
    BitslicedBatch batch;
    std::uint64_t av[64], bv[64];
    for (int blk = 0; blk < 64; ++blk) {
      for (int l = 0; l < 64; ++l) {
        av[l] = rng.bits(cfg.n());
        bv[l] = rng.bits(cfg.n());
      }
      const std::uint64_t cin = rng.bits(64);
      sliced.eval(av, bv, 64, cin, 0, batch);
      for (int l = 0; l < 64; ++l) {
        const bool c = (cin >> l) & 1ULL;
        const auto sres = scalar.add(av[l], bv[l], c);
        std::uint64_t sum = 0, exact = 0;
        for (int p = 0; p <= cfg.n(); ++p) {
          sum |= bit(batch.approx, p, l) << p;
          exact |= bit(batch.exact, p, l) << p;
        }
        ASSERT_EQ(sum, sres.sum) << cfg.name() << " lane " << l;
        ASSERT_EQ(exact, ((av[l] & width_mask(cfg.n())) +
                          (bv[l] & width_mask(cfg.n())) + (c ? 1 : 0)));
      }
    }
  }
}

TEST(BitslicedGearAdder, DeadLanesReadZero) {
  const auto cfg = GeArConfig::must(16, 4, 4);
  const BitslicedGearAdder sliced(cfg);
  stats::Rng rng(5);
  std::uint64_t av[64], bv[64];
  for (int l = 0; l < 64; ++l) {
    av[l] = rng.bits(16);
    bv[l] = rng.bits(16);
  }
  const int count = 37;
  BitslicedBatch batch;
  // All-ones carry-in and full correction: dead lanes must still read 0.
  sliced.eval(av, bv, count, ~0ULL, core::Corrector::all_enabled(), batch);
  const std::uint64_t dead = ~stats::lane_mask(count);
  for (const auto& planes :
       {batch.approx, batch.exact, batch.detect, batch.corrected}) {
    for (const std::uint64_t w : planes) EXPECT_EQ(w & dead, 0ULL);
  }
  EXPECT_EQ(batch.error & dead, 0ULL);
  EXPECT_EQ(batch.any_detect & dead, 0ULL);
  EXPECT_EQ(batch.any_corrected & dead, 0ULL);
  // Live uncorrected lanes match the scalar carry-in add (the scalar
  // Corrector has no carry-in overload, so corrected lanes are covered by
  // the cin=0 fuzz above instead).
  const core::GeArAdder scalar(cfg);
  for (int l = 0; l < count; ++l) {
    if ((batch.any_corrected >> l) & 1ULL) continue;
    std::uint64_t sum = 0;
    for (int p = 0; p <= 16; ++p) sum |= bit(batch.approx, p, l) << p;
    ASSERT_EQ(sum, scalar.add(av[l], bv[l], true).sum) << l;
  }
}

TEST(BitslicedGearAdder, WithExactFalseSkipsExactOnly) {
  const auto cfg = GeArConfig::must(32, 8, 8);
  const BitslicedGearAdder sliced(cfg);
  stats::Rng rng(29);
  std::uint64_t av[64], bv[64];
  for (int l = 0; l < 64; ++l) {
    av[l] = rng.bits(32);
    bv[l] = rng.bits(32);
  }
  BitslicedBatch full, fast;
  sliced.eval(av, bv, 64, 0, core::Corrector::all_enabled(), full);
  fast.error = 0xDEADBEEFULL;  // sentinel: must stay untouched
  sliced.eval(av, bv, 64, 0, core::Corrector::all_enabled(), fast,
              /*with_exact=*/false);
  EXPECT_EQ(fast.approx, full.approx);
  EXPECT_EQ(fast.detect, full.detect);
  EXPECT_EQ(fast.corrected, full.corrected);
  EXPECT_EQ(fast.any_detect, full.any_detect);
  EXPECT_EQ(fast.any_corrected, full.any_corrected);
  EXPECT_EQ(fast.error, 0xDEADBEEFULL);
}

// --------------------------------------------------------------------------
// BitslicedNetSim vs Netlist::simulate / simulate_with_fault
// --------------------------------------------------------------------------

void diff_netsim(const netlist::Netlist& nl, std::uint64_t seed) {
  stats::Rng rng(seed);
  const auto vectors = netlist::random_port_vectors(nl, 64, rng);
  netlist::BitslicedNetSim sim(nl);
  sim.clear();
  for (int l = 0; l < 64; ++l) {
    sim.load_lane(l, vectors[static_cast<std::size_t>(l)]);
  }
  sim.run(/*faulty=*/false);
  for (int l = 0; l < 64; ++l) {
    const auto ref = nl.simulate(vectors[static_cast<std::size_t>(l)]);
    const auto got = sim.good_outputs(l);
    ASSERT_EQ(got.size(), ref.size());
    for (const auto& [name, value] : ref) {
      ASSERT_TRUE(got.count(name)) << name;
      ASSERT_EQ(got.at(name).to_u64(), value.to_u64())
          << name << " lane " << l;
    }
  }

  // Faulty pass: every lane carries its own fault (all three kinds).
  const auto sites = netlist::enumerate_transient_faults(nl);
  ASSERT_FALSE(sites.empty());
  std::vector<netlist::FaultSpec> lane_faults(64);
  for (int l = 0; l < 64; ++l) {
    const auto& site = sites[(seed + static_cast<std::uint64_t>(l) * 7) %
                             sites.size()];
    netlist::FaultSpec f = site;
    switch (l % 3) {
      case 0: f.kind = netlist::FaultKind::kTransient; break;
      case 1: f.kind = netlist::FaultKind::kStuckAt0; break;
      default: f.kind = netlist::FaultKind::kStuckAt1; break;
    }
    lane_faults[static_cast<std::size_t>(l)] = f;
    sim.set_fault(l, f);
  }
  sim.run(/*faulty=*/true);
  for (const auto& port : nl.outputs()) {
    for (int l = 0; l < 64; ++l) {
      const auto ref = netlist::simulate_with_fault(
          nl, lane_faults[static_cast<std::size_t>(l)],
          vectors[static_cast<std::size_t>(l)]);
      ASSERT_EQ(sim.faulty_lane_u64(port, l), ref.at(port.name).to_u64())
          << port.name << " lane " << l;
      // port_diff_lanes bit == (good != faulty) per lane.
      const bool differs =
          sim.faulty_lane_u64(port, l) != sim.good_lane_u64(port, l);
      ASSERT_EQ((sim.port_diff_lanes(port) >> l) & 1ULL,
                differs ? 1ULL : 0ULL);
    }
  }
}

TEST(BitslicedNetSim, DifferentialGearWithDetection) {
  diff_netsim(netlist::build_gear(GeArConfig::must(16, 4, 4)), 31);
}

TEST(BitslicedNetSim, DifferentialGearWithCorrection) {
  diff_netsim(netlist::build_gear(GeArConfig::must(12, 2, 4),
                                  {.with_detection = true,
                                   .with_correction = true}),
              37);
}

TEST(BitslicedNetSim, DifferentialFlaglessRca) {
  diff_netsim(netlist::build_rca(16), 41);
}

// --------------------------------------------------------------------------
// MC drivers: kScalar vs kBitsliced, sequential and parallel
// --------------------------------------------------------------------------

TEST(McKernels, SequentialDriversBitIdentical) {
  for (const auto& cfg :
       {GeArConfig::must(16, 4, 4), GeArConfig::must(32, 8, 8)}) {
    // Odd trial count: exercises the tail block (trials % 64 != 0).
    const std::uint64_t trials = 10007;
    stats::Rng r1(7), r2(7);
    const auto scalar =
        core::mc_error_probability(cfg, trials, r1, core::McKernel::kScalar);
    const auto sliced =
        core::mc_error_probability(cfg, trials, r2, core::McKernel::kBitsliced);
    EXPECT_EQ(scalar.errors, sliced.errors) << cfg.name();
    EXPECT_EQ(scalar.trials, sliced.trials);
    EXPECT_DOUBLE_EQ(scalar.p, sliced.p);

    stats::Rng r3(11), r4(11);
    const auto hist_s =
        core::mc_error_distribution(cfg, trials, r3, core::McKernel::kScalar);
    const auto hist_b = core::mc_error_distribution(cfg, trials, r4,
                                                    core::McKernel::kBitsliced);
    EXPECT_EQ(hist_s.entries(), hist_b.entries()) << cfg.name();

    stats::Rng r5(13), r6(13);
    const auto det_s = core::mc_detect_count_distribution(
        cfg, trials, r5, core::McKernel::kScalar);
    const auto det_b = core::mc_detect_count_distribution(
        cfg, trials, r6, core::McKernel::kBitsliced);
    EXPECT_EQ(det_s, det_b) << cfg.name();
  }
}

TEST(McKernels, ParallelDriversBitIdenticalAcrossThreads) {
  const auto cfg = GeArConfig::must(16, 4, 4);
  const std::uint64_t trials = 10000, seed = 99, shard = 1000;
  std::optional<core::McErrorEstimate> ref;
  std::optional<std::map<std::int64_t, std::uint64_t>> ref_hist;
  for_each_thread_count([&](stats::ParallelExecutor& exec, int threads) {
    for (auto kernel : {core::McKernel::kScalar, core::McKernel::kBitsliced}) {
      const auto est =
          core::mc_error_probability(cfg, trials, seed, exec, shard, kernel);
      if (!ref) ref = est;
      EXPECT_EQ(est.errors, ref->errors) << threads;
      EXPECT_DOUBLE_EQ(est.p, ref->p) << threads;
      const auto hist =
          core::mc_error_distribution(cfg, trials, seed, exec, shard, kernel);
      if (!ref_hist) ref_hist = hist.entries();
      EXPECT_EQ(hist.entries(), *ref_hist) << threads;
    }
  });
}

// --------------------------------------------------------------------------
// Stream engine batch path vs scalar Corrector loop
// --------------------------------------------------------------------------

TEST(StreamEngineBitsliced, BatchPathMatchesScalarReference) {
  const auto cfg = GeArConfig::must(16, 4, 4);
  for (const std::uint64_t mask : {core::Corrector::all_enabled(),
                                   std::uint64_t{0}, std::uint64_t{0b10}}) {
    const apps::StreamAdderEngine engine(cfg, mask);
    stats::Rng rng(55);
    std::vector<stats::OperandPair> ops;
    for (int i = 0; i < 1000; ++i) {  // not a multiple of 64: tail block
      ops.push_back({rng.bits(16), rng.bits(16)});
    }
    const auto st = engine.run(ops);

    // Scalar reference, one Corrector::add per op.
    const core::Corrector ref(cfg, mask);
    const core::GeArAdder adder(cfg);
    apps::StreamStats expect;
    for (const auto& [a, b] : ops) {
      const auto res = ref.add(a, b);
      expect.operations += 1;
      expect.cycles += static_cast<std::uint64_t>(res.cycles);
      expect.stall_cycles += static_cast<std::uint64_t>(res.cycles - 1);
      expect.corrected_ops += res.corrected.empty() ? 0u : 1u;
      expect.wrong_results += res.sum == adder.exact(a, b) ? 0u : 1u;
    }
    EXPECT_EQ(st.operations, expect.operations);
    EXPECT_EQ(st.cycles, expect.cycles);
    EXPECT_EQ(st.stall_cycles, expect.stall_cycles);
    EXPECT_EQ(st.corrected_ops, expect.corrected_ops);
    EXPECT_EQ(st.wrong_results, expect.wrong_results);
  }
}

TEST(StreamEngineBitsliced, ParallelRunBitIdenticalAcrossThreads) {
  const auto cfg = GeArConfig::must(16, 4, 4);
  const apps::StreamAdderEngine engine(cfg, core::Corrector::all_enabled());
  const auto factory = [](stats::Rng rng) {
    return std::make_unique<stats::UniformSource>(16, rng);
  };
  std::optional<apps::StreamStats> ref;
  for_each_thread_count([&](stats::ParallelExecutor& exec, int threads) {
    const auto st = engine.run(factory, 20000, 77, exec, 1000);
    if (!ref) ref = st;
    EXPECT_EQ(st.cycles, ref->cycles) << threads;
    EXPECT_EQ(st.stall_cycles, ref->stall_cycles) << threads;
    EXPECT_EQ(st.corrected_ops, ref->corrected_ops) << threads;
    EXPECT_EQ(st.wrong_results, ref->wrong_results) << threads;
  });
}

// --------------------------------------------------------------------------
// Fault campaign: use_bitsliced on/off equivalence
// --------------------------------------------------------------------------

void expect_counts_eq(const analysis::OutcomeCounts& a,
                      const analysis::OutcomeCounts& b) {
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.false_alarm, b.false_alarm);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.sdc, b.sdc);
}

void diff_campaign(const netlist::Netlist& nl) {
  analysis::FaultCampaignOptions opt;
  opt.samples = 2048;
  opt.include_stuck = true;
  opt.use_bitsliced = true;
  const auto sliced = analysis::run_fault_campaign(nl, opt);
  opt.use_bitsliced = false;
  const auto scalar = analysis::run_fault_campaign(nl, opt);
  expect_counts_eq(sliced.totals, scalar.totals);
  ASSERT_EQ(sliced.per_net.size(), scalar.per_net.size());
  for (std::size_t i = 0; i < sliced.per_net.size(); ++i) {
    expect_counts_eq(sliced.per_net[i], scalar.per_net[i]);
  }
  EXPECT_EQ(sliced.error_magnitude.entries(), scalar.error_magnitude.entries());
  EXPECT_EQ(sliced.sdc_magnitude.entries(), scalar.sdc_magnitude.entries());
}

TEST(FaultCampaignBitsliced, GearCampaignMatchesScalar) {
  diff_campaign(netlist::build_gear(GeArConfig::must(8, 2, 2)));
}

TEST(FaultCampaignBitsliced, FlaglessRcaCampaignMatchesScalar) {
  diff_campaign(netlist::build_rca(8));
}

}  // namespace
}  // namespace gear
