// Carry-in and subtraction extension tests.
#include <gtest/gtest.h>

#include "core/adder.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

TEST(CarryIn, ExactConfigHonoursCarry) {
  const GeArAdder exact(GeArConfig::must(12, 11, 1));
  stats::Rng rng(101);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    EXPECT_EQ(exact.add_value(a, b, true), a + b + 1);
    EXPECT_EQ(exact.add_value(a, b, false), a + b);
  }
}

TEST(CarryIn, ApproximateCarryInNeverOvershoots) {
  // (Note: add(a,b,1) can be *smaller* than add(a,b,0) — the carry can
  // wrap sub-adder 0's region while the boundary carry is dropped — but
  // it never exceeds the exact a+b+1, and an undetected result is exact.)
  const GeArAdder adder(GeArConfig::must(16, 4, 4));
  stats::Rng rng(102);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const AddResult with = adder.add(a, b, true);
    EXPECT_LE(with.sum, a + b + 1);
    if (!with.error_detected()) {
      EXPECT_EQ(with.sum, a + b + 1) << "a=" << a << " b=" << b;
    }
  }
}

TEST(CarryIn, AddValueMatchesAddWithCarry) {
  const GeArAdder adder(GeArConfig::must(16, 2, 6));
  stats::Rng rng(103);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    EXPECT_EQ(adder.add_value(a, b, true), adder.add(a, b, true).sum);
  }
}

TEST(CarryIn, DetectionStillSoundWithCarry) {
  // No detect flags => the result (including the carry-in) is exact.
  const GeArAdder adder(GeArConfig::must(10, 2, 2));
  for (std::uint64_t a = 0; a < 1024; a += 3) {
    for (std::uint64_t b = 0; b < 1024; b += 5) {
      const AddResult r = adder.add(a, b, true);
      if (!r.error_detected()) {
        ASSERT_EQ(r.sum, a + b + 1) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Subtraction, ExactConfigSubtracts) {
  const GeArAdder exact(GeArConfig::must(12, 11, 1));
  stats::Rng rng(104);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    const std::uint64_t d = exact.sub_value(a, b);
    EXPECT_EQ(d & 0xFFF, (a - b) & 0xFFF);
    // Bit N is the NOT-borrow flag: set iff a >= b.
    EXPECT_EQ((d >> 12) & 1, a >= b ? 1u : 0u);
  }
}

TEST(Subtraction, RawSumUnderestimates) {
  // The raw (N+1-bit) value of a + ~b + 1 only loses carries, so it never
  // exceeds the exact 2^N + (a - b). The *masked* difference, however,
  // wraps: a missing 2^j carry shows up as -(2^j) mod 2^N, i.e. a huge
  // positive residue — the known hazard of subtracting with speculative
  // adders (the near-cancellation a ~ b is exactly the all-propagate
  // pattern that defeats carry prediction).
  const GeArAdder adder(GeArConfig::must(16, 4, 4));
  stats::Rng rng(105);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const std::uint64_t full = adder.sub_value(a, b);
    const std::uint64_t exact_full = a + (~b & 0xFFFF) + 1;
    EXPECT_LE(full, exact_full) << "a=" << a << " b=" << b;
    // And any deviation is bounded by the sum of region-boundary weights
    // (res_lo = 8 and 12, plus the carry-out bit).
    const std::uint64_t deficit = exact_full - full;
    EXPECT_LE(deficit, (1ULL << 8) + (1ULL << 12) + (1ULL << 16))
        << "a=" << a << " b=" << b;
  }
}

TEST(Subtraction, ExactCancellationAlwaysErrs) {
  // a - a is the adversarial pattern: a + ~a is all-propagate at every
  // bit, so the injected +1 must ripple the full width — exactly what
  // windowed carry prediction cannot see. Every such subtraction is
  // wrong (and detected). In contrast, a - (a + e) for e > 0 is benign:
  // the borrow pattern 2^N-1-e has kills in its low bits that absorb the
  // +1, so no long chain ever forms.
  const GeArAdder adder(GeArConfig::must(16, 4, 4));
  stats::Rng rng(106);
  int benign_errors = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t a = rng.bits(16);
    // Exact cancellation: always wrong, always detected.
    const AddResult cancel = adder.add(a, ~a & 0xFFFF, true);
    ASSERT_NE(cancel.sum, 1ULL << 16) << a;
    ASSERT_TRUE(cancel.error_detected()) << a;
    // Near-cancellation with a nonzero gap: exact.
    const std::uint64_t e = 1 + rng.bits(3);
    const std::uint64_t b = (a + e) & 0xFFFF;
    if (adder.sub_value(a, b) != a + (~b & 0xFFFF) + 1) ++benign_errors;
  }
  EXPECT_EQ(benign_errors, 0);
}

TEST(Subtraction, SelfDifferenceIsZero) {
  // a - a = a + ~a + 1: every bit position propagates, but the forced
  // carry ripples from the (exact) first sub-adder; higher windows see
  // all-propagate with carry-in 0 and produce all-ones *unless* detected.
  // The detect flags must fire whenever the result is wrong.
  const GeArAdder adder(GeArConfig::must(12, 4, 4));
  for (std::uint64_t a = 0; a < 4096; ++a) {
    const AddResult r = adder.add(a, ~a & 0xFFF, true);
    if (r.sum != (1ULL << 12)) {  // exact: a + ~a + 1 = 2^12
      ASSERT_TRUE(r.error_detected()) << a;
    }
  }
}

}  // namespace
}  // namespace gear::core
