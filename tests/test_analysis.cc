// Analysis-layer tests: design-space enumeration (Fig. 1/7), Pareto
// extraction, the Table IV execution-time model, table formatting.
#include <gtest/gtest.h>

#include "analysis/design_space.h"
#include "analysis/metrics.h"
#include "analysis/pareto.h"
#include "analysis/table.h"
#include "analysis/timing_model.h"
#include "core/error_model.h"

namespace gear::analysis {
namespace {

TEST(DesignSpace, AccuracySweepShapes) {
  const auto sweep = accuracy_sweep(16, 2);
  ASSERT_EQ(sweep.size(), 14u);
  // Accuracy grows monotonically with P.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].accuracy_percent + 1e-9, sweep[i - 1].accuracy_percent);
  }
  // Paper Section 4.1: (R=2,P=2) ~51%, (R=2,P=6) ~97%.
  EXPECT_NEAR(sweep[1].accuracy_percent, 51.0, 3.0);
  EXPECT_NEAR(sweep[5].accuracy_percent, 97.0, 1.5);
}

TEST(DesignSpace, PaperSection41Comparison) {
  // (R=4,P=4) accuracy ~94%, lower than (R=2,P=6) ~97% at equal L=8.
  const auto r4 = accuracy_sweep(16, 4);
  const auto r2 = accuracy_sweep(16, 2);
  const double acc_r4_p4 = r4[3].accuracy_percent;
  const double acc_r2_p6 = r2[5].accuracy_percent;
  EXPECT_NEAR(acc_r4_p4, 94.0, 2.0);
  EXPECT_LT(acc_r4_p4, acc_r2_p6);
}

TEST(DesignSpace, GdaReachableFlagsMatchCoverage) {
  for (int r : {2, 3, 4, 8}) {
    for (const auto& pt : accuracy_sweep(16, r)) {
      EXPECT_EQ(pt.gda_reachable,
                pt.cfg.is_strict() && pt.cfg.p() % pt.cfg.r() == 0)
          << pt.cfg.name();
    }
  }
}

TEST(DesignSpace, CoverageComparisonHasAllFamilies) {
  const auto cmp = coverage_comparison(16, 2);
  ASSERT_EQ(cmp.size(), 7u);
  // GeAr relaxed covers a superset of every other family.
  const auto& gear = cmp.back().p_values;
  for (const auto& fam : cmp) {
    for (int p : fam.p_values) {
      EXPECT_NE(std::find(gear.begin(), gear.end(), p), gear.end())
          << core::family_name(fam.family) << " P=" << p;
    }
  }
}

TEST(Pareto, DominationRules) {
  const DesignCandidate a{"a", 1.0, 10.0, 0.1};
  const DesignCandidate b{"b", 2.0, 10.0, 0.1};
  const DesignCandidate c{"c", 1.0, 10.0, 0.1};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, c));  // equal: no strict improvement
}

TEST(Pareto, FrontExtraction) {
  std::vector<DesignCandidate> pts{
      {"fast-big", 1.0, 30.0, 0.2},
      {"slow-small", 3.0, 10.0, 0.2},
      {"dominated", 3.0, 30.0, 0.3},
      {"accurate", 2.0, 20.0, 0.0},
  };
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  for (const auto& p : front) EXPECT_NE(p.label, "dominated");
}

TEST(TimingModel, TableIVGearRows) {
  // Paper Table IV: N=20 image integral, full-HD ops. Delay and Perr from
  // the paper's own columns must reproduce the four timing columns.
  struct Row {
    double delay_ns, perr;
    int k;
    double approx_s, worst_s, avg_s, best_s;
  };
  const Row rows[] = {
      // GeAr(1,9): k=11
      {1.256, 4.882813e-3, 11, 2.604442e-3, 2.731612e-3, 2.674385e-3, 2.617159e-3},
      // GeAr(2,8): k=6
      {1.233, 7.324219e-3, 6, 2.556749e-3, 2.650380e-3, 2.612927e-3, 2.575475e-3},
      // GeAr(5,5): k=3
      {1.219, 30.273438e-3, 3, 2.527718e-3, 2.680764e-3, 2.642502e-3, 2.604241e-3},
  };
  for (const Row& row : rows) {
    const ExecutionTiming t = execution_timing(row.delay_ns, row.perr, row.k);
    EXPECT_NEAR(t.approx_s, row.approx_s, row.approx_s * 1e-4);
    EXPECT_NEAR(t.worst_s, row.worst_s, row.worst_s * 1e-4);
    EXPECT_NEAR(t.average_s, row.avg_s, row.avg_s * 1e-4);
    EXPECT_NEAR(t.best_s, row.best_s, row.best_s * 1e-4);
  }
}

TEST(TimingModel, RcaHasNoCorrectionOverhead) {
  const ExecutionTiming t = execution_timing(1.365, 0.0, 1);
  EXPECT_DOUBLE_EQ(t.approx_s, t.worst_s);
  EXPECT_DOUBLE_EQ(t.approx_s, t.best_s);
  EXPECT_NEAR(t.approx_s, 2.830464e-3, 2e-6);  // paper's RCA row
}

TEST(TimingModel, OrderingBestAvgWorst) {
  const ExecutionTiming t = execution_timing(1.2, 0.05, 8);
  EXPECT_LT(t.approx_s, t.best_s);
  EXPECT_LT(t.best_s, t.average_s);
  EXPECT_LT(t.average_s, t.worst_s);
}

TEST(TimingModel, ExpectedTimeFromPmf) {
  // PMF: 90% no error (1 cycle), 10% one faulty sub-adder (2 cycles).
  const std::vector<double> pmf{0.9, 0.1};
  const double t = expected_time_s(1.0, pmf, 1000);
  EXPECT_NEAR(t, 1000 * 1e-9 * 1.1, 1e-12);
}

TEST(Table, AsciiLayout) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"x,y", "q\"z"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"z\""), std::string::npos);
}

TEST(Table, Formatting) {
  EXPECT_EQ(fmt_sci(2.604442e-3, 6), "2.604442E-03");
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.029297, 4), "2.9297%");
}

}  // namespace
}  // namespace gear::analysis
