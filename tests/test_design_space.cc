// HeteroSpace / explore_hetero: the ranking-DP enumerator of the
// heterogeneous per-segment layout space and its budgeted streaming
// explorer (DESIGN.md §5g).
//
// The load-bearing claims pinned here:
//  * index -> layout is a bijection: the decode order equals a
//    brute-force lexicographic enumeration, encode inverts decode, and
//    every decoded layout is valid, tiles [0, N) and respects the spec's
//    k/L bounds (and survives a make_custom round trip).
//  * explore_hetero is bit-identical across thread counts {1, 2, 8} and
//    all serial/parallel x cached/uncached combinations.
//  * the branch-and-bound pruner keeps exactly the frontier the
//    unpruned referee keeps, while actually pruning.
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/design_space.h"
#include "analysis/dse_cache.h"
#include "core/config.h"
#include "test_util.h"

namespace {

using gear::analysis::DseCache;
using gear::analysis::HeteroExploreOptions;
using gear::analysis::HeteroExploreResult;
using gear::analysis::HeteroSpace;
using gear::analysis::HeteroSpaceSpec;
using gear::analysis::SweepContext;
using gear::analysis::explore_hetero;
using gear::core::GeArConfig;

/// A small, fully enumerable spec (a few thousand layouts).
HeteroSpaceSpec small_spec() {
  HeteroSpaceSpec spec;
  spec.n = 12;
  spec.min_l0 = 1;
  spec.max_l0 = 11;
  spec.min_r = 1;
  spec.max_r = 4;
  spec.min_p = 1;
  spec.max_p = 4;
  spec.max_l = 6;
  spec.max_k = 4;
  return spec;
}

/// The bench's big spec: ~2.4e11 layouts, far beyond materialization.
HeteroSpaceSpec big_spec() {
  HeteroSpaceSpec spec;
  spec.n = 32;
  spec.min_l0 = 1;
  spec.max_l0 = 31;
  spec.min_r = 1;
  spec.max_r = 8;
  spec.min_p = 1;
  spec.max_p = 8;
  spec.max_l = 12;
  spec.max_k = 8;
  return spec;
}

/// Brute-force reference enumeration in the documented ranking order:
/// l0 ascending, then per segment R ascending, P ascending. Mirrors the
/// spec constraints directly — independently of the counting DP.
void enumerate_rec(const HeteroSpaceSpec& spec, int l0, int res_lo,
                   int prev_win_lo,
                   std::vector<GeArConfig::Segment>& prefix,
                   std::vector<std::pair<int, std::vector<GeArConfig::Segment>>>&
                       out) {
  if (res_lo == spec.n) {
    out.emplace_back(l0, prefix);
    return;
  }
  if (static_cast<int>(prefix.size()) >= spec.max_k - 1) return;
  for (int r = spec.min_r; r <= std::min(spec.max_r, spec.n - res_lo); ++r) {
    const int p_hi = std::min({spec.max_p, spec.max_l - r, res_lo - prev_win_lo});
    for (int p = spec.min_p; p <= p_hi; ++p) {
      prefix.push_back({r, p});
      enumerate_rec(spec, l0, res_lo + r, res_lo - p, prefix, out);
      prefix.pop_back();
    }
  }
}

std::vector<std::pair<int, std::vector<GeArConfig::Segment>>> enumerate_all(
    const HeteroSpaceSpec& spec) {
  std::vector<std::pair<int, std::vector<GeArConfig::Segment>>> out;
  std::vector<GeArConfig::Segment> prefix;
  for (int l0 = std::max(1, spec.min_l0);
       l0 <= std::min(spec.max_l0, spec.n - 1); ++l0) {
    enumerate_rec(spec, l0, l0, 0, prefix, out);
  }
  return out;
}

TEST(HeteroSpace, DecodeMatchesBruteForceEnumeration) {
  const HeteroSpaceSpec spec = small_spec();
  const HeteroSpace space(spec);
  const auto reference = enumerate_all(spec);
  ASSERT_EQ(space.size(), reference.size());
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const GeArConfig got = space.decode(i);
    const auto& [l0, segs] = reference[static_cast<std::size_t>(i)];
    // Compare through make_custom so uniform geometries canonicalize the
    // same way on both sides (operator== compares layouts).
    const auto want = GeArConfig::make_custom(spec.n, l0, segs);
    ASSERT_TRUE(want.has_value());
    EXPECT_EQ(got, *want) << "index " << i;
  }
}

TEST(HeteroSpace, EncodeInvertsDecodeExhaustively) {
  const HeteroSpace space(small_spec());
  ASSERT_GT(space.size(), 0u);
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const auto back = space.encode(space.decode(i));
    ASSERT_TRUE(back.has_value()) << "index " << i;
    EXPECT_EQ(*back, i);
  }
}

TEST(HeteroSpace, DecodedLayoutsAreValidTilingsWithinBounds) {
  const HeteroSpaceSpec spec = small_spec();
  const HeteroSpace space(spec);
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const GeArConfig cfg = space.decode(i);
    const auto& layout = cfg.layout();
    ASSERT_GE(layout.size(), 2u);
    ASSERT_LE(static_cast<int>(layout.size()), spec.max_k);
    // Result regions tile [0, n) contiguously.
    EXPECT_EQ(layout[0].res_lo, 0);
    EXPECT_EQ(layout.back().res_hi, spec.n - 1);
    const int l0 = layout[0].res_hi + 1;
    EXPECT_GE(l0, spec.min_l0);
    EXPECT_LE(l0, spec.max_l0);
    for (std::size_t j = 1; j < layout.size(); ++j) {
      EXPECT_EQ(layout[j].res_lo, layout[j - 1].res_hi + 1);
      const int r = layout[j].result_len();
      const int p = layout[j].prediction_len();
      EXPECT_GE(r, spec.min_r);
      EXPECT_LE(r, spec.max_r);
      EXPECT_GE(p, spec.min_p);
      EXPECT_LE(p, spec.max_p);
      EXPECT_LE(r + p, spec.max_l);
    }
    // And the layout survives a make_custom round trip bit for bit.
    std::vector<GeArConfig::Segment> segs;
    for (std::size_t j = 1; j < layout.size(); ++j) {
      segs.push_back({layout[j].result_len(), layout[j].prediction_len()});
    }
    const auto rebuilt = GeArConfig::make_custom(spec.n, l0, segs);
    ASSERT_TRUE(rebuilt.has_value()) << "index " << i;
    EXPECT_EQ(*rebuilt, cfg);
  }
}

TEST(HeteroSpace, EncodeRejectsLayoutsOutsideTheSpec) {
  const HeteroSpace space(small_spec());
  // Wrong width.
  EXPECT_FALSE(space.encode(GeArConfig::must(16, 4, 4)).has_value());
  // R above max_r (spec caps at 4).
  EXPECT_FALSE(
      space.encode(*GeArConfig::make_custom(12, 7, {{5, 2}})).has_value());
  // Window length above max_l (spec caps at 6).
  EXPECT_FALSE(
      space.encode(*GeArConfig::make_custom(12, 8, {{4, 4}})).has_value());
  // Too many sub-adders (max_k = 4).
  EXPECT_FALSE(
      space
          .encode(*GeArConfig::make_custom(12, 4, {{2, 1}, {2, 1}, {2, 2}, {2, 2}}))
          .has_value());
  // The exact adder (no segments) is excluded from the space.
  EXPECT_FALSE(space.encode(*GeArConfig::make_custom(12, 12, {})).has_value());
}

TEST(HeteroSpace, SampledBijectionOnAstronomicalSpace) {
  const HeteroSpace space(big_spec());
  ASSERT_GT(space.size(), 1ULL << 30);  // far beyond materialization
  // Stride-sample the full index range, plus both endpoints.
  const std::uint64_t stride = space.size() / 997;  // prime sample count
  for (std::uint64_t i = 0; i < space.size(); i += stride) {
    const auto back = space.encode(space.decode(i));
    ASSERT_TRUE(back.has_value()) << "index " << i;
    ASSERT_EQ(*back, i);
  }
  const auto last = space.encode(space.decode(space.size() - 1));
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(*last, space.size() - 1);
}

TEST(HeteroSpace, DegenerateSpecsAreEmpty) {
  HeteroSpaceSpec spec = small_spec();
  spec.max_k = 1;  // no segments allowed, and the exact adder is excluded
  EXPECT_EQ(HeteroSpace(spec).size(), 0u);
  spec = small_spec();
  spec.min_l0 = 8;
  spec.max_l0 = 4;
  EXPECT_EQ(HeteroSpace(spec).size(), 0u);
  spec = small_spec();
  spec.n = 1;
  EXPECT_EQ(HeteroSpace(spec).size(), 0u);
}

TEST(ExploreHetero, BitIdenticalAcrossThreadsAndCaching) {
  const HeteroSpace space(small_spec());
  HeteroExploreOptions opts;
  opts.budget = 1500;
  opts.max_error_probability = 0.6;
  opts.shard_size = 128;  // span many shards even at this budget

  const HeteroExploreResult referee = explore_hetero(space, opts);
  EXPECT_EQ(referee.evaluated, opts.budget);
  ASSERT_FALSE(referee.front.empty());

  // Serial cached.
  DseCache serial_cache;
  EXPECT_EQ(explore_hetero(space, opts, SweepContext{nullptr, &serial_cache}),
            referee);

  // Parallel x {1, 2, 8}, uncached and cached (cold + warm).
  gear::testutil::for_each_thread_count([&](auto& exec, int threads) {
    SCOPED_TRACE(threads);
    EXPECT_EQ(explore_hetero(space, opts, SweepContext{&exec, nullptr}),
              referee);
    DseCache cache;
    SweepContext ctx{&exec, &cache};
    EXPECT_EQ(explore_hetero(space, opts, ctx), referee);  // cold
    EXPECT_EQ(explore_hetero(space, opts, ctx), referee);  // warm
  });
}

TEST(ExploreHetero, PrunedFrontMatchesUnprunedReferee) {
  const HeteroSpace space(small_spec());
  for (const bool det : {false, true}) {
    SCOPED_TRACE(det);
    HeteroExploreOptions opts;
    opts.budget = 0;  // exhaustive
    opts.with_detection = det;
    opts.max_error_probability = 0.5;
    opts.prune = true;
    HeteroExploreOptions ref_opts = opts;
    ref_opts.prune = false;

    DseCache cache;
    gear::stats::ParallelExecutor exec(8);
    SweepContext ctx{&exec, &cache};
    const HeteroExploreResult pruned = explore_hetero(space, opts, ctx);
    const HeteroExploreResult referee = explore_hetero(space, ref_opts, ctx);

    // The front is identical; only the work accounting may differ.
    EXPECT_EQ(pruned.front, referee.front);
    EXPECT_EQ(pruned.evaluated, referee.evaluated);
    EXPECT_EQ(pruned.filtered, referee.filtered);
    EXPECT_EQ(referee.pruned, 0u);
    EXPECT_LE(pruned.synthesized, referee.synthesized);
    if (!det) {
      // The no-detection bound is tight enough to actually prune here.
      EXPECT_GT(pruned.pruned, 0u);
    }
  }
}

TEST(ExploreHetero, BudgetStrideSamplesTheSpace) {
  const HeteroSpace space(small_spec());
  ASSERT_GT(space.size(), 64u);
  HeteroExploreOptions opts;
  opts.budget = 64;
  const HeteroExploreResult got = explore_hetero(space, opts);
  EXPECT_EQ(got.space_size, space.size());
  EXPECT_EQ(got.evaluated, 64u);
  const std::uint64_t stride = space.size() / 64;
  for (const auto& c : got.front) {
    EXPECT_EQ(c.index % stride, 0u);
    EXPECT_LT(c.index, space.size());
  }
  // budget 0 and budget >= size both mean the whole space.
  HeteroExploreOptions all;
  all.max_error_probability = 0.25;
  const HeteroExploreResult full = explore_hetero(space, all);
  EXPECT_EQ(full.evaluated, space.size());
  all.budget = space.size() + 1000;
  EXPECT_EQ(explore_hetero(space, all), full);
}

TEST(ExploreHetero, ErrorBoundFiltersBeforeRanking) {
  const HeteroSpace space(small_spec());
  HeteroExploreOptions opts;
  opts.budget = 500;
  opts.max_error_probability = 0.05;
  const HeteroExploreResult got = explore_hetero(space, opts);
  EXPECT_GT(got.filtered, 0u);
  for (const auto& c : got.front) {
    EXPECT_LE(c.error, opts.max_error_probability);
  }
}

}  // namespace
