// Netlist specialization (constant propagation + DCE) tests.
#include <gtest/gtest.h>

#include "core/adder.h"
#include "core/bitvec.h"
#include "netlist/builder.h"
#include "netlist/circuits.h"
#include "netlist/transform.h"
#include "stats/rng.h"
#include "synth/report.h"

namespace gear::netlist {
namespace {

TEST(Specialize, MuxCollapsesOnTiedSelect) {
  Builder b("mux");
  const Bus a = b.input("a", 1);
  const Bus c = b.input("b", 1);
  const Bus sel = b.input("sel", 1);
  b.output("o", b.mux(sel[0], a[0], c[0]));
  const Netlist nl = std::move(b).take();

  const Netlist s0 = specialize(nl, {{"sel", 0}});
  EXPECT_EQ(s0.gate_count(), 0u);  // pure alias, no logic left
  for (int av = 0; av <= 1; ++av) {
    const auto out = s0.simulate({{"a", core::BitVec(1, static_cast<std::uint64_t>(av))},
                                  {"b", core::BitVec(1, 1)}});
    EXPECT_EQ(out.at("o").to_u64(), static_cast<std::uint64_t>(av));
  }
  const Netlist s1 = specialize(nl, {{"sel", 1}});
  const auto out = s1.simulate({{"a", core::BitVec(1, 0)}, {"b", core::BitVec(1, 1)}});
  EXPECT_EQ(out.at("o").to_u64(), 1u);
}

TEST(Specialize, TiedPortRemovedFromInputs) {
  const Netlist gda = build_gda(8, 2, 2);
  const Netlist spec = specialize(gda, {{"cfg", 0}});
  for (const auto& port : spec.inputs()) {
    EXPECT_NE(port.name, "cfg");
  }
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();
}

TEST(Specialize, PreservesFunctionExhaustive) {
  // Specialized GDA (prediction mode) must compute exactly what the full
  // circuit computes with cfg=0.
  for (auto [mb, mc] : {std::pair{1, 2}, {2, 2}, {2, 4}}) {
    const Netlist full = build_gda(8, mb, mc);
    const Netlist spec = specialize(full, {{"cfg", 0}});
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(spec.simulate_add(a, b), full.simulate_add(a, b))
            << "mb=" << mb << " mc=" << mc;
      }
    }
  }
}

TEST(Specialize, RippleModeAlsoPreserved) {
  const Netlist full = build_gda(8, 2, 2);
  const Netlist spec = specialize(full, {{"cfg", 0b111}});
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      ASSERT_EQ(spec.simulate_add(a, b), a + b);  // ripple mode is exact
    }
  }
}

TEST(Specialize, RemovesDeadLogic) {
  const Netlist full = build_gda(16, 4, 8);
  const Netlist spec = specialize(full, {{"cfg", 0}});
  EXPECT_LT(spec.gate_count(), full.gate_count());
}

TEST(Specialize, CutsGdaCriticalPath) {
  // Case analysis removes the structural mux-ripple chain: the configured
  // delay is far below the unconstrained one and scales with M_C, not N.
  const Netlist full = build_gda(16, 4, 4);
  const double unconstrained = synth::synthesize(full).delay_ns;
  const double configured =
      synth::synthesize(specialize(full, {{"cfg", 0}})).delay_ns;
  EXPECT_LT(configured, unconstrained);
}

TEST(Specialize, NoTiesIsFunctionIdentity) {
  const Netlist full = build_rca(8);
  const Netlist spec = specialize(full, {});
  stats::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    ASSERT_EQ(spec.simulate_add(a, b), a + b);
  }
  // Carry chain must survive untouched (area model intact).
  const auto rep = synth::synthesize(spec);
  EXPECT_EQ(rep.area_luts, 8);
}

TEST(Specialize, ConstantFoldingThroughGates) {
  Builder b("fold");
  const Bus a = b.input("a", 1);
  const Bus t = b.input("t", 2);
  // (a & t0) | (a ^ t1) with t=0b01: (a&1)|(a^0) = a | a = a.
  const NetId e = b.or_(b.and_(a[0], t[0]), b.xor_(a[0], t[1]));
  b.output("o", e);
  const Netlist spec = specialize(std::move(b).take(), {{"t", 0b01}});
  for (int av = 0; av <= 1; ++av) {
    const auto out =
        spec.simulate({{"a", core::BitVec(1, static_cast<std::uint64_t>(av))}});
    EXPECT_EQ(out.at("o").to_u64(), static_cast<std::uint64_t>(av));
  }
  EXPECT_LE(spec.gate_count(), 1u);
}

TEST(Specialize, GearUnaffectedByEmptyTies) {
  const auto cfg = core::GeArConfig::must(12, 4, 4);
  const Netlist full = build_gear(cfg);
  const Netlist spec = specialize(full, {});
  const core::GeArAdder model(cfg);
  stats::Rng rng(100);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    ASSERT_EQ(spec.simulate_add(a, b), model.add_value(a, b));
  }
}

}  // namespace
}  // namespace gear::netlist
