// Configuration-coverage tests (paper Sections 1.1 / 3.1, Fig. 1):
// functional equivalence of the baselines to their GeAr configurations,
// exhaustively for small widths and randomized for the paper's widths.
#include <gtest/gtest.h>

#include "adders/eta.h"
#include "adders/gda.h"
#include "adders/speculative.h"
#include "core/adder.h"
#include "core/coverage.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

TEST(Coverage, MappingHelpers) {
  auto aca1 = as_aca1(16, 4);
  ASSERT_TRUE(aca1);
  EXPECT_EQ(aca1->r(), 1);
  EXPECT_EQ(aca1->p(), 3);

  auto etaii = as_etaii(16, 4);
  ASSERT_TRUE(etaii);
  EXPECT_EQ(etaii->r(), 4);
  EXPECT_EQ(etaii->p(), 4);

  auto aca2 = as_aca2(16, 8);
  ASSERT_TRUE(aca2);
  EXPECT_EQ(aca2->r(), 4);
  EXPECT_EQ(aca2->p(), 4);

  auto gda = as_gda(16, 4, 8);
  ASSERT_TRUE(gda);
  EXPECT_EQ(gda->r(), 4);
  EXPECT_EQ(gda->p(), 8);

  EXPECT_FALSE(as_gda(16, 4, 6));  // M_C not a multiple of M_B
  EXPECT_FALSE(as_aca2(16, 7));    // odd L
}

TEST(Coverage, Aca1EquivalenceExhaustive) {
  // ACA-I(L) == GeAr(R=1, P=L-1), exhaustive at N=8.
  for (int l : {2, 3, 4}) {
    const adders::Aca1Adder aca(8, l);
    const GeArAdder gear(*as_aca1(8, l));
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(aca.add(a, b), gear.add_value(a, b))
            << "l=" << l << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Coverage, Aca2EquivalenceExhaustive) {
  // ACA-II(L) == GeAr(R=L/2, P=L/2), exhaustive at N=8.
  for (int l : {2, 4, 8}) {
    const adders::Aca2Adder aca(8, l);
    const GeArAdder gear(*as_aca2(8, l));
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(aca.add(a, b), gear.add_value(a, b))
            << "l=" << l << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Coverage, EtaiiEquivalenceExhaustive) {
  for (int seg : {1, 2, 4}) {
    const adders::EtaiiAdder eta(8, seg);
    const GeArAdder gear(*as_etaii(8, seg));
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(eta.add(a, b), gear.add_value(a, b))
            << "seg=" << seg << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Coverage, GdaEquivalenceExhaustive) {
  for (auto [mb, mc] : {std::pair{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 4}, {4, 4}}) {
    const adders::GdaAdder gda(8, mb, mc);
    const GeArAdder gear(*as_gda(8, mb, mc));
    for (std::uint64_t a = 0; a < 256; ++a) {
      for (std::uint64_t b = 0; b < 256; ++b) {
        ASSERT_EQ(gda.add(a, b), gear.add_value(a, b))
            << "mb=" << mb << " mc=" << mc << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Coverage, EquivalencesRandomizedPaperWidths) {
  stats::Rng rng(51);
  const adders::Aca1Adder aca1(16, 4);
  const GeArAdder g1(*as_aca1(16, 4));
  const adders::EtaiiAdder etaii(16, 4);
  const GeArAdder g2(*as_etaii(16, 4));
  const adders::Aca2Adder aca2(16, 8);
  const GeArAdder g3(*as_aca2(16, 8));
  const adders::GdaAdder gda44(16, 4, 4);
  const GeArAdder g4(*as_gda(16, 4, 4));
  const adders::GdaAdder gda48(16, 4, 8);
  const GeArAdder g5(*as_gda(16, 4, 8));
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    ASSERT_EQ(aca1.add(a, b), g1.add_value(a, b));
    ASSERT_EQ(etaii.add(a, b), g2.add_value(a, b));
    ASSERT_EQ(aca2.add(a, b), g3.add_value(a, b));
    ASSERT_EQ(gda44.add(a, b), g4.add_value(a, b));
    ASSERT_EQ(gda48.add(a, b), g5.add_value(a, b));
  }
}

TEST(Coverage, GearEquivalentAccessors) {
  EXPECT_EQ(adders::Aca1Adder(16, 4).gear_equivalent()->p(), 3);
  EXPECT_EQ(adders::Aca2Adder(16, 8).gear_equivalent()->r(), 4);
  EXPECT_EQ(adders::EtaiiAdder(16, 4).gear_equivalent()->p(), 4);
  EXPECT_EQ(adders::GdaAdder(16, 4, 8).gear_equivalent()->p(), 8);
}

TEST(Coverage, Fig1CountsR2) {
  // N=16, R=2 (paper Fig. 1a): ETAII/ACA-II reach only P=2; GDA reaches
  // even P; GeAr reaches every P in [1, 14].
  EXPECT_EQ(config_count(AdderFamily::kEtaII, 16, 2), 1);
  EXPECT_EQ(config_count(AdderFamily::kAcaII, 16, 2), 1);
  EXPECT_EQ(reachable_p_values(AdderFamily::kEtaII, 16, 2),
            std::vector<int>{2});
  EXPECT_EQ(reachable_p_values(AdderFamily::kGda, 16, 2),
            (std::vector<int>{2, 4, 6, 8, 10, 12, 14}));
  EXPECT_EQ(config_count(AdderFamily::kGearRelaxed, 16, 2), 14);
  // ACA-I does not exist at R=2 (paper: "cannot be configured").
  EXPECT_EQ(config_count(AdderFamily::kAcaI, 16, 2), 0);
}

TEST(Coverage, Fig1CountsR4) {
  EXPECT_EQ(reachable_p_values(AdderFamily::kEtaII, 16, 4),
            std::vector<int>{4});
  EXPECT_EQ(reachable_p_values(AdderFamily::kGda, 16, 4),
            (std::vector<int>{4, 8, 12}));
  EXPECT_EQ(config_count(AdderFamily::kGearRelaxed, 16, 4), 12);
  EXPECT_EQ(config_count(AdderFamily::kAcaI, 16, 4), 0);
}

TEST(Coverage, GearStrictSubsetOfRelaxed) {
  for (int r = 1; r <= 8; ++r) {
    const auto strict = reachable_p_values(AdderFamily::kGearStrict, 16, r);
    const auto relaxed = reachable_p_values(AdderFamily::kGearRelaxed, 16, r);
    EXPECT_LE(strict.size(), relaxed.size());
    for (int p : strict) {
      EXPECT_NE(std::find(relaxed.begin(), relaxed.end(), p), relaxed.end());
    }
  }
}

TEST(Coverage, GdaSubsetOfGearStrict) {
  for (int r = 1; r <= 8; ++r) {
    const auto gda = reachable_p_values(AdderFamily::kGda, 16, r);
    const auto strict = reachable_p_values(AdderFamily::kGearStrict, 16, r);
    for (int p : gda) {
      EXPECT_NE(std::find(strict.begin(), strict.end(), p), strict.end())
          << "r=" << r << " p=" << p;
    }
  }
}

TEST(Coverage, FamilyNames) {
  EXPECT_EQ(family_name(AdderFamily::kAcaI), "ACA-I");
  EXPECT_EQ(family_name(AdderFamily::kGda), "GDA");
  EXPECT_EQ(family_name(AdderFamily::kGearRelaxed), "GeAr");
}

}  // namespace
}  // namespace gear::core
