// Custom gtest main: recognizes --update_goldens, which rewrites the
// checked-in golden snapshots (tests/goldens/) from the current output
// instead of comparing against them. Usage:
//
//   ./gear_tests --gtest_filter='GoldenTables.*' --update_goldens
#include <gtest/gtest.h>

#include <cstring>

#include "test_util.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update_goldens") == 0) {
      gear::testutil::update_goldens_flag() = true;
    }
  }
  return RUN_ALL_TESTS();
}
