// Differential suite for the 64-lane batched application kernels
// (DESIGN.md §5j): every *_batch kernel is pinned bit-identical to its
// scalar counterpart across adder families (exact RCA, strict / relaxed /
// custom GeAr layouts, corrected GeAr), edge geometries (1x1, 63 / 64 / 65
// lane boundaries, non-square) and thread counts {1, 2, 8}. The three
// kernels exercise the three accumulator-chain shapes the batch path must
// reproduce: row_integral feeds its own sums back (recurrence), lpf3x3
// folds one running accumulator over 9 taps, lpf_binomial re-orders the
// chain (add(prev, c) first), and sobel mixes signed encode/decode into
// the add tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adders/gear_adapter.h"
#include "adders/registry.h"
#include "apps/batch_kernel.h"
#include "apps/generate.h"
#include "apps/integral.h"
#include "apps/lpf.h"
#include "apps/sad.h"
#include "apps/sobel.h"
#include "core/config.h"
#include "stats/parallel.h"
#include "stats/rng.h"

namespace gear::apps {
namespace {

struct BatchKernelCase {
  std::string name;
  std::shared_ptr<const adders::ApproxAdder> adder;
};

std::vector<BatchKernelCase> adder_cases() {
  std::vector<BatchKernelCase> out;
  out.push_back({"rca16", adders::make_adder("rca:16")});
  out.push_back({"gear_strict16", adders::make_adder("gear:16:4:4")});
  out.push_back({"gear_ecc16", adders::make_adder("gear+ecc:16:4:4")});
  out.push_back(
      {"gear_relaxed20", std::make_shared<adders::GearAdapter>(
                             *core::GeArConfig::make_relaxed(20, 6, 4))});
  out.push_back({"gear_custom16",
                 std::make_shared<adders::GearAdapter>(*core::GeArConfig::make_custom(
                     16, 4, {{4, 2}, {4, 4}, {4, 6}}))});
  // Zoo families: every bitsliced add_batch override must stay
  // bit-identical to its scalar path through the image kernels too.
  out.push_back({"ofloca16", adders::make_adder("ofloca:16:8:4")});
  out.push_back({"laxa16", adders::make_adder("laxa:16:8:1")});
  out.push_back({"axppa16", adders::make_adder("axppa:16:12:2")});
  out.push_back({"cesa16", adders::make_adder("cesa:16:4:4")});
  out.push_back({"cesa_r16", adders::make_adder("cesa+r:16:4:4")});
  return out;
}

/// Geometry edge set: single pixel, one-under / exactly / one-over the
/// 64-lane boundary, and a non-square tail case.
const std::pair<int, int> kSizes[] = {
    {1, 1}, {63, 47}, {64, 64}, {65, 65}, {65, 33}};

class BatchKernels : public ::testing::TestWithParam<BatchKernelCase> {};

TEST_P(BatchKernels, AllKernelsBitIdenticalToScalarAcrossSizesAndThreads) {
  const adders::ApproxAdder& adder = *GetParam().adder;
  stats::ParallelExecutor pool2(2), pool8(8);
  stats::ParallelExecutor* pools[] = {nullptr, &pool2, &pool8};
  for (const auto& [w, h] : kSizes) {
    stats::Rng img_rng = stats::Rng::substream(
        1234, "batch-kernels:" + std::to_string(w) + "x" + std::to_string(h));
    const Image img = smoothed_noise_image(w, h, img_rng, 2);
    stats::Rng shift_rng = stats::Rng::substream(1235, "batch-kernels-shift");
    const Image cand = shifted_image(img, 2, 1, 2, shift_rng);

    const auto integral_ref = row_integral(img, adder);
    const Image lpf_ref = lpf3x3(img, adder);
    const Image binom_ref = lpf_binomial(img, adder);
    const Image sobel_ref = sobel(img, adder);
    const int bw = std::min(16, w), bh = std::min(16, h);
    const SadMatch sad_ref =
        sad_search(img, cand, w / 4, h / 4, bw, bh, 3, adder);

    for (stats::ParallelExecutor* pool : pools) {
      SCOPED_TRACE(GetParam().name + " " + std::to_string(w) + "x" +
                   std::to_string(h) + " pool=" +
                   (pool ? std::to_string(pool->threads()) : "none"));
      EXPECT_EQ(row_integral_batch(img, adder, pool), integral_ref);
      EXPECT_EQ(lpf3x3_batch(img, adder, pool), lpf_ref);
      EXPECT_EQ(lpf_binomial_batch(img, adder, pool), binom_ref);
      EXPECT_EQ(sobel_batch(img, adder, pool), sobel_ref);
    }
    const SadMatch sad_got = sad_search_batch(img, cand, w / 4, h / 4, bw, bh,
                                              3, adder);
    EXPECT_EQ(sad_got.dx, sad_ref.dx);
    EXPECT_EQ(sad_got.dy, sad_ref.dy);
    EXPECT_EQ(sad_got.sad, sad_ref.sad);
  }
}

INSTANTIATE_TEST_SUITE_P(Adapters, BatchKernels,
                         ::testing::ValuesIn(adder_cases()),
                         [](const ::testing::TestParamInfo<BatchKernelCase>& p) {
                           return p.param.name;
                         });

TEST(BatchKernelsSad, MatchRateEqualsScalarAndThreadInvariant) {
  stats::Rng img_rng = stats::Rng::substream(77, "batch-match-rate");
  const Image img = smoothed_noise_image(96, 64, img_rng, 2);
  stats::Rng shift_rng = stats::Rng::substream(78, "batch-match-rate-shift");
  const Image cand = shifted_image(img, 2, 1, 2, shift_rng);
  const adders::AdderPtr adder = adders::make_adder("gear:16:4:4");

  const double scalar_rate = sad_match_rate(img, cand, 16, 16, 3, *adder);
  stats::ParallelExecutor pool(8);
  EXPECT_EQ(sad_match_rate_batch(img, cand, 16, 16, 3, *adder), scalar_rate);
  EXPECT_EQ(sad_match_rate_batch(img, cand, 16, 16, 3, *adder, &pool),
            scalar_rate);
}

TEST(BatchKernelsSad, BorderBlocksTakeClampedPathIdentically) {
  // Block at the image corner: cand taps clamp, so the batch kernel's
  // interior fast path must stay off and the clamped gather must still
  // match the scalar per-pixel at_clamped walk.
  stats::Rng img_rng = stats::Rng::substream(79, "batch-border");
  const Image img = smoothed_noise_image(40, 32, img_rng, 2);
  stats::Rng shift_rng = stats::Rng::substream(80, "batch-border-shift");
  const Image cand = shifted_image(img, 2, 1, 2, shift_rng);
  const adders::AdderPtr adder = adders::make_adder("gear:16:4:4");
  const std::pair<int, int> corners[] = {{0, 0}, {38, 30}, {0, 30}};
  for (const auto& [bx, by] : corners) {
    const SadMatch ref = sad_search(img, cand, bx, by, 8, 8, 3, *adder);
    const SadMatch got = sad_search_batch(img, cand, bx, by, 8, 8, 3, *adder);
    EXPECT_EQ(got.dx, ref.dx) << bx << "," << by;
    EXPECT_EQ(got.dy, ref.dy) << bx << "," << by;
    EXPECT_EQ(got.sad, ref.sad) << bx << "," << by;
  }
}

}  // namespace
}  // namespace gear::apps
