// Baseline adder model tests: exactness of the references, semantic spot
// checks of each approximate family, registry parsing.
#include <gtest/gtest.h>

#include <stdexcept>

#include "adders/eta.h"
#include "adders/exact.h"
#include "adders/gda.h"
#include "adders/gear_adapter.h"
#include "adders/loa.h"
#include "adders/registry.h"
#include "adders/speculative.h"
#include "stats/rng.h"

namespace gear::adders {
namespace {

TEST(Exact, RcaIsExactExhaustive8) {
  const RcaAdder rca(8);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      ASSERT_EQ(rca.add(a, b), a + b);
    }
  }
}

TEST(Exact, RcaIsExactRandomWide) {
  stats::Rng rng(61);
  for (int n : {16, 20, 32, 48, 63}) {
    const RcaAdder rca(n);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t a = rng.bits(n);
      const std::uint64_t b = rng.bits(n);
      ASSERT_EQ(rca.add(a, b), a + b) << "n=" << n;
    }
  }
}

TEST(Exact, ClaIsExactAllBlockSizes) {
  stats::Rng rng(62);
  for (int block : {1, 2, 3, 4, 8, 16}) {
    const ClaAdder cla(16, block);
    for (int i = 0; i < 3000; ++i) {
      const std::uint64_t a = rng.bits(16);
      const std::uint64_t b = rng.bits(16);
      ASSERT_EQ(cla.add(a, b), a + b) << "block=" << block;
    }
  }
}

TEST(Exact, Flags) {
  EXPECT_TRUE(RcaAdder(16).is_exact());
  EXPECT_TRUE(ClaAdder(16).is_exact());
  EXPECT_FALSE(Aca1Adder(16, 4).is_exact());
  EXPECT_EQ(RcaAdder(16).max_carry_chain(), 16);
  EXPECT_EQ(ClaAdder(16, 4).max_carry_chain(), 4);
}

TEST(Etai, AccuratePartExact) {
  const EtaiAdder etai(16, 8);
  stats::Rng rng(63);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const std::uint64_t sum = etai.add(a, b);
    // Upper part equals the exact sum of the upper operand halves.
    EXPECT_EQ(sum >> 8, (a >> 8) + (b >> 8));
  }
}

TEST(Etai, LowerPartSaturationRule) {
  // From the first both-ones position (MSB->LSB) downwards, all ones.
  const EtaiAdder etai(8, 4);
  // a=0b0110, b=0b0101 in low nibble: MSB->LSB: bit3 0&0 xor 0; bit2 1&1
  // -> saturate from bit2: bits 2,1,0 = 1.
  const std::uint64_t sum = etai.add(0b0110, 0b0101);
  EXPECT_EQ(sum & 0xF, 0b0111u);
}

TEST(Etai, NoBothOnesMeansXor) {
  const EtaiAdder etai(8, 4);
  const std::uint64_t sum = etai.add(0b1010, 0b0101);
  EXPECT_EQ(sum & 0xF, 0b1111u);
}

TEST(Etai, SmallInputsInaccurate) {
  // The paper's motivation for ETAII: ETAI garbles small operands when
  // both have bits only in the inaccurate part.
  const EtaiAdder etai(16, 8);
  int errors = 0;
  for (std::uint64_t a = 0; a < 256; a += 5) {
    for (std::uint64_t b = 0; b < 256; b += 7) {
      if (etai.add(a, b) != a + b) ++errors;
    }
  }
  EXPECT_GT(errors, 0);
}

TEST(Etaiim, ChainedMsbsExactAtTop) {
  const EtaiimAdder m(16, 4, 2);  // top 2 segments chained
  stats::Rng rng(64);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const std::uint64_t sum = m.add(a, b);
    // Top 8 bits (plus carry) match exact.
    EXPECT_EQ(sum >> 8, (a + b) >> 8) << "a=" << a << " b=" << b;
  }
}

TEST(Etaiim, ZeroChainedEqualsEtaii) {
  const EtaiimAdder m(16, 4, 0);
  const EtaiiAdder e(16, 4);
  stats::Rng rng(65);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    EXPECT_EQ(m.add(a, b), e.add(a, b));
  }
}

TEST(Etaiim, FullyChainedIsExact) {
  const EtaiimAdder m(16, 4, 4);
  stats::Rng rng(66);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    EXPECT_EQ(m.add(a, b), a + b);
  }
}

TEST(Etaiim, MaxCarryChainGrowsWithChaining) {
  EXPECT_EQ(EtaiimAdder(16, 4, 0).max_carry_chain(), 8);
  EXPECT_GT(EtaiimAdder(16, 4, 2).max_carry_chain(), 8);
}

TEST(Loa, LowerPartIsOr) {
  const LoaAdder loa(16, 8);
  stats::Rng rng(67);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const std::uint64_t sum = loa.add(a, b);
    EXPECT_EQ(sum & 0xFF, (a | b) & 0xFF);
  }
}

TEST(Loa, ExactWhenLowerPartsZero) {
  const LoaAdder loa(16, 8);
  stats::Rng rng(68);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.bits(8) << 8;
    const std::uint64_t b = rng.bits(8) << 8;
    EXPECT_EQ(loa.add(a, b), a + b);
  }
}

TEST(GearAdapter, MatchesCoreModel) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const GearAdapter adapter(cfg);
  const core::GeArAdder direct(cfg);
  stats::Rng rng(69);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    EXPECT_EQ(adapter.add(a, b), direct.add_value(a, b));
  }
  EXPECT_EQ(adapter.name(), "GeAr(4,4)");
  EXPECT_EQ(adapter.max_carry_chain(), 8);
}

TEST(GearCorrectedAdapter, FullMaskExactFlag) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  const GearCorrectedAdapter full(cfg, core::Corrector::all_enabled());
  EXPECT_TRUE(full.is_exact());
  const GearCorrectedAdapter partial(cfg, 0b010);
  EXPECT_FALSE(partial.is_exact());
  stats::Rng rng(70);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    EXPECT_EQ(full.add(a, b), a + b);
  }
}

TEST(Registry, ParsesEveryFamily) {
  for (const std::string spec :
       {"rca:16", "cla:16", "cla:16:8", "aca1:16:4", "aca2:16:8", "etai:16:8",
        "etaii:16:4", "etaiim:16:4:2", "gda:16:4:8", "gear:16:4:4",
        "gear+ecc:16:4:4", "loa:16:8"}) {
    const AdderPtr adder = make_adder(spec);
    ASSERT_NE(adder, nullptr) << spec;
    EXPECT_EQ(adder->width(), 16) << spec;
    // Smoke: zero plus zero is zero for every model.
    EXPECT_EQ(adder->add(0, 0), 0u) << spec;
  }
}

TEST(Registry, RejectsMalformedSpecs) {
  EXPECT_THROW(make_adder(""), std::invalid_argument);
  EXPECT_THROW(make_adder("nope:16"), std::invalid_argument);
  EXPECT_THROW(make_adder("rca"), std::invalid_argument);
  EXPECT_THROW(make_adder("rca:16:4"), std::invalid_argument);
  EXPECT_THROW(make_adder("gear:16:4"), std::invalid_argument);
  EXPECT_THROW(make_adder("gear:16:0:4"), std::invalid_argument);
  EXPECT_THROW(make_adder("gear:16:4:13"), std::invalid_argument);  // L > N
  EXPECT_THROW(make_adder("rca:abc"), std::invalid_argument);
  EXPECT_THROW(make_adder("rca:16x"), std::invalid_argument);
}

TEST(Registry, KnownFamiliesListed) {
  const auto families = known_families();
  EXPECT_NE(std::find(families.begin(), families.end(), "gear"), families.end());
  EXPECT_NE(std::find(families.begin(), families.end(), "cell"), families.end());
  EXPECT_NE(std::find(families.begin(), families.end(), "cesa+r"),
            families.end());
  EXPECT_EQ(families.size(), 17u);
}

TEST(AllAdders, ApproximationsBoundedByCarryDrops) {
  // Generic property: every adder in the registry returns the exact sum
  // when operands have disjoint set bits (no carries anywhere).
  stats::Rng rng(71);
  for (const std::string spec :
       {"rca:16", "cla:16", "aca1:16:4", "aca2:16:8", "etaii:16:4",
        "etaiim:16:4:2", "gda:16:4:4", "gear:16:4:4", "loa:16:8",
        "etai:16:8"}) {
    const AdderPtr adder = make_adder(spec);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t a = rng.bits(16);
      const std::uint64_t b = rng.bits(16) & ~a;  // disjoint
      EXPECT_EQ(adder->add(a, b), a + b) << spec << " a=" << a << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace gear::adders
