// Approximate-multiplier tests.
#include <gtest/gtest.h>

#include <stdexcept>

#include "adders/exact.h"
#include "adders/multiplier.h"
#include "adders/registry.h"
#include "stats/rng.h"

namespace gear::adders {
namespace {

TEST(Multiplier, ExactAdderGivesExactProductExhaustive) {
  const RcaAdder rca(16);
  const ApproxMultiplier mult(8, rca);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      ASSERT_EQ(mult.multiply(a, b), a * b);
    }
  }
}

TEST(Multiplier, ExactRandomWide) {
  const RcaAdder rca(32);
  const ApproxMultiplier mult(16, rca);
  stats::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    ASSERT_EQ(mult.multiply(a, b), a * b);
  }
}

TEST(Multiplier, ApproximateNeverOvershoots) {
  // GeAr accumulation only drops carries; the product can only shrink.
  const auto gm = make_gear_multiplier(8, 4, 4);
  stats::Rng rng(12);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    EXPECT_LE(gm.mult->multiply(a, b), a * b);
  }
}

TEST(Multiplier, TrivialOperandsExact) {
  const auto gm = make_gear_multiplier(8, 4, 4);
  for (std::uint64_t b = 0; b < 256; ++b) {
    EXPECT_EQ(gm.mult->multiply(0, b), 0u);
    EXPECT_EQ(gm.mult->multiply(1, b), b);
  }
  // Power-of-two multiplicands are pure shifts — a single add, whose low
  // window is exact only if no boundary carry occurs; 1 * b is exact.
}

TEST(Multiplier, MorePredictionBitsLowerError) {
  stats::Rng rng(13);
  auto error_rate = [&rng](int p) {
    const auto gm = make_gear_multiplier(8, 4, p);
    stats::Rng local(77);
    int errors = 0;
    const int trials = 30000;
    for (int i = 0; i < trials; ++i) {
      const std::uint64_t a = local.bits(8);
      const std::uint64_t b = local.bits(8);
      if (gm.mult->multiply(a, b) != a * b) ++errors;
    }
    return static_cast<double>(errors) / trials;
  };
  (void)rng;
  EXPECT_LT(error_rate(8), error_rate(4));
  EXPECT_LT(error_rate(4), error_rate(2));
}

TEST(Multiplier, NameIncludesAdder) {
  const RcaAdder rca(16);
  const ApproxMultiplier mult(8, rca);
  EXPECT_EQ(mult.name(), "Mult8x8[RCA]");
}

TEST(Multiplier, FactoryValidates) {
  EXPECT_THROW(make_gear_multiplier(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(make_gear_multiplier(8, 0, 4), std::invalid_argument);
  const auto gm = make_gear_multiplier(8, 4, 4);
  EXPECT_EQ(gm.mult->width(), 8);
  EXPECT_EQ(gm.adder->width(), 16);
}

TEST(Multiplier, ExactReference) {
  const RcaAdder rca(16);
  const ApproxMultiplier mult(8, rca);
  EXPECT_EQ(mult.exact(255, 255), 255u * 255u);
  EXPECT_EQ(mult.exact(0x1FF, 2), 0xFFu * 2);  // operands masked to width
}

}  // namespace
}  // namespace gear::adders
