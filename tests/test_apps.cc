// Application-substrate tests: image container, generators, kernels with
// exact and approximate adders.
#include <gtest/gtest.h>

#include "adders/exact.h"
#include "adders/gear_adapter.h"
#include "apps/generate.h"
#include "apps/image.h"
#include "apps/integral.h"
#include "apps/lpf.h"
#include "apps/quality.h"
#include "apps/sad.h"
#include "apps/trace.h"
#include "stats/rng.h"

namespace gear::apps {
namespace {

TEST(Image, BasicAccessors) {
  Image img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_EQ(img.at(2, 1), 7);
  img.set(2, 1, 99);
  EXPECT_EQ(img.at(2, 1), 99);
}

TEST(Image, ClampedAccess) {
  Image img(2, 2);
  img.set(0, 0, 1);
  img.set(1, 1, 4);
  EXPECT_EQ(img.at_clamped(-5, -5), 1);
  EXPECT_EQ(img.at_clamped(10, 10), 4);
}

TEST(Image, PgmHeader) {
  Image img(2, 2, 3);
  const std::string pgm = img.to_pgm();
  EXPECT_EQ(pgm.substr(0, 3), "P2\n");
  EXPECT_NE(pgm.find("2 2"), std::string::npos);
}

TEST(Generate, GradientRange) {
  const Image img = gradient_image(256, 4);
  EXPECT_EQ(img.at(0, 0), 0);
  EXPECT_EQ(img.at(255, 3), 255);
  for (int x = 1; x < 256; ++x) EXPECT_GE(img.at(x, 0), img.at(x - 1, 0));
}

TEST(Generate, NoiseIsDeterministicPerSeed) {
  stats::Rng r1(5), r2(5);
  EXPECT_EQ(noise_image(16, 16, r1), noise_image(16, 16, r2));
}

TEST(Generate, SmoothedNoiseReducesVariance) {
  stats::Rng r1(6), r2(6);
  const Image raw = noise_image(64, 64, r1);
  const Image smooth = smoothed_noise_image(64, 64, r2, 2);
  auto variance = [](const Image& img) {
    double mean = 0;
    for (auto p : img.pixels()) mean += p;
    mean /= static_cast<double>(img.pixel_count());
    double var = 0;
    for (auto p : img.pixels()) var += (p - mean) * (p - mean);
    return var / static_cast<double>(img.pixel_count());
  };
  EXPECT_LT(variance(smooth), variance(raw) * 0.5);
}

TEST(Generate, ShiftedImageShifts) {
  const Image base = gradient_image(32, 8);
  stats::Rng rng(7);
  const Image shifted = shifted_image(base, 3, 0, 0, rng);
  EXPECT_EQ(shifted.at(10, 4), base.at(7, 4));
}

TEST(Integral, RowIntegralExactMatchesPrefixSums) {
  const adders::RcaAdder exact(16);
  stats::Rng rng(8);
  const Image img = noise_image(64, 8, rng);
  const auto rows = row_integral(img, exact);
  for (int y = 0; y < img.height(); ++y) {
    std::uint64_t acc = 0;
    for (int x = 0; x < img.width(); ++x) {
      acc = (acc + img.at(x, y)) & 0xFFFF;
      EXPECT_EQ(rows[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)], acc);
    }
  }
}

TEST(Integral, ApproximateUnderestimatesAtMost) {
  // GeAr drops carries, so each single addition under-estimates; the row
  // integral never exceeds the exact one before wraparound.
  const adders::GearAdapter gear(core::GeArConfig::must(16, 4, 4));
  const adders::RcaAdder exact(16);
  const Image img = gradient_image(64, 4);
  const auto approx = row_integral(img, gear);
  const auto truth = row_integral(img, exact);
  for (std::size_t y = 0; y < truth.size(); ++y) {
    for (std::size_t x = 0; x < truth[y].size(); ++x) {
      EXPECT_LE(approx[y][x], truth[y][x]);
    }
  }
}

TEST(Integral, Integral2dBoxSumMatchesDirect) {
  const adders::RcaAdder exact(20);
  stats::Rng rng(9);
  const Image img = noise_image(24, 16, rng);
  const auto ii = integral_2d(img, exact);
  // Box sums from the integral image equal direct summation.
  for (auto [x0, y0, x1, y1] :
       {std::tuple{0, 0, 5, 5}, {3, 2, 10, 9}, {0, 0, 23, 15}, {7, 7, 7, 7}}) {
    std::uint64_t direct = 0;
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) direct += img.at(x, y);
    }
    EXPECT_EQ(box_sum(ii, x0, y0, x1, y1), direct);
  }
}

TEST(Integral, MeanAbsError) {
  const std::vector<std::vector<std::uint64_t>> a{{1, 2}, {3, 4}};
  const std::vector<std::vector<std::uint64_t>> b{{1, 4}, {1, 4}};
  EXPECT_DOUBLE_EQ(integral_mean_abs_error(a, b), (0 + 2 + 2 + 0) / 4.0);
}

TEST(Sad, ZeroForIdenticalBlocks) {
  const Image img = gradient_image(32, 32);
  const adders::RcaAdder exact(16);
  EXPECT_EQ(block_sad(img, img, 4, 4, 8, 8, 0, 0, exact), 0u);
}

TEST(Sad, SearchFindsKnownShift) {
  stats::Rng rng(10);
  const Image base = smoothed_noise_image(48, 48, rng, 1);
  stats::Rng rng2(11);
  const Image moved = shifted_image(base, 2, 1, 0, rng2);
  const adders::RcaAdder exact(16);
  const SadMatch m = sad_search(base, moved, 16, 16, 8, 8, 3, exact);
  EXPECT_EQ(m.dx, 2);
  EXPECT_EQ(m.dy, 1);
}

TEST(Sad, ApproximateAccumulatorUsuallyAgrees) {
  stats::Rng rng(12);
  const Image base = smoothed_noise_image(64, 64, rng, 1);
  stats::Rng rng2(13);
  const Image moved = shifted_image(base, 1, 2, 2, rng2);
  const adders::GearAdapter gear(core::GeArConfig::must(16, 4, 4));
  const double rate = sad_match_rate(base, moved, 8, 8, 3, gear);
  EXPECT_GT(rate, 0.7);
}

TEST(Lpf, ConstantImageUnchanged) {
  const Image img(16, 16, 80);
  const adders::RcaAdder exact(12);
  const Image out = lpf3x3(img, exact);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) EXPECT_EQ(out.at(x, y), 80);
  }
}

TEST(Lpf, SmoothsACheckerboard) {
  const Image img = checkerboard_image(16, 16, 1);
  const adders::RcaAdder exact(12);
  const Image out = lpf3x3(img, exact);
  // Interior pixels move toward the mean.
  for (int y = 2; y < 14; ++y) {
    for (int x = 2; x < 14; ++x) {
      EXPECT_GT(out.at(x, y), 80);
      EXPECT_LT(out.at(x, y), 180);
    }
  }
}

TEST(Lpf, ApproximateCloseToExact) {
  stats::Rng rng(14);
  const Image img = smoothed_noise_image(32, 32, rng, 1);
  const adders::RcaAdder exact(12);
  const adders::GearAdapter gear(core::GeArConfig::must(12, 4, 4));
  const Image ref = lpf3x3(img, exact);
  const Image approx = lpf3x3(img, gear);
  // GeAr(12,4,4) drops ~3% of carries worth 2^8 each; against a ~2^7
  // signal that lands in the low-20s dB — "usable", per the paper's
  // application-resilience argument.
  EXPECT_GT(psnr(ref, approx), 20.0);
  EXPECT_LT(mean_abs_pixel_error(ref, approx), 10.0);
}

TEST(Lpf, BinomialConstantImageUnchanged) {
  const Image img(8, 8, 100);
  const adders::RcaAdder exact(12);
  const Image out = lpf_binomial(img, exact);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) EXPECT_EQ(out.at(x, y), 100);
  }
}

TEST(Quality, PsnrIdenticalIsInfinite) {
  const Image img = gradient_image(8, 8);
  EXPECT_TRUE(std::isinf(psnr(img, img)));
  EXPECT_DOUBLE_EQ(exact_pixel_rate(img, img), 1.0);
  EXPECT_DOUBLE_EQ(mean_abs_pixel_error(img, img), 0.0);
}

TEST(Quality, FusedImageQualityMatchesOriginalFormulas) {
  // image_quality computes all three metrics in one traversal; this pins
  // it against the original per-metric formulas, inlined here so a
  // regression in the fused pass cannot hide behind the wrappers that now
  // delegate to it.
  stats::Rng rng(15);
  const Image ref = smoothed_noise_image(33, 17, rng, 1);
  const adders::GearAdapter gear(core::GeArConfig::must(12, 4, 4));
  const Image test = lpf3x3(ref, gear);

  double mse = 0.0, abs_acc = 0.0;
  std::size_t exact_px = 0;
  for (int y = 0; y < ref.height(); ++y) {
    for (int x = 0; x < ref.width(); ++x) {
      const double d = static_cast<double>(ref.at(x, y)) - test.at(x, y);
      mse += d * d;
      abs_acc += std::abs(d);
      if (ref.at(x, y) == test.at(x, y)) ++exact_px;
    }
  }
  const double n = static_cast<double>(ref.pixel_count());
  mse /= n;
  const double want_psnr = 10.0 * std::log10(255.0 * 255.0 / mse);

  const ImageQuality q = image_quality(ref, test);
  EXPECT_DOUBLE_EQ(q.psnr, want_psnr);
  EXPECT_DOUBLE_EQ(q.mean_abs_error, abs_acc / n);
  EXPECT_DOUBLE_EQ(q.exact_rate, static_cast<double>(exact_px) / n);
  // The wrappers must agree exactly with the fused traversal.
  EXPECT_DOUBLE_EQ(psnr(ref, test), q.psnr);
  EXPECT_DOUBLE_EQ(mean_abs_pixel_error(ref, test), q.mean_abs_error);
  EXPECT_DOUBLE_EQ(exact_pixel_rate(ref, test), q.exact_rate);
  // Identical images: infinite PSNR through the fused path too.
  const ImageQuality ident = image_quality(ref, ref);
  EXPECT_TRUE(std::isinf(ident.psnr));
  EXPECT_DOUBLE_EQ(ident.exact_rate, 1.0);
  EXPECT_DOUBLE_EQ(ident.mean_abs_error, 0.0);
}

TEST(Quality, PsnrDropsWithError) {
  const Image a(8, 8, 100);
  Image b = a;
  b.set(0, 0, 110);
  Image c = a;
  for (int i = 0; i < 8; ++i) c.set(i, 0, 150);
  EXPECT_GT(psnr(a, b), psnr(a, c));
}

TEST(Trace, CapturesOperands) {
  const adders::RcaAdder exact(16);
  const TracingAdder traced(exact);
  const Image img = gradient_image(8, 2);
  (void)row_integral(img, traced);
  EXPECT_EQ(traced.trace().size(), 16u);  // one add per pixel
  // First addition of each row starts from 0.
  EXPECT_EQ(traced.trace()[0].a, 0u);
}

TEST(Trace, SourceReplaysTrace) {
  const adders::RcaAdder exact(16);
  TracingAdder traced(exact);
  (void)traced.add(3, 4);
  (void)traced.add(5, 6);
  auto src = traced.take_source("kernel");
  EXPECT_EQ(src.next().a, 3u);
  EXPECT_EQ(src.next().b, 6u);
}

}  // namespace
}  // namespace gear::apps
