// Watchdog / graceful-degradation tests, including the silent-corruption
// regression: a fault in the detection logic that would stream silent
// wrong results is converted into a visible safe-mode fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/stream_engine.h"
#include "core/adaptive.h"
#include "core/config.h"
#include "core/correction.h"
#include "core/error_model.h"
#include "core/watchdog.h"
#include "stats/distributions.h"
#include "stats/parallel.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

TEST(Watchdog, SpikeTripsAtWindowBoundary) {
  DegradationPolicy policy;
  policy.window = 8;
  policy.spike_factor = 2.0;
  Watchdog wd(/*expected_detect_rate=*/0.05, policy);
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(wd.observe(true, 1));
    EXPECT_FALSE(wd.in_safe_mode());
  }
  EXPECT_TRUE(wd.observe(true, 1));  // rate 1.0 >> 2 * 0.05
  EXPECT_TRUE(wd.in_safe_mode());
  EXPECT_EQ(wd.fallback_events(), 1u);
}

TEST(Watchdog, FloorTripsOnDetectCollapse) {
  DegradationPolicy policy;
  policy.window = 8;
  policy.spike_factor = 0.0;   // disabled
  policy.floor_factor = 0.5;
  Watchdog wd(/*expected_detect_rate=*/0.5, policy);  // expected*window = 4
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(wd.observe(false, 0));
  EXPECT_TRUE(wd.observe(false, 0));  // rate 0 < 0.5 * 0.5
  EXPECT_TRUE(wd.in_safe_mode());
}

TEST(Watchdog, FloorSkippedWhenWindowTooSmallToExpectADetect) {
  DegradationPolicy policy;
  policy.window = 8;
  policy.spike_factor = 0.0;
  policy.floor_factor = 0.5;
  // expected*window = 0.08 < 1: zero detects in a window is unremarkable.
  Watchdog wd(/*expected_detect_rate=*/0.01, policy);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(wd.observe(false, 0));
  EXPECT_FALSE(wd.in_safe_mode());
}

TEST(Watchdog, StallBudgetTripsImmediately) {
  DegradationPolicy policy;
  policy.window = 1024;
  policy.stall_budget = 4;
  policy.spike_factor = 0.0;
  Watchdog wd(0.05, policy);
  EXPECT_FALSE(wd.observe(true, 3));  // 3 <= 4
  EXPECT_FALSE(wd.observe(true, 1));  // 4 <= 4
  EXPECT_TRUE(wd.observe(true, 1));   // 5 > 4, mid-window
  EXPECT_TRUE(wd.in_safe_mode());
}

TEST(Watchdog, CooldownRearmsAfterConfiguredWindows) {
  DegradationPolicy policy;
  policy.window = 4;
  policy.spike_factor = 1.5;
  policy.cooldown_windows = 2;
  Watchdog wd(0.05, policy);
  for (int i = 0; i < 4; ++i) wd.observe(true, 1);
  ASSERT_TRUE(wd.in_safe_mode());
  // 2 windows * 4 ops of cooldown, then re-armed.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(wd.in_safe_mode()) << i;
    wd.observe(false, 0);
  }
  EXPECT_FALSE(wd.in_safe_mode());
  // A healthy stream keeps it armed...
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(wd.observe(false, 0));
  // ...and a second anomaly trips it again.
  for (int i = 0; i < 4; ++i) wd.observe(true, 1);
  EXPECT_TRUE(wd.in_safe_mode());
  EXPECT_EQ(wd.fallback_events(), 2u);
}

TEST(Watchdog, ZeroCooldownLatchesUntilReset) {
  DegradationPolicy policy;
  policy.window = 4;
  policy.spike_factor = 1.5;
  policy.cooldown_windows = 0;
  Watchdog wd(0.05, policy);
  for (int i = 0; i < 4; ++i) wd.observe(true, 1);
  ASSERT_TRUE(wd.in_safe_mode());
  for (int i = 0; i < 100; ++i) wd.observe(false, 0);
  EXPECT_TRUE(wd.in_safe_mode());
  wd.reset();
  EXPECT_FALSE(wd.in_safe_mode());
  EXPECT_EQ(wd.fallback_events(), 1u);  // reset() keeps the tally
}

TEST(Watchdog, DisabledChecksNeverTrip) {
  DegradationPolicy policy;
  policy.window = 4;
  policy.spike_factor = 0.0;
  policy.floor_factor = 0.0;
  Watchdog wd(0.05, policy);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(wd.observe(true, 10));
  EXPECT_FALSE(wd.in_safe_mode());
}

TEST(Watchdog, DeterministicGivenObservationStream) {
  DegradationPolicy policy;
  policy.window = 16;
  policy.spike_factor = 3.0;
  Watchdog w1(0.1, policy), w2(0.1, policy);
  stats::Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const bool det = rng.uniform01() < 0.4;
    EXPECT_EQ(w1.observe(det, det ? 1 : 0), w2.observe(det, det ? 1 : 0));
  }
  EXPECT_EQ(w1.fallback_events(), w2.fallback_events());
  EXPECT_EQ(w1.in_safe_mode(), w2.in_safe_mode());
}

TEST(Watchdog, SafeModeNamesAreStable) {
  EXPECT_STREQ(safe_mode_name(SafeMode::kExactAdd), "exact-add");
  EXPECT_STREQ(safe_mode_name(SafeMode::kFreezeMask), "freeze-mask");
  EXPECT_STREQ(safe_mode_name(SafeMode::kFlagApproximate),
               "flagged-approximate");
}

}  // namespace
}  // namespace gear::core

namespace gear::apps {
namespace {

std::vector<stats::OperandPair> uniform_stream(int width, std::size_t n,
                                               std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<stats::OperandPair> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    ops.push_back({rng.bits(width), rng.bits(width)});
  return ops;
}

core::DegradationPolicy collapse_policy() {
  core::DegradationPolicy policy;
  policy.window = 256;
  policy.spike_factor = 0.0;
  policy.floor_factor = 0.5;  // trip when detects collapse below half model
  policy.safe_mode = core::SafeMode::kExactAdd;
  return policy;
}

// The headline regression: a transient/stuck fault that kills a detect
// flag turns correction off for that sub-adder. Without a watchdog the
// engine streams silent wrong results (SDC at system level); with the
// degradation policy the detect-rate collapse trips the watchdog within
// one window and the run degrades to exact adds — corruption stops and
// the fallback is visible in the stats.
TEST(GracefulDegradation, DetectFaultSdcWithoutWatchdogFallbackWith) {
  const auto cfg = core::GeArConfig::must(12, 4, 4);
  ASSERT_GE(core::paper_error_probability(cfg) * 256, 1.0)
      << "window too small for the floor check to arm";
  const auto ops = uniform_stream(12, 4096, 99);
  const core::Corrector::DetectFault kill{/*sub_adder=*/1,
                                          /*forced_value=*/false};

  // Healthy engine: full correction, no wrong results.
  StreamAdderEngine healthy(cfg, core::Corrector::all_enabled());
  const StreamStats base = healthy.run(ops);
  EXPECT_EQ(base.wrong_results, 0u);
  EXPECT_GT(base.corrected_ops, 0u);

  // Faulted, no watchdog: silent corruption accumulates over the run.
  StreamAdderEngine unprotected(cfg, core::Corrector::all_enabled());
  unprotected.inject_detect_fault(kill);
  const StreamStats silent = unprotected.run(ops);
  EXPECT_GT(silent.wrong_results, 10u);
  EXPECT_EQ(silent.fallback_events, 0u);
  EXPECT_EQ(silent.safe_mode_ops, 0u);

  // Faulted, degradation policy: the collapse trips within one window.
  StreamAdderEngine protected_engine(cfg, core::Corrector::all_enabled(),
                                     collapse_policy());
  protected_engine.inject_detect_fault(kill);
  const StreamStats guarded = protected_engine.run(ops);
  EXPECT_EQ(guarded.fallback_events, 1u);
  EXPECT_EQ(guarded.safe_mode_ops, guarded.operations - 256);
  // Corruption is bounded by the pre-trip window instead of the full run.
  EXPECT_LT(guarded.wrong_results, silent.wrong_results);
  // After the trip every op is exact, so all wrong results predate it.
  EXPECT_LE(guarded.wrong_results, 256u);
  // Exact fallback pays the worst-case latency.
  EXPECT_GT(guarded.cycles, silent.cycles);
}

TEST(GracefulDegradation, FlagApproximateSurrendersAccuracyVisibly) {
  const auto cfg = core::GeArConfig::must(12, 4, 4);
  auto policy = collapse_policy();
  policy.safe_mode = core::SafeMode::kFlagApproximate;
  const auto ops = uniform_stream(12, 2048, 100);

  StreamAdderEngine engine(cfg, core::Corrector::all_enabled(), policy);
  engine.inject_detect_fault({1, false});
  const StreamStats s = engine.run(ops);
  EXPECT_EQ(s.fallback_events, 1u);
  EXPECT_GT(s.flagged_ops, 0u);
  EXPECT_EQ(s.flagged_ops, s.safe_mode_ops);
  // Residual errors continue, but every post-trip one is flagged — the
  // difference between degraded-but-honest and silent corruption.
  EXPECT_GT(s.flagged_wrong_results, 0u);
  EXPECT_LE(s.flagged_wrong_results, s.wrong_results);
}

TEST(GracefulDegradation, HealthyStreamNeverTrips) {
  const auto cfg = core::GeArConfig::must(12, 4, 4);
  const auto ops = uniform_stream(12, 4096, 101);
  StreamAdderEngine engine(cfg, core::Corrector::all_enabled(),
                           collapse_policy());
  const StreamStats s = engine.run(ops);
  EXPECT_EQ(s.fallback_events, 0u);
  EXPECT_EQ(s.safe_mode_ops, 0u);
  EXPECT_EQ(s.wrong_results, 0u);
}

TEST(GracefulDegradation, ParallelRunDeterministicAcrossThreadCounts) {
  const auto cfg = core::GeArConfig::must(16, 4, 4);
  auto policy = collapse_policy();
  policy.spike_factor = 4.0;
  StreamAdderEngine engine(cfg, core::Corrector::all_enabled(), policy);
  const StreamAdderEngine::SourceFactory factory = [](stats::Rng rng) {
    return std::make_unique<stats::UniformSource>(16, rng);
  };
  const std::uint64_t kOps = 10'000, kSeed = 7, kShard = 1024;

  StreamStats ref;
  {
    stats::ParallelExecutor exec(1);
    ref = engine.run(factory, kOps, kSeed, exec, kShard);
  }
  for (const int threads : {2, 8}) {
    stats::ParallelExecutor exec(threads);
    const StreamStats got = engine.run(factory, kOps, kSeed, exec, kShard);
    EXPECT_EQ(got.operations, ref.operations) << threads;
    EXPECT_EQ(got.cycles, ref.cycles) << threads;
    EXPECT_EQ(got.wrong_results, ref.wrong_results) << threads;
    EXPECT_EQ(got.fallback_events, ref.fallback_events) << threads;
    EXPECT_EQ(got.safe_mode_ops, ref.safe_mode_ops) << threads;
  }
}

TEST(GracefulDegradation, PerOpBudgetBoundsStallCycles) {
  // A per-op correction budget of 1 caps every op at one stall cycle even
  // when multiple sub-adders request correction.
  const auto cfg = core::GeArConfig::must(16, 2, 2);  // k = 7: many windows
  core::DegradationPolicy policy;
  policy.spike_factor = 0.0;
  policy.per_op_correction_budget = 1;
  const auto ops = uniform_stream(16, 2048, 102);

  StreamAdderEngine capped(cfg, core::Corrector::all_enabled(), policy);
  const StreamStats s = capped.run(ops);
  EXPECT_LE(s.stall_cycles, s.operations);

  StreamAdderEngine uncapped(cfg, core::Corrector::all_enabled());
  const StreamStats u = uncapped.run(ops);
  EXPECT_GT(u.stall_cycles, s.stall_cycles);
  // The budget trades latency for accuracy: capped leaves residual errors.
  EXPECT_GE(s.wrong_results, u.wrong_results);
}

}  // namespace
}  // namespace gear::apps
