// Netlist IR, builder and simulator tests.
#include <gtest/gtest.h>

#include "core/bitvec.h"
#include "netlist/builder.h"
#include "netlist/netlist.h"
#include "netlist/verilog_emit.h"
#include "stats/rng.h"

namespace gear::netlist {
namespace {

TEST(Gate, ArityTable) {
  EXPECT_EQ(gate_kind_arity(GateKind::kConst0), 0);
  EXPECT_EQ(gate_kind_arity(GateKind::kNot), 1);
  EXPECT_EQ(gate_kind_arity(GateKind::kAnd2), 2);
  EXPECT_EQ(gate_kind_arity(GateKind::kMux2), 3);
  EXPECT_EQ(gate_kind_arity(GateKind::kFaSum), 3);
}

TEST(Gate, TruthTables) {
  EXPECT_TRUE(eval_gate(GateKind::kConst1, {}));
  EXPECT_FALSE(eval_gate(GateKind::kConst0, {}));
  EXPECT_TRUE(eval_gate(GateKind::kNand2, {true, false}));
  EXPECT_FALSE(eval_gate(GateKind::kNand2, {true, true}));
  EXPECT_TRUE(eval_gate(GateKind::kMux2, {true, false, true}));
  EXPECT_FALSE(eval_gate(GateKind::kMux2, {false, false, true}));
  // Full adder: 1+1+1 = sum 1 carry 1.
  EXPECT_TRUE(eval_gate(GateKind::kFaSum, {true, true, true}));
  EXPECT_TRUE(eval_gate(GateKind::kFaCarry, {true, true, false}));
  EXPECT_FALSE(eval_gate(GateKind::kFaSum, {true, true, false}));
}

TEST(Builder, HashConsingDeduplicates) {
  Builder b("t");
  const Bus a = b.input("a", 2);
  const NetId x1 = b.and_(a[0], a[1]);
  const NetId x2 = b.and_(a[0], a[1]);
  const NetId x3 = b.and_(a[1], a[0]);  // commuted
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(x1, x3);
  const NetId y = b.or_(a[0], a[1]);
  EXPECT_NE(x1, y);
  b.output("o", y);
  EXPECT_EQ(std::move(b).take().gate_count(), 2u);
}

TEST(Builder, SimulatePrimitives) {
  Builder b("prim");
  const Bus a = b.input("a", 1);
  const Bus c = b.input("b", 1);
  b.output("and", b.and_(a[0], c[0]));
  b.output("xor", b.xor_(a[0], c[0]));
  b.output("mux", b.mux(a[0], c[0], b.const1()));
  const Netlist nl = std::move(b).take();
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      const auto out = nl.simulate({{"a", core::BitVec(1, static_cast<std::uint64_t>(av))},
                                    {"b", core::BitVec(1, static_cast<std::uint64_t>(bv))}});
      EXPECT_EQ(out.at("and").to_u64(), static_cast<std::uint64_t>(av & bv));
      EXPECT_EQ(out.at("xor").to_u64(), static_cast<std::uint64_t>(av ^ bv));
      EXPECT_EQ(out.at("mux").to_u64(), static_cast<std::uint64_t>(av ? 1 : bv));
    }
  }
}

TEST(Builder, RippleAdderExactExhaustive) {
  Builder b("rip");
  const Bus a = b.input("a", 5);
  const Bus c = b.input("b", 5);
  AdderBits add = b.ripple_adder(a, c, b.const0());
  Bus sum = add.sum;
  sum.push_back(add.carry_out);
  b.output("sum", sum);
  const Netlist nl = std::move(b).take();
  for (std::uint64_t x = 0; x < 32; ++x) {
    for (std::uint64_t y = 0; y < 32; ++y) {
      ASSERT_EQ(nl.simulate_add(x, y), x + y);
    }
  }
}

TEST(Builder, RippleAdderCarryIn) {
  Builder b("ripc");
  const Bus a = b.input("a", 4);
  const Bus c = b.input("b", 4);
  AdderBits add = b.ripple_adder(a, c, b.const1());
  Bus sum = add.sum;
  sum.push_back(add.carry_out);
  b.output("sum", sum);
  const Netlist nl = std::move(b).take();
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      ASSERT_EQ(nl.simulate_add(x, y), x + y + 1);
    }
  }
}

TEST(Builder, PrefixAdderExact) {
  for (int n : {1, 2, 3, 7, 8, 16}) {
    Builder b("ks");
    const Bus a = b.input("a", n);
    const Bus c = b.input("b", n);
    AdderBits add = b.prefix_adder(a, c, b.const0());
    Bus sum = add.sum;
    sum.push_back(add.carry_out);
    b.output("sum", sum);
    const Netlist nl = std::move(b).take();
    EXPECT_TRUE(nl.validate().empty());
    stats::Rng rng(72);
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t x = rng.bits(n);
      const std::uint64_t y = rng.bits(n);
      ASSERT_EQ(nl.simulate_add(x, y), x + y) << "n=" << n;
    }
  }
}

TEST(Builder, CarryGeneratorMatchesCarry) {
  Builder b("cg");
  const Bus a = b.input("a", 6);
  const Bus c = b.input("b", 6);
  b.output("cout", b.carry_generator(a, c, b.const0()));
  const Netlist nl = std::move(b).take();
  for (std::uint64_t x = 0; x < 64; ++x) {
    for (std::uint64_t y = 0; y < 64; ++y) {
      const auto out = nl.simulate({{"a", core::BitVec(6, x)}, {"b", core::BitVec(6, y)}});
      ASSERT_EQ(out.at("cout").to_u64(), (x + y) >> 6);
    }
  }
}

TEST(Builder, ClaGroupGenerateMatchesCarry) {
  for (int n : {1, 2, 3, 4, 5, 8}) {
    Builder b("cla");
    const Bus a = b.input("a", n);
    const Bus c = b.input("b", n);
    b.output("g", b.cla_group_generate(a, c));
    const Netlist nl = std::move(b).take();
    for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
      for (std::uint64_t y = 0; y < (1ULL << n); ++y) {
        const auto out =
            nl.simulate({{"a", core::BitVec(n, x)}, {"b", core::BitVec(n, y)}});
        ASSERT_EQ(out.at("g").to_u64(), (x + y) >> n) << "n=" << n;
      }
    }
  }
}

TEST(Builder, TreesMatchReductions) {
  Builder b("tree");
  const Bus a = b.input("a", 7);
  b.output("and", b.and_tree(a));
  b.output("or", b.or_tree(a));
  const Netlist nl = std::move(b).take();
  for (std::uint64_t x = 0; x < 128; ++x) {
    const auto out = nl.simulate({{"a", core::BitVec(7, x)}});
    EXPECT_EQ(out.at("and").to_u64(), x == 127 ? 1u : 0u);
    EXPECT_EQ(out.at("or").to_u64(), x != 0 ? 1u : 0u);
  }
}

TEST(Netlist, ValidateCatchesUndrivenOutput) {
  Netlist nl("bad");
  const NetId floating = nl.new_net();
  nl.add_output("o", {floating});
  EXPECT_FALSE(nl.validate().empty());
}

TEST(Netlist, KindHistogram) {
  Builder b("h");
  const Bus a = b.input("a", 2);
  b.output("o", b.and_(a[0], a[1]));
  b.output("p", b.xor_(a[0], a[1]));
  const Netlist nl = std::move(b).take();
  const auto h = nl.kind_histogram();
  EXPECT_EQ(h.at(GateKind::kAnd2), 1u);
  EXPECT_EQ(h.at(GateKind::kXor2), 1u);
}

TEST(Netlist, MissingInputDefaultsToZero) {
  Builder b("m");
  const Bus a = b.input("a", 2);
  b.output("o", b.or_(a[0], a[1]));
  const Netlist nl = std::move(b).take();
  const auto out = nl.simulate({});
  EXPECT_EQ(out.at("o").to_u64(), 0u);
}

TEST(VerilogEmit, ContainsModuleAndPorts) {
  Builder b("emit_test");
  const Bus a = b.input("a", 4);
  const Bus c = b.input("b", 4);
  AdderBits add = b.ripple_adder(a, c, b.const0());
  Bus sum = add.sum;
  sum.push_back(add.carry_out);
  b.output("sum", sum);
  const std::string v = to_verilog(std::move(b).take());
  EXPECT_NE(v.find("module emit_test"), std::string::npos);
  EXPECT_NE(v.find("input  [3:0] a"), std::string::npos);
  EXPECT_NE(v.find("output [4:0] sum"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Every assign references declared wires only (spot check format).
  EXPECT_NE(v.find("assign"), std::string::npos);
}

}  // namespace
}  // namespace gear::netlist
