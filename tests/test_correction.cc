// Error detection & correction tests (paper Section 3.3): full-mask
// correction is always exact, cycle accounting matches the paper's
// examples, partial masks trade accuracy for cycles monotonically.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/adder.h"
#include "core/correction.h"
#include "stats/rng.h"

namespace gear::core {
namespace {

TEST(Corrector, FullMaskAlwaysExactExhaustive) {
  for (auto [n, r, p] : {std::tuple{8, 2, 2}, {8, 1, 3}, {10, 2, 4}, {9, 3, 3}}) {
    const Corrector corr(GeArConfig::must(n, r, p), Corrector::all_enabled());
    const std::uint64_t limit = 1ULL << n;
    for (std::uint64_t a = 0; a < limit; ++a) {
      for (std::uint64_t b = 0; b < limit; ++b) {
        const CorrectionResult res = corr.add(a, b);
        ASSERT_EQ(res.sum, a + b) << "n=" << n << " r=" << r << " p=" << p
                                  << " a=" << a << " b=" << b;
        ASSERT_TRUE(res.exact);
      }
    }
  }
}

TEST(Corrector, FullMaskExactRandomWide) {
  stats::Rng rng(31);
  for (const auto& cfg : GeArConfig::enumerate(20)) {
    const Corrector corr(cfg, Corrector::all_enabled());
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t a = rng.bits(20);
      const std::uint64_t b = rng.bits(20);
      EXPECT_EQ(corr.add(a, b).sum, a + b) << cfg.name();
    }
  }
}

TEST(Corrector, CycleBoundsPaperFig5) {
  // N=12,R=4,P=4,k=2: 1 cycle without error, 2 with (paper Fig. 5).
  const Corrector corr(GeArConfig::must(12, 4, 4), Corrector::all_enabled());
  EXPECT_EQ(corr.max_cycles(), 2);
  stats::Rng rng(32);
  int max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto res = corr.add(rng.bits(12), rng.bits(12));
    EXPECT_GE(res.cycles, 1);
    EXPECT_LE(res.cycles, 2);
    max_seen = std::max(max_seen, res.cycles);
  }
  EXPECT_EQ(max_seen, 2);  // errors do occur at ~3% rate
}

TEST(Corrector, CycleBoundsPaperFig6) {
  // N=12,R=2,P=6,k=3: 1..3 cycles (paper Fig. 6 discussion).
  const Corrector corr(GeArConfig::must(12, 2, 6), Corrector::all_enabled());
  EXPECT_EQ(corr.max_cycles(), 3);
  for (std::uint64_t a = 0; a < (1 << 12); a += 3) {
    for (std::uint64_t b = 0; b < (1 << 12); b += 7) {
      const auto res = corr.add(a, b);
      ASSERT_LE(res.cycles, 3);
      ASSERT_EQ(res.sum, a + b);
    }
  }
}

TEST(Corrector, CyclesEqualOnePlusCorrections) {
  const Corrector corr(GeArConfig::must(16, 2, 2), Corrector::all_enabled());
  stats::Rng rng(33);
  for (int i = 0; i < 5000; ++i) {
    const auto res = corr.add(rng.bits(16), rng.bits(16));
    EXPECT_EQ(res.cycles, 1 + static_cast<int>(res.corrected.size()));
  }
}

TEST(Corrector, CorrectionsAreOrderedAscending) {
  const Corrector corr(GeArConfig::must(16, 2, 2), Corrector::all_enabled());
  stats::Rng rng(34);
  for (int i = 0; i < 5000; ++i) {
    const auto res = corr.add(rng.bits(16), rng.bits(16));
    for (std::size_t j = 1; j < res.corrected.size(); ++j) {
      EXPECT_LT(res.corrected[j - 1], res.corrected[j]);
    }
  }
}

TEST(Corrector, EmptyMaskEqualsPlainApproximate) {
  const GeArConfig cfg = GeArConfig::must(16, 4, 4);
  const Corrector corr(cfg, 0);
  const GeArAdder plain(cfg);
  stats::Rng rng(35);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const auto res = corr.add(a, b);
    EXPECT_EQ(res.sum, plain.add_value(a, b));
    EXPECT_EQ(res.cycles, 1);
  }
}

TEST(Corrector, SingleRegionMaskNeverWorse) {
  // With k=2 there is only one approximate region, so enabling its
  // correction can only move the result toward the exact sum. (For k>2,
  // correcting a *subset* of regions can overshoot regionally — the
  // regions' errors compensate — so no such guarantee holds in general;
  // the prefix-mask test below captures the property that does.)
  const GeArConfig cfg = GeArConfig::must(12, 4, 4);
  const GeArAdder plain(cfg);
  const Corrector corr(cfg, 0b10);
  stats::Rng rng(36);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    const std::uint64_t exact = a + b;
    const std::uint64_t corrected = corr.add(a, b).sum;
    const std::uint64_t approx = plain.add_value(a, b);
    EXPECT_GE(corrected, approx);
    EXPECT_LE(corrected, exact);
  }
}

TEST(Corrector, PrefixMaskErrorRateMonotone) {
  // Enabling a longer bottom-up prefix of sub-adders can only shrink the
  // set of inputs whose final output is wrong: regions above the prefix
  // compute the same bits regardless of the mask.
  const GeArConfig cfg = GeArConfig::must(12, 2, 2);  // k = 5
  stats::Rng rng(36);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (int i = 0; i < 20000; ++i) ops.emplace_back(rng.bits(12), rng.bits(12));
  int prev_errors = 1 << 30;
  for (int m = 0; m <= cfg.k() - 1; ++m) {
    std::uint64_t mask = 0;
    for (int j = 1; j <= m; ++j) mask |= 1ULL << j;
    const Corrector corr(cfg, mask);
    int errors = 0;
    for (const auto& [a, b] : ops) {
      if (corr.add(a, b).sum != a + b) ++errors;
    }
    EXPECT_LE(errors, prev_errors) << "prefix " << m;
    prev_errors = errors;
  }
  EXPECT_EQ(prev_errors, 0);  // full prefix == full correction
}

TEST(Corrector, WiderMaskMeansFewerErrors) {
  const GeArConfig cfg = GeArConfig::must(16, 2, 2);
  stats::Rng rng_a(37);
  stats::Rng rng_b(37);  // same stream for both masks
  const Corrector narrow(cfg, 0b0000010);  // only sub-adder 1
  const Corrector wide(cfg, Corrector::all_enabled());
  int narrow_errors = 0, wide_errors = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng_a.bits(16);
    const std::uint64_t b = rng_a.bits(16);
    (void)rng_b;
    if (narrow.add(a, b).sum != a + b) ++narrow_errors;
    if (wide.add(a, b).sum != a + b) ++wide_errors;
  }
  EXPECT_EQ(wide_errors, 0);
  EXPECT_GT(narrow_errors, 0);
}

TEST(Corrector, MaxCyclesRespectsMask) {
  const GeArConfig cfg = GeArConfig::must(16, 2, 2);  // k=7
  EXPECT_EQ(Corrector(cfg, Corrector::all_enabled()).max_cycles(), 7);
  EXPECT_EQ(Corrector(cfg, 0).max_cycles(), 1);
  EXPECT_EQ(Corrector(cfg, 0b0000110).max_cycles(), 3);
}

TEST(Corrector, CascadedCorrectionEnablesDownstreamDetect) {
  // Regression for the cascade path: correcting sub-adder j-1 flips its
  // carry-out 0 -> 1, which newly fires detection at sub-adder j whose
  // prediction window was already all-propagate. Hand-built operands for
  // (16,4,4), k=3 — sub0 [0..7], sub1 win[4..11] res[8..11], sub2 win
  // [8..15] res[12..15]:
  //   bits 0..3  generate (0xF + 0x1 carries into bit 4),
  //   bits 4..7  all-propagate (0xA ^ 0x5),
  //   bits 8..11 all-propagate (0xC ^ 0x3) — sub2's prediction window.
  // First pass: only sub1 detects (carry_out(sub1) is still 0). After
  // sub1's correction delivers the carry, its carry-out rises and sub2
  // must detect and correct in the next cycle.
  const GeArConfig cfg = GeArConfig::must(16, 4, 4);
  const Corrector corr(cfg, Corrector::all_enabled());
  const std::uint64_t a = 0x0CAF, b = 0x0351;

  // Pre-condition: the single-pass adder sees only sub1's detect flag.
  const GeArAdder plain(cfg);
  const AddResult first_pass = plain.add(a, b);
  ASSERT_TRUE(first_pass.subs[1].detect);
  ASSERT_FALSE(first_pass.subs[2].detect);
  ASSERT_TRUE(first_pass.subs[2].all_propagate);

  const CorrectionResult res = corr.add(a, b);
  EXPECT_EQ(res.corrected, (std::vector<int>{1, 2}));
  EXPECT_EQ(res.cycles, 3);
  EXPECT_LE(res.cycles, corr.max_cycles());
  EXPECT_EQ(res.sum, a + b);
  EXPECT_TRUE(res.exact);
}

TEST(Corrector, CascadeNeverSuppressesAndStaysExact) {
  // Correction only raises window sums (prediction bits become A|B with a
  // forced LSB), so a carry-out can flip 0 -> 1 but never 1 -> 0: an
  // upstream fix can enable a downstream detect but never suppress one.
  // Consequently with the full mask every first-pass detect must end up
  // corrected, the final sum must be exact, and cycles <= max_cycles() on
  // every path. Randomized over all k >= 3 layouts at N=16 plus a
  // relaxed-top config; asserts cascades actually occur in the sample.
  stats::Rng rng(39);
  std::vector<GeArConfig> cfgs = GeArConfig::enumerate(16);
  if (auto relaxed = GeArConfig::make_relaxed(16, 3, 4)) cfgs.push_back(*relaxed);
  int cascades_seen = 0;
  for (const auto& cfg : cfgs) {
    if (cfg.k() < 3) continue;  // cascades need a j-1 -> j chain
    const Corrector corr(cfg, Corrector::all_enabled());
    const GeArAdder plain(cfg);
    for (int i = 0; i < 4000; ++i) {
      const std::uint64_t a = rng.bits(16);
      const std::uint64_t b = rng.bits(16);
      const CorrectionResult res = corr.add(a, b);
      ASSERT_EQ(res.sum, a + b) << cfg.name() << " a=" << a << " b=" << b;
      ASSERT_TRUE(res.exact);
      ASSERT_LE(res.cycles, corr.max_cycles()) << cfg.name();

      // No suppression: every first-pass detect is in the corrected set.
      const AddResult first_pass = plain.add(a, b);
      std::size_t matched = 0;
      for (int j = 1; j < cfg.k(); ++j) {
        if (!first_pass.subs[static_cast<std::size_t>(j)].detect) continue;
        ASSERT_NE(std::find(res.corrected.begin(), res.corrected.end(), j),
                  res.corrected.end())
            << cfg.name() << " sub " << j << " a=" << a << " b=" << b;
        ++matched;
      }
      if (res.corrected.size() > matched) ++cascades_seen;
    }
  }
  EXPECT_GT(cascades_seen, 0);
}

TEST(Corrector, CorrectedSubAdderClearsItsDetect) {
  // After correction the corrected sub-adder's prediction window is
  // saturated (both inputs 1), so all_propagate is false and the detect
  // flag cannot re-fire; the loop must therefore terminate with each
  // sub-adder corrected at most once.
  const GeArConfig cfg = GeArConfig::must(20, 2, 4);
  const Corrector corr(cfg, Corrector::all_enabled());
  stats::Rng rng(38);
  for (int i = 0; i < 5000; ++i) {
    const auto res = corr.add(rng.bits(20), rng.bits(20));
    std::vector<bool> seen(static_cast<std::size_t>(cfg.k()), false);
    for (int j : res.corrected) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(j)]);
      seen[static_cast<std::size_t>(j)] = true;
    }
    EXPECT_LE(res.cycles, corr.max_cycles());
  }
}

}  // namespace
}  // namespace gear::core
