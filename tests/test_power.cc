// Switching-activity power model tests.
#include <gtest/gtest.h>

#include "core/config.h"
#include "netlist/circuits.h"
#include "synth/power.h"

namespace gear::synth {
namespace {

TEST(Power, DeterministicGivenSeed) {
  const auto nl = netlist::build_rca(8);
  stats::Rng a(5), b(5);
  const auto ra = estimate_power(nl, 500, a);
  const auto rb = estimate_power(nl, 500, b);
  EXPECT_DOUBLE_EQ(ra.energy_per_op, rb.energy_per_op);
  EXPECT_DOUBLE_EQ(ra.toggles_per_op, rb.toggles_per_op);
}

TEST(Power, PositiveForActiveCircuit) {
  const auto nl = netlist::build_rca(8);
  stats::Rng rng(6);
  const auto rep = estimate_power(nl, 1000, rng);
  EXPECT_GT(rep.toggles_per_op, 0.0);
  EXPECT_GT(rep.energy_per_op, rep.toggles_per_op);  // caps >= 1
  EXPECT_GT(rep.mean_activity, 0.0);
  EXPECT_LE(rep.mean_activity, 1.0);
  EXPECT_EQ(rep.vectors, 1000u);
}

TEST(Power, ScalesWithWidth) {
  stats::Rng r1(7), r2(7);
  const double e8 = estimate_power(netlist::build_rca(8), 1000, r1).energy_per_op;
  const double e32 = estimate_power(netlist::build_rca(32), 1000, r2).energy_per_op;
  EXPECT_GT(e32, 2.0 * e8);
}

TEST(Power, GearSubAddersCostMoreThanRcaCore) {
  // GeAr duplicates bits across overlapping windows (P prediction bits
  // per sub-adder), so its switching energy exceeds the plain RCA of the
  // same width — the price of the shorter critical path.
  stats::Rng r1(8), r2(8);
  const double rca =
      estimate_power(netlist::build_rca(16), 2000, r1).energy_per_op;
  const double gear = estimate_power(
      netlist::build_gear(core::GeArConfig::must(16, 4, 4)), 2000, r2)
      .energy_per_op;
  EXPECT_GT(gear, rca);
}

TEST(Power, HigherCapModelRaisesEnergyOnly) {
  const auto nl = netlist::build_cla(8);
  stats::Rng r1(9), r2(9);
  PowerModel heavy = PowerModel::virtex6();
  heavy.cap_per_fanout *= 4.0;
  const auto base = estimate_power(nl, 500, r1);
  const auto loaded = estimate_power(nl, 500, r2, heavy);
  EXPECT_GT(loaded.energy_per_op, base.energy_per_op);
  EXPECT_DOUBLE_EQ(loaded.toggles_per_op, base.toggles_per_op);
}

}  // namespace
}  // namespace gear::synth
