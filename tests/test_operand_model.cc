// Operand-distribution models and the conditioned error engines
// (DESIGN.md §5i): OperandModel construction/fingerprinting, the
// telescoped per-input magnitude, trace-conditioned analytic PMFs against
// deterministic replay (bit-identical, §5a thread sweep), the error-key
// convention differential, the width-64/63 shift-safety regressions and
// the DseCache distribution-keyed error tier.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "adders/registry.h"
#include "analysis/dse_cache.h"
#include "analysis/selector.h"
#include "apps/trace.h"
#include "core/adder.h"
#include "core/config.h"
#include "core/error_model.h"
#include "core/width.h"
#include "stats/distributions.h"
#include "stats/operand_model.h"
#include "stats/parallel.h"
#include "stats/pmf.h"
#include "stats/rng.h"
#include "test_util.h"

namespace gear {
namespace {

using core::GeArConfig;
using core::width_mask;
using stats::OperandModel;
using stats::OperandPair;
using stats::TraceSource;

// ---------------------------------------------------------------------------
// OperandModel construction and accessors
// ---------------------------------------------------------------------------

TEST(OperandModel, UniformClosedForm) {
  const OperandModel m = OperandModel::uniform(16);
  EXPECT_EQ(m.kind(), OperandModel::Kind::kUniform);
  EXPECT_TRUE(m.is_uniform());
  EXPECT_EQ(m.width(), 16);
  for (int t = 0; t < 16; ++t) {
    EXPECT_EQ(m.gen_prob(t), 0.25) << t;
    EXPECT_EQ(m.prop_prob(t), 0.5) << t;
    EXPECT_EQ(m.kill_prob(t), 0.25) << t;
  }
  // Positions at or above the width are deterministically kill.
  EXPECT_EQ(m.gen_prob(16), 0.0);
  EXPECT_EQ(m.prop_prob(20), 0.0);
  EXPECT_EQ(m.kill_prob(16), 1.0);
  // The window event factorizes: all-propagate over [lo, hi) times the
  // generate at gen_at.
  EXPECT_EQ(m.window_event_prob(-1, 2, 5), 0.125);
  EXPECT_EQ(m.window_event_prob(1, 2, 5), 0.25 * 0.125);
}

TEST(OperandModel, FromTraceCollapsesToSortedDisjointClasses) {
  // Three distinct (gen, prop) patterns, one duplicated.
  const std::vector<OperandPair> trace = {
      {0b1010, 0b0110}, {0b0110, 0b1010},  // same gen/prop class (symmetric)
      {0b1111, 0b1111},                    // gen = 1111, prop = 0
      {0b0001, 0b0010},                    // gen = 0, prop = 0011
  };
  const OperandModel m = OperandModel::from_trace(4, trace, "t");
  EXPECT_EQ(m.kind(), OperandModel::Kind::kEmpirical);
  EXPECT_EQ(m.samples(), 4u);
  std::uint64_t total = 0;
  for (const auto& c : m.classes()) {
    EXPECT_EQ(c.gen & c.prop, 0u) << "gen/prop must be disjoint";
    total += c.count;
  }
  EXPECT_EQ(total, 4u);
  ASSERT_EQ(m.classes().size(), 3u);
  // Sorted by (gen, prop).
  for (std::size_t i = 1; i < m.classes().size(); ++i) {
    const auto& a = m.classes()[i - 1];
    const auto& b = m.classes()[i];
    EXPECT_TRUE(a.gen < b.gen || (a.gen == b.gen && a.prop < b.prop));
  }
}

TEST(OperandModel, PermutedTracesShareModelAndFingerprint) {
  const auto pairs = testutil::draw_operands(12, 200, 77);
  std::vector<OperandPair> reversed(pairs.rbegin(), pairs.rend());
  const OperandModel a = OperandModel::from_trace(12, pairs, "fwd");
  const OperandModel b = OperandModel::from_trace(12, reversed, "rev");
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(OperandModel, FingerprintSeparatesDistributions) {
  const OperandModel u16 = OperandModel::uniform(16);
  EXPECT_EQ(u16.fingerprint(), OperandModel::uniform(16).fingerprint());
  EXPECT_NE(u16.fingerprint(), OperandModel::uniform(32).fingerprint());
  const OperandModel t1 =
      OperandModel::from_trace(16, testutil::draw_operands(16, 100, 1));
  const OperandModel t2 =
      OperandModel::from_trace(16, testutil::draw_operands(16, 100, 2));
  EXPECT_NE(t1.fingerprint(), t2.fingerprint());
  EXPECT_NE(t1.fingerprint(), u16.fingerprint());
  EXPECT_NE(t1.fingerprint(), t1.marginal_model().fingerprint());
}

TEST(OperandModel, MarginalsMatchHandCounts) {
  // gen at bit0 in 2 of 3 samples; prop at bit1 in 1 of 3.
  const std::vector<OperandPair> trace = {
      {0b01, 0b01}, {0b01, 0b01}, {0b10, 0b00}};
  const OperandModel m = OperandModel::from_trace(2, trace);
  EXPECT_EQ(m.gen_prob(0), 2.0 * (1.0 / 3));
  EXPECT_EQ(m.prop_prob(0), 0.0);
  EXPECT_EQ(m.gen_prob(1), 0.0);
  EXPECT_EQ(m.prop_prob(1), 1.0 * (1.0 / 3));
  const OperandModel marg = m.marginal_model();
  EXPECT_EQ(marg.kind(), OperandModel::Kind::kMarginal);
  for (int t = 0; t < 2; ++t) {
    EXPECT_EQ(marg.gen_prob(t), m.gen_prob(t)) << t;
    EXPECT_EQ(marg.prop_prob(t), m.prop_prob(t)) << t;
  }
}

TEST(OperandModel, WindowEventProbMatchesDirectCount) {
  const auto pairs = testutil::draw_operands(10, 500, 9);
  const OperandModel m = OperandModel::from_trace(10, pairs);
  for (const auto& [gen_at, lo, hi] : std::vector<std::array<int, 3>>{
           {-1, 0, 4}, {-1, 3, 7}, {1, 2, 6}, {0, 1, 10}}) {
    std::uint64_t hits = 0;
    for (const auto& p : pairs) {
      const std::uint64_t gen = p.a & p.b, prop = p.a ^ p.b;
      const std::uint64_t run = width_mask(hi) & ~width_mask(lo);
      const bool all_prop = (prop & run) == run;
      const bool gen_ok = gen_at < 0 || ((gen >> gen_at) & 1ULL) != 0;
      if (all_prop && gen_ok) ++hits;
    }
    EXPECT_EQ(m.window_event_prob(gen_at, lo, hi),
              static_cast<double>(hits) *
                  (1.0 / static_cast<double>(pairs.size())))
        << gen_at << " [" << lo << "," << hi << ")";
  }
}

TEST(OperandModel, NarrowTraceZeroExtendsToWiderAdders) {
  const auto pairs = testutil::draw_operands(8, 64, 5);
  const OperandModel m = OperandModel::from_trace(8, pairs);
  for (int t = 8; t < 70; t += 13) {
    EXPECT_EQ(m.gen_prob(t), 0.0) << t;
    EXPECT_EQ(m.prop_prob(t), 0.0) << t;
    EXPECT_EQ(m.kill_prob(t), 1.0) << t;
  }
  // A 16-bit config conditioned on the 8-bit model is a valid exact PMF.
  const auto cfg = GeArConfig::must(16, 4, 4);
  const stats::Pmf pmf = core::exact_error_distribution(cfg, m);
  EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Shift-safety regressions at the 32/63/64-bit numeric edges (satellite:
// every former `(1 << N) - 1` masking site now funnels through
// core::width_mask).
// ---------------------------------------------------------------------------

TEST(OperandModel, TracingAdderMasksAtEdgeWidths) {
  for (int width : {32, 63}) {  // ApproxAdder widths run 1..63
    const adders::AdderPtr exact =
        adders::make_adder("rca:" + std::to_string(width));
    apps::TracingAdder traced(*exact);
    EXPECT_EQ(traced.operand_mask(), width_mask(width)) << width;
    // Garbage bits above the operand width must not reach the trace.
    const std::uint64_t junk = ~width_mask(width);
    (void)traced.add(junk | 5u, junk | 9u);
    ASSERT_EQ(traced.trace().size(), 1u);
    EXPECT_EQ(traced.trace()[0].a, 5u) << width;
    EXPECT_EQ(traced.trace()[0].b, 9u) << width;
  }
}

TEST(OperandModel, SkewedSourcesStayInRangeAtEdgeWidths) {
  for (int width : {32, 63, 64}) {
    auto gauss = stats::make_gaussian(width, 3);
    auto small = stats::make_small_value(width, 3);
    for (int i = 0; i < 256; ++i) {
      const auto g = gauss->next();
      const auto s = small->next();
      EXPECT_LE(g.a, width_mask(width)) << width;
      EXPECT_LE(g.b, width_mask(width)) << width;
      EXPECT_LE(s.a, width_mask(width)) << width;
      EXPECT_LE(s.b, width_mask(width)) << width;
    }
  }
}

TEST(OperandModel, FromTraceMasksToModelWidth) {
  const std::vector<OperandPair> trace = {{~0ULL, ~0ULL}};
  const OperandModel m = OperandModel::from_trace(63, trace);
  ASSERT_EQ(m.classes().size(), 1u);
  EXPECT_EQ(m.classes()[0].gen, width_mask(63));
  EXPECT_EQ(m.classes()[0].prop, 0u);
  const OperandModel m64 = OperandModel::from_trace(64, trace);
  EXPECT_EQ(m64.classes()[0].gen, ~0ULL);
}

// ---------------------------------------------------------------------------
// Telescoped per-input magnitude vs the behavioural adder
// ---------------------------------------------------------------------------

TEST(ErrorModelTrace, TelescopedMagnitudeMatchesAdderExhaustive) {
  for (int n : {6, 8}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      const core::GeArAdder adder(cfg);
      const std::uint64_t lim = 1ULL << n;
      for (std::uint64_t a = 0; a < lim; ++a) {
        for (std::uint64_t b = 0; b < lim; ++b) {
          const std::uint64_t truth = adder.exact(a, b) - adder.add_value(a, b);
          EXPECT_EQ(core::telescoped_error_magnitude(cfg, a & b, a ^ b), truth)
              << cfg.name() << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

TEST(ErrorModelTrace, TelescopedMagnitudeMatchesAdderRandomWide) {
  for (const auto& cfg : testutil::fuzz_configs()) {
    if (cfg.n() > 62) continue;  // magnitude engine contract
    const core::GeArAdder adder(cfg);
    for (const auto& p : testutil::draw_operands(cfg.n(), 2000, 123)) {
      const std::uint64_t truth =
          adder.exact(p.a, p.b) - adder.add_value(p.a, p.b);
      EXPECT_EQ(core::telescoped_error_magnitude(cfg, p.a & p.b, p.a ^ p.b),
                truth)
          << cfg.name();
    }
  }
}

// ---------------------------------------------------------------------------
// Uniform specialization: the model-taking overloads with a uniform model
// are bit-identical to the seed uniform engines.
// ---------------------------------------------------------------------------

TEST(ErrorModelTrace, UniformModelBitIdentical) {
  for (const auto& cfg : testutil::fuzz_configs()) {
    if (cfg.n() > 62) continue;
    const OperandModel u = OperandModel::uniform(cfg.n());
    EXPECT_EQ(core::exact_error_distribution(cfg, u).entries(),
              core::exact_error_distribution(cfg).entries())
        << cfg.name();
    EXPECT_TRUE(core::exact_error_metrics(cfg, u) ==
                core::exact_error_metrics(cfg))
        << cfg.name();
  }
}

TEST(ErrorModelTrace, MarginalWithUniformProbsBitIdenticalToUniformDp) {
  // A kMarginal model carrying the uniform per-bit probabilities drives
  // the generalized DP through the exact same FP operation sequence as
  // the seed uniform DP — entries must be identical, not just close.
  for (const auto& cfg :
       {GeArConfig::must(16, 4, 4), GeArConfig::must(12, 2, 2),
        *GeArConfig::make_custom(16, 4, {{4, 2}, {4, 4}, {4, 6}})}) {
    const OperandModel m = OperandModel::marginal(
        cfg.n(), std::vector<double>(static_cast<std::size_t>(cfg.n()), 0.25),
        std::vector<double>(static_cast<std::size_t>(cfg.n()), 0.5),
        "uniform-as-marginal");
    EXPECT_EQ(m.kind(), OperandModel::Kind::kMarginal);
    EXPECT_EQ(core::exact_error_distribution(cfg, m).entries(),
              core::exact_error_distribution(cfg).entries())
        << cfg.name();
  }
}

TEST(ErrorModelTrace, ExhaustiveTraceReproducesUniformPmf) {
  // The empirical model of the *complete* 2^(2N) operand enumeration is
  // the uniform distribution; the conditioned analytic PMF must equal
  // the exhaustive-enumeration referee mass for mass (both are exact
  // dyadic rationals).
  for (int n : {4, 6, 8}) {
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      std::vector<OperandPair> all;
      const std::uint64_t lim = 1ULL << n;
      all.reserve(lim * lim);
      for (std::uint64_t a = 0; a < lim; ++a) {
        for (std::uint64_t b = 0; b < lim; ++b) all.push_back({a, b});
      }
      const OperandModel m = OperandModel::from_trace(n, all, "exhaustive");
      const stats::Pmf pmf = core::exact_error_distribution(cfg, m);
      const auto truth = testutil::exhaustive_error_pmf(cfg);
      ASSERT_EQ(pmf.entries().size(), truth.size()) << cfg.name();
      for (const auto& [key, mass] : truth) {
        EXPECT_EQ(pmf.mass(key), mass) << cfg.name() << " key " << key;
      }
    }
  }
}

TEST(ErrorModelTrace, ConditionedPmfEqualsDirectEnumerationOverTrace) {
  // Random (correlated-free) trace: the conditioned analytic PMF must be
  // bit-identical to replaying the trace through the adder and
  // normalising the histogram — same counts, same 1/samples factor.
  for (int n : {8, 10}) {
    const auto pairs =
        testutil::draw_operands(n, 4096, static_cast<std::uint64_t>(31 + n));
    const OperandModel m = OperandModel::from_trace(n, pairs);
    for (const auto& cfg : GeArConfig::enumerate(n)) {
      const TraceSource trace(n, pairs, "t");
      const auto replay = core::trace_error_distribution(cfg, trace);
      EXPECT_EQ(core::exact_error_distribution(cfg, m).entries(),
                stats::Pmf::from_histogram(replay).entries())
          << cfg.name();
    }
  }
}

// ---------------------------------------------------------------------------
// Real kernel traces: conditioned analytic vs §5a-sharded replay at
// N in {16, 32}, bit-identical across thread counts {1, 2, 8}.
// ---------------------------------------------------------------------------

TEST(ErrorModelTrace, KernelTraceConditionedMatchesShardedReplay) {
  for (const char* kernel : {"sad", "sobel"}) {
    for (int width : {16, 32}) {
      const TraceSource trace =
          apps::capture_kernel_trace(kernel, width, 48, 32, testutil::kSeed);
      ASSERT_GT(trace.size(), 0u);
      const OperandModel m =
          OperandModel::from_trace(width, trace.pairs(), trace.name());
      const GeArConfig cfg = GeArConfig::must(width, width / 4, width / 4);
      const auto serial = core::trace_error_distribution(cfg, trace);
      testutil::for_each_thread_count([&](stats::ParallelExecutor& exec, int) {
        const auto sharded = core::trace_error_distribution(
            cfg, trace, exec, testutil::kShard);
        EXPECT_EQ(sharded.entries(), serial.entries()) << kernel << width;
        EXPECT_EQ(sharded.total(), serial.total()) << kernel << width;
      });
      // Conditioned analytic == replay referee, entry for entry.
      EXPECT_EQ(core::exact_error_distribution(cfg, m).entries(),
                stats::Pmf::from_histogram(serial).entries())
          << kernel << width;
      // And the scalar metrics derive from that same PMF.
      const auto metrics = core::exact_error_metrics(cfg, m);
      const auto pmf = stats::Pmf::from_histogram(serial);
      EXPECT_EQ(metrics.med, pmf.mean_abs()) << kernel << width;
    }
  }
}

// ---------------------------------------------------------------------------
// Error-key convention differential (satellite: one trace through the MC
// driver and the deterministic replay driver must produce identical keys)
// ---------------------------------------------------------------------------

TEST(ErrorModelTrace, KeyConventionDifferential) {
  const TraceSource trace =
      apps::capture_kernel_trace("integral", 16, 48, 32, testutil::kSeed);
  const GeArConfig cfg = GeArConfig::must(16, 4, 4);
  const auto replay = core::trace_error_distribution(cfg, trace);
  for (const auto kernel : {core::McKernel::kBitsliced, core::McKernel::kScalar}) {
    TraceSource replayed = trace;  // fresh cycling cursor at position 0
    const auto mc =
        core::mc_error_distribution(cfg, trace.size(), replayed, kernel);
    EXPECT_EQ(mc.entries(), replay.entries());
    EXPECT_EQ(mc.total(), replay.total());
  }
  // The convention itself: key 0 is the exact bucket; every other key is
  // negative (GeAr only ever misses carries) with |key| the distance.
  for (const auto& [key, count] : replay.entries()) {
    EXPECT_TRUE(key <= 0) << key;
    EXPECT_GT(count, 0u);
  }
  EXPECT_TRUE(replay.entries().count(0));
}

TEST(ErrorModelTrace, ScalarAndBitslicedReplayAgree) {
  const TraceSource trace =
      apps::capture_kernel_trace("lpf", 16, 48, 32, testutil::kSeed);
  for (const auto& cfg :
       {GeArConfig::must(16, 2, 4), GeArConfig::must(16, 4, 8)}) {
    const auto a =
        core::trace_error_distribution(cfg, trace, core::McKernel::kBitsliced);
    const auto b =
        core::trace_error_distribution(cfg, trace, core::McKernel::kScalar);
    EXPECT_EQ(a.entries(), b.entries()) << cfg.name();
  }
}

// ---------------------------------------------------------------------------
// DseCache distribution-keyed error tier
// ---------------------------------------------------------------------------

TEST(ErrorModelTrace, CacheUniformModelSharesUniformEntries) {
  analysis::DseCache cache;
  const GeArConfig cfg = GeArConfig::must(16, 4, 4);
  const OperandModel uniform = OperandModel::uniform(16);
  const auto plain = cache.gear_error(cfg);
  const std::size_t after_plain = cache.size();
  const auto via_model = cache.gear_error(cfg, &uniform);
  EXPECT_TRUE(via_model == plain);
  EXPECT_EQ(cache.size(), after_plain)
      << "uniform model must reuse the uniform entry, not add one";
  const auto via_null = cache.gear_error(cfg, nullptr);
  EXPECT_TRUE(via_null == plain);
}

TEST(ErrorModelTrace, CacheConditionedEntriesDoNotCollide) {
  analysis::DseCache cache;
  const GeArConfig cfg = GeArConfig::must(16, 4, 4);
  const OperandModel t1 =
      OperandModel::from_trace(16, testutil::draw_operands(16, 300, 1), "t1");
  const OperandModel t2 = OperandModel::from_trace(
      16, std::vector<OperandPair>(300, OperandPair{0, 0}), "zeros");
  const auto uniform_entry = cache.gear_error(cfg);
  const auto e1 = cache.gear_error(cfg, &t1);
  const auto e2 = cache.gear_error(cfg, &t2);
  // The all-zeros trace never errs; the random trace does. Neither may
  // overwrite the other or the uniform entry.
  EXPECT_EQ(e2.paper_error, 0.0);
  EXPECT_GT(e1.paper_error, 0.0);
  EXPECT_TRUE(cache.gear_error(cfg) == uniform_entry);
  EXPECT_TRUE(cache.gear_error(cfg, &t1) == e1);
  EXPECT_TRUE(cache.gear_error(cfg, &t2) == e2);
  // Hit path returns the same bits as the uncached computation.
  const auto direct = core::exact_error_metrics(cfg, t1);
  EXPECT_TRUE(e1.exact == direct);
  EXPECT_EQ(e1.paper_error, direct.error_probability);
}

/// Field-wise identity of two rankings (operator== is not defined on
/// SelectedConfig; the comparison must include every figure a caller
/// consumes).
void expect_same_ranking(const std::vector<analysis::SelectedConfig>& a,
                         const std::vector<analysis::SelectedConfig>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cfg.layout(), b[i].cfg.layout()) << i;
    EXPECT_EQ(a[i].score, b[i].score) << i;
    EXPECT_EQ(a[i].error_probability, b[i].error_probability) << i;
    EXPECT_EQ(a[i].delay_ns, b[i].delay_ns) << i;
    EXPECT_EQ(a[i].area_luts, b[i].area_luts) << i;
    EXPECT_EQ(a[i].exact_med, b[i].exact_med) << i;
    EXPECT_EQ(a[i].uniform_error_probability, b[i].uniform_error_probability)
        << i;
    EXPECT_EQ(a[i].uniform_med, b[i].uniform_med) << i;
    EXPECT_EQ(a[i].workload_aware, b[i].workload_aware) << i;
    EXPECT_EQ(a[i].decided_by, b[i].decided_by) << i;
  }
}

TEST(ErrorModelTrace, RankConfigsModelCombosBitIdentical) {
  const TraceSource trace =
      apps::capture_kernel_trace("sad", 16, 48, 32, testutil::kSeed);
  const OperandModel model =
      OperandModel::from_trace(16, trace.pairs(), trace.name());
  analysis::SelectionRequest req;
  req.n = 16;
  req.max_error_probability = 0.01;
  req.objective = analysis::Objective::kDelay;

  // Reference: serial, uncached.
  analysis::SweepContext base;
  base.model = &model;
  const auto reference = analysis::rank_configs(req, base);
  ASSERT_FALSE(reference.empty());
  for (const auto& sel : reference) {
    EXPECT_TRUE(sel.workload_aware);
    EXPECT_LE(sel.error_probability, req.max_error_probability);
  }

  testutil::for_each_thread_count([&](stats::ParallelExecutor& exec, int) {
    for (const bool cached : {false, true}) {
      analysis::DseCache cache;
      analysis::SweepContext ctx;
      ctx.executor = &exec;
      ctx.cache = cached ? &cache : nullptr;
      ctx.model = &model;
      expect_same_ranking(analysis::rank_configs(req, ctx), reference);
      if (cached) {
        // Warm pass: every hit must return the same bits.
        expect_same_ranking(analysis::rank_configs(req, ctx), reference);
        EXPECT_GT(cache.hits(), 0u);
      }
    }
  });
}

}  // namespace
}  // namespace gear
