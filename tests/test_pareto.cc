// Pareto-frontier tests: the O(n log n) staircase sweep against a
// brute-force O(n^2) referee, with duplicate/tie stress.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/pareto.h"
#include "stats/rng.h"

namespace gear::analysis {
namespace {

/// The original quadratic definition, kept verbatim as the referee:
/// a point survives iff no other point dominates it.
std::vector<DesignCandidate> brute_force_front(
    const std::vector<DesignCandidate>& points) {
  std::vector<DesignCandidate> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(points[i]);
  }
  return front;
}

void expect_same_front(const std::vector<DesignCandidate>& points) {
  const auto got = pareto_front(points);
  const auto want = brute_force_front(points);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].label, want[i].label) << "index " << i;
    EXPECT_EQ(got[i].delay_ns, want[i].delay_ns);
    EXPECT_EQ(got[i].area_luts, want[i].area_luts);
    EXPECT_EQ(got[i].error, want[i].error);
  }
}

TEST(ParetoFrontier, EmptyAndSingleton) {
  expect_same_front({});
  expect_same_front({{"only", 1.0, 2.0, 3.0}});
  const auto front = pareto_front({{"only", 1.0, 2.0, 3.0}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].label, "only");
}

TEST(ParetoFrontier, DominationChain) {
  // Each point strictly dominates the next; only the first survives.
  std::vector<DesignCandidate> points;
  for (int i = 0; i < 8; ++i) {
    points.push_back({"p" + std::to_string(i), 1.0 + i, 10.0 + i, 0.1 * i});
  }
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].label, "p0");
}

TEST(ParetoFrontier, DuplicatesOfNonDominatedPointAllSurvive) {
  // Identical triples do not dominate each other, so every copy stays —
  // the quadratic scan's semantics, preserved by the sweep.
  const std::vector<DesignCandidate> points = {
      {"a", 1.0, 5.0, 0.5}, {"b", 1.0, 5.0, 0.5}, {"c", 2.0, 9.0, 0.9},
      {"d", 1.0, 5.0, 0.5},
  };
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].label, "a");
  EXPECT_EQ(front[1].label, "b");
  EXPECT_EQ(front[2].label, "d");
}

TEST(ParetoFrontier, DuplicatesOfDominatedPointAllRemoved) {
  const std::vector<DesignCandidate> points = {
      {"dup1", 2.0, 6.0, 0.5},
      {"king", 1.0, 5.0, 0.5},
      {"dup2", 2.0, 6.0, 0.5},
  };
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].label, "king");
}

TEST(ParetoFrontier, TieOnTwoAxesStrictOnThird) {
  // Equal delay and area; smaller error dominates.
  expect_same_front({{"hi", 1.0, 4.0, 0.9}, {"lo", 1.0, 4.0, 0.2}});
  const auto front = pareto_front({{"hi", 1.0, 4.0, 0.9},
                                   {"lo", 1.0, 4.0, 0.2}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].label, "lo");
}

TEST(ParetoFrontier, PreservesInputOrder) {
  const std::vector<DesignCandidate> points = {
      {"z", 3.0, 1.0, 0.5}, {"a", 1.0, 3.0, 0.5}, {"m", 2.0, 2.0, 0.5}};
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].label, "z");
  EXPECT_EQ(front[1].label, "a");
  EXPECT_EQ(front[2].label, "m");
}

TEST(ParetoFrontier, RandomizedDifferentialAgainstBruteForce) {
  // Small value grids force heavy tie/duplicate pressure; larger grids
  // exercise the general position. Fixed substream seeds keep the test
  // deterministic.
  for (int grid : {2, 3, 5, 50}) {
    for (int trial = 0; trial < 40; ++trial) {
      stats::Rng rng = stats::Rng::substream(
          0x9a4e70, "pareto:" + std::to_string(grid) + ":" +
                        std::to_string(trial));
      const std::size_t count = static_cast<std::size_t>(rng.range(1, 60));
      const auto g = static_cast<std::uint64_t>(grid - 1);
      std::vector<DesignCandidate> points;
      for (std::size_t i = 0; i < count; ++i) {
        points.push_back({"pt" + std::to_string(i),
                          static_cast<double>(rng.range(0, g)),
                          static_cast<double>(rng.range(0, g)),
                          static_cast<double>(rng.range(0, g))});
      }
      expect_same_front(points);
    }
  }
}

}  // namespace
}  // namespace gear::analysis
