// Chrome trace_event exporter for hot-path spans.
//
// Spans recorded here land in two places: a complete-event ("ph":"X")
// entry in the global TraceRecorder (exported as a Chrome trace JSON file
// loadable in Perfetto / chrome://tracing) and a TimingStat in the
// metrics registry's wall-clock channel. Both are wall-clock artifacts —
// neither participates in any bit-identity check (DESIGN.md §5f).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace gear::obs {

/// One complete span in the Chrome trace_event format.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint64_t tid = 0;  ///< stable per-thread ordinal, not an OS id
};

/// Bounded in-memory span buffer. Thread-safe; spans beyond the capacity
/// are dropped (and counted) so a long-running campaign cannot grow the
/// trace without bound.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  void record(TraceEvent event);
  std::vector<TraceEvent> events() const;
  std::uint64_t dropped() const;
  void clear();

  /// Chrome trace JSON: {"traceEvents":[{"name":...,"ph":"X","ts":us,
  /// "dur":us,"pid":1,"tid":...,"cat":...}, ...]}. Timestamps convert
  /// ns -> us as doubles (trace viewers expect microseconds).
  std::string to_chrome_json() const;
  bool save(const std::string& path) const;

  static TraceRecorder& global();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// Stable small ordinal for the calling thread (0 = first thread to ask).
std::uint64_t trace_thread_ordinal();

/// RAII span: on destruction records a TraceEvent into
/// TraceRecorder::global() and a TimingStat (wall-clock channel) named
/// "span/<name>" into MetricsRegistry's global() instance.
class TraceScope {
 public:
  TraceScope(std::string name, std::string category);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_;
  std::string name_;
  std::string category_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace gear::obs

#if GEAR_OBS_ENABLED

#define GEAR_OBS_CONCAT_INNER_(a, b) a##b
#define GEAR_OBS_CONCAT_(a, b) GEAR_OBS_CONCAT_INNER_(a, b)

/// Wall-clock span covering the enclosing scope.
#define GEAR_OBS_SPAN(name, category)                             \
  ::gear::obs::TraceScope GEAR_OBS_CONCAT_(gear_obs_span_,        \
                                           __LINE__){(name), (category)}

#else  // !GEAR_OBS_ENABLED

#define GEAR_OBS_SPAN(name, category) ((void)0)

#endif  // GEAR_OBS_ENABLED
