#include "obs/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gear::obs {

namespace {

/// %.17g round-trips every finite double bit-exactly.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the snapshot format written by to_json(). The
// grammar is tiny (objects, arrays of numbers, strings, numbers), so a
// hand-rolled recursive-descent parser keeps the layer dependency-free.
// ---------------------------------------------------------------------------

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  bool ok = true;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) return out;
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\' && i < s.size()) {
        const char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 > s.size()) {
              ok = false;
              return out;
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else { ok = false; return out; }
            }
            // The writer only emits \u00XX for control bytes.
            out += static_cast<char>(code & 0xFF);
            break;
          }
          default: ok = false; return out;
        }
      } else {
        out += c;
      }
    }
    if (!consume('"')) ok = false;
    return out;
  }

  double parse_double() {
    skip_ws();
    const char* begin = s.data() + i;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      ok = false;
      return 0.0;
    }
    i += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::uint64_t parse_u64() {
    skip_ws();
    const char* begin = s.data() + i;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(begin, &end, 10);
    if (end == begin) {
      ok = false;
      return 0;
    }
    i += static_cast<std::size_t>(end - begin);
    return v;
  }

  /// Iterates "key": <value> pairs of an object, calling fn(key) with the
  /// cursor positioned on the value.
  template <typename Fn>
  void parse_object(Fn&& fn) {
    if (!consume('{')) return;
    if (peek('}')) {
      consume('}');
      return;
    }
    for (;;) {
      const std::string key = parse_string();
      if (!ok || !consume(':')) return;
      fn(key);
      if (!ok) return;
      if (peek(',')) {
        consume(',');
        continue;
      }
      consume('}');
      return;
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Runtime switch
// ---------------------------------------------------------------------------

namespace {
/// -1 = follow the environment, 0/1 = forced by tests.
std::atomic<int> g_runtime_override{-1};

bool env_enabled() {
  static const bool v = [] {
    const char* e = std::getenv("GEAR_OBS");
    return !(e != nullptr && std::string_view(e) == "off");
  }();
  return v;
}
}  // namespace

bool runtime_enabled() {
  const int forced = g_runtime_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return env_enabled();
}

void set_runtime_enabled_for_testing(std::optional<bool> forced) {
  g_runtime_override.store(forced ? (*forced ? 1 : 0) : -1,
                           std::memory_order_relaxed);
}

std::uint64_t monotonic_now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           origin)
          .count());
}

// ---------------------------------------------------------------------------
// FixedHistogram / TimingStat
// ---------------------------------------------------------------------------

void FixedHistogram::record(double value) {
  if (counts.size() != static_cast<std::size_t>(spec.buckets)) {
    counts.assign(static_cast<std::size_t>(spec.buckets), 0);
  }
  if (value < spec.lo) {
    ++underflow;
    return;
  }
  if (value >= spec.hi) {
    ++overflow;
    return;
  }
  const double scaled = (value - spec.lo) / (spec.hi - spec.lo) *
                        static_cast<double>(spec.buckets);
  auto bin = static_cast<std::size_t>(scaled);
  if (bin >= counts.size()) bin = counts.size() - 1;  // hi-adjacent rounding
  ++counts[bin];
}

void FixedHistogram::merge(const FixedHistogram& other) {
  if (!(spec == other.spec)) {
    throw std::invalid_argument("FixedHistogram::merge: spec mismatch");
  }
  if (counts.size() != static_cast<std::size_t>(spec.buckets)) {
    counts.assign(static_cast<std::size_t>(spec.buckets), 0);
  }
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  underflow += other.underflow;
  overflow += other.overflow;
}

std::uint64_t FixedHistogram::samples() const {
  std::uint64_t total = underflow + overflow;
  for (const std::uint64_t c : counts) total += c;
  return total;
}

double FixedHistogram::quantile(double q) const {
  const std::uint64_t total = samples();
  if (total == 0) return spec.lo;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double cum = static_cast<double>(underflow);
  if (target <= cum && underflow > 0) return spec.lo;
  const double width = (spec.hi - spec.lo) / static_cast<double>(spec.buckets);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c > 0.0 && target <= cum + c) {
      const double frac = (target - cum) / c;
      return spec.lo + width * (static_cast<double>(i) + frac);
    }
    cum += c;
  }
  return spec.hi;  // quantile lands in the overflow mass
}

void TimingStat::record_ns(double ns) {
  if (count == 0 || ns < min_ns) min_ns = ns;
  if (count == 0 || ns > max_ns) max_ns = ns;
  ++count;
  total_ns += ns;
}

void TimingStat::merge(const TimingStat& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min_ns < min_ns) min_ns = other.min_ns;
  if (count == 0 || other.max_ns > max_ns) max_ns = other.max_ns;
  count += other.count;
  total_ns += other.total_ns;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::MetricsRegistry(const MetricsRegistry& other) {
  *this = other;
}

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& other) {
  if (this == &other) return *this;
  // Two-registry lock ordering is unnecessary: registries are merged /
  // copied from quiescent shard-local instances. Lock both defensively
  // with std::scoped_lock's deadlock avoidance anyway.
  std::scoped_lock lk(mu_, other.mu_);
  counters_.clear();
  for (const auto& [name, cell] : other.counters_) {
    counters_[name].value_.store(cell.value(), std::memory_order_relaxed);
  }
  runtime_.clear();
  for (const auto& [name, cell] : other.runtime_) {
    runtime_[name].value_.store(cell.value(), std::memory_order_relaxed);
  }
  gauges_ = other.gauges_;
  labels_ = other.labels_;
  histograms_ = other.histograms_;
  timings_ = other.timings_;
  runtime_histograms_ = other.runtime_histograms_;
  return *this;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  counter_handle(name).add(delta);
}

Counter& MetricsRegistry::counter_handle(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_[std::string(name)];
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_[std::string(name)] = value;
}

void MetricsRegistry::set_label(std::string_view name, std::string_view value) {
  std::lock_guard<std::mutex> lk(mu_);
  labels_[std::string(name)] = std::string(value);
}

namespace {

/// Shared body of record() / record_runtime(): find-or-create under the
/// caller-held lock, enforcing the spec-identity rule.
void record_into(std::map<std::string, FixedHistogram, std::less<>>& map,
                 std::string_view name, const HistogramSpec& spec,
                 double value) {
  if (spec.buckets <= 0 || !(spec.lo < spec.hi)) {
    throw std::invalid_argument("MetricsRegistry::record: bad HistogramSpec");
  }
  auto it = map.find(name);
  if (it == map.end()) {
    FixedHistogram h;
    h.spec = spec;
    h.counts.assign(static_cast<std::size_t>(spec.buckets), 0);
    it = map.emplace(std::string(name), std::move(h)).first;
  } else if (!(it->second.spec == spec)) {
    throw std::invalid_argument(
        "MetricsRegistry::record: spec mismatch for histogram '" +
        std::string(name) + "'");
  }
  it->second.record(value);
}

}  // namespace

void MetricsRegistry::record(std::string_view name, const HistogramSpec& spec,
                             double value) {
  std::lock_guard<std::mutex> lk(mu_);
  record_into(histograms_, name, spec, value);
}

void MetricsRegistry::record_runtime(std::string_view name,
                                     const HistogramSpec& spec, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  record_into(runtime_histograms_, name, spec, value);
}

void MetricsRegistry::add_runtime(std::string_view name, std::uint64_t delta) {
  runtime_handle(name).add(delta);
}

Counter& MetricsRegistry::runtime_handle(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = runtime_.find(name);
  if (it != runtime_.end()) return it->second;
  return runtime_[std::string(name)];
}

void MetricsRegistry::record_timing_ns(std::string_view name, double ns) {
  std::lock_guard<std::mutex> lk(mu_);
  timings_[std::string(name)].record_ns(ns);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::optional<double> MetricsRegistry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> MetricsRegistry::label(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = labels_.find(name);
  if (it == labels_.end()) return std::nullopt;
  return it->second;
}

std::optional<FixedHistogram> MetricsRegistry::histogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t MetricsRegistry::runtime(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = runtime_.find(name);
  return it == runtime_.end() ? 0 : it->second.value();
}

std::optional<TimingStat> MetricsRegistry::timing(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = timings_.find(name);
  if (it == timings_.end()) return std::nullopt;
  return it->second;
}

std::optional<FixedHistogram> MetricsRegistry::runtime_histogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = runtime_histograms_.find(name);
  if (it == runtime_histograms_.end()) return std::nullopt;
  return it->second;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values_(
    const std::map<std::string, Counter, std::less<>>& m) const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, cell] : m) out[name] = cell.value();
  return out;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  if (this == &other) return;
  std::scoped_lock lk(mu_, other.mu_);
  for (const auto& [name, cell] : other.counters_) {
    counters_[name].value_.fetch_add(cell.value(), std::memory_order_relaxed);
  }
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, value] : other.labels_) labels_[name] = value;
  for (const auto& [name, hist] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_[name] = hist;
    } else {
      it->second.merge(hist);
    }
  }
  for (const auto& [name, cell] : other.runtime_) {
    runtime_[name].value_.fetch_add(cell.value(), std::memory_order_relaxed);
  }
  for (const auto& [name, stat] : other.timings_) {
    timings_[name].merge(stat);
  }
  for (const auto& [name, hist] : other.runtime_histograms_) {
    auto it = runtime_histograms_.find(name);
    if (it == runtime_histograms_.end()) {
      runtime_histograms_[name] = hist;
    } else {
      it->second.merge(hist);
    }
  }
}

bool MetricsRegistry::deterministic_equal(const MetricsRegistry& other) const {
  if (this == &other) return true;
  std::scoped_lock lk(mu_, other.mu_);
  return counter_values_(counters_) == other.counter_values_(other.counters_) &&
         gauges_ == other.gauges_ && labels_ == other.labels_ &&
         histograms_ == other.histograms_;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  // Counter cells must stay address-stable for outstanding handles; zero
  // them instead of erasing the nodes.
  for (auto& [name, cell] : counters_) {
    cell.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : runtime_) {
    cell.value_.store(0, std::memory_order_relaxed);
  }
  gauges_.clear();
  labels_.clear();
  histograms_.clear();
  timings_.clear();
  runtime_histograms_.clear();
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, cell] : counters_) {
    if (cell.value() != 0) return false;
  }
  for (const auto& [name, cell] : runtime_) {
    if (cell.value() != 0) return false;
  }
  return gauges_.empty() && labels_.empty() && histograms_.empty() &&
         timings_.empty() && runtime_histograms_.empty();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };

  os << "{\"deterministic\":{";
  os << "\"counters\":{";
  for (const auto& [name, cell] : counters_) {
    sep();
    os << "\"" << json_escape(name) << "\":" << cell.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    sep();
    os << "\"" << json_escape(name) << "\":" << fmt_double(value);
  }
  os << "},\"labels\":{";
  first = true;
  for (const auto& [name, value] : labels_) {
    sep();
    os << "\"" << json_escape(name) << "\":\"" << json_escape(value) << "\"";
  }
  const auto emit_histograms =
      [&](const std::map<std::string, FixedHistogram, std::less<>>& map) {
        first = true;
        for (const auto& [name, h] : map) {
          sep();
          os << "\"" << json_escape(name)
             << "\":{\"lo\":" << fmt_double(h.spec.lo)
             << ",\"hi\":" << fmt_double(h.spec.hi)
             << ",\"buckets\":" << h.spec.buckets
             << ",\"underflow\":" << h.underflow
             << ",\"overflow\":" << h.overflow << ",\"counts\":[";
          for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i != 0) os << ",";
            os << h.counts[i];
          }
          os << "]}";
        }
      };
  os << "},\"histograms\":{";
  emit_histograms(histograms_);
  os << "}},\"wallclock\":{\"runtime\":{";
  first = true;
  for (const auto& [name, cell] : runtime_) {
    sep();
    os << "\"" << json_escape(name) << "\":" << cell.value();
  }
  os << "},\"timings_ns\":{";
  first = true;
  for (const auto& [name, t] : timings_) {
    sep();
    os << "\"" << json_escape(name) << "\":{\"count\":" << t.count
       << ",\"total\":" << fmt_double(t.total_ns)
       << ",\"min\":" << fmt_double(t.min_ns)
       << ",\"max\":" << fmt_double(t.max_ns) << "}";
  }
  os << "},\"histograms\":{";
  emit_histograms(runtime_histograms_);
  os << "}}}";
  return os.str();
}

std::optional<MetricsRegistry> MetricsRegistry::from_json(
    std::string_view json) {
  MetricsRegistry reg;
  Parser p{json};

  const auto parse_counter_map = [&](auto&& sink) {
    p.parse_object([&](const std::string& key) { sink(key, p.parse_u64()); });
  };

  const auto parse_histogram_map =
      [&](std::map<std::string, FixedHistogram, std::less<>>& target) {
        p.parse_object([&](const std::string& k) {
          FixedHistogram h;
          p.parse_object([&](const std::string& field) {
            if (field == "lo") h.spec.lo = p.parse_double();
            else if (field == "hi") h.spec.hi = p.parse_double();
            else if (field == "buckets") h.spec.buckets = static_cast<int>(p.parse_u64());
            else if (field == "underflow") h.underflow = p.parse_u64();
            else if (field == "overflow") h.overflow = p.parse_u64();
            else if (field == "counts") {
              if (!p.consume('[')) return;
              if (p.peek(']')) {
                p.consume(']');
                return;
              }
              for (;;) {
                h.counts.push_back(p.parse_u64());
                if (p.peek(',')) {
                  p.consume(',');
                  continue;
                }
                p.consume(']');
                return;
              }
            } else {
              p.ok = false;
            }
          });
          if (p.ok) {
            std::lock_guard<std::mutex> lk(reg.mu_);
            target[k] = std::move(h);
          }
        });
      };

  p.parse_object([&](const std::string& section) {
    if (section == "deterministic") {
      p.parse_object([&](const std::string& kind) {
        if (kind == "counters") {
          parse_counter_map(
              [&](const std::string& k, std::uint64_t v) { reg.add(k, v); });
        } else if (kind == "gauges") {
          p.parse_object([&](const std::string& k) {
            reg.set_gauge(k, p.parse_double());
          });
        } else if (kind == "labels") {
          p.parse_object([&](const std::string& k) {
            reg.set_label(k, p.parse_string());
          });
        } else if (kind == "histograms") {
          parse_histogram_map(reg.histograms_);
        } else {
          p.ok = false;
        }
      });
    } else if (section == "wallclock") {
      p.parse_object([&](const std::string& kind) {
        if (kind == "runtime") {
          parse_counter_map([&](const std::string& k, std::uint64_t v) {
            reg.add_runtime(k, v);
          });
        } else if (kind == "timings_ns") {
          p.parse_object([&](const std::string& k) {
            TimingStat t;
            p.parse_object([&](const std::string& field) {
              if (field == "count") t.count = p.parse_u64();
              else if (field == "total") t.total_ns = p.parse_double();
              else if (field == "min") t.min_ns = p.parse_double();
              else if (field == "max") t.max_ns = p.parse_double();
              else p.ok = false;
            });
            if (p.ok) {
              std::lock_guard<std::mutex> lk(reg.mu_);
              reg.timings_[k] = t;
            }
          });
        } else if (kind == "histograms") {
          parse_histogram_map(reg.runtime_histograms_);
        } else {
          p.ok = false;
        }
      });
    } else {
      p.ok = false;
    }
  });

  p.skip_ws();
  if (!p.ok || p.i != json.size()) return std::nullopt;
  return reg;
}

bool MetricsRegistry::save_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

MetricsRegistry& global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaked: no shutdown order issues
  return *reg;
}

// ---------------------------------------------------------------------------
// ScopedTimer
// ---------------------------------------------------------------------------

ScopedTimer::ScopedTimer(MetricsRegistry& registry, std::string name)
    : registry_(enabled() ? &registry : nullptr), name_(std::move(name)) {
  if (registry_ != nullptr) start_ns_ = monotonic_now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (registry_ == nullptr) return;
  registry_->record_timing_ns(
      name_, static_cast<double>(monotonic_now_ns() - start_ns_));
}

}  // namespace gear::obs
