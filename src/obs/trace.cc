#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

namespace gear::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  events_.reserve(capacity < 1024 ? capacity : 1024);
}

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard<std::mutex> lk(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::to_chrome_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) os << ",";
    first = false;
    char ts[40];
    char dur[40];
    std::snprintf(ts, sizeof ts, "%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    std::snprintf(dur, sizeof dur, "%.3f",
                  static_cast<double>(e.duration_ns) / 1000.0);
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.category) << "\",\"ph\":\"X\",\"ts\":" << ts
       << ",\"dur\":" << dur << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  os << "]}";
  return os.str();
}

bool TraceRecorder::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json() << "\n";
  return static_cast<bool>(out);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* rec = new TraceRecorder();  // leaked: no shutdown order issues
  return *rec;
}

std::uint64_t trace_thread_ordinal() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

TraceScope::TraceScope(std::string name, std::string category)
    : active_(enabled()), name_(std::move(name)),
      category_(std::move(category)) {
  if (active_) start_ns_ = monotonic_now_ns();
}

TraceScope::~TraceScope() {
  if (!active_) return;
  const std::uint64_t end_ns = monotonic_now_ns();
  TraceRecorder::global().record(TraceEvent{
      .name = name_,
      .category = category_,
      .start_ns = start_ns_,
      .duration_ns = end_ns - start_ns_,
      .tid = trace_thread_ordinal(),
  });
  global().record_timing_ns("span/" + name_,
                            static_cast<double>(end_ns - start_ns_));
}

}  // namespace gear::obs
