// Deterministic observability layer: metrics registry.
//
// Every engine in this repository runs under the shard/merge determinism
// contract (DESIGN.md §5a): results are bit-identical for any executor
// thread count. The observability layer extends that contract to
// telemetry by splitting metrics into two channels:
//
//  * deterministic — counters, gauges, labels and fixed-bucket
//    histograms. Values are pure functions of the workload (never of the
//    thread count, pool interleaving or wall clock). Per-shard registry
//    instances merge in canonical shard index order, and every
//    deterministic quantity is additive or idempotent, so the merged
//    registry is bit-identical across thread counts {1, 2, 8, ...} —
//    pinned by test_obs.cc.
//  * wall-clock — runtime counters (scheduling-dependent integers such as
//    cache hit/miss tallies under a parallel sweep), timing statistics
//    from RAII scoped timers, and wall-clock histograms (per-tenant
//    request-latency distributions with p50/p99 readouts). Explicitly
//    excluded from deterministic_equal() and from any bit-identity check.
//
// Both channels export through one flat JSON snapshot (to_json /
// from_json round-trip bit-exactly; doubles use %.17g) and hot spans
// additionally export as Chrome trace_event files (obs/trace.h).
//
// Instrumentation compiles to no-ops when the GEAR_OBS CMake option is
// OFF (GEAR_OBS_ENABLED=0): the GEAR_OBS_* macros expand to nothing, so
// hot loops reference no registry symbols at all. At runtime the
// environment variable GEAR_OBS=off disables recording without a
// rebuild (see DESIGN.md §5f).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#ifndef GEAR_OBS_ENABLED
#define GEAR_OBS_ENABLED 1
#endif

namespace gear::obs {

/// True when the instrumentation macros were compiled in.
inline constexpr bool kCompiledIn = GEAR_OBS_ENABLED != 0;

/// Runtime switch: GEAR_OBS=off in the environment disables recording.
/// Tests may override with set_runtime_enabled_for_testing().
bool runtime_enabled();
void set_runtime_enabled_for_testing(std::optional<bool> forced);

/// The single gate every instrumentation point checks.
inline bool enabled() { return kCompiledIn && runtime_enabled(); }

/// Fixed-bucket histogram geometry: `buckets` equal-width bins over
/// [lo, hi); out-of-range samples land in underflow/overflow. The spec is
/// part of the metric identity — recording the same name with a different
/// spec throws.
struct HistogramSpec {
  double lo = 0.0;
  double hi = 1.0;
  int buckets = 16;

  bool operator==(const HistogramSpec&) const = default;
};

struct FixedHistogram {
  HistogramSpec spec;
  std::vector<std::uint64_t> counts;  ///< spec.buckets entries
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;

  void record(double value);
  void merge(const FixedHistogram& other);  ///< specs must match
  std::uint64_t samples() const;

  /// Inverse-CDF estimate at `q` in [0, 1] (e.g. 0.5 → p50, 0.99 → p99):
  /// linear interpolation inside the containing bucket; underflow mass
  /// sits at spec.lo and overflow mass at spec.hi (a quantile landing in
  /// the overflow only says "at least hi"). Returns spec.lo when empty.
  double quantile(double q) const;

  bool operator==(const FixedHistogram&) const = default;
};

/// Wall-clock timing pool (count/total/min/max in nanoseconds). Lives in
/// the non-deterministic channel only.
struct TimingStat {
  std::uint64_t count = 0;
  double total_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;

  void record_ns(double ns);
  void merge(const TimingStat& other);
};

/// Stable, lock-free increment cell handed out by counter_handle() /
/// runtime_handle() so hot loops pay one relaxed atomic add per event
/// instead of a mutex + map lookup.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// Thread-safe metrics registry. Use value instances per shard and merge
/// in shard index order (the canonical §5a order), or the process-wide
/// global() instance for engine-level totals and bench snapshots.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry& other);
  MetricsRegistry& operator=(const MetricsRegistry& other);

  // --- deterministic channel ---------------------------------------------
  void add(std::string_view name, std::uint64_t delta = 1);
  Counter& counter_handle(std::string_view name);
  void set_gauge(std::string_view name, double value);
  void set_label(std::string_view name, std::string_view value);
  /// Records `value` into the fixed-bucket histogram `name`, creating it
  /// with `spec` on first use. Throws std::invalid_argument when the name
  /// exists with a different spec.
  void record(std::string_view name, const HistogramSpec& spec, double value);

  // --- wall-clock channel ------------------------------------------------
  void add_runtime(std::string_view name, std::uint64_t delta = 1);
  Counter& runtime_handle(std::string_view name);
  void record_timing_ns(std::string_view name, double ns);
  /// Records `value` into the wall-clock-channel fixed-bucket histogram
  /// `name` (per-tenant latency distributions and other timing-shaped
  /// samples), creating it with `spec` on first use. Same spec-identity
  /// rule as the deterministic record(); like every wall-clock metric it
  /// never participates in deterministic_equal().
  void record_runtime(std::string_view name, const HistogramSpec& spec,
                      double value);

  // --- reads -------------------------------------------------------------
  std::uint64_t counter(std::string_view name) const;  ///< 0 when absent
  std::optional<double> gauge(std::string_view name) const;
  std::optional<std::string> label(std::string_view name) const;
  std::optional<FixedHistogram> histogram(std::string_view name) const;
  std::uint64_t runtime(std::string_view name) const;  ///< 0 when absent
  std::optional<TimingStat> timing(std::string_view name) const;
  std::optional<FixedHistogram> runtime_histogram(std::string_view name) const;

  /// Pools `other` into this registry: counters/histograms/runtime/
  /// timings add, gauges and labels take `other`'s value when present
  /// (last shard wins — deterministic because merge order is the
  /// canonical shard index order).
  void merge(const MetricsRegistry& other);

  /// Bit-identity over the deterministic channel only: counters, gauges,
  /// labels and histograms. Runtime counters and timings never
  /// participate (they are scheduling/wall-clock artifacts).
  bool deterministic_equal(const MetricsRegistry& other) const;

  void clear();
  bool empty() const;  ///< no metric of any kind recorded

  /// Flat JSON snapshot of both channels; keys sorted (map order), every
  /// double rendered with %.17g so from_json(to_json()) is bit-exact.
  std::string to_json() const;
  static std::optional<MetricsRegistry> from_json(std::string_view json);
  bool save_json(const std::string& path) const;

 private:
  // Deterministic snapshot of the counters for equality/merge/JSON.
  std::map<std::string, std::uint64_t> counter_values_(
      const std::map<std::string, Counter, std::less<>>& m) const;

  mutable std::mutex mu_;
  // Node-based maps: Counter cells must stay address-stable for handles.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::string, std::less<>> labels_;
  std::map<std::string, FixedHistogram, std::less<>> histograms_;
  std::map<std::string, Counter, std::less<>> runtime_;
  std::map<std::string, TimingStat, std::less<>> timings_;
  std::map<std::string, FixedHistogram, std::less<>> runtime_histograms_;
};

/// Process-wide registry: engines record totals here, benches snapshot it
/// via --metrics_out. Reset with clear() between test runs.
MetricsRegistry& global();

/// RAII wall-clock timer: records a TimingStat (non-deterministic
/// channel) into `registry` on destruction. For spans that should also
/// land in the Chrome trace, prefer the GEAR_OBS_SPAN macro (obs/trace.h)
/// which feeds both exporters.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& registry, std::string name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;  ///< null when disabled at construction
  std::string name_;
  std::uint64_t start_ns_ = 0;
};

/// Monotonic nanoseconds since process start (steady clock); shared by
/// timers and trace spans so both exporters agree on timestamps.
std::uint64_t monotonic_now_ns();

}  // namespace gear::obs

// --- instrumentation macros (compile to nothing when GEAR_OBS=OFF) --------
#if GEAR_OBS_ENABLED

/// Deterministic counter increment via a stable handle: one relaxed
/// atomic add per event on the hot path. `name` is resolved once per
/// call site (function-local static), so it must be a constant — never
/// an expression that varies between invocations.
#define GEAR_OBS_COUNT(name, delta)                               \
  do {                                                            \
    if (::gear::obs::enabled()) {                                 \
      static ::gear::obs::Counter& gear_obs_counter_cell =        \
          ::gear::obs::global().counter_handle(name);             \
      gear_obs_counter_cell.add(delta);                           \
    }                                                             \
  } while (0)

/// Wall-clock-channel counter increment (scheduling-dependent tallies).
#define GEAR_OBS_RUNTIME_COUNT(name, delta)                       \
  do {                                                            \
    if (::gear::obs::enabled()) {                                 \
      static ::gear::obs::Counter& gear_obs_runtime_cell =        \
          ::gear::obs::global().runtime_handle(name);             \
      gear_obs_runtime_cell.add(delta);                           \
    }                                                             \
  } while (0)

#define GEAR_OBS_LABEL(name, value)                               \
  do {                                                            \
    if (::gear::obs::enabled()) {                                 \
      ::gear::obs::global().set_label(name, value);               \
    }                                                             \
  } while (0)

#else  // !GEAR_OBS_ENABLED

#define GEAR_OBS_COUNT(name, delta) ((void)0)
#define GEAR_OBS_RUNTIME_COUNT(name, delta) ((void)0)
#define GEAR_OBS_LABEL(name, value) ((void)0)

#endif  // GEAR_OBS_ENABLED
