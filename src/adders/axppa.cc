#include "adders/axppa.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "adders/bitsliced_zoo.h"
#include "core/width.h"
#include "stats/bitsliced.h"

namespace gear::adders {

SklanskyAxPpaAdder::SklanskyAxPpaAdder(int n, int low, int levels)
    : n_(n), low_(low), levels_(levels) {
  if (n < 2 || n > 64) {
    throw std::invalid_argument("axppa: operand width must satisfy 2 <= n <= 64 (got n=" +
                                std::to_string(n) + ")");
  }
  if (levels < 0 || levels > 6) {
    throw std::invalid_argument(
        "axppa: truncated prefix levels must satisfy 0 <= levels <= 6 (got levels=" +
        std::to_string(levels) + ")");
  }
  const int b = 1 << levels;
  if (low < b + 2 || low > n) {
    throw std::invalid_argument(
        "axppa: approximate region must satisfy 2^levels + 2 <= low <= n so a "
        "truncated carry exists below it (got low=" +
        std::to_string(low) + ", block=" + std::to_string(b) +
        ", n=" + std::to_string(n) + ")");
  }
}

std::string SklanskyAxPpaAdder::name() const {
  std::ostringstream os;
  os << "SkAxPPA(low=" << low_ << ",lvl=" << levels_ << ")";
  return os.str();
}

std::string SklanskyAxPpaAdder::spec() const {
  return "axppa:" + std::to_string(n_) + ":" + std::to_string(low_) + ":" +
         std::to_string(levels_);
}

int SklanskyAxPpaAdder::max_carry_chain() const {
  int depth = 0;
  while ((1 << depth) < n_) ++depth;
  return depth;
}

std::uint64_t SklanskyAxPpaAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  const int blk = block();
  // Upper bits (and the carry-out) see the full prefix: take them from
  // the exact sum. At n=64 the wrap drops the carry-out, as specified.
  const std::uint64_t exact_sum = a + b;
  std::uint64_t res = exact_sum & ~core::width_mask(low_);
  std::uint64_t c = 0;  // carry into bit i under the truncated prefix
  for (int i = 0; i < low_; ++i) {
    const std::uint64_t ai = (a >> i) & 1ULL;
    const std::uint64_t bi = (b >> i) & 1ULL;
    res |= ((ai ^ bi ^ c) & 1ULL) << i;
    const std::uint64_t prev = (i % blk == 0) ? 0 : c;
    c = (ai & bi) | ((ai ^ bi) & prev);
  }
  return res;
}

void SklanskyAxPpaAdder::add_batch(const std::uint64_t* a,
                                   const std::uint64_t* b, std::uint64_t* out,
                                   std::size_t count) const {
  const int blk = block();
  bitslice::for_each_lane_block(
      a, b, out, count,
      [this, blk](const std::uint64_t* la, const std::uint64_t* lb,
                  std::uint64_t* lout, int cnt) {
        std::uint64_t rows_g[64], rows_p[64];
        const std::uint64_t* g = rows_g;
        const std::uint64_t* p =
            stats::pack_gp(la, lb, cnt, n_, rows_g, rows_p);
        std::uint64_t rows[64];
        bitslice::clear_high_planes(rows, n_);
        std::uint64_t c = 0;
        for (int i = 0; i < low_; ++i) {
          rows[i] = p[i] ^ c;
          const std::uint64_t prev = (i % blk == 0) ? 0 : c;
          c = g[i] | (p[i] & prev);
        }
        // The upper part's carry-in is the *exact* prefix over [0, low).
        std::uint64_t ce = bitslice::ripple_carry(g, p, low_, 0);
        ce = bitslice::ripple(g + low_, p + low_, n_ - low_, ce, rows + low_);
        if (n_ < 64) rows[n_] = ce;
        stats::transpose64(rows);
        std::memcpy(lout, rows, static_cast<std::size_t>(cnt) * sizeof(std::uint64_t));
      });
}

}  // namespace gear::adders
