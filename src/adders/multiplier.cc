#include "adders/multiplier.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "adders/registry.h"

namespace gear::adders {

ApproxMultiplier::ApproxMultiplier(int n, const ApproxAdder& adder)
    : n_(n), adder_(adder) {
  assert(n >= 1 && n <= 31);
  assert(adder.width() == 2 * n);
  operand_mask_ = (1ULL << n) - 1;
}

std::string ApproxMultiplier::name() const {
  std::ostringstream os;
  os << "Mult" << n_ << "x" << n_ << "[" << adder_.name() << "]";
  return os.str();
}

std::uint64_t ApproxMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask_;
  b &= operand_mask_;
  const std::uint64_t product_mask = (1ULL << (2 * n_)) - 1;
  std::uint64_t acc = 0;
  for (int i = 0; i < n_; ++i) {
    if ((a >> i) & 1ULL) {
      acc = adder_.add(acc, b << i) & product_mask;
    }
  }
  return acc;
}

std::uint64_t ApproxMultiplier::exact(std::uint64_t a, std::uint64_t b) const {
  return (a & operand_mask_) * (b & operand_mask_);
}

GearMultiplier make_gear_multiplier(int n, int r, int p) {
  if (n < 1 || n > 31) throw std::invalid_argument("make_gear_multiplier: bad n");
  std::ostringstream spec;
  spec << "gear:" << 2 * n << ":" << r << ":" << p;
  GearMultiplier out;
  out.adder = make_adder(spec.str());
  out.mult = std::make_unique<ApproxMultiplier>(n, *out.adder);
  return out;
}

}  // namespace gear::adders
