// OFLOCA — optimized lower-part constant-OR adder (the OLOCA lineage of
// Dalloo et al.; SNIPPETS.md approximate-library exemplar).
//
// LOA's refinement: the lowest `const_bits` sum bits are hardwired to 1
// (the constant that minimizes mean error of a dropped segment under
// uniform inputs), bits [const_bits, low) are approximated by OR, and the
// upper part [low, n) is added exactly with zero carry-in — unlike LOA,
// no speculated cin, which is what removes the AND row from the critical
// area. Modeled functionally; see DESIGN.md §5k for the error structure.
#pragma once

#include "adders/adder.h"

namespace gear::adders {

class OflocaAdder final : public ApproxAdder {
 public:
  /// 2 <= n <= 64, 1 <= low < n, 0 <= const_bits <= low. Throws
  /// std::invalid_argument with an actionable message otherwise.
  OflocaAdder(int n, int low, int const_bits);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// Genuine bitsliced 64-lane kernel (constant/OR planes + exact ripple
  /// above `low`); pinned bit-identical to scalar add().
  void add_batch(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out, std::size_t count) const override;
  /// Bit 0 is constant 1 or a|b — wrong on a0=b0 inputs either way.
  int error_free_width() const override { return 0; }
  std::string family() const override { return "ofloca"; }
  std::string spec() const override;
  /// Only the exact upper part propagates carries.
  int max_carry_chain() const override { return n_ - low_; }
  int low() const { return low_; }
  int const_bits() const { return const_bits_; }

 private:
  int n_, low_, const_bits_;
};

}  // namespace gear::adders
