// AxPPA — approximate parallel-prefix adder on a Sklansky tree truncated
// to `levels` prefix levels in the lower part (AxPPA lineage; SNIPPETS.md
// exemplar).
//
// A full Sklansky tree computes the carry into bit i from the complete
// prefix [0, i-1]. Truncating after K levels leaves each prefix node
// spanning only its aligned 2^K-bit block: the carry into bit i is the
// generate of the window [floor((i-1)/B)*B, i-1] with B = 2^K — i.e.
// carries are cut at every aligned block boundary, exactly one mux layer
// shallower per dropped level. Bits at and above `low` keep the full
// (exact) prefix. Equivalent scalar recurrence, used by both paths here:
//
//   c_0 = 0;  c_{i+1} = g_i | (p_i & prev),  prev = (i % B == 0) ? 0 : c_i
//
// (the block base's prefix restarts the chain). See DESIGN.md §5k for why
// the induced error is a block-aligned missing-carry process, the same
// shape stats::OperandModel conditions on for GeAr.
#pragma once

#include "adders/adder.h"

namespace gear::adders {

class SklanskyAxPpaAdder final : public ApproxAdder {
 public:
  /// 2 <= n <= 64, 0 <= levels <= 6, block = 2^levels, and
  /// block + 2 <= low <= n so the truncation is real: the first cut carry
  /// (into bit block+1) must land below `low`. Throws
  /// std::invalid_argument with an actionable message otherwise.
  SklanskyAxPpaAdder(int n, int low, int levels);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// Genuine bitsliced 64-lane kernel (blocked plane recurrence below
  /// `low`, exact ripple above); pinned bit-identical to scalar add().
  void add_batch(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out, std::size_t count) const override;
  /// Carries into bits <= block survive truncation (their windows are
  /// complete); the first cut carry enters bit block+1. Tight.
  int error_free_width() const override { return block() + 1; }
  std::string family() const override { return "axppa"; }
  std::string spec() const override;
  /// Prefix-tree depth convention (like ClaAdder's per-block report):
  /// the exact upper tree is ceil(log2 n) levels deep.
  int max_carry_chain() const override;
  int low() const { return low_; }
  int levels() const { return levels_; }
  int block() const { return 1 << levels_; }

 private:
  int n_, low_, levels_;
};

}  // namespace gear::adders
