// Factory for adder models by specification string.
//
// Spec grammar (width-first):
//   "rca:N"            exact ripple-carry
//   "cla:N[:B]"        exact carry-lookahead, block B (default 4)
//   "aca1:N:L"         ACA-I with L-bit windows
//   "aca2:N:L"         ACA-II with L-bit windows
//   "etai:N:ACC"       ETAI with ACC accurate upper bits
//   "etaii:N:X"        ETAII with X-bit segments
//   "etaiim:N:X:M"     ETAIIM with M chained MSB segments
//   "gda:N:MB:MC"      GDA with MB-bit blocks, MC prediction bits
//   "gear:N:R:P"       GeAr approximate
//   "gear+ecc:N:R:P"   GeAr with full error correction
//   "loa:N:LOW"        lower-part OR adder
//   "cell:N:LOW:CELL"  approximate-FA cell adder (ama1..sesa1, exact)
//   "ofloca:N:LOW:C"   optimized lower-part constant-OR (C constant bits)
//   "laxa:N:LOW:V"     lower-part approximate-XOR cells, V in 1..3
//                      (1=AXA3, 2=TCAA, 3=SESA1)
//   "axppa:N:LOW[:K]"  Sklansky prefix truncated to K levels (default 2)
//                      below bit LOW
//   "cesa:N:B:E"       carry-estimating simultaneous adder (B-bit blocks,
//                      E-bit lookback)
//   "cesa+r:N:B:E"     CESA with one rectification stage
#pragma once

#include <string>
#include <vector>

#include "adders/adder.h"

namespace gear::adders {

/// Parses `spec` and builds the adder. Throws std::invalid_argument on a
/// malformed spec or invalid parameters.
AdderPtr make_adder(const std::string& spec);

/// All recognised family prefixes (for help text / enumeration tests).
std::vector<std::string> known_families();

/// One registry family, for enumeration-driven test suites and help text.
struct FamilyDesc {
  std::string prefix;          ///< spec prefix ("gear", "cesa+r", ...)
  std::string canonical_spec;  ///< a known-valid spec of the family
  std::string description;     ///< one-line summary
};

/// Descriptor per known family, in known_families() order. The canonical
/// spec round-trips: make_adder(canonical_spec)->spec() == canonical_spec.
/// The zoo oracle suite is parameterized over this list, so adding a
/// family here (and to known_families()) without extending its reference
/// model fails the build's test stage rather than silently going untested.
std::vector<FamilyDesc> list_families();

}  // namespace gear::adders
