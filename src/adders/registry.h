// Factory for adder models by specification string.
//
// Spec grammar (width-first):
//   "rca:N"            exact ripple-carry
//   "cla:N[:B]"        exact carry-lookahead, block B (default 4)
//   "aca1:N:L"         ACA-I with L-bit windows
//   "aca2:N:L"         ACA-II with L-bit windows
//   "etai:N:ACC"       ETAI with ACC accurate upper bits
//   "etaii:N:X"        ETAII with X-bit segments
//   "etaiim:N:X:M"     ETAIIM with M chained MSB segments
//   "gda:N:MB:MC"      GDA with MB-bit blocks, MC prediction bits
//   "gear:N:R:P"       GeAr approximate
//   "gear+ecc:N:R:P"   GeAr with full error correction
//   "loa:N:LOW"        lower-part OR adder
#pragma once

#include <string>
#include <vector>

#include "adders/adder.h"

namespace gear::adders {

/// Parses `spec` and builds the adder. Throws std::invalid_argument on a
/// malformed spec or invalid parameters.
AdderPtr make_adder(const std::string& spec);

/// All recognised family prefixes (for help text / enumeration tests).
std::vector<std::string> known_families();

}  // namespace gear::adders
