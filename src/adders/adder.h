// Common interface for all (exact and approximate) adder models.
//
// Every adder consumes two N-bit operands and yields an (N+1)-bit result
// (sum plus carry-out), mirroring the hardware port widths. Approximate
// adders deviate from a+b on some inputs; is_exact() distinguishes the
// reference designs (RCA, CLA).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/config.h"

namespace gear::adders {

class ApproxAdder {
 public:
  virtual ~ApproxAdder() = default;

  /// Display name used in benchmark tables, e.g. "ACA-II(L=8)".
  virtual std::string name() const = 0;

  /// Operand width N in bits (1..63 for the GeAr-coverage families; the
  /// zoo families of src/adders accept up to 64).
  virtual int width() const = 0;

  /// The (possibly approximate) sum; N+1 significant bits. At N == 64 the
  /// carry-out bit does not fit the word and is dropped (mod-2^64 sum,
  /// matching exact()'s wrap-around), a convention only the zoo families
  /// support and their oracle tests pin.
  virtual std::uint64_t add(std::uint64_t a, std::uint64_t b) const = 0;

  /// Element-wise batch add: out[i] = add(a[i], b[i]) for i in [0, count),
  /// bit-identical to count scalar add() calls. The default loops over
  /// add(), so every adder family works with the batched application
  /// kernels unchanged; families with a lane-parallel form (GeAr) override
  /// it to run 64 lanes per pass. `out` may alias `a` and/or `b` at the
  /// same offset (accumulator chains feed a batch's sums back as the next
  /// batch's operand), but must not otherwise overlap them.
  virtual void add_batch(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out, std::size_t count) const;

  /// True for designs that always return a+b.
  virtual bool is_exact() const { return false; }

  /// Number of least-significant result bits guaranteed to equal the
  /// exact sum's for *every* operand pair (of the N+1 result bits; N+1
  /// for exact adders). A sound lower bound: families whose first
  /// possible error position is structural (GeAr's first speculated
  /// boundary, AxPPA's first truncated prefix carry, ...) report it
  /// exactly; families that cannot be wrong below bit 0 anyway report 0.
  /// The zoo oracle suite (test_zoo_oracle.cc) verifies soundness by full
  /// enumeration at small widths, and tightness for families that claim a
  /// positive width.
  virtual int error_free_width() const { return 0; }

  /// Registry family prefix ("gear", "loa", "cesa+r", ...), or "" for
  /// adders that are not constructible through adders::make_adder (e.g. a
  /// GearAdapter wrapping a custom heterogeneous layout).
  virtual std::string family() const { return {}; }

  /// Canonical registry spec string: make_adder(spec()) reconstructs a
  /// functionally identical adder. "" when not registry-constructible.
  /// Pinned round-trip (parse -> print -> parse) for every family by
  /// test_zoo_oracle.cc's registry suite.
  virtual std::string spec() const { return {}; }

  /// Longest carry-propagation chain in bits; drives the delay model and
  /// the paper's latency argument.
  virtual int max_carry_chain() const = 0;

  /// The GeAr configuration this adder is functionally equivalent to, if
  /// any (paper Section 3.1 "configuration coverage").
  virtual std::optional<core::GeArConfig> gear_equivalent() const {
    return std::nullopt;
  }

  /// Exact reference for this width.
  std::uint64_t exact(std::uint64_t a, std::uint64_t b) const;

  /// Mask selecting the low N operand bits.
  std::uint64_t operand_mask() const;
};

using AdderPtr = std::unique_ptr<ApproxAdder>;

}  // namespace gear::adders
