// Gracefully-Degrading Adder (Ye, Wang, Yuan, Kumar, Xu — ICCAD'13).
//
// GDA tiles the operands into M_B-bit sum blocks. The carry into each
// block is chosen by a multiplexer between (a) the previous block's carry
// and (b) a prediction computed by a hierarchical carry-lookahead tree
// over the previous M_C bits (M_C a multiple of M_B). This model covers
// the uniform configurations the paper compares against: every block uses
// an M_C-bit prediction with zero carry-in at its base.
//
// The mux setting is runtime-configurable (`set_ripple_select`), mirroring
// GDA's graceful degradation: each boundary independently takes either the
// M_C-bit prediction or the previous block's rippled carry (exact).
//
// Functionally a uniform GDA equals GeAr(R=M_B, P=M_C); the hardware
// differs (CLA prediction tree vs embedded previous bits), which is why
// the paper's Table II shows GDA costing more delay and area at equal
// accuracy. Our synthesis substrate reproduces that structural difference.
#pragma once

#include <vector>

#include "adders/adder.h"

namespace gear::adders {

class GdaAdder final : public ApproxAdder {
 public:
  /// `mb` divides n; `mc` is a positive multiple of `mb` with mc < n.
  GdaAdder(int n, int mb, int mc);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// First predicted boundary sits at bit mb + mc (boundaries at or below
  /// mc see complete generator windows). Sound lower bound — runtime
  /// ripple_select degradation only makes further boundaries exact.
  int error_free_width() const override {
    return mb_ + mc_ >= n_ ? n_ + 1 : mb_ + mc_;
  }
  std::string family() const override { return "gda"; }
  std::string spec() const override {
    return "gda:" + std::to_string(n_) + ":" + std::to_string(mb_) + ":" +
           std::to_string(mc_);
  }
  /// Prediction depth in bits plus the block itself (prediction mode).
  int max_carry_chain() const override;
  std::optional<core::GeArConfig> gear_equivalent() const override;
  int mb() const { return mb_; }
  int mc() const { return mc_; }

  /// Runtime carry-select state, one bit per internal block boundary
  /// (boundary i sits below block i+1): false = M_C-bit prediction,
  /// true = previous block's rippled carry (exact). Matches the "cfg"
  /// input bus of netlist::build_gda. All-false by default.
  void set_ripple_select(const std::vector<bool>& select);
  const std::vector<bool>& ripple_select() const { return ripple_select_; }
  /// Degrades every boundary to the exact rippled carry.
  void set_fully_exact();

 private:
  int n_, mb_, mc_;
  std::vector<bool> ripple_select_;
};

}  // namespace gear::adders
