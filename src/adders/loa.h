// Lower-part OR Adder (Gupta et al., IEEE TCAD'13) — an additional
// baseline from the paper's related work: the low `lower` bits are
// approximated by OR, the upper part is added exactly with a carry-in
// speculated from the AND of the lower part's MSBs.
#pragma once

#include "adders/adder.h"

namespace gear::adders {

class LoaAdder final : public ApproxAdder {
 public:
  LoaAdder(int n, int lower);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// Bit 0 is already a|b (wrong on a0=b0=1), so no LSB is guaranteed.
  int error_free_width() const override { return 0; }
  std::string family() const override { return "loa"; }
  std::string spec() const override {
    return "loa:" + std::to_string(n_) + ":" + std::to_string(lower_);
  }
  int max_carry_chain() const override { return n_ - lower_; }
  int lower() const { return lower_; }

 private:
  int n_, lower_;
};

}  // namespace gear::adders
