// Speculative overlapping-window adders: ACA-I (Verma et al., DATE'08)
// and ACA-II (Kahng & Kang, DAC'12).
//
// Both compute each result bit (ACA-I) or each R-bit result group (ACA-II)
// from a fixed-length window of lower bits, speculating that no carry
// propagates past the window. They are implemented here from their
// original formulations — independently of the GeAr model — and the test
// suite verifies the paper's coverage claims: ACA-I(L) == GeAr(R=1,P=L-1)
// and ACA-II(L) == GeAr(R=L/2,P=L/2).
#pragma once

#include "adders/adder.h"

namespace gear::adders {

/// Almost Correct Adder I: result bit i is the top bit of the exact sum of
/// the window of `l` bits ending at i (fewer at the LSB end).
class Aca1Adder final : public ApproxAdder {
 public:
  Aca1Adder(int n, int l);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// Result bits [0, l) come from full windows anchored at bit 0 — exact.
  int error_free_width() const override { return l_ >= n_ ? n_ + 1 : l_; }
  std::string family() const override { return "aca1"; }
  std::string spec() const override {
    return "aca1:" + std::to_string(n_) + ":" + std::to_string(l_);
  }
  int max_carry_chain() const override { return l_; }
  std::optional<core::GeArConfig> gear_equivalent() const override;
  int l() const { return l_; }

 private:
  int n_, l_;
};

/// Accuracy-Configurable Adder II: overlapping `l`-bit sub-adders stepped
/// by l/2; each contributes its top l/2 bits (the first contributes all).
class Aca2Adder final : public ApproxAdder {
 public:
  /// `l` must be even; N must satisfy the window tiling (N % (l/2) == 0).
  Aca2Adder(int n, int l);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// The first sub-adder contributes its full l bits exactly.
  int error_free_width() const override { return l_ >= n_ ? n_ + 1 : l_; }
  std::string family() const override { return "aca2"; }
  std::string spec() const override {
    return "aca2:" + std::to_string(n_) + ":" + std::to_string(l_);
  }
  int max_carry_chain() const override { return l_; }
  std::optional<core::GeArConfig> gear_equivalent() const override;
  int l() const { return l_; }

 private:
  int n_, l_;
};

}  // namespace gear::adders
