#include "adders/cell_based.h"

#include <cassert>
#include <sstream>

namespace gear::adders {

namespace {

FaOut exact_fa(bool a, bool b, bool cin) {
  return {(a != b) != cin, (a && b) || (cin && (a != b))};
}

// Lowercase registry token, matching make_adder's "cell:N:LOW:<cell>".
const char* cell_spec_token(FaCell cell) {
  switch (cell) {
    case FaCell::kExact: return "exact";
    case FaCell::kAma1: return "ama1";
    case FaCell::kAma2: return "ama2";
    case FaCell::kAma3: return "ama3";
    case FaCell::kAxa2: return "axa2";
    case FaCell::kTga1: return "tga1";
    case FaCell::kAxa3: return "axa3";
    case FaCell::kTcaa: return "tcaa";
    case FaCell::kSesa1: return "sesa1";
  }
  return "?";
}

}  // namespace

FaOut eval_cell(FaCell cell, bool a, bool b, bool cin) {
  const FaOut exact = exact_fa(a, b, cin);
  switch (cell) {
    case FaCell::kExact:
      return exact;
    case FaCell::kAma1:
      // Gupta AMA1: sum approximated as ~cout (cout exact). Wrong sum on
      // (0,0,0) and (1,1,1).
      return {!exact.cout, exact.cout};
    case FaCell::kAma2:
      // Sum ignores the carry-in; cout exact. Wrong sum whenever cin=1
      // and a^b flips it.
      return {a != b, exact.cout};
    case FaCell::kAma3:
      // Aggressive: sum = ~cout, cout = a (majority replaced by one
      // input). Cheapest cell, worst accuracy.
      return {!a, a};
    case FaCell::kAxa2:
      // XNOR-based sum (correct exactly when cin = 1), exact cout.
      return {a == b, exact.cout};
    case FaCell::kTga1:
      // Transmission-gate variant: exact sum, cout = a.
      return {exact.sum, a};
    case FaCell::kAxa3:
      // AXA2 refinement: sum = NAND(cin, a^b). Correct on every cin=1 row
      // (exact sum there is ~(a^b)) and on the cin=0 propagate rows;
      // wrong only on (0,0,0) and (1,1,0), both +1. Cout exact.
      return {!(cin && (a != b)), exact.cout};
    case FaCell::kTcaa:
      // Truncated-carry cell: sum = a|b, cout = a&b — a half-adder with
      // OR-ed sum; cin is ignored, so a chain of these never propagates.
      return {a || b, a && b};
    case FaCell::kSesa1:
      // Exact sum for whatever cin arrives; the carry output merely
      // forwards cin (generate/kill dropped), so the chain is a wire.
      return {exact.sum, cin};
  }
  return exact;
}

int cell_error_entries(FaCell cell) {
  int errors = 0;
  for (int i = 0; i < 8; ++i) {
    const bool a = i & 1, b = i & 2, cin = i & 4;
    const FaOut want = exact_fa(a, b, cin);
    const FaOut got = eval_cell(cell, a, b, cin);
    if (got.sum != want.sum) ++errors;
    if (got.cout != want.cout) ++errors;
  }
  return errors;
}

const char* cell_name(FaCell cell) {
  switch (cell) {
    case FaCell::kExact: return "FA";
    case FaCell::kAma1: return "AMA1";
    case FaCell::kAma2: return "AMA2";
    case FaCell::kAma3: return "AMA3";
    case FaCell::kAxa2: return "AXA2";
    case FaCell::kTga1: return "TGA1";
    case FaCell::kAxa3: return "AXA3";
    case FaCell::kTcaa: return "TCAA";
    case FaCell::kSesa1: return "SESA1";
  }
  return "?";
}

CellBasedAdder::CellBasedAdder(int n, int approx_bits, FaCell cell)
    : n_(n), approx_bits_(approx_bits), cell_(cell) {
  assert(n >= 1 && n <= 63);
  assert(approx_bits >= 0 && approx_bits <= n);
}

std::string CellBasedAdder::name() const {
  std::ostringstream os;
  os << cell_name(cell_) << "(low=" << approx_bits_ << ")";
  return os.str();
}

int CellBasedAdder::error_free_width() const {
  if (cell_ == FaCell::kExact || approx_bits_ == 0) return n_ + 1;
  // Bit 0 always sees cin=0, so it is guaranteed iff the cell's sum is
  // right on all four cin=0 rows; bit 1 can then still see a wrong cout.
  for (int i = 0; i < 4; ++i) {
    const bool a = i & 1, b = i & 2;
    if (eval_cell(cell_, a, b, false).sum != (a != b)) return 0;
  }
  return 1;
}

std::string CellBasedAdder::spec() const {
  return "cell:" + std::to_string(n_) + ":" + std::to_string(approx_bits_) +
         ":" + cell_spec_token(cell_);
}

std::uint64_t CellBasedAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  std::uint64_t sum = 0;
  bool carry = false;
  for (int i = 0; i < n_; ++i) {
    const bool ai = (a >> i) & 1ULL;
    const bool bi = (b >> i) & 1ULL;
    const FaCell cell = i < approx_bits_ ? cell_ : FaCell::kExact;
    const FaOut out = eval_cell(cell, ai, bi, carry);
    sum |= static_cast<std::uint64_t>(out.sum) << i;
    carry = out.cout;
  }
  sum |= static_cast<std::uint64_t>(carry) << n_;
  return sum;
}

}  // namespace gear::adders
