#include "adders/cell_based.h"

#include <cassert>
#include <sstream>

namespace gear::adders {

namespace {

FaOut exact_fa(bool a, bool b, bool cin) {
  return {(a != b) != cin, (a && b) || (cin && (a != b))};
}

}  // namespace

FaOut eval_cell(FaCell cell, bool a, bool b, bool cin) {
  const FaOut exact = exact_fa(a, b, cin);
  switch (cell) {
    case FaCell::kExact:
      return exact;
    case FaCell::kAma1:
      // Gupta AMA1: sum approximated as ~cout (cout exact). Wrong sum on
      // (0,0,0) and (1,1,1).
      return {!exact.cout, exact.cout};
    case FaCell::kAma2:
      // Sum ignores the carry-in; cout exact. Wrong sum whenever cin=1
      // and a^b flips it.
      return {a != b, exact.cout};
    case FaCell::kAma3:
      // Aggressive: sum = ~cout, cout = a (majority replaced by one
      // input). Cheapest cell, worst accuracy.
      return {!a, a};
    case FaCell::kAxa2:
      // XNOR-based sum (correct exactly when cin = 1), exact cout.
      return {a == b, exact.cout};
    case FaCell::kTga1:
      // Transmission-gate variant: exact sum, cout = a.
      return {exact.sum, a};
  }
  return exact;
}

int cell_error_entries(FaCell cell) {
  int errors = 0;
  for (int i = 0; i < 8; ++i) {
    const bool a = i & 1, b = i & 2, cin = i & 4;
    const FaOut want = exact_fa(a, b, cin);
    const FaOut got = eval_cell(cell, a, b, cin);
    if (got.sum != want.sum) ++errors;
    if (got.cout != want.cout) ++errors;
  }
  return errors;
}

const char* cell_name(FaCell cell) {
  switch (cell) {
    case FaCell::kExact: return "FA";
    case FaCell::kAma1: return "AMA1";
    case FaCell::kAma2: return "AMA2";
    case FaCell::kAma3: return "AMA3";
    case FaCell::kAxa2: return "AXA2";
    case FaCell::kTga1: return "TGA1";
  }
  return "?";
}

CellBasedAdder::CellBasedAdder(int n, int approx_bits, FaCell cell)
    : n_(n), approx_bits_(approx_bits), cell_(cell) {
  assert(n >= 1 && n <= 63);
  assert(approx_bits >= 0 && approx_bits <= n);
}

std::string CellBasedAdder::name() const {
  std::ostringstream os;
  os << cell_name(cell_) << "(low=" << approx_bits_ << ")";
  return os.str();
}

std::uint64_t CellBasedAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  std::uint64_t sum = 0;
  bool carry = false;
  for (int i = 0; i < n_; ++i) {
    const bool ai = (a >> i) & 1ULL;
    const bool bi = (b >> i) & 1ULL;
    const FaCell cell = i < approx_bits_ ? cell_ : FaCell::kExact;
    const FaOut out = eval_cell(cell, ai, bi, carry);
    sum |= static_cast<std::uint64_t>(out.sum) << i;
    carry = out.cout;
  }
  sum |= static_cast<std::uint64_t>(carry) << n_;
  return sum;
}

}  // namespace gear::adders
