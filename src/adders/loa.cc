#include "adders/loa.h"

#include <cassert>
#include <sstream>

namespace gear::adders {

LoaAdder::LoaAdder(int n, int lower) : n_(n), lower_(lower) {
  assert(n >= 2 && n <= 63);
  assert(lower >= 1 && lower < n);
}

std::string LoaAdder::name() const {
  std::ostringstream os;
  os << "LOA(low=" << lower_ << ")";
  return os.str();
}

std::uint64_t LoaAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  const std::uint64_t lmask = (1ULL << lower_) - 1;
  const std::uint64_t low = (a | b) & lmask;
  // Carry-in speculated from the AND of the lower part's top bits.
  const std::uint64_t cin = ((a >> (lower_ - 1)) & (b >> (lower_ - 1))) & 1ULL;
  const std::uint64_t up = (a >> lower_) + (b >> lower_) + cin;
  return (up << lower_) | low;
}

}  // namespace gear::adders
