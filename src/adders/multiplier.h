// Approximate multiplier built from a configurable adder.
//
// The paper motivates GeAr with multiply-accumulate-heavy image/DSP
// workloads; this extension composes one: an N x N -> 2N-bit shift-add
// multiplier whose partial-product accumulation runs through any
// ApproxAdder of width 2N (exact RCA, GeAr, ACA-II, ...). The adder's
// missing-carry behaviour propagates into product error exactly as it
// would in an iterative hardware multiplier that reuses one adder.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "adders/adder.h"

namespace gear::adders {

class ApproxMultiplier {
 public:
  /// `n` is the operand width (1..31); `adder` must have width 2n and
  /// must outlive the multiplier.
  ApproxMultiplier(int n, const ApproxAdder& adder);

  int width() const { return n_; }
  const ApproxAdder& adder() const { return adder_; }
  std::string name() const;

  /// The (possibly approximate) 2N-bit product.
  std::uint64_t multiply(std::uint64_t a, std::uint64_t b) const;

  /// Exact reference product.
  std::uint64_t exact(std::uint64_t a, std::uint64_t b) const;

 private:
  int n_;
  const ApproxAdder& adder_;
  std::uint64_t operand_mask_;
};

/// Owning bundle: a GeAr-based multiplier with its adder.
struct GearMultiplier {
  AdderPtr adder;
  std::unique_ptr<ApproxMultiplier> mult;
};

/// Builds an n x n multiplier accumulating through GeAr(2n, r, p)
/// (relaxed geometry allowed). Throws std::invalid_argument when the
/// configuration is invalid.
GearMultiplier make_gear_multiplier(int n, int r, int p);

}  // namespace gear::adders
