// LAXA — lower-part approximate-XOR adder: the low `low` bit positions use
// one XOR/XNOR-lineage approximate full-adder cell (AXA3 / TCAA / SESA1,
// see adders/cell_based.h), the upper positions are exact full adders, and
// the carry recurrence of the chosen cell runs through the whole chain.
//
// This extends the cell framework with a family whose carry structure
// differs per cell: AXA3 keeps the exact carry (sum-only errors), TCAA
// cuts the chain at every approximate bit (cout = a&b, cin ignored) and
// SESA1 turns it into a wire (cout = cin). That structural spread is what
// makes LAXA a useful probe for the error model — see DESIGN.md §5k.
#pragma once

#include "adders/adder.h"
#include "adders/cell_based.h"

namespace gear::adders {

class LaxaAdder final : public ApproxAdder {
 public:
  /// 2 <= n <= 64, 1 <= low <= n, variant in {1: AXA3, 2: TCAA, 3: SESA1}.
  /// Throws std::invalid_argument with an actionable message otherwise.
  LaxaAdder(int n, int low, int variant);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// Genuine bitsliced 64-lane kernel: the cell's sum/cout rows become
  /// two-gate plane recurrences. Pinned bit-identical to scalar add().
  void add_batch(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out, std::size_t count) const override;
  /// AXA3/TCAA can be wrong at bit 0 (cin=0 sum rows); SESA1's sum row is
  /// exact, so bit 0 is guaranteed (bit 1 then sees cout = cin = 0).
  int error_free_width() const override;
  std::string family() const override { return "laxa"; }
  std::string spec() const override;
  /// AXA3 keeps the exact cout (full ripple); TCAA/SESA1 kill or bypass
  /// generation below `low`, so only the upper part propagates.
  int max_carry_chain() const override;
  int low() const { return low_; }
  int variant() const { return variant_; }
  FaCell cell() const;

 private:
  int n_, low_, variant_;
};

}  // namespace gear::adders
