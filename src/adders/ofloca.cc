#include "adders/ofloca.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "adders/bitsliced_zoo.h"
#include "core/width.h"
#include "stats/bitsliced.h"

namespace gear::adders {

OflocaAdder::OflocaAdder(int n, int low, int const_bits)
    : n_(n), low_(low), const_bits_(const_bits) {
  if (n < 2 || n > 64) {
    throw std::invalid_argument("ofloca: operand width must satisfy 2 <= n <= 64 (got n=" +
                                std::to_string(n) + ")");
  }
  if (low < 1 || low >= n) {
    throw std::invalid_argument("ofloca: lower part must satisfy 1 <= low < n (got low=" +
                                std::to_string(low) + ", n=" + std::to_string(n) + ")");
  }
  if (const_bits < 0 || const_bits > low) {
    throw std::invalid_argument(
        "ofloca: constant-one width must satisfy 0 <= const <= low (got const=" +
        std::to_string(const_bits) + ", low=" + std::to_string(low) + ")");
  }
}

std::string OflocaAdder::name() const {
  std::ostringstream os;
  os << "OFLOCA(low=" << low_ << ",const=" << const_bits_ << ")";
  return os.str();
}

std::string OflocaAdder::spec() const {
  return "ofloca:" + std::to_string(n_) + ":" + std::to_string(low_) + ":" +
         std::to_string(const_bits_);
}

std::uint64_t OflocaAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  const std::uint64_t cmask = core::width_mask(const_bits_);
  const std::uint64_t lmask = core::width_mask(low_);
  const std::uint64_t lowbits = ((a | b) & lmask & ~cmask) | cmask;
  // Exact upper sum with zero carry-in; at n=64 the shift back wraps the
  // carry-out away, matching the interface's mod-2^64 convention.
  const std::uint64_t up = (a >> low_) + (b >> low_);
  return (up << low_) | lowbits;
}

void OflocaAdder::add_batch(const std::uint64_t* a, const std::uint64_t* b,
                            std::uint64_t* out, std::size_t count) const {
  bitslice::for_each_lane_block(
      a, b, out, count,
      [this](const std::uint64_t* la, const std::uint64_t* lb,
             std::uint64_t* lout, int cnt) {
        std::uint64_t rows_g[64], rows_p[64];
        const std::uint64_t* g = rows_g;
        const std::uint64_t* p =
            stats::pack_gp(la, lb, cnt, n_, rows_g, rows_p);
        std::uint64_t rows[64];
        bitslice::clear_high_planes(rows, n_);
        for (int i = 0; i < const_bits_; ++i) rows[i] = ~0ULL;
        // a|b == g|p (generate OR propagate).
        for (int i = const_bits_; i < low_; ++i) rows[i] = g[i] | p[i];
        const std::uint64_t cout =
            bitslice::ripple(g + low_, p + low_, n_ - low_, 0, rows + low_);
        if (n_ < 64) rows[n_] = cout;
        stats::transpose64(rows);
        std::memcpy(lout, rows, static_cast<std::size_t>(cnt) * sizeof(std::uint64_t));
      });
}

}  // namespace gear::adders
