#include "adders/gda.h"

#include "core/width.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace gear::adders {

namespace {
inline std::uint64_t low_mask(int bits) { return core::width_mask(bits); }

/// Carry-lookahead over bits [lo, lo+len) with carry-in 0: group generate.
/// Computed with the CLA recurrence (G, P per level) to mirror the
/// hierarchical prediction tree, though the value equals the plain carry.
std::uint64_t cla_group_generate(std::uint64_t a, std::uint64_t b, int lo, int len) {
  std::uint64_t g = 0;  // group generate accumulated LSB->MSB
  for (int i = 0; i < len; ++i) {
    const std::uint64_t ai = (a >> (lo + i)) & 1ULL;
    const std::uint64_t bi = (b >> (lo + i)) & 1ULL;
    const std::uint64_t gi = ai & bi;
    const std::uint64_t pi = ai ^ bi;
    g = gi | (pi & g);
  }
  return g;
}
}  // namespace

GdaAdder::GdaAdder(int n, int mb, int mc)
    : n_(n), mb_(mb), mc_(mc),
      ripple_select_(static_cast<std::size_t>(n / mb - 1), false) {
  assert(n >= 2 && n <= 63);
  assert(mb >= 1 && n % mb == 0);
  assert(mc >= 1 && mc % mb == 0 && mc < n);
}

void GdaAdder::set_ripple_select(const std::vector<bool>& select) {
  assert(select.size() == ripple_select_.size());
  ripple_select_ = select;
}

void GdaAdder::set_fully_exact() {
  ripple_select_.assign(ripple_select_.size(), true);
}

int GdaAdder::max_carry_chain() const {
  // A chain either restarts at a prediction unit (min(mc, lo) lookahead
  // bits feeding the block) or, at a rippled boundary, continues through
  // the previous run.
  int chain = mb_;  // block 0 has carry-in 0
  int run = mb_;
  int lo = mb_;
  for (bool ripple : ripple_select_) {
    run = ripple ? run + mb_ : std::min(mc_, lo) + mb_;
    chain = std::max(chain, run);
    lo += mb_;
  }
  return chain;
}

std::string GdaAdder::name() const {
  std::ostringstream os;
  os << "GDA(" << mb_ << "," << mc_ << ")";
  return os.str();
}

std::uint64_t GdaAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  std::uint64_t sum = 0;
  std::uint64_t prev_carry = 0;
  std::uint64_t top_carry = 0;
  for (int lo = 0; lo < n_; lo += mb_) {
    std::uint64_t cin = 0;
    if (lo > 0) {
      const bool ripple = ripple_select_[static_cast<std::size_t>(lo / mb_ - 1)];
      if (ripple) {
        cin = prev_carry;
      } else {
        const int pred = std::min(mc_, lo);
        cin = cla_group_generate(a, b, lo - pred, pred);
      }
    }
    const std::uint64_t sa = (a >> lo) & low_mask(mb_);
    const std::uint64_t sb = (b >> lo) & low_mask(mb_);
    const std::uint64_t s = sa + sb + cin;
    sum |= (s & low_mask(mb_)) << lo;
    prev_carry = (s >> mb_) & 1ULL;
    top_carry = prev_carry;
  }
  sum |= top_carry << n_;
  return sum;
}

std::optional<core::GeArConfig> GdaAdder::gear_equivalent() const {
  // Only the uniform all-prediction mode maps onto a GeAr configuration.
  for (bool ripple : ripple_select_) {
    if (ripple) return std::nullopt;
  }
  return core::GeArConfig::make(n_, mb_, mc_);
}

}  // namespace gear::adders
