#include "adders/laxa.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "adders/bitsliced_zoo.h"
#include "stats/bitsliced.h"

namespace gear::adders {

LaxaAdder::LaxaAdder(int n, int low, int variant)
    : n_(n), low_(low), variant_(variant) {
  if (n < 2 || n > 64) {
    throw std::invalid_argument("laxa: operand width must satisfy 2 <= n <= 64 (got n=" +
                                std::to_string(n) + ")");
  }
  if (low < 1 || low > n) {
    throw std::invalid_argument("laxa: lower part must satisfy 1 <= low <= n (got low=" +
                                std::to_string(low) + ", n=" + std::to_string(n) + ")");
  }
  if (variant < 1 || variant > 3) {
    throw std::invalid_argument(
        "laxa: cell variant must be 1 (AXA3), 2 (TCAA) or 3 (SESA1), got " +
        std::to_string(variant));
  }
}

FaCell LaxaAdder::cell() const {
  switch (variant_) {
    case 1: return FaCell::kAxa3;
    case 2: return FaCell::kTcaa;
    default: return FaCell::kSesa1;
  }
}

std::string LaxaAdder::name() const {
  std::ostringstream os;
  os << "LAXA-" << cell_name(cell()) << "(low=" << low_ << ")";
  return os.str();
}

std::string LaxaAdder::spec() const {
  return "laxa:" + std::to_string(n_) + ":" + std::to_string(low_) + ":" +
         std::to_string(variant_);
}

int LaxaAdder::error_free_width() const {
  return cell() == FaCell::kSesa1 ? 1 : 0;
}

int LaxaAdder::max_carry_chain() const {
  return cell() == FaCell::kAxa3 ? n_ : n_ - low_;
}

std::uint64_t LaxaAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  const FaCell lower_cell = cell();
  std::uint64_t sum = 0;
  bool carry = false;
  for (int i = 0; i < n_; ++i) {
    const bool ai = (a >> i) & 1ULL;
    const bool bi = (b >> i) & 1ULL;
    const FaCell c = i < low_ ? lower_cell : FaCell::kExact;
    const FaOut out = eval_cell(c, ai, bi, carry);
    sum |= static_cast<std::uint64_t>(out.sum) << i;
    carry = out.cout;
  }
  if (n_ < 64) sum |= static_cast<std::uint64_t>(carry) << n_;
  return sum;
}

void LaxaAdder::add_batch(const std::uint64_t* a, const std::uint64_t* b,
                          std::uint64_t* out, std::size_t count) const {
  const FaCell lower_cell = cell();
  bitslice::for_each_lane_block(
      a, b, out, count,
      [this, lower_cell](const std::uint64_t* la, const std::uint64_t* lb,
                         std::uint64_t* lout, int cnt) {
        std::uint64_t rows_g[64], rows_p[64];
        const std::uint64_t* g = rows_g;
        const std::uint64_t* p =
            stats::pack_gp(la, lb, cnt, n_, rows_g, rows_p);
        std::uint64_t rows[64];
        bitslice::clear_high_planes(rows, n_);
        // Lower cells: the truth-table rows of eval_cell as plane ops.
        std::uint64_t c = 0;
        for (int i = 0; i < low_; ++i) {
          switch (lower_cell) {
            case FaCell::kAxa3:  // sum = NAND(cin, a^b), cout exact
              rows[i] = ~(c & p[i]);
              c = g[i] | (p[i] & c);
              break;
            case FaCell::kTcaa:  // sum = a|b, cout = a&b (cin ignored)
              rows[i] = g[i] | p[i];
              c = g[i];
              break;
            default:  // kSesa1: sum exact, cout = cin (chain is a wire)
              rows[i] = p[i] ^ c;
              break;
          }
        }
        const std::uint64_t cout =
            bitslice::ripple(g + low_, p + low_, n_ - low_, c, rows + low_);
        if (n_ < 64) rows[n_] = cout;
        stats::transpose64(rows);
        std::memcpy(lout, rows, static_cast<std::size_t>(cnt) * sizeof(std::uint64_t));
      });
}

}  // namespace gear::adders
