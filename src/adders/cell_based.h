// Cell-level approximate adders (Gupta et al., IEEE TCAD'13 — the
// paper's reference [12]).
//
// Instead of cutting carry chains (GeAr/ACA/ETA), this family substitutes
// simplified full-adder *cells* in the low-order bits: each Approximate
// Mirror Adder (AMA) variant trades transistor count for wrong entries in
// the FA truth table. We model the standard variants by their published
// truth tables and compose an adder whose low `approx_bits` positions use
// an approximate cell and whose upper part is exact.
//
// This gives the benchmark suite a structurally different baseline
// against which GeAr's windowing approach can be compared at equal error
// budgets.
#pragma once

#include <array>

#include "adders/adder.h"

namespace gear::adders {

/// Approximate full-adder cell variants. kExact is the true FA.
enum class FaCell {
  kExact,
  kAma1,  ///< mirror adder approximation 1: sum = ~cout with two errors
  kAma2,  ///< sum = a^b (carry ignored in sum), cout exact
  kAma3,  ///< AMA1 sum simplification + cout = a (majority dropped)
  kAxa2,  ///< XOR/XNOR-based: sum = ~(a^b) (wrong when cin=0), cout exact
  kTga1,  ///< transmission-gate variant: cout = a, sum = exact-sum table
  // XOR/XNOR-lineage cells backing the LAXA family (SNIPPETS.md approx
  // library). Modeled truth tables, documented per cell in eval_cell():
  kAxa3,   ///< sum = NAND(cin, a^b) — fixes AXA2's cin=0 propagate rows
           ///< (2 wrong sums), cout exact
  kTcaa,   ///< truncated-carry: sum = a|b, cout = a&b (cin ignored
           ///< entirely — the carry chain is cut at every bit)
  kSesa1,  ///< single-exact/single-approximate: sum exact, cout = cin
           ///< (the carry chain degenerates to a wire)
};

struct FaOut {
  bool sum;
  bool cout;
};

/// Truth-table evaluation of one cell.
FaOut eval_cell(FaCell cell, bool a, bool b, bool cin);

/// Number of wrong (sum, cout) entries out of the 8 input combinations.
int cell_error_entries(FaCell cell);

/// Human-readable cell name.
const char* cell_name(FaCell cell);

/// N-bit adder whose low `approx_bits` positions use `cell` and whose
/// remaining positions are exact full adders (carry ripples throughout).
class CellBasedAdder final : public ApproxAdder {
 public:
  CellBasedAdder(int n, int approx_bits, FaCell cell);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// n+1 for an exact composition; else 1 when the cell's sum row is
  /// correct on every cin=0 input (bit 0 always sees cin=0), else 0.
  int error_free_width() const override;
  std::string family() const override { return "cell"; }
  std::string spec() const override;
  /// The carry still ripples through all N bits (cells approximate
  /// values, not timing).
  int max_carry_chain() const override { return n_; }
  int approx_bits() const { return approx_bits_; }
  FaCell cell() const { return cell_; }

 private:
  int n_, approx_bits_;
  FaCell cell_;
};

}  // namespace gear::adders
