// GeAr adders (with and without correction) behind the ApproxAdder
// interface, so the metrics/benchmark machinery treats them uniformly
// with the baselines.
#pragma once

#include "adders/adder.h"
#include "core/adder.h"
#include "core/bitsliced_adder.h"
#include "core/correction.h"

namespace gear::adders {

/// Plain approximate GeAr adder.
class GearAdapter final : public ApproxAdder {
 public:
  explicit GearAdapter(core::GeArConfig cfg);
  std::string name() const override;
  int width() const override { return adder_.config().n(); }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// 64-lane bitsliced batch (pinned bit-identical to scalar add()).
  void add_batch(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out, std::size_t count) const override;
  /// Exact through sub-adder 0's span; the first speculated carry enters
  /// at layout()[1].res_lo.
  int error_free_width() const override;
  std::string family() const override { return "gear"; }
  /// "" for custom heterogeneous layouts (not registry-constructible).
  std::string spec() const override;
  int max_carry_chain() const override { return adder_.config().max_carry_chain(); }
  std::optional<core::GeArConfig> gear_equivalent() const override {
    return adder_.config();
  }
  const core::GeArAdder& gear() const { return adder_; }

 private:
  core::GeArAdder adder_;
  core::BitslicedGearAdder bitsliced_;
};

/// GeAr adder with the multi-cycle error correction applied for the
/// sub-adders enabled in `mask` (value semantics: add() returns the
/// corrected sum; cycle accounting is available via corrector()).
class GearCorrectedAdapter final : public ApproxAdder {
 public:
  GearCorrectedAdapter(core::GeArConfig cfg, std::uint64_t mask);
  std::string name() const override;
  int width() const override { return corrector_.config().n(); }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// 64-lane bitsliced batch with the adapter's correction mask applied
  /// lane-parallel (pinned bit-identical to scalar Corrector::add()).
  void add_batch(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out, std::size_t count) const override;
  bool is_exact() const override;
  /// First uncorrected speculated boundary (n+1 when all are corrected).
  int error_free_width() const override;
  std::string family() const override { return "gear+ecc"; }
  /// Canonical only for the registry-constructible shape: uniform layout
  /// with every sub-adder correction-enabled; "" otherwise.
  std::string spec() const override;
  int max_carry_chain() const override {
    return corrector_.config().max_carry_chain();
  }
  std::optional<core::GeArConfig> gear_equivalent() const override {
    return corrector_.config();
  }
  const core::Corrector& corrector() const { return corrector_; }

 private:
  core::Corrector corrector_;
  core::BitslicedGearAdder bitsliced_;
};

}  // namespace gear::adders
