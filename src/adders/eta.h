// Error-Tolerant Adders (Zhu, Goh, Yeo — ISIC'09): ETAI, ETAII, ETAIIM.
//
// ETAI splits the operands into an accurate upper part (normal addition,
// no carry-in from below) and an inaccurate lower part evaluated MSB->LSB:
// bits are XOR-summed until the first position where both operand bits are
// 1, from which point every lower sum bit is forced to 1.
//
// ETAII tiles the operands into `segment`-bit sum units, each fed by a
// carry generator spanning the previous segment — functionally
// GeAr(R=segment, P=segment).
//
// ETAIIM chains the carry generators of the top `msb_chained` segments so
// MSB sums see an exact carry computed over all lower bits.
#pragma once

#include "adders/adder.h"

namespace gear::adders {

class EtaiAdder final : public ApproxAdder {
 public:
  /// `accurate_bits` is the width of the exact upper part.
  EtaiAdder(int n, int accurate_bits);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// The MSB->LSB saturation can force even bit 0 to a wrong value
  /// (a0=b0=0 under a higher double-one), so no LSB is guaranteed.
  int error_free_width() const override {
    return accurate_ >= n_ ? n_ + 1 : 0;
  }
  std::string family() const override { return "etai"; }
  std::string spec() const override {
    return "etai:" + std::to_string(n_) + ":" + std::to_string(accurate_);
  }
  int max_carry_chain() const override { return accurate_; }
  int accurate_bits() const { return accurate_; }

 private:
  int n_, accurate_;
};

class EtaiiAdder final : public ApproxAdder {
 public:
  /// `segment` divides n.
  EtaiiAdder(int n, int segment);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// Bits below the first estimated boundary (segment 2's base, fed by a
  /// generator spanning only segment 1) are exact: 2*segment bits.
  int error_free_width() const override {
    return 2 * segment_ >= n_ ? n_ + 1 : 2 * segment_;
  }
  std::string family() const override { return "etaii"; }
  std::string spec() const override {
    return "etaii:" + std::to_string(n_) + ":" + std::to_string(segment_);
  }
  int max_carry_chain() const override { return 2 * segment_; }
  std::optional<core::GeArConfig> gear_equivalent() const override;
  int segment() const { return segment_; }

 private:
  int n_, segment_;
};

class EtaiimAdder final : public ApproxAdder {
 public:
  /// Like ETAII but the top `msb_chained` segment boundaries receive an
  /// exact carry (their generators are chained down to bit 0).
  EtaiimAdder(int n, int segment, int msb_chained);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// Conservative ETAII bound; MSB chaining only improves higher bits.
  int error_free_width() const override {
    return 2 * segment_ >= n_ ? n_ + 1 : 2 * segment_;
  }
  std::string family() const override { return "etaiim"; }
  std::string spec() const override {
    return "etaiim:" + std::to_string(n_) + ":" + std::to_string(segment_) +
           ":" + std::to_string(msb_chained_);
  }
  int max_carry_chain() const override;
  int segment() const { return segment_; }
  int msb_chained() const { return msb_chained_; }

 private:
  int n_, segment_, msb_chained_;
};

}  // namespace gear::adders
