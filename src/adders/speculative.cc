#include "adders/speculative.h"

#include "core/width.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace gear::adders {

namespace {
inline std::uint64_t low_mask(int bits) { return core::width_mask(bits); }
}  // namespace

Aca1Adder::Aca1Adder(int n, int l) : n_(n), l_(l) {
  assert(n >= 2 && n <= 63);
  assert(l >= 2 && l <= n);
}

std::string Aca1Adder::name() const {
  std::ostringstream os;
  os << "ACA-I(L=" << l_ << ")";
  return os.str();
}

std::uint64_t Aca1Adder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  std::uint64_t sum = 0;
  // Bits below l-1 come from the first window's exact sum.
  const std::uint64_t w0 = (a & low_mask(l_)) + (b & low_mask(l_));
  sum |= w0 & low_mask(l_ - 1);
  // Bit i (i >= l-1) is bit l-1 of the window sum over [i-l+1, i].
  for (int i = l_ - 1; i < n_; ++i) {
    const int lo = i - l_ + 1;
    const std::uint64_t wa = (a >> lo) & low_mask(l_);
    const std::uint64_t wb = (b >> lo) & low_mask(l_);
    const std::uint64_t w = wa + wb;
    sum |= ((w >> (l_ - 1)) & 1ULL) << i;
  }
  // Carry-out speculated from the top window.
  {
    const int lo = n_ - l_;
    const std::uint64_t w = ((a >> lo) & low_mask(l_)) + ((b >> lo) & low_mask(l_));
    sum |= ((w >> l_) & 1ULL) << n_;
  }
  return sum;
}

std::optional<core::GeArConfig> Aca1Adder::gear_equivalent() const {
  return core::GeArConfig::make(n_, 1, l_ - 1);
}

Aca2Adder::Aca2Adder(int n, int l) : n_(n), l_(l) {
  assert(n >= 2 && n <= 63);
  assert(l >= 2 && l % 2 == 0 && l <= n);
  assert(n % (l / 2) == 0);
}

std::string Aca2Adder::name() const {
  std::ostringstream os;
  os << "ACA-II(L=" << l_ << ")";
  return os.str();
}

std::uint64_t Aca2Adder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  const int r = l_ / 2;
  std::uint64_t sum = 0;
  // First window contributes all l bits.
  const std::uint64_t w0 = (a & low_mask(l_)) + (b & low_mask(l_));
  sum |= w0 & low_mask(std::min(l_, n_));
  std::uint64_t carry = (w0 >> l_) & 1ULL;
  // Each subsequent window [lo, lo+l) contributes its top r bits.
  for (int res_lo = l_; res_lo < n_; res_lo += r) {
    const int lo = res_lo - r;
    const int wlen = std::min(l_, n_ - lo);
    const std::uint64_t w =
        ((a >> lo) & low_mask(wlen)) + ((b >> lo) & low_mask(wlen));
    const int res_len = wlen - r;
    sum |= ((w >> r) & low_mask(res_len)) << res_lo;
    carry = (w >> wlen) & 1ULL;
  }
  sum |= carry << n_;
  return sum;
}

std::optional<core::GeArConfig> Aca2Adder::gear_equivalent() const {
  return core::GeArConfig::make(n_, l_ / 2, l_ / 2);
}

}  // namespace gear::adders
