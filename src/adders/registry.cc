#include "adders/registry.h"

#include <sstream>
#include <stdexcept>

#include "adders/axppa.h"
#include "adders/cell_based.h"
#include "adders/cesa.h"
#include "adders/eta.h"
#include "adders/exact.h"
#include "adders/gda.h"
#include "adders/gear_adapter.h"
#include "adders/laxa.h"
#include "adders/loa.h"
#include "adders/ofloca.h"
#include "adders/speculative.h"
#include "core/config.h"

namespace gear::adders {

namespace {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, delim)) parts.push_back(item);
  return parts;
}

int to_int(const std::string& s) {
  std::size_t pos = 0;
  const int v = std::stoi(s, &pos);
  if (pos != s.size()) throw std::invalid_argument("make_adder: bad integer '" + s + "'");
  return v;
}

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("make_adder: '" + spec + "': " + why);
}

void expect_args(const std::string& spec, const std::vector<std::string>& parts,
                 std::size_t lo, std::size_t hi) {
  if (parts.size() < lo + 1 || parts.size() > hi + 1) {
    fail(spec, "wrong number of arguments");
  }
}

core::GeArConfig parse_gear(const std::string& spec,
                            const std::vector<std::string>& parts) {
  // Relaxed geometry: the paper's own Table I uses GeAr(4,2)/(4,6) at
  // N=16, which need the MSB-clamped top sub-adder (see GeArConfig).
  auto cfg = core::GeArConfig::make_relaxed(to_int(parts[1]), to_int(parts[2]),
                                            to_int(parts[3]));
  if (!cfg) fail(spec, "invalid GeAr configuration");
  return *cfg;
}

}  // namespace

AdderPtr make_adder(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.empty()) fail(spec, "empty spec");
  const std::string& family = parts[0];

  try {
    if (family == "rca") {
      expect_args(spec, parts, 1, 1);
      return std::make_unique<RcaAdder>(to_int(parts[1]));
    }
    if (family == "cla") {
      expect_args(spec, parts, 1, 2);
      const int block = parts.size() > 2 ? to_int(parts[2]) : 4;
      return std::make_unique<ClaAdder>(to_int(parts[1]), block);
    }
    if (family == "aca1") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<Aca1Adder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "aca2") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<Aca2Adder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "etai") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<EtaiAdder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "etaii") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<EtaiiAdder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "etaiim") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<EtaiimAdder>(to_int(parts[1]), to_int(parts[2]),
                                           to_int(parts[3]));
    }
    if (family == "gda") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<GdaAdder>(to_int(parts[1]), to_int(parts[2]),
                                        to_int(parts[3]));
    }
    if (family == "gear") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<GearAdapter>(parse_gear(spec, parts));
    }
    if (family == "gear+ecc") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<GearCorrectedAdapter>(parse_gear(spec, parts),
                                                    core::Corrector::all_enabled());
    }
    if (family == "loa") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<LoaAdder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "cell") {
      expect_args(spec, parts, 3, 3);
      FaCell cell;
      const std::string& which = parts[3];
      if (which == "ama1") cell = FaCell::kAma1;
      else if (which == "ama2") cell = FaCell::kAma2;
      else if (which == "ama3") cell = FaCell::kAma3;
      else if (which == "axa2") cell = FaCell::kAxa2;
      else if (which == "tga1") cell = FaCell::kTga1;
      else if (which == "exact") cell = FaCell::kExact;
      else if (which == "axa3") cell = FaCell::kAxa3;
      else if (which == "tcaa") cell = FaCell::kTcaa;
      else if (which == "sesa1") cell = FaCell::kSesa1;
      else fail(spec, "unknown cell '" + which + "'");
      return std::make_unique<CellBasedAdder>(to_int(parts[1]), to_int(parts[2]),
                                              cell);
    }
    if (family == "ofloca") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<OflocaAdder>(to_int(parts[1]), to_int(parts[2]),
                                           to_int(parts[3]));
    }
    if (family == "laxa") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<LaxaAdder>(to_int(parts[1]), to_int(parts[2]),
                                         to_int(parts[3]));
    }
    if (family == "axppa") {
      expect_args(spec, parts, 2, 3);
      const int levels = parts.size() > 3 ? to_int(parts[3]) : 2;
      return std::make_unique<SklanskyAxPpaAdder>(to_int(parts[1]),
                                                  to_int(parts[2]), levels);
    }
    if (family == "cesa" || family == "cesa+r") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<CesaAdder>(to_int(parts[1]), to_int(parts[2]),
                                         to_int(parts[3]),
                                         /*rectify=*/family == "cesa+r");
    }
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception& e) {
    fail(spec, e.what());
  }
  fail(spec, "unknown family '" + family + "'");
}

std::vector<std::string> known_families() {
  std::vector<std::string> names;
  names.reserve(17);
  for (const auto& fam : list_families()) names.push_back(fam.prefix);
  return names;
}

std::vector<FamilyDesc> list_families() {
  // Canonical specs are pinned by the zoo round-trip suite: each must
  // parse, and the constructed adder's spec() must print it back.
  return {
      {"rca", "rca:16", "exact ripple-carry reference"},
      {"cla", "cla:16:4", "exact carry-lookahead, 4-bit blocks"},
      {"aca1", "aca1:16:4", "ACA-I speculative windows (Verma'08)"},
      {"aca2", "aca2:16:8", "ACA-II overlapping sub-adders (Kahng'12)"},
      {"etai", "etai:16:8", "ETAI saturating lower part (Zhu'09)"},
      {"etaii", "etaii:16:4", "ETAII segmented carry generators"},
      {"etaiim", "etaiim:16:4:2", "ETAIIM with chained MSB segments"},
      {"gda", "gda:16:4:4", "gracefully-degrading adder (Ye'13)"},
      {"gear", "gear:16:4:4", "GeAr approximate (Shafique'15)"},
      {"gear+ecc", "gear+ecc:16:4:4", "GeAr with full error correction"},
      {"loa", "loa:16:8", "lower-part OR adder (Gupta'13)"},
      {"cell", "cell:16:8:ama1", "approximate full-adder cell composition"},
      {"ofloca", "ofloca:16:8:4", "optimized lower-part constant-OR adder"},
      {"laxa", "laxa:16:8:1", "lower-part approximate-XOR cells (AXA3)"},
      {"axppa", "axppa:16:12:2", "Sklansky prefix truncated below bit LOW"},
      {"cesa", "cesa:16:4:4", "carry-estimating simultaneous adder"},
      {"cesa+r", "cesa+r:16:4:4", "CESA with one rectification stage"},
  };
}

}  // namespace gear::adders
