#include "adders/registry.h"

#include <sstream>
#include <stdexcept>

#include "adders/eta.h"
#include "adders/exact.h"
#include "adders/gda.h"
#include "adders/gear_adapter.h"
#include "adders/cell_based.h"
#include "adders/loa.h"
#include "adders/speculative.h"
#include "core/config.h"

namespace gear::adders {

namespace {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, delim)) parts.push_back(item);
  return parts;
}

int to_int(const std::string& s) {
  std::size_t pos = 0;
  const int v = std::stoi(s, &pos);
  if (pos != s.size()) throw std::invalid_argument("make_adder: bad integer '" + s + "'");
  return v;
}

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("make_adder: '" + spec + "': " + why);
}

void expect_args(const std::string& spec, const std::vector<std::string>& parts,
                 std::size_t lo, std::size_t hi) {
  if (parts.size() < lo + 1 || parts.size() > hi + 1) {
    fail(spec, "wrong number of arguments");
  }
}

core::GeArConfig parse_gear(const std::string& spec,
                            const std::vector<std::string>& parts) {
  // Relaxed geometry: the paper's own Table I uses GeAr(4,2)/(4,6) at
  // N=16, which need the MSB-clamped top sub-adder (see GeArConfig).
  auto cfg = core::GeArConfig::make_relaxed(to_int(parts[1]), to_int(parts[2]),
                                            to_int(parts[3]));
  if (!cfg) fail(spec, "invalid GeAr configuration");
  return *cfg;
}

}  // namespace

AdderPtr make_adder(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.empty()) fail(spec, "empty spec");
  const std::string& family = parts[0];

  try {
    if (family == "rca") {
      expect_args(spec, parts, 1, 1);
      return std::make_unique<RcaAdder>(to_int(parts[1]));
    }
    if (family == "cla") {
      expect_args(spec, parts, 1, 2);
      const int block = parts.size() > 2 ? to_int(parts[2]) : 4;
      return std::make_unique<ClaAdder>(to_int(parts[1]), block);
    }
    if (family == "aca1") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<Aca1Adder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "aca2") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<Aca2Adder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "etai") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<EtaiAdder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "etaii") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<EtaiiAdder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "etaiim") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<EtaiimAdder>(to_int(parts[1]), to_int(parts[2]),
                                           to_int(parts[3]));
    }
    if (family == "gda") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<GdaAdder>(to_int(parts[1]), to_int(parts[2]),
                                        to_int(parts[3]));
    }
    if (family == "gear") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<GearAdapter>(parse_gear(spec, parts));
    }
    if (family == "gear+ecc") {
      expect_args(spec, parts, 3, 3);
      return std::make_unique<GearCorrectedAdapter>(parse_gear(spec, parts),
                                                    core::Corrector::all_enabled());
    }
    if (family == "loa") {
      expect_args(spec, parts, 2, 2);
      return std::make_unique<LoaAdder>(to_int(parts[1]), to_int(parts[2]));
    }
    if (family == "cell") {
      expect_args(spec, parts, 3, 3);
      FaCell cell;
      const std::string& which = parts[3];
      if (which == "ama1") cell = FaCell::kAma1;
      else if (which == "ama2") cell = FaCell::kAma2;
      else if (which == "ama3") cell = FaCell::kAma3;
      else if (which == "axa2") cell = FaCell::kAxa2;
      else if (which == "tga1") cell = FaCell::kTga1;
      else if (which == "exact") cell = FaCell::kExact;
      else fail(spec, "unknown cell '" + which + "'");
      return std::make_unique<CellBasedAdder>(to_int(parts[1]), to_int(parts[2]),
                                              cell);
    }
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception& e) {
    fail(spec, e.what());
  }
  fail(spec, "unknown family '" + family + "'");
}

std::vector<std::string> known_families() {
  return {"rca",    "cla",   "aca1", "aca2", "etai",     "etaii",
          "etaiim", "gda",   "gear", "gear+ecc", "loa",  "cell"};
}

}  // namespace gear::adders
