// Exact reference adders: ripple-carry and carry-lookahead.
//
// Both compute a+b exactly; they differ in the gate-level structure the
// synthesis substrate builds for them (carry chain vs lookahead tree),
// which is what Tables I/II/IV's delay and area columns measure. The
// functional models here additionally exercise the bit-level recurrences
// so the netlist builders can be cross-checked against them.
#pragma once

#include "adders/adder.h"

namespace gear::adders {

/// N-bit ripple-carry adder (the paper's accuracy benchmark).
class RcaAdder final : public ApproxAdder {
 public:
  explicit RcaAdder(int n);
  std::string name() const override { return "RCA"; }
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  bool is_exact() const override { return true; }
  int error_free_width() const override { return n_ + 1; }
  std::string family() const override { return "rca"; }
  std::string spec() const override { return "rca:" + std::to_string(n_); }
  int max_carry_chain() const override { return n_; }

 private:
  int n_;
};

/// N-bit carry-lookahead adder with `block` wide lookahead groups,
/// rippling between groups. Functionally exact.
class ClaAdder final : public ApproxAdder {
 public:
  ClaAdder(int n, int block = 4);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  bool is_exact() const override { return true; }
  int error_free_width() const override { return n_ + 1; }
  std::string family() const override { return "cla"; }
  std::string spec() const override {
    return "cla:" + std::to_string(n_) + ":" + std::to_string(block_);
  }
  /// Lookahead shortens the effective chain to one block per level.
  int max_carry_chain() const override { return block_; }
  int block() const { return block_; }

 private:
  int n_;
  int block_;
};

}  // namespace gear::adders
