#include "adders/gear_adapter.h"

#include <algorithm>
#include <sstream>

#include "core/bitsliced_adder.h"
#include "stats/bitsliced.h"

namespace gear::adders {
namespace {

// Shared 64-lane blocking for both adapters, on the sums-only fused kernel.
// Safe when out aliases a or b at the same offset because each block is
// fully read (packed) before any of its outputs are written back.
void bitsliced_add_batch(const core::BitslicedGearAdder& bitsliced,
                         std::uint64_t correction_mask, const std::uint64_t* a,
                         const std::uint64_t* b, std::uint64_t* out,
                         std::size_t count) {
  for (std::size_t base = 0; base < count; base += stats::kBitslicedLanes) {
    const int cnt = static_cast<int>(
        std::min<std::size_t>(stats::kBitslicedLanes, count - base));
    bitsliced.add_batch(a + base, b + base, out + base, cnt, correction_mask);
  }
}

}  // namespace

GearAdapter::GearAdapter(core::GeArConfig cfg)
    : adder_(cfg), bitsliced_(std::move(cfg)) {}

std::string GearAdapter::name() const {
  std::ostringstream os;
  os << "GeAr(" << adder_.config().r() << "," << adder_.config().p() << ")";
  return os.str();
}

std::uint64_t GearAdapter::add(std::uint64_t a, std::uint64_t b) const {
  return adder_.add_value(a, b);
}

void GearAdapter::add_batch(const std::uint64_t* a, const std::uint64_t* b,
                            std::uint64_t* out, std::size_t count) const {
  bitsliced_add_batch(bitsliced_, /*correction_mask=*/0, a, b, out, count);
}

int GearAdapter::error_free_width() const {
  const auto& cfg = adder_.config();
  return cfg.is_exact() ? cfg.n() + 1 : cfg.sub(1).res_lo;
}

std::string GearAdapter::spec() const {
  const auto& cfg = adder_.config();
  if (cfg.is_custom()) return {};
  return "gear:" + std::to_string(cfg.n()) + ":" + std::to_string(cfg.r()) +
         ":" + std::to_string(cfg.p());
}

GearCorrectedAdapter::GearCorrectedAdapter(core::GeArConfig cfg, std::uint64_t mask)
    : corrector_(cfg, mask), bitsliced_(std::move(cfg)) {}

std::string GearCorrectedAdapter::name() const {
  std::ostringstream os;
  os << "GeAr(" << corrector_.config().r() << "," << corrector_.config().p()
     << ")+ecc";
  return os.str();
}

std::uint64_t GearCorrectedAdapter::add(std::uint64_t a, std::uint64_t b) const {
  return corrector_.add(a, b).sum;
}

void GearCorrectedAdapter::add_batch(const std::uint64_t* a,
                                     const std::uint64_t* b, std::uint64_t* out,
                                     std::size_t count) const {
  bitsliced_add_batch(bitsliced_, corrector_.enabled_mask(), a, b, out, count);
}

bool GearCorrectedAdapter::is_exact() const {
  // Exact when every sub-adder past the first is enabled for correction.
  const int k = corrector_.config().k();
  for (int j = 1; j < k; ++j) {
    if (!((corrector_.enabled_mask() >> j) & 1ULL)) return false;
  }
  return true;
}

int GearCorrectedAdapter::error_free_width() const {
  const auto& cfg = corrector_.config();
  for (int j = 1; j < cfg.k(); ++j) {
    if (!((corrector_.enabled_mask() >> j) & 1ULL)) return cfg.sub(j).res_lo;
  }
  return cfg.n() + 1;
}

std::string GearCorrectedAdapter::spec() const {
  if (corrector_.config().is_custom() || !is_exact()) return {};
  const auto& cfg = corrector_.config();
  return "gear+ecc:" + std::to_string(cfg.n()) + ":" + std::to_string(cfg.r()) +
         ":" + std::to_string(cfg.p());
}

}  // namespace gear::adders
