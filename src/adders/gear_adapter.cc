#include "adders/gear_adapter.h"

#include <sstream>

namespace gear::adders {

GearAdapter::GearAdapter(core::GeArConfig cfg) : adder_(std::move(cfg)) {}

std::string GearAdapter::name() const {
  std::ostringstream os;
  os << "GeAr(" << adder_.config().r() << "," << adder_.config().p() << ")";
  return os.str();
}

std::uint64_t GearAdapter::add(std::uint64_t a, std::uint64_t b) const {
  return adder_.add_value(a, b);
}

GearCorrectedAdapter::GearCorrectedAdapter(core::GeArConfig cfg, std::uint64_t mask)
    : corrector_(std::move(cfg), mask) {}

std::string GearCorrectedAdapter::name() const {
  std::ostringstream os;
  os << "GeAr(" << corrector_.config().r() << "," << corrector_.config().p()
     << ")+ecc";
  return os.str();
}

std::uint64_t GearCorrectedAdapter::add(std::uint64_t a, std::uint64_t b) const {
  return corrector_.add(a, b).sum;
}

bool GearCorrectedAdapter::is_exact() const {
  // Exact when every sub-adder past the first is enabled for correction.
  const int k = corrector_.config().k();
  for (int j = 1; j < k; ++j) {
    if (!((corrector_.enabled_mask() >> j) & 1ULL)) return false;
  }
  return true;
}

}  // namespace gear::adders
