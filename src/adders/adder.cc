#include "adders/adder.h"

#include "core/width.h"

namespace gear::adders {

std::uint64_t ApproxAdder::exact(std::uint64_t a, std::uint64_t b) const {
  const std::uint64_t m = operand_mask();
  return (a & m) + (b & m);
}

std::uint64_t ApproxAdder::operand_mask() const {
  return core::width_mask(width());
}

}  // namespace gear::adders
