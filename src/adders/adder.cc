#include "adders/adder.h"

namespace gear::adders {

std::uint64_t ApproxAdder::exact(std::uint64_t a, std::uint64_t b) const {
  const std::uint64_t m = operand_mask();
  return (a & m) + (b & m);
}

std::uint64_t ApproxAdder::operand_mask() const {
  const int n = width();
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

}  // namespace gear::adders
