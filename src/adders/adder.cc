#include "adders/adder.h"

#include "core/width.h"

namespace gear::adders {

void ApproxAdder::add_batch(const std::uint64_t* a, const std::uint64_t* b,
                            std::uint64_t* out, std::size_t count) const {
  for (std::size_t i = 0; i < count; ++i) out[i] = add(a[i], b[i]);
}

std::uint64_t ApproxAdder::exact(std::uint64_t a, std::uint64_t b) const {
  const std::uint64_t m = operand_mask();
  return (a & m) + (b & m);
}

std::uint64_t ApproxAdder::operand_mask() const {
  return core::width_mask(width());
}

}  // namespace gear::adders
