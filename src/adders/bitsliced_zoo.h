// Shared plane-level helpers for the zoo families' bitsliced add_batch
// overrides (OFLOCA / LAXA / SklanskyAxPPA / CESA — DESIGN.md §5k).
//
// Each family packs a 64-lane block of operand pairs into generate /
// propagate bit planes (stats::pack_gp), runs its carry structure as
// plain bitwise recurrences over whole lane words, and transposes the
// sum planes back into lane values. Dead lanes (index >= the block's
// count) may hold garbage inside the plane math — constant-one planes
// and inverted propagates set their bits — but never escape: the closing
// memcpy copies exactly `count` lane rows.
//
// Alias safety (out == a and/or out == b at the same offset) holds for
// every kernel built on these helpers because a block's operands are
// fully packed before any of its outputs are written back.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "stats/bitsliced.h"

namespace gear::adders::bitslice {

/// Rippled sum planes over [0, len): srows[i] = p[i] ^ c_i with
/// c_0 = cin, c_{i+1} = g[i] | (p[i] & c_i); returns the carry-out plane.
inline std::uint64_t ripple(const std::uint64_t* g, const std::uint64_t* p,
                            int len, std::uint64_t cin, std::uint64_t* srows) {
  std::uint64_t c = cin;
  for (int i = 0; i < len; ++i) {
    srows[i] = p[i] ^ c;
    c = g[i] | (p[i] & c);
  }
  return c;
}

/// Carry-only ripple: the carry-out plane of `len` positions fed `cin`.
inline std::uint64_t ripple_carry(const std::uint64_t* g,
                                  const std::uint64_t* p, int len,
                                  std::uint64_t cin) {
  std::uint64_t c = cin;
  for (int i = 0; i < len; ++i) c = g[i] | (p[i] & c);
  return c;
}

/// Zeroes the planes above the top sum plane (plane n, or plane 63 at
/// n == 64 where the carry-out is dropped) so every unpacked lane reads
/// only its result bits.
inline void clear_high_planes(std::uint64_t rows[64], int n) {
  for (int pl = (n < 64 ? n + 1 : 64); pl < 64; ++pl) rows[pl] = 0;
}

/// Runs `kernel(a, b, out, count <= 64)` over successive 64-lane blocks.
template <typename Kernel>
void for_each_lane_block(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out, std::size_t count,
                         Kernel&& kernel) {
  for (std::size_t base = 0; base < count; base += stats::kBitslicedLanes) {
    const int cnt = static_cast<int>(
        std::min<std::size_t>(stats::kBitslicedLanes, count - base));
    kernel(a + base, b + base, out + base, cnt);
  }
}

}  // namespace gear::adders::bitslice
