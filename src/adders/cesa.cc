#include "adders/cesa.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "adders/bitsliced_zoo.h"
#include "core/width.h"
#include "stats/bitsliced.h"

namespace gear::adders {

CesaAdder::CesaAdder(int n, int b, int e, bool rectify)
    : n_(n), block_(b), est_(e), rectify_(rectify) {
  const char* fam = rectify ? "cesa+r" : "cesa";
  if (n < 2 || n > 64) {
    throw std::invalid_argument(std::string(fam) +
                                ": operand width must satisfy 2 <= n <= 64 (got n=" +
                                std::to_string(n) + ")");
  }
  if (b < 1 || b >= n) {
    throw std::invalid_argument(std::string(fam) +
                                ": block width must satisfy 1 <= b < n (got b=" +
                                std::to_string(b) + ", n=" + std::to_string(n) + ")");
  }
  if (e < 1 || e > n) {
    throw std::invalid_argument(std::string(fam) +
                                ": estimate lookback must satisfy 1 <= e <= n (got e=" +
                                std::to_string(e) + ", n=" + std::to_string(n) + ")");
  }
}

std::string CesaAdder::name() const {
  std::ostringstream os;
  os << "CESA" << (rectify_ ? "+R" : "") << "(b=" << block_ << ",e=" << est_
     << ")";
  return os.str();
}

std::string CesaAdder::spec() const {
  return std::string(rectify_ ? "cesa+r" : "cesa") + ":" + std::to_string(n_) +
         ":" + std::to_string(block_) + ":" + std::to_string(est_);
}

int CesaAdder::error_free_width() const {
  // Smallest block base k*b with an incomplete (possibly wrong) carry:
  // plain needs k*b > e; rectification chains one stage-1 block, pushing
  // the first vulnerable boundary one block further.
  const int k = est_ / block_ + (rectify_ ? 2 : 1);
  const long long first_err = static_cast<long long>(k) * block_;
  return first_err >= n_ ? n_ + 1 : static_cast<int>(first_err);
}

int CesaAdder::max_carry_chain() const {
  const int stage1 = std::min(n_, est_ + block_);
  return rectify_ ? std::min(n_, est_ + 2 * block_) : stage1;
}

std::optional<core::GeArConfig> CesaAdder::gear_equivalent() const {
  if (rectify_ || n_ > 63 || est_ % block_ != 0) return std::nullopt;
  return core::GeArConfig::make_relaxed(n_, block_, est_);
}

std::uint64_t CesaAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  std::uint64_t out = 0;
  std::uint64_t prev_cout = 0;  // stage-1 carry-out of the previous block
  for (int lo = 0, k = 0; lo < n_; lo += block_, ++k) {
    const int len = std::min(block_, n_ - lo);
    const std::uint64_t bm = core::width_mask(len);
    const std::uint64_t ak = (a >> lo) & bm;
    const std::uint64_t bk = (b >> lo) & bm;
    std::uint64_t est = 0;
    if (k > 0) {
      // Estimated carry-in: generate of the e-bit window below `lo`.
      const int ws = std::max(0, lo - est_);
      const std::uint64_t wm = core::width_mask(lo - ws);
      est = (((a >> ws) & wm) + ((b >> ws) & wm)) >> (lo - ws);
    }
    const std::uint64_t s1 = ak + bk + est;
    const std::uint64_t s = rectify_ ? ak + bk + prev_cout : s1;
    prev_cout = s1 >> len;
    out |= (s & bm) << lo;
    if (lo + len >= n_ && n_ < 64) out |= (s >> len) << n_;
  }
  return out;
}

void CesaAdder::add_batch(const std::uint64_t* a, const std::uint64_t* b,
                          std::uint64_t* out, std::size_t count) const {
  bitslice::for_each_lane_block(
      a, b, out, count,
      [this](const std::uint64_t* la, const std::uint64_t* lb,
             std::uint64_t* lout, int cnt) {
        std::uint64_t rows_g[64], rows_p[64];
        const std::uint64_t* g = rows_g;
        const std::uint64_t* p =
            stats::pack_gp(la, lb, cnt, n_, rows_g, rows_p);
        std::uint64_t rows[64];
        bitslice::clear_high_planes(rows, n_);
        std::uint64_t prev_cout = 0;
        std::uint64_t top_cout = 0;
        for (int lo = 0, k = 0; lo < n_; lo += block_, ++k) {
          const int len = std::min(block_, n_ - lo);
          std::uint64_t est = 0;
          if (k > 0) {
            const int ws = std::max(0, lo - est_);
            est = bitslice::ripple_carry(g + ws, p + ws, lo - ws, 0);
          }
          if (rectify_) {
            const std::uint64_t cin = prev_cout;
            prev_cout = bitslice::ripple_carry(g + lo, p + lo, len, est);
            top_cout = bitslice::ripple(g + lo, p + lo, len, cin, rows + lo);
          } else {
            top_cout = bitslice::ripple(g + lo, p + lo, len, est, rows + lo);
            prev_cout = top_cout;
          }
        }
        if (n_ < 64) rows[n_] = top_cout;
        stats::transpose64(rows);
        std::memcpy(lout, rows, static_cast<std::size_t>(cnt) * sizeof(std::uint64_t));
      });
}

}  // namespace gear::adders
