#include "adders/exact.h"

#include <cassert>
#include <sstream>

namespace gear::adders {

RcaAdder::RcaAdder(int n) : n_(n) { assert(n >= 1 && n <= 63); }

std::uint64_t RcaAdder::add(std::uint64_t a, std::uint64_t b) const {
  // Explicit full-adder recurrence (rather than '+') so this model is a
  // genuine reference for the gate-level ripple builder.
  a &= operand_mask();
  b &= operand_mask();
  std::uint64_t sum = 0;
  std::uint64_t carry = 0;
  for (int i = 0; i < n_; ++i) {
    const std::uint64_t ai = (a >> i) & 1ULL;
    const std::uint64_t bi = (b >> i) & 1ULL;
    sum |= (ai ^ bi ^ carry) << i;
    carry = (ai & bi) | (carry & (ai ^ bi));
  }
  sum |= carry << n_;
  return sum;
}

ClaAdder::ClaAdder(int n, int block) : n_(n), block_(block) {
  assert(n >= 1 && n <= 63);
  assert(block >= 1 && block <= n);
}

std::string ClaAdder::name() const {
  std::ostringstream os;
  os << "CLA(B=" << block_ << ")";
  return os.str();
}

std::uint64_t ClaAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  const std::uint64_t g = a & b;
  const std::uint64_t p = a ^ b;
  std::uint64_t sum = 0;
  std::uint64_t block_cin = 0;
  for (int lo = 0; lo < n_; lo += block_) {
    const int len = std::min(block_, n_ - lo);
    // Lookahead within the block: c[i+1] = g[i] | p[i]c[i], unrolled.
    std::uint64_t c = block_cin;
    for (int i = 0; i < len; ++i) {
      const std::uint64_t gi = (g >> (lo + i)) & 1ULL;
      const std::uint64_t pi = (p >> (lo + i)) & 1ULL;
      sum |= (pi ^ c) << (lo + i);
      c = gi | (pi & c);
    }
    block_cin = c;
  }
  sum |= block_cin << n_;
  return sum;
}

}  // namespace gear::adders
