#include "adders/eta.h"

#include "core/width.h"

#include <cassert>
#include <sstream>

namespace gear::adders {

namespace {
inline std::uint64_t low_mask(int bits) { return core::width_mask(bits); }
}  // namespace

EtaiAdder::EtaiAdder(int n, int accurate_bits) : n_(n), accurate_(accurate_bits) {
  assert(n >= 2 && n <= 63);
  assert(accurate_bits >= 1 && accurate_bits <= n);
}

std::string EtaiAdder::name() const {
  std::ostringstream os;
  os << "ETAI(acc=" << accurate_ << ")";
  return os.str();
}

std::uint64_t EtaiAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  const int inacc = n_ - accurate_;
  // Accurate upper part: normal addition with no carry-in from below.
  const std::uint64_t ua = a >> inacc;
  const std::uint64_t ub = b >> inacc;
  std::uint64_t sum = (ua + ub) << inacc;
  // Inaccurate lower part, MSB->LSB.
  bool saturate = false;
  for (int i = inacc - 1; i >= 0; --i) {
    const bool ai = (a >> i) & 1ULL;
    const bool bi = (b >> i) & 1ULL;
    if (saturate) {
      sum |= 1ULL << i;
    } else if (ai && bi) {
      saturate = true;
      sum |= 1ULL << i;
    } else if (ai != bi) {
      sum |= 1ULL << i;
    }
  }
  return sum;
}

EtaiiAdder::EtaiiAdder(int n, int segment) : n_(n), segment_(segment) {
  assert(n >= 2 && n <= 63);
  assert(segment >= 1 && segment < n);
  assert(n % segment == 0);
}

std::string EtaiiAdder::name() const {
  std::ostringstream os;
  os << "ETAII(X=" << segment_ << ")";
  return os.str();
}

std::uint64_t EtaiiAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  std::uint64_t sum = 0;
  std::uint64_t top_carry = 0;
  for (int lo = 0; lo < n_; lo += segment_) {
    // Carry generator: exact carry over the previous segment with cin 0.
    std::uint64_t cin = 0;
    if (lo > 0) {
      const std::uint64_t pa = (a >> (lo - segment_)) & low_mask(segment_);
      const std::uint64_t pb = (b >> (lo - segment_)) & low_mask(segment_);
      cin = ((pa + pb) >> segment_) & 1ULL;
    }
    const std::uint64_t sa = (a >> lo) & low_mask(segment_);
    const std::uint64_t sb = (b >> lo) & low_mask(segment_);
    const std::uint64_t s = sa + sb + cin;
    sum |= (s & low_mask(segment_)) << lo;
    top_carry = (s >> segment_) & 1ULL;
  }
  sum |= top_carry << n_;
  return sum;
}

std::optional<core::GeArConfig> EtaiiAdder::gear_equivalent() const {
  return core::GeArConfig::make(n_, segment_, segment_);
}

EtaiimAdder::EtaiimAdder(int n, int segment, int msb_chained)
    : n_(n), segment_(segment), msb_chained_(msb_chained) {
  assert(n >= 2 && n <= 63);
  assert(segment >= 1 && segment < n);
  assert(n % segment == 0);
  assert(msb_chained >= 0 && msb_chained <= n / segment);
}

std::string EtaiimAdder::name() const {
  std::ostringstream os;
  os << "ETAIIM(X=" << segment_ << ",M=" << msb_chained_ << ")";
  return os.str();
}

std::uint64_t EtaiimAdder::add(std::uint64_t a, std::uint64_t b) const {
  a &= operand_mask();
  b &= operand_mask();
  const int segments = n_ / segment_;
  std::uint64_t sum = 0;
  std::uint64_t top_carry = 0;
  for (int s = 0; s < segments; ++s) {
    const int lo = s * segment_;
    std::uint64_t cin = 0;
    if (s >= segments - msb_chained_) {
      // Chained generators: exact carry over all lower bits.
      cin = (((a & low_mask(lo)) + (b & low_mask(lo))) >> lo) & 1ULL;
    } else if (s > 0) {
      const std::uint64_t pa = (a >> (lo - segment_)) & low_mask(segment_);
      const std::uint64_t pb = (b >> (lo - segment_)) & low_mask(segment_);
      cin = ((pa + pb) >> segment_) & 1ULL;
    }
    const std::uint64_t sa = (a >> lo) & low_mask(segment_);
    const std::uint64_t sb = (b >> lo) & low_mask(segment_);
    const std::uint64_t x = sa + sb + cin;
    sum |= (x & low_mask(segment_)) << lo;
    top_carry = (x >> segment_) & 1ULL;
  }
  sum |= top_carry << n_;
  return sum;
}

int EtaiimAdder::max_carry_chain() const {
  // The deepest chained MSB generator spans all bits below the top
  // `msb_chained` segments, plus that segment itself.
  if (msb_chained_ == 0) return 2 * segment_;
  const int chained_lo = n_ - msb_chained_ * segment_;
  return chained_lo + segment_;
}

}  // namespace gear::adders
