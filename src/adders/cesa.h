// CESA — carry-estimating simultaneous adder (CEA lineage: all blocks add
// in parallel, each with an estimated carry-in), with an optional
// single-stage rectification pass ("cesa+r").
//
// The operands tile into aligned `b`-bit blocks. Stage 1 gives block k
// (base bit k*b) the estimated carry
//
//   c_hat_k = carry-out of the exact sum of window [max(0, k*b - e), k*b)
//             fed zero carry-in   (the window's generate),
//
// i.e. an e-bit lookback. Plain CESA returns the stage-1 sums; for
// boundaries k*b <= e the window is complete, so those carries are exact.
// When e is a multiple of b the block/window geometry coincides with a
// relaxed GeAr(R=b, P=e) layout — gear_equivalent() reports exactly that
// case, and the oracle suite verifies the claim differentially.
//
// Rectification (+r) re-adds each block with the *stage-1 carry-out of
// block k-1* in place of c_hat_k: one extra block delay buys one extra
// block of exact lookback (the carry now chains through block k-1's full
// window). See DESIGN.md §5k for the induced error process.
#pragma once

#include "adders/adder.h"

namespace gear::adders {

class CesaAdder final : public ApproxAdder {
 public:
  /// 2 <= n <= 64, 1 <= b < n, 1 <= e <= n. Throws std::invalid_argument
  /// with an actionable message otherwise.
  CesaAdder(int n, int b, int e, bool rectify);
  std::string name() const override;
  int width() const override { return n_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override;
  /// Genuine bitsliced 64-lane kernel (per-block window-generate planes +
  /// block ripple); pinned bit-identical to scalar add().
  void add_batch(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out, std::size_t count) const override;
  /// First boundary whose estimate can be wrong: k*b > e (plain), one
  /// block later under rectification. Tight.
  int error_free_width() const override;
  bool is_exact() const override { return error_free_width() > n_; }
  std::string family() const override { return rectify_ ? "cesa+r" : "cesa"; }
  std::string spec() const override;
  /// Stage 1 ripples e window bits + b block bits; rectification replaces
  /// the estimate with a chained block (e + 2b total).
  int max_carry_chain() const override;
  /// Plain CESA with e % b == 0 is block-for-block a relaxed GeAr(b, e)
  /// (boundaries k*b <= e are exact in both). n <= 63 only — GeArConfig
  /// does not model 64-bit operands.
  std::optional<core::GeArConfig> gear_equivalent() const override;
  int block() const { return block_; }
  int est() const { return est_; }
  bool rectify() const { return rectify_; }

 private:
  int n_, block_, est_;
  bool rectify_;
};

}  // namespace gear::adders
