// BitVec-backed GeAr adder for operand widths beyond 63 bits.
//
// GeArAdder uses std::uint64_t for speed (covering every width the paper
// evaluates); WideGeArAdder implements identical semantics over BitVec so
// the model scales to arbitrary widths (e.g. 128-bit datapath studies).
// Geometry comes from WideGeArLayout, mirroring GeArConfig without the
// 63-bit cap. Cross-checked against GeArAdder for N <= 63 in the tests.
#pragma once

#include <optional>
#include <vector>

#include "core/bitvec.h"
#include "core/config.h"

namespace gear::core {

/// Sub-adder geometry for arbitrary widths (same rules as GeArConfig;
/// relaxed top sub-adder allowed).
class WideGeArLayout {
 public:
  static std::optional<WideGeArLayout> make(int n, int r, int p);

  int n() const { return n_; }
  int r() const { return r_; }
  int p() const { return p_; }
  int k() const { return static_cast<int>(subs_.size()); }
  const std::vector<SubAdderLayout>& subs() const { return subs_; }

 private:
  WideGeArLayout(int n, int r, int p);
  int n_, r_, p_;
  std::vector<SubAdderLayout> subs_;
};

struct WideAddResult {
  BitVec sum;                     ///< N+1 bits
  std::vector<bool> detect;       ///< per sub-adder (index 0 always false)
  bool error_detected() const {
    for (bool d : detect)
      if (d) return true;
    return false;
  }
};

class WideGeArAdder {
 public:
  explicit WideGeArAdder(WideGeArLayout layout);

  const WideGeArLayout& layout() const { return layout_; }

  /// Approximate addition; operands must have width N.
  WideAddResult add(const BitVec& a, const BitVec& b) const;

  /// Exact N+1-bit reference.
  BitVec exact(const BitVec& a, const BitVec& b) const;

 private:
  WideGeArLayout layout_;
};

}  // namespace gear::core
