// Synthesizable Verilog generation for GeAr configurations.
//
// The paper releases RTL for GeAr and the compared adders; this module
// regenerates equivalent RTL from a GeArConfig. Two flavours:
//  * combinational approximate adder with per-sub-adder error flags, and
//  * a sequential error-correcting wrapper (one corrected sub-adder per
//    cycle, lowest-first, gated by an error-control select input).
//
// Output is plain Verilog-2001 using behavioural '+' for sub-adder cores
// (synthesis tools infer carry chains), matching the paper's observation
// that GeAr is agnostic to the sub-adder implementation.
#pragma once

#include <string>

#include "core/config.h"

namespace gear::core {

/// Legal Verilog identifier for a configuration, e.g. "gear_n16_r4_p4".
std::string verilog_module_name(const GeArConfig& cfg);

/// Combinational GeAr adder:
///   module <name>(input [N-1:0] a, b, output [N:0] sum,
///                 output [K-1:0] err);
/// err[j] is the detect flag of sub-adder j (err[0] is constant 0).
std::string generate_verilog(const GeArConfig& cfg);

/// Sequential error-correcting GeAr:
///   module <name>_ecc(input clk, rst, start, input [N-1:0] a, b,
///                     input [K-1:0] correct_en,
///                     output reg [N:0] sum, output reg done);
/// Performs the approximate add in the first cycle and one correction per
/// subsequent cycle while any enabled sub-adder flags an error.
std::string generate_verilog_with_correction(const GeArConfig& cfg);

/// Self-checking Verilog testbench comparing the generated module against
/// a behavioural N-bit '+' on `vectors` random vectors (fixed LFSR seed).
std::string generate_verilog_testbench(const GeArConfig& cfg, int vectors);

}  // namespace gear::core
