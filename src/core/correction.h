// Configurable error detection and correction (paper Section 3.3).
//
// When a sub-adder's detect flag fires (prediction window all-propagate AND
// previous sub-adder carry-out set), the correction path rewrites that
// sub-adder's prediction-window inputs: both operands' prediction bits are
// replaced by their OR and the window LSBs of both operands are forced to
// 1. Because detection only fires when the window was fully propagating,
// the forced LSB generates a carry that ripples through the (now all-ones)
// prediction bits and delivers the missing carry-in to the result region.
// One erroneous sub-adder is corrected per extra cycle, lowest first; with
// k sub-adders at most k-1 corrections (k cycles total) are needed.
//
// The error-control select mask makes correction configurable: only
// sub-adders whose mask bit is set are ever corrected, letting a system
// trade residual error for cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "core/adder.h"
#include "core/config.h"

namespace gear::core {

/// Result of an approximate add followed by (partial) error correction.
struct CorrectionResult {
  std::uint64_t sum = 0;        ///< final sum (N+1 bits incl. carry-out)
  int cycles = 1;               ///< 1 base cycle + 1 per corrected sub-adder
  std::vector<int> corrected;   ///< sub-adder indices corrected, in order
  bool exact = false;           ///< final sum equals the exact sum
  /// First-pass detect flags (bit j = sub-adder j's detect condition
  /// before any correction), independent of the enable mask — what the
  /// hardware error bus "err" shows, and what a watchdog observes.
  std::uint32_t detect_mask = 0;
  /// True when a per-op correction budget ran out with enabled detects
  /// still pending.
  bool budget_exhausted = false;
};

/// Error-correction engine for a GeAr configuration.
class Corrector {
 public:
  /// `enabled_mask` bit j enables correction of sub-adder j (bit 0 is the
  /// always-exact first sub-adder and is ignored). Pass all_enabled() for
  /// full accuracy recovery.
  Corrector(GeArConfig config, std::uint64_t enabled_mask);

  static std::uint64_t all_enabled() { return ~0ULL; }

  const GeArConfig& config() const { return config_; }
  std::uint64_t enabled_mask() const { return enabled_mask_; }

  /// Functional fault injected into the detection network: sub-adder
  /// `sub_adder`'s detect signal reads `forced_value` instead of its
  /// computed value (a stuck flag line, or — applied for a single op — a
  /// transient upset of the detect logic). `sub_adder < 0` disables.
  struct DetectFault {
    int sub_adder = -1;
    bool forced_value = false;

    bool active() const { return sub_adder >= 0; }
  };

  /// Runs the multi-cycle detect/correct loop.
  CorrectionResult add(std::uint64_t a, std::uint64_t b) const;

  /// add() with an injected detection fault and/or a per-op correction
  /// budget: at most `max_corrections` corrections are applied when
  /// `max_corrections >= 0` (the rest stay uncorrected and the result is
  /// marked budget_exhausted).
  CorrectionResult add(std::uint64_t a, std::uint64_t b, const DetectFault& fault,
                       int max_corrections = -1) const;

  /// Upper bound on cycles for this configuration and mask.
  int max_cycles() const;

  /// Worst-case cycles with every sub-adder corrected (the exact-add
  /// fallback latency of the safe mode), independent of the mask.
  int worst_case_cycles() const { return config_.k(); }

 private:
  GeArConfig config_;
  std::uint64_t enabled_mask_;
  std::uint64_t operand_mask_;
};

}  // namespace gear::core
