#include "core/correction.h"

#include <bit>
#include <cassert>

#include "core/width.h"

namespace gear::core {

namespace {
/// Mutable per-sub-adder evaluation state for the correction loop.
struct Window {
  std::uint64_t a = 0, b = 0;  // effective window inputs
  std::uint64_t sum = 0;
  bool carry_out = false;
  bool all_propagate = false;

  void eval(int wlen, int plen) {
    sum = a + b;
    carry_out = (sum >> wlen) & 1ULL;
    const std::uint64_t pmask = width_mask(plen);
    all_propagate = (((a ^ b) & pmask) == pmask);
  }
};
}  // namespace

Corrector::Corrector(GeArConfig config, std::uint64_t enabled_mask)
    : config_(std::move(config)),
      enabled_mask_(enabled_mask),
      operand_mask_(width_mask(config_.n())) {}

CorrectionResult Corrector::add(std::uint64_t a, std::uint64_t b) const {
  return add(a, b, DetectFault{});
}

CorrectionResult Corrector::add(std::uint64_t a, std::uint64_t b,
                                const DetectFault& fault,
                                int max_corrections) const {
  a &= operand_mask_;
  b &= operand_mask_;
  const auto& layout = config_.layout();
  const int k = config_.k();

  std::vector<Window> win(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    const auto& s = layout[static_cast<std::size_t>(j)];
    const std::uint64_t wmask = width_mask(s.window_len());
    auto& w = win[static_cast<std::size_t>(j)];
    w.a = (a >> s.win_lo) & wmask;
    w.b = (b >> s.win_lo) & wmask;
    w.eval(s.window_len(), s.prediction_len());
  }

  // The (possibly faulted) detect signal of sub-adder j on the current
  // window state — the same signal the hardware's "err" bus carries.
  auto detect_of = [&](int j) {
    if (fault.active() && j == fault.sub_adder) return fault.forced_value;
    return win[static_cast<std::size_t>(j)].all_propagate &&
           win[static_cast<std::size_t>(j - 1)].carry_out;
  };

  CorrectionResult out;
  for (int j = 1; j < k; ++j) {
    if (detect_of(j)) out.detect_mask |= 1U << j;
  }

  std::vector<bool> was_corrected(static_cast<std::size_t>(k), false);

  // One correction per cycle, lowest erroneous enabled sub-adder first.
  // Terminates: each sub-adder is corrected at most once.
  for (;;) {
    int target = -1;
    for (int j = 1; j < k; ++j) {
      const bool enabled = (enabled_mask_ >> j) & 1ULL;
      if (detect_of(j) && enabled && !was_corrected[static_cast<std::size_t>(j)]) {
        target = j;
        break;
      }
    }
    if (target < 0) break;
    if (max_corrections >= 0 &&
        static_cast<int>(out.corrected.size()) >= max_corrections) {
      out.budget_exhausted = true;
      break;
    }

    const auto& s = layout[static_cast<std::size_t>(target)];
    auto& w = win[static_cast<std::size_t>(target)];
    const std::uint64_t pmask = width_mask(s.prediction_len());
    const std::uint64_t merged = (w.a | w.b) & pmask;
    w.a = (w.a & ~pmask) | merged | 1ULL;
    w.b = (w.b & ~pmask) | merged | 1ULL;
    w.eval(s.window_len(), s.prediction_len());
    was_corrected[static_cast<std::size_t>(target)] = true;
    out.corrected.push_back(target);
    ++out.cycles;
  }

  std::uint64_t sum = 0;
  for (int j = 0; j < k; ++j) {
    const auto& s = layout[static_cast<std::size_t>(j)];
    const int rel = s.res_lo - s.win_lo;
    sum |= ((win[static_cast<std::size_t>(j)].sum >> rel) & width_mask(s.result_len()))
           << s.res_lo;
  }
  sum |= static_cast<std::uint64_t>(win[static_cast<std::size_t>(k - 1)].carry_out)
         << config_.n();

  out.sum = sum;
  out.exact = (sum == a + b);
  return out;
}

int Corrector::max_cycles() const {
  const int k = config_.k();
  int correctable = 0;
  for (int j = 1; j < k; ++j)
    if ((enabled_mask_ >> j) & 1ULL) ++correctable;
  return 1 + correctable;
}

}  // namespace gear::core
