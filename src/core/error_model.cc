#include "core/error_model.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "core/bitsliced_adder.h"
#include "core/width.h"
#include "obs/metrics.h"
#include "stats/bitsliced.h"

namespace gear::core {

namespace {

/// Probability of the paper's per-sub-adder error event union for
/// sub-adder j, with generate positions restricted to be >= `frontier`
/// (used by joint terms: positions below the frontier are claimed as
/// propagating by a lower sub-adder's event). The atomic event with
/// generate at g needs propagates at (g, win_lo) plus the whole prediction
/// window: Eq. 5's rho[Gr] * rho[Pr]^(L-m).
double event_union_prob(const SubAdderLayout& s, int r, int frontier) {
  const int hi = s.win_lo - 1;
  int lo = std::max(s.win_lo - r, 0);
  lo = std::max(lo, frontier);
  if (lo > hi) return 0.0;
  const int plen = s.prediction_len();
  double acc = 0.0;
  for (int g = lo; g <= hi; ++g) {
    acc += kGenProb * std::pow(kPropProb, (hi - g) + plen);
  }
  return acc;
}

/// Largest lookback distance d for which sub-adder j-d's prediction window
/// can overlap sub-adder j's generate region. Computed from the actual
/// layout so relaxed top windows are handled.
///
/// Overlap condition audit: membership of j-d in an inclusion-exclusion
/// subset restricts j's generate positions to >= frontier = res_lo(j-d)
/// (event_union_prob). That restriction changes the union probability iff
/// the frontier cuts into j's generate region [max(win_lo(j) - R, 0),
/// win_lo(j) - 1], i.e. iff res_lo(j-d) > max(win_lo(j) - R, 0); equality
/// leaves the region intact, so strict `>` is correct, not `>=`. The
/// max(.., 0) clamp may be dropped because res_lo >= 1 for every j >= 1,
/// which makes the comparison vacuously true whenever win_lo(j) - R < 0.
/// Pinned by ErrorModel.ThreeWayDifferentialRandomConfigs, which would
/// diverge from the subset enumeration (it uses the exact frontier with no
/// span cap) if the span were off by one.
int constraint_span(const GeArConfig& cfg) {
  const int k = cfg.k();
  int span = 1;
  for (int j = 2; j < k; ++j) {
    for (int d = 1; d < j; ++d) {
      if (cfg.sub(j - d).res_lo > cfg.sub(j).win_lo - cfg.r()) {
        span = std::max(span, d);
      }
    }
  }
  return span;
}

}  // namespace

double paper_error_probability_first_order(const GeArConfig& cfg) {
  double acc = 0.0;
  for (int j = 1; j < cfg.k(); ++j) {
    // For heterogeneous layouts the "previous R bits" generate region is
    // the preceding result region's width.
    const int gen_width =
        cfg.is_custom() ? cfg.sub(j - 1).result_len() : cfg.r();
    acc += event_union_prob(cfg.sub(j), gen_width, /*frontier=*/-1);
  }
  return acc;
}

double paper_error_probability(const GeArConfig& cfg) {
  const int k = cfg.k();
  if (k <= 1) return 0.0;
  // The inclusion-exclusion DP below assumes the uniform-R event
  // geometry; for heterogeneous layouts use the exact carry DP, which is
  // provably equal on the uniform space (see PaperIeEqualsExactDp tests).
  // Which path ran is observable (deterministic channel: a pure function
  // of the configs evaluated) so sweeps can audit that uniform-segment
  // customs canonicalize onto the IE path and non-uniform ones take the
  // DP — pinned by Hetero.ExactDpPathTakenForNonUniformOnly.
  if (cfg.is_custom()) {
    GEAR_OBS_COUNT("error_model/paper_exact_dp", 1);
    return exact_error_probability(cfg);
  }
  GEAR_OBS_COUNT("error_model/paper_ie", 1);

  // Inclusion-exclusion over subsets S of sub-adders {1..k-1}:
  //   P(union) = 1 - sum_S prod_{j in S} (-f_j(S))
  // where f_j depends only on the distance to the nearest lower member of
  // S (its prediction window caps j's generate range). A linear DP over
  // sub-adders with state = that distance evaluates the sum exactly.
  const int span = constraint_span(cfg);
  const int kNone = span + 1;  // "no constraining member in range"

  std::vector<double> dp(static_cast<std::size_t>(span) + 2, 0.0);
  dp[static_cast<std::size_t>(kNone)] = 1.0;

  for (int j = 1; j < k; ++j) {
    std::vector<double> nxt(dp.size(), 0.0);
    for (int d = 1; d <= kNone; ++d) {
      const double w = dp[static_cast<std::size_t>(d)];
      if (w == 0.0) continue;
      // j not in S: nearest member recedes by one.
      const int nd = std::min(d + 1, kNone);
      nxt[static_cast<std::size_t>(nd)] += w;
      // j in S: generate range capped at the nearest member's res_lo.
      const int frontier =
          (d <= span && j - d >= 1) ? cfg.sub(j - d).res_lo : -1;
      const double fj = event_union_prob(cfg.sub(j), cfg.r(), frontier);
      nxt[1] += w * (-fj);
    }
    dp = nxt;
  }

  double total = 0.0;
  for (double w : dp) total += w;
  return 1.0 - total;
}

double paper_error_probability_subsets(const GeArConfig& cfg) {
  const int k = cfg.k();
  if (k <= 1) return 0.0;
  if (k - 1 > 21) throw std::invalid_argument("paper_error_probability_subsets: k too large");

  const std::uint64_t limit = 1ULL << (k - 1);
  double result = 0.0;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    double prod = 1.0;
    int members = 0;
    int frontier = -1;
    for (int j = 1; j < k && prod != 0.0; ++j) {
      if (!((mask >> (j - 1)) & 1ULL)) continue;
      ++members;
      prod *= event_union_prob(cfg.sub(j), cfg.r(), frontier);
      frontier = cfg.sub(j).res_lo;
    }
    result += ((members % 2) == 1 ? 1.0 : -1.0) * prod;
  }
  return result;
}

namespace {

/// Prediction window of sub-adder j >= 1: its error event E_j is "all of
/// [lo, resolve) propagates AND the true carry into `lo` is 1", checked
/// when the scan reaches bit `resolve` (= res_lo(j)).
struct PredictionWindow {
  int lo = 0;
  int resolve = 0;
};

std::vector<PredictionWindow> prediction_windows(const GeArConfig& cfg) {
  std::vector<PredictionWindow> wins;
  for (int j = 1; j < cfg.k(); ++j) {
    wins.push_back({cfg.sub(j).win_lo, cfg.sub(j).res_lo});
  }
  // The config geometry guarantees lo non-decreasing and resolve strictly
  // increasing — the FIFO discipline both DPs below rely on.
  return wins;
}

}  // namespace

double exact_error_probability(const GeArConfig& cfg) {
  const int k = cfg.k();
  if (k <= 1) return 0.0;
  const auto wins = prediction_windows(cfg);

  // Collapsed-state DP (DESIGN.md §5e). A window is alive at its
  // resolution iff every bit since it opened propagated AND the carry at
  // its opening was 1. Any non-propagate bit kills every open window at
  // once and freezes the carry until the next non-propagate, so the full
  // per-window alive mask collapses to two integers:
  //   c — the running carry,
  //   f — how many of the open windows opened after the last
  //       non-propagate bit (those are exactly the ones alive when c==1,
  //       and they are always the f newest).
  // The window resolving at bit t is the oldest open one (FIFO), so it is
  // alive iff c == 1 and f == open_count. dp[f][c] holds the mass of the
  // error-free trajectories; alive-at-resolution mass is drained into
  // `err` and the survivors continue. O(N * k) total.
  std::vector<std::array<double, 2>> dp(wins.size() + 1, {0.0, 0.0});
  dp[0][0] = 1.0;  // carry 0, no fresh windows
  std::size_t next_open = 0, next_close = 0;
  int oc = 0;  // currently open windows
  double err = 0.0;

  const int last_pos = wins.back().resolve;
  for (int t = 0; t <= last_pos; ++t) {
    while (next_close < wins.size() && wins[next_close].resolve == t) {
      const auto foc = static_cast<std::size_t>(oc);
      err += dp[foc][1];  // alive at resolution => output error
      dp[foc][1] = 0.0;
      // The closing window leaves the fresh set of the c==0 survivors.
      dp[foc - 1][0] += dp[foc][0];
      dp[foc][0] = 0.0;
      --oc;
      ++next_close;
    }
    if (t == last_pos) break;

    while (next_open < wins.size() && wins[next_open].lo == t) {
      for (int f = oc; f >= 0; --f) {
        dp[static_cast<std::size_t>(f) + 1] = dp[static_cast<std::size_t>(f)];
      }
      dp[0] = {0.0, 0.0};
      ++oc;
      ++next_open;
    }

    // Consume bit t: propagate keeps (c, f); generate/kill set the carry
    // and empty the fresh set.
    double to_gen = 0.0, to_kill = 0.0;
    for (int f = 0; f <= oc; ++f) {
      for (int c = 0; c < 2; ++c) {
        const double w = dp[static_cast<std::size_t>(f)][static_cast<std::size_t>(c)];
        if (w == 0.0) continue;
        to_gen += w * kGenProb;
        to_kill += w * kGenProb;
        dp[static_cast<std::size_t>(f)][static_cast<std::size_t>(c)] = w * kPropProb;
      }
    }
    dp[0][1] += to_gen;
    dp[0][0] += to_kill;
  }
  return err;
}

namespace {

/// Per-bit-position event probabilities driving the magnitude DP: the
/// chance that one bit of the operand pair generates (a&b), propagates
/// (a^b), or kills a carry. The uniform closed form is {1/4, 1/2, 1/4};
/// a stats::OperandModel supplies per-position values.
struct BitProbs {
  double gen = 0.0;
  double prop = 0.0;
  double kill = 0.0;
};

/// Wu-style magnitude DP (DESIGN.md §5e), templated over the per-bit
/// probability provider `bit_probs(t) -> BitProbs` so the uniform closed
/// form and model-conditioned marginals share one implementation. With
/// the uniform provider the arithmetic below performs exactly the
/// operation sequence of the pre-generalization uniform code (two
/// products and two accumulations per live magnitude, in the same
/// order), so the uniform path is bit-identical to the seed — pinned by
/// ErrorModelTrace.UniformModelBitIdentical.
///
/// The total error telescopes to
///   approx - exact = -sum_j 2^res_lo(j) * [G_j],
/// with the run-start event G_j = E_j and not F_{j-1}, where F_{j-1}
/// extends sub-adder j-1's propagate run through its whole result region
/// (F_{j-1} implies the carry sub-adder j misses was already missed —
/// and accounted — by sub-adder j-1). To read F_{j-1} at res_lo(j),
/// window j-1 is kept open through [win_lo(j-1), res_lo(j)); the same
/// collapsed (c, f) state then classifies the resolution of window j:
///   f == open_count     and c==1:  E_j and F_{j-1}  -> no new magnitude
///   f == open_count - 1 and c==1:  G_j fires        -> magnitude += 2^res_lo(j)
///   otherwise                      E_j fails        -> no error here
/// (for j == 1 there is no F_0 — carry into bit 0 is 0 — so G_1 fires at
/// f == open_count). Each (c, f) state carries a map from accumulated
/// magnitude to probability; the final PMF keys are -magnitude.
template <typename ProbsFn>
stats::Pmf magnitude_dp(const GeArConfig& cfg, ProbsFn&& bit_probs) {
  const auto wins = prediction_windows(cfg);
  stats::Pmf pmf;
  using MagMap = std::map<std::uint64_t, double>;
  const std::size_t nw = wins.size();
  // State index: f * 2 + c, f in [0, nw].
  std::vector<MagMap> dp(2 * (nw + 1));
  dp[0][0] = 1.0;

  auto merge_into = [](MagMap& into, MagMap& from) {
    for (const auto& [mag, w] : from) into[mag] += w;
    from.clear();
  };

  std::size_t next_open = 0, next_close = 0;
  int oc = 0;
  const int last_pos = wins.back().resolve;
  for (int t = 0; t <= last_pos; ++t) {
    while (next_close < nw && wins[next_close].resolve == t) {
      const std::size_t j = next_close;  // 0-based: sub-adder j+1 resolves
      const std::size_t fire_f =
          j == 0 ? static_cast<std::size_t>(oc) : static_cast<std::size_t>(oc) - 1;
      MagMap& firing = dp[fire_f * 2 + 1];
      if (!firing.empty()) {
        const std::uint64_t weight = std::uint64_t{1}
                                     << static_cast<unsigned>(wins[j].resolve);
        MagMap shifted;
        for (const auto& [mag, w] : firing) shifted[mag + weight] = w;
        firing = std::move(shifted);
      }
      if (j >= 1) {
        // Window j-1's extended span ends here; fold its fresh-set slot.
        const auto foc = static_cast<std::size_t>(oc);
        merge_into(dp[(foc - 1) * 2 + 0], dp[foc * 2 + 0]);
        merge_into(dp[(foc - 1) * 2 + 1], dp[foc * 2 + 1]);
        --oc;
      }
      ++next_close;
    }
    if (t == last_pos) break;

    while (next_open < nw && wins[next_open].lo == t) {
      for (int f = oc; f >= 0; --f) {
        const auto fs = static_cast<std::size_t>(f);
        dp[(fs + 1) * 2 + 0] = std::move(dp[fs * 2 + 0]);
        dp[(fs + 1) * 2 + 1] = std::move(dp[fs * 2 + 1]);
        dp[fs * 2 + 0].clear();
        dp[fs * 2 + 1].clear();
      }
      ++oc;
      ++next_open;
    }

    const BitProbs bp = bit_probs(t);
    MagMap gen_acc, kill_acc;
    for (int f = 0; f <= oc; ++f) {
      for (int c = 0; c < 2; ++c) {
        for (auto& [mag, w] : dp[static_cast<std::size_t>(f) * 2 +
                                 static_cast<std::size_t>(c)]) {
          gen_acc[mag] += w * bp.gen;
          kill_acc[mag] += w * bp.kill;
          w *= bp.prop;
        }
      }
    }
    for (const auto& [mag, w] : gen_acc) dp[1][mag] += w;    // (c=1, f=0)
    for (const auto& [mag, w] : kill_acc) dp[0][mag] += w;   // (c=0, f=0)
  }

  for (const auto& state : dp) {
    for (const auto& [mag, w] : state) {
      pmf.add(-static_cast<std::int64_t>(mag), w);
    }
  }
  return pmf;
}

}  // namespace

stats::Pmf exact_error_distribution(const GeArConfig& cfg) {
  const int k = cfg.k();
  if (k <= 1) {
    stats::Pmf pmf;
    pmf.add(0, 1.0);
    return pmf;
  }
  if (cfg.n() > 62) {
    throw std::invalid_argument("exact_error_distribution: N > 62");
  }
  return magnitude_dp(
      cfg, [](int) { return BitProbs{kGenProb, kPropProb, kGenProb}; });
}

ExactErrorMetrics exact_error_metrics(const GeArConfig& cfg) {
  ExactErrorMetrics m;
  const int k = cfg.k();
  const int n = cfg.n();
  const double range = std::pow(2.0, n) - 1.0;
  m.acc_amp_mean = 1.0;
  if (k <= 1) return m;

  m.error_probability = exact_error_probability(cfg);

  // MED: G_j decomposes into disjoint atoms by the position g of the
  // responsible generate — g in [win_lo(j-1), win_lo(j)) (j==1: from 0)
  // with every bit in (g, res_lo(j)) propagating — so
  //   P(G_j) = sum_g kGenProb * kPropProb^(res_lo(j) - 1 - g)
  // and MED = sum_j 2^res_lo(j) * P(G_j) by linearity (errors never
  // cancel: every contribution has the same sign).
  for (int j = 1; j < k; ++j) {
    const int lo = j == 1 ? 0 : cfg.sub(j - 1).win_lo;
    const int hi = cfg.sub(j).win_lo;  // exclusive
    const int res = cfg.sub(j).res_lo;
    double pg = 0.0;
    for (int g = lo; g < hi; ++g) {
      pg += kGenProb * std::pow(kPropProb, res - 1 - g);
    }
    m.med += std::pow(2.0, res) * pg;
  }

  // Max error distance: the heaviest simultaneously-achievable set of
  // G_j events. G_j is achievable at all only when its generate region
  // [win_lo(j-1), win_lo(j)) is non-empty (deep-overlap custom layouts
  // can collapse it, making P(G_j) = 0); G_i and G_j (i < j) can then
  // co-fire iff sub-adder j's generate can sit above i's propagate span:
  // win_lo(j) > res_lo(i). Monotone window geometry makes the pairwise
  // condition on consecutive picks sufficient, so a max-weight chain DP
  // over j suffices.
  std::vector<double> best(static_cast<std::size_t>(k), 0.0);
  for (int j = 1; j < k; ++j) {
    const int region_lo = j == 1 ? 0 : cfg.sub(j - 1).win_lo;
    if (cfg.sub(j).win_lo <= region_lo) continue;  // P(G_j) == 0
    double prev = 0.0;
    for (int i = 1; i < j; ++i) {
      if (cfg.sub(j).win_lo > cfg.sub(i).res_lo) {
        prev = std::max(prev, best[static_cast<std::size_t>(i)]);
      }
    }
    best[static_cast<std::size_t>(j)] =
        prev + std::pow(2.0, cfg.sub(j).res_lo);
    m.max_ed = std::max(m.max_ed, best[static_cast<std::size_t>(j)]);
  }

  m.ned = m.max_ed > 0.0 ? m.med / m.max_ed : 0.0;
  m.ned_range = m.med / range;
  m.acc_amp_mean = 1.0 - m.ned_range;
  return m;
}

std::uint64_t telescoped_error_magnitude(const GeArConfig& cfg,
                                         std::uint64_t gen,
                                         std::uint64_t prop) {
  if (cfg.n() > 62) {
    throw std::invalid_argument("telescoped_error_magnitude: N > 62");
  }
  std::uint64_t mag = 0;
  for (int j = 1; j < cfg.k(); ++j) {
    const int res = cfg.sub(j).res_lo;
    // h = highest non-propagating bit below res_lo(j); the run (h, res)
    // propagates by construction, so the carry reaching res_lo(j) (if
    // any) originates exactly at h.
    const std::uint64_t below = ~prop & width_mask(res);
    if (below == 0) continue;  // all-propagate run from bit 0: carry-in is 0
    const int h = 63 - std::countl_zero(below);
    const int region_lo = j == 1 ? 0 : cfg.sub(j - 1).win_lo;
    // G_j: h generates (kill ends the run with no carry), sits below j's
    // prediction window (inside it would break E_j), and at or above the
    // previous window's opening (below it, F_{j-1} holds and the miss was
    // already charged to sub-adder j-1).
    if (h >= region_lo && h < cfg.sub(j).win_lo && ((gen >> h) & 1ULL)) {
      mag += std::uint64_t{1} << static_cast<unsigned>(res);
    }
  }
  return mag;
}

stats::Pmf exact_error_distribution(const GeArConfig& cfg,
                                    const stats::OperandModel& model) {
  if (model.width() > cfg.n()) {
    throw std::invalid_argument(
        "exact_error_distribution: model wider than the adder");
  }
  if (model.is_uniform()) return exact_error_distribution(cfg);
  if (cfg.n() > 62) {
    throw std::invalid_argument("exact_error_distribution: N > 62");
  }

  if (model.kind() == stats::OperandModel::Kind::kEmpirical) {
    // Exact evaluation over the (gen, prop) classes: integer counts per
    // magnitude first, then one count * (1/samples) product per key in
    // ascending-key order — the same arithmetic and order as
    // stats::Pmf::from_histogram over the equivalent replay histogram,
    // so the result matches enumeration over the empirical trace
    // distribution bit-for-bit.
    std::map<std::uint64_t, std::uint64_t> counts;
    for (const stats::GpClass& c : model.classes()) {
      counts[telescoped_error_magnitude(cfg, c.gen, c.prop)] += c.count;
    }
    stats::Pmf pmf;
    const double inv = 1.0 / static_cast<double>(model.samples());
    for (auto it = counts.rbegin(); it != counts.rend(); ++it) {
      pmf.add(-static_cast<std::int64_t>(it->first),
              static_cast<double>(it->second) * inv);
    }
    return pmf;
  }

  if (cfg.k() <= 1) {
    stats::Pmf pmf;
    pmf.add(0, 1.0);
    return pmf;
  }
  return magnitude_dp(cfg, [&model](int t) {
    return BitProbs{model.gen_prob(t), model.prop_prob(t),
                    model.kill_prob(t)};
  });
}

ExactErrorMetrics exact_error_metrics(const GeArConfig& cfg,
                                      const stats::OperandModel& model) {
  if (model.is_uniform()) return exact_error_metrics(cfg);
  ExactErrorMetrics m;
  const double range = std::pow(2.0, cfg.n()) - 1.0;
  const stats::Pmf pmf = exact_error_distribution(cfg, model);
  for (const auto& [key, mass] : pmf.entries()) {
    if (key == 0 || mass <= 0.0) continue;
    m.error_probability += mass;
    m.max_ed = std::max(m.max_ed, -static_cast<double>(key));
  }
  m.med = pmf.mean_abs();
  m.ned = m.max_ed > 0.0 ? m.med / m.max_ed : 0.0;
  m.ned_range = m.med / range;
  m.acc_amp_mean = 1.0 - m.ned_range;
  return m;
}

namespace {

/// One shard's worth of error-count trials; the sequential drivers are the
/// single-chunk case, so both paths share one kernel.
std::uint64_t mc_error_chunk(const GeArAdder& adder, int n, std::uint64_t trials,
                             stats::Rng& rng) {
  std::uint64_t errors = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const std::uint64_t a = rng.bits(n);
    const std::uint64_t b = rng.bits(n);
    if (adder.add_value(a, b) != adder.exact(a, b)) ++errors;
  }
  return errors;
}

/// Bitsliced twin of mc_error_chunk: 64 trials per eval, same RNG draw
/// order (lane l of a block is trial block_base + l, drawing a then b), so
/// the error count — and therefore every shard tally — is bit-identical.
std::uint64_t mc_error_chunk_bitsliced(const BitslicedGearAdder& adder, int n,
                                       std::uint64_t trials, stats::Rng& rng) {
  std::uint64_t errors = 0;
  std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
  BitslicedBatch batch;
  for (std::uint64_t base = 0; base < trials;
       base += stats::kBitslicedLanes) {
    const int count = static_cast<int>(std::min<std::uint64_t>(
        stats::kBitslicedLanes, trials - base));
    for (int l = 0; l < count; ++l) {
      a[l] = rng.bits(n);
      b[l] = rng.bits(n);
    }
    adder.eval(a, b, count, /*carry_in_lanes=*/0, /*correction_mask=*/0, batch);
    errors += static_cast<std::uint64_t>(std::popcount(batch.error));
  }
  return errors;
}

McErrorEstimate finish_estimate(std::uint64_t errors, std::uint64_t trials) {
  McErrorEstimate est;
  est.trials = trials;
  est.errors = errors;
  est.p = static_cast<double>(errors) / static_cast<double>(trials);
  est.ci = stats::wilson_ci(errors, trials);
  return est;
}

}  // namespace

void McErrorEstimate::merge(const McErrorEstimate& other) {
  trials += other.trials;
  errors += other.errors;
  p = trials ? static_cast<double>(errors) / static_cast<double>(trials) : 0.0;
  ci = stats::wilson_ci(errors, trials);
}

McErrorEstimate mc_error_probability(const GeArConfig& cfg, std::uint64_t trials,
                                     stats::Rng& rng, McKernel kernel) {
  assert(trials > 0);
  if (kernel == McKernel::kBitsliced) {
    const BitslicedGearAdder adder(cfg);
    return finish_estimate(
        mc_error_chunk_bitsliced(adder, cfg.n(), trials, rng), trials);
  }
  const GeArAdder adder(cfg);
  return finish_estimate(mc_error_chunk(adder, cfg.n(), trials, rng), trials);
}

McErrorEstimate mc_error_probability(const GeArConfig& cfg, std::uint64_t trials,
                                     std::uint64_t master_seed,
                                     stats::ParallelExecutor& exec,
                                     std::uint64_t shard_size, McKernel kernel) {
  assert(trials > 0);
  const auto shards = stats::ParallelExecutor::make_shards(trials, shard_size);
  std::vector<std::uint64_t> errors;
  if (kernel == McKernel::kBitsliced) {
    const BitslicedGearAdder adder(cfg);
    errors = exec.map<std::uint64_t>(shards.size(), [&](std::size_t i) {
      stats::Rng rng = stats::ParallelExecutor::shard_rng(master_seed, i);
      return mc_error_chunk_bitsliced(adder, cfg.n(), shards[i].size(), rng);
    });
  } else {
    const GeArAdder adder(cfg);
    errors = exec.map<std::uint64_t>(shards.size(), [&](std::size_t i) {
      stats::Rng rng = stats::ParallelExecutor::shard_rng(master_seed, i);
      return mc_error_chunk(adder, cfg.n(), shards[i].size(), rng);
    });
  }
  // Canonical merge: ascending shard index (associative here, but the
  // contract is what every driver documents and tests pin).
  std::uint64_t total_errors = 0;
  for (std::uint64_t e : errors) total_errors += e;
  return finish_estimate(total_errors, trials);
}

double exhaustive_error_probability(const GeArConfig& cfg) {
  if (cfg.n() > 12) throw std::invalid_argument("exhaustive_error_probability: N > 12");
  const GeArAdder adder(cfg);
  const std::uint64_t limit = 1ULL << cfg.n();
  std::uint64_t errors = 0;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      if (adder.add_value(a, b) != a + b) ++errors;
    }
  }
  return static_cast<double>(errors) /
         static_cast<double>(limit * limit);
}

double analytic_med(const GeArConfig& cfg) {
  const int n = cfg.n();
  const int l_top = cfg.sub(cfg.k() - 1).window_len();
  // P(carry out of an m-bit uniform add) = (1 - 2^-m) / 2; the MED is the
  // carry-out weight times the marginal gap (see header).
  return std::pow(2.0, n - 1) *
         (std::pow(2.0, -l_top) - std::pow(2.0, -n));
}

double exhaustive_med(const GeArConfig& cfg) {
  if (cfg.n() > 12) throw std::invalid_argument("exhaustive_med: N > 12");
  const GeArAdder adder(cfg);
  const std::uint64_t limit = 1ULL << cfg.n();
  double acc = 0.0;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      acc += static_cast<double>((a + b) - adder.add_value(a, b));
    }
  }
  return acc / static_cast<double>(limit * limit);
}

namespace {

stats::SparseHistogram mc_distribution_chunk(const GeArAdder& adder, int n,
                                             std::uint64_t trials, stats::Rng& rng) {
  stats::SparseHistogram hist;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const std::uint64_t a = rng.bits(n);
    const std::uint64_t b = rng.bits(n);
    const auto approx = static_cast<std::int64_t>(adder.add_value(a, b));
    const auto exact = static_cast<std::int64_t>(adder.exact(a, b));
    hist.add(approx - exact);
  }
  return hist;
}

/// Bitsliced twin of mc_distribution_chunk. Error-free lanes are tallied
/// as one weighted add of key 0 (skipping the unpack entirely when a whole
/// block is error-free); erroneous lanes unpack to the same
/// int64(approx) - int64(exact) keys the scalar kernel produces, so the
/// merged histogram is entry-identical.
stats::SparseHistogram mc_distribution_chunk_bitsliced(
    const BitslicedGearAdder& adder, int n, std::uint64_t trials,
    stats::Rng& rng) {
  stats::SparseHistogram hist;
  std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
  std::uint64_t approx[stats::kBitslicedLanes], exact[stats::kBitslicedLanes];
  BitslicedBatch batch;
  for (std::uint64_t base = 0; base < trials;
       base += stats::kBitslicedLanes) {
    const int count = static_cast<int>(std::min<std::uint64_t>(
        stats::kBitslicedLanes, trials - base));
    for (int l = 0; l < count; ++l) {
      a[l] = rng.bits(n);
      b[l] = rng.bits(n);
    }
    adder.eval(a, b, count, /*carry_in_lanes=*/0, /*correction_mask=*/0, batch);
    const int zeros =
        std::popcount(~batch.error & stats::lane_mask(count));
    if (zeros > 0) hist.add(0, static_cast<std::uint64_t>(zeros));
    if (batch.error != 0) {
      adder.unpack_sums(batch.approx, approx, count);
      adder.unpack_sums(batch.exact, exact, count);
      for (int l = 0; l < count; ++l) {
        if ((batch.error >> l) & 1ULL) {
          hist.add(static_cast<std::int64_t>(approx[l]) -
                   static_cast<std::int64_t>(exact[l]));
        }
      }
    }
  }
  return hist;
}

/// Deterministic replay of a span of recorded pairs: one histogram entry
/// per pair, module key convention. The trace drivers and the
/// source-driven MC scalar kernel are all this loop.
stats::SparseHistogram pairs_distribution_chunk(
    const GeArAdder& adder, const stats::OperandPair* pairs,
    std::uint64_t count) {
  stats::SparseHistogram hist;
  for (std::uint64_t t = 0; t < count; ++t) {
    const auto approx =
        static_cast<std::int64_t>(adder.add_value(pairs[t].a, pairs[t].b));
    const auto exact =
        static_cast<std::int64_t>(adder.exact(pairs[t].a, pairs[t].b));
    hist.add(approx - exact);
  }
  return hist;
}

/// Bitsliced twin of pairs_distribution_chunk; entry-identical tallies
/// (same zero-lane batching as mc_distribution_chunk_bitsliced). Inputs
/// are masked to n bits before packing, matching the scalar adder's
/// internal masking.
stats::SparseHistogram pairs_distribution_chunk_bitsliced(
    const BitslicedGearAdder& adder, int n, const stats::OperandPair* pairs,
    std::uint64_t count) {
  stats::SparseHistogram hist;
  const std::uint64_t mask = width_mask(n);
  std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
  std::uint64_t approx[stats::kBitslicedLanes], exact[stats::kBitslicedLanes];
  BitslicedBatch batch;
  for (std::uint64_t base = 0; base < count;
       base += stats::kBitslicedLanes) {
    const int lanes = static_cast<int>(std::min<std::uint64_t>(
        stats::kBitslicedLanes, count - base));
    for (int l = 0; l < lanes; ++l) {
      a[l] = pairs[base + static_cast<std::uint64_t>(l)].a & mask;
      b[l] = pairs[base + static_cast<std::uint64_t>(l)].b & mask;
    }
    adder.eval(a, b, lanes, /*carry_in_lanes=*/0, /*correction_mask=*/0, batch);
    const int zeros =
        std::popcount(~batch.error & stats::lane_mask(lanes));
    if (zeros > 0) hist.add(0, static_cast<std::uint64_t>(zeros));
    if (batch.error != 0) {
      adder.unpack_sums(batch.approx, approx, lanes);
      adder.unpack_sums(batch.exact, exact, lanes);
      for (int l = 0; l < lanes; ++l) {
        if ((batch.error >> l) & 1ULL) {
          hist.add(static_cast<std::int64_t>(approx[l]) -
                   static_cast<std::int64_t>(exact[l]));
        }
      }
    }
  }
  return hist;
}

std::vector<std::uint64_t> mc_detect_chunk(const GeArAdder& adder, int n, int k,
                                           std::uint64_t trials, stats::Rng& rng) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(k) + 1, 0);
  for (std::uint64_t t = 0; t < trials; ++t) {
    const std::uint64_t a = rng.bits(n);
    const std::uint64_t b = rng.bits(n);
    const AddResult r = adder.add(a, b);
    ++counts[static_cast<std::size_t>(r.detect_count())];
  }
  return counts;
}

/// Bitsliced twin of mc_detect_chunk: per-lane detect counts gathered from
/// the k detect lane words (word 0 is always 0, like sub-adder 0's flag).
std::vector<std::uint64_t> mc_detect_chunk_bitsliced(
    const BitslicedGearAdder& adder, int n, int k, std::uint64_t trials,
    stats::Rng& rng) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(k) + 1, 0);
  std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
  BitslicedBatch batch;
  for (std::uint64_t base = 0; base < trials;
       base += stats::kBitslicedLanes) {
    const int count = static_cast<int>(std::min<std::uint64_t>(
        stats::kBitslicedLanes, trials - base));
    for (int l = 0; l < count; ++l) {
      a[l] = rng.bits(n);
      b[l] = rng.bits(n);
    }
    adder.eval(a, b, count, /*carry_in_lanes=*/0, /*correction_mask=*/0, batch);
    if (batch.any_detect == 0) {
      counts[0] += static_cast<std::uint64_t>(count);
      continue;
    }
    for (int l = 0; l < count; ++l) {
      int c = 0;
      for (int j = 1; j < k; ++j) {
        c += static_cast<int>(
            (batch.detect[static_cast<std::size_t>(j)] >> l) & 1ULL);
      }
      ++counts[static_cast<std::size_t>(c)];
    }
  }
  return counts;
}

std::vector<double> normalize_counts(const std::vector<std::uint64_t>& counts,
                                     std::uint64_t trials) {
  std::vector<double> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    out[i] = static_cast<double>(counts[i]) / static_cast<double>(trials);
  return out;
}

}  // namespace

stats::SparseHistogram mc_error_distribution(const GeArConfig& cfg,
                                             std::uint64_t trials, stats::Rng& rng,
                                             McKernel kernel) {
  if (kernel == McKernel::kBitsliced) {
    const BitslicedGearAdder adder(cfg);
    return mc_distribution_chunk_bitsliced(adder, cfg.n(), trials, rng);
  }
  const GeArAdder adder(cfg);
  return mc_distribution_chunk(adder, cfg.n(), trials, rng);
}

stats::SparseHistogram mc_error_distribution(const GeArConfig& cfg,
                                             std::uint64_t trials,
                                             std::uint64_t master_seed,
                                             stats::ParallelExecutor& exec,
                                             std::uint64_t shard_size,
                                             McKernel kernel) {
  const auto shards = stats::ParallelExecutor::make_shards(trials, shard_size);
  std::vector<stats::SparseHistogram> partials;
  if (kernel == McKernel::kBitsliced) {
    const BitslicedGearAdder adder(cfg);
    partials =
        exec.map<stats::SparseHistogram>(shards.size(), [&](std::size_t i) {
          stats::Rng rng = stats::ParallelExecutor::shard_rng(master_seed, i);
          return mc_distribution_chunk_bitsliced(adder, cfg.n(),
                                                 shards[i].size(), rng);
        });
  } else {
    const GeArAdder adder(cfg);
    partials =
        exec.map<stats::SparseHistogram>(shards.size(), [&](std::size_t i) {
          stats::Rng rng = stats::ParallelExecutor::shard_rng(master_seed, i);
          return mc_distribution_chunk(adder, cfg.n(), shards[i].size(), rng);
        });
  }
  stats::SparseHistogram hist;
  for (const auto& partial : partials) hist.merge(partial);
  return hist;
}

stats::SparseHistogram trace_error_distribution(const GeArConfig& cfg,
                                                const stats::TraceSource& trace,
                                                McKernel kernel) {
  const auto& pairs = trace.pairs();
  if (kernel == McKernel::kBitsliced) {
    const BitslicedGearAdder adder(cfg);
    return pairs_distribution_chunk_bitsliced(adder, cfg.n(), pairs.data(),
                                              pairs.size());
  }
  const GeArAdder adder(cfg);
  return pairs_distribution_chunk(adder, pairs.data(), pairs.size());
}

stats::SparseHistogram trace_error_distribution(const GeArConfig& cfg,
                                                const stats::TraceSource& trace,
                                                stats::ParallelExecutor& exec,
                                                std::uint64_t shard_size,
                                                McKernel kernel) {
  const auto& pairs = trace.pairs();
  const auto shards =
      stats::ParallelExecutor::make_shards(pairs.size(), shard_size);
  std::vector<stats::SparseHistogram> partials;
  if (kernel == McKernel::kBitsliced) {
    const BitslicedGearAdder adder(cfg);
    partials =
        exec.map<stats::SparseHistogram>(shards.size(), [&](std::size_t i) {
          return pairs_distribution_chunk_bitsliced(
              adder, cfg.n(), pairs.data() + shards[i].begin,
              shards[i].size());
        });
  } else {
    const GeArAdder adder(cfg);
    partials =
        exec.map<stats::SparseHistogram>(shards.size(), [&](std::size_t i) {
          return pairs_distribution_chunk(adder, pairs.data() + shards[i].begin,
                                          shards[i].size());
        });
  }
  // Integer-count merge in ascending shard index: bit-identical to the
  // sequential replay for every thread count.
  stats::SparseHistogram hist;
  for (const auto& partial : partials) hist.merge(partial);
  return hist;
}

stats::SparseHistogram mc_error_distribution(const GeArConfig& cfg,
                                             std::uint64_t trials,
                                             stats::OperandSource& source,
                                             McKernel kernel) {
  stats::SparseHistogram hist;
  const std::uint64_t mask = width_mask(cfg.n());
  if (kernel == McKernel::kBitsliced) {
    const BitslicedGearAdder adder(cfg);
    stats::OperandPair buf[stats::kBitslicedLanes];
    std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
    std::uint64_t approx[stats::kBitslicedLanes],
        exact[stats::kBitslicedLanes];
    BitslicedBatch batch;
    for (std::uint64_t base = 0; base < trials;
         base += stats::kBitslicedLanes) {
      const int lanes = static_cast<int>(std::min<std::uint64_t>(
          stats::kBitslicedLanes, trials - base));
      source.fill(buf, static_cast<std::size_t>(lanes));
      for (int l = 0; l < lanes; ++l) {
        a[l] = buf[l].a & mask;
        b[l] = buf[l].b & mask;
      }
      adder.eval(a, b, lanes, /*carry_in_lanes=*/0, /*correction_mask=*/0,
                 batch);
      const int zeros =
          std::popcount(~batch.error & stats::lane_mask(lanes));
      if (zeros > 0) hist.add(0, static_cast<std::uint64_t>(zeros));
      if (batch.error != 0) {
        adder.unpack_sums(batch.approx, approx, lanes);
        adder.unpack_sums(batch.exact, exact, lanes);
        for (int l = 0; l < lanes; ++l) {
          if ((batch.error >> l) & 1ULL) {
            hist.add(static_cast<std::int64_t>(approx[l]) -
                     static_cast<std::int64_t>(exact[l]));
          }
        }
      }
    }
    return hist;
  }
  const GeArAdder adder(cfg);
  for (std::uint64_t t = 0; t < trials; ++t) {
    const stats::OperandPair p = source.next();
    const auto approx = static_cast<std::int64_t>(adder.add_value(p.a, p.b));
    const auto exact = static_cast<std::int64_t>(adder.exact(p.a, p.b));
    hist.add(approx - exact);
  }
  return hist;
}

void merge_detect_counts(std::vector<std::uint64_t>& into,
                         const std::vector<std::uint64_t>& from) {
  if (into.empty()) {
    into = from;
    return;
  }
  assert(into.size() == from.size());
  for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
}

std::vector<double> mc_detect_count_distribution(const GeArConfig& cfg,
                                                 std::uint64_t trials,
                                                 stats::Rng& rng,
                                                 McKernel kernel) {
  if (kernel == McKernel::kBitsliced) {
    const BitslicedGearAdder adder(cfg);
    return normalize_counts(
        mc_detect_chunk_bitsliced(adder, cfg.n(), cfg.k(), trials, rng),
        trials);
  }
  const GeArAdder adder(cfg);
  return normalize_counts(mc_detect_chunk(adder, cfg.n(), cfg.k(), trials, rng),
                          trials);
}

std::vector<double> mc_detect_count_distribution(const GeArConfig& cfg,
                                                 std::uint64_t trials,
                                                 std::uint64_t master_seed,
                                                 stats::ParallelExecutor& exec,
                                                 std::uint64_t shard_size,
                                                 McKernel kernel) {
  const auto shards = stats::ParallelExecutor::make_shards(trials, shard_size);
  std::vector<std::vector<std::uint64_t>> partials;
  if (kernel == McKernel::kBitsliced) {
    const BitslicedGearAdder adder(cfg);
    partials = exec.map<std::vector<std::uint64_t>>(
        shards.size(), [&](std::size_t i) {
          stats::Rng rng = stats::ParallelExecutor::shard_rng(master_seed, i);
          return mc_detect_chunk_bitsliced(adder, cfg.n(), cfg.k(),
                                           shards[i].size(), rng);
        });
  } else {
    const GeArAdder adder(cfg);
    partials = exec.map<std::vector<std::uint64_t>>(
        shards.size(), [&](std::size_t i) {
          stats::Rng rng = stats::ParallelExecutor::shard_rng(master_seed, i);
          return mc_detect_chunk(adder, cfg.n(), cfg.k(), shards[i].size(),
                                 rng);
        });
  }
  std::vector<std::uint64_t> counts;
  for (const auto& partial : partials) merge_detect_counts(counts, partial);
  return normalize_counts(counts, trials);
}

}  // namespace gear::core
