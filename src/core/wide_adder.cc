#include "core/wide_adder.h"

#include <algorithm>
#include <cassert>

namespace gear::core {

std::optional<WideGeArLayout> WideGeArLayout::make(int n, int r, int p) {
  if (n < 2 || r < 1 || p < 1 || r + p > n) return std::nullopt;
  return WideGeArLayout(n, r, p);
}

WideGeArLayout::WideGeArLayout(int n, int r, int p) : n_(n), r_(r), p_(p) {
  const int l = r + p;
  subs_.push_back({0, l - 1, 0, l - 1});
  int res_lo = l;
  while (res_lo < n) {
    const int res_hi = std::min(res_lo + r - 1, n - 1);
    subs_.push_back({res_lo - p, res_hi, res_lo, res_hi});
    res_lo = res_hi + 1;
  }
}

WideGeArAdder::WideGeArAdder(WideGeArLayout layout) : layout_(std::move(layout)) {}

WideAddResult WideGeArAdder::add(const BitVec& a, const BitVec& b) const {
  assert(a.width() == layout_.n() && b.width() == layout_.n());
  const int n = layout_.n();
  WideAddResult out;
  out.sum = BitVec(n + 1);
  out.detect.assign(layout_.subs().size(), false);

  std::vector<bool> carry_out(layout_.subs().size(), false);
  for (std::size_t j = 0; j < layout_.subs().size(); ++j) {
    const auto& s = layout_.subs()[j];
    const int wlen = s.window_len();
    const BitVec wa = a.slice(s.win_lo, wlen);
    const BitVec wb = b.slice(s.win_lo, wlen);
    bool cout = false;
    const BitVec wsum = wa.add(wb, false, &cout);
    carry_out[j] = cout;

    const int rel = s.res_lo - s.win_lo;
    out.sum.set_slice(s.res_lo, wsum.slice(rel, s.result_len()));

    if (j >= 1) {
      const int plen = s.prediction_len();
      const BitVec prop = wa.slice(0, plen) ^ wb.slice(0, plen);
      const bool all_prop = prop.popcount() == plen;
      out.detect[j] = all_prop && carry_out[j - 1];
    }
  }
  out.sum.set_bit(n, carry_out.back());
  return out;
}

BitVec WideGeArAdder::exact(const BitVec& a, const BitVec& b) const {
  const int n = layout_.n();
  bool cout = false;
  BitVec s = a.add(b, false, &cout);
  BitVec wide = s.resized(n + 1);
  wide.set_bit(n, cout);
  return wide;
}

}  // namespace gear::core
