// Watchdog policy for graceful degradation of the correction loop.
//
// The multi-cycle detect/correct loop (paper Section 3.3) assumes the
// detection network is healthy: flags fire at the rate the error model
// predicts and each op needs at most k-1 correction cycles. A transient
// or permanent fault in the datapath or the detection logic breaks that
// assumption in one of two observable ways:
//
//  * the detect rate *spikes* far above the analytic prediction (a stuck
//    or chattering flag burns a correction cycle on almost every op), or
//  * the detect rate *collapses* below it (a dead flag network silently
//    stops requesting corrections — the precursor of silent data
//    corruption), or
//  * the per-window correction-cycle budget is exhausted.
//
// The watchdog monitors all three against the analytic model
// (paper_error_probability) over fixed-size op windows and, on a trip,
// drops the system into a configurable safe mode instead of letting it
// corrupt results silently:
//
//  * kExactAdd          — bypass approximation: every op pays the full
//                         worst-case correction latency but is exact;
//  * kFreezeMask        — keep the current correction mask but stop
//                         adapting/monitoring (trust the last-known-good
//                         configuration);
//  * kFlagApproximate   — stop correcting, run 1-cycle approximate adds,
//                         and flag every result as untrusted (accuracy is
//                         surrendered, but visibly so).
//
// The watchdog itself is deterministic: its decisions are a pure function
// of the observation stream, so sharded parallel runs that keep one
// watchdog per shard stay bit-reproducible (DESIGN.md §5a).
#pragma once

#include <cstdint>

namespace gear::core {

enum class SafeMode : std::uint8_t {
  kExactAdd,
  kFreezeMask,
  kFlagApproximate,
};

const char* safe_mode_name(SafeMode mode);

struct DegradationPolicy {
  /// Ops per monitoring window.
  std::uint32_t window = 256;
  /// Max correction (stall) cycles tolerated within one window; the trip
  /// is immediate, mid-window. ~0 disables the budget check.
  std::uint64_t stall_budget = ~0ULL;
  /// Cap on correction cycles spent on a single op (-1 = unlimited). An
  /// op that hits the cap completes with its remaining detects
  /// uncorrected and is counted as budget-exhausted.
  int per_op_correction_budget = -1;
  /// Trip when the windowed detect rate exceeds spike_factor * expected.
  /// <= 0 disables the spike check.
  double spike_factor = 8.0;
  /// Trip when the windowed detect rate falls below floor_factor *
  /// expected. Only evaluated when the window is large enough to expect
  /// at least one detect (expected * window >= 1); 0 disables.
  double floor_factor = 0.0;
  SafeMode safe_mode = SafeMode::kExactAdd;
  /// Windows spent in safe mode before re-arming; 0 latches safe mode
  /// until reset().
  std::uint32_t cooldown_windows = 0;
};

class Watchdog {
 public:
  /// `expected_detect_rate` is the analytic per-op probability of >= 1
  /// detect event (e.g. paper_error_probability of the configuration).
  Watchdog(double expected_detect_rate, DegradationPolicy policy);

  /// Feeds one op's observation: whether any first-pass detect fired and
  /// how many stall (correction) cycles it consumed. Returns true when
  /// this op trips the watchdog into safe mode.
  bool observe(bool detected, std::uint64_t stall_cycles);

  /// True when `ops` further observations totalling `stalls` stall cycles
  /// cannot trip the watchdog or close the window — i.e. feeding them
  /// through observe() one by one is guaranteed to be pure counter
  /// accumulation (stall trips are monotone in the running stall total and
  /// spike/floor checks only run at window close, so a block that keeps
  /// the window open and the stall total within budget is decision-free).
  /// Lets the 64-lane batch path absorb whole blocks without replaying
  /// per-op decisions (DESIGN.md §5j).
  bool can_absorb_block(std::uint32_t ops, std::uint64_t stalls) const {
    return !safe_ &&
           static_cast<std::uint64_t>(window_ops_) + ops < policy_.window &&
           // Subtraction form: stall_budget defaults to ~0, and
           // window_stalls_ <= stall_budget whenever !safe_ (exceeding it
           // trips immediately), so this never underflows.
           stalls <= policy_.stall_budget - window_stalls_;
  }

  /// Folds a block previously cleared by can_absorb_block: equivalent to
  /// `ops` observe() calls of which `detects` reported a detect and whose
  /// stall cycles total `stalls` (all of them returning false).
  void absorb_block(std::uint32_t ops, std::uint64_t detects,
                    std::uint64_t stalls);

  bool in_safe_mode() const { return safe_; }
  SafeMode mode() const { return policy_.safe_mode; }
  std::uint64_t fallback_events() const { return fallbacks_; }
  double expected_detect_rate() const { return expected_; }
  const DegradationPolicy& policy() const { return policy_; }

  /// Re-arms the watchdog and clears window state (not fallback_events).
  void reset();

 private:
  bool evaluate_window();

  double expected_ = 0.0;
  DegradationPolicy policy_;
  bool safe_ = false;
  std::uint64_t fallbacks_ = 0;
  std::uint32_t window_ops_ = 0;
  std::uint64_t window_detects_ = 0;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t cooldown_ops_left_ = 0;
};

}  // namespace gear::core
