#include "core/bitvec.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "core/width.h"

namespace gear::core {

namespace {
std::size_t words_for(int width) {
  return static_cast<std::size_t>((width + 63) / 64);
}
}  // namespace

BitVec::BitVec(int width) : width_(width), words_(words_for(width), 0) {
  assert(width >= 0);
}

BitVec::BitVec(int width, std::uint64_t value) : BitVec(width) {
  if (!words_.empty()) words_[0] = value;
  normalize();
}

BitVec BitVec::from_binary(const std::string& bits) {
  BitVec v(static_cast<int>(bits.size()));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[bits.size() - 1 - i];
    if (c == '1') {
      v.set_bit(static_cast<int>(i), true);
    } else if (c != '0') {
      throw std::invalid_argument("BitVec::from_binary: non-binary character");
    }
  }
  return v;
}

void BitVec::normalize() {
  if (width_ == 0 || words_.empty()) return;
  const int top = width_ % kWordBits;
  if (top != 0) words_.back() &= width_mask(top);
}

bool BitVec::bit(int i) const {
  assert(i >= 0 && i < width_);
  return (words_[static_cast<std::size_t>(i / kWordBits)] >> (i % kWordBits)) & 1ULL;
}

void BitVec::set_bit(int i, bool v) {
  assert(i >= 0 && i < width_);
  const auto w = static_cast<std::size_t>(i / kWordBits);
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (v)
    words_[w] |= mask;
  else
    words_[w] &= ~mask;
}

BitVec BitVec::slice(int lo, int len) const {
  assert(lo >= 0 && len >= 0 && lo + len <= width_);
  BitVec out(len);
  for (int i = 0; i < len; ++i) out.set_bit(i, bit(lo + i));
  return out;
}

void BitVec::set_slice(int lo, const BitVec& src) {
  assert(lo >= 0 && lo + src.width() <= width_);
  for (int i = 0; i < src.width(); ++i) set_bit(lo + i, src.bit(i));
}

std::uint64_t BitVec::to_u64() const { return words_.empty() ? 0 : words_[0]; }

bool BitVec::fits_u64() const {
  for (std::size_t i = 1; i < words_.size(); ++i)
    if (words_[i] != 0) return false;
  return true;
}

BitVec BitVec::add(const BitVec& other, bool carry_in, bool* carry_out) const {
  assert(width_ == other.width_);
  BitVec out(width_);
  std::uint64_t carry = carry_in ? 1 : 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t a = words_[w];
    const std::uint64_t b = other.words_[w];
    const std::uint64_t s1 = a + b;
    const std::uint64_t s2 = s1 + carry;
    out.words_[w] = s2;
    carry = (s1 < a) || (s2 < s1) ? 1 : 0;
  }
  // Carry-out is the bit at position `width_` of the untruncated sum.
  bool cout = false;
  const int top = width_ % kWordBits;
  if (top != 0) {
    cout = (out.words_.back() >> top) & 1ULL;
  } else {
    cout = carry != 0;
  }
  out.normalize();
  if (carry_out) *carry_out = cout;
  return out;
}

BitVec BitVec::sub(const BitVec& other) const {
  assert(width_ == other.width_);
  BitVec negated = ~other;
  return add(negated, /*carry_in=*/true, nullptr);
}

BitVec BitVec::operator&(const BitVec& o) const {
  assert(width_ == o.width_);
  BitVec out(width_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] & o.words_[w];
  return out;
}

BitVec BitVec::operator|(const BitVec& o) const {
  assert(width_ == o.width_);
  BitVec out(width_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] | o.words_[w];
  return out;
}

BitVec BitVec::operator^(const BitVec& o) const {
  assert(width_ == o.width_);
  BitVec out(width_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = words_[w] ^ o.words_[w];
  return out;
}

BitVec BitVec::operator~() const {
  BitVec out(width_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = ~words_[w];
  out.normalize();
  return out;
}

BitVec BitVec::operator<<(int n) const {
  assert(n >= 0);
  BitVec out(width_);
  for (int i = width_ - 1; i >= n; --i) out.set_bit(i, bit(i - n));
  return out;
}

BitVec BitVec::operator>>(int n) const {
  assert(n >= 0);
  BitVec out(width_);
  for (int i = 0; i + n < width_; ++i) out.set_bit(i, bit(i + n));
  return out;
}

bool BitVec::operator==(const BitVec& o) const {
  return width_ == o.width_ && words_ == o.words_;
}

bool BitVec::operator<(const BitVec& o) const {
  assert(width_ == o.width_);
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != o.words_[w]) return words_[w] < o.words_[w];
  }
  return false;
}

bool BitVec::is_zero() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

int BitVec::popcount() const {
  int n = 0;
  for (std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

std::string BitVec::to_binary() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) s.push_back(bit(i) ? '1' : '0');
  return s;
}

std::string BitVec::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  const int nibbles = (width_ + 3) / 4;
  for (int n = nibbles - 1; n >= 0; --n) {
    int v = 0;
    for (int b = 3; b >= 0; --b) {
      const int idx = n * 4 + b;
      v = (v << 1) | ((idx < width_ && bit(idx)) ? 1 : 0);
    }
    s.push_back(digits[v]);
  }
  return s;
}

BitVec BitVec::resized(int new_width) const {
  BitVec out(new_width);
  const int copy = std::min(width_, new_width);
  for (int i = 0; i < copy; ++i) out.set_bit(i, bit(i));
  return out;
}

}  // namespace gear::core
