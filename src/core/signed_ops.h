// Signed (two's-complement) views over the approximate adders.
//
// The hardware adds bit patterns; signedness is interpretation. These
// helpers convert between N-bit two's complement and int64, run signed
// additions through a GeAr adder, and flag signed overflow — needed by
// workloads like SAD residuals and filter taps that operate on signed
// intermediates.
#pragma once

#include <cstdint>

#include "core/adder.h"

namespace gear::core {

/// Interprets the low `bits` of `v` as two's complement (1 <= bits <= 64;
/// the full-width case is the plain uint64 -> int64 bit cast).
std::int64_t to_signed(std::uint64_t v, int bits);

/// Encodes `v` as `bits`-wide two's complement (truncating; bits <= 64).
std::uint64_t from_signed(std::int64_t v, int bits);

struct SignedAddResult {
  std::int64_t value = 0;  ///< result re-interpreted as signed
  bool overflow = false;   ///< two's-complement overflow of the *exact* sum
  bool error_detected = false;
};

/// Adds signed operands through the approximate adder: operands are
/// encoded, added as bit patterns, and the N-bit result decoded. The
/// overflow flag reports whether even the exact sum is unrepresentable in
/// N bits (in which case wrap-around semantics apply to both exact and
/// approximate results).
SignedAddResult signed_add(const GeArAdder& adder, std::int64_t a, std::int64_t b);

/// Signed error of an approximate addition: decoded(approx) -
/// decoded(exact mod 2^N). Zero when the adder made no mistake, even
/// under overflow wrap-around.
std::int64_t signed_error(const GeArAdder& adder, std::int64_t a, std::int64_t b);

}  // namespace gear::core
