#include "core/signed_ops.h"

#include <cassert>

#include "core/width.h"

namespace gear::core {

std::int64_t to_signed(std::uint64_t v, int bits) {
  assert(bits >= 1 && bits <= 64);
  const std::uint64_t mask = width_mask(bits);
  v &= mask;
  const std::uint64_t sign = 1ULL << (bits - 1);
  if (v & sign) {
    // Sign-extend by filling the bits above `bits`; for bits == 64 the
    // fill is empty and the cast alone is the two's-complement value.
    // Equivalent to v - 2^bits for every narrower width, without the
    // 1 << 64 shift that form would need at the top width.
    return static_cast<std::int64_t>(v | ~mask);
  }
  return static_cast<std::int64_t>(v);
}

std::uint64_t from_signed(std::int64_t v, int bits) {
  assert(bits >= 1 && bits <= 64);
  return static_cast<std::uint64_t>(v) & width_mask(bits);
}

SignedAddResult signed_add(const GeArAdder& adder, std::int64_t a, std::int64_t b) {
  const int n = adder.config().n();
  const std::uint64_t ua = from_signed(a, n);
  const std::uint64_t ub = from_signed(b, n);
  const AddResult raw = adder.add(ua, ub);

  SignedAddResult out;
  out.value = to_signed(raw.sum, n);
  out.error_detected = raw.error_detected();
  const std::int64_t exact = a + b;
  const std::int64_t lo = -(static_cast<std::int64_t>(1) << (n - 1));
  const std::int64_t hi = (static_cast<std::int64_t>(1) << (n - 1)) - 1;
  out.overflow = exact < lo || exact > hi;
  return out;
}

std::int64_t signed_error(const GeArAdder& adder, std::int64_t a, std::int64_t b) {
  const int n = adder.config().n();
  const std::uint64_t ua = from_signed(a, n);
  const std::uint64_t ub = from_signed(b, n);
  const std::int64_t approx = to_signed(adder.add_value(ua, ub), n);
  const std::int64_t exact_wrapped = to_signed(ua + ub, n);
  return approx - exact_wrapped;
}

}  // namespace gear::core
