#include "core/adder.h"

#include <cassert>

#include "core/width.h"

namespace gear::core {

namespace {
/// Result-region bits sub-adder j contributes, already shifted into place.
/// The top sub-adder (every layout ends at bit N-1) contributes one extra
/// bit — its window carry-out lands at bit N of the sum. Shared by add()
/// and add_value() so the two paths cannot diverge on custom or relaxed
/// layouts; pinned by Differential.AddMatchesAddValueEveryLayout.
inline std::uint64_t result_bits(const gear::core::SubAdderLayout& s, bool top,
                                 std::uint64_t wsum) {
  const int rel = s.res_lo - s.win_lo;
  const int out_bits = s.result_len() + (top ? 1 : 0);
  return ((wsum >> rel) & width_mask(out_bits)) << s.res_lo;
}
}  // namespace

bool AddResult::error_detected() const {
  for (const auto& s : subs)
    if (s.detect) return true;
  return false;
}

int AddResult::detect_count() const {
  int n = 0;
  for (const auto& s : subs) n += s.detect ? 1 : 0;
  return n;
}

GeArAdder::GeArAdder(GeArConfig config)
    : config_(std::move(config)), mask_(width_mask(config_.n())) {}

AddResult GeArAdder::add(std::uint64_t a, std::uint64_t b, bool carry_in) const {
  a &= mask_;
  b &= mask_;
  AddResult out;
  const auto& layout = config_.layout();
  out.subs.resize(layout.size());

  std::uint64_t sum = 0;
  for (std::size_t j = 0; j < layout.size(); ++j) {
    const auto& s = layout[j];
    const int wlen = s.window_len();
    const std::uint64_t wa = (a >> s.win_lo) & width_mask(wlen);
    const std::uint64_t wb = (b >> s.win_lo) & width_mask(wlen);
    // The external carry-in feeds sub-adder 0 only; every other window
    // keeps its speculative zero carry-in.
    const std::uint64_t wsum = wa + wb + ((j == 0 && carry_in) ? 1 : 0);

    auto& st = out.subs[j];
    st.window_sum = wsum;
    st.carry_out = (wsum >> wlen) & 1ULL;

    // Prediction window all-propagate: bits [win_lo, res_lo) of a^b.
    const int plen = s.prediction_len();
    const std::uint64_t pmask = width_mask(plen);
    st.all_propagate = (((wa ^ wb) & pmask) == pmask);

    sum |= result_bits(s, /*top=*/j + 1 == layout.size(), wsum);
  }

  // Detection: c_p(j) AND c_o(j-1) for j >= 1 (sub-adder 0 is exact).
  for (std::size_t j = 1; j < layout.size(); ++j) {
    out.subs[j].detect = out.subs[j].all_propagate && out.subs[j - 1].carry_out;
  }

  out.sum = sum;
  return out;
}

std::uint64_t GeArAdder::add_value(std::uint64_t a, std::uint64_t b,
                                   bool carry_in) const {
  a &= mask_;
  b &= mask_;
  const auto& layout = config_.layout();
  std::uint64_t sum = 0;
  for (std::size_t j = 0; j < layout.size(); ++j) {
    const auto& s = layout[j];
    const int wlen = s.window_len();
    const std::uint64_t wa = (a >> s.win_lo) & width_mask(wlen);
    const std::uint64_t wb = (b >> s.win_lo) & width_mask(wlen);
    const std::uint64_t wsum = wa + wb + ((j == 0 && carry_in) ? 1 : 0);
    sum |= result_bits(s, /*top=*/j + 1 == layout.size(), wsum);
  }
  return sum;
}

std::uint64_t GeArAdder::exact(std::uint64_t a, std::uint64_t b) const {
  return (a & mask_) + (b & mask_);
}

std::uint64_t GeArAdder::sub_value(std::uint64_t a, std::uint64_t b) const {
  return add_value(a, ~b & mask_, /*carry_in=*/true);
}

}  // namespace gear::core
