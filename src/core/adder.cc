#include "core/adder.h"

#include <cassert>

namespace gear::core {

namespace {
inline std::uint64_t low_mask(int bits) {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}
}  // namespace

bool AddResult::error_detected() const {
  for (const auto& s : subs)
    if (s.detect) return true;
  return false;
}

int AddResult::detect_count() const {
  int n = 0;
  for (const auto& s : subs) n += s.detect ? 1 : 0;
  return n;
}

GeArAdder::GeArAdder(GeArConfig config)
    : config_(std::move(config)), mask_(low_mask(config_.n())) {}

AddResult GeArAdder::add(std::uint64_t a, std::uint64_t b, bool carry_in) const {
  a &= mask_;
  b &= mask_;
  AddResult out;
  const auto& layout = config_.layout();
  out.subs.resize(layout.size());

  std::uint64_t sum = 0;
  for (std::size_t j = 0; j < layout.size(); ++j) {
    const auto& s = layout[j];
    const int wlen = s.window_len();
    const std::uint64_t wa = (a >> s.win_lo) & low_mask(wlen);
    const std::uint64_t wb = (b >> s.win_lo) & low_mask(wlen);
    // The external carry-in feeds sub-adder 0 only; every other window
    // keeps its speculative zero carry-in.
    const std::uint64_t wsum = wa + wb + ((j == 0 && carry_in) ? 1 : 0);

    auto& st = out.subs[j];
    st.window_sum = wsum;
    st.carry_out = (wsum >> wlen) & 1ULL;

    // Prediction window all-propagate: bits [win_lo, res_lo) of a^b.
    const int plen = s.prediction_len();
    const std::uint64_t pmask = low_mask(plen);
    st.all_propagate = (((wa ^ wb) & pmask) == pmask);

    // Result-region bits relative to the window start at res_lo - win_lo.
    const int rel = s.res_lo - s.win_lo;
    const std::uint64_t res = (wsum >> rel) & low_mask(s.result_len());
    sum |= res << s.res_lo;
  }
  // Bit N: carry-out of the top sub-adder.
  sum |= static_cast<std::uint64_t>(out.subs.back().carry_out) << config_.n();

  // Detection: c_p(j) AND c_o(j-1) for j >= 1 (sub-adder 0 is exact).
  for (std::size_t j = 1; j < layout.size(); ++j) {
    out.subs[j].detect = out.subs[j].all_propagate && out.subs[j - 1].carry_out;
  }

  out.sum = sum;
  return out;
}

std::uint64_t GeArAdder::add_value(std::uint64_t a, std::uint64_t b,
                                   bool carry_in) const {
  a &= mask_;
  b &= mask_;
  const auto& layout = config_.layout();
  std::uint64_t sum = 0;
  bool first = true;
  for (const auto& s : layout) {
    const int wlen = s.window_len();
    const std::uint64_t wa = (a >> s.win_lo) & low_mask(wlen);
    const std::uint64_t wb = (b >> s.win_lo) & low_mask(wlen);
    const std::uint64_t wsum = wa + wb + ((first && carry_in) ? 1 : 0);
    first = false;
    const int rel = s.res_lo - s.win_lo;
    sum |= ((wsum >> rel) & low_mask(s.result_len() + (s.res_hi == config_.n() - 1 ? 1 : 0)))
           << s.res_lo;
  }
  return sum;
}

std::uint64_t GeArAdder::exact(std::uint64_t a, std::uint64_t b) const {
  return (a & mask_) + (b & mask_);
}

std::uint64_t GeArAdder::sub_value(std::uint64_t a, std::uint64_t b) const {
  return add_value(a, ~b & mask_, /*carry_in=*/true);
}

}  // namespace gear::core
