#include "core/coverage.h"

namespace gear::core {

std::string family_name(AdderFamily family) {
  switch (family) {
    case AdderFamily::kAcaI: return "ACA-I";
    case AdderFamily::kEtaII: return "ETAII";
    case AdderFamily::kAcaII: return "ACA-II";
    case AdderFamily::kGda: return "GDA";
    case AdderFamily::kCesa: return "CESA";
    case AdderFamily::kGearStrict: return "GeAr (strict)";
    case AdderFamily::kGearRelaxed: return "GeAr";
  }
  return "?";
}

std::optional<GeArConfig> as_aca1(int n, int l) {
  if (l < 2) return std::nullopt;
  return GeArConfig::make(n, 1, l - 1);
}

std::optional<GeArConfig> as_etaii(int n, int segment) {
  if (segment < 1) return std::nullopt;
  return GeArConfig::make(n, segment, segment);
}

std::optional<GeArConfig> as_aca2(int n, int l) {
  if (l < 2 || l % 2 != 0) return std::nullopt;
  return GeArConfig::make(n, l / 2, l / 2);
}

std::optional<GeArConfig> as_gda(int n, int mb, int mc) {
  if (mb < 1 || mc < 1 || mc % mb != 0) return std::nullopt;
  return GeArConfig::make(n, mb, mc);
}

std::optional<GeArConfig> as_cesa(int n, int b, int e) {
  // CESA's aligned blocks impose no Eq. 1 tiling: the top block may be
  // short, which is exactly the relaxed MSB-clamped layout.
  if (b < 1 || e < 1 || e % b != 0) return std::nullopt;
  return GeArConfig::make_relaxed(n, b, e);
}

bool family_supports(AdderFamily family, const GeArConfig& cfg) {
  // Heterogeneous layouts are this library's extension; no family in the
  // paper's comparison (including uniform GeAr) reaches them.
  if (cfg.is_custom()) return false;
  switch (family) {
    case AdderFamily::kAcaI:
      return cfg.r() == 1 && cfg.is_strict();
    case AdderFamily::kEtaII:
    case AdderFamily::kAcaII:
      return cfg.p() == cfg.r() && cfg.is_strict();
    case AdderFamily::kGda:
      return cfg.p() % cfg.r() == 0 && cfg.is_strict();
    case AdderFamily::kCesa:
      return cfg.p() % cfg.r() == 0;
    case AdderFamily::kGearStrict:
      return cfg.is_strict();
    case AdderFamily::kGearRelaxed:
      return true;
  }
  return false;
}

std::vector<int> reachable_p_values(AdderFamily family, int n, int r) {
  std::vector<int> out;
  for (int p = 1; r + p <= n; ++p) {
    auto cfg = GeArConfig::make_relaxed(n, r, p);
    if (cfg && family_supports(family, *cfg)) out.push_back(p);
  }
  return out;
}

int config_count(AdderFamily family, int n, int r) {
  return static_cast<int>(reachable_p_values(family, n, r).size());
}

}  // namespace gear::core
