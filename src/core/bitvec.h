// Arbitrary-width bit vector.
//
// Adder models up to 64 bits operate on std::uint64_t directly for speed;
// BitVec backs everything wider (the netlist simulator's input/output
// buses, >64-bit property tests) with the same bit-addressed semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gear::core {

/// Fixed-width vector of bits with arithmetic helpers. Width is set at
/// construction; all operations preserve it (results are truncated modulo
/// 2^width unless stated otherwise).
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(int width);
  BitVec(int width, std::uint64_t value);

  /// Parses a binary string, MSB first (e.g. "1011" -> 11). Width is the
  /// string length. Throws std::invalid_argument on non-binary characters.
  static BitVec from_binary(const std::string& bits);

  int width() const { return width_; }
  bool empty() const { return width_ == 0; }

  bool bit(int i) const;
  void set_bit(int i, bool v);

  /// Extracts bits [lo, lo+len) as a new BitVec of width len.
  BitVec slice(int lo, int len) const;
  /// Writes `src` into bits [lo, lo+src.width()).
  void set_slice(int lo, const BitVec& src);

  /// Low 64 bits as an integer (exact when width() <= 64).
  std::uint64_t to_u64() const;
  /// True iff the value fits in 64 bits.
  bool fits_u64() const;

  /// Addition modulo 2^width; `carry_out` (optional) receives the carry.
  BitVec add(const BitVec& other, bool carry_in = false,
             bool* carry_out = nullptr) const;
  /// Two's-complement subtraction modulo 2^width.
  BitVec sub(const BitVec& other) const;

  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;
  BitVec operator~() const;
  BitVec operator<<(int n) const;
  BitVec operator>>(int n) const;

  bool operator==(const BitVec& o) const;
  bool operator!=(const BitVec& o) const { return !(*this == o); }
  /// Unsigned comparison; both operands must have equal width.
  bool operator<(const BitVec& o) const;

  bool is_zero() const;
  int popcount() const;
  /// Binary string, MSB first.
  std::string to_binary() const;
  /// Hex string, MSB first, "0x" prefixed.
  std::string to_hex() const;

  /// Widens or truncates to `new_width` (zero-extending).
  BitVec resized(int new_width) const;

 private:
  void normalize();  // clear bits above width_
  static constexpr int kWordBits = 64;
  int width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace gear::core
