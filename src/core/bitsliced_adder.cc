#include "core/bitsliced_adder.h"

#include <cassert>
#include <cstring>

#include "core/width.h"
#include "stats/bitsliced.h"

namespace gear::core {

namespace {

/// Ripple over `len` generate/propagate planes with per-lane carry-in `c`,
/// writing sum planes into sum[0..len) when non-null; returns the
/// carry-out lane word.
inline std::uint64_t ripple(const std::uint64_t* g, const std::uint64_t* p,
                            int len, std::uint64_t c, std::uint64_t* sum) {
  for (int i = 0; i < len; ++i) {
    if (sum) sum[i] = p[i] ^ c;
    c = g[i] | (p[i] & c);
  }
  return c;
}

/// Carry-only ripple (no sum planes): the prediction region of a window
/// contributes only its carry into the result region.
inline std::uint64_t ripple_carry(const std::uint64_t* g,
                                  const std::uint64_t* p, int len,
                                  std::uint64_t c) {
  for (int i = 0; i < len; ++i) c = g[i] | (p[i] & c);
  return c;
}

}  // namespace

BitslicedGearAdder::BitslicedGearAdder(GeArConfig config)
    : config_(std::move(config)) {
  // Same operand-width envelope as the scalar GeArAdder (u64 planes 0..n).
  assert(config_.n() >= 1 && config_.n() <= 63);
}

void BitslicedGearAdder::eval(const std::uint64_t* a, const std::uint64_t* b,
                              int count, std::uint64_t carry_in_lanes,
                              std::uint64_t correction_mask,
                              BitslicedBatch& out, bool with_exact) const {
  const int n = config_.n();
  const auto& layout = config_.layout();
  const int k = config_.k();
  const std::uint64_t live = stats::lane_mask(count);
  carry_in_lanes &= live;

  // Generate/propagate planes shared by the exact ripple and every window
  // (stats::pack_gp: bitwise ops commute with the lane transpose, so g/p
  // are formed on untransposed rows and share one transpose for n <= 32 —
  // the dominant cost of a batch).
  std::uint64_t grows[64], prows[64];
  const std::uint64_t* g = grows;
  const std::uint64_t* p = stats::pack_gp(a, b, count, n, grows, prows);

  // resize, not assign: every plane below is overwritten (approx planes by
  // the per-sub-adder result regions + carry-out, exact planes by the full
  // ripple, detect/corrected[j >= 1] per sub-adder), so zero-filling a
  // reused batch would be pure overhead in the hot MC path.
  out.approx.resize(static_cast<std::size_t>(n) + 1);
  out.detect.resize(static_cast<std::size_t>(k));
  out.corrected.resize(static_cast<std::size_t>(k));
  out.detect[0] = 0;
  out.corrected[0] = 0;

  // Exact reference: full ripple from bit 0 (same carry-in as sub-adder 0).
  if (with_exact) {
    out.exact.resize(static_cast<std::size_t>(n) + 1);
    out.exact[static_cast<std::size_t>(n)] =
        ripple(g, p, n, carry_in_lanes, out.exact.data());
  }

  // Sub-adder windows, ascending. cout_raw is the uncorrected carry-out of
  // the previous window (first-pass detect flags); cout_cur follows
  // corrections (cascade detects and the final sum).
  //
  // Each window splits into its prediction region [win_lo, res_lo) —
  // carry-only — and its result region [res_lo, res_hi], whose sum planes
  // land directly in out.approx. The correction rewrite (both operands'
  // prediction bits -> a|b, window LSB forced to 1 on both) never needs to
  // be materialised: correction only fires on lanes where every prediction
  // bit propagates (corrected ⊆ allp), and on those lanes the rewritten
  // prediction region is a generate chain (a|b == 1 wherever a^b == 1, and
  // the forced LSB generates even when plen == 1), so its carry into the
  // result region is identically 1. Corrected lanes are therefore just a
  // second result-region ripple over the ORIGINAL g/p with carry-in 1.
  // config.cc guarantees plen >= 1 for every sub-adder j >= 1.
  std::uint64_t cout_raw = 0, cout_cur = 0;
  std::uint64_t res_corr[64];
  for (int j = 0; j < k; ++j) {
    const auto& s = layout[static_cast<std::size_t>(j)];
    const int plen = s.prediction_len();
    const int rlen = s.result_len();
    const std::uint64_t* gw = g + s.win_lo;
    const std::uint64_t* pw = p + s.win_lo;
    const std::uint64_t cin = (j == 0) ? carry_in_lanes : 0;

    const std::uint64_t pred_cout = ripple_carry(gw, pw, plen, cin);
    const std::uint64_t raw_cout =
        ripple(g + s.res_lo, p + s.res_lo, rlen, pred_cout,
               out.approx.data() + s.res_lo);

    std::uint64_t cur_cout = raw_cout;
    std::uint64_t corrected = 0;
    if (j >= 1) {
      // Prediction window all-propagate on the *original* operands.
      std::uint64_t allp = live;
      for (int i = 0; i < plen; ++i) allp &= pw[i];
      out.detect[static_cast<std::size_t>(j)] = allp & cout_raw;

      const bool enabled = (correction_mask >> j) & 1ULL;
      corrected = enabled ? (allp & cout_cur) : 0;
      if (corrected != 0) {
        const std::uint64_t corr_cout =
            ripple(g + s.res_lo, p + s.res_lo, rlen, ~0ULL, res_corr);
        cur_cout = (raw_cout & ~corrected) | (corr_cout & corrected);
        // Splice corrected lanes into the result planes.
        for (int i = 0; i < rlen; ++i) {
          std::uint64_t& q = out.approx[static_cast<std::size_t>(s.res_lo + i)];
          q = (q & ~corrected) | (res_corr[i] & corrected);
        }
      }
      out.corrected[static_cast<std::size_t>(j)] = corrected;
    }

    // The top sub-adder contributes its carry-out at plane n
    // (post-correction, as in the scalar Corrector).
    if (j == k - 1) out.approx[static_cast<std::size_t>(n)] = cur_cout;

    cout_raw = raw_cout;
    cout_cur = cur_cout;
  }

  if (with_exact) {
    std::uint64_t err = 0;
    for (int q = 0; q <= n; ++q) {
      err |= out.approx[static_cast<std::size_t>(q)] ^
             out.exact[static_cast<std::size_t>(q)];
    }
    out.error = err & live;
  }
  std::uint64_t any_det = 0, any_corr = 0;
  for (int j = 1; j < k; ++j) {
    any_det |= out.detect[static_cast<std::size_t>(j)];
    any_corr |= out.corrected[static_cast<std::size_t>(j)];
  }
  out.any_detect = any_det & live;
  out.any_corrected = any_corr & live;
}

void BitslicedGearAdder::add_batch(const std::uint64_t* a,
                                   const std::uint64_t* b, std::uint64_t* out,
                                   int count,
                                   std::uint64_t correction_mask) const {
  const int n = config_.n();
  const auto& layout = config_.layout();
  const int k = config_.k();

  std::uint64_t grows[64], prows[64];
  const std::uint64_t* g = grows;
  const std::uint64_t* p = stats::pack_gp(a, b, count, n, grows, prows);

  // Sum planes land straight in the row matrix the closing transpose turns
  // back into lane values; planes above the carry-out must read 0.
  std::uint64_t rows[64];
  std::memset(rows + n + 1, 0,
              static_cast<std::size_t>(63 - n) * sizeof(std::uint64_t));

  // Same ascending single-pass correction as eval(): correcting window j
  // only raises carry-outs, so one pass over the post-correction carry
  // (cout_cur) reproduces the scalar Corrector cascade. First-pass detect
  // words are not needed here — only the lanes that actually correct.
  std::uint64_t cout_cur = 0;
  std::uint64_t res_corr[64];
  const std::uint64_t live = stats::lane_mask(count);
  for (int j = 0; j < k; ++j) {
    const auto& s = layout[static_cast<std::size_t>(j)];
    const int plen = s.prediction_len();
    const int rlen = s.result_len();
    const std::uint64_t* gw = g + s.win_lo;
    const std::uint64_t* pw = p + s.win_lo;

    const std::uint64_t pred_cout = ripple_carry(gw, pw, plen, 0);
    const std::uint64_t raw_cout =
        ripple(g + s.res_lo, p + s.res_lo, rlen, pred_cout, rows + s.res_lo);

    std::uint64_t cur_cout = raw_cout;
    if (j >= 1 && ((correction_mask >> j) & 1ULL) != 0) {
      std::uint64_t allp = live;
      for (int i = 0; i < plen; ++i) allp &= pw[i];
      const std::uint64_t corrected = allp & cout_cur;
      if (corrected != 0) {
        const std::uint64_t corr_cout =
            ripple(g + s.res_lo, p + s.res_lo, rlen, ~0ULL, res_corr);
        cur_cout = (raw_cout & ~corrected) | (corr_cout & corrected);
        for (int i = 0; i < rlen; ++i) {
          std::uint64_t& q = rows[s.res_lo + i];
          q = (q & ~corrected) | (res_corr[i] & corrected);
        }
      }
    }
    if (j == k - 1) rows[n] = cur_cout;
    cout_cur = cur_cout;
  }

  stats::transpose64(rows);
  std::memcpy(out, rows, static_cast<std::size_t>(count) * sizeof(std::uint64_t));
}

void BitslicedGearAdder::unpack_sums(const std::vector<std::uint64_t>& planes,
                                     std::uint64_t* out, int count) const {
  assert(planes.size() == static_cast<std::size_t>(config_.n()) + 1);
  stats::BitslicedLanes::unpack(planes.data(), config_.n() + 1, out, count);
}

}  // namespace gear::core
