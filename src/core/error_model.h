// Error-probability models for GeAr configurations (paper Section 3.2).
//
// Four estimators of P(approximate sum != exact sum) under i.i.d. uniform
// operands, from fastest/most-approximate to slowest/exact:
//
//  * paper_error_probability_first_order — the plain sum of the paper's
//    per-event probabilities (Eq. 5); this is what the paper's tables
//    effectively report, since cross-sub-adder joint terms are tiny.
//  * paper_error_probability — full inclusion-exclusion (Eq. 7) over the
//    paper's R*(k-1) error-generating events, evaluated exactly with a
//    linear DP over sub-adders (joint terms are either zero for conflicting
//    footprints or products for disjoint ones, per Eq. 6).
//  * exact_error_probability — exact probability of the true error event
//    ("prediction window all-propagate AND true carry into the window"),
//    which unlike the paper's model allows the carry to originate
//    arbitrarily far below. Computed by a collapsed-state DP over bit
//    positions with O(k) states per position (DESIGN.md §5e), so
//    arbitrarily deep window overlap is fine. This is the ground truth
//    the paper's model approximates.
//  * exact_error_distribution / exact_error_metrics — the full exact
//    error PMF (Wu-style DP over sub-adder error events) and the closed
//    -form exact ER/MED/NED family derived from it, with no sampling.
//  * mc_error_probability / exhaustive_error_probability — simulation
//    referees (the paper's Table III "by simulation" column uses 10000
//    uniform patterns).
//
// Every estimator also has an input-distribution-aware form taking a
// stats::OperandModel (exact_error_distribution(cfg, model) etc.), which
// conditions the same exact machinery on a workload's operand
// distribution instead of the uniform closed form — see the "Conditioned
// engines" section below.
//
// ## Error-key convention
//
// Every signed error distribution in this module — analytic
// (exact_error_distribution, both overloads), Monte-Carlo
// (mc_error_distribution, all overloads), and deterministic trace replay
// (trace_error_distribution) — keys its entries by the SAME convention:
//
//   key = int64(approximate sum) - int64(exact sum)
//
// so key 0 is an exact result and, because a GeAr approximation only ever
// *misses* carries (it never invents one), every nonzero key is negative
// with |key| the error distance. The analytic engines produce -magnitude
// keys directly from the telescoped decomposition; the simulation paths
// produce int64(approx) - int64(exact) per trial. The
// ErrorModelTrace.KeyConventionDifferential test replays one trace
// through both and asserts entry-identical histograms, pinning the
// convention.
#pragma once

#include <cstdint>

#include "core/adder.h"
#include "core/config.h"
#include "stats/bootstrap.h"
#include "stats/distributions.h"
#include "stats/histogram.h"
#include "stats/operand_model.h"
#include "stats/parallel.h"
#include "stats/pmf.h"
#include "stats/rng.h"

namespace gear::core {

/// Evaluation kernel for the Monte-Carlo drivers. Both kernels consume the
/// RNG in the same order (per trial: a then b) and compute identical
/// per-trial outcomes, so every driver returns bit-identical results under
/// either — kBitsliced packs 64 trials per word (core/bitsliced_adder.h)
/// and is the default; kScalar is the one-trial-at-a-time reference the
/// differential tests pin the kernel against.
enum class McKernel : std::uint8_t {
  kBitsliced,
  kScalar,
};

/// Probability of a propagate (a^b) at one bit of uniform operands.
inline constexpr double kPropProb = 0.5;
/// Probability of a generate (a&b) at one bit of uniform operands.
inline constexpr double kGenProb = 0.25;

/// Sum of the paper's per-event probabilities (first-order union bound).
double paper_error_probability_first_order(const GeArConfig& cfg);

/// Full inclusion-exclusion over the paper's error-generating events
/// (Eqs. 5-7). Exact for the paper's event set; O(k * ceil(P/R)).
double paper_error_probability(const GeArConfig& cfg);

/// Reference implementation of paper_error_probability by explicit subset
/// enumeration (O(2^(k-1))); used to validate the DP. Requires k <= 21.
double paper_error_probability_subsets(const GeArConfig& cfg);

/// Exact P(output != exact sum) under uniform operands, via the collapsed
/// (carry, fresh-window-count) DP — O(N * k) time for any layout,
/// including deep-overlap custom configurations.
double exact_error_probability(const GeArConfig& cfg);

/// Exact signed error distribution (approx - exact) under uniform
/// operands, with the same key convention as mc_error_distribution:
/// key 0 is an exact result, negative keys are error magnitudes (a GeAr
/// approximation never overshoots). Computed by the Wu-style DP over the
/// per-sub-adder run-start events G_j (DESIGN.md §5e); every mass is an
/// exact dyadic rational, so for N <= 10 the masses equal the exhaustive
/// 2^(2N) enumeration frequencies bit-for-bit. Requires N <= 62 (error
/// magnitudes are tracked in 64-bit integers). O(N * k * |support|).
stats::Pmf exact_error_distribution(const GeArConfig& cfg);

/// Closed-form exact error metrics under uniform operands — the scalar
/// summaries of exact_error_distribution, computable in O(N * k) without
/// materializing the PMF support (the G_j events decompose MED into a
/// disjoint per-generate-position sum, and max ED is a max-weight
/// feasible-subset DP). See DESIGN.md §5e.
struct ExactErrorMetrics {
  double error_probability = 0.0;  ///< == exact_error_probability(cfg)
  double med = 0.0;                ///< E[exact - approx] (errors are one-sided)
  double max_ed = 0.0;             ///< worst-case error distance over all inputs
  double ned = 0.0;                ///< med / max_ed (Liang-style NED)
  double ned_range = 0.0;          ///< med / (2^N - 1) (range-normalised NED)
  /// Mean-normalised amplitude accuracy 1 - med / (2^N - 1). Note: the
  /// Kahng ACC_amp averages |error| / exact per input, which needs the
  /// joint (error, exact-sum) distribution; this variant normalises by
  /// the full result range instead and is exact for that definition.
  double acc_amp_mean = 0.0;

  bool operator==(const ExactErrorMetrics&) const = default;
};
ExactErrorMetrics exact_error_metrics(const GeArConfig& cfg);

// ## Conditioned engines (input-distribution-aware, DESIGN.md §5i)
//
// The overloads below condition the exact error machinery on a
// stats::OperandModel instead of assuming uniform operands. A uniform
// model delegates to the uniform functions above and is bit-identical to
// them; a marginal model drives the generalized telescoped-error DP with
// per-bit-position (gen, prop, kill) probabilities; an empirical model is
// evaluated exactly over its (gen, prop) class list — exact for
// arbitrarily correlated operands, because the error is a pure function
// of the gen/prop masks (see telescoped_error_magnitude).

/// The signed-error magnitude |approx - exact| of one operand pair as a
/// pure function of its generate/propagate masks (gen = a & b,
/// prop = a ^ b): the telescoped decomposition evaluated pointwise. For
/// each sub-adder j >= 1 the run-start event G_j fires iff the highest
/// non-propagating bit h below res_lo(j) lies in j's generate region
/// [win_lo(j-1), win_lo(j)) (j == 1: [0, win_lo(1))) and generates, in
/// which case 2^res_lo(j) is missed. This is the per-input ground truth
/// behind both analytic engines; a differential test pins it against
/// GeArAdder on exhaustive and random inputs. Requires N <= 62.
std::uint64_t telescoped_error_magnitude(const GeArConfig& cfg,
                                         std::uint64_t gen, std::uint64_t prop);

/// Exact signed error distribution conditioned on `model` (same key
/// convention as above). kUniform delegates to the uniform overload
/// (bit-identical); kMarginal runs the generalized magnitude DP;
/// kEmpirical enumerates the model's (gen, prop) classes through
/// telescoped_error_magnitude and normalises counts exactly like
/// stats::Pmf::from_histogram, so it equals the exhaustive enumeration
/// over the empirical trace distribution bit-for-bit. Requires N <= 62
/// and model.width() <= N (narrower models are zero-extended).
stats::Pmf exact_error_distribution(const GeArConfig& cfg,
                                    const stats::OperandModel& model);

/// Exact error metrics conditioned on `model`. kUniform delegates to the
/// uniform overload (bit-identical); otherwise the figures derive from
/// exact_error_distribution(cfg, model): error_probability is the total
/// nonzero mass, med the mean |key|, and max_ed the largest |key| with
/// nonzero mass — i.e. the worst case *under the distribution*, which for
/// an empirical model is the worst error the trace can actually hit.
ExactErrorMetrics exact_error_metrics(const GeArConfig& cfg,
                                      const stats::OperandModel& model);

/// Deterministic error distribution of a full trace replay: every
/// recorded pair once, in order, keyed by the module convention. No RNG
/// is involved, and the parallel overload shards the trace by index range
/// with partials merged in shard order, so the result is bit-identical
/// for every executor thread count (§5a contract) — this is the
/// "MC on the same trace" referee the conditioned analytic engines are
/// verified against (they must agree exactly up to FP summation order).
stats::SparseHistogram trace_error_distribution(
    const GeArConfig& cfg, const stats::TraceSource& trace,
    McKernel kernel = McKernel::kBitsliced);

/// Parallel variant; same shard/merge determinism contract as the
/// parallel mc_error_probability, but sharding trace indices (no RNG).
stats::SparseHistogram trace_error_distribution(
    const GeArConfig& cfg, const stats::TraceSource& trace,
    stats::ParallelExecutor& exec,
    std::uint64_t shard_size = stats::ParallelExecutor::kDefaultShardSize,
    McKernel kernel = McKernel::kBitsliced);

/// Monte-Carlo signed error distribution drawing operand pairs from an
/// arbitrary OperandSource (same key convention). Both kernels consume
/// the source in the same order (one next() per trial), so they are
/// entry-identical; driving it with a TraceSource for exactly
/// trace.size() trials replays the trace and equals
/// trace_error_distribution bit-for-bit (pinned by the key-convention
/// differential test).
stats::SparseHistogram mc_error_distribution(
    const GeArConfig& cfg, std::uint64_t trials, stats::OperandSource& source,
    McKernel kernel = McKernel::kBitsliced);

/// Monte-Carlo estimate with a Wilson confidence interval.
struct McErrorEstimate {
  double p = 0.0;
  stats::ConfidenceInterval ci;
  std::uint64_t trials = 0;
  std::uint64_t errors = 0;

  /// Pools another estimate over the same configuration (parallel shard
  /// merge); p and the CI are recomputed from the pooled counts.
  void merge(const McErrorEstimate& other);
};
McErrorEstimate mc_error_probability(const GeArConfig& cfg, std::uint64_t trials,
                                     stats::Rng& rng,
                                     McKernel kernel = McKernel::kBitsliced);

/// Deterministic parallel Monte Carlo: `trials` is split into fixed-size
/// shards, shard i draws from ParallelExecutor::shard_rng(master_seed, i),
/// and the per-shard counts are merged in shard index order. The result is
/// bit-identical for every executor thread count (see DESIGN.md,
/// "Shard/merge determinism contract"); it intentionally differs from the
/// sequential overload above, which consumes the caller's single stream.
McErrorEstimate mc_error_probability(
    const GeArConfig& cfg, std::uint64_t trials, std::uint64_t master_seed,
    stats::ParallelExecutor& exec,
    std::uint64_t shard_size = stats::ParallelExecutor::kDefaultShardSize,
    McKernel kernel = McKernel::kBitsliced);

/// Exhaustive P(error) over all 2^(2N) operand pairs. Requires N <= 12.
double exhaustive_error_probability(const GeArConfig& cfg);

/// Analytic mean error distance E[exact - approx] under uniform operands
/// (an extension beyond the paper, which only models error *rate*).
///
/// Derivation: by linearity, E[exact - approx] = sum_t 2^t *
/// (P(exact_t=1) - P(approx_t=1)). Every result bit t < N has marginal
/// exactly 1/2 in both the exact sum and any windowed approximation
/// (bit t = (a_t ^ b_t) ^ carry, and a_t ^ b_t is an unbiased coin
/// independent of the carry from lower bits), so all terms below bit N
/// cancel and only the carry-out marginals differ:
///   E = 2^N * (P(exact carry-out) - P(top-window carry-out))
///     = 2^(N-1) * (2^(-L_top) - 2^(-N)),
/// with L_top the top sub-adder's window length. Validated exhaustively
/// in the tests.
double analytic_med(const GeArConfig& cfg);

/// Exhaustive mean error distance (N <= 12), the referee for
/// analytic_med.
double exhaustive_med(const GeArConfig& cfg);

/// Monte-Carlo signed error distribution (approx - exact) under uniform
/// operands. Keys are signed error values.
stats::SparseHistogram mc_error_distribution(const GeArConfig& cfg,
                                             std::uint64_t trials, stats::Rng& rng,
                                             McKernel kernel = McKernel::kBitsliced);

/// Parallel variant; same shard/merge contract as the parallel
/// mc_error_probability.
stats::SparseHistogram mc_error_distribution(
    const GeArConfig& cfg, std::uint64_t trials, std::uint64_t master_seed,
    stats::ParallelExecutor& exec,
    std::uint64_t shard_size = stats::ParallelExecutor::kDefaultShardSize,
    McKernel kernel = McKernel::kBitsliced);

/// Probability that exactly `c` sub-adders flag an error simultaneously,
/// estimated by Monte Carlo; index c of the returned vector (size k).
/// Used by the correction-cycle model.
std::vector<double> mc_detect_count_distribution(
    const GeArConfig& cfg, std::uint64_t trials, stats::Rng& rng,
    McKernel kernel = McKernel::kBitsliced);

/// Parallel variant; same shard/merge contract as the parallel
/// mc_error_probability.
std::vector<double> mc_detect_count_distribution(
    const GeArConfig& cfg, std::uint64_t trials, std::uint64_t master_seed,
    stats::ParallelExecutor& exec,
    std::uint64_t shard_size = stats::ParallelExecutor::kDefaultShardSize,
    McKernel kernel = McKernel::kBitsliced);

/// Element-wise pooling of per-shard detect-count tallies. `into` adopts
/// `from`'s size when empty.
void merge_detect_counts(std::vector<std::uint64_t>& into,
                         const std::vector<std::uint64_t>& from);

}  // namespace gear::core
