#include "core/watchdog.h"

#include <cassert>

namespace gear::core {

const char* safe_mode_name(SafeMode mode) {
  switch (mode) {
    case SafeMode::kExactAdd: return "exact-add";
    case SafeMode::kFreezeMask: return "freeze-mask";
    case SafeMode::kFlagApproximate: return "flagged-approximate";
  }
  return "?";
}

Watchdog::Watchdog(double expected_detect_rate, DegradationPolicy policy)
    : expected_(expected_detect_rate), policy_(policy) {
  assert(policy_.window > 0);
}

void Watchdog::reset() {
  safe_ = false;
  window_ops_ = 0;
  window_detects_ = 0;
  window_stalls_ = 0;
  cooldown_ops_left_ = 0;
}

bool Watchdog::observe(bool detected, std::uint64_t stall_cycles) {
  if (safe_) {
    // kFreezeMask latches by design: the whole point is to stop reacting.
    if (policy_.cooldown_windows > 0 && policy_.safe_mode != SafeMode::kFreezeMask) {
      if (--cooldown_ops_left_ == 0) reset();
    }
    return false;
  }

  ++window_ops_;
  window_detects_ += detected ? 1 : 0;
  window_stalls_ += stall_cycles;

  // The stall budget trips immediately: by the time the window closed the
  // cycle budget would already be blown.
  bool trip = window_stalls_ > policy_.stall_budget;
  if (!trip && window_ops_ >= policy_.window) trip = evaluate_window();

  if (window_ops_ >= policy_.window && !trip) {
    window_ops_ = 0;
    window_detects_ = 0;
    window_stalls_ = 0;
  }
  if (trip) {
    safe_ = true;
    ++fallbacks_;
    cooldown_ops_left_ =
        static_cast<std::uint64_t>(policy_.cooldown_windows) * policy_.window;
  }
  return trip;
}

void Watchdog::absorb_block(std::uint32_t ops, std::uint64_t detects,
                            std::uint64_t stalls) {
  assert(can_absorb_block(ops, stalls));
  assert(detects <= ops);
  window_ops_ += ops;
  window_detects_ += detects;
  window_stalls_ += stalls;
}

bool Watchdog::evaluate_window() {
  const double rate = static_cast<double>(window_detects_) /
                      static_cast<double>(window_ops_);
  if (policy_.spike_factor > 0.0 && rate > policy_.spike_factor * expected_) {
    return true;
  }
  if (policy_.floor_factor > 0.0 &&
      expected_ * static_cast<double>(policy_.window) >= 1.0 &&
      rate < policy_.floor_factor * expected_) {
    return true;
  }
  return false;
}

}  // namespace gear::core
