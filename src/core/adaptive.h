// Runtime-adaptive correction control (paper Section 3.3 extension).
//
// The paper provides an error-control select signal "to provide higher
// level of architectural support for configurable error correction".
// This module closes the loop: a controller observes the detected-error
// rate over fixed-size windows and widens or narrows the enabled
// correction mask (MSB-first, per the magnitude ablation) to keep the
// observed rate inside a target band — trading cycles for accuracy at
// run time, per the application's current resilience.
#pragma once

#include <cstdint>
#include <optional>

#include "core/adder.h"
#include "core/config.h"
#include "core/correction.h"
#include "core/watchdog.h"

namespace gear::core {

struct AdaptivePolicy {
  double target_error_rate = 0.01;  ///< residual (uncorrected) error rate
  double hysteresis = 0.5;          ///< narrow when below target*hysteresis
  std::uint32_t window = 256;       ///< additions per adaptation decision
};

class AdaptiveCorrector {
 public:
  AdaptiveCorrector(GeArConfig config, AdaptivePolicy policy);

  /// With a degradation policy the controller additionally runs a
  /// Watchdog over its own detect/correction stream; on a trip it stops
  /// adapting and applies the policy's safe mode (exact bypass, frozen
  /// mask, or flagged 1-cycle approximate adds).
  AdaptiveCorrector(GeArConfig config, AdaptivePolicy policy,
                    DegradationPolicy degradation);

  /// One addition through the current mask; adapts at window boundaries.
  CorrectionResult add(std::uint64_t a, std::uint64_t b);

  bool in_safe_mode() const { return watchdog_ && watchdog_->in_safe_mode(); }

  /// Number of sub-adders currently enabled for correction (MSB-first).
  int enabled_level() const { return level_; }
  std::uint64_t enabled_mask() const { return mask_; }

  struct Stats {
    std::uint64_t additions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t residual_errors = 0;  ///< results that stayed wrong
    int widen_events = 0;
    int narrow_events = 0;
    std::uint64_t fallback_events = 0;  ///< watchdog trips into safe mode
    std::uint64_t safe_mode_ops = 0;    ///< adds served in a safe mode
    double avg_cycles() const {
      return additions ? static_cast<double>(cycles) /
                             static_cast<double>(additions)
                       : 0.0;
    }
    double residual_rate() const {
      return additions ? static_cast<double>(residual_errors) /
                             static_cast<double>(additions)
                       : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

 private:
  void set_level(int level);
  void adapt();

  GeArConfig config_;
  AdaptivePolicy policy_;
  int level_ = 0;          // sub-adders k-level..k-1 enabled
  std::uint64_t mask_ = 0;
  Corrector corrector_;
  Stats stats_;
  std::uint64_t window_errors_ = 0;  // residual errors in current window
  std::uint32_t window_count_ = 0;
  std::optional<Watchdog> watchdog_;
  int per_op_budget_ = -1;
};

}  // namespace gear::core
