// Bitsliced (64-lane) GeAr adder kernel.
//
// Evaluates 64 independent trials of the word-level GeAr model per pass:
// operands are packed bit-position-major (stats::BitslicedLanes), the
// generate/propagate/carry recurrences of every sub-adder window run on
// whole lane words, and the per-sub-adder detect flags plus the paper's
// prediction-window correction re-evaluate lane-parallel. Every lane
// computes exactly what the scalar GeArAdder / Corrector would for the
// same operands (differentially fuzz-tested in test_bitsliced.cc), so the
// Monte-Carlo drivers in error_model.cc and the stream engine can swap
// this kernel in without changing a single reported number.
//
// Correction equivalence: the scalar Corrector repeatedly corrects the
// lowest uncorrected enabled sub-adder whose detect fires on the current
// state. Correcting sub-adder j only changes window j's inputs, hence only
// carry_out(j) and thereby detect(j+1); carry-outs move monotonically
// 0 -> 1, so cascades enable but never suppress downstream detects (pinned
// by the PR-1 cascade regression tests). A single ascending pass that
// corrects each sub-adder at most once is therefore exactly equivalent,
// and that is the lane-parallel form used here.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"

namespace gear::core {

/// Result planes of one 64-lane batch. Plane p of approx/exact holds bit p
/// of every lane's sum (plane n = carry-out); lane words hold one bit per
/// trial. Dead lanes (index >= the batch's count) read 0 everywhere.
struct BitslicedBatch {
  std::vector<std::uint64_t> approx;     ///< n+1 planes, post-correction
  std::vector<std::uint64_t> exact;      ///< n+1 planes, a + b (+ cin)
  std::vector<std::uint64_t> detect;     ///< k words, first-pass flags; [0]=0
  std::vector<std::uint64_t> corrected;  ///< k words, lanes corrected; [0]=0
  std::uint64_t error = 0;          ///< lanes where approx != exact
  std::uint64_t any_detect = 0;     ///< OR of detect[]
  std::uint64_t any_corrected = 0;  ///< OR of corrected[]
};

/// Lane-parallel evaluator for one GeArConfig (N <= 63, like GeArAdder).
class BitslicedGearAdder {
 public:
  explicit BitslicedGearAdder(GeArConfig config);

  const GeArConfig& config() const { return config_; }

  /// Packs `count` <= 64 operand pairs (pair i -> lane i, preserving draw
  /// order) and evaluates approximate sum, exact sum, detect flags and —
  /// for sub-adders enabled in `correction_mask` (Corrector semantics,
  /// bit j; 0 disables correction) — the correction re-evaluation.
  /// `carry_in_lanes` feeds sub-adder 0 and the exact reference, lane-wise.
  /// With `with_exact = false` the exact reference ripple is skipped —
  /// matching the work a scalar add()/Corrector::add() call does — and
  /// out.exact / out.error are left untouched (stale); approx, detect,
  /// corrected and any_* are identical either way.
  void eval(const std::uint64_t* a, const std::uint64_t* b, int count,
            std::uint64_t carry_in_lanes, std::uint64_t correction_mask,
            BitslicedBatch& out, bool with_exact = true) const;

  /// Unpacks lane values (n+1 bits each) of a batch's approx or exact
  /// planes into out[0..count).
  void unpack_sums(const std::vector<std::uint64_t>& planes,
                   std::uint64_t* out, int count) const;

  /// Sums-only fast path backing the adapters' add_batch: writes the
  /// (n+1)-bit post-correction sums of `count` <= 64 pairs to out[0..count),
  /// bit-identical lane-for-lane to eval(..., correction_mask, batch) +
  /// unpack_sums(batch.approx) with zero carry-in, but skips every piece of
  /// bookkeeping a plain add() would not do (no exact ripple, no
  /// detect/corrected words, no error masks, no heap-backed batch): the
  /// sum planes ripple directly into the row matrix the final transpose
  /// unpacks. Safe when out aliases a and/or b (operands are fully packed
  /// before out is written).
  void add_batch(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out, int count,
                 std::uint64_t correction_mask) const;

 private:
  GeArConfig config_;
};

}  // namespace gear::core
