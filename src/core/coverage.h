// Configuration coverage: mapping state-of-the-art approximate adders onto
// GeAr configurations (paper Sections 1.1 / 3.1) and counting each
// family's reachable design points (Fig. 1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/config.h"

namespace gear::core {

/// Families whose accuracy-configurability the paper compares (Fig. 1).
enum class AdderFamily {
  kAcaI,    ///< Verma et al. — R = 1, P = L-1 only
  kEtaII,   ///< Zhu et al. — P = R only
  kAcaII,   ///< Kahng/Kang — P = R only
  kGda,     ///< Ye et al. — P must be a multiple of R (CLA tree granularity)
  kCesa,    ///< carry-estimating simultaneous adder — P a multiple of R,
            ///< but reaches relaxed (MSB-clamped) geometries too, a strict
            ///< superset of GDA's span (see adders::CesaAdder)
  kGearStrict,   ///< GeAr restricted to paper Eq. 1 geometries
  kGearRelaxed,  ///< GeAr with MSB-clamped top sub-adder (full P sweep)
};

std::string family_name(AdderFamily family);

/// GeAr configuration equivalent to ACA-I with sub-adder length `l`.
std::optional<GeArConfig> as_aca1(int n, int l);

/// GeAr configuration equivalent to ETAII with segment length `segment`
/// (segment-sized sum unit fed by a segment-sized carry generator).
std::optional<GeArConfig> as_etaii(int n, int segment);

/// GeAr configuration equivalent to ACA-II with sub-adder length `l`
/// (l must be even; R = P = l/2).
std::optional<GeArConfig> as_aca2(int n, int l);

/// GeAr configuration equivalent to a GDA with uniform sub-adder size M_B
/// and carry-prediction length M_C (M_C must be a multiple of M_B).
std::optional<GeArConfig> as_gda(int n, int mb, int mc);

/// GeAr configuration equivalent to a plain CESA with block width `b` and
/// estimate lookback `e` (`e` a multiple of `b`; relaxed geometries OK).
std::optional<GeArConfig> as_cesa(int n, int b, int e);

/// Whether a GeAr configuration is reachable by the given family.
bool family_supports(AdderFamily family, const GeArConfig& cfg);

/// P values in [1, n-r] reachable by `family` at fixed (n, r) — the data
/// behind Fig. 1's design-space comparison.
std::vector<int> reachable_p_values(AdderFamily family, int n, int r);

/// Convenience: |reachable_p_values|.
int config_count(AdderFamily family, int n, int r);

}  // namespace gear::core
