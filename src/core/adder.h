// Bit-level functional model of the GeAr adder (paper Fig. 2, Eqs. 2-3)
// plus its error-detection signals (Section 3.3).
//
// Semantics: each sub-adder j adds the window slices of A and B with
// carry-in 0. Sub-adder 0 contributes all L bits; sub-adder j >= 1
// contributes its top R bits. The final bit N of the result is the
// carry-out of the top sub-adder's window. Detection for sub-adder j is
// c_p(j) AND c_o(j-1): the prediction window of sub-adder j is exactly the
// top P bits of sub-adder j-1's window, so when all P bits propagate, the
// previous window's carry-out equals the (possibly still approximate)
// carry into the prediction window, which is precisely when the predicted
// carry (0) is wrong.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"

namespace gear::core {

/// Per-sub-adder observability signals produced by one approximate add.
struct SubAdderState {
  std::uint64_t window_sum = 0;  ///< window add incl. carry-out bit
  bool carry_out = false;        ///< c_o(j): carry out of the window top
  bool all_propagate = false;    ///< c_p(j): prediction window all-propagate
  bool detect = false;           ///< error flag: c_p(j) AND c_o(j-1)
};

/// Result of one approximate addition.
struct AddResult {
  std::uint64_t sum = 0;  ///< N+1 bits: approximate sum incl. carry-out
  std::vector<SubAdderState> subs;

  /// True when any sub-adder raised its error-detect flag.
  bool error_detected() const;
  /// Number of sub-adders flagging an error.
  int detect_count() const;
};

/// Functional GeAr adder for operands up to 63 bits.
class GeArAdder {
 public:
  explicit GeArAdder(GeArConfig config);

  const GeArConfig& config() const { return config_; }

  /// Approximate addition of N-bit operands (high bits above N-1 ignored).
  /// `carry_in` feeds sub-adder 0 (exact), enabling two's-complement
  /// subtraction: a - b == add(a, ~b, true) — an extension beyond the
  /// paper, whose model is addition-only.
  AddResult add(std::uint64_t a, std::uint64_t b, bool carry_in = false) const;

  /// Approximate sum only (fast path used by throughput benchmarks).
  std::uint64_t add_value(std::uint64_t a, std::uint64_t b,
                          bool carry_in = false) const;

  /// Approximate two's-complement subtraction a - b (N+1-bit result whose
  /// top bit is the carry-out / NOT-borrow flag, as in hardware).
  std::uint64_t sub_value(std::uint64_t a, std::uint64_t b) const;

  /// Exact N-bit reference sum (N+1 bits incl. carry-out).
  std::uint64_t exact(std::uint64_t a, std::uint64_t b) const;

  /// Mask with the low N bits set.
  std::uint64_t operand_mask() const { return mask_; }

 private:
  GeArConfig config_;
  std::uint64_t mask_;
};

}  // namespace gear::core
