// GeAr adder configuration (N, R, P) and sub-adder geometry.
//
// A GeAr adder (Shafique et al., DAC'15) splits an N-bit addition across k
// sub-adders of length L = R + P. Sub-adder 0 spans bits [0, L-1] and
// contributes all L result bits; sub-adder j >= 1 spans
// [R*j, R*j + L - 1], uses its low P bits only to predict the carry, and
// contributes its top R bits to the result. Eq. 1 of the paper requires
// (N - L) to be divisible by R ("strict" configurations).
//
// The paper's design-space figures (Fig. 1, Fig. 7) additionally sweep P
// over every value in [1, N-R], which includes geometries where Eq. 1 does
// not hold. For those we support "relaxed" configurations: result-region
// boundaries still advance by R, but the top sub-adder is clamped to the
// MSB and may contribute fewer than R result bits. Its carry chain is
// never longer than L, so the delay characteristics are preserved. Strict
// configurations are a special case of the relaxed layout.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gear::core {

/// Bit-range geometry of one sub-adder. All positions are absolute bit
/// indices into the N-bit operands; ranges are inclusive.
struct SubAdderLayout {
  int win_lo = 0;  ///< lowest input bit of the sub-adder window
  int win_hi = 0;  ///< highest input bit of the sub-adder window
  int res_lo = 0;  ///< lowest bit this sub-adder contributes to the sum
  int res_hi = 0;  ///< highest bit this sub-adder contributes to the sum

  int window_len() const { return win_hi - win_lo + 1; }
  int result_len() const { return res_hi - res_lo + 1; }
  /// Number of carry-prediction ("previous") bits in this window.
  int prediction_len() const { return res_lo - win_lo; }

  bool operator==(const SubAdderLayout&) const = default;
};

/// Validated GeAr configuration. Construct via make() / make_relaxed().
class GeArConfig {
 public:
  /// Builds a strict (paper Eq. 1) configuration. Returns std::nullopt if
  /// the parameters are invalid: requires 1 <= R, 1 <= P, L = R+P <= N and
  /// (N - L) % R == 0. (L == N yields the exact single-sub-adder case.)
  static std::optional<GeArConfig> make(int n, int r, int p);

  /// Builds a strict configuration or aborts — for literals in tests and
  /// benchmarks where the parameters are known valid. The abort message
  /// names the violated constraint (see invalid_reason). Prefer make() +
  /// explicit error handling anywhere the parameters come from outside
  /// (CLI flags, campaign sweeps, config files).
  static GeArConfig must(int n, int r, int p);

  /// Human-readable reason make(n, r, p) would fail, or "" when the
  /// parameters form a valid strict configuration. Stable enough to embed
  /// in CLI error messages.
  static std::string invalid_reason(int n, int r, int p);

  /// Builds a relaxed configuration: any 1 <= R, 1 <= P with R+P <= N is
  /// accepted; the top sub-adder is clamped to bit N-1 and may contribute
  /// fewer than R result bits.
  static std::optional<GeArConfig> make_relaxed(int n, int r, int p);

  /// One segment of a heterogeneous configuration: `result_len` sum bits
  /// backed by `pred_len` carry-prediction bits.
  struct Segment {
    int result_len = 0;
    int pred_len = 0;
  };

  /// Builds a heterogeneous configuration (extension beyond the paper's
  /// equal-length sub-adders): sub-adder 0 spans the low `l0` bits; each
  /// subsequent segment contributes its own (R_j, P_j). Constraints:
  /// l0 >= 1, result_len >= 1, pred_len >= 1, segments tile [l0, N), and
  /// window start positions are non-decreasing (pred_{j+1} <= pred_j +
  /// r_{j+1}), which every model in this library relies on. Per-segment
  /// prediction lengths let a designer buy extra accuracy exactly where
  /// the error weight is (the MSB side) — see bench_ext_hetero.
  ///
  /// Canonicalization: when the segment list reproduces a uniform
  /// (relaxed or strict) geometry bit for bit, the returned config *is*
  /// that uniform config — is_custom() is false, name() reads
  /// "GeAr(N,R,P)" and every layout-keyed consumer (DseCache Tier A,
  /// Pareto candidates) shares one entry with the uniform twin.
  static std::optional<GeArConfig> make_custom(int n, int l0,
                                               const std::vector<Segment>& segments);

  /// Builds a heterogeneous configuration or aborts — the custom
  /// counterpart of must(). The abort message names the violated
  /// constraint (see custom_invalid_reason). Used by the heterogeneous
  /// design-space enumerator, whose decoded layouts are valid by
  /// construction.
  static GeArConfig must_custom(int n, int l0,
                                const std::vector<Segment>& segments);

  /// Human-readable reason make_custom(n, l0, segments) would fail, or ""
  /// when the segments form a valid heterogeneous configuration: names
  /// the violated constraint (zero-length segment, window underflow,
  /// window-order monotonicity, tiling gap/overrun) and the offending
  /// segment index. Diagnostics parity with invalid_reason().
  static std::string custom_invalid_reason(int n, int l0,
                                           const std::vector<Segment>& segments);

  int n() const { return n_; }
  /// Nominal R / P / L. For custom (heterogeneous) configurations these
  /// report the *maximum* over segments; use layout() for per-segment
  /// geometry.
  int r() const { return r_; }
  int p() const { return p_; }
  int l() const { return is_custom() ? max_carry_chain() : r_ + p_; }
  /// Number of sub-adders k.
  int k() const { return static_cast<int>(layout_.size()); }
  bool is_strict() const { return strict_; }
  bool is_custom() const { return custom_; }
  /// True when k == 1, i.e. the adder degenerates to an exact L==N adder.
  bool is_exact() const { return k() == 1; }

  const std::vector<SubAdderLayout>& layout() const { return layout_; }
  const SubAdderLayout& sub(int j) const { return layout_.at(static_cast<std::size_t>(j)); }

  /// Longest carry-propagation chain in bits (== max window length).
  int max_carry_chain() const;

  /// "GeAr(R,P)" / "GeAr(N,R,P)" style label used in tables.
  std::string name() const;

  /// Equality canonicalizes through the sub-adder layout: two configs
  /// are equal iff they describe the same geometry, regardless of how
  /// they were constructed (strict, relaxed or custom). The layout fully
  /// determines the adder's behaviour, synthesis result and error model,
  /// so a geometrically identical custom must not double-enter any
  /// layout-keyed structure (DseCache Tier A, Pareto fronts).
  bool operator==(const GeArConfig& o) const {
    return n_ == o.n_ && layout_ == o.layout_;
  }

  /// All strict configurations for an N-bit adder (every valid R, P),
  /// excluding the k == 1 exact degenerate unless include_exact.
  static std::vector<GeArConfig> enumerate(int n, bool include_exact = false);

  /// All strict configurations with a fixed R.
  static std::vector<GeArConfig> enumerate_r(int n, int r, bool include_exact = false);

  /// All relaxed configurations with fixed R and P in [1, n-r] — the sweep
  /// plotted in Fig. 7.
  static std::vector<GeArConfig> enumerate_relaxed_r(int n, int r);

 private:
  GeArConfig(int n, int r, int p, bool strict);
  GeArConfig(int n, std::vector<SubAdderLayout> layout);  // custom
  void build_layout();

  int n_, r_, p_;
  bool strict_;
  bool custom_ = false;
  std::vector<SubAdderLayout> layout_;
};

}  // namespace gear::core
