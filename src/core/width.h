// Shift-safe bit-width helpers.
//
// `(1ULL << n) - 1` is undefined behaviour for n == 64 and a silent wrong
// answer pattern for n == 32 when written against an int — both of which
// show up naturally here since operand widths run all the way to 64
// (BitVec words, bitsliced lane words) and 63 (GeArAdder operands). Every
// width-mask computation in the library funnels through these helpers so
// the edge cases are handled once and pinned by tests (N = 0/32/63/64).
#pragma once

#include <cstdint>

namespace gear::core {

/// Mask with the low `n` bits set; n must be in [0, 64].
constexpr std::uint64_t width_mask(int n) {
  return n <= 0 ? 0ULL : n >= 64 ? ~0ULL : (std::uint64_t{1} << n) - 1;
}

/// 2^n as a double, exact for every n (no shift, no overflow).
constexpr double width_pow2(int n) {
  double v = 1.0;
  for (int i = 0; i < n; ++i) v *= 2.0;
  return v;
}

}  // namespace gear::core
