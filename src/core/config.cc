#include "core/config.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace gear::core {

std::optional<GeArConfig> GeArConfig::make(int n, int r, int p) {
  if (!invalid_reason(n, r, p).empty()) return std::nullopt;
  return GeArConfig(n, r, p, /*strict=*/true);
}

std::string GeArConfig::invalid_reason(int n, int r, int p) {
  char buf[160];
  if (n < 2 || n > 63) {  // models use u64 with carry-out at bit n
    std::snprintf(buf, sizeof buf, "N=%d out of range: need 2 <= N <= 63", n);
    return buf;
  }
  if (r < 1) {
    std::snprintf(buf, sizeof buf, "R=%d invalid: need R >= 1", r);
    return buf;
  }
  if (p < 1) {
    std::snprintf(buf, sizeof buf, "P=%d invalid: need P >= 1", p);
    return buf;
  }
  const int l = r + p;
  if (l > n) {
    std::snprintf(buf, sizeof buf,
                  "sub-adder length L=R+P=%d exceeds N=%d", l, n);
    return buf;
  }
  if ((n - l) % r != 0) {
    std::snprintf(buf, sizeof buf,
                  "(N-L)%%R = (%d-%d)%%%d = %d != 0 (paper Eq. 1); "
                  "use make_relaxed() for non-tiling geometries",
                  n, l, r, (n - l) % r);
    return buf;
  }
  return "";
}

GeArConfig GeArConfig::must(int n, int r, int p) {
  auto cfg = make(n, r, p);
  if (!cfg) {
    std::fprintf(stderr, "GeArConfig::must(N=%d,R=%d,P=%d): %s\n", n, r, p,
                 invalid_reason(n, r, p).c_str());
    std::abort();
  }
  return *cfg;
}

std::optional<GeArConfig> GeArConfig::make_relaxed(int n, int r, int p) {
  if (n < 2 || n > 63) return std::nullopt;
  if (r < 1 || p < 1) return std::nullopt;
  if (r + p > n) return std::nullopt;
  const bool strict = (n - (r + p)) % r == 0;
  return GeArConfig(n, r, p, strict);
}

GeArConfig::GeArConfig(int n, int r, int p, bool strict)
    : n_(n), r_(r), p_(p), strict_(strict) {
  build_layout();
}

GeArConfig::GeArConfig(int n, std::vector<SubAdderLayout> layout)
    : n_(n), r_(0), p_(0), strict_(false), custom_(true), layout_(std::move(layout)) {
  for (std::size_t j = 1; j < layout_.size(); ++j) {
    r_ = std::max(r_, layout_[j].result_len());
    p_ = std::max(p_, layout_[j].prediction_len());
  }
  if (layout_.size() == 1) r_ = layout_[0].result_len();
}

std::string GeArConfig::custom_invalid_reason(
    int n, int l0, const std::vector<Segment>& segments) {
  char buf[192];
  if (n < 2 || n > 63) {  // models use u64 with carry-out at bit n
    std::snprintf(buf, sizeof buf, "N=%d out of range: need 2 <= N <= 63", n);
    return buf;
  }
  if (l0 < 1) {
    std::snprintf(buf, sizeof buf, "l0=%d invalid: need l0 >= 1", l0);
    return buf;
  }
  if (l0 > n) {
    std::snprintf(buf, sizeof buf, "l0=%d exceeds N=%d", l0, n);
    return buf;
  }
  int res_lo = l0;
  int prev_win_lo = 0;
  for (std::size_t j = 0; j < segments.size(); ++j) {
    const Segment& seg = segments[j];
    if (seg.result_len < 1) {
      std::snprintf(buf, sizeof buf,
                    "segment %zu: zero-length result (R=%d, need R >= 1)", j,
                    seg.result_len);
      return buf;
    }
    if (seg.pred_len < 1) {
      std::snprintf(buf, sizeof buf,
                    "segment %zu: zero-length prediction (P=%d, need P >= 1)",
                    j, seg.pred_len);
      return buf;
    }
    const int res_hi = res_lo + seg.result_len - 1;
    const int win_lo = res_lo - seg.pred_len;
    if (res_hi > n - 1) {
      std::snprintf(buf, sizeof buf,
                    "segment %zu: result bits [%d, %d] overrun the MSB of an "
                    "N=%d adder (tiling must end at bit %d)",
                    j, res_lo, res_hi, n, n - 1);
      return buf;
    }
    if (win_lo < 0) {
      std::snprintf(buf, sizeof buf,
                    "segment %zu: prediction P=%d reaches below bit 0 "
                    "(window start %d)",
                    j, seg.pred_len, win_lo);
      return buf;
    }
    if (win_lo < prev_win_lo) {
      std::snprintf(buf, sizeof buf,
                    "segment %zu: window start %d below predecessor's %d — "
                    "violates the non-decreasing window-order invariant "
                    "(pred_{j+1} <= pred_j + r_{j+1})",
                    j, win_lo, prev_win_lo);
      return buf;
    }
    res_lo = res_hi + 1;
    prev_win_lo = win_lo;
  }
  if (res_lo != n) {
    std::snprintf(buf, sizeof buf,
                  "segments tile [%d, %d) but must tile [%d, %d) exactly "
                  "(gap of %d result bit%s)",
                  l0, res_lo, l0, n, n - res_lo, n - res_lo == 1 ? "" : "s");
    return buf;
  }
  return "";
}

std::optional<GeArConfig> GeArConfig::make_custom(
    int n, int l0, const std::vector<Segment>& segments) {
  if (!custom_invalid_reason(n, l0, segments).empty()) return std::nullopt;
  std::vector<SubAdderLayout> layout;
  layout.push_back({0, l0 - 1, 0, l0 - 1});
  int res_lo = l0;
  for (const Segment& seg : segments) {
    const int res_hi = res_lo + seg.result_len - 1;
    layout.push_back({res_lo - seg.pred_len, res_hi, res_lo, res_hi});
    res_lo = res_hi + 1;
  }
  // Canonicalize uniform geometries: every relaxed layout has a shared
  // prediction length P across segments and sub-adder 0 of length R + P,
  // so the only uniform candidate is (R, P) = (l0 - P_0, P_0). If its
  // layout matches bit for bit, return the uniform config itself — the
  // custom was just a different spelling of it.
  if (layout.size() > 1) {
    const int p = layout[1].prediction_len();
    const int r = l0 - p;
    if (r >= 1) {
      const auto uniform = make_relaxed(n, r, p);
      if (uniform && uniform->layout_ == layout) return uniform;
    }
  }
  return GeArConfig(n, std::move(layout));
}

GeArConfig GeArConfig::must_custom(int n, int l0,
                                   const std::vector<Segment>& segments) {
  auto cfg = make_custom(n, l0, segments);
  if (!cfg) {
    std::fprintf(stderr, "GeArConfig::must_custom(N=%d,l0=%d,k=%zu): %s\n", n,
                 l0, segments.size() + 1,
                 custom_invalid_reason(n, l0, segments).c_str());
    std::abort();
  }
  return *cfg;
}

void GeArConfig::build_layout() {
  const int l = r_ + p_;
  layout_.clear();
  // Sub-adder 0 contributes all L bits.
  layout_.push_back({0, l - 1, 0, l - 1});
  // Subsequent result regions advance by R; the top one clamps to N-1.
  int res_lo = l;
  while (res_lo < n_) {
    const int res_hi = std::min(res_lo + r_ - 1, n_ - 1);
    const int win_lo = res_lo - p_;
    layout_.push_back({win_lo, res_hi, res_lo, res_hi});
    res_lo = res_hi + 1;
  }
  assert(layout_.back().res_hi == n_ - 1);
}

int GeArConfig::max_carry_chain() const {
  int m = 0;
  for (const auto& s : layout_) m = std::max(m, s.window_len());
  return m;
}

std::string GeArConfig::name() const {
  char buf[96];
  if (custom_) {
    std::snprintf(buf, sizeof buf, "GeAr-custom(N=%d,k=%d,maxR=%d,maxP=%d)",
                  n_, k(), r_, p_);
  } else {
    std::snprintf(buf, sizeof buf, "GeAr(N=%d,R=%d,P=%d)", n_, r_, p_);
  }
  return buf;
}

std::vector<GeArConfig> GeArConfig::enumerate(int n, bool include_exact) {
  std::vector<GeArConfig> out;
  for (int r = 1; r < n; ++r) {
    auto configs = enumerate_r(n, r, include_exact);
    out.insert(out.end(), configs.begin(), configs.end());
  }
  return out;
}

std::vector<GeArConfig> GeArConfig::enumerate_r(int n, int r, bool include_exact) {
  std::vector<GeArConfig> out;
  for (int p = 1; r + p <= n; ++p) {
    auto cfg = make(n, r, p);
    if (!cfg) continue;
    if (cfg->is_exact() && !include_exact) continue;
    out.push_back(*cfg);
  }
  return out;
}

std::vector<GeArConfig> GeArConfig::enumerate_relaxed_r(int n, int r) {
  std::vector<GeArConfig> out;
  for (int p = 1; r + p <= n; ++p) {
    auto cfg = make_relaxed(n, r, p);
    if (cfg) out.push_back(*cfg);
  }
  return out;
}

}  // namespace gear::core
