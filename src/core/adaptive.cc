#include "core/adaptive.h"

#include <algorithm>
#include <cassert>

#include "core/error_model.h"

namespace gear::core {

namespace {

std::uint64_t msb_first_mask(const GeArConfig& cfg, int level) {
  std::uint64_t mask = 0;
  const int k = cfg.k();
  for (int j = k - level; j <= k - 1; ++j) {
    if (j >= 1) mask |= 1ULL << j;
  }
  return mask;
}

inline std::uint64_t low_mask(int bits) {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

}  // namespace

AdaptiveCorrector::AdaptiveCorrector(GeArConfig config, AdaptivePolicy policy)
    : config_(std::move(config)),
      policy_(policy),
      corrector_(config_, 0) {
  assert(policy_.window > 0);
  set_level(0);
}

AdaptiveCorrector::AdaptiveCorrector(GeArConfig config, AdaptivePolicy policy,
                                     DegradationPolicy degradation)
    : AdaptiveCorrector(std::move(config), policy) {
  watchdog_.emplace(paper_error_probability(config_), degradation);
  per_op_budget_ = degradation.per_op_correction_budget;
}

void AdaptiveCorrector::set_level(int level) {
  level_ = std::clamp(level, 0, config_.k() - 1);
  mask_ = msb_first_mask(config_, level_);
  corrector_ = Corrector(config_, mask_);
}

CorrectionResult AdaptiveCorrector::add(std::uint64_t a, std::uint64_t b) {
  if (watchdog_ && watchdog_->in_safe_mode()) {
    CorrectionResult res;
    switch (watchdog_->mode()) {
      case SafeMode::kExactAdd: {
        const std::uint64_t m = low_mask(config_.n());
        res.sum = (a & m) + (b & m);
        res.cycles = corrector_.worst_case_cycles();
        res.exact = true;
        break;
      }
      case SafeMode::kFreezeMask:
        // Last-known-good mask, adaptation suspended.
        res = corrector_.add(a, b, Corrector::DetectFault{}, per_op_budget_);
        break;
      case SafeMode::kFlagApproximate:
        res = corrector_.add(a, b, Corrector::DetectFault{}, 0);
        break;
    }
    ++stats_.additions;
    ++stats_.safe_mode_ops;
    stats_.cycles += static_cast<std::uint64_t>(res.cycles);
    if (!res.exact) ++stats_.residual_errors;
    watchdog_->observe(false, 0);  // ticks the cooldown only
    return res;
  }

  const CorrectionResult res =
      corrector_.add(a, b, Corrector::DetectFault{}, per_op_budget_);
  ++stats_.additions;
  stats_.cycles += static_cast<std::uint64_t>(res.cycles);
  if (!res.exact) {
    ++stats_.residual_errors;
    ++window_errors_;
  }
  if (watchdog_) {
    if (watchdog_->observe(res.detect_mask != 0,
                           static_cast<std::uint64_t>(res.cycles - 1))) {
      ++stats_.fallback_events;
      window_count_ = 0;
      window_errors_ = 0;
      return res;
    }
  }
  if (++window_count_ >= policy_.window) {
    adapt();
    window_count_ = 0;
    window_errors_ = 0;
  }
  return res;
}

void AdaptiveCorrector::adapt() {
  const double rate = static_cast<double>(window_errors_) /
                      static_cast<double>(policy_.window);
  if (rate > policy_.target_error_rate && level_ < config_.k() - 1) {
    set_level(level_ + 1);
    ++stats_.widen_events;
  } else if (rate < policy_.target_error_rate * policy_.hysteresis &&
             level_ > 0) {
    set_level(level_ - 1);
    ++stats_.narrow_events;
  }
}

}  // namespace gear::core
