#include "core/verilog_gen.h"

#include <sstream>

namespace gear::core {

namespace {

std::string bit_range(int hi, int lo) {
  std::ostringstream os;
  os << "[" << hi << ":" << lo << "]";
  return os.str();
}

/// Emits the shared combinational core: per-sub-adder window sums, result
/// assembly and detect flags. Used by both module flavours.
void emit_core(std::ostringstream& os, const GeArConfig& cfg,
               const std::string& a, const std::string& b,
               const std::string& sum, const std::string& err) {
  const int k = cfg.k();
  for (int j = 0; j < k; ++j) {
    const auto& s = cfg.sub(j);
    const int wlen = s.window_len();
    os << "  wire [" << wlen << ":0] w" << j << " = {1'b0, " << a
       << bit_range(s.win_hi, s.win_lo) << "} + {1'b0, " << b
       << bit_range(s.win_hi, s.win_lo) << "};\n";
  }
  for (int j = 0; j < k; ++j) {
    const auto& s = cfg.sub(j);
    const int rel_lo = s.res_lo - s.win_lo;
    const int rel_hi = s.res_hi - s.win_lo;
    os << "  assign " << sum << bit_range(s.res_hi, s.res_lo) << " = w" << j
       << bit_range(rel_hi, rel_lo) << ";\n";
  }
  os << "  assign " << sum << "[" << cfg.n() << "] = w" << (k - 1) << "["
     << cfg.sub(k - 1).window_len() << "];\n";

  os << "  assign " << err << "[0] = 1'b0;\n";
  for (int j = 1; j < k; ++j) {
    const auto& s = cfg.sub(j);
    const auto& prev = cfg.sub(j - 1);
    // c_p(j): prediction window all-propagate; c_o(j-1): previous carry-out.
    os << "  assign " << err << "[" << j << "] = (&(" << a
       << bit_range(s.res_lo - 1, s.win_lo) << " ^ " << b
       << bit_range(s.res_lo - 1, s.win_lo) << ")) & w" << (j - 1) << "["
       << prev.window_len() << "];\n";
  }
}

}  // namespace

std::string verilog_module_name(const GeArConfig& cfg) {
  std::ostringstream os;
  os << "gear_n" << cfg.n() << "_r" << cfg.r() << "_p" << cfg.p();
  return os.str();
}

std::string generate_verilog(const GeArConfig& cfg) {
  const int n = cfg.n();
  const int k = cfg.k();
  std::ostringstream os;
  os << "// GeAr approximate adder, auto-generated.\n"
     << "// " << cfg.name() << ", k=" << k << ", L=" << cfg.l() << "\n"
     << "module " << verilog_module_name(cfg) << " (\n"
     << "  input  wire [" << (n - 1) << ":0] a,\n"
     << "  input  wire [" << (n - 1) << ":0] b,\n"
     << "  output wire [" << n << ":0] sum,\n"
     << "  output wire [" << (k - 1) << ":0] err\n"
     << ");\n";
  emit_core(os, cfg, "a", "b", "sum", "err");
  os << "endmodule\n";
  return os.str();
}

std::string generate_verilog_with_correction(const GeArConfig& cfg) {
  const int n = cfg.n();
  const int k = cfg.k();
  std::ostringstream os;
  os << "// GeAr approximate adder with configurable error correction,\n"
     << "// auto-generated. One sub-adder corrected per cycle, lowest\n"
     << "// erroneous enabled sub-adder first (paper Section 3.3).\n"
     << "module " << verilog_module_name(cfg) << "_ecc (\n"
     << "  input  wire clk,\n"
     << "  input  wire rst,\n"
     << "  input  wire start,\n"
     << "  input  wire [" << (n - 1) << ":0] a,\n"
     << "  input  wire [" << (n - 1) << ":0] b,\n"
     << "  input  wire [" << (k - 1) << ":0] correct_en,\n"
     << "  output wire [" << n << ":0] sum,\n"
     << "  output reg  done\n"
     << ");\n"
     << "  // Effective operands; correction rewrites one sub-adder's\n"
     << "  // prediction window per cycle.\n"
     << "  reg [" << (n - 1) << ":0] ea, eb;\n"
     << "  reg [" << (k - 1) << ":0] corrected;\n"
     << "  wire [" << (k - 1) << ":0] err;\n";
  emit_core(os, cfg, "ea", "eb", "sum", "err");

  os << "  wire [" << (k - 1) << ":0] pending = err & correct_en & ~corrected;\n";

  // Priority encoder: lowest pending sub-adder.
  os << "  integer i;\n"
     << "  reg [31:0] target;\n"
     << "  always @* begin\n"
     << "    target = " << k << ";\n"
     << "    for (i = " << (k - 1) << "; i >= 1; i = i - 1)\n"
     << "      if (pending[i]) target = i;\n"
     << "  end\n";

  os << "  always @(posedge clk) begin\n"
     << "    if (rst) begin\n"
     << "      done <= 1'b0;\n"
     << "      corrected <= " << k << "'d0;\n"
     << "    end else if (start) begin\n"
     << "      ea <= a;\n"
     << "      eb <= b;\n"
     << "      corrected <= " << k << "'d0;\n"
     << "      done <= 1'b0;\n"
     << "    end else if (!done) begin\n"
     << "      if (target == " << k << ") begin\n"
     << "        done <= 1'b1;\n"
     << "      end else begin\n"
     << "        case (target)\n";
  for (int j = 1; j < k; ++j) {
    const auto& s = cfg.sub(j);
    const int pr_hi = s.res_lo - 1;
    const int pr_lo = s.win_lo;
    os << "          " << j << ": begin\n"
       << "            ea" << bit_range(pr_hi, pr_lo) << " <= (ea"
       << bit_range(pr_hi, pr_lo) << " | eb" << bit_range(pr_hi, pr_lo)
       << ") | " << (pr_hi - pr_lo + 1) << "'d1;\n"
       << "            eb" << bit_range(pr_hi, pr_lo) << " <= (ea"
       << bit_range(pr_hi, pr_lo) << " | eb" << bit_range(pr_hi, pr_lo)
       << ") | " << (pr_hi - pr_lo + 1) << "'d1;\n"
       << "            corrected[" << j << "] <= 1'b1;\n"
       << "          end\n";
  }
  os << "          default: ;\n"
     << "        endcase\n"
     << "      end\n"
     << "    end\n"
     << "  end\n"
     << "endmodule\n";
  return os.str();
}

std::string generate_verilog_testbench(const GeArConfig& cfg, int vectors) {
  const int n = cfg.n();
  const int k = cfg.k();
  const std::string mod = verilog_module_name(cfg);
  std::ostringstream os;
  os << "// Self-checking testbench for " << mod << ", auto-generated.\n"
     << "`timescale 1ns/1ps\n"
     << "module tb_" << mod << ";\n"
     << "  reg  [" << (n - 1) << ":0] a, b;\n"
     << "  wire [" << n << ":0] sum;\n"
     << "  wire [" << (k - 1) << ":0] err;\n"
     << "  reg  [63:0] lfsr = 64'hace1_dead_beef_cafe;\n"
     << "  integer i, mismatches;\n"
     << "  " << mod << " dut(.a(a), .b(b), .sum(sum), .err(err));\n"
     << "  task step_lfsr; begin\n"
     << "    lfsr = {lfsr[62:0], lfsr[63] ^ lfsr[62] ^ lfsr[60] ^ lfsr[59]};\n"
     << "  end endtask\n"
     << "  initial begin\n"
     << "    mismatches = 0;\n"
     << "    for (i = 0; i < " << vectors << "; i = i + 1) begin\n"
     << "      step_lfsr; a = lfsr[" << (n - 1) << ":0];\n"
     << "      step_lfsr; b = lfsr[" << (n - 1) << ":0];\n"
     << "      #1;\n"
     << "      // err == 0 must imply an exact sum.\n"
     << "      if (err == 0 && sum !== ({1'b0, a} + {1'b0, b})) begin\n"
     << "        mismatches = mismatches + 1;\n"
     << "        $display(\"MISMATCH a=%h b=%h sum=%h\", a, b, sum);\n"
     << "      end\n"
     << "    end\n"
     << "    if (mismatches == 0) $display(\"PASS\");\n"
     << "    else $display(\"FAIL %0d\", mismatches);\n"
     << "    $finish;\n"
     << "  end\n"
     << "endmodule\n";
  return os.str();
}

}  // namespace gear::core
