// Operand tracing decorator.
//
// Wraps any adder and records every (a, b) operand pair that flows through
// it. Running a kernel once with a traced exact adder captures the
// kernel's true operand distribution; the trace then drives the accuracy
// metrics for every candidate adder (this is how Table I's image-integral
// operand stream is produced).
#pragma once

#include <vector>

#include "adders/adder.h"
#include "stats/distributions.h"

namespace gear::apps {

class TracingAdder final : public adders::ApproxAdder {
 public:
  explicit TracingAdder(const adders::ApproxAdder& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name() + "+trace"; }
  int width() const override { return inner_.width(); }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override {
    trace_.push_back({a & operand_mask(), b & operand_mask()});
    return inner_.add(a, b);
  }
  bool is_exact() const override { return inner_.is_exact(); }
  int max_carry_chain() const override { return inner_.max_carry_chain(); }

  const std::vector<stats::OperandPair>& trace() const { return trace_; }
  void clear() { trace_.clear(); }

  /// Moves the captured trace into a replayable operand source.
  stats::TraceSource take_source(std::string label) {
    return stats::TraceSource(width(), std::move(trace_), std::move(label));
  }

 private:
  const adders::ApproxAdder& inner_;
  mutable std::vector<stats::OperandPair> trace_;
};

}  // namespace gear::apps
