// Operand tracing decorator.
//
// Wraps any adder and records every (a, b) operand pair that flows through
// it. Running a kernel once with a traced exact adder captures the
// kernel's true operand distribution; the trace then drives the accuracy
// metrics for every candidate adder (this is how Table I's image-integral
// operand stream is produced).
#pragma once

#include <string>
#include <vector>

#include "adders/adder.h"
#include "stats/distributions.h"

namespace gear::apps {

class TracingAdder final : public adders::ApproxAdder {
 public:
  explicit TracingAdder(const adders::ApproxAdder& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name() + "+trace"; }
  int width() const override { return inner_.width(); }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const override {
    trace_.push_back({a & operand_mask(), b & operand_mask()});
    return inner_.add(a, b);
  }
  bool is_exact() const override { return inner_.is_exact(); }
  int max_carry_chain() const override { return inner_.max_carry_chain(); }

  const std::vector<stats::OperandPair>& trace() const { return trace_; }
  void clear() { trace_.clear(); }

  /// Moves the captured trace into a replayable operand source.
  stats::TraceSource take_source(std::string label) {
    return stats::TraceSource(width(), std::move(trace_), std::move(label));
  }

 private:
  const adders::ApproxAdder& inner_;
  mutable std::vector<stats::OperandPair> trace_;
};

/// Which kernel implementation produces the trace. kScalar replays the
/// per-pixel loops (the historical default — existing traces are
/// unchanged); kBatch runs the 64-lane batch kernels, whose per-op order
/// interleaves lanes (the *set* of operand pairs matches the scalar run,
/// the sequence does not — TracingAdder records through the scalar
/// add_batch fallback either way).
enum class KernelPath { kScalar, kBatch };

/// Captures the operand stream of one app kernel run through a traced
/// exact (ripple-carry) adder of `width` bits over deterministic
/// smoothed-noise content: the standard way every bench/test obtains a
/// real workload trace for the distribution-aware error engines.
/// Kernels: "integral" (row prefix sums), "sad" (full-search motion
/// estimation), "lpf" (3x3 low-pass), "sobel" (gradient magnitude;
/// width >= 12). The same (kernel, width, img_w, img_h, seed, path)
/// always yields the same trace. Throws std::invalid_argument on an
/// unknown kernel name.
stats::TraceSource capture_kernel_trace(const std::string& kernel, int width,
                                        int img_w, int img_h,
                                        std::uint64_t seed,
                                        KernelPath path = KernelPath::kScalar);

}  // namespace gear::apps
