// Grayscale image container for the paper's application workloads
// (Image Integral, SAD, LPF). Pixels are 16-bit to cover both 8-bit image
// data and intermediate kernel values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gear::apps {

class Image {
 public:
  Image() = default;
  Image(int width, int height, std::uint16_t fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  std::uint16_t at(int x, int y) const;
  void set(int x, int y, std::uint16_t v);

  /// Clamped access (border replication) for convolution kernels.
  std::uint16_t at_clamped(int x, int y) const;

  const std::vector<std::uint16_t>& pixels() const { return px_; }

  /// Raw row-major storage (index y * width + x). The batch kernels gather
  /// and scatter through this to keep per-lane pixel access inline; the
  /// scalar kernels keep using at()/set().
  const std::uint16_t* data() const { return px_.data(); }
  std::uint16_t* data() { return px_.data(); }

  bool operator==(const Image& o) const = default;

  /// Plain-text PGM (P2) serialization, for eyeballing example outputs.
  std::string to_pgm() const;

 private:
  int width_ = 0, height_ = 0;
  std::vector<std::uint16_t> px_;
};

}  // namespace gear::apps
