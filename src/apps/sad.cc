#include "apps/sad.h"

#include <cstdlib>

#include "adders/exact.h"

namespace gear::apps {

std::uint64_t block_sad(const Image& ref, const Image& cand, int bx, int by,
                        int bw, int bh, int dx, int dy,
                        const adders::ApproxAdder& adder) {
  const std::uint64_t mask = adder.operand_mask();
  std::uint64_t acc = 0;
  for (int y = 0; y < bh; ++y) {
    for (int x = 0; x < bw; ++x) {
      const int rv = ref.at_clamped(bx + x, by + y);
      const int cv = cand.at_clamped(bx + x + dx, by + y + dy);
      const std::uint64_t diff = static_cast<std::uint64_t>(std::abs(rv - cv));
      acc = adder.add(acc, diff) & mask;
    }
  }
  return acc;
}

SadMatch sad_search(const Image& ref, const Image& cand, int bx, int by,
                    int bw, int bh, int range, const adders::ApproxAdder& adder) {
  SadMatch best;
  bool first = true;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      const std::uint64_t sad =
          block_sad(ref, cand, bx, by, bw, bh, dx, dy, adder);
      if (first || sad < best.sad) {
        best = {dx, dy, sad};
        first = false;
      }
    }
  }
  return best;
}

double sad_match_rate(const Image& ref, const Image& cand, int bw, int bh,
                      int range, const adders::ApproxAdder& adder) {
  const adders::RcaAdder exact(adder.width());
  int total = 0;
  int matched = 0;
  for (int by = 0; by + bh <= ref.height(); by += bh) {
    for (int bx = 0; bx + bw <= ref.width(); bx += bw) {
      const SadMatch approx = sad_search(ref, cand, bx, by, bw, bh, range, adder);
      const SadMatch truth = sad_search(ref, cand, bx, by, bw, bh, range, exact);
      ++total;
      if (approx.dx == truth.dx && approx.dy == truth.dy) ++matched;
    }
  }
  return total ? static_cast<double>(matched) / total : 1.0;
}

}  // namespace gear::apps
