#include "apps/image.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace gear::apps {

Image::Image(int width, int height, std::uint16_t fill)
    : width_(width), height_(height), px_(pixel_count(), fill) {
  assert(width >= 0 && height >= 0);
}

std::uint16_t Image::at(int x, int y) const {
  assert(x >= 0 && x < width_ && y >= 0 && y < height_);
  return px_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
             static_cast<std::size_t>(x)];
}

void Image::set(int x, int y, std::uint16_t v) {
  assert(x >= 0 && x < width_ && y >= 0 && y < height_);
  px_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
      static_cast<std::size_t>(x)] = v;
}

std::uint16_t Image::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

std::string Image::to_pgm() const {
  std::ostringstream os;
  std::uint16_t maxv = 1;
  for (std::uint16_t p : px_) maxv = std::max(maxv, p);
  os << "P2\n" << width_ << " " << height_ << "\n" << maxv << "\n";
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      os << at(x, y) << (x + 1 == width_ ? '\n' : ' ');
    }
  }
  return os.str();
}

}  // namespace gear::apps
