// Low-pass filter (paper Section 4.4, Fig. 9c): 3x3 box blur whose
// 8-operand accumulation runs through the adder under test, followed by
// an exact divide-by-9 (the divider is not an adder instance).
#pragma once

#include "adders/adder.h"
#include "apps/image.h"

namespace gear::apps {

/// 3x3 box low-pass filter with border replication.
Image lpf3x3(const Image& img, const adders::ApproxAdder& adder);

/// Separable [1 2 1]/4 binomial low-pass (two passes), additions through
/// `adder`; a second LPF variant for robustness checks.
Image lpf_binomial(const Image& img, const adders::ApproxAdder& adder);

}  // namespace gear::apps
