// Cycle-accurate stream engine: a single-issue datapath around a GeAr
// adder with the paper's multi-cycle error correction.
//
// The paper's Table IV converts error probability into execution time
// analytically (best/average/worst brackets). This engine measures it:
// one addition issues per cycle; when correction is enabled and the
// detect logic fires, the pipeline stalls one cycle per corrected
// sub-adder (paper Section 3.3). Running a real operand stream through
// the engine yields the empirical cycles-per-op the brackets are supposed
// to contain.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/bitsliced_adder.h"
#include "core/config.h"
#include "core/correction.h"
#include "core/watchdog.h"
#include "stats/distributions.h"
#include "stats/parallel.h"

namespace gear::apps {

struct StreamStats {
  std::uint64_t operations = 0;
  std::uint64_t cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t corrected_ops = 0;  ///< ops that needed >= 1 correction
  std::uint64_t wrong_results = 0; ///< residual errors after correction
  std::uint64_t fallback_events = 0;  ///< watchdog trips into safe mode
  std::uint64_t safe_mode_ops = 0;    ///< ops served while in a safe mode
  std::uint64_t flagged_ops = 0;      ///< safe-mode ops flagged approximate
  std::uint64_t flagged_wrong_results = 0;  ///< wrong but flagged (not silent)

  /// One watchdog window that saw degradation. fallback_events /
  /// safe_mode_ops are merged per shard into the totals above, which says
  /// *how much* degradation a run suffered but not *when*; these entries
  /// say when. `start_op` is the op index of the window's first op within
  /// the merged stream (per-shard windows are offset by the shard's base
  /// op count during merge, so a window never spans shards — windows are
  /// a per-watchdog notion and watchdogs are per-shard, §5a). Only
  /// windows with at least one fallback or safe-mode op are recorded, so
  /// the vector stays small on healthy streams.
  struct WindowDegradation {
    std::uint64_t start_op = 0;
    std::uint64_t fallback_events = 0;
    std::uint64_t safe_mode_ops = 0;

    bool operator==(const WindowDegradation&) const = default;
  };
  std::vector<WindowDegradation> degraded_windows;

  /// Whole-stats equality — the differential tests pin the batched
  /// guarded path against the scalar one counter-for-counter.
  bool operator==(const StreamStats&) const = default;

  /// Pools another shard's counters into this one (parallel merge). All
  /// fields are additive (degraded_windows concatenates with op-index
  /// offsets), so merging shards in index order reproduces the sequential
  /// canonical run exactly.
  void merge(const StreamStats& other);

  double cycles_per_op() const {
    return operations ? static_cast<double>(cycles) /
                            static_cast<double>(operations)
                      : 0.0;
  }
  /// Wall-clock seconds at the given clock period.
  double seconds(double period_ns) const {
    return static_cast<double>(cycles) * period_ns * 1e-9;
  }
};

class StreamAdderEngine {
 public:
  /// `correction_mask` as in core::Corrector; 0 disables correction
  /// entirely (pure 1-cycle approximate adds).
  StreamAdderEngine(core::GeArConfig cfg, std::uint64_t correction_mask);

  /// With a degradation policy, every run carries a core::Watchdog that
  /// compares the observed detect rate against the analytic model and
  /// enforces the stall budget; on a trip the run degrades to the
  /// policy's safe mode instead of silently streaming on (see DESIGN.md,
  /// "Graceful degradation"). Watchdog state is per-run (and per-shard in
  /// the parallel overload), keeping run() const and deterministic.
  StreamAdderEngine(core::GeArConfig cfg, std::uint64_t correction_mask,
                    core::DegradationPolicy degradation);

  /// Injects a persistent fault into the detection network for every
  /// subsequent op: sub-adder `fault.sub_adder`'s detect flag reads
  /// `fault.forced_value` (a stuck flag line, or a campaign's transient
  /// replayed over a window). Used by resilience tests and benchmarks.
  void inject_detect_fault(const core::Corrector::DetectFault& fault) {
    fault_ = fault;
  }
  void clear_detect_fault() { fault_ = core::Corrector::DetectFault{}; }

  /// Builds a shard-local operand source from that shard's RNG stream.
  using SourceFactory =
      std::function<std::unique_ptr<stats::OperandSource>(stats::Rng)>;

  /// Feeds `ops` operand pairs from `source`; returns per-run stats.
  ///
  /// All run() overloads take a bitsliced fast path (64 ops per
  /// core::BitslicedGearAdder pass) whenever no degradation policy and no
  /// injected detect fault are active — those need the scalar per-op
  /// watchdog/fault plumbing. Operands are drawn from the source in the
  /// same per-op order either way and every counter is additive over ops,
  /// so the stats are bit-identical to the scalar loop.
  StreamStats run(stats::OperandSource& source, std::uint64_t ops) const;

  /// Feeds an explicit operand list (e.g. a traced kernel).
  StreamStats run(const std::vector<stats::OperandPair>& operands) const;

  /// Serving-layer entry point: runs `count` operand pairs and writes each
  /// op's final (post-correction / safe-mode) sum — N+1 bits including the
  /// carry-out — into sums_out[0..count). Accounting is identical to
  /// run(operands).
  ///
  /// `watchdog` lets a caller persist degradation state *across* calls
  /// (the multi-tenant service feeds one long-lived watchdog per tenant,
  /// whereas run() creates a fresh per-run watchdog): when non-null the
  /// scalar feed path is used with exactly that watchdog; when null the
  /// call behaves like run() (bitsliced fast path when possible, fresh
  /// internal watchdog otherwise). Because every lane/op is independent,
  /// splitting a stream across successive calls at any boundaries yields
  /// bit-identical sums and additive stats — the property the service's
  /// deadline-sliced execution relies on.
  StreamStats run_with_sums(const stats::OperandPair* operands,
                            std::size_t count, std::uint64_t* sums_out,
                            core::Watchdog* watchdog = nullptr) const;

  /// Fresh watchdog configured from this engine's degradation policy
  /// (std::nullopt without one) — public so callers that persist watchdog
  /// state across run_with_sums calls can mint one per tenant/stream.
  std::optional<core::Watchdog> make_watchdog() const;

  /// Deterministic parallel run: `ops` is split into fixed-size shards;
  /// shard i streams from make_source(ParallelExecutor::shard_rng(
  /// master_seed, i)) and the per-shard stats merge in shard index order,
  /// so the result is bit-identical for every executor thread count (see
  /// DESIGN.md, "Shard/merge determinism contract").
  StreamStats run(const SourceFactory& make_source, std::uint64_t ops,
                  std::uint64_t master_seed, stats::ParallelExecutor& exec,
                  std::uint64_t shard_size =
                      stats::ParallelExecutor::kDefaultShardSize) const;

  const core::Corrector& corrector() const { return corrector_; }
  bool degradation_enabled() const { return degradation_.has_value(); }

  /// Forces every run onto the scalar per-op path (disables both the
  /// plain and the guarded bitsliced fast paths). Benchmark referee knob:
  /// lets bench_service race the batched guarded path against the exact
  /// same engine on the legacy path and assert bit-identical responses.
  void force_scalar_path(bool force) { force_scalar_ = force; }
  bool scalar_path_forced() const { return force_scalar_; }

 private:
  /// Accounts one op; writes its final sum to *sum_out when non-null.
  void feed(StreamStats& stats, core::Watchdog* watchdog, std::uint64_t a,
            std::uint64_t b, std::uint64_t* sum_out = nullptr) const;
  /// True when runs may use the bitsliced batch path (no per-op watchdog
  /// or injected detect fault to thread through).
  bool can_batch() const {
    return !force_scalar_ && !degradation_ && !fault_.active();
  }
  /// True when watchdog-guarded runs may use the windowed batch path
  /// (§5j): an injected detect fault needs the scalar fault plumbing, and
  /// a binding per-op correction budget (< k-1, the most corrections one
  /// op can need) changes sums in a way the single-pass bitsliced
  /// correction cannot reproduce.
  bool can_batch_guarded() const {
    const int budget = degradation_ ? degradation_->per_op_correction_budget : -1;
    return !force_scalar_ && !fault_.active() &&
           (budget < 0 || budget >= corrector_.config().k() - 1);
  }
  /// Feeds `count` ops through the guarded windowed batch path: 64-lane
  /// bitsliced evaluation, watchdog decisions absorbed a block at a time
  /// when provably decision-free, replayed per-op from the lane data
  /// otherwise; safe-mode ops serve through the scalar feed(). Pinned
  /// bit-identical (sums and stats) to feeding each op through feed().
  void feed_guarded(StreamStats& stats, core::Watchdog& watchdog,
                    const stats::OperandPair* operands, std::size_t count,
                    std::uint64_t* sums_out) const;
  /// Accounts one 64-lane batch of ops; `batch` is caller-owned scratch.
  /// When `sums_out` is non-null the per-lane post-correction sums are
  /// unpacked into sums_out[0..count).
  void feed_block(StreamStats& stats, core::BitslicedBatch& batch,
                  const std::uint64_t* a, const std::uint64_t* b, int count,
                  std::uint64_t* sums_out = nullptr) const;

  core::Corrector corrector_;
  core::BitslicedGearAdder bitsliced_;
  std::optional<core::DegradationPolicy> degradation_;
  double expected_detect_rate_ = 0.0;
  core::Corrector::DetectFault fault_;
  bool force_scalar_ = false;
};

}  // namespace gear::apps
