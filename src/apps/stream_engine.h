// Cycle-accurate stream engine: a single-issue datapath around a GeAr
// adder with the paper's multi-cycle error correction.
//
// The paper's Table IV converts error probability into execution time
// analytically (best/average/worst brackets). This engine measures it:
// one addition issues per cycle; when correction is enabled and the
// detect logic fires, the pipeline stalls one cycle per corrected
// sub-adder (paper Section 3.3). Running a real operand stream through
// the engine yields the empirical cycles-per-op the brackets are supposed
// to contain.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/correction.h"
#include "stats/distributions.h"
#include "stats/parallel.h"

namespace gear::apps {

struct StreamStats {
  std::uint64_t operations = 0;
  std::uint64_t cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t corrected_ops = 0;  ///< ops that needed >= 1 correction
  std::uint64_t wrong_results = 0; ///< residual errors after correction

  /// Pools another shard's counters into this one (parallel merge). All
  /// fields are additive, so merging shards in index order reproduces the
  /// sequential canonical run exactly.
  void merge(const StreamStats& other);

  double cycles_per_op() const {
    return operations ? static_cast<double>(cycles) /
                            static_cast<double>(operations)
                      : 0.0;
  }
  /// Wall-clock seconds at the given clock period.
  double seconds(double period_ns) const {
    return static_cast<double>(cycles) * period_ns * 1e-9;
  }
};

class StreamAdderEngine {
 public:
  /// `correction_mask` as in core::Corrector; 0 disables correction
  /// entirely (pure 1-cycle approximate adds).
  StreamAdderEngine(core::GeArConfig cfg, std::uint64_t correction_mask);

  /// Builds a shard-local operand source from that shard's RNG stream.
  using SourceFactory =
      std::function<std::unique_ptr<stats::OperandSource>(stats::Rng)>;

  /// Feeds `ops` operand pairs from `source`; returns per-run stats.
  StreamStats run(stats::OperandSource& source, std::uint64_t ops) const;

  /// Feeds an explicit operand list (e.g. a traced kernel).
  StreamStats run(const std::vector<stats::OperandPair>& operands) const;

  /// Deterministic parallel run: `ops` is split into fixed-size shards;
  /// shard i streams from make_source(ParallelExecutor::shard_rng(
  /// master_seed, i)) and the per-shard stats merge in shard index order,
  /// so the result is bit-identical for every executor thread count (see
  /// DESIGN.md, "Shard/merge determinism contract").
  StreamStats run(const SourceFactory& make_source, std::uint64_t ops,
                  std::uint64_t master_seed, stats::ParallelExecutor& exec,
                  std::uint64_t shard_size =
                      stats::ParallelExecutor::kDefaultShardSize) const;

  const core::Corrector& corrector() const { return corrector_; }

 private:
  void feed(StreamStats& stats, std::uint64_t a, std::uint64_t b) const;
  core::Corrector corrector_;
};

}  // namespace gear::apps
