// Sum of Absolute Differences (paper Section 4.4, Fig. 9b).
//
// Block SAD accumulates |a - b| over a block with the adder under test
// (the per-pixel absolute difference itself is a subtractor, kept exact).
// sad_search runs a full-search motion estimation and reports the best
// displacement — the application-level question is whether an approximate
// accumulator still finds the same (or an equally good) match.
#pragma once

#include <cstdint>
#include <vector>

#include "adders/adder.h"
#include "apps/image.h"

namespace gear::apps {

/// SAD of the `bw` x `bh` block at (bx, by) in `ref` against the block at
/// (bx+dx, by+dy) in `cand` (clamped), accumulated through `adder`.
std::uint64_t block_sad(const Image& ref, const Image& cand, int bx, int by,
                        int bw, int bh, int dx, int dy,
                        const adders::ApproxAdder& adder);

struct SadMatch {
  int dx = 0, dy = 0;
  std::uint64_t sad = 0;
};

/// Full search over displacements in [-range, range]^2; ties resolved to
/// the first (raster-order) candidate for determinism.
SadMatch sad_search(const Image& ref, const Image& cand, int bx, int by,
                    int bw, int bh, int range, const adders::ApproxAdder& adder);

/// Fraction of blocks (tiled `bw` x `bh`) whose best displacement found
/// with `adder` matches the one found with an exact accumulator.
double sad_match_rate(const Image& ref, const Image& cand, int bw, int bh,
                      int range, const adders::ApproxAdder& adder);

}  // namespace gear::apps
