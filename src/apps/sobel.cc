#include "apps/sobel.h"

#include <algorithm>
#include <cstdlib>

#include "adders/exact.h"
#include "core/signed_ops.h"

namespace gear::apps {

namespace {

/// Signed accumulate through the (unsigned bit-pattern) adder.
std::int64_t acc_add(const adders::ApproxAdder& adder, std::int64_t a,
                     std::int64_t b) {
  const int n = adder.width();
  const std::uint64_t ua = core::from_signed(a, n);
  const std::uint64_t ub = core::from_signed(b, n);
  return core::to_signed(adder.add(ua, ub), n);
}

}  // namespace

Image sobel(const Image& img, const adders::ApproxAdder& adder) {
  Image out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      auto px = [&](int dx, int dy) {
        return static_cast<std::int64_t>(img.at_clamped(x + dx, y + dy));
      };
      // Gx = (p(+1,-1) + 2 p(+1,0) + p(+1,+1)) - (p(-1,-1) + 2 p(-1,0) + p(-1,+1))
      std::int64_t right = acc_add(adder, px(1, -1), px(1, 0));
      right = acc_add(adder, right, px(1, 0));
      right = acc_add(adder, right, px(1, 1));
      std::int64_t left = acc_add(adder, px(-1, -1), px(-1, 0));
      left = acc_add(adder, left, px(-1, 0));
      left = acc_add(adder, left, px(-1, 1));
      const std::int64_t gx = acc_add(adder, right, -left);

      std::int64_t bottom = acc_add(adder, px(-1, 1), px(0, 1));
      bottom = acc_add(adder, bottom, px(0, 1));
      bottom = acc_add(adder, bottom, px(1, 1));
      std::int64_t top = acc_add(adder, px(-1, -1), px(0, -1));
      top = acc_add(adder, top, px(0, -1));
      top = acc_add(adder, top, px(1, -1));
      const std::int64_t gy = acc_add(adder, bottom, -top);

      const std::int64_t mag = acc_add(adder, std::abs(gx), std::abs(gy));
      out.set(x, y, static_cast<std::uint16_t>(std::clamp<std::int64_t>(mag, 0, 65535)));
    }
  }
  return out;
}

double sobel_classification_agreement(const Image& img,
                                      const adders::ApproxAdder& adder,
                                      int threshold) {
  const adders::RcaAdder exact(adder.width());
  const Image ref = sobel(img, exact);
  const Image approx = sobel(img, adder);
  std::size_t agree = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const bool e1 = ref.at(x, y) >= threshold;
      const bool e2 = approx.at(x, y) >= threshold;
      if (e1 == e2) ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(img.pixel_count());
}

}  // namespace gear::apps
