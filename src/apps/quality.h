// Application-level quality metrics.
#pragma once

#include "apps/image.h"

namespace gear::apps {

/// All three metrics from one traversal. The accumulation order per
/// metric is the same y-then-x scan the individual functions always
/// used, so every field is bit-identical to the standalone calls
/// (pinned by the fused-quality regression test).
struct ImageQuality {
  /// Peak signal-to-noise ratio in dB against an 8-bit peak (255);
  /// +infinity for identical images.
  double psnr = 0.0;
  /// Mean absolute pixel error.
  double mean_abs_error = 0.0;
  /// Fraction of pixels that match exactly.
  double exact_rate = 1.0;
};

/// Computes PSNR, MAE and exact-match rate in a single pass over the
/// image pair.
ImageQuality image_quality(const Image& ref, const Image& test);

/// Peak signal-to-noise ratio in dB against an 8-bit peak (255). Returns
/// +infinity for identical images.
double psnr(const Image& ref, const Image& test);

/// Mean absolute pixel error.
double mean_abs_pixel_error(const Image& ref, const Image& test);

/// Fraction of pixels that match exactly.
double exact_pixel_rate(const Image& ref, const Image& test);

}  // namespace gear::apps
