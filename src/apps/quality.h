// Application-level quality metrics.
#pragma once

#include "apps/image.h"

namespace gear::apps {

/// Peak signal-to-noise ratio in dB against an 8-bit peak (255). Returns
/// +infinity for identical images.
double psnr(const Image& ref, const Image& test);

/// Mean absolute pixel error.
double mean_abs_pixel_error(const Image& ref, const Image& test);

/// Fraction of pixels that match exactly.
double exact_pixel_rate(const Image& ref, const Image& test);

}  // namespace gear::apps
