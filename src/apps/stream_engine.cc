#include "apps/stream_engine.h"

namespace gear::apps {

StreamAdderEngine::StreamAdderEngine(core::GeArConfig cfg,
                                     std::uint64_t correction_mask)
    : corrector_(std::move(cfg), correction_mask) {}

void StreamStats::merge(const StreamStats& other) {
  operations += other.operations;
  cycles += other.cycles;
  stall_cycles += other.stall_cycles;
  corrected_ops += other.corrected_ops;
  wrong_results += other.wrong_results;
}

void StreamAdderEngine::feed(StreamStats& stats, std::uint64_t a,
                             std::uint64_t b) const {
  const core::CorrectionResult res = corrector_.add(a, b);
  ++stats.operations;
  stats.cycles += static_cast<std::uint64_t>(res.cycles);
  stats.stall_cycles += static_cast<std::uint64_t>(res.cycles - 1);
  if (!res.corrected.empty()) ++stats.corrected_ops;
  if (!res.exact) ++stats.wrong_results;
}

StreamStats StreamAdderEngine::run(stats::OperandSource& source,
                                   std::uint64_t ops) const {
  StreamStats stats;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto [a, b] = source.next();
    feed(stats, a, b);
  }
  return stats;
}

StreamStats StreamAdderEngine::run(const std::vector<stats::OperandPair>& operands) const {
  StreamStats stats;
  for (const auto& [a, b] : operands) feed(stats, a, b);
  return stats;
}

StreamStats StreamAdderEngine::run(const SourceFactory& make_source,
                                   std::uint64_t ops, std::uint64_t master_seed,
                                   stats::ParallelExecutor& exec,
                                   std::uint64_t shard_size) const {
  const auto shards = stats::ParallelExecutor::make_shards(ops, shard_size);
  auto partials = exec.map<StreamStats>(shards.size(), [&](std::size_t i) {
    auto source = make_source(
        stats::ParallelExecutor::shard_rng(master_seed, shards[i].index));
    StreamStats stats;
    for (std::uint64_t op = 0; op < shards[i].size(); ++op) {
      const auto [a, b] = source->next();
      feed(stats, a, b);
    }
    return stats;
  });
  StreamStats total;
  for (const auto& partial : partials) total.merge(partial);
  return total;
}

}  // namespace gear::apps
