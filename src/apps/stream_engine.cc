#include "apps/stream_engine.h"

#include <algorithm>
#include <bit>

#include "core/error_model.h"
#include "core/width.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/bitsliced.h"

namespace gear::apps {

namespace {

// First-class detect/correct/fallback telemetry. Recorded once per run()
// from the merged StreamStats, which is bit-identical across thread
// counts (§5a), so these counters sit in the deterministic channel.
void record_stream_obs(const StreamStats& s) {
  // Host-CPU-pure and idempotent, so re-setting it every run keeps the
  // label present after registry clears without touching the hot loops.
  GEAR_OBS_LABEL("bitsliced/dispatch", stats::bitsliced_dispatch_name());
  GEAR_OBS_COUNT("stream/runs", 1);
  GEAR_OBS_COUNT("stream/operations", s.operations);
  GEAR_OBS_COUNT("stream/cycles", s.cycles);
  GEAR_OBS_COUNT("stream/stall_cycles", s.stall_cycles);
  GEAR_OBS_COUNT("stream/corrected_ops", s.corrected_ops);
  GEAR_OBS_COUNT("stream/wrong_results", s.wrong_results);
  GEAR_OBS_COUNT("stream/fallback_events", s.fallback_events);
  GEAR_OBS_COUNT("stream/safe_mode_ops", s.safe_mode_ops);
  GEAR_OBS_COUNT("stream/flagged_ops", s.flagged_ops);
  GEAR_OBS_COUNT("stream/flagged_wrong_results", s.flagged_wrong_results);
}

}  // namespace

StreamAdderEngine::StreamAdderEngine(core::GeArConfig cfg,
                                     std::uint64_t correction_mask)
    : corrector_(std::move(cfg), correction_mask),
      bitsliced_(corrector_.config()) {}

StreamAdderEngine::StreamAdderEngine(core::GeArConfig cfg,
                                     std::uint64_t correction_mask,
                                     core::DegradationPolicy degradation)
    : corrector_(std::move(cfg), correction_mask),
      bitsliced_(corrector_.config()),
      degradation_(degradation),
      expected_detect_rate_(core::paper_error_probability(corrector_.config())) {}

void StreamStats::merge(const StreamStats& other) {
  // Window entries of `other` follow this stream's ops in the canonical
  // order, so their op indices shift by the op count accumulated so far.
  const std::uint64_t base_ops = operations;
  operations += other.operations;
  cycles += other.cycles;
  stall_cycles += other.stall_cycles;
  corrected_ops += other.corrected_ops;
  wrong_results += other.wrong_results;
  fallback_events += other.fallback_events;
  safe_mode_ops += other.safe_mode_ops;
  flagged_ops += other.flagged_ops;
  flagged_wrong_results += other.flagged_wrong_results;
  degraded_windows.reserve(degraded_windows.size() +
                           other.degraded_windows.size());
  for (WindowDegradation w : other.degraded_windows) {
    w.start_op += base_ops;
    degraded_windows.push_back(w);
  }
}

std::optional<core::Watchdog> StreamAdderEngine::make_watchdog() const {
  if (!degradation_) return std::nullopt;
  return core::Watchdog(expected_detect_rate_, *degradation_);
}

namespace {

// Attributes a degradation event (a fallback trip and/or one safe-mode
// op) to the watchdog window containing the op just accounted. Ops are
// fed in order, so only the last entry can match.
void note_degraded_window(StreamStats& stats, std::uint32_t window,
                          std::uint64_t fallback, std::uint64_t safe_op) {
  const std::uint64_t op = stats.operations - 1;
  const std::uint64_t start = op - op % window;
  if (stats.degraded_windows.empty() ||
      stats.degraded_windows.back().start_op != start) {
    stats.degraded_windows.push_back({start, 0, 0});
  }
  stats.degraded_windows.back().fallback_events += fallback;
  stats.degraded_windows.back().safe_mode_ops += safe_op;
}

}  // namespace

void StreamAdderEngine::feed(StreamStats& stats, core::Watchdog* watchdog,
                             std::uint64_t a, std::uint64_t b,
                             std::uint64_t* sum_out) const {
  if (watchdog && watchdog->in_safe_mode()) {
    ++stats.operations;
    ++stats.safe_mode_ops;
    note_degraded_window(stats, watchdog->policy().window, 0, 1);
    switch (watchdog->mode()) {
      case core::SafeMode::kExactAdd: {
        // Bypass the (possibly compromised) detect/correct path: full
        // worst-case-latency exact add. Note the injected fault cannot
        // corrupt this path.
        const std::uint64_t m = core::width_mask(corrector_.config().n());
        const std::uint64_t sum = (a & m) + (b & m);
        if (sum_out != nullptr) *sum_out = sum;
        const auto cycles =
            static_cast<std::uint64_t>(corrector_.worst_case_cycles());
        stats.cycles += cycles;
        stats.stall_cycles += cycles - 1;
        break;
      }
      case core::SafeMode::kFreezeMask: {
        // Keep the configured correction mask but stop reacting to the
        // watchdog (it has latched); accounting as normal.
        const core::CorrectionResult res = corrector_.add(a, b, fault_);
        if (sum_out != nullptr) *sum_out = res.sum;
        stats.cycles += static_cast<std::uint64_t>(res.cycles);
        stats.stall_cycles += static_cast<std::uint64_t>(res.cycles - 1);
        if (!res.corrected.empty()) ++stats.corrected_ops;
        if (!res.exact) ++stats.wrong_results;
        break;
      }
      case core::SafeMode::kFlagApproximate: {
        // 1-cycle approximate adds, every result flagged so residual
        // errors are visible downstream instead of silent.
        const core::CorrectionResult res = corrector_.add(a, b, fault_, 0);
        if (sum_out != nullptr) *sum_out = res.sum;
        stats.cycles += static_cast<std::uint64_t>(res.cycles);
        ++stats.flagged_ops;
        if (!res.exact) {
          ++stats.wrong_results;
          ++stats.flagged_wrong_results;
        }
        break;
      }
    }
    watchdog->observe(false, 0);  // ticks the cooldown only
    return;
  }

  const int budget = degradation_ ? degradation_->per_op_correction_budget : -1;
  const core::CorrectionResult res = corrector_.add(a, b, fault_, budget);
  if (sum_out != nullptr) *sum_out = res.sum;
  ++stats.operations;
  stats.cycles += static_cast<std::uint64_t>(res.cycles);
  stats.stall_cycles += static_cast<std::uint64_t>(res.cycles - 1);
  if (!res.corrected.empty()) ++stats.corrected_ops;
  if (!res.exact) ++stats.wrong_results;
  if (watchdog && watchdog->observe(res.detect_mask != 0,
                                    static_cast<std::uint64_t>(res.cycles - 1))) {
    ++stats.fallback_events;
    note_degraded_window(stats, watchdog->policy().window, 1, 0);
  }
}

void StreamAdderEngine::feed_block(StreamStats& stats,
                                   core::BitslicedBatch& batch,
                                   const std::uint64_t* a,
                                   const std::uint64_t* b, int count,
                                   std::uint64_t* sums_out) const {
  bitsliced_.eval(a, b, count, /*carry_in_lanes=*/0,
                  corrector_.enabled_mask(), batch);
  if (sums_out != nullptr) bitsliced_.unpack_sums(batch.approx, sums_out, count);
  // Per-op accounting, summed over lanes: cycles = 1 + corrections per op,
  // every correction is a stall cycle, corrected_ops counts ops with any
  // correction, wrong_results counts residual post-correction errors —
  // exactly feed()'s bookkeeping for the no-watchdog, no-fault path.
  std::uint64_t corrections = 0;
  for (const std::uint64_t w : batch.corrected) {
    corrections += static_cast<std::uint64_t>(std::popcount(w));
  }
  stats.operations += static_cast<std::uint64_t>(count);
  stats.cycles += static_cast<std::uint64_t>(count) + corrections;
  stats.stall_cycles += corrections;
  stats.corrected_ops +=
      static_cast<std::uint64_t>(std::popcount(batch.any_corrected));
  stats.wrong_results +=
      static_cast<std::uint64_t>(std::popcount(batch.error));
}

void StreamAdderEngine::feed_guarded(StreamStats& stats,
                                     core::Watchdog& watchdog,
                                     const stats::OperandPair* operands,
                                     std::size_t count,
                                     std::uint64_t* sums_out) const {
  std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
  int stall[stats::kBitslicedLanes];
  core::BitslicedBatch batch;
  std::size_t i = 0;
  while (i < count) {
    if (watchdog.in_safe_mode()) {
      // Safe-mode ops change sums (e.g. kExactAdd) and tick the cooldown
      // one op at a time, so they serve through the scalar feed until the
      // watchdog re-arms.
      feed(stats, &watchdog, operands[i].a, operands[i].b,
           sums_out == nullptr ? nullptr : sums_out + i);
      ++i;
      continue;
    }
    const int n = static_cast<int>(
        std::min<std::size_t>(stats::kBitslicedLanes, count - i));
    for (int l = 0; l < n; ++l) {
      a[l] = operands[i + static_cast<std::size_t>(l)].a;
      b[l] = operands[i + static_cast<std::size_t>(l)].b;
    }
    bitsliced_.eval(a, b, n, /*carry_in_lanes=*/0, corrector_.enabled_mask(),
                    batch);
    if (sums_out != nullptr) {
      bitsliced_.unpack_sums(batch.approx, sums_out + i, n);
    }
    // Per-lane corrections (= that op's stall cycles): lane l's bit count
    // across the k corrected words.
    for (int l = 0; l < n; ++l) stall[l] = 0;
    std::uint64_t block_stalls = 0;
    for (const std::uint64_t w : batch.corrected) {
      for (std::uint64_t rest = w; rest != 0; rest &= rest - 1) {
        ++stall[std::countr_zero(rest)];
      }
      block_stalls += static_cast<std::uint64_t>(std::popcount(w));
    }
    if (watchdog.can_absorb_block(static_cast<std::uint32_t>(n),
                                  block_stalls)) {
      // Decision-free block: fold the watchdog counters and the stats in
      // bulk — exactly feed()'s accounting summed over the lanes.
      watchdog.absorb_block(
          static_cast<std::uint32_t>(n),
          static_cast<std::uint64_t>(std::popcount(batch.any_detect)),
          block_stalls);
      stats.operations += static_cast<std::uint64_t>(n);
      stats.cycles += static_cast<std::uint64_t>(n) + block_stalls;
      stats.stall_cycles += block_stalls;
      stats.corrected_ops +=
          static_cast<std::uint64_t>(std::popcount(batch.any_corrected));
      stats.wrong_results +=
          static_cast<std::uint64_t>(std::popcount(batch.error));
      i += static_cast<std::size_t>(n);
      continue;
    }
    // The block might trip or close a window: replay the watchdog
    // decisions per op from the lane data. A tripping op keeps its batch
    // sum (observe fires after the op completes; safe mode starts at the
    // next op), and the lanes after it are re-served through the
    // safe-mode branch above, overwriting their unpacked sums.
    int l = 0;
    for (bool tripped = false; l < n && !tripped; ++l) {
      ++stats.operations;
      stats.cycles += 1 + static_cast<std::uint64_t>(stall[l]);
      stats.stall_cycles += static_cast<std::uint64_t>(stall[l]);
      if ((batch.any_corrected >> l) & 1) ++stats.corrected_ops;
      if ((batch.error >> l) & 1) ++stats.wrong_results;
      if (watchdog.observe(((batch.any_detect >> l) & 1) != 0,
                           static_cast<std::uint64_t>(stall[l]))) {
        ++stats.fallback_events;
        note_degraded_window(stats, watchdog.policy().window, 1, 0);
        tripped = true;
      }
    }
    i += static_cast<std::size_t>(l);
  }
}

StreamStats StreamAdderEngine::run(stats::OperandSource& source,
                                   std::uint64_t ops) const {
  GEAR_OBS_SPAN("stream/run_source", "stream");
  StreamStats stats;
  if (can_batch()) {
    stats::OperandPair buf[stats::kBitslicedLanes];
    std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
    core::BitslicedBatch batch;
    for (std::uint64_t base = 0; base < ops;
         base += stats::kBitslicedLanes) {
      const int count = static_cast<int>(
          std::min<std::uint64_t>(stats::kBitslicedLanes, ops - base));
      source.fill(buf, static_cast<std::size_t>(count));
      for (int l = 0; l < count; ++l) {
        a[l] = buf[l].a;
        b[l] = buf[l].b;
      }
      feed_block(stats, batch, a, b, count);
    }
    record_stream_obs(stats);
    return stats;
  }
  auto watchdog = make_watchdog();
  if (watchdog && can_batch_guarded()) {
    // Windowed guarded batch path (§5j): chunks of 64 draws feed the
    // persistent watchdog, bit-identical to the per-op loop below
    // (fill() is contractually identical to successive next() calls).
    stats::OperandPair buf[stats::kBitslicedLanes];
    for (std::uint64_t base = 0; base < ops;
         base += stats::kBitslicedLanes) {
      const auto count = static_cast<std::size_t>(
          std::min<std::uint64_t>(stats::kBitslicedLanes, ops - base));
      source.fill(buf, count);
      feed_guarded(stats, *watchdog, buf, count, nullptr);
    }
    record_stream_obs(stats);
    return stats;
  }
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto [a, b] = source.next();
    feed(stats, watchdog ? &*watchdog : nullptr, a, b);
  }
  record_stream_obs(stats);
  return stats;
}

StreamStats StreamAdderEngine::run(const std::vector<stats::OperandPair>& operands) const {
  GEAR_OBS_SPAN("stream/run_operands", "stream");
  StreamStats stats;
  if (can_batch()) {
    std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
    core::BitslicedBatch batch;
    const std::uint64_t ops = operands.size();
    for (std::uint64_t base = 0; base < ops;
         base += stats::kBitslicedLanes) {
      const int count = static_cast<int>(
          std::min<std::uint64_t>(stats::kBitslicedLanes, ops - base));
      for (int l = 0; l < count; ++l) {
        a[l] = operands[base + static_cast<std::uint64_t>(l)].a;
        b[l] = operands[base + static_cast<std::uint64_t>(l)].b;
      }
      feed_block(stats, batch, a, b, count);
    }
    record_stream_obs(stats);
    return stats;
  }
  auto watchdog = make_watchdog();
  if (watchdog && can_batch_guarded()) {
    feed_guarded(stats, *watchdog, operands.data(), operands.size(), nullptr);
    record_stream_obs(stats);
    return stats;
  }
  for (const auto& [a, b] : operands) {
    feed(stats, watchdog ? &*watchdog : nullptr, a, b);
  }
  record_stream_obs(stats);
  return stats;
}

StreamStats StreamAdderEngine::run_with_sums(const stats::OperandPair* operands,
                                             std::size_t count,
                                             std::uint64_t* sums_out,
                                             core::Watchdog* watchdog) const {
  StreamStats stats;
  if (watchdog == nullptr && can_batch()) {
    std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
    core::BitslicedBatch batch;
    for (std::size_t base = 0; base < count; base += stats::kBitslicedLanes) {
      const int n = static_cast<int>(std::min<std::size_t>(
          stats::kBitslicedLanes, count - base));
      for (int l = 0; l < n; ++l) {
        a[l] = operands[base + static_cast<std::size_t>(l)].a;
        b[l] = operands[base + static_cast<std::size_t>(l)].b;
      }
      feed_block(stats, batch, a, b, n,
                 sums_out == nullptr ? nullptr : sums_out + base);
    }
    return stats;
  }
  // An externally persisted watchdog (service tenants) takes precedence;
  // otherwise fall back to the per-call watchdog run() would create.
  std::optional<core::Watchdog> local;
  if (watchdog == nullptr) {
    local = make_watchdog();
    if (local) watchdog = &*local;
  }
  if (watchdog != nullptr && can_batch_guarded()) {
    feed_guarded(stats, *watchdog, operands, count, sums_out);
    return stats;
  }
  for (std::size_t i = 0; i < count; ++i) {
    feed(stats, watchdog, operands[i].a, operands[i].b,
         sums_out == nullptr ? nullptr : sums_out + i);
  }
  return stats;
}

StreamStats StreamAdderEngine::run(const SourceFactory& make_source,
                                   std::uint64_t ops, std::uint64_t master_seed,
                                   stats::ParallelExecutor& exec,
                                   std::uint64_t shard_size) const {
  GEAR_OBS_SPAN("stream/run_parallel", "stream");
  const auto shards = stats::ParallelExecutor::make_shards(ops, shard_size);
  auto partials = exec.map<StreamStats>(shards.size(), [&](std::size_t i) {
    auto source = make_source(
        stats::ParallelExecutor::shard_rng(master_seed, shards[i].index));
    if (can_batch()) {
      StreamStats stats;
      stats::OperandPair buf[stats::kBitslicedLanes];
      std::uint64_t a[stats::kBitslicedLanes], b[stats::kBitslicedLanes];
      core::BitslicedBatch batch;
      for (std::uint64_t base = 0; base < shards[i].size();
           base += stats::kBitslicedLanes) {
        const int count = static_cast<int>(std::min<std::uint64_t>(
            stats::kBitslicedLanes, shards[i].size() - base));
        source->fill(buf, static_cast<std::size_t>(count));
        for (int l = 0; l < count; ++l) {
          a[l] = buf[l].a;
          b[l] = buf[l].b;
        }
        feed_block(stats, batch, a, b, count);
      }
      return stats;
    }
    StreamStats stats;
    auto watchdog = make_watchdog();  // per-shard: determinism contract
    if (watchdog && can_batch_guarded()) {
      stats::OperandPair buf[stats::kBitslicedLanes];
      for (std::uint64_t base = 0; base < shards[i].size();
           base += stats::kBitslicedLanes) {
        const auto count = static_cast<std::size_t>(std::min<std::uint64_t>(
            stats::kBitslicedLanes, shards[i].size() - base));
        source->fill(buf, count);
        feed_guarded(stats, *watchdog, buf, count, nullptr);
      }
      return stats;
    }
    for (std::uint64_t op = 0; op < shards[i].size(); ++op) {
      const auto [a, b] = source->next();
      feed(stats, watchdog ? &*watchdog : nullptr, a, b);
    }
    return stats;
  });
  StreamStats total;
  {
    GEAR_OBS_SPAN("stream/merge", "stream");
    for (const auto& partial : partials) total.merge(partial);
  }
  record_stream_obs(total);
  return total;
}

}  // namespace gear::apps
