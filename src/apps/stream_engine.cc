#include "apps/stream_engine.h"

namespace gear::apps {

StreamAdderEngine::StreamAdderEngine(core::GeArConfig cfg,
                                     std::uint64_t correction_mask)
    : corrector_(std::move(cfg), correction_mask) {}

void StreamAdderEngine::feed(StreamStats& stats, std::uint64_t a,
                             std::uint64_t b) {
  const core::CorrectionResult res = corrector_.add(a, b);
  ++stats.operations;
  stats.cycles += static_cast<std::uint64_t>(res.cycles);
  stats.stall_cycles += static_cast<std::uint64_t>(res.cycles - 1);
  if (!res.corrected.empty()) ++stats.corrected_ops;
  if (!res.exact) ++stats.wrong_results;
}

StreamStats StreamAdderEngine::run(stats::OperandSource& source,
                                   std::uint64_t ops) {
  StreamStats stats;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto [a, b] = source.next();
    feed(stats, a, b);
  }
  return stats;
}

StreamStats StreamAdderEngine::run(const std::vector<stats::OperandPair>& operands) {
  StreamStats stats;
  for (const auto& [a, b] : operands) feed(stats, a, b);
  return stats;
}

}  // namespace gear::apps
