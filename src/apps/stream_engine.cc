#include "apps/stream_engine.h"

#include "core/error_model.h"

namespace gear::apps {

namespace {
inline std::uint64_t low_mask(int bits) {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}
}  // namespace

StreamAdderEngine::StreamAdderEngine(core::GeArConfig cfg,
                                     std::uint64_t correction_mask)
    : corrector_(std::move(cfg), correction_mask) {}

StreamAdderEngine::StreamAdderEngine(core::GeArConfig cfg,
                                     std::uint64_t correction_mask,
                                     core::DegradationPolicy degradation)
    : corrector_(std::move(cfg), correction_mask),
      degradation_(degradation),
      expected_detect_rate_(core::paper_error_probability(corrector_.config())) {}

void StreamStats::merge(const StreamStats& other) {
  operations += other.operations;
  cycles += other.cycles;
  stall_cycles += other.stall_cycles;
  corrected_ops += other.corrected_ops;
  wrong_results += other.wrong_results;
  fallback_events += other.fallback_events;
  safe_mode_ops += other.safe_mode_ops;
  flagged_ops += other.flagged_ops;
  flagged_wrong_results += other.flagged_wrong_results;
}

std::optional<core::Watchdog> StreamAdderEngine::make_watchdog() const {
  if (!degradation_) return std::nullopt;
  return core::Watchdog(expected_detect_rate_, *degradation_);
}

void StreamAdderEngine::feed(StreamStats& stats, core::Watchdog* watchdog,
                             std::uint64_t a, std::uint64_t b) const {
  if (watchdog && watchdog->in_safe_mode()) {
    ++stats.operations;
    ++stats.safe_mode_ops;
    switch (watchdog->mode()) {
      case core::SafeMode::kExactAdd: {
        // Bypass the (possibly compromised) detect/correct path: full
        // worst-case-latency exact add. Note the injected fault cannot
        // corrupt this path.
        const std::uint64_t m = low_mask(corrector_.config().n());
        (void)((a & m) + (b & m));
        const auto cycles =
            static_cast<std::uint64_t>(corrector_.worst_case_cycles());
        stats.cycles += cycles;
        stats.stall_cycles += cycles - 1;
        break;
      }
      case core::SafeMode::kFreezeMask: {
        // Keep the configured correction mask but stop reacting to the
        // watchdog (it has latched); accounting as normal.
        const core::CorrectionResult res = corrector_.add(a, b, fault_);
        stats.cycles += static_cast<std::uint64_t>(res.cycles);
        stats.stall_cycles += static_cast<std::uint64_t>(res.cycles - 1);
        if (!res.corrected.empty()) ++stats.corrected_ops;
        if (!res.exact) ++stats.wrong_results;
        break;
      }
      case core::SafeMode::kFlagApproximate: {
        // 1-cycle approximate adds, every result flagged so residual
        // errors are visible downstream instead of silent.
        const core::CorrectionResult res = corrector_.add(a, b, fault_, 0);
        stats.cycles += static_cast<std::uint64_t>(res.cycles);
        ++stats.flagged_ops;
        if (!res.exact) {
          ++stats.wrong_results;
          ++stats.flagged_wrong_results;
        }
        break;
      }
    }
    watchdog->observe(false, 0);  // ticks the cooldown only
    return;
  }

  const int budget = degradation_ ? degradation_->per_op_correction_budget : -1;
  const core::CorrectionResult res = corrector_.add(a, b, fault_, budget);
  ++stats.operations;
  stats.cycles += static_cast<std::uint64_t>(res.cycles);
  stats.stall_cycles += static_cast<std::uint64_t>(res.cycles - 1);
  if (!res.corrected.empty()) ++stats.corrected_ops;
  if (!res.exact) ++stats.wrong_results;
  if (watchdog && watchdog->observe(res.detect_mask != 0,
                                    static_cast<std::uint64_t>(res.cycles - 1))) {
    ++stats.fallback_events;
  }
}

StreamStats StreamAdderEngine::run(stats::OperandSource& source,
                                   std::uint64_t ops) const {
  StreamStats stats;
  auto watchdog = make_watchdog();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto [a, b] = source.next();
    feed(stats, watchdog ? &*watchdog : nullptr, a, b);
  }
  return stats;
}

StreamStats StreamAdderEngine::run(const std::vector<stats::OperandPair>& operands) const {
  StreamStats stats;
  auto watchdog = make_watchdog();
  for (const auto& [a, b] : operands) {
    feed(stats, watchdog ? &*watchdog : nullptr, a, b);
  }
  return stats;
}

StreamStats StreamAdderEngine::run(const SourceFactory& make_source,
                                   std::uint64_t ops, std::uint64_t master_seed,
                                   stats::ParallelExecutor& exec,
                                   std::uint64_t shard_size) const {
  const auto shards = stats::ParallelExecutor::make_shards(ops, shard_size);
  auto partials = exec.map<StreamStats>(shards.size(), [&](std::size_t i) {
    auto source = make_source(
        stats::ParallelExecutor::shard_rng(master_seed, shards[i].index));
    StreamStats stats;
    auto watchdog = make_watchdog();  // per-shard: determinism contract
    for (std::uint64_t op = 0; op < shards[i].size(); ++op) {
      const auto [a, b] = source->next();
      feed(stats, watchdog ? &*watchdog : nullptr, a, b);
    }
    return stats;
  });
  StreamStats total;
  for (const auto& partial : partials) total.merge(partial);
  return total;
}

}  // namespace gear::apps
