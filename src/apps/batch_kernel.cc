#include "apps/batch_kernel.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>

#include "adders/exact.h"
#include "core/width.h"
#include "stats/bitsliced.h"

namespace gear::apps {

namespace {

constexpr std::size_t kLanes = stats::kBitslicedLanes;

/// Runs fn(batch_index) for every batch, on the pool when one is given.
/// Batches own disjoint output ranges, so any interleaving is safe and
/// the result is independent of the thread count.
void run_batches(std::size_t n_batches, stats::ParallelExecutor* pool,
                 const std::function<void(std::size_t)>& fn) {
  if (pool && n_batches > 1) {
    pool->for_each(n_batches, fn);
  } else {
    for (std::size_t i = 0; i < n_batches; ++i) fn(i);
  }
}

/// Inline clamp-to-border index (the out-of-line Image::at_clamped costs a
/// call per lane per tap, which dominates a 9-tap batch gather).
inline int clampi(int v, int hi) { return v < 0 ? 0 : (v > hi ? hi : v); }

/// Per-lane clamped neighbourhood offsets for one batch of raster pixels:
/// row base indices for y-1 / y / y+1 and column indices for x-1 / x / x+1.
/// Every 3x3 tap gather then reduces to px[row[l] + col[l]].
struct LaneNeighborhood {
  std::size_t rowm[kLanes], row0[kLanes], rowp[kLanes];
  std::size_t colm[kLanes], col0[kLanes], colp[kLanes];

  void compute(std::size_t base, std::size_t cnt, int w, int h) {
    int x = static_cast<int>(base % static_cast<std::size_t>(w));
    int y = static_cast<int>(base / static_cast<std::size_t>(w));
    for (std::size_t l = 0; l < cnt; ++l) {
      const std::size_t sw = static_cast<std::size_t>(w);
      rowm[l] = static_cast<std::size_t>(clampi(y - 1, h - 1)) * sw;
      row0[l] = static_cast<std::size_t>(y) * sw;
      rowp[l] = static_cast<std::size_t>(clampi(y + 1, h - 1)) * sw;
      colm[l] = static_cast<std::size_t>(clampi(x - 1, w - 1));
      col0[l] = static_cast<std::size_t>(x);
      colp[l] = static_cast<std::size_t>(clampi(x + 1, w - 1));
      if (++x == w) {
        x = 0;
        ++y;
      }
    }
  }

  const std::size_t* row(int dy) const {
    return dy < 0 ? rowm : (dy > 0 ? rowp : row0);
  }
  const std::size_t* col(int dx) const {
    return dx < 0 ? colm : (dx > 0 ? colp : col0);
  }
};

/// Inline two's-complement encode/decode (same values as the out-of-line
/// core::from_signed / core::to_signed, which are too hot to call per lane
/// in the sobel add-tree).
inline std::uint64_t enc_signed(std::int64_t v, std::uint64_t mask) {
  return static_cast<std::uint64_t>(v) & mask;
}
inline std::int64_t dec_signed(std::uint64_t v, std::uint64_t mask,
                               std::uint64_t sign) {
  return static_cast<std::int64_t>((v & sign) != 0 ? (v | ~mask) : v);
}

/// Lane-parallel form of sobel.cc's acc_add: encode both signed operand
/// lanes two's-complement, one add_batch pass, decode. Scratch `ua`/`ub`
/// are caller-provided so the per-tap gather loops stay allocation-free.
void acc_add_batch(const adders::ApproxAdder& adder, const std::int64_t* a,
                   const std::int64_t* b, std::int64_t* out, std::size_t cnt,
                   std::uint64_t* ua, std::uint64_t* ub) {
  const std::uint64_t mask = core::width_mask(adder.width());
  const std::uint64_t sign = 1ULL << (adder.width() - 1);
  for (std::size_t l = 0; l < cnt; ++l) {
    ua[l] = enc_signed(a[l], mask);
    ub[l] = enc_signed(b[l], mask);
  }
  adder.add_batch(ua, ub, ua, cnt);
  for (std::size_t l = 0; l < cnt; ++l) out[l] = dec_signed(ua[l], mask, sign);
}

}  // namespace

std::vector<std::vector<std::uint64_t>> row_integral_batch(
    const Image& img, const adders::ApproxAdder& adder,
    stats::ParallelExecutor* pool) {
  const std::uint64_t mask = adder.operand_mask();
  const int w = img.width(), h = img.height();
  std::vector<std::vector<std::uint64_t>> out(static_cast<std::size_t>(h));
  for (auto& row : out) row.resize(static_cast<std::size_t>(w));
  const std::uint16_t* px = img.data();

  const std::size_t n_batches =
      (static_cast<std::size_t>(h) + kLanes - 1) / kLanes;
  run_batches(n_batches, pool, [&](std::size_t bi) {
    const std::size_t y0 = bi * kLanes;
    const std::size_t cnt =
        std::min(kLanes, static_cast<std::size_t>(h) - y0);
    // Hoisted per-lane source/output row pointers: the inner column loop
    // must not re-chase the vector-of-vectors indirection per store.
    const std::uint16_t* src[kLanes] = {nullptr};
    std::uint64_t* dst[kLanes] = {nullptr};
    for (std::size_t l = 0; l < cnt; ++l) {
      src[l] = px + (y0 + l) * static_cast<std::size_t>(w);
      dst[l] = out[y0 + l].data();
    }
    std::uint64_t acc[kLanes] = {0};
    std::uint64_t pix[kLanes] = {0};
    for (int x = 0; x < w; ++x) {
      for (std::size_t l = 0; l < cnt; ++l) pix[l] = src[l][x];
      adder.add_batch(acc, pix, acc, cnt);
      for (std::size_t l = 0; l < cnt; ++l) {
        acc[l] &= mask;
        dst[l][x] = acc[l];
      }
    }
  });
  return out;
}

Image lpf3x3_batch(const Image& img, const adders::ApproxAdder& adder,
                   stats::ParallelExecutor* pool) {
  const std::uint64_t mask = adder.operand_mask();
  const int w = img.width(), h = img.height();
  Image out(w, h);
  const std::uint16_t* px = img.data();
  std::uint16_t* opx = out.data();
  const std::size_t total = img.pixel_count();
  const std::size_t n_batches = (total + kLanes - 1) / kLanes;
  run_batches(n_batches, pool, [&](std::size_t bi) {
    const std::size_t base = bi * kLanes;
    const std::size_t cnt = std::min(kLanes, total - base);
    LaneNeighborhood nb;
    nb.compute(base, cnt, w, h);
    std::uint64_t acc[kLanes] = {0};
    std::uint64_t op[kLanes] = {0};
    for (int dy = -1; dy <= 1; ++dy) {
      const std::size_t* row = nb.row(dy);
      for (int dx = -1; dx <= 1; ++dx) {
        const std::size_t* col = nb.col(dx);
        for (std::size_t l = 0; l < cnt; ++l) op[l] = px[row[l] + col[l]];
        adder.add_batch(acc, op, acc, cnt);
        for (std::size_t l = 0; l < cnt; ++l) acc[l] &= mask;
      }
    }
    for (std::size_t l = 0; l < cnt; ++l) {
      opx[base + l] = static_cast<std::uint16_t>(acc[l] / 9);
    }
  });
  return out;
}

Image lpf_binomial_batch(const Image& img, const adders::ApproxAdder& adder,
                         stats::ParallelExecutor* pool) {
  const std::uint64_t mask = adder.operand_mask();
  const int w = img.width(), h = img.height();
  const std::size_t total = img.pixel_count();
  const std::size_t n_batches = (total + kLanes - 1) / kLanes;

  // One [1 2 1] pass: acc = ((prev + c) + c) + next, matching lpf.cc's
  // operand order (the first add is add(prev, c), not add(acc, ...)).
  auto pass = [&](const Image& src, Image& dst, bool horizontal) {
    const std::uint16_t* spx = src.data();
    std::uint16_t* dpx = dst.data();
    run_batches(n_batches, pool, [&](std::size_t bi) {
      const std::size_t base = bi * kLanes;
      const std::size_t cnt = std::min(kLanes, total - base);
      LaneNeighborhood nb;
      nb.compute(base, cnt, w, h);
      const std::size_t* prow = nb.row(horizontal ? 0 : -1);
      const std::size_t* pcol = nb.col(horizontal ? -1 : 0);
      const std::size_t* nrow = nb.row(horizontal ? 0 : 1);
      const std::size_t* ncol = nb.col(horizontal ? 1 : 0);
      std::uint64_t acc[kLanes] = {0}, c[kLanes] = {0}, side[kLanes] = {0};
      for (std::size_t l = 0; l < cnt; ++l) {
        c[l] = spx[nb.row0[l] + nb.col0[l]];
        side[l] = spx[prow[l] + pcol[l]];
      }
      adder.add_batch(side, c, acc, cnt);
      for (std::size_t l = 0; l < cnt; ++l) acc[l] &= mask;
      adder.add_batch(acc, c, acc, cnt);
      for (std::size_t l = 0; l < cnt; ++l) acc[l] &= mask;
      for (std::size_t l = 0; l < cnt; ++l) side[l] = spx[nrow[l] + ncol[l]];
      adder.add_batch(acc, side, acc, cnt);
      for (std::size_t l = 0; l < cnt; ++l) {
        dpx[base + l] = static_cast<std::uint16_t>((acc[l] & mask) / 4);
      }
    });
  };

  Image hpass(w, h);
  pass(img, hpass, /*horizontal=*/true);
  Image out(w, h);
  pass(hpass, out, /*horizontal=*/false);
  return out;
}

Image sobel_batch(const Image& img, const adders::ApproxAdder& adder,
                  stats::ParallelExecutor* pool) {
  const int w = img.width(), h = img.height();
  Image out(w, h);
  const std::uint16_t* px = img.data();
  std::uint16_t* opx = out.data();
  const std::size_t total = img.pixel_count();
  const std::size_t n_batches = (total + kLanes - 1) / kLanes;
  run_batches(n_batches, pool, [&](std::size_t bi) {
    const std::size_t base = bi * kLanes;
    const std::size_t cnt = std::min(kLanes, total - base);
    LaneNeighborhood nb;
    nb.compute(base, cnt, w, h);
    std::uint64_t ua[kLanes] = {0}, ub[kLanes] = {0};
    std::int64_t t0[kLanes] = {0}, t1[kLanes] = {0};
    std::int64_t right[kLanes] = {0}, left[kLanes] = {0}, gx[kLanes] = {0};
    std::int64_t bottom[kLanes] = {0}, top[kLanes] = {0}, gy[kLanes] = {0};

    // Gathers pixel (x+dx, y+dy) for every lane's output coordinate.
    auto gather = [&](int dx, int dy, std::int64_t* dst) {
      const std::size_t* row = nb.row(dy);
      const std::size_t* col = nb.col(dx);
      for (std::size_t l = 0; l < cnt; ++l) {
        dst[l] = static_cast<std::int64_t>(px[row[l] + col[l]]);
      }
    };
    auto add = [&](const std::int64_t* a, const std::int64_t* b,
                   std::int64_t* dst) {
      acc_add_batch(adder, a, b, dst, cnt, ua, ub);
    };

    // Same 13-add schedule as sobel.cc, lane-parallel.
    gather(1, -1, t0);
    gather(1, 0, t1);
    add(t0, t1, right);
    add(right, t1, right);
    gather(1, 1, t0);
    add(right, t0, right);
    gather(-1, -1, t0);
    gather(-1, 0, t1);
    add(t0, t1, left);
    add(left, t1, left);
    gather(-1, 1, t0);
    add(left, t0, left);
    for (std::size_t l = 0; l < cnt; ++l) left[l] = -left[l];
    add(right, left, gx);

    gather(-1, 1, t0);
    gather(0, 1, t1);
    add(t0, t1, bottom);
    add(bottom, t1, bottom);
    gather(1, 1, t0);
    add(bottom, t0, bottom);
    gather(-1, -1, t0);
    gather(0, -1, t1);
    add(t0, t1, top);
    add(top, t1, top);
    gather(1, -1, t0);
    add(top, t0, top);
    for (std::size_t l = 0; l < cnt; ++l) top[l] = -top[l];
    add(bottom, top, gy);

    for (std::size_t l = 0; l < cnt; ++l) {
      t0[l] = std::abs(gx[l]);
      t1[l] = std::abs(gy[l]);
    }
    add(t0, t1, t0);
    for (std::size_t l = 0; l < cnt; ++l) {
      opx[base + l] = static_cast<std::uint16_t>(
          std::clamp<std::int64_t>(t0[l], 0, 65535));
    }
  });
  return out;
}

SadMatch sad_search_batch(const Image& ref, const Image& cand, int bx, int by,
                          int bw, int bh, int range,
                          const adders::ApproxAdder& adder) {
  const std::uint64_t mask = adder.operand_mask();
  const int rw = ref.width(), rh = ref.height();
  const int cw = cand.width(), ch = cand.height();
  const std::uint16_t* rpx = ref.data();
  const std::uint16_t* cpx = cand.data();
  // Every lane of a batch reads the same candidate window shifted by its
  // own displacement: when block + range is fully inside both images, the
  // clamped access degenerates to a per-lane constant index offset.
  const bool interior = bx - range >= 0 && by - range >= 0 &&
                        bx + bw + range <= std::min(rw, cw) &&
                        by + bh + range <= std::min(rh, ch);

  // Candidate displacements in the scalar (dy, dx) raster order; lanes
  // scan batches in that order, so the strictly-less winner merge below
  // reproduces sad_search's first-wins tie rule exactly.
  std::vector<std::pair<int, int>> disp;  // (dx, dy)
  disp.reserve(static_cast<std::size_t>(2 * range + 1) *
               static_cast<std::size_t>(2 * range + 1));
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) disp.emplace_back(dx, dy);
  }

  SadMatch best;
  bool first = true;
  std::uint64_t acc[kLanes] = {0}, diff[kLanes] = {0};
  std::ptrdiff_t off[kLanes] = {0};
  for (std::size_t base = 0; base < disp.size(); base += kLanes) {
    const std::size_t cnt = std::min(kLanes, disp.size() - base);
    std::fill(acc, acc + cnt, 0);
    for (std::size_t l = 0; l < cnt; ++l) {
      const auto& d = disp[base + l];
      off[l] = static_cast<std::ptrdiff_t>(d.second) * cw + d.first;
    }
    for (int y = 0; y < bh; ++y) {
      for (int x = 0; x < bw; ++x) {
        if (interior) {
          const std::ptrdiff_t idx =
              static_cast<std::ptrdiff_t>(by + y) * cw + (bx + x);
          const int rv =
              rpx[static_cast<std::ptrdiff_t>(by + y) * rw + (bx + x)];
          for (std::size_t l = 0; l < cnt; ++l) {
            const int cv = cpx[idx + off[l]];
            diff[l] = static_cast<std::uint64_t>(std::abs(rv - cv));
          }
        } else {
          const int rv = rpx[static_cast<std::size_t>(clampi(by + y, rh - 1)) *
                                 static_cast<std::size_t>(rw) +
                             static_cast<std::size_t>(clampi(bx + x, rw - 1))];
          for (std::size_t l = 0; l < cnt; ++l) {
            const auto& d = disp[base + l];
            const int cv =
                cpx[static_cast<std::size_t>(clampi(by + y + d.second, ch - 1)) *
                        static_cast<std::size_t>(cw) +
                    static_cast<std::size_t>(clampi(bx + x + d.first, cw - 1))];
            diff[l] = static_cast<std::uint64_t>(std::abs(rv - cv));
          }
        }
        adder.add_batch(acc, diff, acc, cnt);
        for (std::size_t l = 0; l < cnt; ++l) acc[l] &= mask;
      }
    }
    for (std::size_t l = 0; l < cnt; ++l) {
      if (first || acc[l] < best.sad) {
        best = {disp[base + l].first, disp[base + l].second, acc[l]};
        first = false;
      }
    }
  }
  return best;
}

double sad_match_rate_batch(const Image& ref, const Image& cand, int bw,
                            int bh, int range,
                            const adders::ApproxAdder& adder,
                            stats::ParallelExecutor* pool) {
  const adders::RcaAdder exact(adder.width());
  std::vector<std::pair<int, int>> tiles;  // (bx, by)
  for (int by = 0; by + bh <= ref.height(); by += bh) {
    for (int bx = 0; bx + bw <= ref.width(); bx += bw) {
      tiles.emplace_back(bx, by);
    }
  }
  if (tiles.empty()) return 1.0;

  std::vector<char> match(tiles.size(), 0);
  run_batches(tiles.size(), pool, [&](std::size_t i) {
    const auto [bx, by] = tiles[i];
    const SadMatch approx =
        sad_search_batch(ref, cand, bx, by, bw, bh, range, adder);
    const SadMatch truth =
        sad_search_batch(ref, cand, bx, by, bw, bh, range, exact);
    match[i] = (approx.dx == truth.dx && approx.dy == truth.dy) ? 1 : 0;
  });
  std::size_t matched = 0;
  for (const char m : match) matched += static_cast<std::size_t>(m);
  return static_cast<double>(matched) / static_cast<double>(tiles.size());
}

}  // namespace gear::apps
