// Synthetic image generators.
//
// The paper's image workloads are unpublished; smoothed-noise images
// reproduce the operand statistics that matter for the kernels (spatial
// correlation, mid-range pixel concentration). See DESIGN.md section 2.
#pragma once

#include <cstdint>

#include "apps/image.h"
#include "stats/rng.h"

namespace gear::apps {

/// Horizontal luminance ramp, 8-bit range.
Image gradient_image(int width, int height);

/// Independent uniform 8-bit noise.
Image noise_image(int width, int height, stats::Rng& rng);

/// Uniform noise smoothed by `passes` 3x3 box filters — spatially
/// correlated, "natural-looking" test content, 8-bit range.
Image smoothed_noise_image(int width, int height, stats::Rng& rng, int passes = 2);

/// Checkerboard with the given period, 8-bit extremes (worst-case carry
/// patterns for prefix sums).
Image checkerboard_image(int width, int height, int period);

/// `base` shifted right/down by (dx, dy) with border clamp plus +-noise
/// of the given amplitude — a synthetic "next frame" for SAD search.
Image shifted_image(const Image& base, int dx, int dy, int noise_amp,
                    stats::Rng& rng);

}  // namespace gear::apps
