// Sobel edge detection — a signed-arithmetic workload for the adders.
//
// The 3x3 Sobel operator computes horizontal/vertical gradients whose
// partial sums are signed; we route every addition through the adder
// under test using two's-complement encoding (core/signed_ops) and form
// the gradient magnitude |Gx| + |Gy| (the usual hardware-friendly L1
// approximation). Exercises the signed view of approximate addition on a
// real kernel.
#pragma once

#include "adders/adder.h"
#include "apps/image.h"

namespace gear::apps {

/// Gradient-magnitude image (clamped to 16 bits), additions through
/// `adder` (width >= 12 recommended: |Gx|+|Gy| <= 2040 for 8-bit input).
Image sobel(const Image& img, const adders::ApproxAdder& adder);

/// Fraction of pixels classified the same way (edge / non-edge at
/// `threshold`) by the approximate and exact pipelines — the
/// application-level quality measure for edge detection.
double sobel_classification_agreement(const Image& img,
                                      const adders::ApproxAdder& adder,
                                      int threshold);

}  // namespace gear::apps
