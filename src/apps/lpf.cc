#include "apps/lpf.h"

namespace gear::apps {

Image lpf3x3(const Image& img, const adders::ApproxAdder& adder) {
  const std::uint64_t mask = adder.operand_mask();
  Image out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      std::uint64_t acc = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          acc = adder.add(acc, img.at_clamped(x + dx, y + dy)) & mask;
        }
      }
      out.set(x, y, static_cast<std::uint16_t>(acc / 9));
    }
  }
  return out;
}

Image lpf_binomial(const Image& img, const adders::ApproxAdder& adder) {
  const std::uint64_t mask = adder.operand_mask();
  // Horizontal [1 2 1] pass.
  Image h(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const std::uint64_t c = img.at_clamped(x, y);
      std::uint64_t acc = adder.add(img.at_clamped(x - 1, y), c) & mask;
      acc = adder.add(acc, c) & mask;
      acc = adder.add(acc, img.at_clamped(x + 1, y)) & mask;
      h.set(x, y, static_cast<std::uint16_t>(acc / 4));
    }
  }
  // Vertical pass.
  Image out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const std::uint64_t c = h.at_clamped(x, y);
      std::uint64_t acc = adder.add(h.at_clamped(x, y - 1), c) & mask;
      acc = adder.add(acc, c) & mask;
      acc = adder.add(acc, h.at_clamped(x, y + 1)) & mask;
      out.set(x, y, static_cast<std::uint16_t>(acc / 4));
    }
  }
  return out;
}

}  // namespace gear::apps
