#include "apps/quality.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace gear::apps {

double psnr(const Image& ref, const Image& test) {
  assert(ref.width() == test.width() && ref.height() == test.height());
  double mse = 0.0;
  const auto n = static_cast<double>(ref.pixel_count());
  for (int y = 0; y < ref.height(); ++y) {
    for (int x = 0; x < ref.width(); ++x) {
      const double d = static_cast<double>(ref.at(x, y)) - test.at(x, y);
      mse += d * d;
    }
  }
  mse /= n;
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

double mean_abs_pixel_error(const Image& ref, const Image& test) {
  assert(ref.width() == test.width() && ref.height() == test.height());
  double acc = 0.0;
  for (int y = 0; y < ref.height(); ++y) {
    for (int x = 0; x < ref.width(); ++x) {
      acc += std::abs(static_cast<double>(ref.at(x, y)) - test.at(x, y));
    }
  }
  return acc / static_cast<double>(ref.pixel_count());
}

double exact_pixel_rate(const Image& ref, const Image& test) {
  assert(ref.width() == test.width() && ref.height() == test.height());
  std::size_t match = 0;
  for (int y = 0; y < ref.height(); ++y) {
    for (int x = 0; x < ref.width(); ++x) {
      if (ref.at(x, y) == test.at(x, y)) ++match;
    }
  }
  return static_cast<double>(match) / static_cast<double>(ref.pixel_count());
}

}  // namespace gear::apps
