#include "apps/quality.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace gear::apps {

ImageQuality image_quality(const Image& ref, const Image& test) {
  assert(ref.width() == test.width() && ref.height() == test.height());
  double mse = 0.0;
  double abs_acc = 0.0;
  std::size_t match = 0;
  for (int y = 0; y < ref.height(); ++y) {
    for (int x = 0; x < ref.width(); ++x) {
      const double d = static_cast<double>(ref.at(x, y)) - test.at(x, y);
      mse += d * d;
      abs_acc += std::abs(d);
      if (ref.at(x, y) == test.at(x, y)) ++match;
    }
  }
  const auto n = static_cast<double>(ref.pixel_count());
  mse /= n;
  ImageQuality q;
  q.psnr = mse == 0.0 ? std::numeric_limits<double>::infinity()
                      : 10.0 * std::log10(255.0 * 255.0 / mse);
  q.mean_abs_error = abs_acc / n;
  q.exact_rate = static_cast<double>(match) / n;
  return q;
}

double psnr(const Image& ref, const Image& test) {
  return image_quality(ref, test).psnr;
}

double mean_abs_pixel_error(const Image& ref, const Image& test) {
  return image_quality(ref, test).mean_abs_error;
}

double exact_pixel_rate(const Image& ref, const Image& test) {
  return image_quality(ref, test).exact_rate;
}

}  // namespace gear::apps
