#include "apps/trace.h"

#include <stdexcept>
#include <string>

#include "adders/registry.h"
#include "apps/batch_kernel.h"
#include "apps/generate.h"
#include "apps/integral.h"
#include "apps/lpf.h"
#include "apps/sad.h"
#include "apps/sobel.h"
#include "stats/rng.h"

namespace gear::apps {

stats::TraceSource capture_kernel_trace(const std::string& kernel, int width,
                                        int img_w, int img_h,
                                        std::uint64_t seed, KernelPath path) {
  stats::Rng img_rng = stats::Rng::substream(seed, "trace-img:" + kernel);
  const Image img = smoothed_noise_image(img_w, img_h, img_rng, 2);

  const adders::AdderPtr exact =
      adders::make_adder("rca:" + std::to_string(width));
  TracingAdder traced(*exact);
  const bool batch = path == KernelPath::kBatch;

  if (kernel == "integral") {
    if (batch) {
      (void)row_integral_batch(img, traced);
    } else {
      (void)row_integral(img, traced);
    }
  } else if (kernel == "sad") {
    stats::Rng shift_rng = stats::Rng::substream(seed, "trace-shift:" + kernel);
    const Image cand = shifted_image(img, 2, 1, 2, shift_rng);
    const int bx = img_w / 4, by = img_h / 4;
    if (batch) {
      (void)sad_search_batch(img, cand, bx, by, /*bw=*/16, /*bh=*/16,
                             /*range=*/3, traced);
    } else {
      (void)sad_search(img, cand, bx, by, /*bw=*/16, /*bh=*/16, /*range=*/3,
                       traced);
    }
  } else if (kernel == "lpf") {
    if (batch) {
      (void)lpf3x3_batch(img, traced);
    } else {
      (void)lpf3x3(img, traced);
    }
  } else if (kernel == "sobel") {
    if (batch) {
      (void)sobel_batch(img, traced);
    } else {
      (void)sobel(img, traced);
    }
  } else {
    throw std::invalid_argument("capture_kernel_trace: unknown kernel '" +
                                kernel + "'");
  }

  return traced.take_source(kernel + "-" + std::to_string(width));
}

}  // namespace gear::apps
