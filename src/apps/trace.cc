#include "apps/trace.h"

// Header-only; this TU anchors the library target.
