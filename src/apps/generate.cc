#include "apps/generate.h"

#include <algorithm>

namespace gear::apps {

Image gradient_image(int width, int height) {
  Image img(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      img.set(x, y, static_cast<std::uint16_t>((x * 255) / std::max(1, width - 1)));
    }
  }
  return img;
}

Image noise_image(int width, int height, stats::Rng& rng) {
  Image img(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      img.set(x, y, static_cast<std::uint16_t>(rng.bits(8)));
    }
  }
  return img;
}

Image smoothed_noise_image(int width, int height, stats::Rng& rng, int passes) {
  Image img = noise_image(width, height, rng);
  for (int pass = 0; pass < passes; ++pass) {
    Image out(width, height);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        std::uint32_t acc = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            acc += img.at_clamped(x + dx, y + dy);
          }
        }
        out.set(x, y, static_cast<std::uint16_t>(acc / 9));
      }
    }
    img = out;
  }
  return img;
}

Image checkerboard_image(int width, int height, int period) {
  Image img(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const bool on = ((x / period) + (y / period)) % 2 == 0;
      img.set(x, y, on ? 255 : 0);
    }
  }
  return img;
}

Image shifted_image(const Image& base, int dx, int dy, int noise_amp,
                    stats::Rng& rng) {
  Image out(base.width(), base.height());
  for (int y = 0; y < base.height(); ++y) {
    for (int x = 0; x < base.width(); ++x) {
      int v = base.at_clamped(x - dx, y - dy);
      if (noise_amp > 0) {
        v += static_cast<int>(rng.range(0, static_cast<std::uint64_t>(2 * noise_amp))) -
             noise_amp;
      }
      out.set(x, y, static_cast<std::uint16_t>(std::clamp(v, 0, 65535)));
    }
  }
  return out;
}

}  // namespace gear::apps
