// Image Integral kernels (paper Sections 4.2 / 4.4, refs [7][14]).
//
// The 1D row integral is the paper's Table I workload: a running prefix
// sum along each row, truncated to the adder's width. The 2D integral
// image (Veksler-style) uses the recurrence
//   ii(x,y) = i(x,y) + ii(x-1,y) + ii(x,y-1) - ii(x-1,y-1),
// with the additions routed through the adder under test and the
// subtraction exact (it is a bookkeeping step, not an adder instance).
#pragma once

#include <cstdint>
#include <vector>

#include "adders/adder.h"
#include "apps/image.h"

namespace gear::apps {

/// Row-wise running sums. Element [y][x] is the prefix sum of row y up to
/// column x, computed with `adder` and truncated to its width.
std::vector<std::vector<std::uint64_t>> row_integral(const Image& img,
                                                     const adders::ApproxAdder& adder);

/// 2D integral image, additions through `adder`. Values truncated to the
/// adder width.
std::vector<std::vector<std::uint64_t>> integral_2d(const Image& img,
                                                    const adders::ApproxAdder& adder);

/// Mean absolute difference between two integral results (per entry).
double integral_mean_abs_error(
    const std::vector<std::vector<std::uint64_t>>& ref,
    const std::vector<std::vector<std::uint64_t>>& test);

/// Box-filter sum over [x0,x1]x[y0,y1] from a 2D integral image — the
/// constant-time query the integral image exists for (Veksler [14]).
std::uint64_t box_sum(const std::vector<std::vector<std::uint64_t>>& ii,
                      int x0, int y0, int x1, int y1);

}  // namespace gear::apps
