// Lane-parallel (64-wide) application kernels (ROADMAP item 4).
//
// Each *_batch function computes exactly what its scalar counterpart in
// integral/sad/lpf/sobel computes — same add sequence per output value,
// routed through ApproxAdder::add_batch instead of per-pixel add() — so
// outputs are pinned bit-identical for every adder family (GeAr adapters
// run 64 bitsliced lanes per pass; everything else rides the scalar
// add_batch fallback). Lane mappings (DESIGN.md §5j):
//
//   row_integral_batch   lane = image row; the per-row prefix-sum
//                        accumulator chain feeds each batch's sums back
//                        as the next column's operand.
//   lpf*/sobel_batch     lane = output pixel, 64 consecutive raster-order
//                        pixels per batch; the 3x3 add-tree replays the
//                        scalar tap order lane-parallel.
//   sad_search_batch     lane = candidate displacement, raster (dy, dx)
//                        order; the winner merge scans lanes in batch
//                        order with the scalar strictly-less first-wins
//                        rule, so ties resolve identically.
//
// Tail batches (geometry not a multiple of 64) run with count < 64; the
// bitsliced evaluator masks dead lanes, and gather/scatter loops only
// touch live ones. The optional ParallelExecutor distributes whole
// batches (disjoint outputs, no shared accumulator state), so results
// are bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "adders/adder.h"
#include "apps/image.h"
#include "apps/sad.h"
#include "stats/parallel.h"

namespace gear::apps {

/// Batched row_integral: bit-identical to apps::row_integral.
std::vector<std::vector<std::uint64_t>> row_integral_batch(
    const Image& img, const adders::ApproxAdder& adder,
    stats::ParallelExecutor* pool = nullptr);

/// Batched 3x3 box low-pass: bit-identical to apps::lpf3x3.
Image lpf3x3_batch(const Image& img, const adders::ApproxAdder& adder,
                   stats::ParallelExecutor* pool = nullptr);

/// Batched separable binomial low-pass: bit-identical to apps::lpf_binomial.
Image lpf_binomial_batch(const Image& img, const adders::ApproxAdder& adder,
                         stats::ParallelExecutor* pool = nullptr);

/// Batched Sobel gradient magnitude: bit-identical to apps::sobel.
Image sobel_batch(const Image& img, const adders::ApproxAdder& adder,
                  stats::ParallelExecutor* pool = nullptr);

/// Batched full-search motion estimation: bit-identical to apps::sad_search
/// (including raster-order tie resolution).
SadMatch sad_search_batch(const Image& ref, const Image& cand, int bx, int by,
                          int bw, int bh, int range,
                          const adders::ApproxAdder& adder);

/// Batched sad_match_rate; tiles distribute over `pool`.
double sad_match_rate_batch(const Image& ref, const Image& cand, int bw,
                            int bh, int range,
                            const adders::ApproxAdder& adder,
                            stats::ParallelExecutor* pool = nullptr);

}  // namespace gear::apps
