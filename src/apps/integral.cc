#include "apps/integral.h"

#include <cassert>
#include <cmath>

namespace gear::apps {

std::vector<std::vector<std::uint64_t>> row_integral(const Image& img,
                                                     const adders::ApproxAdder& adder) {
  const std::uint64_t mask = adder.operand_mask();
  std::vector<std::vector<std::uint64_t>> out(
      static_cast<std::size_t>(img.height()));
  for (int y = 0; y < img.height(); ++y) {
    auto& row = out[static_cast<std::size_t>(y)];
    row.resize(static_cast<std::size_t>(img.width()));
    std::uint64_t acc = 0;
    for (int x = 0; x < img.width(); ++x) {
      acc = adder.add(acc, img.at(x, y)) & mask;
      row[static_cast<std::size_t>(x)] = acc;
    }
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> integral_2d(const Image& img,
                                                    const adders::ApproxAdder& adder) {
  const std::uint64_t mask = adder.operand_mask();
  std::vector<std::vector<std::uint64_t>> ii(
      static_cast<std::size_t>(img.height()),
      std::vector<std::uint64_t>(static_cast<std::size_t>(img.width()), 0));
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const std::uint64_t left = x > 0 ? ii[static_cast<std::size_t>(y)][static_cast<std::size_t>(x - 1)] : 0;
      const std::uint64_t up = y > 0 ? ii[static_cast<std::size_t>(y - 1)][static_cast<std::size_t>(x)] : 0;
      const std::uint64_t diag =
          (x > 0 && y > 0)
              ? ii[static_cast<std::size_t>(y - 1)][static_cast<std::size_t>(x - 1)]
              : 0;
      std::uint64_t acc = adder.add(img.at(x, y), left) & mask;
      acc = adder.add(acc, up) & mask;
      // Exact subtraction modulo the adder width.
      acc = (acc - diag) & mask;
      ii[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = acc;
    }
  }
  return ii;
}

double integral_mean_abs_error(
    const std::vector<std::vector<std::uint64_t>>& ref,
    const std::vector<std::vector<std::uint64_t>>& test) {
  assert(ref.size() == test.size());
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t y = 0; y < ref.size(); ++y) {
    assert(ref[y].size() == test[y].size());
    for (std::size_t x = 0; x < ref[y].size(); ++x) {
      acc += std::abs(static_cast<double>(ref[y][x]) -
                      static_cast<double>(test[y][x]));
      ++n;
    }
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

std::uint64_t box_sum(const std::vector<std::vector<std::uint64_t>>& ii,
                      int x0, int y0, int x1, int y1) {
  assert(x0 <= x1 && y0 <= y1);
  auto get = [&](int x, int y) -> std::uint64_t {
    if (x < 0 || y < 0) return 0;
    return ii[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
  };
  return get(x1, y1) - get(x0 - 1, y1) - get(x1, y0 - 1) + get(x0 - 1, y0 - 1);
}

}  // namespace gear::apps
