// Static timing analysis over the mapped network.
//
// The delay model is calibrated against the paper's Virtex-6 numbers:
// carry chains are fast (t_carry per bit after a t_entry cost to get onto
// the chain, t_exit to leave it through the sum XOR), LUT levels cost
// t_lut + t_net each, and heavily loaded nets pay a fan-out penalty (this
// is what makes ACA-I's many overlapping windows slower than its chain
// length alone suggests). Absolute nanoseconds are a model, not an ISE
// run; EXPERIMENTS.md compares shapes, not absolutes.
#pragma once

#include <map>
#include <string>

#include "netlist/netlist.h"
#include "synth/lut_map.h"

namespace gear::synth {

struct DelayModel {
  double t_lut = 0.25;      ///< LUT logic delay (ns)
  double t_net = 0.35;      ///< average routing per LUT level (ns)
  double t_carry = 0.035;   ///< carry chain, per bit (ns)
  double t_entry = 0.45;    ///< operand -> chain (propagate LUT + route)
  double t_exit = 0.35;     ///< chain -> fabric (sum XOR + route)
  double t_fanout = 0.03;   ///< extra per additional load on a net
  double t_fanout_cap = 0.30;

  /// Constants above, tuned so a 16-bit RCA comes out at ~1.36 ns
  /// (paper: 1.365 ns) and a 10-bit sub-adder at ~1.15-1.25 ns.
  static DelayModel virtex6() { return DelayModel{}; }
};

struct TimingReport {
  double critical_ns = 0.0;                     ///< worst output arrival
  std::map<std::string, double> port_arrival;   ///< per output port (ns)
  int lut_levels = 0;
};

TimingReport analyze_timing(const netlist::Netlist& nl, const MappingResult& mapping,
                            const DelayModel& model);

}  // namespace gear::synth
