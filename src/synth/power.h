// Switching-activity estimation and a dynamic-power/energy proxy.
//
// Dynamic power on an FPGA is dominated by net toggling weighted by
// driven capacitance. We estimate per-net toggle rates by zero-delay
// simulation over a stream of operand vectors (consecutive-vector
// transitions, no glitch modelling) and weight each toggle by a fan-out
// proportional capacitance. The result is a relative energy-per-operation
// figure: meaningful for comparing adders against each other (the paper's
// motivation — approximation buys power), not as absolute Joules.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "stats/rng.h"

namespace gear::synth {

struct PowerModel {
  double cap_base = 1.0;        ///< capacitance per net (arbitrary units)
  double cap_per_fanout = 0.5;  ///< extra per consumer
  static PowerModel virtex6() { return PowerModel{}; }
};

struct PowerReport {
  double toggles_per_op = 0.0;     ///< mean net toggles per input vector
  double energy_per_op = 0.0;      ///< capacitance-weighted toggles
  double mean_activity = 0.0;      ///< average per-net toggle probability
  std::uint64_t vectors = 0;
};

/// Estimates switching activity of a two-operand adder netlist (ports
/// "a"/"b"; other inputs held at 0) over `vectors` uniform random vector
/// pairs applied back-to-back.
PowerReport estimate_power(const netlist::Netlist& nl, std::uint64_t vectors,
                           stats::Rng& rng,
                           const PowerModel& model = PowerModel::virtex6());

}  // namespace gear::synth
