#include "synth/report.h"

namespace gear::synth {

SynthReport synthesize(const netlist::Netlist& nl, const DelayModel& model) {
  SynthReport report;
  report.circuit = nl.name();
  const MappingResult mapping = map_to_luts(nl);
  report.timing = analyze_timing(nl, mapping, model);
  report.area_luts = mapping.area_luts();
  report.carry_elements = mapping.carry_elements;
  report.lut_count = static_cast<int>(mapping.luts.size());
  report.lut_levels = mapping.max_lut_depth;
  report.delay_ns = report.timing.critical_ns;
  return report;
}

double sum_path_delay(const SynthReport& report) {
  auto it = report.timing.port_arrival.find("sum");
  return it != report.timing.port_arrival.end() ? it->second
                                                : report.timing.critical_ns;
}

}  // namespace gear::synth
