// One-call synthesis: LUT mapping + timing for a circuit.
#pragma once

#include <string>

#include "netlist/netlist.h"
#include "synth/lut_map.h"
#include "synth/timing.h"

namespace gear::synth {

struct SynthReport {
  std::string circuit;
  int area_luts = 0;
  double delay_ns = 0.0;
  int carry_elements = 0;
  int lut_count = 0;
  int lut_levels = 0;
  TimingReport timing;
};

/// Maps and times `nl` with the given delay model.
SynthReport synthesize(const netlist::Netlist& nl,
                       const DelayModel& model = DelayModel::virtex6());

/// Delay of the arithmetic result only (the "sum" port), excluding the
/// error-flag outputs — what the paper's Path Delay column reports for
/// the plain approximate adders.
double sum_path_delay(const SynthReport& report);

}  // namespace gear::synth
