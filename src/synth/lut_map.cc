#include "synth/lut_map.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace gear::synth {

namespace {

using netlist::GateKind;
using netlist::NetId;

struct Cut {
  std::vector<NetId> leaves;  // sorted
  int depth = 0;

  bool operator<(const Cut& o) const {
    if (depth != o.depth) return depth < o.depth;
    return leaves.size() < o.leaves.size();
  }
};

/// Merges sorted leaf sets; returns false if the union exceeds k.
bool merge_leaves(const std::vector<NetId>& a, const std::vector<NetId>& b,
                  int k, std::vector<NetId>& out) {
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    NetId next;
    if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
      next = a[i];
      if (j < b.size() && b[j] == a[i]) ++j;
      ++i;
    } else {
      next = b[j];
      ++j;
    }
    out.push_back(next);
    if (static_cast<int>(out.size()) > k) return false;
  }
  return true;
}

constexpr std::size_t kMaxCutsPerNet = 10;

}  // namespace

MappingResult map_to_luts(const netlist::Netlist& nl, int k) {
  assert(k >= 2 && k <= 8);

  const std::size_t nets = nl.net_count();
  // Net classification. Constants fold into whatever consumes them (LUT
  // init values / chain ties), so they are leaves, not mappable logic.
  enum class NetClass : std::uint8_t { kLeaf, kLogic, kMacro };
  std::vector<NetClass> cls(nets, NetClass::kLeaf);
  for (const auto& g : nl.gates()) {
    if (netlist::is_carry_macro(g.kind)) {
      cls[g.output] = NetClass::kMacro;
    } else if (g.kind != netlist::GateKind::kConst0 &&
               g.kind != netlist::GateKind::kConst1) {
      cls[g.output] = NetClass::kLogic;
    }
  }

  // Cut enumeration in gate (topological) order.
  std::vector<std::vector<Cut>> cuts(nets);
  std::vector<int> best_depth(nets, 0);

  for (const auto& g : nl.gates()) {
    if (netlist::is_carry_macro(g.kind)) continue;
    std::vector<Cut> cand;
    // Seed with the gate's direct-fanin cut.
    {
      Cut direct;
      for (NetId in : g.inputs) direct.leaves.push_back(in);
      std::sort(direct.leaves.begin(), direct.leaves.end());
      direct.leaves.erase(std::unique(direct.leaves.begin(), direct.leaves.end()),
                          direct.leaves.end());
      if (static_cast<int>(direct.leaves.size()) <= k) {
        direct.depth = 0;
        for (NetId leaf : direct.leaves)
          direct.depth = std::max(direct.depth, best_depth[leaf]);
        direct.depth += 1;
        cand.push_back(std::move(direct));
      }
    }
    // Expand through logic fanins: combine each fanin's cut set.
    // (Pairwise for arity-2; sequential fold for arity-3.)
    {
      std::vector<std::vector<Cut>> in_cuts;
      for (NetId in : g.inputs) {
        std::vector<Cut> ic;
        if (cls[in] == NetClass::kLogic) {
          ic = cuts[in];
        }
        // Every fanin can also stop at itself.
        Cut trivial;
        trivial.leaves = {in};
        trivial.depth = best_depth[in];
        ic.push_back(std::move(trivial));
        in_cuts.push_back(std::move(ic));
      }
      std::vector<Cut> partial;
      partial.push_back(Cut{{}, 0});
      std::vector<NetId> merged;
      for (const auto& ic : in_cuts) {
        std::vector<Cut> next;
        for (const auto& base : partial) {
          for (const auto& c : ic) {
            if (!merge_leaves(base.leaves, c.leaves, k, merged)) continue;
            next.push_back(Cut{merged, std::max(base.depth, c.depth)});
            if (next.size() > 64) break;  // combinatorial guard
          }
          if (next.size() > 64) break;
        }
        partial = std::move(next);
      }
      for (auto& c : partial) {
        c.depth += 1;
        cand.push_back(std::move(c));
      }
    }
    std::sort(cand.begin(), cand.end());
    // Deduplicate identical leaf sets, keep the best few.
    std::vector<Cut> kept;
    for (auto& c : cand) {
      bool dup = false;
      for (const auto& kc : kept) {
        if (kc.leaves == c.leaves) {
          dup = true;
          break;
        }
      }
      if (!dup) kept.push_back(std::move(c));
      if (kept.size() >= kMaxCutsPerNet) break;
    }
    cuts[g.output] = std::move(kept);
    best_depth[g.output] =
        cuts[g.output].empty() ? 1 : cuts[g.output].front().depth;
  }

  // Roots: logic nets that must exist as physical signals — output-port
  // nets and fanins of carry macros.
  std::set<NetId> roots;
  auto add_root = [&](NetId n) {
    if (n < nets && cls[n] == NetClass::kLogic) roots.insert(n);
  };
  for (const auto& port : nl.outputs()) {
    for (NetId n : port.nets) add_root(n);
  }
  for (const auto& g : nl.gates()) {
    if (!netlist::is_carry_macro(g.kind)) continue;
    for (NetId in : g.inputs) add_root(in);
  }

  // Cover from the roots.
  MappingResult result;
  std::set<NetId> realized;
  std::vector<NetId> work(roots.begin(), roots.end());
  while (!work.empty()) {
    const NetId n = work.back();
    work.pop_back();
    if (realized.count(n)) continue;
    realized.insert(n);
    assert(!cuts[n].empty());
    const Cut& best = cuts[n].front();
    LutNode node;
    node.out = n;
    node.leaves = best.leaves;
    node.depth = best.depth;
    result.max_lut_depth = std::max(result.max_lut_depth, node.depth);
    result.luts.push_back(node);
    for (NetId leaf : best.leaves) {
      if (cls[leaf] == NetClass::kLogic && !realized.count(leaf)) {
        work.push_back(leaf);
      }
    }
  }

  // Carry elements: distinct full-adder positions (FaSum/FaCarry sharing
  // one input triple share one CARRY element and one feed LUT).
  std::set<std::vector<NetId>> fa_positions;
  for (const auto& g : nl.gates()) {
    if (netlist::is_carry_macro(g.kind)) fa_positions.insert(g.inputs);
  }
  result.carry_elements = static_cast<int>(fa_positions.size());
  return result;
}

}  // namespace gear::synth
