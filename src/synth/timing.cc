#include "synth/timing.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace gear::synth {

namespace {
using netlist::GateKind;
using netlist::NetId;
}  // namespace

TimingReport analyze_timing(const netlist::Netlist& nl, const MappingResult& mapping,
                            const DelayModel& model) {
  const std::size_t nets = nl.net_count();

  // Fan-out counts (consumers per net: gate fanins + port reads).
  std::vector<int> fanout(nets, 0);
  for (const auto& g : nl.gates()) {
    for (NetId in : g.inputs) ++fanout[in];
  }
  for (const auto& port : nl.outputs()) {
    for (NetId n : port.nets) ++fanout[n];
  }
  auto fanout_penalty = [&](NetId n) {
    const double extra = model.t_fanout * std::max(0, fanout[n] - 1);
    return std::min(extra, model.t_fanout_cap);
  };

  // Which nets are realized as LUT outputs, and their cut leaves.
  std::vector<const LutNode*> lut_of(nets, nullptr);
  for (const auto& lut : mapping.luts) lut_of[lut.out] = &lut;

  // Whether a net is a carry-macro output (reading it from the fabric
  // costs t_exit).
  std::vector<bool> is_macro_out(nets, false);
  std::vector<bool> is_fa_carry(nets, false);
  for (const auto& g : nl.gates()) {
    if (netlist::is_carry_macro(g.kind)) {
      is_macro_out[g.output] = true;
      is_fa_carry[g.output] = g.kind == GateKind::kFaCarry;
    }
  }

  std::vector<double> arrival(nets, 0.0);

  // Arrival of `n` as seen by fabric logic (LUT input or output port):
  // raw chain times pay the exit cost.
  auto fabric_arrival = [&](NetId n) {
    return arrival[n] + (is_macro_out[n] ? model.t_exit : 0.0);
  };

  // Process gates in topological order; LUT-covered nets get their
  // arrival from their selected cut, macro gates from the chain model.
  // Logic nets absorbed inside LUTs keep arrival 0 (they are never read).
  for (const auto& g : nl.gates()) {
    const NetId out = g.output;
    if (netlist::is_carry_macro(g.kind)) {
      // inputs = {a, b, cin}.
      const double ab = std::max(fabric_arrival(g.inputs[0]) + fanout_penalty(g.inputs[0]),
                                 fabric_arrival(g.inputs[1]) + fanout_penalty(g.inputs[1]));
      const NetId cin_net = g.inputs[2];
      const double cin = is_fa_carry[cin_net]
                             ? arrival[cin_net]  // stays on the chain
                             : fabric_arrival(cin_net);
      if (g.kind == GateKind::kFaCarry) {
        arrival[out] = std::max(ab + model.t_entry, cin + model.t_carry);
      } else {
        // Sum taps the chain through the XOR; exit cost added on read.
        arrival[out] = std::max(ab + model.t_entry, cin + model.t_carry);
      }
      continue;
    }
    if (const LutNode* lut = lut_of[out]) {
      double t = 0.0;
      for (NetId leaf : lut->leaves) {
        t = std::max(t, fabric_arrival(leaf) + fanout_penalty(leaf));
      }
      arrival[out] = t + model.t_lut + model.t_net;
      // LUT outputs live in the fabric: no exit cost.
      is_macro_out[out] = false;
    }
  }

  TimingReport report;
  report.lut_levels = mapping.max_lut_depth;
  for (const auto& port : nl.outputs()) {
    double t = 0.0;
    for (NetId n : port.nets) {
      t = std::max(t, fabric_arrival(n));
    }
    report.port_arrival[port.name] = t;
    report.critical_ns = std::max(report.critical_ns, t);
  }
  return report;
}

}  // namespace gear::synth
