#include "synth/power.h"

#include <cassert>

namespace gear::synth {

PowerReport estimate_power(const netlist::Netlist& nl, std::uint64_t vectors,
                           stats::Rng& rng, const PowerModel& model) {
  assert(vectors > 1);
  const std::size_t nets = nl.net_count();

  // Per-net capacitance from fan-out.
  std::vector<double> cap(nets, model.cap_base);
  for (const auto& g : nl.gates()) {
    for (netlist::NetId in : g.inputs) cap[in] += model.cap_per_fanout;
  }
  for (const auto& port : nl.outputs()) {
    for (netlist::NetId n : port.nets) cap[n] += model.cap_per_fanout;
  }

  // Locate the operand ports.
  int wa = 0, wb = 0;
  const netlist::Port* pa = nullptr;
  const netlist::Port* pb = nullptr;
  for (const auto& port : nl.inputs()) {
    if (port.name == "a") {
      pa = &port;
      wa = static_cast<int>(port.nets.size());
    } else if (port.name == "b") {
      pb = &port;
      wb = static_cast<int>(port.nets.size());
    }
  }
  assert(pa && pb);

  std::vector<bool> value(nets, false);
  std::vector<bool> prev(nets, false);
  std::vector<std::uint64_t> toggles(nets, 0);
  std::vector<bool> in_bits;

  for (std::uint64_t v = 0; v < vectors; ++v) {
    const std::uint64_t a = rng.bits(wa);
    const std::uint64_t b = rng.bits(wb);
    for (std::size_t i = 0; i < pa->nets.size(); ++i) {
      value[pa->nets[i]] = (a >> i) & 1ULL;
    }
    for (std::size_t i = 0; i < pb->nets.size(); ++i) {
      value[pb->nets[i]] = (b >> i) & 1ULL;
    }
    for (const auto& g : nl.gates()) {
      in_bits.clear();
      for (netlist::NetId in : g.inputs) in_bits.push_back(value[in]);
      value[g.output] = netlist::eval_gate(g.kind, in_bits);
    }
    if (v > 0) {
      for (std::size_t n = 0; n < nets; ++n) {
        if (value[n] != prev[n]) ++toggles[n];
      }
    }
    prev = value;
  }

  PowerReport report;
  report.vectors = vectors;
  const auto transitions = static_cast<double>(vectors - 1);
  double total_toggles = 0.0, energy = 0.0, activity = 0.0;
  for (std::size_t n = 0; n < nets; ++n) {
    const auto t = static_cast<double>(toggles[n]);
    total_toggles += t;
    energy += t * cap[n];
    activity += t / transitions;
  }
  report.toggles_per_op = total_toggles / transitions;
  report.energy_per_op = energy / transitions;
  report.mean_activity = nets ? activity / static_cast<double>(nets) : 0.0;
  return report;
}

}  // namespace gear::synth
