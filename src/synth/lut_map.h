// Cut-based K-LUT technology mapping.
//
// Logic gates are packed into K-input LUTs via exhaustive K-feasible cut
// enumeration (depth-oriented, with cut-count pruning); the kFaSum /
// kFaCarry macro gates are never absorbed — each distinct full-adder
// position maps onto one carry-chain element whose propagate/generate
// feed costs one LUT, matching Xilinx CARRY4 usage (an N-bit ripple core
// therefore costs exactly N LUTs, as the paper's Table I reports for the
// 16-bit RCA).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace gear::synth {

/// One selected LUT in the mapped network.
struct LutNode {
  netlist::NetId out = netlist::kInvalidNet;
  std::vector<netlist::NetId> leaves;  ///< cut inputs (nets)
  int depth = 0;                       ///< LUT level from the inputs
};

struct MappingResult {
  std::vector<LutNode> luts;
  int carry_elements = 0;  ///< distinct full-adder positions
  int max_lut_depth = 0;

  /// Total area in LUTs: packed logic plus one per carry element.
  int area_luts() const {
    return static_cast<int>(luts.size()) + carry_elements;
  }
};

/// Maps `nl` onto K-input LUTs. `k` in [2, 8].
MappingResult map_to_luts(const netlist::Netlist& nl, int k = 6);

}  // namespace gear::synth
