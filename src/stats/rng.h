// Seeded random-number utilities.
//
// Every stochastic experiment in this repository draws from an Rng that is
// explicitly seeded, so all tables and figures are bit-reproducible from a
// fresh checkout. Named sub-streams allow independent experiments to share
// one master seed without correlating their draws.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace gear::stats {

/// A thin wrapper around std::mt19937_64 with convenience draws for the
/// operand widths used by the adder models (1..64 bits).
class Rng {
 public:
  /// Default seed used by all benchmarks unless overridden.
  static constexpr std::uint64_t kDefaultSeed = 0x67656172'64616335ULL;  // "gear", "dac5"

  explicit Rng(std::uint64_t seed = kDefaultSeed) : engine_(seed) {}

  /// Derives an independent sub-stream from a master seed and a label.
  /// The label is hashed (FNV-1a) into the seed, so distinct labels give
  /// decorrelated streams deterministically.
  static Rng substream(std::uint64_t master_seed, std::string_view label);

  /// Uniform draw over all 64-bit values.
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform draw over [0, 2^bits). `bits` must be in [0, 64].
  std::uint64_t bits(int bits);

  /// Uniform draw over [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Standard normal draw.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw.
  bool flip(double p = 0.5);

  /// Access the underlying engine for use with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// FNV-1a hash of a string, used to derive sub-stream seeds.
std::uint64_t fnv1a(std::string_view s);

}  // namespace gear::stats
