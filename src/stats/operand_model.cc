#include "stats/operand_model.h"

#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/width.h"

namespace gear::stats {

namespace {

constexpr double kUniformGen = 0.25;
constexpr double kUniformProp = 0.5;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void fnv_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  fnv_u64(h, bits);
}

}  // namespace

OperandModel OperandModel::uniform(int width) {
  if (width < 1 || width > 64) {
    throw std::invalid_argument("OperandModel::uniform: width out of [1, 64]");
  }
  OperandModel m;
  m.kind_ = Kind::kUniform;
  m.width_ = width;
  m.label_ = "uniform";
  m.compute_fingerprint();
  return m;
}

OperandModel OperandModel::from_trace(int width,
                                      const std::vector<OperandPair>& trace,
                                      std::string label) {
  if (width < 1 || width > 64) {
    throw std::invalid_argument("OperandModel::from_trace: width out of [1, 64]");
  }
  if (trace.empty()) {
    throw std::invalid_argument("OperandModel::from_trace: empty trace");
  }
  OperandModel m;
  m.kind_ = Kind::kEmpirical;
  m.width_ = width;
  m.samples_ = trace.size();
  m.label_ = std::move(label);

  const std::uint64_t mask = core::width_mask(width);
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> counts;
  for (const OperandPair& p : trace) {
    const std::uint64_t a = p.a & mask;
    const std::uint64_t b = p.b & mask;
    ++counts[{a & b, a ^ b}];
  }
  m.classes_.reserve(counts.size());
  for (const auto& [gp, count] : counts) {
    m.classes_.push_back({gp.first, gp.second, count});
  }

  // Per-bit marginals from the class counts (exact: mass per class is
  // count / samples, accumulated as integers first).
  m.gen_p_.assign(static_cast<std::size_t>(width), 0.0);
  m.prop_p_.assign(static_cast<std::size_t>(width), 0.0);
  std::vector<std::uint64_t> gen_c(static_cast<std::size_t>(width), 0);
  std::vector<std::uint64_t> prop_c(static_cast<std::size_t>(width), 0);
  for (const GpClass& c : m.classes_) {
    for (int t = 0; t < width; ++t) {
      gen_c[static_cast<std::size_t>(t)] += ((c.gen >> t) & 1ULL) * c.count;
      prop_c[static_cast<std::size_t>(t)] += ((c.prop >> t) & 1ULL) * c.count;
    }
  }
  const double inv = 1.0 / static_cast<double>(m.samples_);
  for (int t = 0; t < width; ++t) {
    m.gen_p_[static_cast<std::size_t>(t)] =
        static_cast<double>(gen_c[static_cast<std::size_t>(t)]) * inv;
    m.prop_p_[static_cast<std::size_t>(t)] =
        static_cast<double>(prop_c[static_cast<std::size_t>(t)]) * inv;
  }
  m.compute_fingerprint();
  return m;
}

OperandModel OperandModel::from_source(OperandSource& source,
                                       std::uint64_t samples) {
  std::vector<OperandPair> pairs(samples);
  source.fill(pairs.data(), pairs.size());
  return from_trace(source.width(), pairs, source.name());
}

OperandModel OperandModel::marginal(int width, std::vector<double> gen_p,
                                    std::vector<double> prop_p,
                                    std::string label) {
  if (width < 1 || width > 64) {
    throw std::invalid_argument("OperandModel::marginal: width out of [1, 64]");
  }
  if (gen_p.size() != static_cast<std::size_t>(width) ||
      prop_p.size() != static_cast<std::size_t>(width)) {
    throw std::invalid_argument(
        "OperandModel::marginal: probability vectors must have `width` entries");
  }
  for (int t = 0; t < width; ++t) {
    const double g = gen_p[static_cast<std::size_t>(t)];
    const double p = prop_p[static_cast<std::size_t>(t)];
    if (g < 0.0 || p < 0.0 || g + p > 1.0) {
      throw std::invalid_argument(
          "OperandModel::marginal: need gen, prop >= 0 and gen + prop <= 1");
    }
  }
  OperandModel m;
  m.kind_ = Kind::kMarginal;
  m.width_ = width;
  m.gen_p_ = std::move(gen_p);
  m.prop_p_ = std::move(prop_p);
  m.label_ = std::move(label);
  m.compute_fingerprint();
  return m;
}

OperandModel OperandModel::marginal_model() const {
  if (kind_ == Kind::kUniform) return *this;
  OperandModel m;
  m.kind_ = Kind::kMarginal;
  m.width_ = width_;
  m.gen_p_ = gen_p_;
  m.prop_p_ = prop_p_;
  m.label_ = label_ + "+marginal";
  m.compute_fingerprint();
  return m;
}

double OperandModel::gen_prob(int t) const {
  if (t < 0 || t >= width_) return 0.0;
  if (kind_ == Kind::kUniform) return kUniformGen;
  return gen_p_[static_cast<std::size_t>(t)];
}

double OperandModel::prop_prob(int t) const {
  if (t < 0 || t >= width_) return 0.0;
  if (kind_ == Kind::kUniform) return kUniformProp;
  return prop_p_[static_cast<std::size_t>(t)];
}

double OperandModel::kill_prob(int t) const {
  if (t < 0 || t >= width_) return 1.0;
  if (kind_ == Kind::kUniform) return kUniformGen;
  return 1.0 - gen_prob(t) - prop_prob(t);
}

double OperandModel::window_event_prob(int gen_at, int lo, int hi) const {
  if (lo < 0 || hi < lo || (gen_at >= 0 && gen_at >= lo)) {
    throw std::invalid_argument("OperandModel::window_event_prob: bad window");
  }
  if (kind_ == Kind::kEmpirical) {
    // Exact joint over the class list: [lo, hi) is a propagate run and
    // gen_at generates. Positions >= width are zero in every class (kill),
    // so a run reaching above the trace width has probability 0 — which
    // the mask test below yields for free.
    const std::uint64_t run =
        core::width_mask(hi) & ~core::width_mask(lo);
    std::uint64_t hits = 0;
    for (const GpClass& c : classes_) {
      if ((c.prop & run) != run) continue;
      if (gen_at >= 0 && !((c.gen >> gen_at) & 1ULL)) continue;
      hits += c.count;
    }
    return static_cast<double>(hits) * (1.0 / static_cast<double>(samples_));
  }
  double acc = gen_at >= 0 ? gen_prob(gen_at) : 1.0;
  for (int t = lo; t < hi; ++t) acc *= prop_prob(t);
  return acc;
}

void OperandModel::compute_fingerprint() {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, static_cast<std::uint64_t>(kind_));
  fnv_u64(h, static_cast<std::uint64_t>(width_));
  switch (kind_) {
    case Kind::kUniform:
      break;
    case Kind::kMarginal:
      for (double v : gen_p_) fnv_double(h, v);
      for (double v : prop_p_) fnv_double(h, v);
      break;
    case Kind::kEmpirical:
      fnv_u64(h, samples_);
      for (const GpClass& c : classes_) {
        fnv_u64(h, c.gen);
        fnv_u64(h, c.prop);
        fnv_u64(h, c.count);
      }
      break;
  }
  fingerprint_ = h;
}

}  // namespace gear::stats
