#include "stats/distributions.h"

#include "core/width.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gear::stats {

GaussianClampedSource::GaussianClampedSource(int width, double mean_frac,
                                             double stddev_frac, Rng rng)
    : width_(width), rng_(rng) {
  assert(width >= 1 && width <= 64);
  max_ = core::width_mask(width);
  const auto span = static_cast<double>(max_);
  mean_ = mean_frac * span;
  stddev_ = stddev_frac * span;
}

std::uint64_t GaussianClampedSource::draw() {
  const double x = rng_.normal(mean_, stddev_);
  if (x <= 0.0) return 0;
  if (x >= static_cast<double>(max_)) return max_;
  return static_cast<std::uint64_t>(x);
}

OperandPair GaussianClampedSource::next() { return {draw(), draw()}; }

SmallValueSource::SmallValueSource(int width, double exponent, Rng rng)
    : width_(width), exponent_(exponent), rng_(rng) {
  assert(width >= 1 && width <= 64);
  assert(exponent >= 1.0);
  max_ = core::width_mask(width);
}

std::uint64_t SmallValueSource::draw() {
  const double u = std::pow(rng_.uniform01(), exponent_);
  return static_cast<std::uint64_t>(u * static_cast<double>(max_));
}

OperandPair SmallValueSource::next() { return {draw(), draw()}; }

TraceSource::TraceSource(int width, std::vector<OperandPair> trace, std::string label)
    : width_(width), trace_(std::move(trace)), label_(std::move(label)) {
  assert(!trace_.empty());
}

OperandPair TraceSource::next() {
  const OperandPair p = trace_[pos_];
  pos_ = (pos_ + 1) % trace_.size();
  return p;
}

std::unique_ptr<OperandSource> make_uniform(int width, std::uint64_t seed) {
  return std::make_unique<UniformSource>(width, Rng(seed));
}

std::unique_ptr<OperandSource> make_gaussian(int width, std::uint64_t seed) {
  return std::make_unique<GaussianClampedSource>(width, 0.5, 0.2, Rng(seed));
}

std::unique_ptr<OperandSource> make_small_value(int width, std::uint64_t seed) {
  return std::make_unique<SmallValueSource>(width, 2.5, Rng(seed));
}

}  // namespace gear::stats
