// Histograms for error-distance distributions.
//
// The adder experiments produce two kinds of distributions: dense
// small-domain ones (e.g. per-bit flip counts) and very sparse wide-domain
// ones (error magnitudes of an N-bit adder, which concentrate on a handful
// of powers of two). Histogram covers the dense case; SparseHistogram the
// sparse one.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace gear::stats {

/// Fixed-width binned histogram over [lo, hi).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  /// Combines another histogram with identical (lo, hi, bins) geometry
  /// into this one (parallel shard merge).
  void merge(const Histogram& other);

  std::uint64_t total() const { return total_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Samples below lo / at-or-above hi.
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Value at quantile q in [0,1], linearly interpolated within the bin.
  /// Under/overflow samples clamp to the range edges.
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Exact counts over sparse integer keys (e.g. signed error distances).
class SparseHistogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);

  /// Adds another histogram's counts into this one (parallel shard
  /// merge). Key-wise addition, so merge order never matters.
  void merge(const SparseHistogram& other);

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::int64_t key) const;
  std::size_t distinct() const { return counts_.size(); }
  const std::map<std::int64_t, std::uint64_t>& entries() const { return counts_; }

  double mean() const;
  /// Mean of |key| — the Mean Error Distance when keys are signed errors.
  double mean_abs() const;
  std::int64_t min_key() const;
  std::int64_t max_key() const;
  /// Fraction of samples with key == 0 (i.e. exact results).
  double fraction_zero() const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace gear::stats
