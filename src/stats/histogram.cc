#include "stats/histogram.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace gear::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // guard fp rounding
  counts_[idx] += weight;
}

void Histogram::merge(const Histogram& other) {
  assert(lo_ == other.lo_ && hi_ == other.hi_ &&
         counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void SparseHistogram::add(std::int64_t key, std::uint64_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

void SparseHistogram::merge(const SparseHistogram& other) {
  for (const auto& [key, weight] : other.counts_) counts_[key] += weight;
  total_ += other.total_;
}

std::uint64_t SparseHistogram::count(std::int64_t key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double SparseHistogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [k, c] : counts_)
    acc += static_cast<double>(k) * static_cast<double>(c);
  return acc / static_cast<double>(total_);
}

double SparseHistogram::mean_abs() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [k, c] : counts_)
    acc += std::abs(static_cast<double>(k)) * static_cast<double>(c);
  return acc / static_cast<double>(total_);
}

std::int64_t SparseHistogram::min_key() const {
  return counts_.empty() ? 0 : counts_.begin()->first;
}

std::int64_t SparseHistogram::max_key() const {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

double SparseHistogram::fraction_zero() const {
  if (total_ == 0) return 1.0;
  return static_cast<double>(count(0)) / static_cast<double>(total_);
}

}  // namespace gear::stats
