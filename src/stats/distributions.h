// Operand distributions for driving adder accuracy experiments.
//
// The paper evaluates error probability under uniform operands (Table III)
// and accuracy metrics under image-derived operands (Table I, Fig. 9). An
// OperandSource abstracts both so metric code is distribution-agnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stats/rng.h"

namespace gear::stats {

/// A pair of N-bit operands for one addition.
struct OperandPair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Abstract stream of operand pairs for an N-bit adder.
class OperandSource {
 public:
  virtual ~OperandSource() = default;
  virtual OperandPair next() = 0;
  virtual int width() const = 0;
  virtual std::string name() const = 0;

  /// Draws `n` pairs into out[0..n), bit-identical to n successive next()
  /// calls. Batch consumers (bitsliced 64-lane packing, service request
  /// builders) use this instead of a virtual call per op; sources with a
  /// cheap inner loop override it.
  virtual void fill(OperandPair* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next();
  }
};

/// Independent uniform operands over [0, 2^N) — the paper's Table III setup.
class UniformSource final : public OperandSource {
 public:
  UniformSource(int width, Rng rng) : width_(width), rng_(rng) {}
  OperandPair next() override { return {rng_.bits(width_), rng_.bits(width_)}; }
  void fill(OperandPair* out, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) {
      out[i].a = rng_.bits(width_);
      out[i].b = rng_.bits(width_);
    }
  }
  int width() const override { return width_; }
  std::string name() const override { return "uniform"; }

 private:
  int width_;
  Rng rng_;
};

/// Gaussian-distributed operands clamped to [0, 2^N), modelling the
/// mid-range concentration of natural-image pixel sums.
class GaussianClampedSource final : public OperandSource {
 public:
  GaussianClampedSource(int width, double mean_frac, double stddev_frac, Rng rng);
  OperandPair next() override;
  int width() const override { return width_; }
  std::string name() const override { return "gaussian"; }

 private:
  std::uint64_t draw();
  int width_;
  double mean_, stddev_;
  std::uint64_t max_;
  Rng rng_;
};

/// Operands with low-magnitude bias (small values dominate), modelling
/// difference images / SAD residuals.
class SmallValueSource final : public OperandSource {
 public:
  /// `exponent` > 1 skews towards small values (power-law-ish via u^exponent).
  SmallValueSource(int width, double exponent, Rng rng);
  OperandPair next() override;
  int width() const override { return width_; }
  std::string name() const override { return "small-value"; }

 private:
  std::uint64_t draw();
  int width_;
  double exponent_;
  std::uint64_t max_;
  Rng rng_;
};

/// Replays an explicit list of operand pairs (e.g. extracted from an image
/// kernel trace), cycling when exhausted.
class TraceSource final : public OperandSource {
 public:
  TraceSource(int width, std::vector<OperandPair> trace, std::string label);
  OperandPair next() override;
  int width() const override { return width_; }
  std::string name() const override { return label_; }
  std::size_t size() const { return trace_.size(); }
  /// The recorded pairs, in capture order — deterministic replay drivers
  /// (core::trace_error_distribution) shard over this directly instead of
  /// consuming the cycling cursor.
  const std::vector<OperandPair>& pairs() const { return trace_; }

 private:
  int width_;
  std::vector<OperandPair> trace_;
  std::string label_;
  std::size_t pos_ = 0;
};

/// Factory helpers.
std::unique_ptr<OperandSource> make_uniform(int width, std::uint64_t seed);
std::unique_ptr<OperandSource> make_gaussian(int width, std::uint64_t seed);
std::unique_ptr<OperandSource> make_small_value(int width, std::uint64_t seed);

}  // namespace gear::stats
